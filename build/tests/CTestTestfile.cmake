# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/formats_test[1]_include.cmake")
include("/root/repo/build/tests/genome_test[1]_include.cmake")
include("/root/repo/build/tests/dfs_test[1]_include.cmake")
include("/root/repo/build/tests/mr_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/align_test[1]_include.cmake")
add_test(analysis_test "/root/repo/build/tests/analysis_test")
set_tests_properties(analysis_test PROPERTIES  TIMEOUT "1200" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;15;add_test;/root/repo/tests/CMakeLists.txt;59;gesall_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(gesall_test "/root/repo/build/tests/gesall_test")
set_tests_properties(gesall_test PROPERTIES  TIMEOUT "1200" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;15;add_test;/root/repo/tests/CMakeLists.txt;69;gesall_add_test;/root/repo/tests/CMakeLists.txt;0;")

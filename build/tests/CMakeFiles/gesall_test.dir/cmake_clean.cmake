file(REMOVE_RECURSE
  "CMakeFiles/gesall_test.dir/gesall/contracts_test.cc.o"
  "CMakeFiles/gesall_test.dir/gesall/contracts_test.cc.o.d"
  "CMakeFiles/gesall_test.dir/gesall/diagnosis_test.cc.o"
  "CMakeFiles/gesall_test.dir/gesall/diagnosis_test.cc.o.d"
  "CMakeFiles/gesall_test.dir/gesall/keys_test.cc.o"
  "CMakeFiles/gesall_test.dir/gesall/keys_test.cc.o.d"
  "CMakeFiles/gesall_test.dir/gesall/linear_index_test.cc.o"
  "CMakeFiles/gesall_test.dir/gesall/linear_index_test.cc.o.d"
  "CMakeFiles/gesall_test.dir/gesall/pipeline_extensions_test.cc.o"
  "CMakeFiles/gesall_test.dir/gesall/pipeline_extensions_test.cc.o.d"
  "CMakeFiles/gesall_test.dir/gesall/pipeline_test.cc.o"
  "CMakeFiles/gesall_test.dir/gesall/pipeline_test.cc.o.d"
  "CMakeFiles/gesall_test.dir/gesall/report_test.cc.o"
  "CMakeFiles/gesall_test.dir/gesall/report_test.cc.o.d"
  "CMakeFiles/gesall_test.dir/gesall/serial_pipeline_test.cc.o"
  "CMakeFiles/gesall_test.dir/gesall/serial_pipeline_test.cc.o.d"
  "CMakeFiles/gesall_test.dir/gesall/streaming_test.cc.o"
  "CMakeFiles/gesall_test.dir/gesall/streaming_test.cc.o.d"
  "gesall_test"
  "gesall_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gesall_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

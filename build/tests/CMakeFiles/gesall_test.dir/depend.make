# Empty dependencies file for gesall_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/genome_test.dir/genome/donor_test.cc.o"
  "CMakeFiles/genome_test.dir/genome/donor_test.cc.o.d"
  "CMakeFiles/genome_test.dir/genome/read_simulator_test.cc.o"
  "CMakeFiles/genome_test.dir/genome/read_simulator_test.cc.o.d"
  "CMakeFiles/genome_test.dir/genome/reference_generator_test.cc.o"
  "CMakeFiles/genome_test.dir/genome/reference_generator_test.cc.o.d"
  "CMakeFiles/genome_test.dir/genome/sv_planter_test.cc.o"
  "CMakeFiles/genome_test.dir/genome/sv_planter_test.cc.o.d"
  "genome_test"
  "genome_test.pdb"
  "genome_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genome_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

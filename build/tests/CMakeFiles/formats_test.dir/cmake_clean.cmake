file(REMOVE_RECURSE
  "CMakeFiles/formats_test.dir/formats/bam_fuzz_test.cc.o"
  "CMakeFiles/formats_test.dir/formats/bam_fuzz_test.cc.o.d"
  "CMakeFiles/formats_test.dir/formats/bam_test.cc.o"
  "CMakeFiles/formats_test.dir/formats/bam_test.cc.o.d"
  "CMakeFiles/formats_test.dir/formats/cigar_test.cc.o"
  "CMakeFiles/formats_test.dir/formats/cigar_test.cc.o.d"
  "CMakeFiles/formats_test.dir/formats/fasta_test.cc.o"
  "CMakeFiles/formats_test.dir/formats/fasta_test.cc.o.d"
  "CMakeFiles/formats_test.dir/formats/fastq_test.cc.o"
  "CMakeFiles/formats_test.dir/formats/fastq_test.cc.o.d"
  "CMakeFiles/formats_test.dir/formats/sam_test.cc.o"
  "CMakeFiles/formats_test.dir/formats/sam_test.cc.o.d"
  "CMakeFiles/formats_test.dir/formats/vcf_test.cc.o"
  "CMakeFiles/formats_test.dir/formats/vcf_test.cc.o.d"
  "formats_test"
  "formats_test.pdb"
  "formats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/formats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/analysis_test.dir/analysis/genotyper_test.cc.o"
  "CMakeFiles/analysis_test.dir/analysis/genotyper_test.cc.o.d"
  "CMakeFiles/analysis_test.dir/analysis/haplotype_caller_test.cc.o"
  "CMakeFiles/analysis_test.dir/analysis/haplotype_caller_test.cc.o.d"
  "CMakeFiles/analysis_test.dir/analysis/mark_duplicates_test.cc.o"
  "CMakeFiles/analysis_test.dir/analysis/mark_duplicates_test.cc.o.d"
  "CMakeFiles/analysis_test.dir/analysis/pileup_test.cc.o"
  "CMakeFiles/analysis_test.dir/analysis/pileup_test.cc.o.d"
  "CMakeFiles/analysis_test.dir/analysis/recalibration_test.cc.o"
  "CMakeFiles/analysis_test.dir/analysis/recalibration_test.cc.o.d"
  "CMakeFiles/analysis_test.dir/analysis/steps_test.cc.o"
  "CMakeFiles/analysis_test.dir/analysis/steps_test.cc.o.d"
  "CMakeFiles/analysis_test.dir/analysis/sv_caller_test.cc.o"
  "CMakeFiles/analysis_test.dir/analysis/sv_caller_test.cc.o.d"
  "analysis_test"
  "analysis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for accuracy_diagnosis.
# This may be replaced when dependencies are built.

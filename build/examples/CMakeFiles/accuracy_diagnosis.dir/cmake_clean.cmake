file(REMOVE_RECURSE
  "CMakeFiles/accuracy_diagnosis.dir/accuracy_diagnosis.cpp.o"
  "CMakeFiles/accuracy_diagnosis.dir/accuracy_diagnosis.cpp.o.d"
  "accuracy_diagnosis"
  "accuracy_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accuracy_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

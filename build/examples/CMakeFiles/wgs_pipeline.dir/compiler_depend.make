# Empty compiler generated dependencies file for wgs_pipeline.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/wgs_pipeline.dir/wgs_pipeline.cpp.o"
  "CMakeFiles/wgs_pipeline.dir/wgs_pipeline.cpp.o.d"
  "wgs_pipeline"
  "wgs_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wgs_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

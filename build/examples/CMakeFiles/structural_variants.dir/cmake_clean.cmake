file(REMOVE_RECURSE
  "CMakeFiles/structural_variants.dir/structural_variants.cpp.o"
  "CMakeFiles/structural_variants.dir/structural_variants.cpp.o.d"
  "structural_variants"
  "structural_variants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structural_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

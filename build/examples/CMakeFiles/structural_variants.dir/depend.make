# Empty dependencies file for structural_variants.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_scaleup.dir/bench_table5_scaleup.cc.o"
  "CMakeFiles/bench_table5_scaleup.dir/bench_table5_scaleup.cc.o.d"
  "bench_table5_scaleup"
  "bench_table5_scaleup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_table7_cluster_b.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_cluster_b.dir/bench_table7_cluster_b.cc.o"
  "CMakeFiles/bench_table7_cluster_b.dir/bench_table7_cluster_b.cc.o.d"
  "bench_table7_cluster_b"
  "bench_table7_cluster_b.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_cluster_b.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

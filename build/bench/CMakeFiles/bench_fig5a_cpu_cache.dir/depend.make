# Empty dependencies file for bench_fig5a_cpu_cache.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_table4_partition_granularity.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_table9_10_variant_metrics.
# This may be replaced when dependencies are built.

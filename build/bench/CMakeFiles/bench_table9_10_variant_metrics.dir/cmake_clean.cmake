file(REMOVE_RECURSE
  "CMakeFiles/bench_table9_10_variant_metrics.dir/bench_table9_10_variant_metrics.cc.o"
  "CMakeFiles/bench_table9_10_variant_metrics.dir/bench_table9_10_variant_metrics.cc.o.d"
  "bench_table9_10_variant_metrics"
  "bench_table9_10_variant_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table9_10_variant_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_batch_sensitivity.dir/bench_ablation_batch_sensitivity.cc.o"
  "CMakeFiles/bench_ablation_batch_sensitivity.dir/bench_ablation_batch_sensitivity.cc.o.d"
  "bench_ablation_batch_sensitivity"
  "bench_ablation_batch_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_batch_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_ablation_hc_overlap.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_table6_rounds.
# This may be replaced when dependencies are built.

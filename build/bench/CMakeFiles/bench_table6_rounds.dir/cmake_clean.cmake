file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_rounds.dir/bench_table6_rounds.cc.o"
  "CMakeFiles/bench_table6_rounds.dir/bench_table6_rounds.cc.o.d"
  "bench_table6_rounds"
  "bench_table6_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_bwa_diagnosis.dir/bench_fig11_bwa_diagnosis.cc.o"
  "CMakeFiles/bench_fig11_bwa_diagnosis.dir/bench_fig11_bwa_diagnosis.cc.o.d"
  "bench_fig11_bwa_diagnosis"
  "bench_fig11_bwa_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_bwa_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

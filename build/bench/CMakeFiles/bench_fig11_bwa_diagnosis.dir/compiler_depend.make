# Empty compiler generated dependencies file for bench_fig11_bwa_diagnosis.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_caller_comparison.cc" "bench/CMakeFiles/bench_ablation_caller_comparison.dir/bench_ablation_caller_comparison.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_caller_comparison.dir/bench_ablation_caller_comparison.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/gesall_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/gesall/CMakeFiles/gesall_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mr/CMakeFiles/gesall_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/gesall_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/gesall_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/align/CMakeFiles/gesall_align.dir/DependInfo.cmake"
  "/root/repo/build/src/genome/CMakeFiles/gesall_genome.dir/DependInfo.cmake"
  "/root/repo/build/src/formats/CMakeFiles/gesall_formats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gesall_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for bench_ablation_caller_comparison.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_caller_comparison.dir/bench_ablation_caller_comparison.cc.o"
  "CMakeFiles/bench_ablation_caller_comparison.dir/bench_ablation_caller_comparison.cc.o.d"
  "bench_ablation_caller_comparison"
  "bench_ablation_caller_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_caller_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

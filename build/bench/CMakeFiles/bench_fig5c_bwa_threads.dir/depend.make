# Empty dependencies file for bench_fig5c_bwa_threads.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig7_task_progress.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for gesall_core.
# This may be replaced when dependencies are built.

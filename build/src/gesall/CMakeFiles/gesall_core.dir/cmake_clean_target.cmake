file(REMOVE_RECURSE
  "libgesall_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/gesall_core.dir/contracts.cc.o"
  "CMakeFiles/gesall_core.dir/contracts.cc.o.d"
  "CMakeFiles/gesall_core.dir/diagnosis.cc.o"
  "CMakeFiles/gesall_core.dir/diagnosis.cc.o.d"
  "CMakeFiles/gesall_core.dir/keys.cc.o"
  "CMakeFiles/gesall_core.dir/keys.cc.o.d"
  "CMakeFiles/gesall_core.dir/linear_index.cc.o"
  "CMakeFiles/gesall_core.dir/linear_index.cc.o.d"
  "CMakeFiles/gesall_core.dir/pipeline.cc.o"
  "CMakeFiles/gesall_core.dir/pipeline.cc.o.d"
  "CMakeFiles/gesall_core.dir/report.cc.o"
  "CMakeFiles/gesall_core.dir/report.cc.o.d"
  "CMakeFiles/gesall_core.dir/serial_pipeline.cc.o"
  "CMakeFiles/gesall_core.dir/serial_pipeline.cc.o.d"
  "CMakeFiles/gesall_core.dir/streaming.cc.o"
  "CMakeFiles/gesall_core.dir/streaming.cc.o.d"
  "libgesall_core.a"
  "libgesall_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gesall_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gesall/contracts.cc" "src/gesall/CMakeFiles/gesall_core.dir/contracts.cc.o" "gcc" "src/gesall/CMakeFiles/gesall_core.dir/contracts.cc.o.d"
  "/root/repo/src/gesall/diagnosis.cc" "src/gesall/CMakeFiles/gesall_core.dir/diagnosis.cc.o" "gcc" "src/gesall/CMakeFiles/gesall_core.dir/diagnosis.cc.o.d"
  "/root/repo/src/gesall/keys.cc" "src/gesall/CMakeFiles/gesall_core.dir/keys.cc.o" "gcc" "src/gesall/CMakeFiles/gesall_core.dir/keys.cc.o.d"
  "/root/repo/src/gesall/linear_index.cc" "src/gesall/CMakeFiles/gesall_core.dir/linear_index.cc.o" "gcc" "src/gesall/CMakeFiles/gesall_core.dir/linear_index.cc.o.d"
  "/root/repo/src/gesall/pipeline.cc" "src/gesall/CMakeFiles/gesall_core.dir/pipeline.cc.o" "gcc" "src/gesall/CMakeFiles/gesall_core.dir/pipeline.cc.o.d"
  "/root/repo/src/gesall/report.cc" "src/gesall/CMakeFiles/gesall_core.dir/report.cc.o" "gcc" "src/gesall/CMakeFiles/gesall_core.dir/report.cc.o.d"
  "/root/repo/src/gesall/serial_pipeline.cc" "src/gesall/CMakeFiles/gesall_core.dir/serial_pipeline.cc.o" "gcc" "src/gesall/CMakeFiles/gesall_core.dir/serial_pipeline.cc.o.d"
  "/root/repo/src/gesall/streaming.cc" "src/gesall/CMakeFiles/gesall_core.dir/streaming.cc.o" "gcc" "src/gesall/CMakeFiles/gesall_core.dir/streaming.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/align/CMakeFiles/gesall_align.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/gesall_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/gesall_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/mr/CMakeFiles/gesall_mr.dir/DependInfo.cmake"
  "/root/repo/build/src/genome/CMakeFiles/gesall_genome.dir/DependInfo.cmake"
  "/root/repo/build/src/formats/CMakeFiles/gesall_formats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gesall_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

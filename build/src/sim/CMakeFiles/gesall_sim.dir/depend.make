# Empty dependencies file for gesall_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/gesall_sim.dir/cluster.cc.o"
  "CMakeFiles/gesall_sim.dir/cluster.cc.o.d"
  "CMakeFiles/gesall_sim.dir/engine.cc.o"
  "CMakeFiles/gesall_sim.dir/engine.cc.o.d"
  "CMakeFiles/gesall_sim.dir/genomics.cc.o"
  "CMakeFiles/gesall_sim.dir/genomics.cc.o.d"
  "CMakeFiles/gesall_sim.dir/mr_sim.cc.o"
  "CMakeFiles/gesall_sim.dir/mr_sim.cc.o.d"
  "CMakeFiles/gesall_sim.dir/optimizer.cc.o"
  "CMakeFiles/gesall_sim.dir/optimizer.cc.o.d"
  "CMakeFiles/gesall_sim.dir/resources.cc.o"
  "CMakeFiles/gesall_sim.dir/resources.cc.o.d"
  "libgesall_sim.a"
  "libgesall_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gesall_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cluster.cc" "src/sim/CMakeFiles/gesall_sim.dir/cluster.cc.o" "gcc" "src/sim/CMakeFiles/gesall_sim.dir/cluster.cc.o.d"
  "/root/repo/src/sim/engine.cc" "src/sim/CMakeFiles/gesall_sim.dir/engine.cc.o" "gcc" "src/sim/CMakeFiles/gesall_sim.dir/engine.cc.o.d"
  "/root/repo/src/sim/genomics.cc" "src/sim/CMakeFiles/gesall_sim.dir/genomics.cc.o" "gcc" "src/sim/CMakeFiles/gesall_sim.dir/genomics.cc.o.d"
  "/root/repo/src/sim/mr_sim.cc" "src/sim/CMakeFiles/gesall_sim.dir/mr_sim.cc.o" "gcc" "src/sim/CMakeFiles/gesall_sim.dir/mr_sim.cc.o.d"
  "/root/repo/src/sim/optimizer.cc" "src/sim/CMakeFiles/gesall_sim.dir/optimizer.cc.o" "gcc" "src/sim/CMakeFiles/gesall_sim.dir/optimizer.cc.o.d"
  "/root/repo/src/sim/resources.cc" "src/sim/CMakeFiles/gesall_sim.dir/resources.cc.o" "gcc" "src/sim/CMakeFiles/gesall_sim.dir/resources.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gesall_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for gesall_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libgesall_sim.a"
)

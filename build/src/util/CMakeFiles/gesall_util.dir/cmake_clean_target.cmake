file(REMOVE_RECURSE
  "libgesall_util.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/gesall_util.dir/bgzf.cc.o"
  "CMakeFiles/gesall_util.dir/bgzf.cc.o.d"
  "CMakeFiles/gesall_util.dir/bloom_filter.cc.o"
  "CMakeFiles/gesall_util.dir/bloom_filter.cc.o.d"
  "CMakeFiles/gesall_util.dir/io.cc.o"
  "CMakeFiles/gesall_util.dir/io.cc.o.d"
  "CMakeFiles/gesall_util.dir/logging.cc.o"
  "CMakeFiles/gesall_util.dir/logging.cc.o.d"
  "CMakeFiles/gesall_util.dir/stats.cc.o"
  "CMakeFiles/gesall_util.dir/stats.cc.o.d"
  "CMakeFiles/gesall_util.dir/status.cc.o"
  "CMakeFiles/gesall_util.dir/status.cc.o.d"
  "CMakeFiles/gesall_util.dir/thread_pool.cc.o"
  "CMakeFiles/gesall_util.dir/thread_pool.cc.o.d"
  "libgesall_util.a"
  "libgesall_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gesall_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

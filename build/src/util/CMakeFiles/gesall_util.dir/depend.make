# Empty dependencies file for gesall_util.
# This may be replaced when dependencies are built.

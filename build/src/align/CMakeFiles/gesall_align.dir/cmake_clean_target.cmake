file(REMOVE_RECURSE
  "libgesall_align.a"
)

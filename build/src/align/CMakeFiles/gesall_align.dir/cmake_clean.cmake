file(REMOVE_RECURSE
  "CMakeFiles/gesall_align.dir/aligner.cc.o"
  "CMakeFiles/gesall_align.dir/aligner.cc.o.d"
  "CMakeFiles/gesall_align.dir/fm_index.cc.o"
  "CMakeFiles/gesall_align.dir/fm_index.cc.o.d"
  "CMakeFiles/gesall_align.dir/genome_index.cc.o"
  "CMakeFiles/gesall_align.dir/genome_index.cc.o.d"
  "CMakeFiles/gesall_align.dir/smith_waterman.cc.o"
  "CMakeFiles/gesall_align.dir/smith_waterman.cc.o.d"
  "CMakeFiles/gesall_align.dir/suffix_array.cc.o"
  "CMakeFiles/gesall_align.dir/suffix_array.cc.o.d"
  "libgesall_align.a"
  "libgesall_align.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gesall_align.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

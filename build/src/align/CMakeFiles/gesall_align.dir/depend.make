# Empty dependencies file for gesall_align.
# This may be replaced when dependencies are built.

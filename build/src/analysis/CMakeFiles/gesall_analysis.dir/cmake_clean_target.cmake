file(REMOVE_RECURSE
  "libgesall_analysis.a"
)

# Empty dependencies file for gesall_analysis.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/gesall_analysis.dir/genotyper.cc.o"
  "CMakeFiles/gesall_analysis.dir/genotyper.cc.o.d"
  "CMakeFiles/gesall_analysis.dir/haplotype_caller.cc.o"
  "CMakeFiles/gesall_analysis.dir/haplotype_caller.cc.o.d"
  "CMakeFiles/gesall_analysis.dir/mark_duplicates.cc.o"
  "CMakeFiles/gesall_analysis.dir/mark_duplicates.cc.o.d"
  "CMakeFiles/gesall_analysis.dir/pileup.cc.o"
  "CMakeFiles/gesall_analysis.dir/pileup.cc.o.d"
  "CMakeFiles/gesall_analysis.dir/recalibration.cc.o"
  "CMakeFiles/gesall_analysis.dir/recalibration.cc.o.d"
  "CMakeFiles/gesall_analysis.dir/steps.cc.o"
  "CMakeFiles/gesall_analysis.dir/steps.cc.o.d"
  "CMakeFiles/gesall_analysis.dir/sv_caller.cc.o"
  "CMakeFiles/gesall_analysis.dir/sv_caller.cc.o.d"
  "libgesall_analysis.a"
  "libgesall_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gesall_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

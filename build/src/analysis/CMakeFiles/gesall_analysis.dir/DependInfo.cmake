
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/genotyper.cc" "src/analysis/CMakeFiles/gesall_analysis.dir/genotyper.cc.o" "gcc" "src/analysis/CMakeFiles/gesall_analysis.dir/genotyper.cc.o.d"
  "/root/repo/src/analysis/haplotype_caller.cc" "src/analysis/CMakeFiles/gesall_analysis.dir/haplotype_caller.cc.o" "gcc" "src/analysis/CMakeFiles/gesall_analysis.dir/haplotype_caller.cc.o.d"
  "/root/repo/src/analysis/mark_duplicates.cc" "src/analysis/CMakeFiles/gesall_analysis.dir/mark_duplicates.cc.o" "gcc" "src/analysis/CMakeFiles/gesall_analysis.dir/mark_duplicates.cc.o.d"
  "/root/repo/src/analysis/pileup.cc" "src/analysis/CMakeFiles/gesall_analysis.dir/pileup.cc.o" "gcc" "src/analysis/CMakeFiles/gesall_analysis.dir/pileup.cc.o.d"
  "/root/repo/src/analysis/recalibration.cc" "src/analysis/CMakeFiles/gesall_analysis.dir/recalibration.cc.o" "gcc" "src/analysis/CMakeFiles/gesall_analysis.dir/recalibration.cc.o.d"
  "/root/repo/src/analysis/steps.cc" "src/analysis/CMakeFiles/gesall_analysis.dir/steps.cc.o" "gcc" "src/analysis/CMakeFiles/gesall_analysis.dir/steps.cc.o.d"
  "/root/repo/src/analysis/sv_caller.cc" "src/analysis/CMakeFiles/gesall_analysis.dir/sv_caller.cc.o" "gcc" "src/analysis/CMakeFiles/gesall_analysis.dir/sv_caller.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/formats/CMakeFiles/gesall_formats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gesall_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libgesall_formats.a"
)

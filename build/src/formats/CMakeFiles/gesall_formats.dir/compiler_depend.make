# Empty compiler generated dependencies file for gesall_formats.
# This may be replaced when dependencies are built.

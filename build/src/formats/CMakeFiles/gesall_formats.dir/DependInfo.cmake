
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/formats/bam.cc" "src/formats/CMakeFiles/gesall_formats.dir/bam.cc.o" "gcc" "src/formats/CMakeFiles/gesall_formats.dir/bam.cc.o.d"
  "/root/repo/src/formats/cigar.cc" "src/formats/CMakeFiles/gesall_formats.dir/cigar.cc.o" "gcc" "src/formats/CMakeFiles/gesall_formats.dir/cigar.cc.o.d"
  "/root/repo/src/formats/fasta.cc" "src/formats/CMakeFiles/gesall_formats.dir/fasta.cc.o" "gcc" "src/formats/CMakeFiles/gesall_formats.dir/fasta.cc.o.d"
  "/root/repo/src/formats/fastq.cc" "src/formats/CMakeFiles/gesall_formats.dir/fastq.cc.o" "gcc" "src/formats/CMakeFiles/gesall_formats.dir/fastq.cc.o.d"
  "/root/repo/src/formats/sam.cc" "src/formats/CMakeFiles/gesall_formats.dir/sam.cc.o" "gcc" "src/formats/CMakeFiles/gesall_formats.dir/sam.cc.o.d"
  "/root/repo/src/formats/vcf.cc" "src/formats/CMakeFiles/gesall_formats.dir/vcf.cc.o" "gcc" "src/formats/CMakeFiles/gesall_formats.dir/vcf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/gesall_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/gesall_formats.dir/bam.cc.o"
  "CMakeFiles/gesall_formats.dir/bam.cc.o.d"
  "CMakeFiles/gesall_formats.dir/cigar.cc.o"
  "CMakeFiles/gesall_formats.dir/cigar.cc.o.d"
  "CMakeFiles/gesall_formats.dir/fasta.cc.o"
  "CMakeFiles/gesall_formats.dir/fasta.cc.o.d"
  "CMakeFiles/gesall_formats.dir/fastq.cc.o"
  "CMakeFiles/gesall_formats.dir/fastq.cc.o.d"
  "CMakeFiles/gesall_formats.dir/sam.cc.o"
  "CMakeFiles/gesall_formats.dir/sam.cc.o.d"
  "CMakeFiles/gesall_formats.dir/vcf.cc.o"
  "CMakeFiles/gesall_formats.dir/vcf.cc.o.d"
  "libgesall_formats.a"
  "libgesall_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gesall_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

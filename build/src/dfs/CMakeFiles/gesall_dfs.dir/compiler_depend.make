# Empty compiler generated dependencies file for gesall_dfs.
# This may be replaced when dependencies are built.

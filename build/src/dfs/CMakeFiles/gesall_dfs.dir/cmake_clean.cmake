file(REMOVE_RECURSE
  "CMakeFiles/gesall_dfs.dir/bam_split_reader.cc.o"
  "CMakeFiles/gesall_dfs.dir/bam_split_reader.cc.o.d"
  "CMakeFiles/gesall_dfs.dir/dfs.cc.o"
  "CMakeFiles/gesall_dfs.dir/dfs.cc.o.d"
  "libgesall_dfs.a"
  "libgesall_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gesall_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libgesall_dfs.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/gesall_mr.dir/mapreduce.cc.o"
  "CMakeFiles/gesall_mr.dir/mapreduce.cc.o.d"
  "libgesall_mr.a"
  "libgesall_mr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gesall_mr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

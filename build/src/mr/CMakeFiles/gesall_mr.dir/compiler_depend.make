# Empty compiler generated dependencies file for gesall_mr.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libgesall_mr.a"
)

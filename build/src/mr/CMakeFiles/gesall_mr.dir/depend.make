# Empty dependencies file for gesall_mr.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for gesall_genome.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/gesall_genome.dir/donor.cc.o"
  "CMakeFiles/gesall_genome.dir/donor.cc.o.d"
  "CMakeFiles/gesall_genome.dir/read_simulator.cc.o"
  "CMakeFiles/gesall_genome.dir/read_simulator.cc.o.d"
  "CMakeFiles/gesall_genome.dir/reference_generator.cc.o"
  "CMakeFiles/gesall_genome.dir/reference_generator.cc.o.d"
  "CMakeFiles/gesall_genome.dir/sv_planter.cc.o"
  "CMakeFiles/gesall_genome.dir/sv_planter.cc.o.d"
  "libgesall_genome.a"
  "libgesall_genome.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gesall_genome.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/genome/donor.cc" "src/genome/CMakeFiles/gesall_genome.dir/donor.cc.o" "gcc" "src/genome/CMakeFiles/gesall_genome.dir/donor.cc.o.d"
  "/root/repo/src/genome/read_simulator.cc" "src/genome/CMakeFiles/gesall_genome.dir/read_simulator.cc.o" "gcc" "src/genome/CMakeFiles/gesall_genome.dir/read_simulator.cc.o.d"
  "/root/repo/src/genome/reference_generator.cc" "src/genome/CMakeFiles/gesall_genome.dir/reference_generator.cc.o" "gcc" "src/genome/CMakeFiles/gesall_genome.dir/reference_generator.cc.o.d"
  "/root/repo/src/genome/sv_planter.cc" "src/genome/CMakeFiles/gesall_genome.dir/sv_planter.cc.o" "gcc" "src/genome/CMakeFiles/gesall_genome.dir/sv_planter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/formats/CMakeFiles/gesall_formats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gesall_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

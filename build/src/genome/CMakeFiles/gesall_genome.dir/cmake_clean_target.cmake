file(REMOVE_RECURSE
  "libgesall_genome.a"
)

// Capacity planning with the cluster simulator: predict how long the
// five pipeline rounds take for a paper-scale sample (1.24 G read pairs)
// on Cluster A, Cluster B, and a user-sized cluster — the kind of
// what-if a genome center asks before buying hardware (paper §4).
//
//   $ ./cluster_simulation [nodes] [cores] [disks]

#include <cstdio>
#include <cstdlib>

#include "sim/genomics.h"

using namespace gesall;

namespace {

void SimulatePipeline(const ClusterSpec& cluster) {
  auto workload = WorkloadSpec::NA12878();
  GenomicsRates rates;
  const int slots = std::max(1, cluster.node.cores / 4);
  std::printf("\n--- %s: %d nodes x %d cores, %d disk(s) ---\n",
              cluster.name.c_str(), cluster.num_data_nodes,
              cluster.node.cores, cluster.node.num_disks);

  double total = 0;
  auto report = [&](const MrSimResult& r, const char* name) {
    std::printf("  %-28s %12.0f s  (%.2f h)\n", name, r.wall_seconds,
                r.wall_seconds / 3600);
    total += r.wall_seconds;
  };
  report(SimulateMrJob(
             cluster, AlignmentJob(workload, rates, cluster,
                                   cluster.num_data_nodes * slots * 4,
                                   slots, 4)),
         "round 1: alignment");
  report(SimulateMrJob(cluster, CleaningJob(workload, rates, cluster, 510,
                                            slots)),
         "round 2: cleaning");
  report(SimulateMrJob(cluster,
                       MarkDuplicatesJob(workload, rates, cluster, true,
                                         510, slots)),
         "round 3: mark duplicates");
  report(SimulateMrJob(cluster, SortJob(workload, rates, cluster, 510,
                                        slots)),
         "round 4: sort + index");
  report(SimulateMrJob(cluster, HaplotypeCallerJob(workload, rates, cluster,
                                                   23, slots)),
         "round 5: haplotype caller");
  std::printf("  %-28s %12.0f s  (%.2f h)\n", "TOTAL", total, total / 3600);
  std::printf("  clinic target: 1-2 days -> %s\n",
              total < 2 * 86400 ? "MET" : "NOT met");
}

}  // namespace

int main(int argc, char** argv) {
  SimulatePipeline(ClusterSpec::A());
  SimulatePipeline(ClusterSpec::B());

  if (argc > 3) {
    ClusterSpec custom;
    custom.name = "Custom cluster";
    custom.num_data_nodes = std::atoi(argv[1]);
    custom.node.cores = std::atoi(argv[2]);
    custom.node.num_disks = std::atoi(argv[3]);
    custom.node.memory_bytes = 128LL << 30;
    custom.node.disk_mbps = 140;
    custom.node.network_gbps = 10;
    SimulatePipeline(custom);
  } else {
    std::printf("\n(pass `nodes cores disks` to size your own cluster)\n");
  }
  return 0;
}

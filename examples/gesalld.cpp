// gesalld: running the pipeline as a long-lived multi-tenant service —
// admission control under a burst, weighted-fair scheduling across
// tenants, a deadline-driven job planned by the optimizer, and a
// graceful drain/restart cycle.
//
//   $ ./gesalld

#include <cstdio>
#include <string>
#include <vector>

#include "genome/read_simulator.h"
#include "genome/reference_generator.h"
#include "service/service.h"

using namespace gesall;

int main() {
  // 1. A small synthetic cohort: one reference, one simulated sample
  //    shared by every tenant (each job still runs in its own DFS
  //    namespace, /jobs/<tenant>/job-<id>).
  ReferenceGeneratorOptions ref_options;
  ref_options.num_chromosomes = 1;
  ref_options.chromosome_length = 30'000;
  ReferenceGenome reference = GenerateReference(ref_options);
  DonorGenome donor = PlantVariants(reference, VariantPlanterOptions{});
  ReadSimulatorOptions sim_options;
  sim_options.coverage = 6.0;
  SimulatedSample sample = SimulateReads(donor, sim_options);
  GenomeIndex index(reference);

  DfsOptions dfs_options;
  dfs_options.num_data_nodes = 4;
  dfs_options.replication = 2;
  Dfs dfs(dfs_options);

  // 2. A service with two runners, a small queue, and a premium tenant
  //    that gets 3x the executor share of everyone else.
  ServiceConfig config;
  config.max_running_jobs = 2;
  config.max_queue_depth = 4;
  config.tenants["premium"].weight = 3.0;
  GesallService service(reference, index, &dfs, config);

  auto make_job = [&](const std::string& tenant) {
    JobSpec spec;
    spec.tenant = tenant;
    spec.mate1 = sample.mate1;
    spec.mate2 = sample.mate2;
    spec.pipeline.alignment_partitions = 2;
    spec.pipeline.max_parallel_tasks = 2;
    return spec;
  };

  // 3. A burst of submissions from three tenants. The queue holds four
  //    jobs, so some of the burst is shed with a retry-after hint
  //    instead of piling up unbounded.
  std::vector<JobId> accepted;
  const char* tenants[] = {"premium", "lab-a", "lab-b"};
  for (int round = 0; round < 3; ++round) {
    for (const char* tenant : tenants) {
      auto id = service.Submit(make_job(tenant));
      if (id.ok()) {
        accepted.push_back(id.ValueOrDie());
        std::printf("admitted %s job #%llu\n", tenant,
                    static_cast<unsigned long long>(id.ValueOrDie()));
      } else {
        std::printf("shed %s submission: %s\n", tenant,
                    id.status().ToString().c_str());
      }
    }
  }

  // 4. Wait for everything that was admitted.
  for (JobId id : accepted) {
    auto out = service.Wait(id);
    if (!out.ok()) {
      std::fprintf(stderr, "wait failed: %s\n",
                   out.status().ToString().c_str());
      return 1;
    }
    const JobOutput& job = out.ValueOrDie();
    std::printf("job #%llu (%s): %s, %zu variants, queued %.2fs, "
                "ran %.2fs%s\n",
                static_cast<unsigned long long>(job.id),
                job.tenant.c_str(),
                job.status.ok() ? "ok" : job.status.ToString().c_str(),
                job.variants.size(), job.queue_seconds, job.run_seconds,
                job.planned ? " (optimizer-planned)" : "");
  }

  // 5. One deadline job, now that the queue has drained: a deadline
  //    turns on the online planner, which sizes the pipeline's
  //    partitioning and slot knobs from the simulator's cost model
  //    before the job runs.
  JobSpec urgent = make_job("premium");
  urgent.deadline_seconds = 120;
  auto urgent_id = service.Submit(std::move(urgent));
  if (urgent_id.ok()) {
    auto out = service.Wait(urgent_id.ValueOrDie());
    if (out.ok() && out.ValueOrDie().planned) {
      const PipelinePlan& plan = out.ValueOrDie().plan;
      std::printf("deadline job planned: %d alignment partitions, "
                  "%d shuffle slots, predicted wall %.0fs\n",
                  plan.align_maps_per_node * plan.align_waves,
                  plan.shuffle_slots_per_node, plan.wall_seconds);
    }
  }

  // 6. Graceful drain: stop admitting, let in-flight work finish, then
  //    restart and show the service accepts again.
  service.Drain();
  std::printf("drained: %d running, %d queued\n", service.running_jobs(),
              service.queue_depth());
  service.Restart();
  auto after = service.Submit(make_job("lab-a"));
  std::printf("after restart: submission %s\n",
              after.ok() ? "admitted" : "rejected");
  if (after.ok()) (void)service.Wait(after.ValueOrDie());

  ServiceStats stats = service.stats();
  std::printf("stats: %lld submitted, %lld admitted, %lld shed, "
              "%lld completed\n",
              static_cast<long long>(stats.submitted),
              static_cast<long long>(stats.admitted),
              static_cast<long long>(stats.shed),
              static_cast<long long>(stats.completed));
  return 0;
}

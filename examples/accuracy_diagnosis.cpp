// Accuracy diagnosis: run the SAME sample through the serial reference
// pipeline and the parallel Gesall pipeline, then use the error-diagnosis
// toolkit to explain where and why they differ — the workflow a genome
// center would run before trusting a parallel pipeline in production
// (paper §3.4, §4.5.2).
//
//   $ ./accuracy_diagnosis

#include <cstdio>

#include "gesall/diagnosis.h"
#include "gesall/pipeline.h"
#include "gesall/report.h"
#include "genome/read_simulator.h"
#include "genome/reference_generator.h"

using namespace gesall;

int main() {
  ReferenceGeneratorOptions ref_options;
  ref_options.num_chromosomes = 2;
  ref_options.chromosome_length = 120'000;
  ReferenceGenome reference = GenerateReference(ref_options);
  DonorGenome donor = PlantVariants(reference, VariantPlanterOptions{});
  ReadSimulatorOptions sim_options;
  sim_options.coverage = 20.0;
  SimulatedSample sample = SimulateReads(donor, sim_options);
  GenomeIndex index(reference);
  auto interleaved =
      InterleavePairs(sample.mate1, sample.mate2).ValueOrDie();

  std::printf("running serial pipeline...\n");
  auto serial = RunSerialPipeline(reference, index, interleaved);
  if (!serial.ok()) {
    std::fprintf(stderr, "%s\n", serial.status().ToString().c_str());
    return 1;
  }

  std::printf("running parallel pipeline...\n");
  DfsOptions dfs_options;
  dfs_options.block_size = 256 * 1024;
  Dfs dfs(dfs_options);
  GesallPipeline pipeline(reference, index, &dfs, PipelineConfig{});
  if (!pipeline.LoadSample(sample.mate1, sample.mate2).ok()) return 1;
  auto parallel_variants = pipeline.RunAll();
  if (!parallel_variants.ok()) {
    std::fprintf(stderr, "%s\n",
                 parallel_variants.status().ToString().c_str());
    return 1;
  }

  const auto& s = serial.ValueOrDie();
  auto parallel_aligned = pipeline.ReadStageRecords("aligned").ValueOrDie();
  auto parallel_deduped = pipeline.ReadStageRecords("dedup").ValueOrDie();

  // Alignment-level diagnosis (paper Fig. 11).
  auto align_disc =
      CompareAlignments(reference, s.aligned, parallel_aligned);
  std::printf("\nalignment discordance: %lld of %lld reads "
              "(weighted %.2f)\n",
              static_cast<long long>(align_disc.d_count),
              static_cast<long long>(align_disc.total_reads),
              align_disc.weighted_d_count);
  std::printf("  in centromeres: %lld, in blacklist: %lld, elsewhere: "
              "%lld\n",
              static_cast<long long>(align_disc.discordant_centromere),
              static_cast<long long>(align_disc.discordant_blacklist),
              static_cast<long long>(align_disc.discordant_elsewhere));
  std::printf("  surviving MAPQ>30 + region filters: %lld\n",
              static_cast<long long>(align_disc.discordant_after_filters));

  // Duplicate-flag diagnosis.
  auto dup_disc = CompareDuplicates(s.deduped, parallel_deduped);
  std::printf("duplicate flags: %lld differ; totals %lld (serial) vs "
              "%lld (parallel)\n",
              static_cast<long long>(dup_disc.d_count),
              static_cast<long long>(dup_disc.duplicates_serial),
              static_cast<long long>(dup_disc.duplicates_parallel));

  // Final-variant diagnosis: D_count and D_impact via a hybrid pipeline.
  auto variant_disc =
      CompareVariants(s.variants, parallel_variants.ValueOrDie());
  std::printf("variants: %zu concordant, %zu serial-only, %zu "
              "parallel-only\n",
              variant_disc.concordant.size(),
              variant_disc.only_first.size(),
              variant_disc.only_second.size());

  auto hybrid =
      SerialTailFromAligned(reference, s.header, parallel_aligned);
  if (hybrid.ok()) {
    auto impact = CompareVariants(s.variants, hybrid.ValueOrDie());
    std::printf("D_impact of parallel alignment on final calls: %lld "
                "(weighted %.2f)\n",
                static_cast<long long>(impact.d_count()),
                impact.weighted_d_count);
  }

  // Truth-set scoring of both pipelines.
  auto ps_serial = EvaluateAgainstTruth(s.variants, donor.truth);
  auto ps_parallel =
      EvaluateAgainstTruth(parallel_variants.ValueOrDie(), donor.truth);
  std::printf("truth-set: serial precision/sensitivity %.3f/%.3f, "
              "parallel %.3f/%.3f\n",
              ps_serial.precision, ps_serial.sensitivity,
              ps_parallel.precision, ps_parallel.sensitivity);
  // Render the full error-tracking report (future-work question 2).
  DiagnosisReportInputs inputs;
  inputs.reference = &reference;
  inputs.serial = &s;
  inputs.parallel_aligned = &parallel_aligned;
  inputs.parallel_deduped = &parallel_deduped;
  auto final_variants = parallel_variants.ValueOrDie();
  inputs.parallel_variants = &final_variants;
  inputs.truth = &donor.truth;
  auto report = GenerateDiagnosisReport(inputs);
  if (report.ok()) {
    std::printf("\n----- error-tracking report -----\n%s",
                report.ValueOrDie().markdown.c_str());
  }
  return 0;
}

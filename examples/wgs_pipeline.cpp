// Whole-genome parallel pipeline: the five Gesall MapReduce rounds over
// the DFS substrate — the workload the paper's intro motivates (a genome
// center turning FASTQ into variant calls on a cluster without rewriting
// its analysis programs).
//
//   $ ./wgs_pipeline [coverage]

#include <cstdio>
#include <cstdlib>

#include "gesall/pipeline.h"
#include "gesall/transform.h"
#include "genome/read_simulator.h"
#include "genome/reference_generator.h"

using namespace gesall;

int main(int argc, char** argv) {
  double coverage = argc > 1 ? std::atof(argv[1]) : 15.0;

  // Sample preparation (primary analysis substitute).
  ReferenceGeneratorOptions ref_options;
  ref_options.num_chromosomes = 3;
  ref_options.chromosome_length = 100'000;
  ReferenceGenome reference = GenerateReference(ref_options);
  DonorGenome donor = PlantVariants(reference, VariantPlanterOptions{});
  ReadSimulatorOptions sim_options;
  sim_options.coverage = coverage;
  SimulatedSample sample = SimulateReads(donor, sim_options);
  GenomeIndex index(reference);
  std::printf("sample: %zu pairs at %.0fx over %lld bp\n",
              sample.mate1.size(), coverage,
              static_cast<long long>(reference.TotalLength()));

  // A 4-data-node DFS; Gesall's logical-partition placement policy pins
  // each partition file to one node.
  DfsOptions dfs_options;
  dfs_options.block_size = 256 * 1024;
  dfs_options.num_data_nodes = 4;
  Dfs dfs(dfs_options);

  PipelineConfig config;
  config.alignment_partitions = 8;
  config.markdup_use_bloom = true;  // MarkDup_opt
  GesallPipeline pipeline(reference, index, &dfs, config);

  auto check = [](const Status& st) {
    if (!st.ok()) {
      std::fprintf(stderr, "pipeline error: %s\n", st.ToString().c_str());
      std::exit(1);
    }
  };
  check(pipeline.LoadSample(sample.mate1, sample.mate2));
  check(pipeline.RunRound1Alignment());
  check(pipeline.RunRound2Cleaning());
  check(pipeline.RunRound3MarkDuplicates());
  check(pipeline.RunRound4Sort());
  auto variants = pipeline.RunRound5VariantCalling();
  check(variants.status());

  std::printf("\n%-28s %10s %14s %14s %12s\n", "round", "wall (s)",
              "shuffled recs", "transform (s)", "program (s)");
  for (const auto& s : pipeline.stats()) {
    std::printf("%-28s %10.2f %14lld %14.2f %12.2f\n", s.name.c_str(),
                s.wall_seconds,
                static_cast<long long>(
                    s.counters.Get("reduce_shuffle_records")),
                s.counters.Get(kTransformMicros) / 1e6,
                s.counters.Get(kProgramMicros) / 1e6);
  }

  size_t sorted_partitions = 0;
  for (const auto& p : dfs.List("/gesall/sorted/")) {
    sorted_partitions += p.ends_with(".bam");
  }
  std::printf("\ncalled %zu variants across %zu sorted partitions\n",
              variants.ValueOrDie().size(), sorted_partitions);
  int64_t stored = 0;
  for (int n = 0; n < dfs.num_data_nodes(); ++n) {
    stored += dfs.BytesStoredOn(n);
  }
  std::printf("DFS holds %.1f MB across %d data nodes\n", stored / 1e6,
              dfs.num_data_nodes());
  return 0;
}

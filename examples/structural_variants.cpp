// Structural variant detection: plant large deletions, insertions and
// inversions into a donor, sequence it, align it, and recover the events
// from discordant read pairs — the GASV-style large-variant analysis the
// paper is bringing into its pipeline (§2.1).
//
//   $ ./structural_variants

#include <cstdio>

#include "align/aligner.h"
#include "analysis/steps.h"
#include "analysis/sv_caller.h"
#include "genome/read_simulator.h"
#include "genome/reference_generator.h"
#include "genome/sv_planter.h"

using namespace gesall;

namespace {
const char* TruthName(StructuralVariantTruth::Type t) {
  switch (t) {
    case StructuralVariantTruth::Type::kDeletion:
      return "DEL";
    case StructuralVariantTruth::Type::kInsertion:
      return "INS";
    case StructuralVariantTruth::Type::kInversion:
      return "INV";
  }
  return "?";
}
}  // namespace

int main() {
  ReferenceGeneratorOptions ro;
  ro.num_chromosomes = 2;
  ro.chromosome_length = 150'000;
  ReferenceGenome reference = GenerateReference(ro);

  VariantPlanterOptions vp;
  vp.snp_rate = 0.0005;
  vp.indel_rate = 0.0;
  DonorGenome donor = PlantVariants(reference, vp);
  SvPlanterOptions sv_options;
  sv_options.min_length = 1'500;
  sv_options.max_length = 2'500;
  auto truth = PlantStructuralVariants(&donor, sv_options);

  std::printf("planted structural variants:\n");
  for (const auto& sv : truth) {
    std::printf("  %s %s:%lld-%lld (%lld bp)\n", TruthName(sv.type),
                reference.chromosomes[sv.chrom].name.c_str(),
                static_cast<long long>(sv.start),
                static_cast<long long>(sv.end),
                static_cast<long long>(sv.length));
  }

  ReadSimulatorOptions so;
  so.coverage = 25.0;
  auto sample = SimulateReads(donor, so);
  GenomeIndex index(reference);
  PairedEndAligner aligner(index);
  auto interleaved = InterleavePairs(sample.mate1, sample.mate2);
  if (!interleaved.ok()) return 1;
  auto records = aligner.AlignPairs(interleaved.ValueOrDie());
  if (!FixMateInformation(&records).ok()) return 1;
  std::printf("\naligned %zu reads at %.0fx\n", records.size(), so.coverage);

  auto calls = CallStructuralVariants(records);
  std::printf("\ndetected structural variants:\n");
  for (const auto& call : calls) {
    if (call.type == StructuralVariantCall::Type::kTranslocation) {
      std::printf("  TRA %s:%lld <-> %s:%lld (support %d)\n",
                  reference.chromosomes[call.chrom].name.c_str(),
                  static_cast<long long>(call.start),
                  reference.chromosomes[call.chrom2].name.c_str(),
                  static_cast<long long>(call.pos2), call.support);
    } else {
      std::printf("  %s %s:%lld-%lld (support %d)\n",
                  StructuralVariantCall::TypeName(call.type),
                  reference.chromosomes[call.chrom].name.c_str(),
                  static_cast<long long>(call.start),
                  static_cast<long long>(call.end), call.support);
    }
  }

  // Score against truth (breakpoints within library slack).
  int recovered = 0;
  for (const auto& sv : truth) {
    for (const auto& call : calls) {
      bool type_match =
          (sv.type == StructuralVariantTruth::Type::kDeletion &&
           call.type == StructuralVariantCall::Type::kDeletion) ||
          (sv.type == StructuralVariantTruth::Type::kInsertion &&
           call.type == StructuralVariantCall::Type::kInsertion) ||
          (sv.type == StructuralVariantTruth::Type::kInversion &&
           call.type == StructuralVariantCall::Type::kInversion);
      if (type_match && call.chrom == sv.chrom &&
          std::llabs(call.start - sv.start) < 800) {
        ++recovered;
        break;
      }
    }
  }
  std::printf("\nrecovered %d of %zu planted events\n", recovered,
              truth.size());
  std::printf("(insertions longer than the library insert size leave no "
              "short-span signature;\n detecting them requires split-read "
              "evidence, which this caller does not use)\n");
  return 0;
}

// Quickstart: the smallest end-to-end use of the Gesall library —
// generate a reference, simulate a sample, align it, clean it, and call
// variants, all in-process with the serial (single-node) pipeline.
//
//   $ ./quickstart

#include <cstdio>

#include "gesall/diagnosis.h"
#include "gesall/pipeline.h"
#include "genome/read_simulator.h"
#include "genome/reference_generator.h"

using namespace gesall;

int main() {
  // 1. A small synthetic reference genome (2 chromosomes x 100 kb) with
  //    repeats, a centromere and blacklist regions per chromosome.
  ReferenceGeneratorOptions ref_options;
  ref_options.num_chromosomes = 2;
  ref_options.chromosome_length = 100'000;
  ReferenceGenome reference = GenerateReference(ref_options);
  std::printf("reference: %lld bp over %zu chromosomes\n",
              static_cast<long long>(reference.TotalLength()),
              reference.chromosomes.size());

  // 2. A diploid donor with planted SNPs/indels (the truth set) and a
  //    20x paired-end read sample with errors and PCR duplicates.
  DonorGenome donor = PlantVariants(reference, VariantPlanterOptions{});
  ReadSimulatorOptions sim_options;
  sim_options.coverage = 20.0;
  SimulatedSample sample = SimulateReads(donor, sim_options);
  std::printf("sample: %zu read pairs, %zu planted variants\n",
              sample.mate1.size(), donor.truth.size());

  // 3. Run the serial secondary-analysis pipeline: BWA-style alignment,
  //    read-group assignment, CleanSam, FixMateInformation,
  //    MarkDuplicates, coordinate sort, Haplotype Caller.
  GenomeIndex index(reference);
  auto interleaved = InterleavePairs(sample.mate1, sample.mate2);
  if (!interleaved.ok()) {
    std::fprintf(stderr, "interleave failed: %s\n",
                 interleaved.status().ToString().c_str());
    return 1;
  }
  auto outputs =
      RunSerialPipeline(reference, index, interleaved.ValueOrDie());
  if (!outputs.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 outputs.status().ToString().c_str());
    return 1;
  }
  const SerialStageOutputs& result = outputs.ValueOrDie();

  int64_t duplicates = 0;
  for (const auto& r : result.deduped) duplicates += r.IsDuplicate();
  std::printf("aligned %zu records, %lld flagged as duplicates\n",
              result.aligned.size(), static_cast<long long>(duplicates));
  std::printf("called %zu variants\n", result.variants.size());

  // 4. Score the calls against the planted truth.
  auto score = EvaluateAgainstTruth(result.variants, donor.truth);
  std::printf("precision %.3f, sensitivity %.3f\n", score.precision,
              score.sensitivity);

  // 5. Print the first few calls as VCF-like text.
  std::vector<std::string> names;
  for (const auto& c : reference.chromosomes) names.push_back(c.name);
  std::vector<VariantRecord> head(
      result.variants.begin(),
      result.variants.begin() + std::min<size_t>(5, result.variants.size()));
  std::printf("%s", WriteVcfText(head, names).c_str());
  return 0;
}

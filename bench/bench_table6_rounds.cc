// Table 6: the first three MapReduce rounds on Cluster A (15 data nodes)
// versus the single-node programs — super-linear speedup for the
// CPU-intensive alignment round (against the common 24-threaded Bwa
// baseline) and sublinear performance for the shuffling-intensive
// cleaning and Mark Duplicates rounds.
//
// Efficiency normalizes by the cores each side uses:
//   efficiency = speedup * baseline_cores / parallel_cores.

#include <cstdio>

#include "report.h"
#include "sim/genomics.h"

using namespace gesall;

int main() {
  auto workload = WorkloadSpec::NA12878();
  GenomicsRates rates;
  ClusterSpec a = ClusterSpec::A();
  auto server = ClusterSpec::SingleServer();
  server.node.cores = 24;  // the Table 6 baseline node has 24 cores
  server.node.core_ghz = 2.66;

  bench::Title("Table 6: three MR rounds on Cluster A vs single node");
  std::printf("  %-34s %14s %14s %9s %11s %15s\n", "Round",
              "1-node wall", "cluster wall", "speedup", "efficiency",
              "serial slot(s)");

  // --- Round 1: Bwa + SamToBam, 90 partitions, 6 mappers x 4 threads. --
  double bwa_baseline = SingleNodeStepSeconds(
      rates.bwa + rates.samtobam, workload.total_reads(), server,
      /*threads=*/24, workload.uncompressed_fastq_bytes);
  auto r1 = SimulateMrJob(
      a, AlignmentJob(workload, rates, a, /*partitions=*/90,
                      /*maps_per_node=*/6, /*threads_per_map=*/4));
  auto m1 = ComputeSpeedup(bwa_baseline, 24, r1.wall_seconds, 15 * 24);
  std::printf("  %-34s %14s %14s %9.2f %11.2f %15.0f\n",
              "Round 1: Bwa, SamToBam (24 thr base)",
              bench::Hms(bwa_baseline).c_str(),
              bench::Hms(r1.wall_seconds).c_str(), m1.speedup, m1.efficiency,
              r1.serial_slot_seconds);

  // 1-thread baseline comparison (paper: sub-linear against 360 ideal).
  double bwa_1thread = SingleNodeStepSeconds(
      rates.bwa + rates.samtobam, workload.total_reads(), server, 1,
      workload.uncompressed_fastq_bytes);
  auto m1s = ComputeSpeedup(bwa_1thread, 1, r1.wall_seconds, 15 * 24);
  std::printf("  %-34s %14s %14s %9.2f %11.2f\n",
              "  (same, 1-thread Bwa baseline)",
              bench::Hms(bwa_1thread).c_str(),
              bench::Hms(r1.wall_seconds).c_str(), m1s.speedup,
              m1s.efficiency);

  // --- Round 2: AddRepl + CleanSam | FixMateInfo. ----------------------
  double clean_baseline = SingleNodeStepSeconds(
      rates.add_replace_groups + rates.clean_sam + rates.fix_mate_info,
      workload.total_reads(), server, 1, 4 * workload.bam_bytes());
  auto r2 = SimulateMrJob(a, CleaningJob(workload, rates, a,
                                         /*partitions=*/510,
                                         /*slots_per_node=*/6));
  auto m2 = ComputeSpeedup(clean_baseline, 1, r2.wall_seconds, 90);
  std::printf("  %-34s %14s %14s %9.2f %11.2f %15.0f\n",
              "Round 2: AddRepl,CleanSam,FixMate",
              bench::Hms(clean_baseline).c_str(),
              bench::Hms(r2.wall_seconds).c_str(), m2.speedup, m2.efficiency,
              r2.serial_slot_seconds);

  // --- Round 3: SortSam + MarkDuplicates_opt. ---------------------------
  double md_baseline = SingleNodeStepSeconds(
      rates.sort_sam + rates.mark_duplicates, workload.total_reads(), server,
      1, 3 * workload.bam_bytes());
  auto r3 = SimulateMrJob(
      a, MarkDuplicatesJob(workload, rates, a, /*optimized=*/true,
                           /*partitions=*/510, /*slots_per_node=*/6));
  auto m3 = ComputeSpeedup(md_baseline, 1, r3.wall_seconds, 90);
  std::printf("  %-34s %14s %14s %9.2f %11.2f %15.0f\n",
              "Round 3: SortSam, MarkDuplicates",
              bench::Hms(md_baseline).c_str(),
              bench::Hms(r3.wall_seconds).c_str(), m3.speedup, m3.efficiency,
              r3.serial_slot_seconds);

  bench::Note("");
  bench::Note("Paper shape claims:");
  bool ok = true;
  ok &= bench::Check(m1.efficiency > 1.0,
                     "Round 1 achieves SUPER-linear speedup against the "
                     "24-threaded Bwa baseline (efficiency > 1)");
  ok &= bench::Check(m1s.efficiency < 1.0,
                     "against a 1-thread baseline the speedup is "
                     "sub-linear (streaming/transform overheads)");
  ok &= bench::Check(m2.efficiency < 0.5 && m3.efficiency < 0.5,
                     "shuffling-intensive rounds 2-3 run below 50% "
                     "resource efficiency");
  ok &= bench::Check(r1.wall_seconds < bwa_baseline,
                     "cluster beats the single node on every round");
  return ok ? 0 : 1;
}

// Shuffle data path benchmark: the pre-arena string-copy shuffle
// (per-record std::string buffering, per-record counter-map lookups,
// record-copying merges, reduce groups built from owned strings) against
// the zero-copy arena shuffle (mr/shuffle_buffer.h) on a 1M-record
// synthetic genomics workload.
//
// The measured path is the full shuffle: map-side emit + sort-and-spill
// + map-side merge across several simulated map tasks, then the
// reduce-side k-way merge and key grouping, ending in a streaming
// consume (FNV digest) that stands in for the reducer. Both engines
// must produce the same digest and group count.
//
// A fourth section measures the compression-aware data path: BGZF
// spill compression (mr/shuffle_buffer.h compress mode) plus BGZF DFS
// parts (DfsOptions::compress_parts), reporting raw vs on-disk bytes
// for both legs and the combined reduction. Because the bench is
// in-memory, the throughput comparison charges each engine the time a
// paper-era 100 MB/s spill disk would take for the bytes it actually
// moves — the trade the paper's Fig. 10 disk-utilization study makes.
//
// Emits machine-readable results as JSON (argv[1], default
// BENCH_shuffle.json in the working directory). Heap allocations are
// counted via a global operator new override, so the "one allocation
// per record" vs "one per arena block" claim is measured, not estimated.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <new>
#include <numeric>
#include <queue>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dfs/dfs.h"
#include "gesall/keys.h"
#include "mr/mapreduce.h"
#include "mr/shuffle_buffer.h"
#include "report.h"
#include "util/crc32c.h"
#include "util/executor.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {
std::atomic<int64_t> g_heap_allocations{0};
}  // namespace

void* operator new(size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace gesall {
namespace {

constexpr int kNumRecords = 1'000'000;
constexpr int kNumMapTasks = 4;
constexpr int kNumPartitions = 8;
constexpr int64_t kSortBufferBytes = 8LL << 20;  // several spills per task
constexpr int kIterations = 3;  // best-of to shed scheduler noise

// Compressed data path: fast deflate for spills (the codec sits on the
// map critical path), and a modeled spill disk for the throughput
// comparison — the paper's clusters shuffle through SATA disks whose
// effective bandwidth under concurrent spill/fetch traffic is ~80 MB/s,
// which an in-memory bench otherwise prices at zero.
constexpr int kCompressLevel = 1;
constexpr double kModeledDiskMBps = 80.0;

struct Workload {
  std::vector<std::string> keys;
  std::vector<std::string> values;
  int64_t payload_bytes = 0;
};

// Round-4-shaped records: order-preserving binary coordinate keys with a
// skewed position distribution (duplicate 5' ends) and BAM-record-sized
// values.
Workload MakeWorkload() {
  Workload w;
  w.keys.reserve(kNumRecords);
  w.values.reserve(kNumRecords);
  Rng rng(20170517);
  for (int i = 0; i < kNumRecords; ++i) {
    std::string key;
    key.push_back('\x01');
    AppendOrderedU64(&key, rng.Uniform(24));             // chromosome
    AppendOrderedU64(&key, rng.Uniform(250'000));        // position
    AppendOrderedU64(&key, rng.Next());                  // name hash
    std::string value(80 + rng.Uniform(41), '\0');
    for (auto& c : value) {
      c = static_cast<char>('A' + rng.Uniform(26));
    }
    w.payload_bytes += static_cast<int64_t>(key.size() + value.size());
    w.keys.push_back(std::move(key));
    w.values.push_back(std::move(value));
  }
  return w;
}

// Workload for the compression section: same record shape, but values
// are reads sampled from a synthetic reference at the key's position
// with sparse sequencing noise, so coordinate-sorted neighbours cover
// overlapping reference bases — the redundancy that makes sorted BAM
// (and sorted spill runs) compress well in practice. The genome is
// scaled to the sort buffer the same way 30x WGS relates to a
// production-sized buffer: one 8 MB spill window must see multi-x
// local coverage, or spill-level compression measures an
// unrealistically thin workload.
Workload MakeGenomeWorkload() {
  Workload w;
  w.keys.reserve(kNumRecords);
  w.values.reserve(kNumRecords);
  Rng rng(20170517);
  std::string ref(40'000 + 128, '\0');
  for (auto& c : ref) c = "ACGT"[rng.Uniform(4)];
  for (int i = 0; i < kNumRecords; ++i) {
    uint64_t chrom = rng.Uniform(8);
    uint64_t pos = rng.Uniform(40'000);
    std::string key;
    key.push_back('\x01');
    AppendOrderedU64(&key, chrom);                       // chromosome
    AppendOrderedU64(&key, pos);                         // position
    AppendOrderedU64(&key, rng.Next());                  // name hash
    std::string value = ref.substr(pos, 80 + rng.Uniform(41));
    for (size_t m = chrom % 16; m < value.size(); m += 33) {
      value[m] = "ACGT"[rng.Uniform(4)];                 // read errors
    }
    w.payload_bytes += static_cast<int64_t>(key.size() + value.size());
    w.keys.push_back(std::move(key));
    w.values.push_back(std::move(value));
  }
  return w;
}

// Order-insensitive-free digest of a (key, values...) group stream: the
// digest chains, so both engines must produce identical groups in
// identical order to match.
struct GroupDigest {
  uint64_t digest = 1469598103934665603ULL;
  int64_t groups = 0;
  int64_t records = 0;

  void Key(std::string_view key) {
    digest = MixSeeds(digest, Fnv1a64(key));
    ++groups;
  }
  void Value(std::string_view value) {
    digest = MixSeeds(digest, Fnv1a64(value));
    ++records;
  }
  bool operator==(const GroupDigest&) const = default;
};

// ---------------------------------------------------------------------
// Faithful reproduction of the pre-arena shuffle: per-record std::string
// pairs buffered per partition, two counter-map lookups on every emit,
// stable_sort of whole records on spill, record-copying merges, and
// reduce groups materialized as std::vector<std::string>.

struct LegacyKeyValue {
  std::string key;
  std::string value;
};
using LegacySortedRun = std::vector<LegacyKeyValue>;

class LegacyShuffle {
 public:
  LegacyShuffle(const Partitioner* partitioner, int num_partitions,
                int64_t sort_buffer_bytes)
      : partitioner_(partitioner), num_partitions_(num_partitions),
        sort_buffer_bytes_(sort_buffer_bytes), buffer_(num_partitions),
        runs_(num_partitions) {}

  void Emit(const std::string& key, const std::string& value) {
    int p = partitioner_->Partition(key, num_partitions_);
    buffered_bytes_ += static_cast<int64_t>(key.size() + value.size() + 16);
    counters_.Add("map_output_records", 1);
    counters_.Add("map_output_bytes",
                  static_cast<int64_t>(key.size() + value.size()));
    buffer_[p].push_back({key, value});
    if (buffered_bytes_ > sort_buffer_bytes_) Spill();
  }

  void Finish() {
    Spill();
    for (int p = 0; p < num_partitions_; ++p) {
      if (runs_[p].size() > 1) Merge(p);
    }
  }

  const std::vector<LegacySortedRun>& runs(int p) const { return runs_[p]; }
  const JobCounters& counters() const { return counters_; }

 private:
  void Spill() {
    bool any = false;
    for (int p = 0; p < num_partitions_; ++p) {
      if (buffer_[p].empty()) continue;
      any = true;
      std::stable_sort(
          buffer_[p].begin(), buffer_[p].end(),
          [](const LegacyKeyValue& a, const LegacyKeyValue& b) {
            return a.key < b.key;
          });
      runs_[p].push_back(std::move(buffer_[p]));
      buffer_[p].clear();
    }
    if (any) counters_.Add("map_spills", 1);
    buffered_bytes_ = 0;
  }

  void Merge(int p) {
    auto& runs = runs_[p];
    LegacySortedRun merged;
    size_t total = 0;
    int64_t merge_bytes = 0;
    for (const auto& run : runs) {
      total += run.size();
      for (const auto& kv : run) {
        merge_bytes +=
            static_cast<int64_t>(kv.key.size() + kv.value.size());
      }
    }
    counters_.Add("map_merge_bytes", merge_bytes);
    merged.reserve(total);
    using Cursor = std::pair<size_t, size_t>;
    auto less = [&runs](const Cursor& a, const Cursor& b) {
      const LegacyKeyValue& ka = runs[a.first][a.second];
      const LegacyKeyValue& kb = runs[b.first][b.second];
      if (ka.key != kb.key) return ka.key > kb.key;
      return a.first > b.first;
    };
    std::priority_queue<Cursor, std::vector<Cursor>, decltype(less)> heap(
        less);
    for (size_t r = 0; r < runs.size(); ++r) {
      if (!runs[r].empty()) heap.push({r, 0});
    }
    while (!heap.empty()) {
      auto [r, o] = heap.top();
      heap.pop();
      merged.push_back(std::move(runs[r][o]));
      if (o + 1 < runs[r].size()) heap.push({r, o + 1});
    }
    runs.clear();
    runs.push_back(std::move(merged));
  }

  const Partitioner* partitioner_;
  int num_partitions_;
  int64_t sort_buffer_bytes_;
  int64_t buffered_bytes_ = 0;
  std::vector<LegacySortedRun> buffer_;
  std::vector<std::vector<LegacySortedRun>> runs_;
  JobCounters counters_;
};

struct RunResult {
  double seconds = 0;
  int64_t heap_allocations = 0;
  int64_t spills = 0;
  int64_t shuffle_bytes = 0;
  int64_t checksummed_bytes = 0;
  // Serialized spill footprint: what the run stream costs before the
  // codec and what actually lands on disk (equal without compression).
  int64_t disk_bytes_raw = 0;
  int64_t disk_bytes = 0;
  int64_t compress_micros = 0;
  int64_t decompress_micros = 0;
  bool verified = true;
  GroupDigest digest;
};

// Wall-clock plus the time a kModeledDiskMBps spill disk spends on the
// bytes this engine moves: spill write, map-merge read + re-write, and
// the reduce-side fetch read — 4 passes over the on-disk footprint.
double ModeledSeconds(const RunResult& r) {
  return r.seconds +
         4.0 * static_cast<double>(r.disk_bytes) / (1 << 20) /
             kModeledDiskMBps;
}

// Reduce-side walk of the legacy engine: per partition, gather every
// task's run, k-way merge (stable by task index), group, and build each
// group's values as owned strings — exactly what the pre-arena reduce
// path did. `consume(key, values)` stands in for the reducer.
template <typename Consume>
void WalkLegacyGroups(const std::vector<LegacyShuffle>& tasks,
                      const Consume& consume) {
  for (int p = 0; p < kNumPartitions; ++p) {
    std::vector<const LegacySortedRun*> runs;
    for (const auto& t : tasks) {
      for (const auto& run : t.runs(p)) runs.push_back(&run);
    }
    using Cursor = std::pair<size_t, size_t>;
    auto less = [&runs](const Cursor& a, const Cursor& b) {
      const LegacyKeyValue& ka = (*runs[a.first])[a.second];
      const LegacyKeyValue& kb = (*runs[b.first])[b.second];
      if (ka.key != kb.key) return ka.key > kb.key;
      return a.first > b.first;
    };
    std::priority_queue<Cursor, std::vector<Cursor>, decltype(less)> heap(
        less);
    for (size_t r = 0; r < runs.size(); ++r) {
      if (!runs[r]->empty()) heap.push({r, 0});
    }
    std::string current_key;
    bool has_current = false;
    std::vector<std::string> values;
    while (!heap.empty()) {
      auto [r, o] = heap.top();
      heap.pop();
      const LegacyKeyValue& kv = (*runs[r])[o];
      if (!has_current || kv.key != current_key) {
        if (has_current) consume(current_key, values);
        current_key = kv.key;  // string copy, as in the old engine
        has_current = true;
        values.clear();
      }
      values.push_back(kv.value);  // string copy, as in the old engine
      if (o + 1 < runs[r]->size()) heap.push({r, o + 1});
    }
    if (has_current) consume(current_key, values);
  }
}

// Reduce-side walk of the arena engine: entry-index k-way merge, groups
// as views into the frozen arenas.
template <typename Consume>
void WalkArenaGroups(const std::vector<ShuffleBuffer>& tasks,
                     const Consume& consume) {
  for (int p = 0; p < kNumPartitions; ++p) {
    std::vector<const ShuffleRun*> runs;
    for (const auto& t : tasks) {
      for (const auto& run : t.runs(p)) runs.push_back(&run);
    }
    ShuffleRunMerger merger(runs);
    const ShuffleEntry* current = nullptr;
    std::vector<std::string_view> values;
    for (const ShuffleEntry* e = merger.Next(); e != nullptr;
         e = merger.Next()) {
      if (current == nullptr || !ShuffleKeyEqual(*e, *current)) {
        if (current != nullptr) consume(current->key, values);
        current = e;
        values.clear();
      }
      values.push_back(e->value);
    }
    if (current != nullptr) consume(current->key, values);
  }
}

// Reduce-side walk of the compressed engine: lazy-decompressing cursors
// feed the k-way merge one 64 KiB block at a time, and each group's
// values are copied into a reused buffer before the consume — the
// engine's streaming group-copy path, since reader entries die on the
// next Advance().
template <typename Consume>
void WalkCompressedGroups(const std::vector<ShuffleBuffer>& tasks,
                          const Consume& consume,
                          int64_t* decompress_micros) {
  for (int p = 0; p < kNumPartitions; ++p) {
    std::vector<std::unique_ptr<CompressedShuffleRunReader>> readers;
    std::vector<ShuffleRunReader*> reader_ptrs;
    for (const auto& t : tasks) {
      for (const auto& crun : t.compressed_runs(p)) {
        readers.push_back(
            std::make_unique<CompressedShuffleRunReader>(crun.bytes));
        reader_ptrs.push_back(readers.back().get());
      }
    }
    ShuffleRunMerger merger(reader_ptrs);
    std::string current_key;
    bool has_group = false;
    std::string group_buf;
    std::vector<std::pair<size_t, size_t>> spans;
    std::vector<std::string_view> values;
    auto flush = [&] {
      if (!has_group) return;
      values.clear();
      const std::string_view buf = group_buf;
      for (const auto& [off, len] : spans) values.push_back(buf.substr(off, len));
      consume(current_key, values);
    };
    for (const ShuffleEntry* e = merger.Next(); e != nullptr;
         e = merger.Next()) {
      if (!has_group || e->key != current_key) {
        flush();
        current_key.assign(e->key);
        group_buf.clear();
        spans.clear();
        has_group = true;
      }
      spans.emplace_back(group_buf.size(), e->value.size());
      group_buf.append(e->value);
    }
    flush();
    if (decompress_micros != nullptr) {
      for (const auto& r : readers) {
        *decompress_micros += r->decompress_micros();
      }
    }
  }
}

// The timed consumer: touches every group and value size (so the
// grouping work cannot be elided) without the verification hash, which
// both engines would pay identically.
struct CountingConsumer {
  int64_t groups = 0;
  int64_t value_bytes = 0;
  template <typename Values>
  void operator()(std::string_view, const Values& values) {
    ++groups;
    for (const auto& v : values) {
      value_bytes += static_cast<int64_t>(v.size());
    }
  }
};

RunResult RunLegacy(const Workload& w, const Partitioner& partitioner) {
  RunResult result;
  int64_t allocs_before = g_heap_allocations.load();
  Stopwatch clock;
  // Map side: kNumMapTasks tasks, each shuffling its slice.
  std::vector<LegacyShuffle> tasks;
  tasks.reserve(kNumMapTasks);
  for (int t = 0; t < kNumMapTasks; ++t) {
    tasks.emplace_back(&partitioner, kNumPartitions, kSortBufferBytes);
  }
  for (int i = 0; i < kNumRecords; ++i) {
    tasks[static_cast<size_t>(i) * kNumMapTasks / kNumRecords].Emit(
        w.keys[i], w.values[i]);
  }
  for (auto& t : tasks) t.Finish();
  CountingConsumer counting;
  WalkLegacyGroups(tasks, [&](std::string_view key,
                              const std::vector<std::string>& values) {
    counting(key, values);
  });
  result.seconds = clock.ElapsedSeconds();
  result.heap_allocations = g_heap_allocations.load() - allocs_before;

  // Verification (untimed): digest the full group stream.
  WalkLegacyGroups(tasks, [&](std::string_view key,
                              const std::vector<std::string>& values) {
    result.digest.Key(key);
    for (const auto& v : values) result.digest.Value(v);
  });
  if (result.digest.groups != counting.groups) result.digest.digest = 0;
  for (const auto& t : tasks) {
    result.spills += t.counters().Get("map_spills");
    result.shuffle_bytes += t.counters().Get("map_output_bytes");
  }
  return result;
}

RunResult RunArena(const Workload& w, const Partitioner& partitioner,
                   bool checksum) {
  RunResult result;
  int64_t allocs_before = g_heap_allocations.load();
  Stopwatch clock;
  std::vector<ShuffleBuffer> tasks;
  tasks.reserve(kNumMapTasks);
  for (int t = 0; t < kNumMapTasks; ++t) {
    tasks.emplace_back(kNumPartitions, kSortBufferBytes,
                       /*combiner=*/nullptr, checksum);
  }
  // Batched engine counters, as in MapContextImpl.
  int64_t records = 0, bytes = 0;
  JobCounters counters;
  for (int i = 0; i < kNumRecords; ++i) {
    int p = partitioner.PartitionView(w.keys[i], kNumPartitions);
    ++records;
    bytes += static_cast<int64_t>(w.keys[i].size() + w.values[i].size());
    tasks[static_cast<size_t>(i) * kNumMapTasks / kNumRecords]
        .Add(p, w.keys[i], w.values[i])
        .ok();
  }
  for (auto& t : tasks) t.Finish().ok();
  if (checksum) {
    // Reduce-fetch verification, as MapReduceJob::Run performs before
    // handing map outputs to the reduce merge: recompute every run CRC.
    for (const auto& t : tasks) {
      for (int p = 0; p < kNumPartitions; ++p) {
        result.verified &= t.VerifyPartition(p).ok();
      }
    }
  }
  counters.Add("map_output_records", records);
  counters.Add("map_output_bytes", bytes);
  CountingConsumer counting;
  WalkArenaGroups(tasks, [&](std::string_view key,
                             const std::vector<std::string_view>& values) {
    counting(key, values);
  });
  result.seconds = clock.ElapsedSeconds();
  result.heap_allocations = g_heap_allocations.load() - allocs_before;

  // Verification (untimed): digest the full group stream.
  WalkArenaGroups(tasks, [&](std::string_view key,
                             const std::vector<std::string_view>& values) {
    result.digest.Key(key);
    for (const auto& v : values) result.digest.Value(v);
  });
  if (result.digest.groups != counting.groups) result.digest.digest = 0;
  for (const auto& t : tasks) {
    result.spills += t.stats().spills;
    result.checksummed_bytes += t.stats().checksummed_bytes;
  }
  result.shuffle_bytes = counters.Get("map_output_bytes");
  // Uncompressed spill streams land as-is: [u32 klen][u32 vlen] framing
  // plus the payload, per record.
  result.disk_bytes_raw = w.payload_bytes + 8LL * kNumRecords;
  result.disk_bytes = result.disk_bytes_raw;
  return result;
}

// The compressed shuffle: identical map/merge/reduce structure, but
// every sealed spill run goes through the BGZF codec and the reduce
// merge inflates lazily, one 64 KiB block per cursor.
RunResult RunCompressed(const Workload& w, const Partitioner& partitioner,
                        Executor* executor) {
  RunResult result;
  int64_t allocs_before = g_heap_allocations.load();
  Stopwatch clock;
  std::vector<ShuffleBuffer> tasks;
  tasks.reserve(kNumMapTasks);
  for (int t = 0; t < kNumMapTasks; ++t) {
    tasks.emplace_back(kNumPartitions, kSortBufferBytes,
                       /*combiner=*/nullptr, /*checksum=*/true,
                       /*compress=*/true, kCompressLevel, executor);
  }
  for (int i = 0; i < kNumRecords; ++i) {
    int p = partitioner.PartitionView(w.keys[i], kNumPartitions);
    tasks[static_cast<size_t>(i) * kNumMapTasks / kNumRecords]
        .Add(p, w.keys[i], w.values[i])
        .ok();
  }
  for (auto& t : tasks) t.Finish().ok();
  result.shuffle_bytes = w.payload_bytes;
  for (const auto& t : tasks) {
    for (int p = 0; p < kNumPartitions; ++p) {
      result.verified &= t.VerifyPartition(p).ok();
    }
  }
  CountingConsumer counting;
  WalkCompressedGroups(
      tasks,
      [&](std::string_view key, const std::vector<std::string_view>& values) {
        counting(key, values);
      },
      &result.decompress_micros);
  result.seconds = clock.ElapsedSeconds();
  result.heap_allocations = g_heap_allocations.load() - allocs_before;

  // Verification (untimed): digest the full group stream.
  WalkCompressedGroups(
      tasks,
      [&](std::string_view key, const std::vector<std::string_view>& values) {
        result.digest.Key(key);
        for (const auto& v : values) result.digest.Value(v);
      },
      nullptr);
  if (result.digest.groups != counting.groups) result.digest.digest = 0;
  for (const auto& t : tasks) {
    result.spills += t.stats().spills;
    result.checksummed_bytes += t.stats().checksummed_bytes;
    result.compress_micros += t.stats().compress_micros;
    result.decompress_micros += t.stats().decompress_micros;
    for (int p = 0; p < kNumPartitions; ++p) {
      for (const auto& crun : t.compressed_runs(p)) {
        result.disk_bytes += static_cast<int64_t>(crun.bytes.size());
        result.disk_bytes_raw += crun.raw_bytes;
      }
    }
  }
  return result;
}

// DFS leg of the data path: each partition's merged, coordinate-sorted
// output stream written back as a round part, with and without
// DfsOptions::compress_parts, read back to prove byte identity.
struct DfsLeg {
  int64_t bytes_raw = 0;
  int64_t bytes_stored = 0;
  int64_t compress_micros = 0;
  int64_t decompress_micros = 0;
  double seconds = 0;
  bool roundtrip_ok = true;
};

DfsLeg RunDfsParts(const std::vector<std::string>& parts, bool compress) {
  DfsOptions options;
  options.block_size = 4 << 20;
  options.replication = 1;  // count the canonical copy once
  options.num_data_nodes = 4;
  options.compress_parts = compress;
  options.compress_level = kCompressLevel;
  Dfs dfs(options);
  DfsLeg leg;
  Stopwatch clock;
  for (size_t p = 0; p < parts.size(); ++p) {
    std::string path = "/round4/part-" + std::to_string(p);
    dfs.Write(path, parts[p]).ok();
    auto back = dfs.Read(path);
    leg.roundtrip_ok &= back.ok() && back.ValueOrDie() == parts[p];
  }
  leg.seconds = clock.ElapsedSeconds();
  DfsStats stats = dfs.stats();
  leg.bytes_raw = stats.bytes_written_raw;
  leg.bytes_stored = stats.bytes_written_stored;
  leg.compress_micros = stats.compress_micros;
  leg.decompress_micros = stats.decompress_micros;
  return leg;
}

// The round-output parts: per-partition serialized record streams in
// key order, as the reduce side of Round 4 writes them.
std::vector<std::string> MakeParts(const Workload& w,
                                   const Partitioner& partitioner) {
  std::vector<std::vector<int>> by_part(kNumPartitions);
  for (int i = 0; i < kNumRecords; ++i) {
    by_part[partitioner.PartitionView(w.keys[i], kNumPartitions)]
        .push_back(i);
  }
  std::vector<std::string> parts(kNumPartitions);
  for (int p = 0; p < kNumPartitions; ++p) {
    auto& order = by_part[p];
    std::sort(order.begin(), order.end(),
              [&](int a, int b) { return w.keys[a] < w.keys[b]; });
    std::string& out = parts[p];
    for (int i : order) {
      uint32_t klen = static_cast<uint32_t>(w.keys[i].size());
      uint32_t vlen = static_cast<uint32_t>(w.values[i].size());
      out.append(reinterpret_cast<const char*>(&klen), 4);
      out.append(reinterpret_cast<const char*>(&vlen), 4);
      out += w.keys[i];
      out += w.values[i];
    }
  }
  return parts;
}

// ---------------------------------------------------------------------
// Raw CRC32C throughput: the hardware-dispatched path vs the portable
// slice-by-8 table, over a buffer large enough to stream from memory.

struct CrcThroughput {
  bool hardware = false;
  double hardware_mb_per_sec = 0;
  double portable_mb_per_sec = 0;
};

CrcThroughput MeasureCrc32c() {
  constexpr size_t kBufBytes = 64 << 20;
  std::string buf(kBufBytes, '\0');
  Rng rng(42);
  for (size_t i = 0; i + 8 <= buf.size(); i += 8) {
    uint64_t v = rng.Next();
    std::memcpy(&buf[i], &v, 8);
  }
  auto time_mbps = [&](auto&& extend) {
    double best = 0;
    uint32_t sink = 0;
    for (int i = 0; i < kIterations; ++i) {
      Stopwatch clock;
      sink ^= extend(sink, buf.data(), buf.size());
      double s = clock.ElapsedSeconds();
      double mbps = static_cast<double>(kBufBytes) / (1 << 20) / s;
      if (mbps > best) best = mbps;
    }
    // Keep the checksum observable so the loop cannot be elided.
    if (sink == 0x12345678u) std::printf(" ");
    return best;
  };
  CrcThroughput t;
  t.hardware = Crc32cHardwareAvailable();
  t.hardware_mb_per_sec = time_mbps(ExtendCrc32c);
  t.portable_mb_per_sec = time_mbps(ExtendCrc32cPortable);
  return t;
}

template <typename Fn>
RunResult BestOf(int iterations, const Fn& fn) {
  RunResult best = fn();
  for (int i = 1; i < iterations; ++i) {
    RunResult r = fn();
    if (r.seconds < best.seconds) best = r;
  }
  return best;
}

void PrintJson(std::FILE* f, const Workload& w, const Workload& wc,
               const RunResult& legacy, const RunResult& arena,
               const RunResult& arena_checksum, const RunResult& uncompressed,
               const RunResult& compressed, const DfsLeg& dfs_raw,
               const DfsLeg& dfs_comp, const CrcThroughput& crc,
               double overhead_pct, double modeled_ratio) {
  auto rate = [&](const RunResult& r) { return kNumRecords / r.seconds; };
  auto mbps = [&](const RunResult& r) {
    return static_cast<double>(w.payload_bytes) / (1 << 20) / r.seconds;
  };
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"shuffle\",\n");
  std::fprintf(f, "  \"records\": %d,\n", kNumRecords);
  std::fprintf(f, "  \"map_tasks\": %d,\n", kNumMapTasks);
  std::fprintf(f, "  \"partitions\": %d,\n", kNumPartitions);
  std::fprintf(f, "  \"payload_bytes\": %lld,\n",
               static_cast<long long>(w.payload_bytes));
  std::fprintf(f, "  \"sort_buffer_bytes\": %lld,\n",
               static_cast<long long>(kSortBufferBytes));
  std::fprintf(f, "  \"iterations\": %d,\n", kIterations);
  auto section = [&](const char* name, const RunResult& r) {
    std::fprintf(f, "  \"%s\": {\n", name);
    std::fprintf(f, "    \"seconds\": %.4f,\n", r.seconds);
    std::fprintf(f, "    \"records_per_sec\": %.0f,\n", rate(r));
    std::fprintf(f, "    \"shuffle_mb_per_sec\": %.1f,\n", mbps(r));
    std::fprintf(f, "    \"heap_allocations\": %lld,\n",
                 static_cast<long long>(r.heap_allocations));
    std::fprintf(f, "    \"spills\": %lld\n",
                 static_cast<long long>(r.spills));
    std::fprintf(f, "  },\n");
  };
  section("legacy_string_copy", legacy);
  section("arena_zero_copy", arena);
  section("arena_zero_copy_checksummed", arena_checksum);
  std::fprintf(f, "  \"speedup_records_per_sec\": %.2f,\n",
               rate(arena) / rate(legacy));
  std::fprintf(f, "  \"allocation_reduction\": %.1f,\n",
               static_cast<double>(legacy.heap_allocations) /
                   static_cast<double>(arena.heap_allocations));
  std::fprintf(f, "  \"checksum_overhead_percent\": %.2f,\n", overhead_pct);
  std::fprintf(f, "  \"checksummed_bytes\": %lld,\n",
               static_cast<long long>(arena_checksum.checksummed_bytes));
  const int64_t raw_total = uncompressed.disk_bytes + dfs_raw.bytes_stored;
  const int64_t disk_total = compressed.disk_bytes + dfs_comp.bytes_stored;
  std::fprintf(f, "  \"compression\": {\n");
  std::fprintf(f, "    \"level\": %d,\n", kCompressLevel);
  std::fprintf(f, "    \"workload\": \"genome_reads\",\n");
  std::fprintf(f, "    \"payload_bytes\": %lld,\n",
               static_cast<long long>(wc.payload_bytes));
  std::fprintf(f, "    \"seconds_uncompressed\": %.4f,\n",
               uncompressed.seconds);
  std::fprintf(f, "    \"seconds_compressed\": %.4f,\n", compressed.seconds);
  std::fprintf(f, "    \"modeled_disk_mb_per_sec\": %.0f,\n",
               kModeledDiskMBps);
  std::fprintf(f, "    \"shuffle_disk_bytes_raw\": %lld,\n",
               static_cast<long long>(uncompressed.disk_bytes));
  std::fprintf(f, "    \"shuffle_disk_bytes_compressed\": %lld,\n",
               static_cast<long long>(compressed.disk_bytes));
  std::fprintf(f, "    \"dfs_part_bytes_raw\": %lld,\n",
               static_cast<long long>(dfs_raw.bytes_stored));
  std::fprintf(f, "    \"dfs_part_bytes_stored\": %lld,\n",
               static_cast<long long>(dfs_comp.bytes_stored));
  std::fprintf(f, "    \"combined_disk_reduction\": %.2f,\n",
               static_cast<double>(raw_total) /
                   static_cast<double>(disk_total));
  std::fprintf(f, "    \"compress_micros\": %lld,\n",
               static_cast<long long>(compressed.compress_micros +
                                      dfs_comp.compress_micros));
  std::fprintf(f, "    \"decompress_micros\": %lld,\n",
               static_cast<long long>(compressed.decompress_micros +
                                      dfs_comp.decompress_micros));
  std::fprintf(f, "    \"modeled_records_per_sec_uncompressed\": %.0f,\n",
               kNumRecords / ModeledSeconds(uncompressed));
  std::fprintf(f, "    \"modeled_records_per_sec_compressed\": %.0f,\n",
               kNumRecords / ModeledSeconds(compressed));
  std::fprintf(f, "    \"modeled_throughput_vs_uncompressed\": %.3f\n",
               modeled_ratio);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"crc32c\": {\n");
  std::fprintf(f, "    \"hardware_dispatch\": %s,\n",
               crc.hardware ? "true" : "false");
  std::fprintf(f, "    \"hardware_mb_per_sec\": %.0f,\n",
               crc.hardware_mb_per_sec);
  std::fprintf(f, "    \"portable_mb_per_sec\": %.0f\n",
               crc.portable_mb_per_sec);
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
}

int Main(int argc, char** argv) {
  bench::Title("Shuffle data path: string-copy vs zero-copy arena");
  bench::Note("1M coordinate-keyed records through map spill/sort/merge + "
              "reduce merge/group");

  Workload w = MakeWorkload();
  HashPartitioner partitioner;

  RunResult legacy = BestOf(kIterations, [&] {
    return RunLegacy(w, partitioner);
  });
  // The overhead and modeled-throughput ratios are measured pairwise —
  // each iteration times both sides back to back and the best iteration
  // wins — so scheduler drift between two separately-timed best-of
  // sections cannot masquerade as codec or checksum cost.
  RunResult arena, arena_checksum;
  double overhead_pct = 1e18;
  for (int i = 0; i < kIterations; ++i) {
    RunResult a = RunArena(w, partitioner, /*checksum=*/false);
    RunResult c = RunArena(w, partitioner, /*checksum=*/true);
    overhead_pct = std::min(overhead_pct,
                            (c.seconds / a.seconds - 1.0) * 100.0);
    if (i == 0 || a.seconds < arena.seconds) arena = std::move(a);
    if (i == 0 || c.seconds < arena_checksum.seconds) {
      arena_checksum = std::move(c);
    }
  }
  // Compression section: genome-shaped values, and its own uncompressed
  // comparator on the same workload so disk bytes, digests, and modeled
  // throughput are apples-to-apples.
  Workload wc = MakeGenomeWorkload();
  Executor codec_pool(std::clamp(
      static_cast<int>(std::thread::hardware_concurrency()), 1, 8));
  RunResult uncompressed, compressed;
  double modeled_ratio = 0;
  for (int i = 0; i < kIterations; ++i) {
    RunResult u = RunArena(wc, partitioner, /*checksum=*/true);
    RunResult c = RunCompressed(wc, partitioner, &codec_pool);
    modeled_ratio =
        std::max(modeled_ratio, ModeledSeconds(u) / ModeledSeconds(c));
    if (i == 0 || u.seconds < uncompressed.seconds) {
      uncompressed = std::move(u);
    }
    if (i == 0 || c.seconds < compressed.seconds) compressed = std::move(c);
  }
  std::vector<std::string> parts = MakeParts(wc, partitioner);
  DfsLeg dfs_raw = RunDfsParts(parts, /*compress=*/false);
  DfsLeg dfs_comp = RunDfsParts(parts, /*compress=*/true);
  CrcThroughput crc = MeasureCrc32c();

  bool identical = legacy.digest == arena.digest &&
                   legacy.digest == arena_checksum.digest &&
                   uncompressed.digest == compressed.digest;
  double speedup = legacy.seconds / arena.seconds;

  std::printf("  %-22s %10s %14s %12s %14s\n", "engine", "seconds",
              "records/sec", "MB/sec", "allocations");
  auto row = [&](const char* name, const RunResult& r) {
    std::printf("  %-22s %10.3f %14.0f %12.1f %14lld\n", name, r.seconds,
                kNumRecords / r.seconds,
                static_cast<double>(w.payload_bytes) / (1 << 20) / r.seconds,
                static_cast<long long>(r.heap_allocations));
  };
  row("legacy string-copy", legacy);
  row("arena zero-copy", arena);
  row("arena + CRC32C", arena_checksum);
  std::printf("  speedup: %.2fx, allocation reduction: %.1fx\n", speedup,
              static_cast<double>(legacy.heap_allocations) /
                  static_cast<double>(arena.heap_allocations));
  std::printf("  checksum overhead: %.2f%% (spill CRC + fetch verify of "
              "%lld bytes)\n",
              overhead_pct,
              static_cast<long long>(arena_checksum.checksummed_bytes));
  std::printf("  crc32c: hardware %s, %.0f MB/s hw, %.0f MB/s portable\n",
              crc.hardware ? "yes" : "no", crc.hardware_mb_per_sec,
              crc.portable_mb_per_sec);

  // Compression section: raw vs on-disk bytes for both legs, and the
  // throughput comparison under the modeled spill disk. Genome-shaped
  // workload, so numbers differ from the sections above.
  std::printf("\n  compressed data path (genome workload, level %d):\n",
              kCompressLevel);
  std::printf("  %-22s %10s %14s %12s %14s\n", "engine", "seconds",
              "records/sec", "MB/sec", "allocations");
  auto wc_row = [&](const char* name, const RunResult& r) {
    std::printf("  %-22s %10.3f %14.0f %12.1f %14lld\n", name, r.seconds,
                kNumRecords / r.seconds,
                static_cast<double>(wc.payload_bytes) / (1 << 20) / r.seconds,
                static_cast<long long>(r.heap_allocations));
  };
  wc_row("arena + CRC32C", uncompressed);
  wc_row("arena + BGZF spills", compressed);
  const int64_t raw_total = uncompressed.disk_bytes + dfs_raw.bytes_stored;
  const int64_t disk_total = compressed.disk_bytes + dfs_comp.bytes_stored;
  const double combined_reduction =
      static_cast<double>(raw_total) / static_cast<double>(disk_total);
  std::printf("  %-22s %14s %14s %8s\n", "disk bytes", "raw", "on disk",
              "ratio");
  auto disk_row = [&](const char* name, int64_t raw_bytes, int64_t disk) {
    std::printf("  %-22s %14lld %14lld %7.2fx\n", name,
                static_cast<long long>(raw_bytes),
                static_cast<long long>(disk),
                static_cast<double>(raw_bytes) / static_cast<double>(disk));
  };
  disk_row("shuffle spills", uncompressed.disk_bytes, compressed.disk_bytes);
  disk_row("DFS round parts", dfs_raw.bytes_stored, dfs_comp.bytes_stored);
  disk_row("combined", raw_total, disk_total);
  std::printf("  codec cpu: %.2fs deflate, %.2fs inflate (shuffle + DFS)\n",
              static_cast<double>(compressed.compress_micros +
                                  dfs_comp.compress_micros) / 1e6,
              static_cast<double>(compressed.decompress_micros +
                                  dfs_comp.decompress_micros) / 1e6);
  std::printf("  with a %.0f MB/s spill disk: %.0f rec/s uncompressed, "
              "%.0f rec/s compressed (%.2fx)\n",
              kModeledDiskMBps, kNumRecords / ModeledSeconds(uncompressed),
              kNumRecords / ModeledSeconds(compressed), modeled_ratio);

  bool ok = true;
  ok &= bench::Check(identical,
                     "both engines produce identical groups (digest match)");
  ok &= bench::Check(legacy.spills == arena.spills &&
                         legacy.shuffle_bytes == arena.shuffle_bytes,
                     "identical spill counts and shuffle bytes");
  ok &= bench::Check(speedup >= 2.0,
                     "arena shuffle >= 2x record throughput");
  ok &= bench::Check(arena.heap_allocations * 10 < legacy.heap_allocations,
                     "arena path allocates >= 10x less");
  ok &= bench::Check(arena_checksum.verified &&
                         arena_checksum.checksummed_bytes > 0,
                     "every partition verifies against its run CRCs");
  ok &= bench::Check(overhead_pct <= 10.0,
                     "checksum overhead <= 10% on record throughput");
  ok &= bench::Check(compressed.verified && dfs_raw.roundtrip_ok &&
                         dfs_comp.roundtrip_ok,
                     "compressed spills verify and DFS parts round-trip "
                     "byte-identically");
  ok &= bench::Check(combined_reduction >= 2.5,
                     "combined shuffle+DFS on-disk bytes cut >= 2.5x");
  ok &= bench::Check(modeled_ratio >= 0.85,
                     "compressed records/sec within 15% of uncompressed "
                     "(modeled spill disk)");

  const char* out_path = argc > 1 ? argv[1] : "BENCH_shuffle.json";
  if (std::FILE* f = std::fopen(out_path, "w")) {
    PrintJson(f, w, wc, legacy, arena, arena_checksum, uncompressed,
              compressed, dfs_raw, dfs_comp, crc, overhead_pct,
              modeled_ratio);
    std::fclose(f);
    bench::Note(std::string("wrote ") + out_path);
  } else {
    bench::Check(false, std::string("failed to open ") + out_path);
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace gesall

int main(int argc, char** argv) { return gesall::Main(argc, argv); }

// Shuffle data path benchmark: the pre-arena string-copy shuffle
// (per-record std::string buffering, per-record counter-map lookups,
// record-copying merges, reduce groups built from owned strings) against
// the zero-copy arena shuffle (mr/shuffle_buffer.h) on a 1M-record
// synthetic genomics workload.
//
// The measured path is the full shuffle: map-side emit + sort-and-spill
// + map-side merge across several simulated map tasks, then the
// reduce-side k-way merge and key grouping, ending in a streaming
// consume (FNV digest) that stands in for the reducer. Both engines
// must produce the same digest and group count.
//
// Emits machine-readable results as JSON (argv[1], default
// BENCH_shuffle.json in the working directory). Heap allocations are
// counted via a global operator new override, so the "one allocation
// per record" vs "one per arena block" claim is measured, not estimated.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "gesall/keys.h"
#include "mr/mapreduce.h"
#include "mr/shuffle_buffer.h"
#include "report.h"
#include "util/crc32c.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {
std::atomic<int64_t> g_heap_allocations{0};
}  // namespace

void* operator new(size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace gesall {
namespace {

constexpr int kNumRecords = 1'000'000;
constexpr int kNumMapTasks = 4;
constexpr int kNumPartitions = 8;
constexpr int64_t kSortBufferBytes = 8LL << 20;  // several spills per task
constexpr int kIterations = 3;  // best-of to shed scheduler noise

struct Workload {
  std::vector<std::string> keys;
  std::vector<std::string> values;
  int64_t payload_bytes = 0;
};

// Round-4-shaped records: order-preserving binary coordinate keys with a
// skewed position distribution (duplicate 5' ends) and BAM-record-sized
// values.
Workload MakeWorkload() {
  Workload w;
  w.keys.reserve(kNumRecords);
  w.values.reserve(kNumRecords);
  Rng rng(20170517);
  for (int i = 0; i < kNumRecords; ++i) {
    std::string key;
    key.push_back('\x01');
    AppendOrderedU64(&key, rng.Uniform(24));             // chromosome
    AppendOrderedU64(&key, rng.Uniform(250'000));        // position
    AppendOrderedU64(&key, rng.Next());                  // name hash
    std::string value(80 + rng.Uniform(41), '\0');
    for (auto& c : value) {
      c = static_cast<char>('A' + rng.Uniform(26));
    }
    w.payload_bytes += static_cast<int64_t>(key.size() + value.size());
    w.keys.push_back(std::move(key));
    w.values.push_back(std::move(value));
  }
  return w;
}

// Order-insensitive-free digest of a (key, values...) group stream: the
// digest chains, so both engines must produce identical groups in
// identical order to match.
struct GroupDigest {
  uint64_t digest = 1469598103934665603ULL;
  int64_t groups = 0;
  int64_t records = 0;

  void Key(std::string_view key) {
    digest = MixSeeds(digest, Fnv1a64(key));
    ++groups;
  }
  void Value(std::string_view value) {
    digest = MixSeeds(digest, Fnv1a64(value));
    ++records;
  }
  bool operator==(const GroupDigest&) const = default;
};

// ---------------------------------------------------------------------
// Faithful reproduction of the pre-arena shuffle: per-record std::string
// pairs buffered per partition, two counter-map lookups on every emit,
// stable_sort of whole records on spill, record-copying merges, and
// reduce groups materialized as std::vector<std::string>.

struct LegacyKeyValue {
  std::string key;
  std::string value;
};
using LegacySortedRun = std::vector<LegacyKeyValue>;

class LegacyShuffle {
 public:
  LegacyShuffle(const Partitioner* partitioner, int num_partitions,
                int64_t sort_buffer_bytes)
      : partitioner_(partitioner), num_partitions_(num_partitions),
        sort_buffer_bytes_(sort_buffer_bytes), buffer_(num_partitions),
        runs_(num_partitions) {}

  void Emit(const std::string& key, const std::string& value) {
    int p = partitioner_->Partition(key, num_partitions_);
    buffered_bytes_ += static_cast<int64_t>(key.size() + value.size() + 16);
    counters_.Add("map_output_records", 1);
    counters_.Add("map_output_bytes",
                  static_cast<int64_t>(key.size() + value.size()));
    buffer_[p].push_back({key, value});
    if (buffered_bytes_ > sort_buffer_bytes_) Spill();
  }

  void Finish() {
    Spill();
    for (int p = 0; p < num_partitions_; ++p) {
      if (runs_[p].size() > 1) Merge(p);
    }
  }

  const std::vector<LegacySortedRun>& runs(int p) const { return runs_[p]; }
  const JobCounters& counters() const { return counters_; }

 private:
  void Spill() {
    bool any = false;
    for (int p = 0; p < num_partitions_; ++p) {
      if (buffer_[p].empty()) continue;
      any = true;
      std::stable_sort(
          buffer_[p].begin(), buffer_[p].end(),
          [](const LegacyKeyValue& a, const LegacyKeyValue& b) {
            return a.key < b.key;
          });
      runs_[p].push_back(std::move(buffer_[p]));
      buffer_[p].clear();
    }
    if (any) counters_.Add("map_spills", 1);
    buffered_bytes_ = 0;
  }

  void Merge(int p) {
    auto& runs = runs_[p];
    LegacySortedRun merged;
    size_t total = 0;
    int64_t merge_bytes = 0;
    for (const auto& run : runs) {
      total += run.size();
      for (const auto& kv : run) {
        merge_bytes +=
            static_cast<int64_t>(kv.key.size() + kv.value.size());
      }
    }
    counters_.Add("map_merge_bytes", merge_bytes);
    merged.reserve(total);
    using Cursor = std::pair<size_t, size_t>;
    auto less = [&runs](const Cursor& a, const Cursor& b) {
      const LegacyKeyValue& ka = runs[a.first][a.second];
      const LegacyKeyValue& kb = runs[b.first][b.second];
      if (ka.key != kb.key) return ka.key > kb.key;
      return a.first > b.first;
    };
    std::priority_queue<Cursor, std::vector<Cursor>, decltype(less)> heap(
        less);
    for (size_t r = 0; r < runs.size(); ++r) {
      if (!runs[r].empty()) heap.push({r, 0});
    }
    while (!heap.empty()) {
      auto [r, o] = heap.top();
      heap.pop();
      merged.push_back(std::move(runs[r][o]));
      if (o + 1 < runs[r].size()) heap.push({r, o + 1});
    }
    runs.clear();
    runs.push_back(std::move(merged));
  }

  const Partitioner* partitioner_;
  int num_partitions_;
  int64_t sort_buffer_bytes_;
  int64_t buffered_bytes_ = 0;
  std::vector<LegacySortedRun> buffer_;
  std::vector<std::vector<LegacySortedRun>> runs_;
  JobCounters counters_;
};

struct RunResult {
  double seconds = 0;
  int64_t heap_allocations = 0;
  int64_t spills = 0;
  int64_t shuffle_bytes = 0;
  int64_t checksummed_bytes = 0;
  bool verified = true;
  GroupDigest digest;
};

// Reduce-side walk of the legacy engine: per partition, gather every
// task's run, k-way merge (stable by task index), group, and build each
// group's values as owned strings — exactly what the pre-arena reduce
// path did. `consume(key, values)` stands in for the reducer.
template <typename Consume>
void WalkLegacyGroups(const std::vector<LegacyShuffle>& tasks,
                      const Consume& consume) {
  for (int p = 0; p < kNumPartitions; ++p) {
    std::vector<const LegacySortedRun*> runs;
    for (const auto& t : tasks) {
      for (const auto& run : t.runs(p)) runs.push_back(&run);
    }
    using Cursor = std::pair<size_t, size_t>;
    auto less = [&runs](const Cursor& a, const Cursor& b) {
      const LegacyKeyValue& ka = (*runs[a.first])[a.second];
      const LegacyKeyValue& kb = (*runs[b.first])[b.second];
      if (ka.key != kb.key) return ka.key > kb.key;
      return a.first > b.first;
    };
    std::priority_queue<Cursor, std::vector<Cursor>, decltype(less)> heap(
        less);
    for (size_t r = 0; r < runs.size(); ++r) {
      if (!runs[r]->empty()) heap.push({r, 0});
    }
    std::string current_key;
    bool has_current = false;
    std::vector<std::string> values;
    while (!heap.empty()) {
      auto [r, o] = heap.top();
      heap.pop();
      const LegacyKeyValue& kv = (*runs[r])[o];
      if (!has_current || kv.key != current_key) {
        if (has_current) consume(current_key, values);
        current_key = kv.key;  // string copy, as in the old engine
        has_current = true;
        values.clear();
      }
      values.push_back(kv.value);  // string copy, as in the old engine
      if (o + 1 < runs[r]->size()) heap.push({r, o + 1});
    }
    if (has_current) consume(current_key, values);
  }
}

// Reduce-side walk of the arena engine: entry-index k-way merge, groups
// as views into the frozen arenas.
template <typename Consume>
void WalkArenaGroups(const std::vector<ShuffleBuffer>& tasks,
                     const Consume& consume) {
  for (int p = 0; p < kNumPartitions; ++p) {
    std::vector<const ShuffleRun*> runs;
    for (const auto& t : tasks) {
      for (const auto& run : t.runs(p)) runs.push_back(&run);
    }
    ShuffleRunMerger merger(runs);
    const ShuffleEntry* current = nullptr;
    std::vector<std::string_view> values;
    for (const ShuffleEntry* e = merger.Next(); e != nullptr;
         e = merger.Next()) {
      if (current == nullptr || !ShuffleKeyEqual(*e, *current)) {
        if (current != nullptr) consume(current->key, values);
        current = e;
        values.clear();
      }
      values.push_back(e->value);
    }
    if (current != nullptr) consume(current->key, values);
  }
}

// The timed consumer: touches every group and value size (so the
// grouping work cannot be elided) without the verification hash, which
// both engines would pay identically.
struct CountingConsumer {
  int64_t groups = 0;
  int64_t value_bytes = 0;
  template <typename Values>
  void operator()(std::string_view, const Values& values) {
    ++groups;
    for (const auto& v : values) {
      value_bytes += static_cast<int64_t>(v.size());
    }
  }
};

RunResult RunLegacy(const Workload& w, const Partitioner& partitioner) {
  RunResult result;
  int64_t allocs_before = g_heap_allocations.load();
  Stopwatch clock;
  // Map side: kNumMapTasks tasks, each shuffling its slice.
  std::vector<LegacyShuffle> tasks;
  tasks.reserve(kNumMapTasks);
  for (int t = 0; t < kNumMapTasks; ++t) {
    tasks.emplace_back(&partitioner, kNumPartitions, kSortBufferBytes);
  }
  for (int i = 0; i < kNumRecords; ++i) {
    tasks[static_cast<size_t>(i) * kNumMapTasks / kNumRecords].Emit(
        w.keys[i], w.values[i]);
  }
  for (auto& t : tasks) t.Finish();
  CountingConsumer counting;
  WalkLegacyGroups(tasks, [&](std::string_view key,
                              const std::vector<std::string>& values) {
    counting(key, values);
  });
  result.seconds = clock.ElapsedSeconds();
  result.heap_allocations = g_heap_allocations.load() - allocs_before;

  // Verification (untimed): digest the full group stream.
  WalkLegacyGroups(tasks, [&](std::string_view key,
                              const std::vector<std::string>& values) {
    result.digest.Key(key);
    for (const auto& v : values) result.digest.Value(v);
  });
  if (result.digest.groups != counting.groups) result.digest.digest = 0;
  for (const auto& t : tasks) {
    result.spills += t.counters().Get("map_spills");
    result.shuffle_bytes += t.counters().Get("map_output_bytes");
  }
  return result;
}

RunResult RunArena(const Workload& w, const Partitioner& partitioner,
                   bool checksum) {
  RunResult result;
  int64_t allocs_before = g_heap_allocations.load();
  Stopwatch clock;
  std::vector<ShuffleBuffer> tasks;
  tasks.reserve(kNumMapTasks);
  for (int t = 0; t < kNumMapTasks; ++t) {
    tasks.emplace_back(kNumPartitions, kSortBufferBytes,
                       /*combiner=*/nullptr, checksum);
  }
  // Batched engine counters, as in MapContextImpl.
  int64_t records = 0, bytes = 0;
  JobCounters counters;
  for (int i = 0; i < kNumRecords; ++i) {
    int p = partitioner.PartitionView(w.keys[i], kNumPartitions);
    ++records;
    bytes += static_cast<int64_t>(w.keys[i].size() + w.values[i].size());
    tasks[static_cast<size_t>(i) * kNumMapTasks / kNumRecords]
        .Add(p, w.keys[i], w.values[i])
        .ok();
  }
  for (auto& t : tasks) t.Finish().ok();
  if (checksum) {
    // Reduce-fetch verification, as MapReduceJob::Run performs before
    // handing map outputs to the reduce merge: recompute every run CRC.
    for (const auto& t : tasks) {
      for (int p = 0; p < kNumPartitions; ++p) {
        result.verified &= t.VerifyPartition(p).ok();
      }
    }
  }
  counters.Add("map_output_records", records);
  counters.Add("map_output_bytes", bytes);
  CountingConsumer counting;
  WalkArenaGroups(tasks, [&](std::string_view key,
                             const std::vector<std::string_view>& values) {
    counting(key, values);
  });
  result.seconds = clock.ElapsedSeconds();
  result.heap_allocations = g_heap_allocations.load() - allocs_before;

  // Verification (untimed): digest the full group stream.
  WalkArenaGroups(tasks, [&](std::string_view key,
                             const std::vector<std::string_view>& values) {
    result.digest.Key(key);
    for (const auto& v : values) result.digest.Value(v);
  });
  if (result.digest.groups != counting.groups) result.digest.digest = 0;
  for (const auto& t : tasks) {
    result.spills += t.stats().spills;
    result.checksummed_bytes += t.stats().checksummed_bytes;
  }
  result.shuffle_bytes = counters.Get("map_output_bytes");
  return result;
}

// ---------------------------------------------------------------------
// Raw CRC32C throughput: the hardware-dispatched path vs the portable
// slice-by-8 table, over a buffer large enough to stream from memory.

struct CrcThroughput {
  bool hardware = false;
  double hardware_mb_per_sec = 0;
  double portable_mb_per_sec = 0;
};

CrcThroughput MeasureCrc32c() {
  constexpr size_t kBufBytes = 64 << 20;
  std::string buf(kBufBytes, '\0');
  Rng rng(42);
  for (size_t i = 0; i + 8 <= buf.size(); i += 8) {
    uint64_t v = rng.Next();
    std::memcpy(&buf[i], &v, 8);
  }
  auto time_mbps = [&](auto&& extend) {
    double best = 0;
    uint32_t sink = 0;
    for (int i = 0; i < kIterations; ++i) {
      Stopwatch clock;
      sink ^= extend(sink, buf.data(), buf.size());
      double s = clock.ElapsedSeconds();
      double mbps = static_cast<double>(kBufBytes) / (1 << 20) / s;
      if (mbps > best) best = mbps;
    }
    // Keep the checksum observable so the loop cannot be elided.
    if (sink == 0x12345678u) std::printf(" ");
    return best;
  };
  CrcThroughput t;
  t.hardware = Crc32cHardwareAvailable();
  t.hardware_mb_per_sec = time_mbps(ExtendCrc32c);
  t.portable_mb_per_sec = time_mbps(ExtendCrc32cPortable);
  return t;
}

template <typename Fn>
RunResult BestOf(int iterations, const Fn& fn) {
  RunResult best = fn();
  for (int i = 1; i < iterations; ++i) {
    RunResult r = fn();
    if (r.seconds < best.seconds) best = r;
  }
  return best;
}

void PrintJson(std::FILE* f, const Workload& w, const RunResult& legacy,
               const RunResult& arena, const RunResult& arena_checksum,
               const CrcThroughput& crc) {
  auto rate = [&](const RunResult& r) { return kNumRecords / r.seconds; };
  auto mbps = [&](const RunResult& r) {
    return static_cast<double>(w.payload_bytes) / (1 << 20) / r.seconds;
  };
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"shuffle\",\n");
  std::fprintf(f, "  \"records\": %d,\n", kNumRecords);
  std::fprintf(f, "  \"map_tasks\": %d,\n", kNumMapTasks);
  std::fprintf(f, "  \"partitions\": %d,\n", kNumPartitions);
  std::fprintf(f, "  \"payload_bytes\": %lld,\n",
               static_cast<long long>(w.payload_bytes));
  std::fprintf(f, "  \"sort_buffer_bytes\": %lld,\n",
               static_cast<long long>(kSortBufferBytes));
  std::fprintf(f, "  \"iterations\": %d,\n", kIterations);
  auto section = [&](const char* name, const RunResult& r) {
    std::fprintf(f, "  \"%s\": {\n", name);
    std::fprintf(f, "    \"seconds\": %.4f,\n", r.seconds);
    std::fprintf(f, "    \"records_per_sec\": %.0f,\n", rate(r));
    std::fprintf(f, "    \"shuffle_mb_per_sec\": %.1f,\n", mbps(r));
    std::fprintf(f, "    \"heap_allocations\": %lld,\n",
                 static_cast<long long>(r.heap_allocations));
    std::fprintf(f, "    \"spills\": %lld\n",
                 static_cast<long long>(r.spills));
    std::fprintf(f, "  },\n");
  };
  section("legacy_string_copy", legacy);
  section("arena_zero_copy", arena);
  section("arena_zero_copy_checksummed", arena_checksum);
  std::fprintf(f, "  \"speedup_records_per_sec\": %.2f,\n",
               rate(arena) / rate(legacy));
  std::fprintf(f, "  \"allocation_reduction\": %.1f,\n",
               static_cast<double>(legacy.heap_allocations) /
                   static_cast<double>(arena.heap_allocations));
  std::fprintf(f, "  \"checksum_overhead_percent\": %.2f,\n",
               (rate(arena) / rate(arena_checksum) - 1.0) * 100.0);
  std::fprintf(f, "  \"checksummed_bytes\": %lld,\n",
               static_cast<long long>(arena_checksum.checksummed_bytes));
  std::fprintf(f, "  \"crc32c\": {\n");
  std::fprintf(f, "    \"hardware_dispatch\": %s,\n",
               crc.hardware ? "true" : "false");
  std::fprintf(f, "    \"hardware_mb_per_sec\": %.0f,\n",
               crc.hardware_mb_per_sec);
  std::fprintf(f, "    \"portable_mb_per_sec\": %.0f\n",
               crc.portable_mb_per_sec);
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
}

int Main(int argc, char** argv) {
  bench::Title("Shuffle data path: string-copy vs zero-copy arena");
  bench::Note("1M coordinate-keyed records through map spill/sort/merge + "
              "reduce merge/group");

  Workload w = MakeWorkload();
  HashPartitioner partitioner;

  RunResult legacy = BestOf(kIterations, [&] {
    return RunLegacy(w, partitioner);
  });
  RunResult arena = BestOf(kIterations, [&] {
    return RunArena(w, partitioner, /*checksum=*/false);
  });
  RunResult arena_checksum = BestOf(kIterations, [&] {
    return RunArena(w, partitioner, /*checksum=*/true);
  });
  CrcThroughput crc = MeasureCrc32c();

  bool identical = legacy.digest == arena.digest &&
                   legacy.digest == arena_checksum.digest;
  double speedup = legacy.seconds / arena.seconds;
  double overhead_pct =
      (arena_checksum.seconds / arena.seconds - 1.0) * 100.0;

  std::printf("  %-22s %10s %14s %12s %14s\n", "engine", "seconds",
              "records/sec", "MB/sec", "allocations");
  auto row = [&](const char* name, const RunResult& r) {
    std::printf("  %-22s %10.3f %14.0f %12.1f %14lld\n", name, r.seconds,
                kNumRecords / r.seconds,
                static_cast<double>(w.payload_bytes) / (1 << 20) / r.seconds,
                static_cast<long long>(r.heap_allocations));
  };
  row("legacy string-copy", legacy);
  row("arena zero-copy", arena);
  row("arena + CRC32C", arena_checksum);
  std::printf("  speedup: %.2fx, allocation reduction: %.1fx\n", speedup,
              static_cast<double>(legacy.heap_allocations) /
                  static_cast<double>(arena.heap_allocations));
  std::printf("  checksum overhead: %.2f%% (spill CRC + fetch verify of "
              "%lld bytes)\n",
              overhead_pct,
              static_cast<long long>(arena_checksum.checksummed_bytes));
  std::printf("  crc32c: hardware %s, %.0f MB/s hw, %.0f MB/s portable\n",
              crc.hardware ? "yes" : "no", crc.hardware_mb_per_sec,
              crc.portable_mb_per_sec);

  bool ok = true;
  ok &= bench::Check(identical,
                     "both engines produce identical groups (digest match)");
  ok &= bench::Check(legacy.spills == arena.spills &&
                         legacy.shuffle_bytes == arena.shuffle_bytes,
                     "identical spill counts and shuffle bytes");
  ok &= bench::Check(speedup >= 2.0,
                     "arena shuffle >= 2x record throughput");
  ok &= bench::Check(arena.heap_allocations * 10 < legacy.heap_allocations,
                     "arena path allocates >= 10x less");
  ok &= bench::Check(arena_checksum.verified &&
                         arena_checksum.checksummed_bytes > 0,
                     "every partition verifies against its run CRCs");
  ok &= bench::Check(overhead_pct <= 10.0,
                     "checksum overhead <= 10% on record throughput");

  const char* out_path = argc > 1 ? argv[1] : "BENCH_shuffle.json";
  if (std::FILE* f = std::fopen(out_path, "w")) {
    PrintJson(f, w, legacy, arena, arena_checksum, crc);
    std::fclose(f);
    bench::Note(std::string("wrote ") + out_path);
  } else {
    bench::Check(false, std::string("failed to open ") + out_path);
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace gesall

int main(int argc, char** argv) { return gesall::Main(argc, argv); }

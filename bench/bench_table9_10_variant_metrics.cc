// Tables 9-10 (Appendix B.3): quality metrics of the variant sets found
// by both pipelines (Intersection) versus only by the hybrid or only by
// the serial pipeline — MQ, DP, FS, AB, Ti/Tv, Het/Hom — plus the
// GiaB-style precision/sensitivity of both pipelines against the planted
// truth set.

#include <cstdio>

#include "functional_fixture.h"
#include "report.h"

using namespace gesall;

namespace {

void PrintRow(const char* name, const VariantSetStats& s) {
  std::printf("  %-14s %8lld %8.1f %8.1f %8.1f %8.1f %8.2f %8.2f %8.2f\n",
              name, static_cast<long long>(s.count), s.mean_qual, s.mean_mq,
              s.mean_dp, s.mean_fs, s.mean_ab, s.titv_ratio,
              s.het_hom_ratio);
}

}  // namespace

int main() {
  auto f = bench::BuildFixture();

  // Hybrid pipeline: parallel through Mark Duplicates, serial HC tail.
  auto hybrid = SerialTailFromDeduped(f.reference, f.serial.header,
                                      f.parallel_deduped)
                    .ValueOrDie();
  auto disc = CompareVariants(f.serial.variants, hybrid);

  auto inter = ComputeVariantSetStats(disc.concordant);
  auto serial_only = ComputeVariantSetStats(disc.only_first);
  auto hybrid_only = ComputeVariantSetStats(disc.only_second);

  bench::Title("Tables 9-10: variant metrics by concordance class");
  std::printf("  %-14s %8s %8s %8s %8s %8s %8s %8s %8s\n", "Set", "count",
              "QUAL", "MQ", "DP", "FS", "AB", "Ti/Tv", "Het/Hom");
  PrintRow("Intersection", inter);
  PrintRow("Serial-only", serial_only);
  PrintRow("Hybrid-only", hybrid_only);

  // GiaB-style evaluation against planted truth.
  auto serial_ps = EvaluateAgainstTruth(f.serial.variants, f.donor.truth);
  auto hybrid_ps = EvaluateAgainstTruth(hybrid, f.donor.truth);
  bench::Title("Appendix B.3: precision / sensitivity vs truth set");
  std::printf("  %-10s precision %.4f  sensitivity %.4f\n", "serial",
              serial_ps.precision, serial_ps.sensitivity);
  std::printf("  %-10s precision %.4f  sensitivity %.4f\n", "hybrid",
              hybrid_ps.precision, hybrid_ps.sensitivity);

  bench::Note("");
  bench::Note("Paper shape claims:");
  bool ok = true;
  double total = static_cast<double>(inter.count) + disc.d_count();
  ok &= bench::Check(disc.d_count() / total < 0.02,
                     "discordant calls are a small fraction of all calls "
                     "(paper: ~0.1%)");
  bool lower_quality =
      (serial_only.count == 0 || serial_only.mean_qual < inter.mean_qual) &&
      (hybrid_only.count == 0 || hybrid_only.mean_qual < inter.mean_qual);
  ok &= bench::Check(lower_quality,
                     "discordant variants are lower quality than the "
                     "concordant set");
  ok &= bench::Check(std::abs(serial_ps.precision - hybrid_ps.precision) <
                             0.01 &&
                         std::abs(serial_ps.sensitivity -
                                  hybrid_ps.sensitivity) < 0.01,
                     "no significant truth-set difference between serial "
                     "and hybrid pipelines");
  ok &= bench::Check(inter.titv_ratio > 1.2,
                     "concordant SNPs are transition-dominated "
                     "(paper expects Ti/Tv ~ 2 in good call sets)");
  return ok ? 0 : 1;
}

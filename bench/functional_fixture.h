// Shared functional fixture for the accuracy harnesses (Table 8,
// Tables 9-10, Fig. 11): one synthetic sample pushed through both the
// serial reference pipeline and the parallel Gesall pipeline.
//
// Scale is configurable through GESALL_BENCH_SCALE (1 = default ~6 Mb
// of read data; larger values grow the genome proportionally).

#ifndef GESALL_BENCH_FUNCTIONAL_FIXTURE_H_
#define GESALL_BENCH_FUNCTIONAL_FIXTURE_H_

#include <cstdlib>
#include <memory>

#include "gesall/diagnosis.h"
#include "gesall/pipeline.h"
#include "genome/read_simulator.h"
#include "genome/reference_generator.h"
#include "util/logging.h"

namespace gesall::bench {

struct FunctionalFixture {
  ReferenceGenome reference;
  DonorGenome donor;
  SimulatedSample sample;
  std::unique_ptr<GenomeIndex> index;
  std::vector<FastqRecord> interleaved;

  SerialStageOutputs serial;

  std::unique_ptr<Dfs> dfs;
  std::unique_ptr<GesallPipeline> pipeline;
  std::vector<VariantRecord> parallel_variants;
  std::vector<SamRecord> parallel_aligned;
  std::vector<SamRecord> parallel_deduped;
};

inline FunctionalFixture BuildFixture() {
  int scale = 1;
  if (const char* env = std::getenv("GESALL_BENCH_SCALE")) {
    scale = std::max(1, std::atoi(env));
  }
  FunctionalFixture f;
  ReferenceGeneratorOptions ro;
  ro.num_chromosomes = 2;
  ro.chromosome_length = 120'000 * scale;
  f.reference = GenerateReference(ro);
  f.donor = PlantVariants(f.reference, VariantPlanterOptions{});
  ReadSimulatorOptions so;
  so.coverage = 25.0;
  f.sample = SimulateReads(f.donor, so);
  f.index = std::make_unique<GenomeIndex>(f.reference);
  f.interleaved =
      InterleavePairs(f.sample.mate1, f.sample.mate2).ValueOrDie();

  f.serial = RunSerialPipeline(f.reference, *f.index, f.interleaved)
                 .ValueOrDie();

  DfsOptions dopt;
  dopt.block_size = 256 * 1024;
  dopt.num_data_nodes = 4;
  f.dfs = std::make_unique<Dfs>(dopt);
  PipelineConfig config;
  config.alignment_partitions = 6;
  f.pipeline = std::make_unique<GesallPipeline>(f.reference, *f.index,
                                                f.dfs.get(), config);
  GESALL_CHECK(f.pipeline->LoadSample(f.sample.mate1, f.sample.mate2).ok());
  auto variants = f.pipeline->RunAll();
  GESALL_CHECK(variants.ok()) << variants.status().ToString();
  f.parallel_variants = variants.MoveValueUnsafe();
  f.parallel_aligned =
      f.pipeline->ReadStageRecords("aligned").ValueOrDie();
  f.parallel_deduped = f.pipeline->ReadStageRecords("dedup").ValueOrDie();
  return f;
}

}  // namespace gesall::bench

#endif  // GESALL_BENCH_FUNCTIONAL_FIXTURE_H_

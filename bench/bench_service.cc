// gesalld service benchmark: seeded open-loop arrivals from three
// tenants driven through GesallService in three phases.
//
//  1. solo      — each tenant's sample through a private pipeline, for
//                 byte-identity baselines.
//  2. overload  — arrivals faster than the service drains against a
//                 small queue: admission control must shed (nonzero
//                 shed rate) while every admitted job completes, and
//                 executor time must stay fair across tenants (Jain
//                 index).
//  3. chaos     — the same multi-tenant mix run twice, clean vs with a
//                 node crash + block corruption armed against one
//                 tenant's job. Gated: the victim recovers (nonzero
//                 recovered counter), every output stays byte-identical
//                 to solo, and the UNAFFECTED tenants' p99 job latency
//                 degrades at most 1.5x versus the clean run.
//
// Writes BENCH_service.json; exits non-zero if any gate fails.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "report.h"
#include "genome/read_simulator.h"
#include "genome/reference_generator.h"
#include "service/service.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace gesall {
namespace {

constexpr uint64_t kSeed = 6021;
constexpr int kNumTenants = 3;
constexpr int kJobsPerTenantLatency = 3;
const char* const kTenants[kNumTenants] = {"victim", "tenant-b", "tenant-c"};

struct Fixture {
  ReferenceGenome reference;
  DonorGenome donor;
  std::unique_ptr<GenomeIndex> index;
  SimulatedSample samples[kNumTenants];
  std::vector<std::string> baselines[kNumTenants];
  double solo_seconds[kNumTenants] = {};
};

std::vector<std::string> VariantKeys(const std::vector<VariantRecord>& vs) {
  std::vector<std::string> keys;
  keys.reserve(vs.size());
  for (const auto& v : vs) {
    std::ostringstream os;
    os << v.Key() << "@" << v.qual;
    keys.push_back(os.str());
  }
  return keys;
}

DfsOptions MakeDfsOptions() {
  DfsOptions dopt;
  dopt.block_size = 64 * 1024;
  dopt.replication = 3;
  dopt.num_data_nodes = 4;
  dopt.heartbeat_miss_threshold = 1;
  dopt.blacklist_threshold = 1 << 20;
  return dopt;
}

PipelineConfig MakePipelineConfig() {
  PipelineConfig config;
  config.alignment_partitions = 2;
  config.max_parallel_tasks = 2;
  return config;
}

JobSpec MakeJob(const Fixture& fx, int tenant) {
  JobSpec spec;
  spec.tenant = kTenants[tenant];
  spec.mate1 = fx.samples[tenant].mate1;
  spec.mate2 = fx.samples[tenant].mate2;
  spec.pipeline = MakePipelineConfig();
  return spec;
}

Fixture MakeFixture() {
  Fixture fx;
  ReferenceGeneratorOptions ro;
  ro.num_chromosomes = 1;
  ro.chromosome_length = 25'000;
  fx.reference = GenerateReference(ro);
  fx.donor = PlantVariants(fx.reference, VariantPlanterOptions{});
  fx.index = std::make_unique<GenomeIndex>(fx.reference);
  for (int i = 0; i < kNumTenants; ++i) {
    ReadSimulatorOptions so;
    so.coverage = 6.0;
    so.seed = MixSeeds(kSeed, static_cast<uint64_t>(i));
    fx.samples[i] = SimulateReads(fx.donor, so);
    Dfs dfs(MakeDfsOptions());
    GesallPipeline solo(fx.reference, *fx.index, &dfs, MakePipelineConfig());
    GESALL_CHECK(solo.LoadSample(fx.samples[i].mate1, fx.samples[i].mate2)
                     .ok());
    Stopwatch clock;
    auto variants = solo.RunAll();
    GESALL_CHECK(variants.ok()) << variants.status().ToString();
    fx.solo_seconds[i] = clock.ElapsedSeconds();
    fx.baselines[i] = VariantKeys(variants.ValueOrDie());
  }
  return fx;
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const double rank = p * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

double JainIndex(const std::vector<double>& xs) {
  double sum = 0, sum_sq = 0;
  for (double x : xs) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0) return 1.0;
  return sum * sum / (static_cast<double>(xs.size()) * sum_sq);
}

// --- Phase 2: seeded open-loop overload -----------------------------

struct OverloadResult {
  int64_t submitted = 0;
  int64_t admitted = 0;
  int64_t shed = 0;
  double shed_rate = 0;
  double wall_seconds = 0;
  double throughput_jobs_per_s = 0;
  double p99_total_seconds = 0;
  double jain_fairness = 1.0;
  bool all_admitted_ok = true;
  bool all_byte_identical = true;
};

OverloadResult RunOverload(const Fixture& fx) {
  Dfs dfs(MakeDfsOptions());
  ServiceConfig config;
  config.max_running_jobs = 2;
  config.max_queue_depth = 3;
  config.default_quota.max_queued_jobs = 2;
  config.heartbeat_interval_ms = 2;
  GesallService service(fx.reference, *fx.index, &dfs, config);

  // Open loop: 24 arrivals on a fixed seeded schedule, uniformly mixed
  // across tenants, paced well below the service's drain rate so the
  // queue overflows and admission control must shed.
  Rng rng(kSeed);
  std::vector<std::pair<JobId, int>> admitted;
  Stopwatch clock;
  for (int n = 0; n < 24; ++n) {
    const int tenant = static_cast<int>(rng.Uniform(kNumTenants));
    auto id = service.Submit(MakeJob(fx, tenant));
    if (id.ok()) admitted.push_back({id.ValueOrDie(), tenant});
    std::this_thread::sleep_for(
        std::chrono::milliseconds(1 + static_cast<int>(rng.Uniform(4))));
  }

  OverloadResult r;
  std::map<int, double> busy_by_tenant;
  std::vector<double> totals;
  for (auto [id, tenant] : admitted) {
    auto out = service.Wait(id);
    GESALL_CHECK(out.ok()) << out.status().ToString();
    const JobOutput& job = out.ValueOrDie();
    r.all_admitted_ok &= job.status.ok();
    if (job.status.ok()) {
      r.all_byte_identical &=
          VariantKeys(job.variants) == fx.baselines[tenant];
      busy_by_tenant[tenant] += static_cast<double>(job.busy_micros);
      totals.push_back(job.total_seconds);
    }
  }
  r.wall_seconds = clock.ElapsedSeconds();
  ServiceStats stats = service.stats();
  r.submitted = stats.submitted;
  r.admitted = stats.admitted;
  r.shed = stats.shed;
  r.shed_rate = stats.submitted > 0
                    ? static_cast<double>(stats.shed) /
                          static_cast<double>(stats.submitted)
                    : 0;
  r.throughput_jobs_per_s =
      r.wall_seconds > 0
          ? static_cast<double>(stats.completed) / r.wall_seconds
          : 0;
  r.p99_total_seconds = Percentile(totals, 0.99);
  std::vector<double> busy;
  for (const auto& [tenant, micros] : busy_by_tenant) busy.push_back(micros);
  r.jain_fairness = busy.size() > 1 ? JainIndex(busy) : 1.0;
  return r;
}

// --- Phase 3: chaos vs clean latency --------------------------------

struct LatencyResult {
  // Per-tenant p99 of run_seconds (execution latency, queueing
  // excluded: jobs serialize on one runner in both runs so queue waits
  // reflect schedule position, not interference).
  double p99_run_seconds[kNumTenants] = {};
  int64_t recovered_jobs = 0;
  bool all_ok = true;
  bool all_byte_identical = true;
  bool victim_recovered = false;
};

LatencyResult RunLatencyMix(const Fixture& fx, FaultInjector* chaos) {
  Dfs dfs(MakeDfsOptions());
  // Installed before the service starts so the tick-0 node crash fires
  // deterministically; block corruption is cluster-wide blast radius.
  if (chaos != nullptr) dfs.set_fault_injector(chaos);
  ServiceConfig config;
  // One runner: execution latencies are contention-free and comparable
  // between the clean and chaos runs; multi-tenancy shows up in
  // admission + scheduling, chaos in the shared DFS underneath.
  config.max_running_jobs = 1;
  config.max_queue_depth = kNumTenants * kJobsPerTenantLatency;
  config.default_quota.max_queued_jobs = kJobsPerTenantLatency;
  config.heartbeat_interval_ms = 1;
  GesallService service(fx.reference, *fx.index, &dfs, config);

  std::vector<std::pair<JobId, int>> ids;
  for (int round = 0; round < kJobsPerTenantLatency; ++round) {
    for (int tenant = 0; tenant < kNumTenants; ++tenant) {
      JobSpec spec = MakeJob(fx, tenant);
      if (chaos != nullptr && tenant == 0 && round == 0) {
        // The victim job additionally fails every map task's first
        // attempt, so its recovery counters fire deterministically.
        spec.pipeline.fault_injector = chaos;
        spec.pipeline.max_task_attempts = 6;
      }
      auto id = service.Submit(std::move(spec));
      GESALL_CHECK(id.ok()) << id.status().ToString();
      ids.push_back({id.ValueOrDie(), tenant});
    }
  }

  LatencyResult r;
  std::vector<double> runs[kNumTenants];
  for (auto [id, tenant] : ids) {
    auto out = service.Wait(id);
    GESALL_CHECK(out.ok()) << out.status().ToString();
    const JobOutput& job = out.ValueOrDie();
    r.all_ok &= job.status.ok();
    if (job.status.ok()) {
      r.all_byte_identical &=
          VariantKeys(job.variants) == fx.baselines[tenant];
      runs[tenant].push_back(job.run_seconds);
      if (tenant == 0 && job.recovered) r.victim_recovered = true;
    }
  }
  for (int t = 0; t < kNumTenants; ++t) {
    r.p99_run_seconds[t] = Percentile(runs[t], 0.99);
  }
  r.recovered_jobs = service.stats().recovered_jobs;
  return r;
}

void PrintJson(std::FILE* f, const OverloadResult& ov,
               const LatencyResult& clean, const LatencyResult& chaos,
               double worst_unaffected_degradation) {
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"gesalld_service\",\n");
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(kSeed));
  std::fprintf(f, "  \"tenants\": %d,\n", kNumTenants);
  std::fprintf(f, "  \"overload\": {\n");
  std::fprintf(f, "    \"submitted\": %lld,\n",
               static_cast<long long>(ov.submitted));
  std::fprintf(f, "    \"admitted\": %lld,\n",
               static_cast<long long>(ov.admitted));
  std::fprintf(f, "    \"shed\": %lld,\n", static_cast<long long>(ov.shed));
  std::fprintf(f, "    \"shed_rate\": %.3f,\n", ov.shed_rate);
  std::fprintf(f, "    \"throughput_jobs_per_s\": %.3f,\n",
               ov.throughput_jobs_per_s);
  std::fprintf(f, "    \"p99_total_seconds\": %.4f,\n", ov.p99_total_seconds);
  std::fprintf(f, "    \"jain_fairness\": %.4f\n", ov.jain_fairness);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"chaos\": {\n");
  std::fprintf(f, "    \"recovered_jobs\": %lld,\n",
               static_cast<long long>(chaos.recovered_jobs));
  std::fprintf(f, "    \"victim_recovered\": %s,\n",
               chaos.victim_recovered ? "true" : "false");
  std::fprintf(f, "    \"clean_p99_run_seconds\": [%.4f, %.4f, %.4f],\n",
               clean.p99_run_seconds[0], clean.p99_run_seconds[1],
               clean.p99_run_seconds[2]);
  std::fprintf(f, "    \"chaos_p99_run_seconds\": [%.4f, %.4f, %.4f],\n",
               chaos.p99_run_seconds[0], chaos.p99_run_seconds[1],
               chaos.p99_run_seconds[2]);
  std::fprintf(f, "    \"worst_unaffected_p99_degradation\": %.3f\n",
               worst_unaffected_degradation);
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
}

int Main(int argc, char** argv) {
  bench::Title("gesalld: multi-tenant service under overload and chaos");
  bench::Note("3 tenants; seeded open-loop arrivals; node crash + block "
              "corruption armed against one tenant's job");

  Fixture fx = MakeFixture();

  OverloadResult ov = RunOverload(fx);
  std::printf("  overload: %lld submitted, %lld shed (%.0f%%), "
              "%.2f jobs/s, p99 %.3fs, jain %.3f\n",
              static_cast<long long>(ov.submitted),
              static_cast<long long>(ov.shed), 100.0 * ov.shed_rate,
              ov.throughput_jobs_per_s, ov.p99_total_seconds,
              ov.jain_fairness);

  LatencyResult clean = RunLatencyMix(fx, nullptr);

  FaultInjector injector(kSeed);
  GESALL_CHECK(injector.ArmFirstAttempts(kFaultDfsBlockCorrupt, 1).ok());
  GESALL_CHECK(injector.ArmFirstAttempts(kFaultMapAttempt, 1).ok());
  const int crash_node =
      LogicalPartitionPlacementPolicy::PrimaryNodeFor("/bench/probe", 4);
  injector.ArmSchedule(kFaultNodeCrash, crash_node, {0});
  LatencyResult chaos = RunLatencyMix(fx, &injector);

  double worst_degradation = 0;
  for (int t = 1; t < kNumTenants; ++t) {  // tenant 0 is the victim
    if (clean.p99_run_seconds[t] <= 0) continue;
    worst_degradation =
        std::max(worst_degradation,
                 chaos.p99_run_seconds[t] / clean.p99_run_seconds[t]);
  }
  std::printf("  chaos: victim recovered=%s, unaffected p99 "
              "degradation %.2fx (clean [%.3f %.3f %.3f] -> "
              "chaos [%.3f %.3f %.3f])\n",
              chaos.victim_recovered ? "yes" : "no", worst_degradation,
              clean.p99_run_seconds[0], clean.p99_run_seconds[1],
              clean.p99_run_seconds[2], chaos.p99_run_seconds[0],
              chaos.p99_run_seconds[1], chaos.p99_run_seconds[2]);

  bool ok = true;
  ok &= bench::Check(ov.shed > 0,
                     "overload sheds submissions (admission control)");
  ok &= bench::Check(ov.all_admitted_ok,
                     "every admitted job completes despite shedding");
  ok &= bench::Check(ov.all_byte_identical && clean.all_byte_identical &&
                         chaos.all_byte_identical,
                     "every completed output byte-identical to solo");
  ok &= bench::Check(ov.jain_fairness > 0.5,
                     "executor time spread fairly across tenants");
  ok &= bench::Check(chaos.all_ok && clean.all_ok,
                     "all jobs complete under chaos");
  ok &= bench::Check(chaos.victim_recovered && chaos.recovered_jobs > 0,
                     "victim job recovered (nonzero recovered counter)");
  ok &= bench::Check(worst_degradation <= 1.5,
                     "unaffected-tenant p99 degradation <= 1.5x");

  const char* out_path = argc > 1 ? argv[1] : "BENCH_service.json";
  if (std::FILE* f = std::fopen(out_path, "w")) {
    PrintJson(f, ov, clean, chaos, worst_degradation);
    std::fclose(f);
    bench::Note(std::string("wrote ") + out_path);
  } else {
    bench::Check(false, std::string("failed to open ") + out_path);
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace gesall

int main(int argc, char** argv) { return gesall::Main(argc, argv); }

// Fig. 5(c): speedup of the multithreaded Bwa program on a single node,
// with the readahead buffer at 128 KB (default) vs 64 MB, against ideal
// linear scaling. The model captures Bwa's synchronized read-and-parse
// section plus its pre-read barrier (paper §4.3).

#include <cstdio>

#include "report.h"
#include "sim/cluster.h"

using namespace gesall;

int main() {
  bench::Title("Fig 5(c): multithreaded Bwa speedup vs thread count");
  auto small = ThreadScalingModel::Readahead128KB();
  auto big = ThreadScalingModel::Readahead64MB();

  std::printf("  %8s %18s %18s %8s\n", "Threads", "Readahead=128KB",
              "Readahead=64MB", "Ideal");
  for (int t : {1, 2, 4, 6, 8, 12, 16, 20, 24}) {
    std::printf("  %8d %18.2f %18.2f %8d\n", t, small.Speedup(t),
                big.Speedup(t), t);
  }

  bench::Note("");
  bench::Note("Paper shape claims:");
  bool ok = true;
  ok &= bench::Check(big.Speedup(24) > small.Speedup(24) + 3,
                     "64MB readahead clearly beats 128KB at 24 threads");
  ok &= bench::Check(small.Speedup(24) < 12,
                     "128KB curve saturates far below ideal");
  ok &= bench::Check(big.Speedup(24) < 24,
                     "even 64MB stays sublinear (remaining bottlenecks)");
  // The cross-configuration lever the paper exploits: 6 processes x 4
  // threads beat 1 process x 24 threads because 4-thread scaling is
  // near-linear.
  double proc6x4 = 6 * big.Speedup(4);
  double proc1x24 = big.Speedup(24);
  ok &= bench::Check(proc6x4 > 1.5 * proc1x24,
                     "6 processes x 4 threads >> 1 process x 24 threads");
  return ok ? 0 : 1;
}

// Fig. 5(b): time breakdown of the Mark Duplicates MR job with varied
// input logical partition sizes (30 oversized vs 510 medium partitions on
// 5 data nodes). Oversized partitions overflow the 2 GB sort buffer,
// spill repeatedly, and the concurrent map-side merges of co-located
// tasks contend for the single disk.

#include <cstdio>

#include "report.h"
#include "sim/genomics.h"

using namespace gesall;

namespace {

struct Breakdown {
  double map_sort = 0;   // read + cpu + sort
  double merge = 0;      // map-side merge (the Fig. 5b differentiator)
  double shuffle = 0;    // reduce shuffle + merge
  double reduce = 0;
  double wall = 0;
};

Breakdown Measure(int partitions) {
  auto workload = WorkloadSpec::NA12878();
  GenomicsRates rates;
  ClusterSpec cluster = ClusterSpec::A();
  cluster.num_data_nodes = 5;
  auto job = MarkDuplicatesJob(workload, rates, cluster, /*optimized=*/true,
                               partitions, /*slots_per_node=*/6);
  auto result = SimulateMrJob(cluster, job);
  Breakdown b;
  int maps = 0, reduces = 0;
  for (const auto& t : result.tasks) {
    if (t.type == SimTask::Type::kMap) {
      b.map_sort += t.map_cpu_end - t.start;
      b.merge += t.map_merge_end - t.map_cpu_end;
      ++maps;
    } else {
      b.shuffle += t.shuffle_merge_end - t.start;
      b.reduce += t.end - t.shuffle_merge_end;
      ++reduces;
    }
  }
  if (maps > 0) {
    b.map_sort /= maps;
    b.merge /= maps;
  }
  if (reduces > 0) {
    b.shuffle /= reduces;
    b.reduce /= reduces;
  }
  b.wall = result.wall_seconds;
  return b;
}

}  // namespace

int main() {
  bench::Title("Fig 5(b): MarkDup time breakdown vs logical partitions");
  std::printf("  %12s %14s %12s %16s %12s %14s\n", "Partitions",
              "map+sort (s)", "merge (s)", "shuffle+merge(s)", "reduce (s)",
              "wall clock");
  Breakdown b30 = Measure(30);
  Breakdown b510 = Measure(510);
  auto print = [](int p, const Breakdown& b) {
    std::printf("  %12d %14.1f %12.1f %16.1f %12.1f %14s\n", p, b.map_sort,
                b.merge, b.shuffle, b.reduce, bench::Hms(b.wall).c_str());
  };
  print(30, b30);
  print(510, b510);

  bench::Note("");
  bench::Note("Paper shape claims:");
  bool ok = true;
  ok &= bench::Check(b30.merge > 10 * (b510.merge + 1),
                     "map-side merge dominates with 30 oversized "
                     "partitions, vanishes with 510");
  ok &= bench::Check(b30.wall > b510.wall,
                     "oversized partitions lose overall");
  return ok ? 0 : 1;
}

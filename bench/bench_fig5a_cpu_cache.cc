// Fig. 5(a): CPU cycles and cache misses of the alignment job as the
// number of input logical partitions grows — every mapper re-loads and
// re-parses the reference genome index, so per-mapper overheads dominate
// at fine granularity (paper §4.2 "granularity of scheduling").

#include <cstdio>

#include "report.h"
#include "sim/genomics.h"

using namespace gesall;

int main() {
  bench::Title("Fig 5(a): alignment CPU cycles & cache misses vs partitions");
  auto workload = WorkloadSpec::NA12878();
  GenomicsRates rates;

  std::printf("  %12s %22s %24s\n", "Partitions", "CPU cycles (x10^12)",
              "Cache misses (x10^9)");
  double first_cycles = 0, last_cycles = 0;
  double first_misses = 0, last_misses = 0;
  for (int p : {15, 90, 480, 960, 2400, 4800}) {
    auto est = EstimateAlignmentCpuCache(workload, rates, p);
    std::printf("  %12d %22.1f %24.1f\n", p, est.cycles_trillions,
                est.cache_misses_billions);
    if (p == 15) {
      first_cycles = est.cycles_trillions;
      first_misses = est.cache_misses_billions;
    }
    if (p == 4800) {
      last_cycles = est.cycles_trillions;
      last_misses = est.cache_misses_billions;
    }
  }

  bench::Note("");
  bool ok = true;
  ok &= bench::Check(last_cycles > 1.05 * first_cycles,
                     "4800 partitions burn measurably more CPU cycles");
  ok &= bench::Check(last_misses > 1.5 * first_misses,
                     "cache misses grow sharply with partition count");
  return ok ? 0 : 1;
}

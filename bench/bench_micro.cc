// Core-component microbenchmarks (google-benchmark): FM-index seeding,
// Smith-Waterman extension, BGZF block compression, BAM record codec,
// bloom filter probes, suffix array construction, and the MapReduce
// sort-merge shuffle.

#include <benchmark/benchmark.h>

#include "align/aligner.h"
#include "align/fm_index.h"
#include "align/suffix_array.h"
#include "formats/bam.h"
#include "genome/reference_generator.h"
#include "mr/mapreduce.h"
#include "util/bgzf.h"
#include "util/bloom_filter.h"
#include "util/rng.h"

namespace gesall {
namespace {

std::string RandomDna(int64_t n, uint64_t seed = 1) {
  Rng rng(seed);
  std::string s(n, 'A');
  for (auto& c : s) c = "ACGT"[rng.Uniform(4)];
  return s;
}

void BM_SuffixArrayBuild(benchmark::State& state) {
  std::string text = RandomDna(state.range(0));
  text.push_back('\0');
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildSuffixArray(text));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SuffixArrayBuild)->Arg(1 << 14)->Arg(1 << 17);

void BM_FmIndexSeedSearch(benchmark::State& state) {
  std::string text = RandomDna(1 << 18);
  FmIndex fm(text);
  Rng rng(3);
  for (auto _ : state) {
    int64_t pos = rng.Uniform(text.size() - 19);
    benchmark::DoNotOptimize(fm.Search(text.substr(pos, 19)));
  }
}
BENCHMARK(BM_FmIndexSeedSearch);

void BM_SmithWatermanExtend(benchmark::State& state) {
  std::string window = RandomDna(148, 5);
  std::string read = window.substr(24, 100);
  read[10] = read[10] == 'A' ? 'C' : 'A';
  for (auto _ : state) {
    benchmark::DoNotOptimize(SmithWaterman(read, window));
  }
}
BENCHMARK(BM_SmithWatermanExtend);

void BM_AlignRead(benchmark::State& state) {
  ReferenceGeneratorOptions ro;
  ro.num_chromosomes = 1;
  ro.chromosome_length = 200'000;
  static const ReferenceGenome genome = GenerateReference(ro);
  static const GenomeIndex index(genome);
  ReadAligner aligner(index);
  Rng rng(7);
  for (auto _ : state) {
    int64_t pos = rng.Uniform(200'000 - 100);
    benchmark::DoNotOptimize(
        aligner.AlignRead(genome.chromosomes[0].sequence.substr(pos, 100)));
  }
}
BENCHMARK(BM_AlignRead);

void BM_BgzfCompressBlock(benchmark::State& state) {
  std::string block = RandomDna(kBgzfBlockSize, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BgzfCompressBlock(block));
  }
  state.SetBytesProcessed(state.iterations() * kBgzfBlockSize);
}
BENCHMARK(BM_BgzfCompressBlock);

void BM_BamRecordCodec(benchmark::State& state) {
  SamRecord rec;
  rec.qname = "read-123456";
  rec.ref_id = 0;
  rec.pos = 123'456;
  rec.mapq = 60;
  rec.cigar = {{'S', 5}, {'M', 95}};
  rec.seq = RandomDna(100, 11);
  rec.qual = std::string(100, 'I');
  rec.SetTag("AS", 'i', "95");
  for (auto _ : state) {
    std::string encoded = EncodeBamRecord(rec);
    size_t offset = 0;
    benchmark::DoNotOptimize(DecodeBamRecord(encoded, &offset));
  }
}
BENCHMARK(BM_BamRecordCodec);

void BM_BloomFilterProbe(benchmark::State& state) {
  BloomFilter filter(1'000'000, 0.01);
  Rng rng(13);
  for (int i = 0; i < 1'000'000; ++i) filter.Insert(rng.Next());
  Rng probe(17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.MayContain(probe.Next()));
  }
}
BENCHMARK(BM_BloomFilterProbe);

class CountMapper : public Mapper {
 public:
  Status Map(const std::string& input, MapContext* ctx) override {
    for (size_t i = 0; i + 8 <= input.size(); i += 8) {
      ctx->Emit(input.substr(i, 8), "1");
    }
    return Status::OK();
  }
};
class CountReducer : public Reducer {
 public:
  Status Reduce(const std::string& key,
                const std::vector<std::string>& values,
                ReduceContext* ctx) override {
    ctx->Emit(key + std::to_string(values.size()));
    return Status::OK();
  }
};

void BM_MapReduceShuffle(benchmark::State& state) {
  std::vector<InputSplit> splits;
  for (int i = 0; i < 4; ++i) {
    splits.push_back(InlineSplit(RandomDna(1 << 16, 100 + i)));
  }
  for (auto _ : state) {
    MapReduceJob job;
    benchmark::DoNotOptimize(
        job.Run(
            splits, [] { return std::make_unique<CountMapper>(); },
            [] { return std::make_unique<CountReducer>(); }));
  }
  state.SetBytesProcessed(state.iterations() * 4 * (1 << 16));
}
BENCHMARK(BM_MapReduceShuffle);

}  // namespace
}  // namespace gesall

BENCHMARK_MAIN();

// Fig. 6: overheads in shuffling-intensive jobs —
//   (a) share of task time in Hadoop<->program data transformation
//       (paper: 12-49%);
//   (b) ratio of external-program time under Hadoop (repeated,
//       partitioned invocations) to the single-node program run once on
//       the complete input (paper: > 1, e.g. CleanSam 11h03m vs 7h33m).
//
// Two views are reported. The MODEL view uses the calibrated cost rates
// (the same ones the performance simulator runs on), where the wrapped
// programs are JVM-era PicardTools/GATK. The FUNCTIONAL view measures
// this repository's own pipeline; our C++ reimplementations of the
// record-level cleaning steps are so much faster than Picard that the
// transformation share comes out *higher* than the paper's — the
// absolute transform cost per record is comparable, the program cost is
// not. The functional numbers document that honestly.

#include <cstdio>

#include "functional_fixture.h"
#include "gesall/transform.h"
#include "report.h"
#include "sim/genomics.h"

using namespace gesall;

int main() {
  GenomicsRates rates;

  bench::Title("Fig 6(a) MODEL: transformation share per wrapped program");
  struct Step {
    const char* name;
    double program_rate;
    double transforms;  // conversions per record around the program
  };
  const Step steps[] = {
      {"AddReplRG", rates.add_replace_groups, 1.0},
      {"CleanSam", rates.clean_sam, 1.0},
      {"FixMateInfo", rates.fix_mate_info, 2.0},
      {"SortSam", rates.sort_sam, 1.0},
      {"MarkDuplicates", rates.mark_duplicates, 2.0},
  };
  double min_share = 1.0, max_share = 0.0;
  std::printf("  %-18s %10s\n", "Program", "share");
  for (const auto& s : steps) {
    double transform = s.transforms * rates.transform_per_record;
    double share = transform / (transform + s.program_rate);
    std::printf("  %-18s %9.0f%%\n", s.name, share * 100);
    min_share = std::min(min_share, share);
    max_share = std::max(max_share, share);
  }

  bench::Title("Fig 6(b) MODEL: Hadoop vs single-node program time ratio");
  std::printf("  %-18s %8s   (repeated-invocation penalty on "
              "partitioned data)\n",
              "Program", "ratio");
  for (const auto& s : steps) {
    double extra_records = s.name == std::string("MarkDuplicates") ||
                                   s.name == std::string("SortSam")
                               ? 1.03
                               : 1.0;
    std::printf("  %-18s %8.2f\n", s.name,
                rates.repeated_call_penalty * extra_records);
  }

  // ----------------------------------------------------------------------
  auto f = bench::BuildFixture();
  bench::Title("Fig 6(a) FUNCTIONAL: measured on this repo's pipeline");
  std::printf("  %-28s %12s %12s %10s\n", "Round", "transform(s)",
              "program(s)", "share");
  double func_transform = 0, func_program = 0;
  for (const auto& s : f.pipeline->stats()) {
    double transform = s.counters.Get(kTransformMicros) / 1e6;
    double program = s.counters.Get(kProgramMicros) / 1e6;
    if (transform + program <= 0) continue;
    std::printf("  %-28s %12.2f %12.2f %9.0f%%\n", s.name.c_str(),
                transform, program,
                100 * transform / (transform + program));
    func_transform += transform;
    func_program += program;
  }
  std::printf("  (our C++ cleaning steps are far cheaper than Picard, so "
              "the share runs higher than 12-49%%)\n");

  bench::Title("Fig 6(b) FUNCTIONAL: Hadoop vs serial program seconds");
  auto serial_group = [&](std::initializer_list<const char*> names) {
    double total = 0;
    for (const char* n : names) {
      auto it = f.serial.step_seconds.find(n);
      if (it != f.serial.step_seconds.end()) total += it->second;
    }
    return total;
  };
  double serial_r2 =
      serial_group({"add_replace_groups", "clean_sam", "fix_mate_info"});
  double hadoop_r2 = 0;
  for (const auto& s : f.pipeline->stats()) {
    if (s.name == "round2_cleaning") {
      hadoop_r2 = s.counters.Get(kProgramMicros) / 1e6;
    }
  }
  std::printf("  AddRepl+CleanSam+FixMate: hadoop %.3fs vs serial %.3fs "
              "(ratio %.2f)\n",
              hadoop_r2, serial_r2,
              serial_r2 > 0 ? hadoop_r2 / serial_r2 : 0.0);

  bench::Note("");
  bench::Note("Paper shape claims:");
  bool ok = true;
  ok &= bench::Check(min_share >= 0.10 && max_share <= 0.55,
                     "MODEL: transformation takes 12-49% of wrapped-"
                     "program task time");
  ok &= bench::Check(rates.repeated_call_penalty > 1.0,
                     "MODEL: repeated partitioned invocation costs more "
                     "than one whole-input run (all ratios > 1)");
  ok &= bench::Check(func_transform > 0 && func_program > 0,
                     "FUNCTIONAL: both costs are real and measured");
  ok &= bench::Check(
      func_transform / (func_transform + func_program) > 0.05,
      "FUNCTIONAL: transformation is a nontrivial share end-to-end");
  return ok ? 0 : 1;
}

// Alignment kernel benchmark: the full-rectangle scalar Smith-Waterman
// against the banded scalar and banded SIMD kernels on a simulated
// whole-genome read set, through the real ReadAligner hot path
// (seeding, clustering, extension, dedupe).
//
// Measures reads/sec per kernel, steady-state heap allocations per read
// (counted via a global operator new override — the AlignScratch pools
// must make this exactly zero), and the fraction of DP cells the band
// skips. The banded scalar and banded SIMD kernels must produce
// bit-identical alignments (digested); the full-rectangle kernel is the
// performance baseline only — on repetitive windows its winner can leave
// the band, so full-vs-banded identity holds per read only for
// seed-anchored alignments (DESIGN.md §8, sw_differential_test.cc).
//
// Emits machine-readable results as JSON (argv[1], default
// BENCH_align.json in the working directory). Exits non-zero if the
// banded SIMD kernel is not >= 3x the scalar full-rectangle kernel or if
// the hot path allocates.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "align/aligner.h"
#include "align/genome_index.h"
#include "align/smith_waterman.h"
#include "formats/cigar.h"
#include "genome/donor.h"
#include "genome/read_simulator.h"
#include "genome/reference_generator.h"
#include "report.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace {
std::atomic<int64_t> g_heap_allocations{0};
}  // namespace

void* operator new(size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace gesall {
namespace {

constexpr int kIterations = 3;  // best-of to shed scheduler noise

struct RunResult {
  double seconds = 0;
  int64_t reads = 0;
  int64_t hot_allocations = 0;  // steady-state, after warmup
  uint64_t digest = 0;          // FNV over every produced alignment
  SwKernelStats stats;
};

uint64_t DigestAlignments(uint64_t h, const AlignmentList& list) {
  auto mix = [&h](int64_t v) {
    h ^= static_cast<uint64_t>(v);
    h *= 0x100000001b3ULL;
  };
  for (const Alignment& a : list) {
    mix(a.ref_id);
    mix(a.pos);
    mix(a.reverse ? 1 : 0);
    mix(a.score);
    mix(a.edit_distance);
    for (const CigarOp& op : a.cigar) {
      mix(op.op);
      mix(op.len);
    }
  }
  return h;
}

RunResult RunKernel(const ReadAligner& aligner,
                    const std::vector<FastqRecord>& reads) {
  RunResult result;
  AlignScratch scratch;
  AlignmentList out;
  // Warm up to the allocation fixpoint. Swap-based pooling permutes Cigar
  // buffers between slots, so one pass can leave a few slots still below
  // their high-water capacity; repeat until a full pass allocates nothing
  // (total pooled capacity only grows, so this terminates).
  for (int pass = 0; pass < 8; ++pass) {
    const int64_t before = g_heap_allocations.load();
    for (const auto& r : reads) {
      aligner.AlignReadInto(r.sequence, &scratch, &out);
    }
    if (g_heap_allocations.load() == before) break;
  }
  scratch.stats = SwKernelStats{};

  const int64_t allocs_before = g_heap_allocations.load();
  Stopwatch clock;
  uint64_t digest = 0xcbf29ce484222325ULL;
  for (const auto& r : reads) {
    aligner.AlignReadInto(r.sequence, &scratch, &out);
    digest = DigestAlignments(digest, out);
  }
  result.seconds = clock.ElapsedSeconds();
  result.hot_allocations = g_heap_allocations.load() - allocs_before;
  result.reads = static_cast<int64_t>(reads.size());
  result.digest = digest;
  result.stats = scratch.stats;
  return result;
}

template <typename Fn>
RunResult BestOf(int iterations, const Fn& fn) {
  RunResult best = fn();
  for (int i = 1; i < iterations; ++i) {
    RunResult r = fn();
    r.hot_allocations = std::min(r.hot_allocations, best.hot_allocations);
    if (r.seconds < best.seconds) {
      r.stats = best.stats;  // stats are identical across iterations
      best = r;
    }
  }
  return best;
}

void PrintJson(std::FILE* f, int64_t reads, const RunResult& scalar,
               const RunResult& banded, const RunResult& simd) {
  auto rate = [](const RunResult& r) { return r.reads / r.seconds; };
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"align\",\n");
  std::fprintf(f, "  \"reads\": %lld,\n", static_cast<long long>(reads));
  std::fprintf(f, "  \"iterations\": %d,\n", kIterations);
  std::fprintf(f, "  \"simd_available\": %s,\n",
               SwSimdAvailable() ? "true" : "false");
  auto section = [&](const char* name, const RunResult& r) {
    std::fprintf(f, "  \"%s\": {\n", name);
    std::fprintf(f, "    \"seconds\": %.4f,\n", r.seconds);
    std::fprintf(f, "    \"reads_per_sec\": %.0f,\n", rate(r));
    std::fprintf(f, "    \"allocations_per_read\": %.4f,\n",
                 static_cast<double>(r.hot_allocations) /
                     static_cast<double>(r.reads));
    std::fprintf(f, "    \"kernel_calls\": %lld,\n",
                 static_cast<long long>(r.stats.calls));
    std::fprintf(f, "    \"simd_calls\": %lld,\n",
                 static_cast<long long>(r.stats.simd_calls));
    std::fprintf(f, "    \"overflow_reruns\": %lld,\n",
                 static_cast<long long>(r.stats.overflow_reruns));
    std::fprintf(f, "    \"band_cells_skipped\": %lld,\n",
                 static_cast<long long>(r.stats.cells_skipped()));
    std::fprintf(f, "    \"cells_filled\": %lld\n",
                 static_cast<long long>(r.stats.cells_filled));
    std::fprintf(f, "  },\n");
  };
  section("scalar_full", scalar);
  section("banded_scalar", banded);
  section("banded_simd", simd);
  std::fprintf(f, "  \"speedup_banded\": %.2f,\n", rate(banded) / rate(scalar));
  std::fprintf(f, "  \"speedup_banded_simd\": %.2f,\n",
               rate(simd) / rate(scalar));
  std::fprintf(f, "  \"identical_output\": %s,\n",
               banded.digest == simd.digest ? "true" : "false");
  std::fprintf(f, "  \"full_rectangle_matches_banded\": %s\n",
               scalar.digest == banded.digest ? "true" : "false");
  std::fprintf(f, "}\n");
}

int Main(int argc, char** argv) {
  bench::Title("Alignment kernel: scalar full-rectangle vs banded vs SIMD");

  ReferenceGeneratorOptions ro;
  ro.num_chromosomes = 1;
  ro.chromosome_length = 200'000;
  ReferenceGenome ref = GenerateReference(ro);
  DonorGenome donor = PlantVariants(ref, VariantPlanterOptions{});
  ReadSimulatorOptions so;
  so.read_length = 150;  // standard Illumina length; DP is O(len * band)
  so.coverage = 3.0;
  SimulatedSample sample = SimulateReads(donor, so);
  GenomeIndex index(ref);

  std::vector<FastqRecord> reads = sample.mate1;
  reads.insert(reads.end(), sample.mate2.begin(), sample.mate2.end());
  bench::Note(std::to_string(reads.size()) +
              " simulated reads through ReadAligner (seed + cluster + "
              "extend + dedupe)");

  auto aligner_for = [&](SwKernelMode mode) {
    AlignerOptions opt;
    opt.kernel = mode;
    return ReadAligner(index, opt);
  };
  ReadAligner scalar_aligner = aligner_for(SwKernelMode::kScalarFull);
  ReadAligner banded_aligner = aligner_for(SwKernelMode::kBanded);
  ReadAligner simd_aligner = aligner_for(SwKernelMode::kBandedSimd);

  RunResult scalar =
      BestOf(kIterations, [&] { return RunKernel(scalar_aligner, reads); });
  RunResult banded =
      BestOf(kIterations, [&] { return RunKernel(banded_aligner, reads); });
  RunResult simd =
      BestOf(kIterations, [&] { return RunKernel(simd_aligner, reads); });

  std::printf("  %-16s %9s %13s %13s %18s\n", "kernel", "seconds",
              "reads/sec", "allocs/read", "cells skipped");
  auto row = [&](const char* name, const RunResult& r) {
    std::printf("  %-16s %9.3f %13.0f %13.4f %18lld\n", name, r.seconds,
                r.reads / r.seconds,
                static_cast<double>(r.hot_allocations) /
                    static_cast<double>(r.reads),
                static_cast<long long>(r.stats.cells_skipped()));
  };
  row("scalar full", scalar);
  row("banded scalar", banded);
  row("banded SIMD", simd);

  const double speedup = (simd.reads / simd.seconds) /
                         (scalar.reads / scalar.seconds);
  std::printf("  banded SIMD speedup over scalar full: %.2fx\n", speedup);

  bool ok = true;
  ok &= bench::Check(banded.digest == simd.digest,
                     "banded SIMD alignments bit-identical to banded scalar");
  ok &= bench::Check(simd.hot_allocations == 0 && banded.hot_allocations == 0,
                     "steady-state hot path performs zero heap allocations "
                     "per read");
  ok &= bench::Check(speedup >= 3.0,
                     "banded SIMD kernel is >= 3x the scalar full-rectangle "
                     "kernel");
  ok &= bench::Check(simd.stats.cells_skipped() > 0,
                     "band skips a nonzero fraction of DP cells");
  if (SwSimdAvailable()) {
    ok &= bench::Check(simd.stats.simd_calls > 0,
                       "SIMD row fill dispatched at runtime");
  }

  const char* out_path = argc > 1 ? argv[1] : "BENCH_align.json";
  if (std::FILE* f = std::fopen(out_path, "w")) {
    PrintJson(f, static_cast<int64_t>(reads.size()), scalar, banded, simd);
    std::fclose(f);
    bench::Note(std::string("wrote ") + out_path);
  } else {
    std::fprintf(stderr, "cannot write %s\n", out_path);
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace gesall

int main(int argc, char** argv) { return gesall::Main(argc, argv); }

// Fig. 10: disk utilization on the production cluster —
//   (a) MarkDup_reg, 1 disk for 16 reducers/node: the disk is maxed out;
//   (b) MarkDup_reg, 6 disks: load spread, no disk saturated;
//   (c) MarkDup_opt, 1 disk: ~100 GB shuffled per disk is sustainable;
//   (d) MarkDup_reg, 1 disk, spills written raw: the paper's shuffle
//       sizes already assume compressed map output, so undoing the
//       bench_shuffle-measured reduction shows what the same disk
//       carries without the compression-aware data path.

#include <algorithm>
#include <cstdio>
#include <string>

#include "report.h"
#include "sim/genomics.h"

using namespace gesall;

namespace {

// On-disk shuffle reduction of the BGZF spill path, as measured by
// bench_shuffle on the genome workload (combined_disk_reduction).
constexpr double kSpillCompressionRatio = 3.6;

struct DiskSummary {
  double mean_util = 0;
  double peak_util = 0;
  double saturated_fraction = 0;  // share of buckets above 95%
  double wall = 0;
  int64_t shuffle_bytes = 0;  // per-job map output landing on disk
};

DiskSummary Measure(bool optimized, int disks, bool print_trace,
                    double shuffle_scale = 1.0) {
  auto workload = WorkloadSpec::NA12878();
  // The NA12878 shuffle sizes (375/785 GB) are for compressed map
  // output; shuffle_scale > 1 prices the same records stored raw.
  workload.shuffle_bytes_per_record *= shuffle_scale;
  workload.shuffle_bytes_per_record_reg *= shuffle_scale;
  GenomicsRates rates;
  ClusterSpec b = ClusterSpec::B(disks);
  auto job = MarkDuplicatesJob(workload, rates, b, optimized, 510, 16);
  auto result = SimulateMrJob(b, job);

  // Node 0's first disk, as in the paper's sar plots.
  const auto& trace = result.disk_utilization[0];
  DiskSummary s;
  s.wall = result.wall_seconds;
  s.shuffle_bytes =
      job.map_output_bytes_per_task * static_cast<int64_t>(job.num_map_tasks);
  int saturated = 0;
  for (double u : trace) {
    s.mean_util += u;
    s.peak_util = std::max(s.peak_util, u);
    saturated += u > 0.95;
  }
  if (!trace.empty()) {
    s.mean_util /= trace.size();
    s.saturated_fraction = static_cast<double>(saturated) / trace.size();
  }
  if (print_trace) {
    std::string spark;
    // Downsample to 72 chars.
    const char* levels = " .:-=+*#%@";
    for (int c = 0; c < 72; ++c) {
      size_t i = c * trace.size() / 72;
      int l = std::min(9, static_cast<int>(trace[i] * 10));
      spark += levels[l];
    }
    std::printf("    util |%s|\n", spark.c_str());
  }
  return s;
}

}  // namespace

int main() {
  bench::Title("Fig 10: disk utilization (node 0, disk 0), Cluster B");

  std::printf("  (a) MarkDup_reg, 1 disk / 16 reducers per node:\n");
  auto reg1 = Measure(false, 1, true);
  std::printf("      mean %.0f%%, peak %.0f%%, saturated %.0f%% of run, "
              "wall %s\n",
              100 * reg1.mean_util, 100 * reg1.peak_util,
              100 * reg1.saturated_fraction, bench::Hms(reg1.wall).c_str());

  std::printf("  (b) MarkDup_reg, 6 disks per node:\n");
  auto reg6 = Measure(false, 6, true);
  std::printf("      mean %.0f%%, peak %.0f%%, saturated %.0f%% of run, "
              "wall %s\n",
              100 * reg6.mean_util, 100 * reg6.peak_util,
              100 * reg6.saturated_fraction, bench::Hms(reg6.wall).c_str());

  std::printf("  (c) MarkDup_opt, 1 disk per node:\n");
  auto opt1 = Measure(true, 1, true);
  std::printf("      mean %.0f%%, peak %.0f%%, saturated %.0f%% of run, "
              "wall %s\n",
              100 * opt1.mean_util, 100 * opt1.peak_util,
              100 * opt1.saturated_fraction, bench::Hms(opt1.wall).c_str());

  std::printf("  (d) MarkDup_reg, 1 disk, spills stored raw "
              "(no %.1fx BGZF reduction):\n",
              kSpillCompressionRatio);
  auto raw1 = Measure(false, 1, true, kSpillCompressionRatio);
  std::printf("      mean %.0f%%, peak %.0f%%, saturated %.0f%% of run, "
              "wall %s\n",
              100 * raw1.mean_util, 100 * raw1.peak_util,
              100 * raw1.saturated_fraction, bench::Hms(raw1.wall).c_str());

  std::printf("\n  shuffle bytes on disk      raw    compressed   ratio\n");
  auto gb = [](int64_t b) { return static_cast<double>(b) / 1e9; };
  std::printf("    MarkDup_reg         %7.0f GB %8.0f GB  %5.2fx\n",
              gb(raw1.shuffle_bytes), gb(reg1.shuffle_bytes),
              gb(raw1.shuffle_bytes) / gb(reg1.shuffle_bytes));
  std::printf("    MarkDup_opt         %7.0f GB %8.0f GB  %5.2fx\n",
              gb(opt1.shuffle_bytes) * kSpillCompressionRatio,
              gb(opt1.shuffle_bytes), kSpillCompressionRatio);

  bench::Note("");
  bench::Note("Paper shape claims:");
  bool ok = true;
  ok &= bench::Check(reg1.saturated_fraction > 0.4,
                     "(a) the single disk is maxed out under MarkDup_reg");
  ok &= bench::Check(reg6.saturated_fraction < reg1.saturated_fraction * 0.7,
                     "(b) six disks fix the saturation");
  ok &= bench::Check(opt1.saturated_fraction < reg1.saturated_fraction &&
                         opt1.wall < reg1.wall * 0.55,
                     "(c) MarkDup_opt sustains ~100 GB/disk on one disk "
                     "(lower saturation, less than half the run time)");
  ok &= bench::Check(reg6.wall < reg1.wall,
                     "six disks shorten MarkDup_reg");
  ok &= bench::Check(raw1.shuffle_bytes > reg1.shuffle_bytes * 3 &&
                         raw1.wall > reg1.wall,
                     "(d) raw spills multiply disk bytes and lengthen "
                     "the run — compression earns its cpu");
  return ok ? 0 : 1;
}

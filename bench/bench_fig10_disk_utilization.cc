// Fig. 10: disk utilization on the production cluster —
//   (a) MarkDup_reg, 1 disk for 16 reducers/node: the disk is maxed out;
//   (b) MarkDup_reg, 6 disks: load spread, no disk saturated;
//   (c) MarkDup_opt, 1 disk: ~100 GB shuffled per disk is sustainable.

#include <algorithm>
#include <cstdio>
#include <string>

#include "report.h"
#include "sim/genomics.h"

using namespace gesall;

namespace {

struct DiskSummary {
  double mean_util = 0;
  double peak_util = 0;
  double saturated_fraction = 0;  // share of buckets above 95%
  double wall = 0;
};

DiskSummary Measure(bool optimized, int disks, bool print_trace) {
  auto workload = WorkloadSpec::NA12878();
  GenomicsRates rates;
  ClusterSpec b = ClusterSpec::B(disks);
  auto job = MarkDuplicatesJob(workload, rates, b, optimized, 510, 16);
  auto result = SimulateMrJob(b, job);

  // Node 0's first disk, as in the paper's sar plots.
  const auto& trace = result.disk_utilization[0];
  DiskSummary s;
  s.wall = result.wall_seconds;
  int saturated = 0;
  for (double u : trace) {
    s.mean_util += u;
    s.peak_util = std::max(s.peak_util, u);
    saturated += u > 0.95;
  }
  if (!trace.empty()) {
    s.mean_util /= trace.size();
    s.saturated_fraction = static_cast<double>(saturated) / trace.size();
  }
  if (print_trace) {
    std::string spark;
    // Downsample to 72 chars.
    const char* levels = " .:-=+*#%@";
    for (int c = 0; c < 72; ++c) {
      size_t i = c * trace.size() / 72;
      int l = std::min(9, static_cast<int>(trace[i] * 10));
      spark += levels[l];
    }
    std::printf("    util |%s|\n", spark.c_str());
  }
  return s;
}

}  // namespace

int main() {
  bench::Title("Fig 10: disk utilization (node 0, disk 0), Cluster B");

  std::printf("  (a) MarkDup_reg, 1 disk / 16 reducers per node:\n");
  auto reg1 = Measure(false, 1, true);
  std::printf("      mean %.0f%%, peak %.0f%%, saturated %.0f%% of run, "
              "wall %s\n",
              100 * reg1.mean_util, 100 * reg1.peak_util,
              100 * reg1.saturated_fraction, bench::Hms(reg1.wall).c_str());

  std::printf("  (b) MarkDup_reg, 6 disks per node:\n");
  auto reg6 = Measure(false, 6, true);
  std::printf("      mean %.0f%%, peak %.0f%%, saturated %.0f%% of run, "
              "wall %s\n",
              100 * reg6.mean_util, 100 * reg6.peak_util,
              100 * reg6.saturated_fraction, bench::Hms(reg6.wall).c_str());

  std::printf("  (c) MarkDup_opt, 1 disk per node:\n");
  auto opt1 = Measure(true, 1, true);
  std::printf("      mean %.0f%%, peak %.0f%%, saturated %.0f%% of run, "
              "wall %s\n",
              100 * opt1.mean_util, 100 * opt1.peak_util,
              100 * opt1.saturated_fraction, bench::Hms(opt1.wall).c_str());

  bench::Note("");
  bench::Note("Paper shape claims:");
  bool ok = true;
  ok &= bench::Check(reg1.saturated_fraction > 0.4,
                     "(a) the single disk is maxed out under MarkDup_reg");
  ok &= bench::Check(reg6.saturated_fraction < reg1.saturated_fraction * 0.7,
                     "(b) six disks fix the saturation");
  ok &= bench::Check(opt1.saturated_fraction < reg1.saturated_fraction &&
                         opt1.wall < reg1.wall * 0.55,
                     "(c) MarkDup_opt sustains ~100 GB/disk on one disk "
                     "(lower saturation, less than half the run time)");
  ok &= bench::Check(reg6.wall < reg1.wall,
                     "six disks shorten MarkDup_reg");
  return ok ? 0 : 1;
}

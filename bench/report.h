// Shared formatting helpers for the experiment harnesses. Each bench
// binary regenerates one table or figure of the paper and prints the
// paper-reported values (where the text preserves them) next to the
// simulated/measured ones.

#ifndef GESALL_BENCH_REPORT_H_
#define GESALL_BENCH_REPORT_H_

#include <cstdio>
#include <string>

namespace gesall::bench {

inline void Title(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void Note(const std::string& text) {
  std::printf("  %s\n", text.c_str());
}

/// "4h 57m 16s" style rendering of a duration.
inline std::string Hms(double seconds) {
  int s = static_cast<int>(seconds + 0.5);
  int h = s / 3600, m = (s % 3600) / 60, sec = s % 60;
  char buf[48];
  if (h > 0) {
    std::snprintf(buf, sizeof(buf), "%dh %02dm %02ds", h, m, sec);
  } else if (m > 0) {
    std::snprintf(buf, sizeof(buf), "%dm %02ds", m, sec);
  } else {
    std::snprintf(buf, sizeof(buf), "%ds", sec);
  }
  return buf;
}

/// Prints PASS/CHECK lines for shape assertions so the harness output
/// documents whether the paper's qualitative claims reproduce.
inline bool Check(bool ok, const std::string& claim) {
  std::printf("  [%s] %s\n", ok ? "OK  " : "FAIL", claim.c_str());
  return ok;
}

}  // namespace gesall::bench

#endif  // GESALL_BENCH_REPORT_H_

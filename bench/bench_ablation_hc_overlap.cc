// Ablation: sizing the overlap of the Haplotype Caller's fine-grained
// range partitioning (paper §3.2-3: "we have designed an overlapping
// partitioning scheme that can determine the appropriate overlap between
// two genome segments and bound the probability of errors"). Sweeps the
// overlap from 0 to beyond the maximum active-window length and measures
// call discordance against the whole-chromosome sequential walk.

#include <cstdio>

#include "align/aligner.h"
#include "analysis/haplotype_caller.h"
#include "analysis/steps.h"
#include "gesall/diagnosis.h"
#include "genome/read_simulator.h"
#include "genome/reference_generator.h"
#include "report.h"

using namespace gesall;

int main() {
  // Prepare one coordinate-sorted aligned sample.
  ReferenceGeneratorOptions ro;
  ro.num_chromosomes = 1;
  ro.chromosome_length = 200'000;
  ReferenceGenome reference = GenerateReference(ro);
  DonorGenome donor = PlantVariants(reference, VariantPlanterOptions{});
  ReadSimulatorOptions so;
  so.coverage = 25.0;
  auto sample = SimulateReads(donor, so);
  GenomeIndex index(reference);
  PairedEndAligner aligner(index);
  auto interleaved =
      InterleavePairs(sample.mate1, sample.mate2).ValueOrDie();
  auto records = aligner.AlignPairs(interleaved);
  SamHeader header = aligner.MakeHeader();
  CleanSam(header, &records);
  SortSamByCoordinate(&header, &records);

  HaplotypeCallerOptions opt;
  HaplotypeCaller whole(reference, opt);
  auto expected = whole.CallChromosome(records, 0);

  const int64_t chrom_len = 200'000;
  const int segments = 8;

  bench::Title("Ablation: HC overlapping-partition discordance vs overlap");
  std::printf("  (max active window = %d, pad = %d)\n", opt.max_window,
              opt.window_pad);
  std::printf("  %12s %12s %14s\n", "Overlap", "D_count", "of calls");
  int64_t d_zero = -1, d_full = -1;
  for (int64_t overlap :
       {int64_t{0}, int64_t{opt.max_window / 4},
        int64_t{opt.max_window + opt.window_pad},
        int64_t{2 * (opt.max_window + opt.window_pad)}}) {
    std::vector<VariantRecord> calls;
    for (int seg = 0; seg < segments; ++seg) {
      int64_t emit_start = chrom_len * seg / segments;
      int64_t emit_end = chrom_len * (seg + 1) / segments;
      HaplotypeCaller part(reference, opt);
      auto out = part.CallRegion(
          records, 0, std::max<int64_t>(0, emit_start - overlap),
          std::min(chrom_len, emit_end + overlap), emit_start, emit_end);
      calls.insert(calls.end(), out.begin(), out.end());
    }
    auto disc = CompareVariants(expected, calls);
    std::printf("  %12lld %12lld %13.2f%%\n",
                static_cast<long long>(overlap),
                static_cast<long long>(disc.d_count()),
                100.0 * disc.d_count() /
                    std::max<double>(1.0, expected.size()));
    if (overlap == 0) d_zero = disc.d_count();
    if (overlap == opt.max_window + opt.window_pad) {
      d_full = disc.d_count();
    }
  }

  bench::Note("");
  bench::Note("Claims:");
  bool ok = true;
  ok &= bench::Check(d_full <= d_zero,
                     "overlap >= max window never increases discordance");
  ok &= bench::Check(
      d_full <= static_cast<int64_t>(expected.size()) / 20 + 3,
      "with a full-window overlap, the boundary error is bounded and "
      "small (the paper's 'bound the probability of errors')");
  ok &= bench::Check(static_cast<int64_t>(expected.size()) > 50,
                     "the call set is large enough to be meaningful");
  return ok ? 0 : 1;
}

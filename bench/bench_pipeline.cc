// Pipelined round DAG vs barriered rounds: end-to-end wall clock of the
// five-round pipeline when map/reduce attempts suffer seeded straggler
// latency. The barriered engine pays every round's straggler tail in
// full; the pipelined engine admits downstream partitions while the tail
// sleeps. Latency-only injection never fails a task, so both engines
// produce byte-identical variant calls (checked) — only scheduling
// differs. Writes BENCH_pipeline.json and exits non-zero if the overlap
// speedup drops below 1.2x or outputs diverge.
//
// The "streaming" section gates the fused rounds-1+2 node graph
// (PipelineConfig::streaming): (a) the streamed align+clean chain's
// allocation high-water mark for a 2x-deeper sample split into 2x
// partitions stays within 1.15x of the 1x sample (memory scales with
// partition size, not depth), (b) the streaming engine beats the
// partition-pipelined engine by >= 1.1x end to end, and (c) streaming
// variants are byte-identical to the barriered oracle.

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "report.h"
#include "gesall/pipeline.h"
#include "gesall/pipeline_node.h"
#include "genome/read_simulator.h"
#include "genome/reference_generator.h"
#include "util/fault_injection.h"
#include "util/logging.h"
#include "util/mem.h"

namespace gesall {
namespace {

constexpr uint64_t kSeed = 4242;
constexpr double kStragglerProbability = 0.6;
constexpr int kStragglerMillis = 300;

struct Sample {
  ReferenceGenome reference;
  DonorGenome donor;
  SimulatedSample reads;
  std::unique_ptr<GenomeIndex> index;
};

Sample MakeSample() {
  Sample s;
  ReferenceGeneratorOptions ro;
  ro.num_chromosomes = 2;
  ro.chromosome_length = 30'000;
  s.reference = GenerateReference(ro);
  s.donor = PlantVariants(s.reference, VariantPlanterOptions{});
  ReadSimulatorOptions so;
  so.coverage = 8.0;
  s.reads = SimulateReads(s.donor, so);
  s.index = std::make_unique<GenomeIndex>(s.reference);
  return s;
}

struct ModeResult {
  double wall_seconds = 0;
  ExecutionSummary execution;
  std::vector<std::string> variant_keys;
};

ModeResult RunMode(const Sample& s, bool pipelined, bool streaming = false) {
  // Fresh injector per run, same seed: the straggler schedule is a pure
  // function of (point, key, attempt), so both engines sleep the same
  // tasks for the same durations.
  // Stragglers land on both map and reduce attempts. The barriered
  // engine serializes every wave's straggler tail; the pipelined engine
  // admits round N+1's gated maps as soon as their partition lands, so
  // their stragglers sleep concurrently with round N's reduce tail.
  FaultInjector injector(kSeed);
  GESALL_CHECK(injector
                   .ArmLatency(kFaultMapAttempt, kStragglerProbability,
                               kStragglerMillis)
                   .ok());
  GESALL_CHECK(injector
                   .ArmLatency(kFaultReduceAttempt, kStragglerProbability,
                               kStragglerMillis)
                   .ok());

  DfsOptions dopt;
  dopt.block_size = 64 * 1024;
  dopt.num_data_nodes = 4;
  Dfs dfs(dopt);
  PipelineConfig config;
  config.alignment_partitions = 6;
  config.max_parallel_tasks = 8;
  config.pipelined = pipelined;
  config.streaming = streaming;
  config.fault_injector = &injector;
  GesallPipeline pipeline(s.reference, *s.index, &dfs, config);
  GESALL_CHECK(pipeline.LoadSample(s.reads.mate1, s.reads.mate2).ok());
  auto variants = pipeline.RunAll();
  GESALL_CHECK(variants.ok()) << variants.status().ToString();

  ModeResult r;
  r.execution = pipeline.SummarizeExecution();
  r.wall_seconds = r.execution.wall_seconds;
  for (const auto& v : variants.ValueOrDie()) {
    std::ostringstream os;
    os << v.Key() << "@" << v.qual;
    r.variant_keys.push_back(os.str());
  }
  return r;
}

// Incremental allocation high-water mark of streaming `parts` through
// the align node graph one partition at a time (sink discards), over
// the live count at phase start — the phase's own footprint, excluding
// whatever the caller keeps alive around it. The counter is fed by the
// operator-new hooks linked into this binary, so it is deterministic.
int64_t StreamPeakDelta(const Sample& s,
                        const std::vector<const std::vector<FastqRecord>*>&
                            parts) {
  ResetPeakAllocBytes();
  const int64_t live0 = LiveAllocBytes();
  for (const auto* part : parts) {
    AlignCleanStreamOptions opts;
    opts.clean = false;
    AlignCleanStreamStats stats;
    Status st = RunAlignCleanStream(
        *s.index, PairedAlignerOptions{}, *part, opts,
        [](RecordBatch*) { return Status::OK(); }, &stats);
    GESALL_CHECK(st.ok()) << st.ToString();
  }
  return PeakAllocBytes() - live0;
}

// The materialized alternative: one monolithic AlignPairs over the whole
// sample, every output record resident at once.
int64_t MonolithicPeakDelta(const Sample& s,
                            const std::vector<FastqRecord>& reads) {
  ResetPeakAllocBytes();
  const int64_t live0 = LiveAllocBytes();
  PairedEndAligner aligner(*s.index, PairedAlignerOptions{});
  std::vector<SamRecord> records = aligner.AlignPairs(reads);
  GESALL_CHECK(!records.empty());
  return PeakAllocBytes() - live0;
}

struct StreamingGates {
  double streaming_seconds = 0;
  double speedup_vs_pipelined = 0;
  bool identical_variants = false;
  int64_t peak_alloc_1x = 0;
  int64_t peak_alloc_2x = 0;
  double peak_ratio = 0;
  int64_t monolithic_peak_2x = 0;
};

void PrintJson(std::FILE* f, const ModeResult& barriered,
               const ModeResult& pipelined, double speedup,
               bool identical, const StreamingGates& sg) {
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"pipeline_round_overlap\",\n");
  std::fprintf(f, "  \"straggler_probability\": %.2f,\n",
               kStragglerProbability);
  std::fprintf(f, "  \"straggler_millis\": %d,\n", kStragglerMillis);
  std::fprintf(f, "  \"barriered_seconds\": %.4f,\n",
               barriered.wall_seconds);
  std::fprintf(f, "  \"pipelined_seconds\": %.4f,\n",
               pipelined.wall_seconds);
  std::fprintf(f, "  \"speedup\": %.3f,\n", speedup);
  std::fprintf(f, "  \"identical_variants\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(f, "  \"pipelined_serialized_round_seconds\": %.4f,\n",
               pipelined.execution.serialized_round_seconds);
  std::fprintf(f, "  \"pipelined_overlap_seconds_saved\": %.4f,\n",
               pipelined.execution.overlap_seconds_saved);
  std::fprintf(f, "  \"pipelined_critical_path_seconds\": %.4f,\n",
               pipelined.execution.critical_path_seconds);
  std::fprintf(f, "  \"rounds\": [\n");
  const auto& rounds = pipelined.execution.rounds;
  for (size_t i = 0; i < rounds.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"start\": %.4f, \"end\": "
                 "%.4f}%s\n",
                 rounds[i].name.c_str(), rounds[i].start_seconds,
                 rounds[i].end_seconds,
                 i + 1 < rounds.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"streaming\": {\n");
  std::fprintf(f, "    \"streaming_seconds\": %.4f,\n",
               sg.streaming_seconds);
  std::fprintf(f, "    \"speedup_vs_pipelined\": %.3f,\n",
               sg.speedup_vs_pipelined);
  std::fprintf(f, "    \"identical_variants\": %s,\n",
               sg.identical_variants ? "true" : "false");
  std::fprintf(f, "    \"peak_alloc_bytes_1x\": %lld,\n",
               static_cast<long long>(sg.peak_alloc_1x));
  std::fprintf(f, "    \"peak_alloc_bytes_2x\": %lld,\n",
               static_cast<long long>(sg.peak_alloc_2x));
  std::fprintf(f, "    \"peak_alloc_ratio_2x_over_1x\": %.3f,\n",
               sg.peak_ratio);
  std::fprintf(f, "    \"monolithic_peak_alloc_bytes_2x\": %lld\n",
               static_cast<long long>(sg.monolithic_peak_2x));
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
}

int Main(int argc, char** argv) {
  bench::Title("Round overlap: barriered vs pipelined five-round DAG");
  bench::Note("seeded straggler latency on map+reduce attempts (p=0.6, "
              "300ms); identical work, different schedules");

  Sample sample = MakeSample();
  ModeResult barriered = RunMode(sample, /*pipelined=*/false);
  ModeResult pipelined = RunMode(sample, /*pipelined=*/true);
  ModeResult streamed =
      RunMode(sample, /*pipelined=*/true, /*streaming=*/true);

  const double speedup = barriered.wall_seconds / pipelined.wall_seconds;
  const bool identical =
      !barriered.variant_keys.empty() &&
      barriered.variant_keys == pipelined.variant_keys;

  StreamingGates sg;
  sg.streaming_seconds = streamed.wall_seconds;
  sg.speedup_vs_pipelined = pipelined.wall_seconds / streamed.wall_seconds;
  sg.identical_variants = !barriered.variant_keys.empty() &&
                          barriered.variant_keys == streamed.variant_keys;

  // Bounded-memory gate: a 2x-deeper sample streamed as 2x partitions
  // must peak within 1.15x of the 1x sample — the streaming chain's
  // footprint is one partition plus bounded queues, never the sample.
  {
    auto interleaved =
        InterleavePairs(sample.reads.mate1, sample.reads.mate2)
            .ValueOrDie();
    sg.peak_alloc_1x = StreamPeakDelta(sample, {&interleaved});
    sg.peak_alloc_2x = StreamPeakDelta(sample, {&interleaved, &interleaved});
    GESALL_CHECK(AllocTrackingActive());
    sg.peak_ratio = static_cast<double>(sg.peak_alloc_2x) /
                    static_cast<double>(sg.peak_alloc_1x);
    std::vector<FastqRecord> doubled = interleaved;
    doubled.insert(doubled.end(), interleaved.begin(), interleaved.end());
    sg.monolithic_peak_2x = MonolithicPeakDelta(sample, doubled);
  }

  std::printf("  %-12s %10s %12s %14s\n", "engine", "seconds",
              "serialized", "overlap saved");
  std::printf("  %-12s %10.3f %12.3f %14.3f\n", "barriered",
              barriered.wall_seconds,
              barriered.execution.serialized_round_seconds,
              barriered.execution.overlap_seconds_saved);
  std::printf("  %-12s %10.3f %12.3f %14.3f\n", "pipelined",
              pipelined.wall_seconds,
              pipelined.execution.serialized_round_seconds,
              pipelined.execution.overlap_seconds_saved);
  std::printf("  %-12s %10.3f %12.3f %14.3f\n", "streaming",
              streamed.wall_seconds,
              streamed.execution.serialized_round_seconds,
              streamed.execution.overlap_seconds_saved);
  std::printf("  speedup: %.2fx (critical path %.3fs)\n", speedup,
              pipelined.execution.critical_path_seconds);
  std::printf("  streaming: %.2fx vs pipelined; peak alloc %lld -> %lld "
              "bytes at 2x depth (%.2fx; monolithic %lld)\n",
              sg.speedup_vs_pipelined,
              static_cast<long long>(sg.peak_alloc_1x),
              static_cast<long long>(sg.peak_alloc_2x), sg.peak_ratio,
              static_cast<long long>(sg.monolithic_peak_2x));

  bool ok = true;
  ok &= bench::Check(identical,
                     "pipelined variants byte-identical to barriered");
  ok &= bench::Check(speedup >= 1.2,
                     "round overlap yields >= 1.2x end-to-end speedup");
  ok &= bench::Check(pipelined.execution.overlap_seconds_saved > 0,
                     "pipelined wall beats the serialized round sum");
  ok &= bench::Check(sg.identical_variants,
                     "streaming variants byte-identical to barriered");
  ok &= bench::Check(sg.speedup_vs_pipelined >= 1.1,
                     "streamed rounds 1+2 yield >= 1.1x over pipelined");
  ok &= bench::Check(sg.peak_ratio <= 1.15,
                     "2x-deeper sample peaks within 1.15x of 1x "
                     "(memory bounded by partition, not depth)");
  ok &= bench::Check(sg.peak_alloc_2x < sg.monolithic_peak_2x,
                     "streamed peak under the monolithic align peak");

  const char* out_path = argc > 1 ? argv[1] : "BENCH_pipeline.json";
  if (std::FILE* f = std::fopen(out_path, "w")) {
    PrintJson(f, barriered, pipelined, speedup, identical, sg);
    std::fclose(f);
    bench::Note(std::string("wrote ") + out_path);
  } else {
    bench::Check(false, std::string("failed to open ") + out_path);
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace gesall

int main(int argc, char** argv) { return gesall::Main(argc, argv); }

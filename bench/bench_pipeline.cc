// Pipelined round DAG vs barriered rounds: end-to-end wall clock of the
// five-round pipeline when map/reduce attempts suffer seeded straggler
// latency. The barriered engine pays every round's straggler tail in
// full; the pipelined engine admits downstream partitions while the tail
// sleeps. Latency-only injection never fails a task, so both engines
// produce byte-identical variant calls (checked) — only scheduling
// differs. Writes BENCH_pipeline.json and exits non-zero if the overlap
// speedup drops below 1.2x or outputs diverge.

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "report.h"
#include "gesall/pipeline.h"
#include "genome/read_simulator.h"
#include "genome/reference_generator.h"
#include "util/fault_injection.h"
#include "util/logging.h"

namespace gesall {
namespace {

constexpr uint64_t kSeed = 4242;
constexpr double kStragglerProbability = 0.6;
constexpr int kStragglerMillis = 300;

struct Sample {
  ReferenceGenome reference;
  DonorGenome donor;
  SimulatedSample reads;
  std::unique_ptr<GenomeIndex> index;
};

Sample MakeSample() {
  Sample s;
  ReferenceGeneratorOptions ro;
  ro.num_chromosomes = 2;
  ro.chromosome_length = 30'000;
  s.reference = GenerateReference(ro);
  s.donor = PlantVariants(s.reference, VariantPlanterOptions{});
  ReadSimulatorOptions so;
  so.coverage = 8.0;
  s.reads = SimulateReads(s.donor, so);
  s.index = std::make_unique<GenomeIndex>(s.reference);
  return s;
}

struct ModeResult {
  double wall_seconds = 0;
  ExecutionSummary execution;
  std::vector<std::string> variant_keys;
};

ModeResult RunMode(const Sample& s, bool pipelined) {
  // Fresh injector per run, same seed: the straggler schedule is a pure
  // function of (point, key, attempt), so both engines sleep the same
  // tasks for the same durations.
  // Stragglers land on both map and reduce attempts. The barriered
  // engine serializes every wave's straggler tail; the pipelined engine
  // admits round N+1's gated maps as soon as their partition lands, so
  // their stragglers sleep concurrently with round N's reduce tail.
  FaultInjector injector(kSeed);
  GESALL_CHECK(injector
                   .ArmLatency(kFaultMapAttempt, kStragglerProbability,
                               kStragglerMillis)
                   .ok());
  GESALL_CHECK(injector
                   .ArmLatency(kFaultReduceAttempt, kStragglerProbability,
                               kStragglerMillis)
                   .ok());

  DfsOptions dopt;
  dopt.block_size = 64 * 1024;
  dopt.num_data_nodes = 4;
  Dfs dfs(dopt);
  PipelineConfig config;
  config.alignment_partitions = 6;
  config.max_parallel_tasks = 8;
  config.pipelined = pipelined;
  config.fault_injector = &injector;
  GesallPipeline pipeline(s.reference, *s.index, &dfs, config);
  GESALL_CHECK(pipeline.LoadSample(s.reads.mate1, s.reads.mate2).ok());
  auto variants = pipeline.RunAll();
  GESALL_CHECK(variants.ok()) << variants.status().ToString();

  ModeResult r;
  r.execution = pipeline.SummarizeExecution();
  r.wall_seconds = r.execution.wall_seconds;
  for (const auto& v : variants.ValueOrDie()) {
    std::ostringstream os;
    os << v.Key() << "@" << v.qual;
    r.variant_keys.push_back(os.str());
  }
  return r;
}

void PrintJson(std::FILE* f, const ModeResult& barriered,
               const ModeResult& pipelined, double speedup,
               bool identical) {
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"pipeline_round_overlap\",\n");
  std::fprintf(f, "  \"straggler_probability\": %.2f,\n",
               kStragglerProbability);
  std::fprintf(f, "  \"straggler_millis\": %d,\n", kStragglerMillis);
  std::fprintf(f, "  \"barriered_seconds\": %.4f,\n",
               barriered.wall_seconds);
  std::fprintf(f, "  \"pipelined_seconds\": %.4f,\n",
               pipelined.wall_seconds);
  std::fprintf(f, "  \"speedup\": %.3f,\n", speedup);
  std::fprintf(f, "  \"identical_variants\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(f, "  \"pipelined_serialized_round_seconds\": %.4f,\n",
               pipelined.execution.serialized_round_seconds);
  std::fprintf(f, "  \"pipelined_overlap_seconds_saved\": %.4f,\n",
               pipelined.execution.overlap_seconds_saved);
  std::fprintf(f, "  \"pipelined_critical_path_seconds\": %.4f,\n",
               pipelined.execution.critical_path_seconds);
  std::fprintf(f, "  \"rounds\": [\n");
  const auto& rounds = pipelined.execution.rounds;
  for (size_t i = 0; i < rounds.size(); ++i) {
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"start\": %.4f, \"end\": "
                 "%.4f}%s\n",
                 rounds[i].name.c_str(), rounds[i].start_seconds,
                 rounds[i].end_seconds,
                 i + 1 < rounds.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
}

int Main(int argc, char** argv) {
  bench::Title("Round overlap: barriered vs pipelined five-round DAG");
  bench::Note("seeded straggler latency on map+reduce attempts (p=0.6, "
              "300ms); identical work, different schedules");

  Sample sample = MakeSample();
  ModeResult barriered = RunMode(sample, /*pipelined=*/false);
  ModeResult pipelined = RunMode(sample, /*pipelined=*/true);

  const double speedup = barriered.wall_seconds / pipelined.wall_seconds;
  const bool identical =
      !barriered.variant_keys.empty() &&
      barriered.variant_keys == pipelined.variant_keys;

  std::printf("  %-12s %10s %12s %14s\n", "engine", "seconds",
              "serialized", "overlap saved");
  std::printf("  %-12s %10.3f %12.3f %14.3f\n", "barriered",
              barriered.wall_seconds,
              barriered.execution.serialized_round_seconds,
              barriered.execution.overlap_seconds_saved);
  std::printf("  %-12s %10.3f %12.3f %14.3f\n", "pipelined",
              pipelined.wall_seconds,
              pipelined.execution.serialized_round_seconds,
              pipelined.execution.overlap_seconds_saved);
  std::printf("  speedup: %.2fx (critical path %.3fs)\n", speedup,
              pipelined.execution.critical_path_seconds);

  bool ok = true;
  ok &= bench::Check(identical,
                     "pipelined variants byte-identical to barriered");
  ok &= bench::Check(speedup >= 1.2,
                     "round overlap yields >= 1.2x end-to-end speedup");
  ok &= bench::Check(pipelined.execution.overlap_seconds_saved > 0,
                     "pipelined wall beats the serialized round sum");

  const char* out_path = argc > 1 ? argv[1] : "BENCH_pipeline.json";
  if (std::FILE* f = std::fopen(out_path, "w")) {
    PrintJson(f, barriered, pipelined, speedup, identical);
    std::fclose(f);
    bench::Note(std::string("wrote ") + out_path);
  } else {
    bench::Check(false, std::string("failed to open ") + out_path);
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace gesall

int main(int argc, char** argv) { return gesall::Main(argc, argv); }

// Ablation: WHY does partitioned alignment disagree with serial
// alignment? The paper traces it to Bwa's per-batch insert-size
// statistics and random tie-breaking (App. B.2). This harness isolates
// the mechanism: alignment discordance between one serial run and a
// partitioned run, swept over (a) the number of partitions and (b) the
// batch size — discordance should grow with partition count (more batch
// boundaries move) and exist at every batch size.

#include <cstdio>

#include "align/aligner.h"
#include "genome/read_simulator.h"
#include "genome/reference_generator.h"
#include "gesall/diagnosis.h"
#include "report.h"

using namespace gesall;

namespace {

struct Setup {
  ReferenceGenome reference;
  DonorGenome donor;
  std::vector<FastqRecord> interleaved;
  std::unique_ptr<GenomeIndex> index;
};

Setup Build() {
  Setup s;
  ReferenceGeneratorOptions ro;
  ro.num_chromosomes = 2;
  ro.chromosome_length = 100'000;
  s.reference = GenerateReference(ro);
  s.donor = PlantVariants(s.reference, VariantPlanterOptions{});
  ReadSimulatorOptions so;
  so.coverage = 15.0;
  auto sample = SimulateReads(s.donor, so);
  s.interleaved =
      InterleavePairs(sample.mate1, sample.mate2).ValueOrDie();
  s.index = std::make_unique<GenomeIndex>(s.reference);
  return s;
}

int64_t Discordance(const Setup& s, const PairedAlignerOptions& opt,
                    int partitions) {
  PairedEndAligner aligner(*s.index, opt);
  auto serial = aligner.AlignPairs(s.interleaved);

  std::vector<SamRecord> parallel;
  size_t n_pairs = s.interleaved.size() / 2;
  for (int p = 0; p < partitions; ++p) {
    size_t begin = 2 * (n_pairs * p / partitions);
    size_t end = 2 * (n_pairs * (p + 1) / partitions);
    std::vector<FastqRecord> part(s.interleaved.begin() + begin,
                                  s.interleaved.begin() + end);
    auto out = aligner.AlignPairs(part);
    parallel.insert(parallel.end(), out.begin(), out.end());
  }
  auto disc = CompareAlignments(s.reference, serial, parallel);
  return disc.d_count;
}

}  // namespace

int main() {
  auto setup = Build();
  const int64_t total_reads =
      static_cast<int64_t>(setup.interleaved.size());

  bench::Title("Ablation: alignment discordance vs number of partitions");
  PairedAlignerOptions opt;
  opt.batch_size = 1024;
  std::printf("  %12s %12s %14s\n", "Partitions", "D_count", "per 10k reads");
  int64_t d2 = 0, d16 = 0;
  for (int p : {2, 4, 8, 16}) {
    int64_t d = Discordance(setup, opt, p);
    std::printf("  %12d %12lld %14.2f\n", p, static_cast<long long>(d),
                1e4 * d / static_cast<double>(total_reads));
    if (p == 2) d2 = d;
    if (p == 16) d16 = d;
  }

  bench::Title("Ablation: alignment discordance vs batch size (4 partitions)");
  std::printf("  %12s %12s\n", "Batch size", "D_count");
  int64_t any_nonzero = 0;
  for (int b : {256, 1024, 4096}) {
    PairedAlignerOptions o;
    o.batch_size = b;
    int64_t d = Discordance(setup, o, 4);
    std::printf("  %12d %12lld\n", b, static_cast<long long>(d));
    any_nonzero += d > 0;
  }

  bench::Note("");
  bench::Note("Claims (paper App. B.2 mechanism):");
  bool ok = true;
  ok &= bench::Check(d16 >= d2,
                     "finer partitioning does not reduce discordance "
                     "(more batch boundaries move)");
  ok &= bench::Check(d16 > 0, "discordance is present, not an artifact");
  ok &= bench::Check(
      d16 < total_reads / 50,
      "discordance remains a small fraction of all reads");
  ok &= bench::Check(any_nonzero == 3,
                     "every batch size exhibits the effect");
  return ok ? 0 : 1;
}

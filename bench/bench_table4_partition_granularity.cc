// Table 4: run time with varied logical partition sizes (paper §4.2).
//
//   Round 1 (alignment): 15 partitions of 38 GB each (one map wave of
//   15 tasks, 6 threads each) versus 4800 partitions of ~120 MB — large
//   partitions win because each mapper must load the reference index.
//
//   Round 3 (MarkDup_opt on 5 data nodes, 6 tasks/node): 30 partitions
//   versus 510 — here MEDIUM partitions win, because oversized map
//   outputs overflow the 2 GB sort buffer and the concurrent map-side
//   merges fight over the single disk (Fig. 5b).

#include <cstdio>

#include "report.h"
#include "sim/genomics.h"

using namespace gesall;

int main() {
  auto workload = WorkloadSpec::NA12878();
  GenomicsRates rates;

  bench::Title("Table 4 (top): alignment run time vs logical partitions");
  ClusterSpec a = ClusterSpec::A();
  // Paper configuration: 15 data nodes, 1 map task of 6 threads per node.
  double align15 = 0, align4800 = 0;
  std::printf("  %12s %14s %16s\n", "Partitions", "Avg size", "Wall clock");
  for (int p : {15, 4800}) {
    auto job = AlignmentJob(workload, rates, a, p, /*maps_per_node=*/1,
                            /*threads_per_map=*/6);
    auto result = SimulateMrJob(a, job);
    std::printf("  %12d %11.0f MB %16s\n", p,
                workload.compressed_fastq_bytes / p / 1e6,
                bench::Hms(result.wall_seconds).c_str());
    if (p == 15) align15 = result.wall_seconds;
    if (p == 4800) align4800 = result.wall_seconds;
  }

  bench::Title("Table 4 (bottom): MarkDup_opt run time vs logical partitions");
  ClusterSpec a5 = ClusterSpec::A();
  a5.num_data_nodes = 5;
  double md30 = 0, md510 = 0;
  std::printf("  %12s %14s %16s\n", "Partitions", "Avg size", "Wall clock");
  for (int p : {30, 510}) {
    auto job = MarkDuplicatesJob(workload, rates, a5, /*optimized=*/true, p,
                                 /*slots_per_node=*/6);
    auto result = SimulateMrJob(a5, job);
    std::printf("  %12d %11.0f MB %16s\n", p,
                workload.bam_bytes() / p / 1e6,
                bench::Hms(result.wall_seconds).c_str());
    if (p == 30) md30 = result.wall_seconds;
    if (p == 510) md510 = result.wall_seconds;
  }

  bench::Note("");
  bench::Note("Paper shape claims:");
  bool ok = true;
  ok &= bench::Check(align4800 > 1.1 * align15,
                     "alignment: 4800 small partitions slower than 15 "
                     "large ones (per-mapper index loading)");
  ok &= bench::Check(md30 > 1.1 * md510,
                     "MarkDup: 30 oversized partitions slower than 510 "
                     "medium ones (map-side merge contention)");
  return ok ? 0 : 1;
}

// Table 5: scaling Mark Duplicates from the single-node gold standard to
// 15 data nodes (6 concurrent map/reduce tasks per node) for both
// MarkDup_opt and MarkDup_reg. Reports wall clock, speedup over the gold
// standard, and resource efficiency (speedup / cores used), plus the
// slow-start effect at 15 nodes: when little shuffle data remains per
// node, early-started reducers occupy and waste slots waiting for map
// output (paper: fixed by starting the shuffle at 80% map completion,
// efficiency 0.259 -> 0.282).

#include <cstdio>

#include "report.h"
#include "sim/genomics.h"

using namespace gesall;

int main() {
  auto workload = WorkloadSpec::NA12878();
  GenomicsRates rates;

  // Gold standard: single-threaded SortSam + MarkDuplicates on one node.
  double baseline = SingleNodeStepSeconds(
      rates.sort_sam + rates.mark_duplicates, workload.total_reads(),
      ClusterSpec::SingleServer(), /*threads=*/1, 3 * workload.bam_bytes());
  std::printf("  1 node (Gold Standard, serial program): %s\n",
              bench::Hms(baseline).c_str());

  auto run = [&](bool optimized, int nodes, double slowstart) {
    ClusterSpec cluster = ClusterSpec::A();
    cluster.num_data_nodes = nodes;
    auto job = MarkDuplicatesJob(workload, rates, cluster, optimized,
                                 /*partitions=*/510, /*slots_per_node=*/6);
    job.slowstart = slowstart;
    return SimulateMrJob(cluster, job);
  };

  // Reducer slot-seconds spent before the map phase ends = wasted
  // occupancy (the slow-start effect's measurable footprint).
  auto wasted_slot_seconds = [](const MrSimResult& r) {
    double wasted = 0;
    for (const auto& t : r.tasks) {
      if (t.type == SimTask::Type::kReduce && t.start < r.map_phase_end) {
        wasted += std::min(t.end, r.map_phase_end) - t.start;
      }
    }
    return wasted;
  };

  double opt15_eff = 0, reg15_wall = 0, opt15_wall = 0;
  bool monotone = true;
  for (bool optimized : {true, false}) {
    bench::Title(std::string("Table 5: MarkDup_") +
                 (optimized ? "opt" : "reg"));
    std::printf("  %6s %14s %9s %11s\n", "Nodes", "Wall clock", "Speedup",
                "Efficiency");
    double prev_wall = 1e18;
    for (int nodes : {5, 10, 15}) {
      auto result = run(optimized, nodes, 0.05);
      auto m = ComputeSpeedup(baseline, 1, result.wall_seconds, nodes * 6);
      std::printf("  %6d %14s %9.2f %11.3f\n", nodes,
                  bench::Hms(result.wall_seconds).c_str(), m.speedup,
                  m.efficiency);
      monotone &= result.wall_seconds < prev_wall;
      prev_wall = result.wall_seconds;
      if (nodes == 15 && optimized) {
        opt15_eff = m.efficiency;
        opt15_wall = result.wall_seconds;
      }
      if (nodes == 15 && !optimized) reg15_wall = result.wall_seconds;
    }
  }

  bench::Title("Slow-start at 15 nodes (MarkDup_opt)");
  auto early = run(true, 15, 0.05);
  auto late = run(true, 15, 0.80);
  std::printf("  slowstart=0.05: wall %s, wasted reducer slot time %.0f s\n",
              bench::Hms(early.wall_seconds).c_str(),
              wasted_slot_seconds(early));
  std::printf("  slowstart=0.80: wall %s, wasted reducer slot time %.0f s\n",
              bench::Hms(late.wall_seconds).c_str(),
              wasted_slot_seconds(late));

  bench::Note("");
  bench::Note("Paper shape claims (Table 5: wall 3724 s, speedup 23.3, "
              "efficiency ~0.26-0.28 at 15 nodes / 90 tasks):");
  bool ok = true;
  ok &= bench::Check(monotone, "wall clock decreases with more nodes");
  ok &= bench::Check(opt15_eff > 0.1 && opt15_eff < 0.5,
                     "resource efficiency is low but constant-ish (<50%)");
  ok &= bench::Check(
      wasted_slot_seconds(late) < 0.5 * wasted_slot_seconds(early),
      "slow-start 0.80 slashes wasted reducer slot occupancy");
  ok &= bench::Check(late.wall_seconds < 1.15 * early.wall_seconds,
                     "slow-start tuning leaves wall clock intact");
  ok &= bench::Check(reg15_wall > opt15_wall,
                     "MarkDup_reg (785 GB shuffled) slower than MarkDup_opt "
                     "(375 GB)");
  return ok ? 0 : 1;
}

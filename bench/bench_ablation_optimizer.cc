// Ablation / future-work: the pipeline optimizer (paper Appendix C,
// research question 4). Sweeps the user deadline and shows the chosen
// execution plan, its predicted wall time, and the cluster occupancy it
// costs — demonstrating the turnaround-vs-throughput trade-off the paper
// frames for a shared genome-center compute farm (§2.2).

#include <cstdio>

#include "report.h"
#include "sim/optimizer.h"

using namespace gesall;

int main() {
  bench::Title("Optimizer ablation: deadline sweep on Cluster A");
  PipelineOptimizer optimizer(ClusterSpec::A(), WorkloadSpec::NA12878(),
                              GenomicsRates{});

  std::printf("  %10s %14s %16s  %s\n", "Deadline", "Pred. wall",
              "Slot-hours", "Chosen plan");
  double prev_slots = 0;
  bool occupancy_monotone = true;
  double wall_12h = 0, slots_12h = 0, slots_96h = 0, wall_96h = 0;
  for (double deadline_hours : {12.0, 24.0, 48.0, 96.0}) {
    OptimizerObjective objective;
    objective.deadline_seconds = deadline_hours * 3600;
    auto plan = optimizer.Optimize(objective);
    std::printf("  %8.0f h %14s %16.0f  %s\n", deadline_hours,
                bench::Hms(plan.wall_seconds).c_str(),
                plan.slot_seconds / 3600, plan.Describe().c_str());
    if (prev_slots > 0 && plan.slot_seconds > prev_slots + 1e-6) {
      occupancy_monotone = false;
    }
    prev_slots = plan.slot_seconds;
    if (deadline_hours == 12.0) {
      wall_12h = plan.wall_seconds;
      slots_12h = plan.slot_seconds;
    }
    if (deadline_hours == 96.0) {
      wall_96h = plan.wall_seconds;
      slots_96h = plan.slot_seconds;
    }
  }

  bench::Note("");
  bench::Note("Claims:");
  bool ok = true;
  ok &= bench::Check(wall_12h <= 12 * 3600,
                     "the clinic turnaround target is achievable on "
                     "Cluster A (paper §2.2: 1-2 days desired)");
  ok &= bench::Check(occupancy_monotone,
                     "looser deadlines never cost more occupancy");
  ok &= bench::Check(slots_96h <= slots_12h,
                     "relaxing the deadline buys back shared-farm "
                     "capacity (throughput objective)");
  ok &= bench::Check(wall_96h >= wall_12h,
                     "...by accepting longer wall time");
  return ok ? 0 : 1;
}

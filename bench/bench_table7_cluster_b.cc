// Table 7: validation on the NYGC production cluster (Cluster B, 4 nodes
// x 16 cores, 256 GB, 6 disks, 10 Gbps):
//   - alignment as 4x4x4 (4 mappers x 4 threads) vs 4x16x1 (16
//     single-threaded mappers) vs the in-house parallel aligner;
//   - MarkDup_reg with 1/2/3/6 disks and MarkDup_opt with 1/6 disks
//     (the "1 disk per 100 GB shuffled" rule, Appendix B.1);
//   - the in-house single-threaded Mark Duplicates (14h26m).

#include <cstdio>

#include "report.h"
#include "sim/genomics.h"

using namespace gesall;

int main() {
  auto workload = WorkloadSpec::NA12878();
  GenomicsRates rates;

  bench::Title("Table 7 (alignment on Cluster B)");
  std::printf("  %-26s %16s %14s\n", "Configuration", "Wall clock",
              "Avg map time");

  ClusterSpec b = ClusterSpec::B();
  auto j444 = AlignmentJob(workload, rates, b, /*partitions=*/64,
                           /*maps_per_node=*/4, /*threads_per_map=*/4);
  auto r444 = SimulateMrJob(b, j444);
  std::printf("  %-26s %16s %14s\n", "Align:Hadoop 4x4x4",
              bench::Hms(r444.wall_seconds).c_str(),
              bench::Hms(r444.avg_map_seconds).c_str());

  auto j4161 = AlignmentJob(workload, rates, b, /*partitions=*/64,
                            /*maps_per_node=*/16, /*threads_per_map=*/1);
  auto r4161 = SimulateMrJob(b, j4161);
  std::printf("  %-26s %16s %14s\n", "Align:Hadoop 4x16x1",
              bench::Hms(r4161.wall_seconds).c_str(),
              bench::Hms(r4161.avg_map_seconds).c_str());

  // In-house aligner: same process layout, no Hadoop streaming/transform.
  auto jinh = j4161;
  const int64_t reads_per_task = workload.total_reads() / 64;
  jinh.map_cpu_seconds_per_task = reads_per_task * rates.bwa;
  jinh.task_startup_seconds = 0.5;
  auto rinh = SimulateMrJob(b, jinh);
  std::printf("  %-26s %16s %14s\n", "Align:in_house 4x16x1",
              bench::Hms(rinh.wall_seconds).c_str(),
              bench::Hms(rinh.avg_map_seconds).c_str());

  bench::Title("Table 7 (Mark Duplicates on Cluster B)");
  std::printf("  %-26s %14s %10s %17s %14s\n", "Configuration", "Wall clock",
              "Avg map", "Avg shuffle+merge", "Avg reduce");
  struct Row {
    const char* name;
    bool optimized;
    int disks;
    double wall;
  };
  std::vector<Row> rows = {
      {"MarkDup_reg 1 disk", false, 1, 0}, {"MarkDup_reg 2 disks", false, 2, 0},
      {"MarkDup_reg 3 disks", false, 3, 0}, {"MarkDup_reg 6 disks", false, 6, 0},
      {"MarkDup_opt 1 disk", true, 1, 0},  {"MarkDup_opt 6 disks", true, 6, 0},
  };
  for (auto& row : rows) {
    ClusterSpec cb = ClusterSpec::B(row.disks);
    auto job = MarkDuplicatesJob(workload, rates, cb, row.optimized,
                                 /*partitions=*/510, /*slots_per_node=*/16);
    auto result = SimulateMrJob(cb, job);
    row.wall = result.wall_seconds;
    std::printf("  %-26s %14s %10s %17s %14s\n", row.name,
                bench::Hms(result.wall_seconds).c_str(),
                bench::Hms(result.avg_map_seconds).c_str(),
                bench::Hms(result.avg_shuffle_merge_seconds).c_str(),
                bench::Hms(result.avg_reduce_seconds).c_str());
  }
  double inhouse_md = SingleNodeStepSeconds(
      rates.sort_sam + rates.mark_duplicates, workload.total_reads(),
      ClusterSpec::B(6), 1, 3 * workload.bam_bytes());
  std::printf("  %-26s %14s   (paper: 14h 26m)\n", "MarkDup:in_house 1x1x1",
              bench::Hms(inhouse_md).c_str());

  bench::Note("");
  bench::Note("Paper shape claims:");
  bool ok = true;
  ok &= bench::Check(r4161.wall_seconds < r444.wall_seconds,
                     "16 single-threaded mappers beat 4x4-threaded "
                     "(paper: 3h45m vs 4h57m)");
  ok &= bench::Check(
      rinh.wall_seconds <= r4161.wall_seconds &&
          r4161.wall_seconds < 1.25 * rinh.wall_seconds,
      "Hadoop alignment within ~25% of the in-house solution");
  ok &= bench::Check(rows[0].wall > rows[1].wall && rows[1].wall > rows[2].wall &&
                         rows[2].wall > rows[3].wall,
                     "MarkDup_reg improves monotonically with 1->6 disks");
  // Paper: opt runs 1h27m on 1 disk vs 1h22m on 6 — ~100 GB shuffled per
  // disk is sustainable. In the model the footprint is the *relative*
  // penalty of losing disks: far smaller for opt than for reg.
  double opt_penalty = rows[4].wall / rows[5].wall;
  double reg_penalty = rows[0].wall / rows[3].wall;
  ok &= bench::Check(opt_penalty < 0.8 * reg_penalty,
                     "MarkDup_opt tolerates 1 disk far better than "
                     "MarkDup_reg (~100 GB shuffled per disk rule)");
  ok &= bench::Check(rows[0].wall > 1.5 * rows[4].wall,
                     "at 1 disk, reg is far slower than opt");
  ok &= bench::Check(inhouse_md > 8 * rows[4].wall,
                     "parallel MarkDup (<1.5h) vs single-thread (14.5h)");
  return ok ? 0 : 1;
}

// Table 2: the GATK-best-practices pipeline on a single 12-core server
// (12 x Intel Xeon 2.40 GHz, 64 GB, 7200 RPM HDD) for the NA12878 64x
// sample. The paper reports the pipeline takes "about two weeks"; its
// prose anchors individual steps (Clean Sam 7h33m in §4.4, Mark
// Duplicates 14h26m in Table 7).

#include <cstdio>

#include "report.h"
#include "sim/genomics.h"

using namespace gesall;

int main() {
  bench::Title("Table 2: single-server pipeline (simulated)");
  auto workload = WorkloadSpec::NA12878();
  GenomicsRates rates;
  auto server = ClusterSpec::SingleServer();
  auto steps = SingleServerPipeline(workload, rates, server);

  std::printf("  %-28s %10s\n", "Step", "Time (hrs)");
  double total = 0, clean_sam = 0, markdup = 0;
  for (const auto& s : steps) {
    std::printf("  %-28s %10.1f\n", s.name.c_str(), s.hours);
    total += s.hours;
    if (s.name == "4. Clean Sam") clean_sam = s.hours;
    if (s.name == "6. Mark Duplicates") markdup = s.hours;
  }
  std::printf("  %-28s %10.1f  (%.1f days)\n", "TOTAL", total, total / 24);

  bench::Note("");
  bench::Note("Paper anchors:");
  bench::Check(total / 24 > 7 && total / 24 < 21,
               "pipeline takes 'about two weeks' (7-21 days simulated)");
  bench::Check(clean_sam > 5.5 && clean_sam < 9.5,
               "Clean Sam ~7.5 h single node (paper 7h33m)");
  bench::Check(markdup > 11 && markdup < 18,
               "Mark Duplicates ~14.5 h single node (paper 14h26m)");
  return 0;
}

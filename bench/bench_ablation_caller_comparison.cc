// Ablation: Unified Genotyper (Table 2 v1) versus Haplotype Caller
// (Table 2 v2) on the same sample — call-set agreement, truth-set scores,
// and the degrees of parallelism each permits (UG partitions per site,
// HC's greedy sequential segmentation constrains partitioning, §3.2-3).

#include <cstdio>

#include "align/aligner.h"
#include "analysis/genotyper.h"
#include "analysis/haplotype_caller.h"
#include "analysis/steps.h"
#include "gesall/diagnosis.h"
#include "genome/read_simulator.h"
#include "genome/reference_generator.h"
#include "report.h"

using namespace gesall;

int main() {
  ReferenceGeneratorOptions ro;
  ro.num_chromosomes = 2;
  ro.chromosome_length = 120'000;
  auto reference = GenerateReference(ro);
  auto donor = PlantVariants(reference, VariantPlanterOptions{});
  ReadSimulatorOptions so;
  so.coverage = 25.0;
  auto sample = SimulateReads(donor, so);
  GenomeIndex index(reference);
  PairedEndAligner aligner(index);
  auto interleaved =
      InterleavePairs(sample.mate1, sample.mate2).ValueOrDie();
  auto records = aligner.AlignPairs(interleaved);
  SamHeader header = aligner.MakeHeader();
  CleanSam(header, &records);
  SortSamByCoordinate(&header, &records);

  UnifiedGenotyper ug(reference);
  auto ug_calls = ug.CallAll(records);
  HaplotypeCaller hc(reference);
  auto hc_calls = hc.CallAll(records);

  auto ug_score = EvaluateAgainstTruth(ug_calls, donor.truth);
  auto hc_score = EvaluateAgainstTruth(hc_calls, donor.truth);
  auto agreement = CompareVariants(ug_calls, hc_calls);

  bench::Title("Ablation: Unified Genotyper vs Haplotype Caller");
  std::printf("  %-18s %8s %10s %12s\n", "Caller", "calls", "precision",
              "sensitivity");
  std::printf("  %-18s %8zu %10.3f %12.3f\n", "UnifiedGenotyper",
              ug_calls.size(), ug_score.precision, ug_score.sensitivity);
  std::printf("  %-18s %8zu %10.3f %12.3f\n", "HaplotypeCaller",
              hc_calls.size(), hc_score.precision, hc_score.sensitivity);
  std::printf("  agreement: %zu shared, %zu UG-only, %zu HC-only\n",
              agreement.concordant.size(), agreement.only_first.size(),
              agreement.only_second.size());

  bench::Note("");
  bench::Note("Claims:");
  bool ok = true;
  ok &= bench::Check(ug_score.precision > 0.85 && hc_score.precision > 0.85,
                     "both callers are precise on clean synthetic data");
  ok &= bench::Check(
      agreement.concordant.size() >
          5 * (agreement.only_first.size() + agreement.only_second.size()),
      "the callers agree on the vast majority of sites");
  // HC's active windows suppress isolated low-evidence sites that UG's
  // per-site walk emits.
  ok &= bench::Check(hc_calls.size() <= ug_calls.size(),
                     "HC (active windows) calls no more sites than UG");
  return ok ? 0 : 1;
}

// Durability/recovery benchmark: what does crash safety cost, and what
// does a restart cost? Three phases:
//
//  1. journal   — JournaledStore replay time vs mutation count
//                 (1k/10k/50k records), full-journal vs
//                 snapshot-compacted. Gated: compaction bounds replayed
//                 records by the snapshot interval and both paths
//                 recover identical state.
//  2. dfs       — a durable DFS holding a few hundred files is killed
//                 (SimulateCrash) and rebuilt from fsimage + editlog.
//                 Gated: every file byte-identical after recovery.
//  3. service   — the paper pipeline through gesalld, killed after
//                 rounds 1-2 sealed their DFS manifests, then rebuilt.
//                 Gated: resumed output byte-identical to a crash-free
//                 run, sealed rounds skipped (alignment kernel never
//                 re-runs), and the resumed leg cheaper than a cold run.
//
// Writes BENCH_recovery.json; exits non-zero if any gate fails.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "report.h"
#include "genome/read_simulator.h"
#include "genome/reference_generator.h"
#include "service/service.h"
#include "util/rng.h"
#include "util/stopwatch.h"
#include "util/wal.h"

namespace gesall {
namespace {

namespace stdfs = std::filesystem;

constexpr uint64_t kSeed = 7103;

std::string TempRoot(const std::string& leaf) {
  return (stdfs::temp_directory_path() / ("gesall_bench_recovery_" + leaf))
      .string();
}

// ---------------------------------------------------------------------
// Phase 1: journal replay scaling.

struct ReplayPoint {
  int64_t records_appended = 0;
  double append_seconds = 0;
  double replay_seconds = 0;
  int64_t records_replayed = 0;
  int64_t snapshots = 0;
  uint64_t state = 0;  // recovered accumulator, for cross-checking
};

// Accumulator state machine: each record adds its decimal payload into
// a running sum; the snapshot is the sum itself. Deliberately trivial so
// the measurement isolates framing + fsync + replay I/O.
ReplayPoint RunJournalPoint(int64_t num_records, int snapshot_every) {
  ReplayPoint point;
  const std::string dir =
      TempRoot("journal_" + std::to_string(num_records) + "_" +
               std::to_string(snapshot_every));
  stdfs::remove_all(dir);

  DurabilityOptions options;
  options.root_dir = dir;
  options.snapshot_every_records = snapshot_every;
  options.fsync_every_records = 64;  // batched: measuring replay, not fsync

  uint64_t sum = 0;
  auto load = [&sum](std::string_view payload) {
    sum = std::stoull(std::string(payload));
    return Status::OK();
  };
  auto apply = [&sum](std::string_view payload) {
    sum += std::stoull(std::string(payload));
    return Status::OK();
  };

  {
    JournaledStore store(dir, options);
    if (!store.Recover(load, apply).ok()) return point;
    Stopwatch timer;
    Rng rng(kSeed + static_cast<uint64_t>(num_records));
    for (int64_t i = 0; i < num_records; ++i) {
      const uint64_t value = rng.Next() % 1000;
      sum += value;
      if (!store.Append(std::to_string(value)).ok()) return point;
      if (store.ShouldCheckpoint()) {
        if (!store.Checkpoint(std::to_string(sum)).ok()) return point;
      }
    }
    if (!store.Sync().ok()) return point;
    point.append_seconds = timer.ElapsedSeconds();
    point.records_appended = num_records;
    point.snapshots = store.snapshots_written();
  }

  const uint64_t written_sum = sum;
  sum = 0;
  JournaledStore store(dir, options);
  Stopwatch timer;
  if (!store.Recover(load, apply).ok()) return point;
  point.replay_seconds = timer.ElapsedSeconds();
  point.records_replayed = store.replay_stats().records;
  point.state = sum;
  if (sum != written_sum) point.records_appended = 0;  // poison the gate
  stdfs::remove_all(dir);
  return point;
}

// ---------------------------------------------------------------------
// Phase 2: DFS kill-and-restart.

struct DfsPoint {
  int files = 0;
  int64_t bytes = 0;
  double write_seconds = 0;
  double recover_seconds = 0;
  int64_t journal_replayed = 0;
  bool identical = false;
};

DfsPoint RunDfsPoint(int num_files, int file_bytes) {
  DfsPoint point;
  const std::string dir = TempRoot("dfs");
  stdfs::remove_all(dir);

  DfsOptions options;
  options.block_size = 64 * 1024;
  options.replication = 2;
  options.num_data_nodes = 4;
  options.durability.root_dir = dir;
  Dfs dfs(options);

  Rng rng(kSeed);
  std::vector<std::string> paths;
  std::vector<std::string> payloads;
  Stopwatch timer;
  for (int i = 0; i < num_files; ++i) {
    std::string data(static_cast<size_t>(file_bytes), '\0');
    for (char& c : data) c = static_cast<char>('A' + rng.Next() % 26);
    std::string path = "/bench/file-" + std::to_string(i);
    if (!dfs.Write(path, data).ok()) return point;
    paths.push_back(std::move(path));
    payloads.push_back(std::move(data));
    point.bytes += file_bytes;
  }
  point.write_seconds = timer.ElapsedSeconds();
  point.files = num_files;

  if (!dfs.SimulateCrash().ok()) return point;
  timer.Restart();
  // SimulateCrash already rebuilt from disk; measure a second cold
  // rebuild so the number covers exactly the recovery path.
  if (!dfs.SimulateCrash().ok()) return point;
  point.recover_seconds = timer.ElapsedSeconds();
  point.journal_replayed = dfs.recovery_stats().journal_records_replayed;

  point.identical = true;
  for (int i = 0; i < num_files; ++i) {
    auto read = dfs.Read(paths[static_cast<size_t>(i)]);
    if (!read.ok() ||
        read.ValueOrDie() != payloads[static_cast<size_t>(i)]) {
      point.identical = false;
      break;
    }
  }
  stdfs::remove_all(dir);
  return point;
}

// ---------------------------------------------------------------------
// Phase 3: service kill-and-restart at round granularity.

std::vector<std::string> VariantKeys(const std::vector<VariantRecord>& vs) {
  std::vector<std::string> keys;
  keys.reserve(vs.size());
  for (const auto& v : vs) {
    std::ostringstream os;
    os << v.Key() << "@" << v.qual;
    keys.push_back(os.str());
  }
  return keys;
}

struct ServicePoint {
  double cold_seconds = 0;     // crash-free run through the service
  double resume_seconds = 0;   // restart-to-completion after the kill
  int64_t rounds_skipped = 0;
  int64_t align_calls_on_resume = 0;
  int64_t jobs_recovered = 0;
  bool identical = false;
  bool ok = false;
};

ServicePoint RunServicePoint(const ReferenceGenome& ref,
                             const GenomeIndex& index,
                             const SimulatedSample& sample,
                             const std::vector<std::string>& baseline_keys) {
  ServicePoint point;
  const std::string root = TempRoot("service");
  stdfs::remove_all(root);

  DfsOptions dopt;
  dopt.block_size = 64 * 1024;
  dopt.replication = 2;
  dopt.num_data_nodes = 4;
  dopt.durability.root_dir = root + "/dfs";
  Dfs dfs(dopt);

  auto make_job = [&sample] {
    JobSpec spec;
    spec.tenant = "bench";
    spec.mate1 = sample.mate1;
    spec.mate2 = sample.mate2;
    spec.pipeline.alignment_partitions = 2;
    spec.pipeline.max_parallel_tasks = 2;
    return spec;
  };

  // Cold leg: an identical durable service runs the job crash-free.
  {
    ServiceConfig config;
    config.max_running_jobs = 1;
    config.durability.root_dir = root + "/cold";
    GesallService service(ref, index, &dfs, config);
    if (!service.recovery_status().ok()) return point;
    auto id = service.Submit(make_job());
    if (!id.ok()) return point;
    Stopwatch timer;
    auto out = service.Wait(id.ValueOrDie());
    if (!out.ok() || !out.ValueOrDie().status.ok()) return point;
    point.cold_seconds = timer.ElapsedSeconds();
    if (VariantKeys(out.ValueOrDie().variants) != baseline_keys) return point;
  }

  // Crash leg: hold the pipeline between rounds 2 and 3, kill, rebuild.
  std::mutex hook_mu;
  std::condition_variable hook_cv;
  bool reached_round2 = false;
  bool crash_landed = false;

  ServiceConfig config;
  config.max_running_jobs = 1;
  config.durability.root_dir = root + "/svc";
  config.round_complete_hook = [&](JobId, int round_index,
                                   const std::string&) {
    if (round_index != kRoundCleaning) return;
    std::unique_lock<std::mutex> lock(hook_mu);
    reached_round2 = true;
    hook_cv.notify_all();
    hook_cv.wait(lock, [&] { return crash_landed; });
  };

  JobId job = 0;
  {
    GesallService service(ref, index, &dfs, config);
    if (!service.recovery_status().ok()) return point;
    auto id = service.Submit(make_job());
    if (!id.ok()) return point;
    job = id.ValueOrDie();
    {
      std::unique_lock<std::mutex> lock(hook_mu);
      hook_cv.wait(lock, [&] { return reached_round2; });
    }
    std::thread crasher([&] { (void)service.SimulateCrash(); });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    {
      std::lock_guard<std::mutex> lock(hook_mu);
      crash_landed = true;
    }
    hook_cv.notify_all();
    crasher.join();
  }

  if (!dfs.SimulateCrash().ok()) return point;
  ServiceConfig fresh;
  fresh.max_running_jobs = 1;
  fresh.durability.root_dir = root + "/svc";
  Stopwatch timer;
  GesallService service(ref, index, &dfs, fresh);
  if (!service.recovery_status().ok()) return point;
  point.jobs_recovered = service.recovery_stats().jobs_recovered;
  auto out = service.Wait(job);
  point.resume_seconds = timer.ElapsedSeconds();
  if (!out.ok() || !out.ValueOrDie().status.ok()) return point;
  const JobOutput& resumed = out.ValueOrDie();
  point.rounds_skipped = resumed.counters.Get("round_skipped_on_resume");
  point.align_calls_on_resume = resumed.counters.Get("align_kernel_calls");
  point.identical = VariantKeys(resumed.variants) == baseline_keys;
  point.ok = true;
  stdfs::remove_all(root);
  return point;
}

// ---------------------------------------------------------------------

void PrintJson(std::FILE* f, const std::vector<ReplayPoint>& full,
               const std::vector<ReplayPoint>& compacted,
               const DfsPoint& dfs, const ServicePoint& svc) {
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"recovery\",\n");
  std::fprintf(f, "  \"journal\": [\n");
  auto row = [f](const ReplayPoint& p, const char* mode, bool last) {
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"records\": %lld, "
                 "\"append_seconds\": %.4f, \"replay_seconds\": %.4f, "
                 "\"records_replayed\": %lld, \"snapshots\": %lld}%s\n",
                 mode, static_cast<long long>(p.records_appended),
                 p.append_seconds, p.replay_seconds,
                 static_cast<long long>(p.records_replayed),
                 static_cast<long long>(p.snapshots), last ? "" : ",");
  };
  for (size_t i = 0; i < full.size(); ++i) row(full[i], "full", false);
  for (size_t i = 0; i < compacted.size(); ++i)
    row(compacted[i], "compacted", i + 1 == compacted.size());
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"dfs\": {\"files\": %d, \"bytes\": %lld, "
               "\"write_seconds\": %.4f, \"recover_seconds\": %.4f, "
               "\"journal_replayed\": %lld, \"identical\": %s},\n",
               dfs.files, static_cast<long long>(dfs.bytes),
               dfs.write_seconds, dfs.recover_seconds,
               static_cast<long long>(dfs.journal_replayed),
               dfs.identical ? "true" : "false");
  std::fprintf(f,
               "  \"service\": {\"cold_seconds\": %.4f, "
               "\"resume_seconds\": %.4f, \"rounds_skipped\": %lld, "
               "\"align_calls_on_resume\": %lld, \"jobs_recovered\": %lld, "
               "\"identical\": %s}\n",
               svc.cold_seconds, svc.resume_seconds,
               static_cast<long long>(svc.rounds_skipped),
               static_cast<long long>(svc.align_calls_on_resume),
               static_cast<long long>(svc.jobs_recovered),
               svc.identical ? "true" : "false");
  std::fprintf(f, "}\n");
}

int Main(int argc, char** argv) {
  bench::Title("recovery: journal replay, DFS rebuild, round-level resume");

  // Phase 1 ------------------------------------------------------------
  bench::Note("phase 1: journal replay scaling (full vs compacted)");
  const int64_t kCounts[] = {1'000, 10'000, 50'000};
  std::vector<ReplayPoint> full;
  std::vector<ReplayPoint> compacted;
  for (int64_t n : kCounts) {
    full.push_back(RunJournalPoint(n, /*snapshot_every=*/0));
    compacted.push_back(RunJournalPoint(n, /*snapshot_every=*/1024));
    std::printf("  %6lld records: full replay %.1f ms (%lld recs), "
                "compacted %.1f ms (%lld recs, %lld snapshots)\n",
                static_cast<long long>(n), full.back().replay_seconds * 1e3,
                static_cast<long long>(full.back().records_replayed),
                compacted.back().replay_seconds * 1e3,
                static_cast<long long>(compacted.back().records_replayed),
                static_cast<long long>(compacted.back().snapshots));
  }

  // Phase 2 ------------------------------------------------------------
  bench::Note("phase 2: DFS kill-and-restart (400 files x 8 KiB)");
  const DfsPoint dfs = RunDfsPoint(/*num_files=*/400, /*file_bytes=*/8192);
  std::printf("  wrote %d files (%.1f MiB) in %.1f ms, recovered in "
              "%.1f ms (%lld journal records)\n",
              dfs.files, static_cast<double>(dfs.bytes) / (1 << 20),
              dfs.write_seconds * 1e3, dfs.recover_seconds * 1e3,
              static_cast<long long>(dfs.journal_replayed));

  // Phase 3 ------------------------------------------------------------
  bench::Note("phase 3: service kill after round 2, resume from manifests");
  ReferenceGeneratorOptions ro;
  ro.num_chromosomes = 1;
  ro.chromosome_length = 20'000;
  ReferenceGenome ref = GenerateReference(ro);
  DonorGenome donor = PlantVariants(ref, VariantPlanterOptions{});
  ReadSimulatorOptions so;
  so.coverage = 5.0;
  SimulatedSample sample = SimulateReads(donor, so);
  GenomeIndex index(ref);

  std::vector<std::string> baseline_keys;
  {
    Dfs mem(DfsOptions{});
    PipelineConfig config;
    config.alignment_partitions = 2;
    config.max_parallel_tasks = 2;
    GesallPipeline baseline(ref, index, &mem, config);
    if (!baseline.LoadSample(sample.mate1, sample.mate2).ok()) return 1;
    auto variants = baseline.RunAll();
    if (!variants.ok()) return 1;
    baseline_keys = VariantKeys(variants.ValueOrDie());
  }
  const ServicePoint svc = RunServicePoint(ref, index, sample, baseline_keys);
  std::printf("  cold run %s, resumed leg %s (skipped %lld rounds, "
              "%lld jobs recovered)\n",
              bench::Hms(svc.cold_seconds).c_str(),
              bench::Hms(svc.resume_seconds).c_str(),
              static_cast<long long>(svc.rounds_skipped),
              static_cast<long long>(svc.jobs_recovered));

  // Gates --------------------------------------------------------------
  bool ok = true;
  bool journal_ok = true;
  for (size_t i = 0; i < full.size(); ++i) {
    journal_ok &= full[i].records_appended == kCounts[i] &&
                  full[i].records_replayed == kCounts[i];
    journal_ok &= compacted[i].records_appended == kCounts[i] &&
                  compacted[i].records_replayed <= 1024 &&
                  (kCounts[i] < 1024 || compacted[i].snapshots > 0);
    journal_ok &= full[i].state == compacted[i].state;
  }
  ok &= bench::Check(journal_ok,
                     "snapshot compaction bounds replay to <= one snapshot "
                     "interval with identical recovered state");
  ok &= bench::Check(
      full.back().replay_seconds < full.back().append_seconds * 4 + 1.0,
      "replay of 50k records stays within 4x append cost (+1s slack)");
  ok &= bench::Check(dfs.identical && dfs.files == 400,
                     "all 400 DFS files byte-identical after kill-restart");
  ok &= bench::Check(svc.ok && svc.identical,
                     "resumed job output byte-identical to crash-free run");
  ok &= bench::Check(svc.rounds_skipped >= 2 &&
                         svc.align_calls_on_resume == 0,
                     "sealed rounds skipped on resume (alignment kernel "
                     "never re-ran)");
  ok &= bench::Check(svc.jobs_recovered == 1,
                     "job log recovered exactly the mid-flight job");
  ok &= bench::Check(svc.resume_seconds < svc.cold_seconds + 0.5,
                     "resumed leg no slower than a cold run (+0.5s slack)");

  const char* out_path = argc > 1 ? argv[1] : "BENCH_recovery.json";
  if (std::FILE* f = std::fopen(out_path, "w")) {
    PrintJson(f, full, compacted, dfs, svc);
    std::fclose(f);
    bench::Note(std::string("wrote ") + out_path);
  } else {
    bench::Check(false, std::string("failed to open ") + out_path);
    ok = false;
  }
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace gesall

int main(int argc, char** argv) { return gesall::Main(argc, argv); }

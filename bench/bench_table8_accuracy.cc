// Table 8: discordant counts (D_count) and discordant impact (D_impact)
// of the parallel pipeline fragments — measured functionally, not
// simulated: the serial pipeline and the Gesall parallel pipeline really
// run on the same synthetic sample, and hybrid pipelines (parallel
// prefix + serial tail) quantify the impact on final variant calls.
//
//   P1: parallel up to Bwa          -> D_count over alignments
//   P2: parallel up to MarkDup      -> D_count over duplicate flags
//   P3: full parallel incl. HC      -> D_count over variants
//   D_impact(Pi): variants of (parallel prefix + serial tail) vs serial.

#include <cstdio>

#include "functional_fixture.h"
#include "report.h"

using namespace gesall;
using bench::FunctionalFixture;

int main() {
  auto f = bench::BuildFixture();
  const double total_reads = static_cast<double>(f.interleaved.size());

  // --- D_count rows ------------------------------------------------------
  auto bwa_disc =
      CompareAlignments(f.reference, f.serial.aligned, f.parallel_aligned);
  auto dup_disc = CompareDuplicates(f.serial.deduped, f.parallel_deduped);
  auto hc_disc = CompareVariants(f.serial.variants, f.parallel_variants);

  // --- D_impact rows (hybrid pipelines) ----------------------------------
  auto impact1 = SerialTailFromAligned(f.reference, f.serial.header,
                                       f.parallel_aligned)
                     .ValueOrDie();
  auto impact1_disc = CompareVariants(f.serial.variants, impact1);
  auto impact2 = SerialTailFromDeduped(f.reference, f.serial.header,
                                       f.parallel_deduped)
                     .ValueOrDie();
  auto impact2_disc = CompareVariants(f.serial.variants, impact2);

  bench::Title("Table 8: D_count / D_impact of parallel pipeline fragments");
  std::printf("  sample: %.0f reads, %zu serial variants\n", total_reads,
              f.serial.variants.size());
  std::printf("  %-18s %9s %12s %14s %10s %12s\n", "Step", "D_count",
              "weighted", "weighted(%)", "D_impact", "w.impact");
  std::printf("  %-18s %9lld %12.1f %14.4f %10lld %12.1f\n", "Bwa",
              static_cast<long long>(bwa_disc.d_count),
              bwa_disc.weighted_d_count, bwa_disc.weighted_d_count_pct,
              static_cast<long long>(impact1_disc.d_count()),
              impact1_disc.weighted_d_count);
  std::printf("  %-18s %9lld %12.1f %14s %10lld %12.1f\n", "Mark Duplicates",
              static_cast<long long>(dup_disc.d_count),
              dup_disc.weighted_d_count, "-",
              static_cast<long long>(impact2_disc.d_count()),
              impact2_disc.weighted_d_count);
  std::printf("  %-18s %9lld %12.1f %14.4f %10s %12s\n", "Haplotype Caller",
              static_cast<long long>(hc_disc.d_count()),
              hc_disc.weighted_d_count, hc_disc.weighted_d_count_pct, "-",
              "-");
  std::printf("  duplicate-count delta |serial - parallel|: %lld "
              "(paper: 259)\n",
              static_cast<long long>(dup_disc.duplicate_count_delta()));

  bench::Note("");
  bench::Note("Paper shape claims:");
  bool ok = true;
  ok &= bench::Check(bwa_disc.d_count > 0,
                     "parallel Bwa is NOT identical to serial Bwa "
                     "(batch statistics + random tie-breaks)");
  ok &= bench::Check(bwa_disc.d_count / total_reads < 0.01,
                     "alignment discordance is a small fraction "
                     "(paper: 71,185 of 2.5 B reads)");
  ok &= bench::Check(bwa_disc.weighted_d_count < bwa_disc.d_count * 0.8,
                     "quality weighting shrinks D_count (discordant "
                     "reads have low MAPQ)");
  double hc_frac =
      hc_disc.d_count() /
      (static_cast<double>(hc_disc.concordant.size()) + 1);
  ok &= bench::Check(hc_frac < 0.02,
                     "final variant impact is tiny (paper: ~0.1%)");
  ok &= bench::Check(
      impact2_disc.d_count() <= hc_disc.d_count() + 5,
      "D_impact(MarkDup) <= D_count(parallel HC) (paper: 8489 vs 8710)");
  return ok ? 0 : 1;
}

// Fig. 11 (Appendix B.2): error diagnosis of parallel-vs-serial Bwa —
//   (a) disagreeing pairs cluster around hard-to-map regions
//       (centromeres, blacklisted low-complexity stretches);
//   (b) joint MAPQ distribution of disagreeing reads (mass at low MAPQ);
//   (c) disagreeing pairs versus insert size (mass at the distribution
//       edges, where the batch-estimated proper-pair window flips).

#include <cstdio>

#include "functional_fixture.h"
#include "report.h"

using namespace gesall;

int main() {
  auto f = bench::BuildFixture();
  auto disc =
      CompareAlignments(f.reference, f.serial.aligned, f.parallel_aligned);

  bench::Title("Fig 11(a): discordant reads by genomic region class");
  std::printf("  %-22s %10s\n", "Region", "Discordant");
  std::printf("  %-22s %10lld\n", "centromere",
              static_cast<long long>(disc.discordant_centromere));
  std::printf("  %-22s %10lld\n", "blacklist",
              static_cast<long long>(disc.discordant_blacklist));
  std::printf("  %-22s %10lld\n", "elsewhere",
              static_cast<long long>(disc.discordant_elsewhere));
  std::printf("  after MAPQ>30 + region filters: %lld of %lld reads "
              "(paper: 0.025%% of pairs)\n",
              static_cast<long long>(disc.discordant_after_filters),
              static_cast<long long>(disc.total_reads));

  bench::Title("Fig 11(b): MAPQ distribution of disagreeing reads");
  std::printf("  serial-mapq-bucket x parallel-mapq-bucket (x10):\n");
  long long low_low = 0, high_high = 0;
  for (const auto& [buckets, count] : disc.mapq_buckets) {
    std::printf("    serial %2d0-%2d9  parallel %2d0-%2d9 : %lld\n",
                buckets.first, buckets.first, buckets.second, buckets.second,
                static_cast<long long>(count));
    if (buckets.first <= 3 && buckets.second <= 3) low_low += count;
    if (buckets.first >= 5 && buckets.second >= 5) high_high += count;
  }

  bench::Title("Fig 11(c): disagreeing pairs by insert size");
  double sum = 0, n = 0;
  for (const auto& [bucket, count] : disc.insert_size_buckets) {
    sum += static_cast<double>(bucket) * count;
    n += static_cast<double>(count);
  }
  double mean_disagree_insert = n > 0 ? sum / n : 0;
  for (const auto& [bucket, count] : disc.insert_size_buckets) {
    std::string bar(std::min<long long>(50, count), '#');
    std::printf("    %5lld-%-5lld %s\n", static_cast<long long>(bucket),
                static_cast<long long>(bucket + 9), bar.c_str());
  }
  std::printf("  mean insert size of disagreeing pairs: %.0f "
              "(simulated library: mean 400, sd 40)\n",
              mean_disagree_insert);

  bench::Note("");
  bench::Note("Paper shape claims:");
  bool ok = true;
  double sensitive = static_cast<double>(disc.discordant_centromere +
                                         disc.discordant_blacklist);
  double genome_sensitive_fraction = 0.05;  // centromere+blacklist share
  ok &= bench::Check(
      disc.d_count > 0 && sensitive / disc.d_count >
                              3 * genome_sensitive_fraction,
      "disagreements are strongly enriched in hard-to-map regions");
  ok &= bench::Check(low_low > high_high,
                     "most disagreeing reads have low MAPQ on both sides");
  ok &= bench::Check(disc.discordant_after_filters <
                         disc.d_count / 2 + 1,
                     "standard filters remove most of the disagreement");
  ok &= bench::Check(
      n == 0 || std::abs(mean_disagree_insert - 400.0) > 10.0,
      "disagreeing pairs sit off-center of the insert distribution");
  return ok ? 0 : 1;
}

// Fig. 7: task progress of MarkDup_opt with 1 disk per node on Cluster B
// — the reduce tasks' shuffle+merge and reduce phases rendered per node
// as an ASCII Gantt chart, showing the even reducer progress the paper
// observes.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "report.h"
#include "sim/genomics.h"

using namespace gesall;

int main() {
  bench::Title("Fig 7: task progress of MarkDup_opt (Cluster B, 1 disk)");
  auto workload = WorkloadSpec::NA12878();
  GenomicsRates rates;
  ClusterSpec b = ClusterSpec::B(1);
  auto job = MarkDuplicatesJob(workload, rates, b, /*optimized=*/true,
                               /*partitions=*/510, /*slots_per_node=*/16);
  auto result = SimulateMrJob(b, job);

  const double wall = result.wall_seconds;
  const int width = 72;
  auto column = [&](double t) {
    return std::min(width - 1, static_cast<int>(t / wall * width));
  };

  // One line per reduce task: '.' waiting/shuffling+merging, '#' reducing.
  std::printf("  time axis: 0 .. %s; '.'=shuffle+merge '#'=reduce\n",
              bench::Hms(wall).c_str());
  std::vector<const SimTask*> reduces;
  for (const auto& t : result.tasks) {
    if (t.type == SimTask::Type::kReduce) reduces.push_back(&t);
  }
  std::sort(reduces.begin(), reduces.end(),
            [](const SimTask* x, const SimTask* y) {
              if (x->node != y->node) return x->node < y->node;
              return x->index < y->index;
            });
  double min_sm = 1e18, max_sm = 0;
  for (const SimTask* t : reduces) {
    std::string line(width, ' ');
    for (int c = column(t->start); c <= column(t->shuffle_merge_end); ++c) {
      line[c] = '.';
    }
    for (int c = column(t->shuffle_merge_end); c <= column(t->end); ++c) {
      line[c] = '#';
    }
    std::printf("  node%-2d r%-3d |%s|\n", t->node, t->index, line.c_str());
    min_sm = std::min(min_sm, t->shuffle_merge_end);
    max_sm = std::max(max_sm, t->shuffle_merge_end);
  }

  bench::Note("");
  bool ok = bench::Check(
      (max_sm - min_sm) / wall < 0.30,
      "reducer progress is even (no stragglers) with 1 disk, as in Fig 7");
  ok &= bench::Check(!reduces.empty(), "reduce tasks present");
  return ok ? 0 : 1;
}

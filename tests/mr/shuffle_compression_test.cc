// Compressed shuffle spills (JobConfig::compress_shuffle): BGZF-framed
// spill runs, lazy-decompress merge cursors, per-chunk CRC32C over the
// compressed frames, and the differential contract — the merged reduce
// input (and thus every job output) is byte-identical with compression
// on or off.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "mr/mapreduce.h"
#include "mr/shuffle_buffer.h"
#include "util/rng.h"

namespace gesall {
namespace {

// Genome-like highly-compressible values: runs of bases + a qual tail.
std::string BaseValue(Rng& rng, size_t len) {
  static const char bases[] = "ACGT";
  std::string v;
  v.reserve(len);
  for (size_t i = 0; i < len; ++i) v.push_back(bases[rng.Uniform(4)]);
  return v;
}

// Drains a merger into "key=value\n" lines — the byte-identity probe.
std::string DrainMerger(ShuffleRunMerger& merger) {
  std::string out;
  for (const ShuffleEntry* e = merger.Next(); e != nullptr;
       e = merger.Next()) {
    out.append(e->key);
    out.push_back('=');
    out.append(e->value);
    out.push_back('\n');
  }
  return out;
}

std::string DrainCompressed(const ShuffleBuffer& buffer, int p) {
  std::vector<std::unique_ptr<CompressedShuffleRunReader>> owned;
  std::vector<ShuffleRunReader*> readers;
  for (const auto& crun : buffer.compressed_runs(p)) {
    owned.push_back(std::make_unique<CompressedShuffleRunReader>(crun.bytes));
    readers.push_back(owned.back().get());
  }
  ShuffleRunMerger merger(readers);
  std::string out = DrainMerger(merger);
  for (const auto& r : owned) {
    EXPECT_TRUE(r->status().ok()) << r->status().ToString();
  }
  return out;
}

std::string DrainUncompressed(const ShuffleBuffer& buffer, int p) {
  std::vector<const ShuffleRun*> runs;
  for (const auto& run : buffer.runs(p)) runs.push_back(&run);
  ShuffleRunMerger merger(runs);
  return DrainMerger(merger);
}

TEST(ShuffleCompressionTest, CompressedSpillRoundTrip) {
  Rng rng(1);
  ShuffleBuffer buffer(/*num_partitions=*/1, /*sort_buffer_bytes=*/1 << 20,
                       /*combiner=*/nullptr, /*checksum=*/true,
                       /*compress=*/true);
  std::map<std::string, std::string> expected;
  for (int i = 0; i < 500; ++i) {
    std::string key = "read-" + std::to_string(rng.Uniform(10000));
    std::string value = BaseValue(rng, 100);
    if (expected.emplace(key, value).second) {
      ASSERT_TRUE(buffer.Add(0, key, value).ok());
    }
  }
  ASSERT_TRUE(buffer.Finish().ok());
  ASSERT_TRUE(buffer.compressed());
  EXPECT_TRUE(buffer.runs(0).empty());  // arena released, crun owns bytes
  ASSERT_EQ(buffer.compressed_runs(0).size(), 1u);

  std::string want;
  for (const auto& [k, v] : expected) want += k + "=" + v + "\n";
  EXPECT_EQ(DrainCompressed(buffer, 0), want);

  const ShuffleStats& s = buffer.stats();
  EXPECT_GT(s.spill_bytes_raw, 0);
  EXPECT_GT(s.spill_bytes_compressed, 0);
  EXPECT_LT(s.spill_bytes_compressed, s.spill_bytes_raw);
  EXPECT_GT(s.checksummed_bytes, 0);
  EXPECT_TRUE(buffer.VerifyPartition(0).ok());
}

TEST(ShuffleCompressionTest, DifferentialMergeByteIdentical) {
  // Multi-spill, multi-partition, duplicate keys: the compressed path
  // must reproduce the uncompressed merge byte for byte.
  for (int64_t sort_buffer : {int64_t{1} << 20, int64_t{512}}) {
    Rng rng(42);
    ShuffleBuffer plain(/*num_partitions=*/3, sort_buffer,
                        /*combiner=*/nullptr, /*checksum=*/true,
                        /*compress=*/false);
    ShuffleBuffer packed(/*num_partitions=*/3, sort_buffer,
                         /*combiner=*/nullptr, /*checksum=*/true,
                         /*compress=*/true);
    for (int i = 0; i < 2000; ++i) {
      std::string key = "k" + std::to_string(rng.Uniform(200));
      std::string value = BaseValue(rng, 1 + rng.Uniform(60));
      int p = static_cast<int>(rng.Uniform(3));
      ASSERT_TRUE(plain.Add(p, key, value).ok());
      ASSERT_TRUE(packed.Add(p, key, value).ok());
    }
    ASSERT_TRUE(plain.Finish().ok());
    ASSERT_TRUE(packed.Finish().ok());
    for (int p = 0; p < 3; ++p) {
      EXPECT_EQ(DrainCompressed(packed, p), DrainUncompressed(plain, p))
          << "partition " << p << " sort_buffer " << sort_buffer;
      EXPECT_TRUE(packed.VerifyPartition(p).ok());
    }
    // The small sort buffer forces spills; the map-side merge must have
    // streamed through lazy cursors (decompress time) and re-serialized.
    if (sort_buffer == 512) {
      EXPECT_GT(packed.stats().spills, 1);
      EXPECT_GT(packed.stats().merge_bytes, 0);
    }
  }
}

// Sums decimal values per key group (associative, output-preserving).
class SumCombiner : public Combiner {
 public:
  Status Combine(std::string_view key,
                 const std::vector<std::string_view>& values,
                 CombineEmitter* out) override {
    (void)key;
    int64_t sum = 0;
    for (const auto& v : values) sum += std::stoll(std::string(v));
    out->Emit(std::to_string(sum));
    return Status::OK();
  }
};

TEST(ShuffleCompressionTest, DifferentialWithCombiner) {
  Rng rng(7);
  SumCombiner c1, c2;
  ShuffleBuffer plain(/*num_partitions=*/1, /*sort_buffer_bytes=*/256, &c1,
                      /*checksum=*/true, /*compress=*/false);
  ShuffleBuffer packed(/*num_partitions=*/1, /*sort_buffer_bytes=*/256, &c2,
                       /*checksum=*/true, /*compress=*/true);
  for (int i = 0; i < 1000; ++i) {
    std::string key = "w" + std::to_string(rng.Uniform(50));
    std::string value = std::to_string(1 + rng.Uniform(9));
    ASSERT_TRUE(plain.Add(0, key, value).ok());
    ASSERT_TRUE(packed.Add(0, key, value).ok());
  }
  ASSERT_TRUE(plain.Finish().ok());
  ASSERT_TRUE(packed.Finish().ok());
  EXPECT_EQ(DrainCompressed(packed, 0), DrainUncompressed(plain, 0));
  EXPECT_EQ(packed.stats().combine_input_records,
            plain.stats().combine_input_records);
}

TEST(ShuffleCompressionTest, ValueLargerThanBlockStraddles) {
  // A single value spanning multiple 64 KiB BGZF blocks exercises the
  // cursor's carry-stitch path.
  Rng rng(9);
  ShuffleBuffer buffer(/*num_partitions=*/1, /*sort_buffer_bytes=*/1 << 22,
                       /*combiner=*/nullptr, /*checksum=*/true,
                       /*compress=*/true);
  std::string big = BaseValue(rng, 3 * kBgzfBlockSize + 4321);
  ASSERT_TRUE(buffer.Add(0, "big", big).ok());
  ASSERT_TRUE(buffer.Add(0, "a", "small").ok());
  ASSERT_TRUE(buffer.Finish().ok());
  EXPECT_EQ(DrainCompressed(buffer, 0), "a=small\nbig=" + big + "\n");
}

TEST(ShuffleCompressionTest, VerifyPartitionDetectsFlippedByte) {
  Rng rng(3);
  ShuffleBuffer buffer(/*num_partitions=*/1, /*sort_buffer_bytes=*/1 << 20,
                       /*combiner=*/nullptr, /*checksum=*/true,
                       /*compress=*/true);
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        buffer.Add(0, "k" + std::to_string(i), BaseValue(rng, 64)).ok());
  }
  ASSERT_TRUE(buffer.Finish().ok());
  ASSERT_TRUE(buffer.VerifyPartition(0).ok());
  // Rot one stored (compressed) byte, as a faulty fetch would.
  auto& crun =
      const_cast<CompressedShuffleRun&>(buffer.compressed_runs(0)[0]);
  crun.bytes[crun.bytes.size() / 2] ^= 0x20;
  EXPECT_TRUE(buffer.VerifyPartition(0).IsCorruption());
}

TEST(ShuffleCompressionTest, ReaderSurfacesTruncationAsStatus) {
  Rng rng(4);
  ShuffleBuffer buffer(/*num_partitions=*/1, /*sort_buffer_bytes=*/1 << 20,
                       /*combiner=*/nullptr, /*checksum=*/true,
                       /*compress=*/true);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        buffer.Add(0, "key-" + std::to_string(i), BaseValue(rng, 50)).ok());
  }
  ASSERT_TRUE(buffer.Finish().ok());
  const std::string& bytes = buffer.compressed_runs(0)[0].bytes;
  std::string truncated = bytes.substr(0, bytes.size() - 5);
  CompressedShuffleRunReader reader(truncated);
  while (reader.Advance() != nullptr) {
  }
  EXPECT_TRUE(reader.status().IsCorruption()) << reader.status().ToString();
}

// ----- engine-level differential -----

class WordCountMapper : public Mapper {
 public:
  Status Map(const std::string& input, MapContext* ctx) override {
    std::istringstream in(input);
    std::string word;
    while (in >> word) ctx->Emit(word, "1");
    return Status::OK();
  }
};

class SumReducer : public Reducer {
 public:
  Status Reduce(const std::string& key,
                const std::vector<std::string>& values,
                ReduceContext* ctx) override {
    ctx->Emit(key + ":" + std::to_string(values.size()));
    return Status::OK();
  }
};

TEST(ShuffleCompressionTest, JobOutputsIdenticalWithCompressionOn) {
  Rng rng(20170517);
  std::vector<InputSplit> splits;
  for (int s = 0; s < 8; ++s) {
    std::string text;
    for (int w = 0; w < 400; ++w) {
      text += "w" + std::to_string(rng.Uniform(80)) + " ";
    }
    splits.push_back(InlineSplit(text));
  }
  auto run = [&](bool compress, int64_t sort_buffer) {
    JobConfig cfg;
    cfg.num_reducers = 3;
    cfg.max_parallel_tasks = 4;
    cfg.sort_buffer_bytes = sort_buffer;
    cfg.compress_shuffle = compress;
    MapReduceJob job(cfg);
    return job
        .Run(splits, [] { return std::make_unique<WordCountMapper>(); },
             [] { return std::make_unique<SumReducer>(); })
        .ValueOrDie();
  };
  for (int64_t sort_buffer : {int64_t{1} << 20, int64_t{2048}}) {
    JobResult off = run(false, sort_buffer);
    JobResult on = run(true, sort_buffer);
    EXPECT_EQ(on.reducer_outputs, off.reducer_outputs)
        << "sort_buffer " << sort_buffer;
    EXPECT_EQ(on.counters.Get("reduce_shuffle_records"),
              off.counters.Get("reduce_shuffle_records"));
    // Compression counters flow only on the compressed run.
    EXPECT_GT(on.counters.Get("shuffle_spill_bytes_raw"), 0);
    EXPECT_GT(on.counters.Get("shuffle_spill_bytes_compressed"), 0);
    EXPECT_LT(on.counters.Get("shuffle_spill_bytes_compressed"),
              on.counters.Get("shuffle_spill_bytes_raw"));
    EXPECT_GT(on.counters.Get("reduce_shuffle_bytes_compressed"), 0);
    EXPECT_EQ(off.counters.Get("shuffle_spill_bytes_raw"), 0);
    EXPECT_EQ(off.counters.Get("reduce_shuffle_bytes_compressed"), 0);
  }
}

TEST(ShuffleCompressionTest, InvalidLevelRejectedByJobValidation) {
  JobConfig cfg;
  cfg.compress_shuffle = true;
  cfg.shuffle_compress_level = 17;
  MapReduceJob job(cfg);
  auto result =
      job.Run({InlineSplit("a b")},
              [] { return std::make_unique<WordCountMapper>(); },
              [] { return std::make_unique<SumReducer>(); });
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

}  // namespace
}  // namespace gesall

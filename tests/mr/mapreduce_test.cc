#include "mr/mapreduce.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

namespace gesall {
namespace {

// Word-count mapper/reducer used by several tests.
class WordCountMapper : public Mapper {
 public:
  Status Map(const std::string& input, MapContext* ctx) override {
    std::istringstream in(input);
    std::string word;
    while (in >> word) ctx->Emit(word, "1");
    return Status::OK();
  }
};

class SumReducer : public Reducer {
 public:
  Status Reduce(const std::string& key,
                const std::vector<std::string>& values,
                ReduceContext* ctx) override {
    ctx->Emit(key + ":" + std::to_string(values.size()));
    return Status::OK();
  }
};

std::map<std::string, int> CollectCounts(const JobResult& result) {
  std::map<std::string, int> counts;
  for (const auto& out : result.reducer_outputs) {
    for (const auto& v : out) {
      auto colon = v.rfind(':');
      counts[v.substr(0, colon)] = std::stoi(v.substr(colon + 1));
    }
  }
  return counts;
}

TEST(MapReduceTest, WordCount) {
  MapReduceJob job;
  std::vector<InputSplit> splits = {
      InlineSplit("a b a"),
      InlineSplit("b c"),
      InlineSplit("a"),
  };
  auto result = job.Run(
                       splits, [] { return std::make_unique<WordCountMapper>(); },
                       [] { return std::make_unique<SumReducer>(); })
                    .ValueOrDie();
  auto counts = CollectCounts(result);
  EXPECT_EQ(counts["a"], 3);
  EXPECT_EQ(counts["b"], 2);
  EXPECT_EQ(counts["c"], 1);
}

TEST(MapReduceTest, CountersTrackRecords) {
  MapReduceJob job;
  std::vector<InputSplit> splits = {InlineSplit("x y z x")};
  auto result = job.Run(
                       splits, [] { return std::make_unique<WordCountMapper>(); },
                       [] { return std::make_unique<SumReducer>(); })
                    .ValueOrDie();
  EXPECT_EQ(result.counters.Get("map_output_records"), 4);
  EXPECT_EQ(result.counters.Get("reduce_shuffle_records"), 4);
  EXPECT_EQ(result.counters.Get("reduce_output_records"), 3);
}

TEST(MapReduceTest, DeterministicAcrossRuns) {
  std::vector<InputSplit> splits;
  for (int i = 0; i < 16; ++i) {
    splits.push_back(InlineSplit("k" + std::to_string(i % 5) + " common"));
  }
  JobConfig cfg;
  cfg.max_parallel_tasks = 8;
  auto run = [&] {
    MapReduceJob job(cfg);
    return job.Run(
                  splits, [] { return std::make_unique<WordCountMapper>(); },
                  [] { return std::make_unique<SumReducer>(); })
        .ValueOrDie()
        .reducer_outputs;
  };
  EXPECT_EQ(run(), run());
}

TEST(MapReduceTest, ValuesArriveInMapTaskOrder) {
  // Values for one key must arrive ordered by (map task, emission order).
  class TagMapper : public Mapper {
   public:
    Status Map(const std::string& input, MapContext* ctx) override {
      ctx->Emit("k", input);
      return Status::OK();
    }
  };
  class ConcatReducer : public Reducer {
   public:
    Status Reduce(const std::string& key,
                  const std::vector<std::string>& values,
                  ReduceContext* ctx) override {
      std::string all;
      for (const auto& v : values) all += v;
      ctx->Emit(key + "=" + all);
      return Status::OK();
    }
  };
  MapReduceJob job;
  std::vector<InputSplit> splits = {InlineSplit("1"), InlineSplit("2"),
                                    InlineSplit("3"), InlineSplit("4")};
  auto result = job.Run(
                       splits, [] { return std::make_unique<TagMapper>(); },
                       [] { return std::make_unique<ConcatReducer>(); })
                    .ValueOrDie();
  std::string found;
  for (const auto& out : result.reducer_outputs) {
    for (const auto& v : out) found = v;
  }
  EXPECT_EQ(found, "k=1234");
}

TEST(MapReduceTest, SpillsWhenBufferSmall) {
  JobConfig cfg;
  cfg.sort_buffer_bytes = 64;  // force many spills
  MapReduceJob job(cfg);
  std::string big_input;
  for (int i = 0; i < 200; ++i) big_input += "w" + std::to_string(i) + " ";
  auto result = job.Run(
                       {InlineSplit(big_input)},
                       [] { return std::make_unique<WordCountMapper>(); },
                       [] { return std::make_unique<SumReducer>(); })
                    .ValueOrDie();
  EXPECT_GT(result.counters.Get("map_spills"), 1);
  EXPECT_GT(result.counters.Get("map_merge_bytes"), 0);
  // Spilling must not change results.
  auto counts = CollectCounts(result);
  EXPECT_EQ(static_cast<int>(counts.size()), 200);
}

TEST(MapReduceTest, MapErrorPropagates) {
  class FailingMapper : public Mapper {
   public:
    Status Map(const std::string&, MapContext*) override {
      return Status::Internal("mapper exploded");
    }
  };
  MapReduceJob job;
  auto result = job.Run(
      {InlineSplit("x")}, [] { return std::make_unique<FailingMapper>(); },
      [] { return std::make_unique<SumReducer>(); });
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(MapReduceTest, ReduceErrorPropagates) {
  class FailingReducer : public Reducer {
   public:
    Status Reduce(const std::string&, const std::vector<std::string>&,
                  ReduceContext*) override {
      return Status::Internal("reducer exploded");
    }
  };
  MapReduceJob job;
  auto result = job.Run(
      {InlineSplit("x")}, [] { return std::make_unique<WordCountMapper>(); },
      [] { return std::make_unique<FailingReducer>(); });
  EXPECT_FALSE(result.ok());
}

TEST(MapReduceTest, SplitLoadErrorPropagates) {
  MapReduceJob job;
  InputSplit bad;
  bad.load = []() -> Result<std::string> {
    return Status::IOError("split gone");
  };
  auto result =
      job.Run({bad}, [] { return std::make_unique<WordCountMapper>(); },
              [] { return std::make_unique<SumReducer>(); });
  EXPECT_TRUE(result.status().IsIOError());
}

TEST(MapReduceTest, MapOnlyKeepsPerTaskOutputs) {
  class EchoMapper : public Mapper {
   public:
    Status Map(const std::string& input, MapContext* ctx) override {
      ctx->Emit("", input + "!");
      return Status::OK();
    }
  };
  MapReduceJob job;
  auto result = job.RunMapOnly(
                       {InlineSplit("a"), InlineSplit("b")},
                       [] { return std::make_unique<EchoMapper>(); })
                    .ValueOrDie();
  ASSERT_EQ(result.reducer_outputs.size(), 2u);
  EXPECT_EQ(result.reducer_outputs[0], (std::vector<std::string>{"a!"}));
  EXPECT_EQ(result.reducer_outputs[1], (std::vector<std::string>{"b!"}));
}

TEST(MapReduceTest, TaskTimelineRecorded) {
  MapReduceJob job;
  auto result = job.Run(
                       {InlineSplit("a b"), InlineSplit("c")},
                       [] { return std::make_unique<WordCountMapper>(); },
                       [] { return std::make_unique<SumReducer>(); })
                    .ValueOrDie();
  int maps = 0, reduces = 0;
  for (const auto& t : result.tasks) {
    EXPECT_GE(t.end_seconds, t.start_seconds);
    if (t.type == TaskRecord::Type::kMap) {
      ++maps;
    } else {
      ++reduces;
    }
  }
  EXPECT_EQ(maps, 2);
  EXPECT_EQ(reduces, 4);  // default num_reducers
}

TEST(HashPartitionerTest, StableAndInRange) {
  HashPartitioner p;
  for (int i = 0; i < 100; ++i) {
    std::string key = "key" + std::to_string(i);
    int part = p.Partition(key, 7);
    EXPECT_GE(part, 0);
    EXPECT_LT(part, 7);
    EXPECT_EQ(part, p.Partition(key, 7));
  }
}

TEST(RangePartitionerTest, BoundariesRespected) {
  RangePartitioner p({"g", "n"});  // [<g], [g..n), [>=n]
  EXPECT_EQ(p.Partition("a", 3), 0);
  EXPECT_EQ(p.Partition("g", 3), 1);
  EXPECT_EQ(p.Partition("m", 3), 1);
  EXPECT_EQ(p.Partition("n", 3), 2);
  EXPECT_EQ(p.Partition("z", 3), 2);
}

TEST(RangePartitionerTest, ClampsToNumPartitions) {
  RangePartitioner p({"b", "c", "d"});
  EXPECT_EQ(p.Partition("z", 2), 1);
}

// Regression guard for the per-phase pool churn: a job run must execute
// entirely on the shared persistent executor — zero Executor
// constructions per run (the old engine built four pools per job).
TEST(MapReduceTest, OneSharedExecutorPerJobRun) {
  Executor::Shared();  // force the singleton into existence first
  const int64_t before = Executor::instances_created();
  MapReduceJob job;
  auto result = job.Run(
                       {InlineSplit("a b a"), InlineSplit("b c")},
                       [] { return std::make_unique<WordCountMapper>(); },
                       [] { return std::make_unique<SumReducer>(); })
                    .ValueOrDie();
  EXPECT_EQ(result.counters.Get("map_output_records"), 5);
  EXPECT_EQ(Executor::instances_created(), before);
  auto map_only =
      job.RunMapOnly({InlineSplit("x")},
                     [] { return std::make_unique<WordCountMapper>(); })
          .ValueOrDie();
  EXPECT_EQ(map_only.reducer_outputs.size(), 1u);
  EXPECT_EQ(Executor::instances_created(), before);
}

TEST(MapReduceTest, StartReturnsSameResultAsRun) {
  std::vector<InputSplit> splits = {InlineSplit("a b a"),
                                    InlineSplit("b c")};
  auto mapper = [] { return std::make_unique<WordCountMapper>(); };
  auto reducer = [] { return std::make_unique<SumReducer>(); };
  MapReduceJob job;
  auto sync = job.Run(splits, mapper, reducer).ValueOrDie();
  auto handle = job.Start(splits, mapper, reducer);
  auto async = handle.Wait().ValueOrDie();
  EXPECT_EQ(async.reducer_outputs, sync.reducer_outputs);
  EXPECT_EQ(async.counters.values(), sync.counters.values());
}

TEST(MapReduceTest, HandleWaitIsSingleConsume) {
  MapReduceJob job;
  auto handle =
      job.StartMapOnly({InlineSplit("a")}, [] {
        return std::make_unique<WordCountMapper>();
      });
  EXPECT_TRUE(handle.Wait().ok());
  EXPECT_FALSE(handle.Wait().ok());
}

// A gated split must not run (nor hold a task slot) until its
// ReadySignal fires; the job completes only after every gate opens.
TEST(MapReduceTest, GatedSplitWaitsForReadySignal) {
  std::atomic<bool> gate_open{false};
  std::atomic<bool> gated_ran{false};
  auto gate = std::make_shared<ReadySignal>();
  InputSplit gated;
  gated.load = [&]() -> Result<std::string> {
    gated_ran = true;
    EXPECT_TRUE(gate_open.load());  // must not load before Notify
    return std::string("late");
  };
  gated.ready = gate;
  MapReduceJob job;
  auto handle = job.StartMapOnly(
      {InlineSplit("early"), gated},
      [] { return std::make_unique<WordCountMapper>(); });
  // Give the ungated split ample time to run; the gated one must not.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(gated_ran.load());
  gate_open = true;
  gate->Notify();
  auto result = handle.Wait().ValueOrDie();
  EXPECT_TRUE(gated_ran.load());
  ASSERT_EQ(result.reducer_outputs.size(), 2u);
  // WordCountMapper emits one "1" per word of the gated split.
  EXPECT_EQ(result.reducer_outputs[1], (std::vector<std::string>{"1"}));
}

// on_partition_output must fire once per reduce partition with that
// partition's final values, before the job-level barrier.
TEST(MapReduceTest, PartitionOutputCallbackFiresPerReducer) {
  JobConfig config;
  config.num_reducers = 3;
  std::mutex mu;
  std::map<int, std::vector<std::string>> seen;
  config.on_partition_output =
      [&](int partition, const std::vector<std::string>& values,
          const JobCounters& counters) {
        std::lock_guard<std::mutex> lock(mu);
        EXPECT_EQ(seen.count(partition), 0u);  // once per partition
        seen[partition] = values;
        EXPECT_EQ(counters.Get("reduce_output_records"),
                  static_cast<int64_t>(values.size()));
      };
  MapReduceJob job(config);
  auto result = job.Run(
                       {InlineSplit("a b c d e f"), InlineSplit("a c e")},
                       [] { return std::make_unique<WordCountMapper>(); },
                       [] { return std::make_unique<SumReducer>(); })
                    .ValueOrDie();
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(seen.size(), 3u);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(seen[r], result.reducer_outputs[r]) << "partition " << r;
  }
}

}  // namespace
}  // namespace gesall

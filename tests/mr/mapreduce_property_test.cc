// Property tests on the MapReduce engine: output invariance under
// concurrency, buffer sizes, and reducer counts.

#include <gtest/gtest.h>

#include <map>

#include "mr/mapreduce.h"
#include "util/rng.h"

namespace gesall {
namespace {

// Emits (key, value) pairs parsed from "key=value" tokens.
class KvMapper : public Mapper {
 public:
  Status Map(const std::string& input, MapContext* ctx) override {
    size_t start = 0;
    while (start < input.size()) {
      size_t space = input.find(' ', start);
      if (space == std::string::npos) space = input.size();
      std::string token = input.substr(start, space - start);
      size_t eq = token.find('=');
      if (eq != std::string::npos) {
        ctx->Emit(token.substr(0, eq), token.substr(eq + 1));
      }
      start = space + 1;
    }
    return Status::OK();
  }
};

// Emits "key:v1,v2,..." preserving value order.
class JoinReducer : public Reducer {
 public:
  Status Reduce(const std::string& key,
                const std::vector<std::string>& values,
                ReduceContext* ctx) override {
    std::string out = key + ":";
    for (const auto& v : values) {
      out += v;
      out += ',';
    }
    ctx->Emit(std::move(out));
    return Status::OK();
  }
};

std::vector<InputSplit> RandomSplits(uint64_t seed, int n_splits,
                                     int tokens_per_split) {
  Rng rng(seed);
  std::vector<InputSplit> splits;
  for (int s = 0; s < n_splits; ++s) {
    std::string data;
    for (int t = 0; t < tokens_per_split; ++t) {
      data += "k" + std::to_string(rng.Uniform(40)) + "=v" +
              std::to_string(rng.Uniform(1000)) + " ";
    }
    splits.push_back(InlineSplit(data));
  }
  return splits;
}

std::multiset<std::string> Flatten(const JobResult& result) {
  std::multiset<std::string> out;
  for (const auto& ro : result.reducer_outputs) {
    for (const auto& v : ro) out.insert(v);
  }
  return out;
}

JobResult RunJob(const std::vector<InputSplit>& splits, JobConfig cfg) {
  MapReduceJob job(cfg);
  return job
      .Run(splits, [] { return std::make_unique<KvMapper>(); },
           [] { return std::make_unique<JoinReducer>(); })
      .ValueOrDie();
}

class MrInvarianceTest : public testing::TestWithParam<uint64_t> {};

TEST_P(MrInvarianceTest, OutputInvariantUnderThreadCount) {
  auto splits = RandomSplits(GetParam(), 12, 80);
  JobConfig one;
  one.max_parallel_tasks = 1;
  JobConfig many;
  many.max_parallel_tasks = 8;
  EXPECT_EQ(Flatten(RunJob(splits, one)), Flatten(RunJob(splits, many)));
}

TEST_P(MrInvarianceTest, OutputInvariantUnderSortBuffer) {
  auto splits = RandomSplits(GetParam(), 6, 200);
  JobConfig big;
  JobConfig tiny;
  tiny.sort_buffer_bytes = 64;  // dozens of spills per task
  EXPECT_EQ(Flatten(RunJob(splits, big)), Flatten(RunJob(splits, tiny)));
}

TEST_P(MrInvarianceTest, KeySetInvariantUnderReducerCount) {
  auto splits = RandomSplits(GetParam(), 6, 200);
  JobConfig r2;
  r2.num_reducers = 2;
  JobConfig r16;
  r16.num_reducers = 16;
  // Reducer routing changes, but the set of (key -> joined values) lines
  // must be identical: value order within a key is shuffle-deterministic.
  EXPECT_EQ(Flatten(RunJob(splits, r2)), Flatten(RunJob(splits, r16)));
}

TEST_P(MrInvarianceTest, KeysSortedWithinReducer) {
  auto splits = RandomSplits(GetParam(), 6, 120);
  auto result = RunJob(splits, JobConfig{});
  for (const auto& ro : result.reducer_outputs) {
    for (size_t i = 1; i < ro.size(); ++i) {
      std::string prev_key = ro[i - 1].substr(0, ro[i - 1].find(':'));
      std::string key = ro[i].substr(0, ro[i].find(':'));
      EXPECT_LT(prev_key, key);
    }
  }
}

TEST_P(MrInvarianceTest, EveryEmittedValueReachesExactlyOneReducer) {
  auto splits = RandomSplits(GetParam(), 8, 100);
  auto result = RunJob(splits, JobConfig{});
  int64_t values_out = 0;
  for (const auto& ro : result.reducer_outputs) {
    for (const auto& line : ro) {
      values_out +=
          std::count(line.begin(), line.end(), ',');
    }
  }
  EXPECT_EQ(values_out, result.counters.Get("map_output_records"));
  EXPECT_EQ(values_out, result.counters.Get("reduce_shuffle_records"));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MrInvarianceTest,
                         testing::Values(1u, 77u, 991u));

}  // namespace
}  // namespace gesall

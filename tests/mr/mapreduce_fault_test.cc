// Fault-tolerance behavior of the MapReduce engine: task-attempt retries,
// deterministic output under injected faults, skip-bad-records isolation,
// speculative execution, and the JobConfig/partitioner hardening.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "mr/mapreduce.h"
#include "util/fault_injection.h"

namespace gesall {
namespace {

class WordCountMapper : public Mapper {
 public:
  Status Map(const std::string& input, MapContext* ctx) override {
    std::istringstream in(input);
    std::string word;
    while (in >> word) ctx->Emit(word, "1");
    return Status::OK();
  }
};

class SumReducer : public Reducer {
 public:
  Status Reduce(const std::string& key,
                const std::vector<std::string>& values,
                ReduceContext* ctx) override {
    ctx->Emit(key + ":" + std::to_string(values.size()));
    return Status::OK();
  }
};

std::vector<InputSplit> WordSplits(int n) {
  std::vector<InputSplit> splits;
  for (int i = 0; i < n; ++i) {
    splits.push_back(InlineSplit("k" + std::to_string(i % 5) + " common"));
  }
  return splits;
}

Result<JobResult> RunWordCount(const JobConfig& cfg,
                               const std::vector<InputSplit>& splits) {
  MapReduceJob job(cfg);
  return job.Run(
      splits, [] { return std::make_unique<WordCountMapper>(); },
      [] { return std::make_unique<SumReducer>(); });
}

TEST(MapReduceFaultTest, RetriedMapTaskSucceeds) {
  FaultInjector injector(1);
  // Every map task fails its first attempt; the retry succeeds.
  ASSERT_TRUE(injector.ArmFirstAttempts(kFaultMapAttempt, 1).ok());
  JobConfig cfg;
  cfg.max_task_attempts = 2;
  cfg.fault_injector = &injector;
  auto splits = WordSplits(6);
  auto result = RunWordCount(cfg, splits).ValueOrDie();
  EXPECT_EQ(result.counters.Get("map_task_retries"), 6);
  EXPECT_EQ(result.counters.Get("reduce_task_retries"), 0);
  // Failed attempts leave no counter residue: every emitted record still
  // reaches exactly one reducer.
  EXPECT_EQ(result.counters.Get("map_output_records"),
            result.counters.Get("reduce_shuffle_records"));
  for (const auto& task : result.tasks) {
    if (task.type == TaskRecord::Type::kMap) {
      EXPECT_EQ(task.attempt, 1);
    }
  }
}

TEST(MapReduceFaultTest, DeterministicUnderProbabilisticFaults) {
  auto splits = WordSplits(16);
  // Fault-free baseline.
  JobConfig clean;
  clean.max_parallel_tasks = 8;
  auto baseline = RunWordCount(clean, splits).ValueOrDie();

  auto chaos_run = [&] {
    FaultInjector injector(2024);
    EXPECT_TRUE(injector.ArmProbability(kFaultMapAttempt, 0.3).ok());
    EXPECT_TRUE(injector.ArmProbability(kFaultReduceAttempt, 0.3).ok());
    JobConfig cfg;
    cfg.max_parallel_tasks = 8;
    cfg.max_task_attempts = 8;
    cfg.fault_injector = &injector;
    return RunWordCount(cfg, splits).ValueOrDie();
  };
  JobResult first = chaos_run();
  JobResult second = chaos_run();
  // Same fault seed + input => byte-identical output and stable counters.
  EXPECT_EQ(first.reducer_outputs, second.reducer_outputs);
  EXPECT_EQ(first.counters.values(), second.counters.values());
  // And the output matches the fault-free run: retries are invisible.
  EXPECT_EQ(first.reducer_outputs, baseline.reducer_outputs);
  EXPECT_GT(first.counters.Get("map_task_retries") +
                first.counters.Get("reduce_task_retries"),
            0);
}

TEST(MapReduceFaultTest, SplitLoadFaultsAreRetried) {
  FaultInjector injector(1);
  injector.ArmSchedule(kFaultSplitLoad, /*key=*/2, {0});
  JobConfig cfg;
  cfg.fault_injector = &injector;
  auto result = RunWordCount(cfg, WordSplits(4)).ValueOrDie();
  EXPECT_EQ(result.counters.Get("map_task_retries"), 1);
  EXPECT_EQ(injector.fires(kFaultSplitLoad), 1);
}

TEST(MapReduceFaultTest, ExhaustedAttemptsFailTheJob) {
  FaultInjector injector(1);
  injector.ArmSchedule(kFaultMapAttempt, /*key=*/1, {0, 1, 2});
  JobConfig cfg;
  cfg.max_task_attempts = 3;
  cfg.fault_injector = &injector;
  auto result = RunWordCount(cfg, WordSplits(4));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

TEST(MapReduceFaultTest, SkipBadRecordsIsolatesPoisonSplit) {
  FaultInjector injector(1);
  // Split 1 fails every regular attempt: a true poison split.
  injector.ArmSchedule(kFaultMapAttempt, /*key=*/1, {0, 1, 2});
  JobConfig cfg;
  cfg.max_task_attempts = 3;
  cfg.skip_bad_records = true;
  cfg.fault_injector = &injector;
  auto splits = WordSplits(4);
  auto result = RunWordCount(cfg, splits).ValueOrDie();
  ASSERT_EQ(result.skipped_splits.size(), 1u);
  EXPECT_EQ(result.skipped_splits[0], 1);
  EXPECT_EQ(result.counters.Get("map_splits_skipped"), 1);
  // The skipped split contributed nothing, the others all did.
  EXPECT_EQ(result.counters.Get("map_output_records"), 3 * 2);
  EXPECT_EQ(result.counters.Get("map_output_records"),
            result.counters.Get("reduce_shuffle_records"));
}

TEST(MapReduceFaultTest, ReduceRetriesReproduceTheSameOutput) {
  auto splits = WordSplits(8);
  JobConfig clean;
  auto baseline = RunWordCount(clean, splits).ValueOrDie();

  FaultInjector injector(1);
  injector.ArmSchedule(kFaultReduceAttempt, /*key=*/0, {0});
  injector.ArmSchedule(kFaultReduceAttempt, /*key=*/3, {0});
  JobConfig cfg;
  cfg.fault_injector = &injector;
  auto result = RunWordCount(cfg, splits).ValueOrDie();
  EXPECT_EQ(result.counters.Get("reduce_task_retries"), 2);
  EXPECT_EQ(result.reducer_outputs, baseline.reducer_outputs);
}

TEST(MapReduceFaultTest, SpeculativeBackupWinsOverStraggler) {
  FaultInjector injector(1);
  // Attempt 0 of every map task is a straggler; the speculative backup
  // (numbered past max_task_attempts) lands on a "healthy node".
  ASSERT_TRUE(injector.ArmLatency(kFaultMapAttempt, 1.0, 60,
                                  /*only_attempts_below=*/1).ok());
  JobConfig cfg;
  cfg.fault_injector = &injector;
  cfg.speculative_execution = true;
  cfg.speculative_slow_task_ms = 30;
  MapReduceJob job(cfg);
  std::vector<InputSplit> splits = {InlineSplit("a b"), InlineSplit("c")};
  auto result = job.RunMapOnly(splits, [] {
                      return std::make_unique<WordCountMapper>();
                    }).ValueOrDie();
  EXPECT_EQ(result.counters.Get("speculative_launches"), 2);
  EXPECT_EQ(result.counters.Get("speculative_wins"), 2);
  int speculative_records = 0;
  for (const auto& task : result.tasks) speculative_records += task.speculative;
  EXPECT_EQ(speculative_records, 2);
}

TEST(MapReduceFaultTest, SpeculativeTieKeepsOriginalAttempt) {
  FaultInjector injector(1);
  // Every attempt — original and backup alike — suffers the same
  // injected latency, so their measured durations differ only by
  // scheduler jitter. With a win margin far above that jitter, the
  // documented tie-break applies: the original attempt deterministically
  // keeps the task.
  ASSERT_TRUE(injector.ArmLatency(kFaultMapAttempt, 1.0, 40).ok());
  JobConfig cfg;
  cfg.fault_injector = &injector;
  cfg.speculative_execution = true;
  cfg.speculative_slow_task_ms = 20;
  cfg.speculative_win_margin_ms = 1000;
  MapReduceJob job(cfg);
  std::vector<InputSplit> splits = {InlineSplit("a b"), InlineSplit("c")};
  auto result = job.RunMapOnly(splits, [] {
                      return std::make_unique<WordCountMapper>();
                    }).ValueOrDie();
  EXPECT_EQ(result.counters.Get("speculative_launches"), 2);
  EXPECT_EQ(result.counters.Get("speculative_wins"), 0);
  for (const auto& task : result.tasks) {
    EXPECT_FALSE(task.speculative);
    EXPECT_EQ(task.attempt, 0);
  }
}

TEST(MapReduceFaultTest, NegativeSpeculativeMarginRejected) {
  JobConfig cfg;
  cfg.speculative_win_margin_ms = -1;
  std::vector<InputSplit> splits = {InlineSplit("a")};
  EXPECT_TRUE(MapReduceJob(cfg)
                  .RunMapOnly(splits,
                              [] { return std::make_unique<WordCountMapper>(); })
                  .status()
                  .IsInvalidArgument());
}

TEST(MapReduceFaultTest, RetryMachineryIdleWithoutInjector) {
  JobConfig cfg;
  cfg.max_task_attempts = 4;
  cfg.speculative_execution = false;
  auto result = RunWordCount(cfg, WordSplits(6)).ValueOrDie();
  EXPECT_EQ(result.counters.Get("map_task_retries"), 0);
  EXPECT_EQ(result.counters.Get("reduce_task_retries"), 0);
  EXPECT_EQ(result.counters.Get("speculative_launches"), 0);
  EXPECT_TRUE(result.skipped_splits.empty());
  for (const auto& task : result.tasks) {
    EXPECT_EQ(task.attempt, 0);
    EXPECT_FALSE(task.speculative);
  }
}

TEST(MapReduceFaultTest, JobConfigValidation) {
  std::vector<InputSplit> splits = {InlineSplit("a")};
  auto mapper = [] { return std::make_unique<WordCountMapper>(); };
  auto reducer = [] { return std::make_unique<SumReducer>(); };

  JobConfig bad_reducers;
  bad_reducers.num_reducers = 0;
  EXPECT_TRUE(MapReduceJob(bad_reducers)
                  .Run(splits, mapper, reducer)
                  .status()
                  .IsInvalidArgument());
  // Map-only jobs do not need reducers.
  EXPECT_TRUE(MapReduceJob(bad_reducers).RunMapOnly(splits, mapper).ok());

  JobConfig bad_parallel;
  bad_parallel.max_parallel_tasks = 0;
  EXPECT_TRUE(MapReduceJob(bad_parallel)
                  .RunMapOnly(splits, mapper)
                  .status()
                  .IsInvalidArgument());

  JobConfig bad_attempts;
  bad_attempts.max_task_attempts = 0;
  EXPECT_TRUE(MapReduceJob(bad_attempts)
                  .RunMapOnly(splits, mapper)
                  .status()
                  .IsInvalidArgument());

  JobConfig bad_backoff;
  bad_backoff.retry_base_ms = -1;
  EXPECT_TRUE(MapReduceJob(bad_backoff)
                  .RunMapOnly(splits, mapper)
                  .status()
                  .IsInvalidArgument());
}

TEST(MapReduceFaultTest, PartitionersHandleDegeneratePartitionCounts) {
  HashPartitioner hash;
  EXPECT_EQ(hash.Partition("anything", 0), 0);
  EXPECT_EQ(hash.Partition("anything", -3), 0);
  EXPECT_EQ(hash.Partition("anything", 1), 0);
  RangePartitioner range({"m"});
  EXPECT_EQ(range.Partition("a", 0), 0);
  EXPECT_EQ(range.Partition("z", -1), 0);
}

TEST(MapReduceFaultTest, TaskRecordsReportOutputBytes) {
  auto splits = WordSplits(3);
  JobConfig cfg;
  auto result = RunWordCount(cfg, splits).ValueOrDie();
  int64_t map_bytes = 0, reduce_bytes = 0;
  for (const auto& task : result.tasks) {
    if (task.type == TaskRecord::Type::kMap) {
      EXPECT_GT(task.output_bytes, 0);
      map_bytes += task.output_bytes;
    } else {
      reduce_bytes += task.output_bytes;
    }
  }
  EXPECT_EQ(map_bytes, result.counters.Get("map_output_bytes"));
  EXPECT_EQ(reduce_bytes, result.counters.Get("reduce_output_bytes"));
  EXPECT_GT(reduce_bytes, 0);

  // Map-only rounds report output bytes too.
  MapReduceJob map_only(cfg);
  auto mo = map_only.RunMapOnly(splits, [] {
                      return std::make_unique<WordCountMapper>();
                    }).ValueOrDie();
  for (const auto& task : mo.tasks) EXPECT_GT(task.output_bytes, 0);
}

}  // namespace
}  // namespace gesall

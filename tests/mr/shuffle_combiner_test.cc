// The zero-copy shuffle data path and the combiner contract: key-prefix
// comparator correctness, ShuffleBuffer spill/merge/combine accounting,
// and the engine-level property that arming an output-preserving
// combiner never changes a job's reducer outputs — including under
// injected faults and spill-heavy sort buffers.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "mr/mapreduce.h"
#include "mr/shuffle_buffer.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace gesall {
namespace {

ShuffleEntry MakeEntry(std::string_view key) {
  return MakeShuffleEntry(key, std::string_view());
}

// The comparator must order exactly like std::string comparison of the
// full keys, for every prefix-length relationship.
TEST(ShuffleKeyTest, OrdersLikeStringComparison) {
  const std::vector<std::string> keys = {
      "",
      std::string("\0", 1),
      std::string("a\0", 2),
      "a",
      "ab",
      "abcdefgh",          // exactly the first prefix word
      "abcdefgha",         // shares the first word
      "abcdefghz",
      std::string("abcdefgh\0", 9),  // zero past the first word
      "abcdefghijklmnop",            // exactly the 16-byte key head
      "abcdefghijklmnopq",           // shares the full head
      "abcdefghijklmnopz",
      std::string("abcdefghijklmnop\0", 17),  // zero past the head
      "b",
      "longer-than-eight-bytes",
      "longer-than-eight-bytez",
      std::string(3, '\xff'),
  };
  for (const auto& a : keys) {
    for (const auto& b : keys) {
      EXPECT_EQ(ShuffleKeyLess(MakeEntry(a), MakeEntry(b)), a < b)
          << "a=" << a << " b=" << b;
      EXPECT_EQ(ShuffleKeyEqual(MakeEntry(a), MakeEntry(b)), a == b);
    }
  }
}

TEST(ShuffleKeyTest, PrefixIsBigEndianZeroPadded) {
  EXPECT_EQ(ShuffleKeyPrefix(""), 0u);
  EXPECT_EQ(ShuffleKeyPrefix("a"), 0x6100000000000000u);
  EXPECT_EQ(ShuffleKeyPrefix("abcdefghIGNORED"),
            ShuffleKeyPrefix("abcdefgh"));
  // Zero-padding means "a" and "a\0" share a prefix; the comparator must
  // still distinguish them via the full key.
  EXPECT_EQ(ShuffleKeyPrefix("a"), ShuffleKeyPrefix(std::string("a\0", 2)));
  // The second key-head word covers bytes 8..15 — where GDPT coordinate
  // keys carry their discriminating (reference, position) bytes.
  EXPECT_EQ(ShuffleKeyWord("abcdefgh", 8), 0u);
  EXPECT_EQ(ShuffleKeyWord("abcdefghZ", 8), 0x5a00000000000000u);
  EXPECT_EQ(MakeEntry("abcdefghZ").prefix2, 0x5a00000000000000u);
}

TEST(ShuffleBufferTest, SortsAndMergesAcrossSpills) {
  // A 1-byte sort buffer forces a spill on every Add.
  ShuffleBuffer buffer(/*num_partitions=*/1, /*sort_buffer_bytes=*/1);
  ASSERT_TRUE(buffer.Add(0, "b", "2").ok());
  ASSERT_TRUE(buffer.Add(0, "a", "1").ok());
  ASSERT_TRUE(buffer.Add(0, "c", "3").ok());
  ASSERT_TRUE(buffer.Finish().ok());
  ASSERT_EQ(buffer.runs(0).size(), 1u);  // merged to one run
  const ShuffleRun& run = buffer.runs(0)[0];
  ASSERT_EQ(run.size(), 3u);
  EXPECT_EQ(run[0].key, "a");
  EXPECT_EQ(run[1].key, "b");
  EXPECT_EQ(run[2].key, "c");
  EXPECT_EQ(buffer.stats().spills, 3);
  // Merge rewrites every entry of the multi-run partition.
  EXPECT_EQ(buffer.stats().merge_bytes, 6);
}

TEST(ShuffleBufferTest, StableForEqualKeys) {
  ShuffleBuffer buffer(/*num_partitions=*/1, /*sort_buffer_bytes=*/1 << 20);
  ASSERT_TRUE(buffer.Add(0, "k", "first").ok());
  ASSERT_TRUE(buffer.Add(0, "k", "second").ok());
  ASSERT_TRUE(buffer.Finish().ok());
  const ShuffleRun& run = buffer.runs(0)[0];
  ASSERT_EQ(run.size(), 2u);
  EXPECT_EQ(run[0].value, "first");
  EXPECT_EQ(run[1].value, "second");
  EXPECT_EQ(buffer.stats().spills, 1);
  EXPECT_EQ(buffer.stats().merge_bytes, 0);  // single run: no merge
}

// Sums decimal values per key group — the canonical associative,
// output-preserving combiner (paired with SumReducer below).
class SumCombiner : public Combiner {
 public:
  Status Combine(std::string_view key,
                 const std::vector<std::string_view>& values,
                 CombineEmitter* out) override {
    (void)key;
    int64_t sum = 0;
    for (const auto& v : values) sum += std::stoll(std::string(v));
    out->Emit(std::to_string(sum));
    return Status::OK();
  }
};

TEST(ShuffleBufferTest, CombinerCollapsesKeyGroupsPerSpill) {
  SumCombiner combiner;
  ShuffleBuffer buffer(/*num_partitions=*/1, /*sort_buffer_bytes=*/1 << 20,
                       &combiner);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(buffer.Add(0, "k", "2").ok());
  ASSERT_TRUE(buffer.Add(0, "other", "7").ok());
  ASSERT_TRUE(buffer.Finish().ok());
  const ShuffleRun& run = buffer.runs(0)[0];
  ASSERT_EQ(run.size(), 2u);
  EXPECT_EQ(run[0].key, "k");
  EXPECT_EQ(run[0].value, "10");
  EXPECT_EQ(run[1].key, "other");
  EXPECT_EQ(run[1].value, "7");
  EXPECT_EQ(buffer.stats().combine_input_records, 6);
  EXPECT_EQ(buffer.stats().combine_output_records, 2);
}

class CountEmitMapper : public Mapper {
 public:
  Status Map(const std::string& input, MapContext* ctx) override {
    std::istringstream in(input);
    std::string word;
    while (in >> word) ctx->EmitView(word, "1");
    return Status::OK();
  }
};

class SumReducer : public Reducer {
 public:
  Status ReduceViews(std::string_view key,
                     const std::vector<std::string_view>& values,
                     ReduceContext* ctx) override {
    int64_t sum = 0;
    for (const auto& v : values) sum += std::stoll(std::string(v));
    ctx->Emit(std::string(key) + ":" + std::to_string(sum));
    return Status::OK();
  }
  Status Reduce(const std::string& key,
                const std::vector<std::string>& values,
                ReduceContext* ctx) override {
    return ReduceViews(key, {values.begin(), values.end()}, ctx);
  }
};

std::vector<InputSplit> RandomSplits(uint64_t seed, int num_splits) {
  Rng rng(seed);
  std::vector<InputSplit> splits;
  for (int s = 0; s < num_splits; ++s) {
    std::string data;
    int words = static_cast<int>(rng.Uniform(200));
    for (int w = 0; w < words; ++w) {
      // Skewed key space: some hot keys, some unique ones.
      data += "key" + std::to_string(rng.Uniform(30));
      data += ' ';
    }
    splits.push_back(InlineSplit(std::move(data)));
  }
  return splits;
}

Result<JobResult> RunSum(const std::vector<InputSplit>& splits,
                         bool with_combiner, int64_t sort_buffer_bytes,
                         FaultInjector* injector = nullptr) {
  JobConfig cfg;
  cfg.num_reducers = 3;
  cfg.max_parallel_tasks = 4;
  cfg.sort_buffer_bytes = sort_buffer_bytes;
  if (with_combiner) {
    cfg.combiner_factory = [] { return std::make_unique<SumCombiner>(); };
  }
  if (injector != nullptr) {
    cfg.fault_injector = injector;
    cfg.max_task_attempts = 8;
  }
  MapReduceJob job(cfg);
  return job.Run(
      splits, [] { return std::make_unique<CountEmitMapper>(); },
      [] { return std::make_unique<SumReducer>(); });
}

// Property: arming an output-preserving combiner never changes the
// job's reducer outputs, across random workloads and sort buffers small
// enough to force many spills (so combining happens run-by-run).
TEST(CombinerPropertyTest, CombinerOnOffByteIdentical) {
  const int64_t kSortBuffers[] = {64, 1 << 10, 64LL << 20};
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    auto splits = RandomSplits(seed, /*num_splits=*/6);
    for (int64_t sort_buffer : kSortBuffers) {
      auto off = RunSum(splits, /*with_combiner=*/false, sort_buffer)
                     .ValueOrDie();
      auto on = RunSum(splits, /*with_combiner=*/true, sort_buffer)
                    .ValueOrDie();
      EXPECT_EQ(on.reducer_outputs, off.reducer_outputs)
          << "seed=" << seed << " sort_buffer=" << sort_buffer;
      // Map-side collapse actually happened on spill-heavy runs, and the
      // pre-combine emit counters are unaffected (Hadoop convention).
      EXPECT_EQ(on.counters.Get("map_output_records"),
                off.counters.Get("map_output_records"));
      if (off.counters.Get("map_output_records") > 0) {
        EXPECT_GT(on.counters.Get("combine_input_records"), 0);
        EXPECT_LE(on.counters.Get("reduce_shuffle_records"),
                  off.counters.Get("reduce_shuffle_records"));
      }
    }
  }
}

// Determinism of the arena shuffle under chaos: the same fault seed
// yields byte-identical outputs and counters with the combiner armed,
// and the output matches the fault-free combiner-off run.
TEST(CombinerPropertyTest, DeterministicUnderFaultsWithCombiner) {
  auto splits = RandomSplits(/*seed=*/42, /*num_splits=*/8);
  auto baseline =
      RunSum(splits, /*with_combiner=*/false, 64LL << 20).ValueOrDie();

  auto chaos_run = [&] {
    FaultInjector injector(7);
    EXPECT_TRUE(injector.ArmProbability(kFaultMapAttempt, 0.3).ok());
    EXPECT_TRUE(injector.ArmProbability(kFaultReduceAttempt, 0.3).ok());
    EXPECT_TRUE(injector.ArmProbability(kFaultSplitLoad, 0.2).ok());
    return RunSum(splits, /*with_combiner=*/true, /*sort_buffer_bytes=*/512,
                  &injector)
        .ValueOrDie();
  };
  JobResult first = chaos_run();
  JobResult second = chaos_run();
  EXPECT_EQ(first.reducer_outputs, second.reducer_outputs);
  EXPECT_EQ(first.counters.values(), second.counters.values());
  EXPECT_EQ(first.reducer_outputs, baseline.reducer_outputs);
  EXPECT_GT(first.counters.Get("map_task_retries") +
                first.counters.Get("reduce_task_retries"),
            0);
}

// A failing combiner fails the map task (and surfaces through retries).
class FailingCombiner : public Combiner {
 public:
  Status Combine(std::string_view, const std::vector<std::string_view>&,
                 CombineEmitter*) override {
    return Status::Internal("combiner exploded");
  }
};

TEST(CombinerPropertyTest, CombinerFailureFailsTheJob) {
  JobConfig cfg;
  cfg.combiner_factory = [] { return std::make_unique<FailingCombiner>(); };
  cfg.max_task_attempts = 1;
  MapReduceJob job(cfg);
  std::vector<InputSplit> splits = {InlineSplit("a b c")};
  auto result = job.Run(
      splits, [] { return std::make_unique<CountEmitMapper>(); },
      [] { return std::make_unique<SumReducer>(); });
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("combiner exploded"),
            std::string::npos);
}

}  // namespace
}  // namespace gesall

// Whole-node failure and shuffle integrity of the MapReduce engine:
// CRC32C checksums over frozen shuffle runs, reduce-fetch verification,
// and Hadoop's lost-map-output semantics — a completed map task whose
// output sat on a crashed node (or no longer verifies) is re-executed on
// a live node, bounded by max_map_reexecutions.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "mr/mapreduce.h"
#include "mr/shuffle_buffer.h"
#include "util/fault_injection.h"

namespace gesall {
namespace {

class WordCountMapper : public Mapper {
 public:
  Status Map(const std::string& input, MapContext* ctx) override {
    std::istringstream in(input);
    std::string word;
    while (in >> word) ctx->Emit(word, "1");
    return Status::OK();
  }
};

class SumReducer : public Reducer {
 public:
  Status Reduce(const std::string& key,
                const std::vector<std::string>& values,
                ReduceContext* ctx) override {
    ctx->Emit(key + ":" + std::to_string(values.size()));
    return Status::OK();
  }
};

std::vector<InputSplit> WordSplits(int n) {
  std::vector<InputSplit> splits;
  for (int i = 0; i < n; ++i) {
    splits.push_back(InlineSplit("k" + std::to_string(i % 5) + " common"));
  }
  return splits;
}

Result<JobResult> RunWordCount(const JobConfig& cfg,
                               const std::vector<InputSplit>& splits) {
  MapReduceJob job(cfg);
  return job.Run(
      splits, [] { return std::make_unique<WordCountMapper>(); },
      [] { return std::make_unique<SumReducer>(); });
}

// --- ShuffleBuffer checksum unit coverage ---

TEST(ShuffleChecksumTest, FrozenRunsVerifyAndCorruptionIsDetected) {
  ShuffleBuffer buffer(2, /*sort_buffer_bytes=*/64, nullptr,
                       /*checksum=*/true);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        buffer.Add(i % 2, "key" + std::to_string(i % 7), "value").ok());
  }
  ASSERT_TRUE(buffer.Finish().ok());
  ASSERT_TRUE(buffer.checksummed());
  EXPECT_GT(buffer.stats().checksummed_bytes, 0);
  for (int p = 0; p < 2; ++p) {
    EXPECT_TRUE(buffer.VerifyPartition(p).ok());
    EXPECT_FALSE(buffer.chunk_crcs(p).empty());
  }

  // Rot one arena byte behind the frozen views: verification notices.
  ASSERT_FALSE(buffer.runs(0).empty());
  const ShuffleRun& run = buffer.runs(0).front();
  ASSERT_FALSE(run.empty());
  char* byte = const_cast<char*>(run[0].value.data());
  *byte ^= 0x01;
  Status verify = buffer.VerifyPartition(0);
  ASSERT_FALSE(verify.ok());
  EXPECT_TRUE(verify.IsCorruption());
  EXPECT_TRUE(buffer.VerifyPartition(1).ok());  // other partition intact
  *byte ^= 0x01;
  EXPECT_TRUE(buffer.VerifyPartition(0).ok());
}

TEST(ShuffleChecksumTest, DisabledChecksumSkipsSumsAndVerification) {
  ShuffleBuffer buffer(1, 1 << 20, nullptr, /*checksum=*/false);
  ASSERT_TRUE(buffer.Add(0, "k", "v").ok());
  ASSERT_TRUE(buffer.Finish().ok());
  EXPECT_FALSE(buffer.checksummed());
  EXPECT_TRUE(buffer.chunk_crcs(0).empty());
  EXPECT_EQ(buffer.stats().checksummed_bytes, 0);
  EXPECT_TRUE(buffer.VerifyPartition(0).ok());
}

// --- Lost-map-output re-execution ---

TEST(MapReduceNodeFailureTest, CrashedNodeMapOutputsAreReExecuted) {
  auto splits = WordSplits(8);
  JobConfig clean;
  clean.num_nodes = 4;
  auto baseline = RunWordCount(clean, splits).ValueOrDie();

  FaultInjector injector(5);
  // Node 1 is dead for the job's fetch phase (attempt 0 = the heartbeat
  // epoch the job master observes).
  injector.ArmSchedule(kFaultNodeCrash, /*key=*/1, {0});
  JobConfig cfg;
  cfg.num_nodes = 4;
  cfg.fault_injector = &injector;
  auto result = RunWordCount(cfg, splits).ValueOrDie();

  // Round-robin placement: splits 1 and 5 ran on node 1 and must be
  // re-executed; the output is identical to the crash-free run.
  EXPECT_EQ(result.reducer_outputs, baseline.reducer_outputs);
  EXPECT_EQ(result.counters.Get("map_tasks_reexecuted"), 2);
  EXPECT_EQ(result.counters.Get("map_outputs_lost_to_dead_nodes"), 2);
  EXPECT_EQ(result.counters.Get("map_output_records"),
            result.counters.Get("reduce_shuffle_records"));

  // The re-executed tasks record the live node they moved to.
  for (const auto& task : result.tasks) {
    if (task.type != TaskRecord::Type::kMap) continue;
    EXPECT_GE(task.node, 0);
    if (task.index == 1 || task.index == 5) {
      EXPECT_NE(task.node, 1);
    } else {
      EXPECT_EQ(task.node, task.index % 4);
    }
  }
}

TEST(MapReduceNodeFailureTest, InjectedFetchFailuresForceReExecution) {
  auto splits = WordSplits(6);
  JobConfig clean;
  auto baseline = RunWordCount(clean, splits).ValueOrDie();

  FaultInjector injector(5);
  // Map 3's output is lost at fetch epochs 0 and 1; the second
  // re-execution (epoch 2) finally serves it.
  injector.ArmSchedule(kFaultShuffleFetch, /*key=*/3, {0, 1});
  JobConfig cfg;
  cfg.num_nodes = 3;
  cfg.max_map_reexecutions = 2;
  cfg.fault_injector = &injector;
  auto result = RunWordCount(cfg, splits).ValueOrDie();
  EXPECT_EQ(result.reducer_outputs, baseline.reducer_outputs);
  EXPECT_EQ(result.counters.Get("map_tasks_reexecuted"), 2);
  EXPECT_EQ(result.counters.Get("shuffle_fetch_corruptions"), 2);
}

TEST(MapReduceNodeFailureTest, ExceedingMaxReExecutionsFailsTheJob) {
  FaultInjector injector(5);
  injector.ArmSchedule(kFaultShuffleFetch, /*key=*/2, {0, 1, 2});
  JobConfig cfg;
  cfg.num_nodes = 3;
  cfg.max_map_reexecutions = 2;  // third loss is one too many
  cfg.fault_injector = &injector;
  auto result = RunWordCount(cfg, WordSplits(4));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

TEST(MapReduceNodeFailureTest, AllNodesDeadFailsTheJob) {
  FaultInjector injector(5);
  for (int n = 0; n < 2; ++n) {
    injector.ArmSchedule(kFaultNodeCrash, n, {0});
  }
  JobConfig cfg;
  cfg.num_nodes = 2;
  cfg.fault_injector = &injector;
  auto result = RunWordCount(cfg, WordSplits(4));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIOError());
}

TEST(MapReduceNodeFailureTest, PreferredNodesPinPlacement) {
  auto splits = WordSplits(6);
  for (auto& s : splits) s.preferred_node = 2;
  JobConfig cfg;
  cfg.num_nodes = 4;
  auto result = RunWordCount(cfg, splits).ValueOrDie();
  for (const auto& task : result.tasks) {
    if (task.type == TaskRecord::Type::kMap) EXPECT_EQ(task.node, 2);
  }
}

TEST(MapReduceNodeFailureTest, DeterministicUnderNodeCrashAndFetchFaults) {
  auto splits = WordSplits(12);
  JobConfig clean;
  auto baseline = RunWordCount(clean, splits).ValueOrDie();

  auto chaos_run = [&] {
    FaultInjector injector(99);
    injector.ArmSchedule(kFaultNodeCrash, 0, {0});
    injector.ArmSchedule(kFaultShuffleFetch, 7, {0});
    JobConfig cfg;
    cfg.max_parallel_tasks = 8;
    cfg.num_nodes = 4;
    cfg.fault_injector = &injector;
    return RunWordCount(cfg, splits).ValueOrDie();
  };
  JobResult first = chaos_run();
  JobResult second = chaos_run();
  EXPECT_EQ(first.reducer_outputs, second.reducer_outputs);
  EXPECT_EQ(first.counters.values(), second.counters.values());
  EXPECT_EQ(first.reducer_outputs, baseline.reducer_outputs);
  EXPECT_GT(first.counters.Get("map_tasks_reexecuted"), 0);
}

TEST(MapReduceNodeFailureTest, NoNodeModelStillVerifiesChecksums) {
  // Default config: no node model, but checksum verification runs and
  // the partitions-verified counter reflects it.
  JobConfig cfg;
  auto result = RunWordCount(cfg, WordSplits(4)).ValueOrDie();
  EXPECT_GT(result.counters.Get("shuffle_partitions_verified"), 0);
  EXPECT_GT(result.counters.Get("shuffle_checksummed_bytes"), 0);
  EXPECT_EQ(result.counters.Get("map_tasks_reexecuted"), 0);

  // Opting out removes both the sums and the verification work.
  JobConfig off;
  off.checksum_shuffle = false;
  auto plain = RunWordCount(off, WordSplits(4)).ValueOrDie();
  EXPECT_EQ(plain.counters.Get("shuffle_partitions_verified"), 0);
  EXPECT_EQ(plain.counters.Get("shuffle_checksummed_bytes"), 0);
  EXPECT_EQ(plain.reducer_outputs, result.reducer_outputs);
}

TEST(MapReduceNodeFailureTest, ValidateConfigRejectsNegativeKnobs) {
  JobConfig bad_nodes;
  bad_nodes.num_nodes = -1;
  ASSERT_FALSE(RunWordCount(bad_nodes, WordSplits(2)).ok());

  JobConfig bad_reexec;
  bad_reexec.max_map_reexecutions = -1;
  ASSERT_FALSE(RunWordCount(bad_reexec, WordSplits(2)).ok());
}

}  // namespace
}  // namespace gesall

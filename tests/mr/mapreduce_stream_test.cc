// Tests for streamed input splits (InputSplit::stream): the map task
// drives emits through its context instead of materializing the split's
// bytes, the path the fused streaming pipeline rounds ride on.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "mr/mapreduce.h"
#include "util/fault_injection.h"

namespace gesall {
namespace {

class WordCountMapper : public Mapper {
 public:
  Status Map(const std::string& input, MapContext* ctx) override {
    std::istringstream in(input);
    std::string word;
    while (in >> word) ctx->Emit(word, "1");
    return Status::OK();
  }
};

class SumReducer : public Reducer {
 public:
  Status Reduce(const std::string& key,
                const std::vector<std::string>& values,
                ReduceContext* ctx) override {
    ctx->Emit(key + ":" + std::to_string(values.size()));
    return Status::OK();
  }
};

// A streamed split equivalent to InlineSplit(data) under WordCountMapper:
// same emits, plus the map_input_bytes counter the engine folds into the
// task record. `attempts` (optional) counts stream invocations.
InputSplit StreamedWordSplit(std::string data,
                             std::atomic<int>* attempts = nullptr) {
  InputSplit split;
  split.stream = [data = std::move(data), attempts](MapContext* ctx) {
    if (attempts != nullptr) attempts->fetch_add(1);
    ctx->IncrementCounter("map_input_bytes",
                          static_cast<int64_t>(data.size()));
    std::istringstream in(data);
    std::string word;
    while (in >> word) ctx->Emit(word, "1");
    return Status::OK();
  };
  return split;
}

MapperFactory NeverCalledMapper() {
  return [] {
    class Fail : public Mapper {
     public:
      Status Map(const std::string&, MapContext*) override {
        return Status::Internal("mapper invoked for a streamed split");
      }
    };
    return std::make_unique<Fail>();
  };
}

std::map<std::string, int> CollectCounts(const JobResult& result) {
  std::map<std::string, int> counts;
  for (const auto& out : result.reducer_outputs) {
    for (const auto& v : out) {
      auto colon = v.rfind(':');
      counts[v.substr(0, colon)] = std::stoi(v.substr(colon + 1));
    }
  }
  return counts;
}

TEST(MapReduceStreamTest, StreamedSplitMatchesLoadedSplit) {
  const std::vector<std::string> data = {"a b a", "b c", "a"};
  std::vector<InputSplit> loaded, streamed;
  for (const auto& d : data) {
    loaded.push_back(InlineSplit(d));
    streamed.push_back(StreamedWordSplit(d));
  }
  MapReduceJob job;
  auto from_loaded =
      job.Run(
             loaded, [] { return std::make_unique<WordCountMapper>(); },
             [] { return std::make_unique<SumReducer>(); })
          .ValueOrDie();
  MapReduceJob job2;
  auto from_streamed = job2.Run(streamed, NeverCalledMapper(),
                                [] { return std::make_unique<SumReducer>(); })
                           .ValueOrDie();
  EXPECT_EQ(from_streamed.reducer_outputs, from_loaded.reducer_outputs);
  EXPECT_EQ(from_streamed.counters.Get("map_output_records"),
            from_loaded.counters.Get("map_output_records"));
  EXPECT_EQ(from_streamed.counters.Get("reduce_shuffle_records"),
            from_loaded.counters.Get("reduce_shuffle_records"));
}

TEST(MapReduceStreamTest, InputBytesComeFromCounter) {
  std::vector<InputSplit> splits = {StreamedWordSplit("alpha beta"),
                                    StreamedWordSplit("gamma")};
  MapReduceJob job;
  auto result = job.Run(splits, NeverCalledMapper(),
                        [] { return std::make_unique<SumReducer>(); })
                    .ValueOrDie();
  int64_t input_bytes = 0;
  for (const auto& task : result.tasks) {
    if (task.type == TaskRecord::Type::kMap) input_bytes += task.input_bytes;
  }
  EXPECT_EQ(input_bytes, 10 + 5);
  EXPECT_EQ(result.counters.Get("map_input_bytes"), 10 + 5);
}

TEST(MapReduceStreamTest, MapOnlyStreamedSplit) {
  std::vector<InputSplit> splits = {StreamedWordSplit("x y"),
                                    StreamedWordSplit("z")};
  MapReduceJob job;
  auto result = job.RunMapOnly(splits, NeverCalledMapper()).ValueOrDie();
  ASSERT_EQ(result.reducer_outputs.size(), 2u);
  EXPECT_EQ(result.reducer_outputs[0], (std::vector<std::string>{"1", "1"}));
  EXPECT_EQ(result.reducer_outputs[1], (std::vector<std::string>{"1"}));
  EXPECT_EQ(result.counters.Get("map_input_bytes"), 3 + 1);
}

TEST(MapReduceStreamTest, RetriedStreamRestartsFromScratch) {
  FaultInjector injector(1);
  // Every map task fails its first attempt after the stream ran; the
  // retry must re-run the stream from the beginning with no residue.
  ASSERT_TRUE(injector.ArmFirstAttempts(kFaultMapAttempt, 1).ok());
  std::atomic<int> attempts{0};
  std::vector<InputSplit> splits = {StreamedWordSplit("a b a", &attempts),
                                    StreamedWordSplit("b c", &attempts)};
  JobConfig cfg;
  cfg.max_task_attempts = 2;
  cfg.fault_injector = &injector;
  MapReduceJob job(cfg);
  auto result = job.Run(splits, NeverCalledMapper(),
                        [] { return std::make_unique<SumReducer>(); })
                    .ValueOrDie();
  EXPECT_EQ(attempts.load(), 4);  // two splits, two attempts each
  EXPECT_EQ(result.counters.Get("map_task_retries"), 2);
  auto counts = CollectCounts(result);
  EXPECT_EQ(counts["a"], 2);
  EXPECT_EQ(counts["b"], 2);
  EXPECT_EQ(counts["c"], 1);
  // Failed attempts leave no counter residue.
  EXPECT_EQ(result.counters.Get("map_output_records"), 5);
  EXPECT_EQ(result.counters.Get("map_input_bytes"), 5 + 3);
}

TEST(MapReduceStreamTest, StreamErrorFailsJob) {
  InputSplit bad;
  bad.stream = [](MapContext*) {
    return Status::Corruption("stream source truncated");
  };
  std::vector<InputSplit> splits;
  splits.push_back(std::move(bad));
  MapReduceJob job;
  auto result = job.Run(splits, NeverCalledMapper(),
                        [] { return std::make_unique<SumReducer>(); });
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("truncated"), std::string::npos);
}

}  // namespace
}  // namespace gesall

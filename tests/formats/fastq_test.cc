#include "formats/fastq.h"

#include <gtest/gtest.h>

namespace gesall {
namespace {

TEST(FastqTest, RoundTrip) {
  std::vector<FastqRecord> records = {
      {"r1", "ACGT", "IIII"},
      {"r2", "GGCC", "!!II"},
  };
  auto parsed = ParseFastq(WriteFastq(records)).ValueOrDie();
  EXPECT_EQ(parsed, records);
}

TEST(FastqTest, RejectsLengthMismatch) {
  EXPECT_FALSE(ParseFastq("@r\nACGT\n+\nII\n").ok());
}

TEST(FastqTest, RejectsMissingAt) {
  EXPECT_FALSE(ParseFastq("r\nACGT\n+\nIIII\n").ok());
}

TEST(FastqTest, RejectsTruncatedRecord) {
  EXPECT_FALSE(ParseFastq("@r\nACGT\n").ok());
}

TEST(FastqTest, EmptyInputYieldsNoRecords) {
  EXPECT_TRUE(ParseFastq("").ValueOrDie().empty());
}

TEST(FastqTest, InterleaveValidPairs) {
  std::vector<FastqRecord> m1 = {{"p0", "AAAA", "IIII"},
                                 {"p1", "CCCC", "IIII"}};
  std::vector<FastqRecord> m2 = {{"p0", "TTTT", "IIII"},
                                 {"p1", "GGGG", "IIII"}};
  auto inter = InterleavePairs(m1, m2).ValueOrDie();
  ASSERT_EQ(inter.size(), 4u);
  EXPECT_EQ(inter[0].sequence, "AAAA");
  EXPECT_EQ(inter[1].sequence, "TTTT");
  EXPECT_EQ(inter[2].sequence, "CCCC");
  EXPECT_EQ(inter[3].sequence, "GGGG");
}

TEST(FastqTest, InterleaveRejectsNameMismatch) {
  std::vector<FastqRecord> m1 = {{"p0", "AAAA", "IIII"}};
  std::vector<FastqRecord> m2 = {{"p9", "TTTT", "IIII"}};
  EXPECT_TRUE(InterleavePairs(m1, m2).status().IsCorruption());
}

TEST(FastqTest, InterleaveRejectsCountMismatch) {
  std::vector<FastqRecord> m1 = {{"p0", "AAAA", "IIII"}};
  std::vector<FastqRecord> m2;
  EXPECT_TRUE(InterleavePairs(m1, m2).status().IsInvalidArgument());
}

}  // namespace
}  // namespace gesall

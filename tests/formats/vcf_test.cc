#include "formats/vcf.h"

#include <gtest/gtest.h>

namespace gesall {
namespace {

VariantRecord Snp(int chrom, int64_t pos, const char* ref, const char* alt) {
  VariantRecord v;
  v.chrom = chrom;
  v.pos = pos;
  v.ref = ref;
  v.alt = alt;
  v.qual = 50;
  return v;
}

TEST(VariantTest, SnpVsIndel) {
  EXPECT_TRUE(Snp(0, 1, "A", "G").IsSnp());
  EXPECT_TRUE(Snp(0, 1, "A", "AT").IsIndel());
  EXPECT_TRUE(Snp(0, 1, "AT", "A").IsIndel());
}

TEST(VariantTest, TransitionClassification) {
  EXPECT_TRUE(Snp(0, 1, "A", "G").IsTransition());
  EXPECT_TRUE(Snp(0, 1, "C", "T").IsTransition());
  EXPECT_FALSE(Snp(0, 1, "A", "T").IsTransition());
  EXPECT_FALSE(Snp(0, 1, "A", "C").IsTransition());
  EXPECT_FALSE(Snp(0, 1, "AT", "A").IsTransition());  // indel never
}

TEST(VariantTest, KeyIdentity) {
  EXPECT_EQ(Snp(1, 100, "A", "G").Key(), Snp(1, 100, "A", "G").Key());
  EXPECT_NE(Snp(1, 100, "A", "G").Key(), Snp(1, 100, "A", "C").Key());
  EXPECT_NE(Snp(1, 100, "A", "G").Key(), Snp(2, 100, "A", "G").Key());
}

TEST(VariantTest, Ordering) {
  EXPECT_TRUE(VariantLess(Snp(0, 5, "A", "G"), Snp(0, 6, "A", "G")));
  EXPECT_TRUE(VariantLess(Snp(0, 5, "A", "G"), Snp(1, 1, "A", "G")));
  EXPECT_FALSE(VariantLess(Snp(0, 5, "A", "G"), Snp(0, 5, "A", "G")));
}

TEST(VariantStatsTest, EmptySet) {
  auto s = ComputeVariantSetStats({});
  EXPECT_EQ(s.count, 0);
}

TEST(VariantStatsTest, TiTvAndHetHom) {
  std::vector<VariantRecord> vs;
  auto add = [&](const char* ref, const char* alt, Genotype gt) {
    VariantRecord v = Snp(0, static_cast<int64_t>(vs.size()), ref, alt);
    v.genotype = gt;
    v.mq = 60;
    v.dp = 30;
    vs.push_back(v);
  };
  add("A", "G", Genotype::kHet);   // transition
  add("C", "T", Genotype::kHet);   // transition
  add("A", "T", Genotype::kHomAlt);  // transversion
  add("A", "AT", Genotype::kHet);  // indel, ignored in Ti/Tv

  auto s = ComputeVariantSetStats(vs);
  EXPECT_EQ(s.count, 4);
  EXPECT_EQ(s.snps, 3);
  EXPECT_EQ(s.indels, 1);
  EXPECT_DOUBLE_EQ(s.titv_ratio, 2.0);
  EXPECT_DOUBLE_EQ(s.het_hom_ratio, 3.0);
  EXPECT_DOUBLE_EQ(s.mean_mq, 60.0);
  EXPECT_DOUBLE_EQ(s.mean_dp, 30.0);
}

TEST(VcfTextTest, RendersHeaderAndRows) {
  std::vector<VariantRecord> vs = {Snp(0, 99, "A", "G")};
  std::string text = WriteVcfText(vs, {"chr1"});
  EXPECT_NE(text.find("#CHROM"), std::string::npos);
  EXPECT_NE(text.find("chr1\t100\tA\tG"), std::string::npos);
}

}  // namespace
}  // namespace gesall

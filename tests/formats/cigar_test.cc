#include "formats/cigar.h"

#include <gtest/gtest.h>

namespace gesall {
namespace {

TEST(CigarTest, ParseAndRender) {
  auto c = ParseCigar("5S90M3I2D10M5H").ValueOrDie();
  ASSERT_EQ(c.size(), 6u);
  EXPECT_EQ(c[0], (CigarOp{'S', 5}));
  EXPECT_EQ(c[2], (CigarOp{'I', 3}));
  EXPECT_EQ(CigarToString(c), "5S90M3I2D10M5H");
}

TEST(CigarTest, StarIsEmpty) {
  EXPECT_TRUE(ParseCigar("*").ValueOrDie().empty());
  EXPECT_EQ(CigarToString({}), "*");
}

TEST(CigarTest, RejectsMalformed) {
  EXPECT_FALSE(ParseCigar("M5").ok());    // op before length
  EXPECT_FALSE(ParseCigar("5").ok());     // dangling length
  EXPECT_FALSE(ParseCigar("5Q").ok());    // invalid op
  EXPECT_FALSE(ParseCigar("0M").ok());    // zero-length op
}

TEST(CigarTest, ReferenceLength) {
  auto c = ParseCigar("5S90M3I2D10M").ValueOrDie();
  // M(90) + D(2) + M(10) consume reference.
  EXPECT_EQ(CigarReferenceLength(c), 102);
}

TEST(CigarTest, QueryLength) {
  auto c = ParseCigar("5S90M3I2D10M").ValueOrDie();
  // S(5) + M(90) + I(3) + M(10) consume the read.
  EXPECT_EQ(CigarQueryLength(c), 108);
}

TEST(CigarTest, ClipLengths) {
  auto c = ParseCigar("3H5S90M4S").ValueOrDie();
  EXPECT_EQ(LeadingClip(c), 8);
  EXPECT_EQ(TrailingClip(c), 4);
  auto unclipped = ParseCigar("100M").ValueOrDie();
  EXPECT_EQ(LeadingClip(unclipped), 0);
  EXPECT_EQ(TrailingClip(unclipped), 0);
}

TEST(CigarTest, UnclippedFivePrimeForward) {
  // Forward read: 5' end is POS minus leading clip (paper Fig. 3).
  auto c = ParseCigar("5S95M").ValueOrDie();
  EXPECT_EQ(UnclippedFivePrime(1000, c, /*reverse=*/false), 995);
}

TEST(CigarTest, UnclippedFivePrimeReverse) {
  // Reverse read: 5' end is alignment end plus trailing clip.
  auto c = ParseCigar("95M5S").ValueOrDie();
  // end = 1000 + 95 - 1 = 1094, + 5 clip = 1099.
  EXPECT_EQ(UnclippedFivePrime(1000, c, /*reverse=*/true), 1099);
}

TEST(CigarTest, UnclippedFivePrimeNoClipEqualsPos) {
  auto c = ParseCigar("100M").ValueOrDie();
  EXPECT_EQ(UnclippedFivePrime(500, c, false), 500);
  EXPECT_EQ(UnclippedFivePrime(500, c, true), 599);
}

// Property: for any cigar, clipping only ever moves the forward 5' end
// left and the reverse 5' end right.
class CigarClipProperty : public testing::TestWithParam<const char*> {};

TEST_P(CigarClipProperty, FivePrimeOrdering) {
  auto c = ParseCigar(GetParam()).ValueOrDie();
  EXPECT_LE(UnclippedFivePrime(1000, c, false), 1000);
  EXPECT_GE(UnclippedFivePrime(1000, c, true),
            1000 + CigarReferenceLength(c) - 1 - 0);
}

INSTANTIATE_TEST_SUITE_P(Cigars, CigarClipProperty,
                         testing::Values("100M", "10S90M", "90M10S",
                                         "5S45M5I45M5S", "20S30M2D50M",
                                         "1S98M1S"));

}  // namespace
}  // namespace gesall

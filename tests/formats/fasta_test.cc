#include "formats/fasta.h"

#include <gtest/gtest.h>

namespace gesall {
namespace {

ReferenceGenome TwoChromGenome() {
  ReferenceGenome g;
  g.chromosomes.push_back({"chr1", "ACGTACGTAC"});
  g.chromosomes.push_back({"chr2", "TTTTGGGGCC"});
  return g;
}

TEST(FastaTest, RoundTrip) {
  ReferenceGenome g = TwoChromGenome();
  auto parsed = ParseFasta(WriteFasta(g)).ValueOrDie();
  ASSERT_EQ(parsed.chromosomes.size(), 2u);
  EXPECT_EQ(parsed.chromosomes[0].name, "chr1");
  EXPECT_EQ(parsed.chromosomes[0].sequence, "ACGTACGTAC");
  EXPECT_EQ(parsed.chromosomes[1].sequence, "TTTTGGGGCC");
}

TEST(FastaTest, WrapsLongLines) {
  ReferenceGenome g;
  g.chromosomes.push_back({"chr1", std::string(150, 'A')});
  std::string text = WriteFasta(g);
  // 150 bases -> 3 sequence lines of <= 60 chars.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
  auto parsed = ParseFasta(text).ValueOrDie();
  EXPECT_EQ(parsed.chromosomes[0].sequence.size(), 150u);
}

TEST(FastaTest, RejectsInvalidBase) {
  EXPECT_FALSE(ParseFasta(">x\nACGZ\n").ok());
}

TEST(FastaTest, RejectsSequenceBeforeHeader) {
  EXPECT_FALSE(ParseFasta("ACGT\n").ok());
}

TEST(FastaTest, LowercaseNormalized) {
  auto g = ParseFasta(">c\nacgt\n").ValueOrDie();
  EXPECT_EQ(g.chromosomes[0].sequence, "ACGT");
}

TEST(FastaTest, HeaderNameStopsAtWhitespace) {
  auto g = ParseFasta(">chr9 extra description\nAC\n").ValueOrDie();
  EXPECT_EQ(g.chromosomes[0].name, "chr9");
}

TEST(ReferenceGenomeTest, FindChromosome) {
  ReferenceGenome g = TwoChromGenome();
  EXPECT_EQ(g.FindChromosome("chr2"), 1);
  EXPECT_EQ(g.FindChromosome("chrX"), -1);
}

TEST(ReferenceGenomeTest, TotalLength) {
  EXPECT_EQ(TwoChromGenome().TotalLength(), 20);
}

TEST(ReferenceGenomeTest, RegionIntersection) {
  ReferenceGenome g = TwoChromGenome();
  g.centromeres.push_back({0, 4, 6});
  EXPECT_TRUE(g.InCentromere(0, 4));
  EXPECT_TRUE(g.InCentromere(0, 5));
  EXPECT_FALSE(g.InCentromere(0, 6));  // half-open end
  EXPECT_FALSE(g.InCentromere(1, 4));
  EXPECT_TRUE(g.InCentromere(0, 0, 5));  // [0,5) touches [4,6)
  EXPECT_FALSE(g.InCentromere(0, 0, 4));
}

TEST(SequenceTest, ReverseComplement) {
  EXPECT_EQ(ReverseComplement("ACGT"), "ACGT");
  EXPECT_EQ(ReverseComplement("AACC"), "GGTT");
  EXPECT_EQ(ReverseComplement("ANT"), "ANT");
  EXPECT_EQ(ReverseComplement(""), "");
}

TEST(SequenceTest, ComplementBase) {
  EXPECT_EQ(ComplementBase('A'), 'T');
  EXPECT_EQ(ComplementBase('T'), 'A');
  EXPECT_EQ(ComplementBase('G'), 'C');
  EXPECT_EQ(ComplementBase('C'), 'G');
  EXPECT_EQ(ComplementBase('N'), 'N');
}

}  // namespace
}  // namespace gesall

#include "formats/sam.h"

#include <gtest/gtest.h>

namespace gesall {
namespace {

SamHeader TestHeader() {
  SamHeader h;
  h.refs = {{"chr1", 10000}, {"chr2", 5000}};
  h.sort_order = "coordinate";
  h.read_groups = {{"rg1", "sample1", "lib1"}};
  h.programs = {"bwa"};
  return h;
}

SamRecord TestRecord() {
  SamRecord r;
  r.qname = "read7";
  r.flag = sam_flags::kPaired | sam_flags::kFirstOfPair;
  r.ref_id = 0;
  r.pos = 99;  // renders as 100 in SAM text
  r.mapq = 60;
  r.cigar = ParseCigar("5S95M").ValueOrDie();
  r.mate_ref_id = 0;
  r.mate_pos = 349;
  r.tlen = 350;
  r.seq = std::string(100, 'A');
  r.qual = std::string(100, 'I');
  r.SetTag("RG", 'Z', "rg1");
  r.SetTag("NM", 'i', "2");
  return r;
}

TEST(SamHeaderTest, RoundTrip) {
  SamHeader h = TestHeader();
  auto parsed = ParseSamHeader(WriteSamHeader(h)).ValueOrDie();
  EXPECT_EQ(parsed, h);
}

TEST(SamHeaderTest, FindRef) {
  SamHeader h = TestHeader();
  EXPECT_EQ(h.FindRef("chr2"), 1);
  EXPECT_EQ(h.FindRef("chrM"), -1);
}

TEST(SamRecordTest, LineRoundTrip) {
  SamHeader h = TestHeader();
  SamRecord r = TestRecord();
  std::string line = WriteSamLine(r, h);
  auto parsed = ParseSamLine(line, h).ValueOrDie();
  EXPECT_EQ(parsed, r);
}

TEST(SamRecordTest, OneBasedPositionInText) {
  SamHeader h = TestHeader();
  std::string line = WriteSamLine(TestRecord(), h);
  EXPECT_NE(line.find("\t100\t"), std::string::npos);
}

TEST(SamRecordTest, MateSameRefRendersEquals) {
  SamHeader h = TestHeader();
  std::string line = WriteSamLine(TestRecord(), h);
  EXPECT_NE(line.find("\t=\t"), std::string::npos);
}

TEST(SamRecordTest, UnmappedRendersStar) {
  SamHeader h = TestHeader();
  SamRecord r;
  r.qname = "u";
  r.flag = sam_flags::kUnmapped;
  r.seq = "ACGT";
  r.qual = "IIII";
  std::string line = WriteSamLine(r, h);
  auto parsed = ParseSamLine(line, h).ValueOrDie();
  EXPECT_EQ(parsed.ref_id, -1);
  EXPECT_TRUE(parsed.IsUnmapped());
  EXPECT_TRUE(parsed.cigar.empty());
}

TEST(SamRecordTest, FlagHelpers) {
  SamRecord r;
  r.flag = sam_flags::kPaired | sam_flags::kReverse | sam_flags::kDuplicate;
  EXPECT_TRUE(r.IsPaired());
  EXPECT_TRUE(r.IsReverse());
  EXPECT_TRUE(r.IsDuplicate());
  EXPECT_FALSE(r.IsUnmapped());
  r.SetFlag(sam_flags::kDuplicate, false);
  EXPECT_FALSE(r.IsDuplicate());
}

TEST(SamRecordTest, Tags) {
  SamRecord r = TestRecord();
  EXPECT_EQ(r.GetTag("RG"), "rg1");
  EXPECT_EQ(r.GetIntTag("NM"), 2);
  EXPECT_FALSE(r.GetTag("XX").has_value());
  r.SetTag("NM", 'i', "5");  // replace
  EXPECT_EQ(r.GetIntTag("NM"), 5);
  EXPECT_EQ(r.tags.size(), 2u);
}

TEST(SamRecordTest, AlignmentEnd) {
  SamRecord r = TestRecord();
  EXPECT_EQ(r.AlignmentEnd(), 99 + 95);
}

TEST(SamRecordTest, UnclippedFivePrime) {
  SamRecord r = TestRecord();  // 5S95M at pos 99, forward
  EXPECT_EQ(r.UnclippedFivePrimePos(), 94);
  r.SetFlag(sam_flags::kReverse, true);
  r.cigar = ParseCigar("95M5S").ValueOrDie();
  EXPECT_EQ(r.UnclippedFivePrimePos(), 99 + 95 - 1 + 5);
}

TEST(SamRecordTest, BaseQualityScoreIgnoresLowQuality) {
  SamRecord r;
  r.qual = "!!II";  // phred 0,0,40,40; only >= 15 count
  EXPECT_EQ(r.BaseQualityScore(), 80);
}

TEST(SamTextTest, FullFileRoundTrip) {
  SamHeader h = TestHeader();
  std::vector<SamRecord> records = {TestRecord(), TestRecord()};
  records[1].qname = "read8";
  records[1].pos = 200;
  auto [ph, pr] = ParseSamText(WriteSamText(h, records)).ValueOrDie();
  EXPECT_EQ(ph, h);
  EXPECT_EQ(pr, records);
}

TEST(SamTextTest, RejectsUnknownReference) {
  SamHeader h = TestHeader();
  std::string line = "r\t0\tchrZ\t1\t0\t*\t*\t0\t0\tA\tI";
  EXPECT_TRUE(ParseSamLine(line, h).status().IsCorruption());
}

TEST(SamTextTest, RejectsShortLine) {
  SamHeader h = TestHeader();
  EXPECT_FALSE(ParseSamLine("a\tb\tc", h).ok());
}

}  // namespace
}  // namespace gesall

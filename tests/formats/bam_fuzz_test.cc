// Randomized round-trip and corruption tests for the BAM codec and the
// SAM text codec, sweeping edge-case field combinations.

#include <gtest/gtest.h>

#include "formats/bam.h"
#include "util/rng.h"

namespace gesall {
namespace {

SamHeader FuzzHeader() {
  SamHeader h;
  h.refs = {{"chr1", 1'000'000}, {"chr2", 2'000'000}, {"chrM", 16'569}};
  h.read_groups = {{"rg-1", "sample one", "lib/1"}};
  h.programs = {"bwa", "gesall"};
  return h;
}

SamRecord RandomRecord(Rng& rng) {
  static const char* kCigars[] = {"*",          "100M",      "5S95M",
                                  "95M5S",      "50M2I48M",  "40M3D60M",
                                  "10H80M10S",  "1M",        "30S40M30S"};
  SamRecord r;
  // Names with separators and unusual characters ('!'..'z': no tabs).
  r.qname = "read";
  for (int i = 0; i < 3; ++i) {
    r.qname += std::string(1, static_cast<char>('!' + rng.Uniform(90)));
  }
  r.qname += std::to_string(rng.Next());
  r.flag = static_cast<uint16_t>(rng.Uniform(1 << 12));
  bool unmapped = (r.flag & sam_flags::kUnmapped) != 0;
  if (unmapped) {
    r.ref_id = -1;
    r.pos = -1;
    r.cigar = {};
    r.mapq = 0;
  } else {
    r.ref_id = static_cast<int32_t>(rng.Uniform(3));
    r.pos = static_cast<int64_t>(rng.Uniform(2'000'000));
    r.mapq = static_cast<int>(rng.Uniform(61));
    r.cigar =
        ParseCigar(kCigars[rng.Uniform(std::size(kCigars))]).ValueOrDie();
  }
  r.mate_ref_id = static_cast<int32_t>(rng.Uniform(4)) - 1;
  r.mate_pos = static_cast<int64_t>(rng.Uniform(2'000'000)) - 1;
  r.tlen = static_cast<int64_t>(rng.Uniform(2000)) - 1000;
  size_t seq_len = rng.Uniform(3) == 0 ? 0 : 50 + rng.Uniform(100);
  r.seq.resize(seq_len);
  for (auto& c : r.seq) c = "ACGTN"[rng.Uniform(5)];
  r.qual.resize(seq_len);
  for (auto& c : r.qual) c = static_cast<char>(33 + rng.Uniform(60));
  int n_tags = static_cast<int>(rng.Uniform(6));
  for (int t = 0; t < n_tags; ++t) {
    std::string key(1, static_cast<char>('A' + rng.Uniform(26)));
    key += static_cast<char>('A' + rng.Uniform(26));
    r.SetTag(key, "ZifA"[rng.Uniform(4)],
             "value-" + std::to_string(rng.Uniform(1000)));
  }
  return r;
}

TEST(BamFuzzTest, BinaryRoundTripRandomRecords) {
  Rng rng(2024);
  for (int trial = 0; trial < 500; ++trial) {
    SamRecord r = RandomRecord(rng);
    std::string encoded = EncodeBamRecord(r);
    size_t offset = 0;
    auto decoded = DecodeBamRecord(encoded, &offset);
    ASSERT_TRUE(decoded.ok()) << trial;
    EXPECT_EQ(decoded.ValueOrDie(), r) << trial;
    EXPECT_EQ(offset, encoded.size());
  }
}

TEST(BamFuzzTest, WholeFileRoundTripRandomRecords) {
  Rng rng(7);
  SamHeader h = FuzzHeader();
  std::vector<SamRecord> records;
  for (int i = 0; i < 800; ++i) records.push_back(RandomRecord(rng));
  auto bam = WriteBam(h, records).ValueOrDie();
  auto [ph, pr] = ReadBam(bam).ValueOrDie();
  EXPECT_EQ(ph, h);
  EXPECT_EQ(pr, records);
}

TEST(BamFuzzTest, TruncationAtEveryBoundaryDetected) {
  Rng rng(9);
  SamHeader h = FuzzHeader();
  std::vector<SamRecord> records;
  for (int i = 0; i < 50; ++i) records.push_back(RandomRecord(rng));
  auto bam = WriteBam(h, records).ValueOrDie();
  // Truncate at assorted byte positions; ReadBam must error, not crash
  // or return wrong data silently (a shorter valid prefix is impossible
  // because the trailing BGZF block is cut).
  for (size_t cut : {bam.size() - 1, bam.size() - 7, bam.size() / 2,
                     bam.size() / 3, size_t{13}}) {
    auto result = ReadBam(std::string_view(bam).substr(0, cut));
    EXPECT_FALSE(result.ok()) << cut;
  }
}

TEST(BamFuzzTest, BitFlipsDetectedOrDecodeDifferently) {
  // Flipping bits in the compressed stream must never crash; it either
  // fails decoding or (if it hits unused padding) round-trips.
  Rng rng(11);
  SamHeader h = FuzzHeader();
  std::vector<SamRecord> records;
  for (int i = 0; i < 30; ++i) records.push_back(RandomRecord(rng));
  auto bam = WriteBam(h, records).ValueOrDie();
  int failures = 0;
  for (int trial = 0; trial < 60; ++trial) {
    std::string corrupted = bam;
    size_t pos = rng.Uniform(corrupted.size());
    corrupted[pos] = static_cast<char>(corrupted[pos] ^
                                       (1 << rng.Uniform(8)));
    auto result = ReadBam(corrupted);
    if (!result.ok()) ++failures;
  }
  // zlib checksums catch nearly every flip.
  EXPECT_GT(failures, 40);
}

TEST(SamTextFuzzTest, TextRoundTripRandomRecords) {
  Rng rng(13);
  SamHeader h = FuzzHeader();
  for (int trial = 0; trial < 300; ++trial) {
    SamRecord r = RandomRecord(rng);
    // SAM text cannot carry tab/newline in names; the fuzzer avoids them
    // ('!'..'z' includes neither).
    std::string line = WriteSamLine(r, h);
    auto parsed = ParseSamLine(line, h);
    ASSERT_TRUE(parsed.ok()) << line;
    EXPECT_EQ(parsed.ValueOrDie(), r) << line;
  }
}

}  // namespace
}  // namespace gesall

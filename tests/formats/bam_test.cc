#include "formats/bam.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace gesall {
namespace {

SamHeader TestHeader() {
  SamHeader h;
  h.refs = {{"chr1", 100000}, {"chr2", 50000}};
  return h;
}

SamRecord MakeRecord(Rng& rng, int i) {
  SamRecord r;
  r.qname = "read" + std::to_string(i);
  r.flag = sam_flags::kPaired;
  r.ref_id = static_cast<int32_t>(rng.Uniform(2));
  r.pos = static_cast<int64_t>(rng.Uniform(50000));
  r.mapq = static_cast<int>(rng.Uniform(61));
  r.cigar = {{'M', 100}};
  r.mate_ref_id = r.ref_id;
  r.mate_pos = r.pos + 300;
  r.tlen = 400;
  r.seq = std::string(100, "ACGT"[rng.Uniform(4)]);
  r.qual = std::string(100, 'I');
  r.SetTag("AS", 'i', std::to_string(rng.Uniform(100)));
  return r;
}

TEST(BamRecordCodecTest, RoundTrip) {
  Rng rng(1);
  SamRecord r = MakeRecord(rng, 0);
  std::string encoded = EncodeBamRecord(r);
  size_t offset = 0;
  auto decoded = DecodeBamRecord(encoded, &offset).ValueOrDie();
  EXPECT_EQ(decoded, r);
  EXPECT_EQ(offset, encoded.size());
}

TEST(BamRecordCodecTest, SequentialDecode) {
  Rng rng(2);
  std::string buf;
  std::vector<SamRecord> records;
  for (int i = 0; i < 10; ++i) {
    records.push_back(MakeRecord(rng, i));
    buf += EncodeBamRecord(records.back());
  }
  size_t offset = 0;
  for (int i = 0; i < 10; ++i) {
    auto r = DecodeBamRecord(buf, &offset).ValueOrDie();
    EXPECT_EQ(r, records[i]);
  }
  EXPECT_EQ(offset, buf.size());
}

TEST(BamRecordCodecTest, TruncationDetected) {
  Rng rng(3);
  std::string buf = EncodeBamRecord(MakeRecord(rng, 0));
  buf.resize(buf.size() - 5);
  size_t offset = 0;
  EXPECT_FALSE(DecodeBamRecord(buf, &offset).ok());
}

TEST(BamFileTest, FullRoundTrip) {
  Rng rng(4);
  SamHeader h = TestHeader();
  std::vector<SamRecord> records;
  for (int i = 0; i < 500; ++i) records.push_back(MakeRecord(rng, i));
  auto bam = WriteBam(h, records).ValueOrDie();
  auto [ph, pr] = ReadBam(bam).ValueOrDie();
  EXPECT_EQ(ph, h);
  EXPECT_EQ(pr, records);
}

TEST(BamFileTest, HeaderOnlyRead) {
  SamHeader h = TestHeader();
  auto bam = WriteBam(h, {}).ValueOrDie();
  EXPECT_EQ(ReadBamHeader(bam).ValueOrDie(), h);
}

TEST(BamFileTest, HeaderOccupiesFirstBlock) {
  Rng rng(5);
  SamHeader h = TestHeader();
  std::vector<SamRecord> records;
  for (int i = 0; i < 10; ++i) records.push_back(MakeRecord(rng, i));
  auto bam = WriteBam(h, records).ValueOrDie();
  auto blocks = BgzfListBlocks(bam).ValueOrDie();
  ASSERT_GE(blocks.size(), 2u);
  size_t start = BamRecordsStartOffset(bam).ValueOrDie();
  EXPECT_EQ(start, blocks[1].first);
}

TEST(BamFileTest, RecordsNeverSpanChunks) {
  // Every BGZF chunk after the header must decode as whole records — the
  // invariant Gesall's storage layer depends on (paper §3.1).
  Rng rng(6);
  SamHeader h = TestHeader();
  std::vector<SamRecord> records;
  for (int i = 0; i < 2000; ++i) records.push_back(MakeRecord(rng, i));
  auto bam = WriteBam(h, records).ValueOrDie();
  auto blocks = BgzfListBlocks(bam).ValueOrDie();
  ASSERT_GT(blocks.size(), 2u);
  size_t total = 0;
  for (size_t b = 1; b < blocks.size(); ++b) {
    auto chunk =
        BgzfDecompressBlock(std::string_view(bam).substr(blocks[b].first),
                            nullptr)
            .ValueOrDie();
    BamRecordIterator it(chunk);
    while (!it.Done()) {
      ASSERT_TRUE(it.Next().ok());
      ++total;
    }
  }
  EXPECT_EQ(total, records.size());
}

TEST(BamFileTest, EmptyFileRoundTrip) {
  auto bam = WriteBam(TestHeader(), {}).ValueOrDie();
  auto [ph, pr] = ReadBam(bam).ValueOrDie();
  EXPECT_TRUE(pr.empty());
}

TEST(BamWriterTest, RecordBeforeHeaderRejected) {
  std::string out;
  BamWriter w(&out);
  SamRecord r;
  EXPECT_TRUE(w.WriteRecord(r).IsInvalidArgument());
}

TEST(BamWriterTest, DoubleHeaderRejected) {
  std::string out;
  BamWriter w(&out);
  ASSERT_TRUE(w.WriteHeader(TestHeader()).ok());
  EXPECT_TRUE(w.WriteHeader(TestHeader()).IsInvalidArgument());
}

TEST(BamFileTest, CorruptMagicRejected) {
  auto bam = WriteBam(TestHeader(), {}).ValueOrDie();
  // Corrupt the decompressed magic by re-compressing junk as first block.
  auto junk_block = BgzfCompressBlock("NOTB0000").ValueOrDie();
  EXPECT_FALSE(ReadBamHeader(junk_block).ok());
}

}  // namespace
}  // namespace gesall

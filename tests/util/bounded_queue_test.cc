#include "util/bounded_queue.h"

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/cancel.h"

namespace gesall {
namespace {

TEST(BoundedQueueTest, FifoOrderSingleThread) {
  BoundedQueue<int> q(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.Push(i));
  int v = -1;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(q.Pop(&v));
    EXPECT_EQ(v, i);
  }
  EXPECT_FALSE(q.TryPop(&v));
}

TEST(BoundedQueueTest, TryPushFailsAtCapacity) {
  BoundedQueue<int> q(2);
  int a = 1, b = 2, c = 3;
  EXPECT_TRUE(q.TryPush(std::move(a)));
  EXPECT_TRUE(q.TryPush(std::move(b)));
  EXPECT_FALSE(q.TryPush(std::move(c)));  // full: backpressure
  int v = 0;
  EXPECT_TRUE(q.TryPop(&v));
  int d = 3;
  EXPECT_TRUE(q.TryPush(std::move(d)));
}

TEST(BoundedQueueTest, BackpressureBlocksProducerUntilConsumed) {
  BoundedQueue<int> q(1);
  EXPECT_TRUE(q.Push(0));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.Push(1));  // blocks until the consumer pops
    second_pushed.store(true);
  });
  // The producer must be stalled while the queue is full.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());
  int v = -1;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 0);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_GE(q.stats().push_stalls, 1);
}

TEST(BoundedQueueTest, CloseDrainsThenFails) {
  BoundedQueue<std::string> q(4);
  EXPECT_TRUE(q.Push("a"));
  EXPECT_TRUE(q.Push("b"));
  q.Close();
  EXPECT_FALSE(q.Push("c"));  // closed: rejected
  std::string v;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, "a");
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, "b");
  EXPECT_FALSE(q.Pop(&v));  // drained
}

TEST(BoundedQueueTest, CloseUnblocksWaitingConsumer) {
  BoundedQueue<int> q(2);
  std::atomic<bool> pop_returned{false};
  std::thread consumer([&] {
    int v;
    EXPECT_FALSE(q.Pop(&v));  // empty + closed -> false
    pop_returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pop_returned.load());
  q.Close();
  consumer.join();
  EXPECT_TRUE(pop_returned.load());
}

TEST(BoundedQueueTest, CancellationUnblocksBothEnds) {
  auto cancel = std::make_shared<CancelToken>();
  BoundedQueue<int> q(1, cancel);
  EXPECT_TRUE(q.Push(0));  // now full
  std::atomic<int> unblocked{0};
  std::thread producer([&] {
    EXPECT_FALSE(q.Push(1));  // blocked on full, released by cancel
    unblocked.fetch_add(1);
  });
  BoundedQueue<int> empty_q(1, cancel);
  std::thread consumer([&] {
    int v;
    EXPECT_FALSE(empty_q.Pop(&v));  // blocked on empty, released by cancel
    unblocked.fetch_add(1);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(unblocked.load(), 0);
  cancel->Cancel("test cancel");
  producer.join();
  consumer.join();
  EXPECT_EQ(unblocked.load(), 2);
  // A cancelled queue refuses further traffic on both ends.
  int v;
  EXPECT_FALSE(q.Pop(&v));
  EXPECT_FALSE(q.Push(2));
}

TEST(BoundedQueueTest, CancelAfterQueueDestroyedIsSafe) {
  auto cancel = std::make_shared<CancelToken>();
  { BoundedQueue<int> q(2, cancel); }
  cancel->Cancel("queue already gone");  // must not touch freed state
}

TEST(BoundedQueueTest, OnItemFiresOnceWhenItemArrives) {
  BoundedQueue<int> q(2);
  std::atomic<int> fired{0};
  q.OnItem([&] { fired.fetch_add(1); });
  EXPECT_EQ(fired.load(), 0);  // parked: queue empty
  EXPECT_TRUE(q.Push(1));
  EXPECT_EQ(fired.load(), 1);
  EXPECT_TRUE(q.Push(2));  // no second registration: no second fire
  EXPECT_EQ(fired.load(), 1);
  // With an item available, registration fires inline.
  q.OnItem([&] { fired.fetch_add(1); });
  EXPECT_EQ(fired.load(), 2);
}

TEST(BoundedQueueTest, OnSpaceFiresWhenConsumerPops) {
  BoundedQueue<int> q(1);
  EXPECT_TRUE(q.Push(1));
  std::atomic<int> fired{0};
  q.OnSpace([&] { fired.fetch_add(1); });
  EXPECT_EQ(fired.load(), 0);  // parked: queue full
  int v;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(fired.load(), 1);
  EXPECT_GE(q.stats().push_stalls, 1);
}

TEST(BoundedQueueTest, ParkedCallbacksReleasedByClose) {
  BoundedQueue<int> q(1);
  std::atomic<int> fired{0};
  q.OnItem([&] { fired.fetch_add(1); });  // parked: empty
  EXPECT_TRUE(q.Push(1));                 // fires OnItem
  q.OnSpace([&] { fired.fetch_add(1); });  // parked: full
  q.Close();                               // shutdown must unpark pumps
  EXPECT_EQ(fired.load(), 2);
}

TEST(BoundedQueueTest, ParkedCallbacksReleasedByCancel) {
  auto cancel = std::make_shared<CancelToken>();
  BoundedQueue<int> q(1, cancel);
  std::atomic<int> fired{0};
  q.OnItem([&] { fired.fetch_add(1); });
  cancel->Cancel("stop");
  EXPECT_EQ(fired.load(), 1);
  // Registrations after cancel fire inline (never park forever).
  q.OnSpace([&] { fired.fetch_add(1); });
  EXPECT_EQ(fired.load(), 2);
}

TEST(BoundedQueueTest, StatsTrackDepthAndCounts) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.Push(i));
  int v;
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(q.Pop(&v));
  BoundedQueueStats s = q.stats();
  EXPECT_EQ(s.pushed, 5);
  EXPECT_EQ(s.popped, 3);
  EXPECT_EQ(s.max_depth, 5);
}

TEST(BoundedQueueTest, TryPopStateDistinguishesEmptyDrainedCancelled) {
  BoundedQueue<int> q(2);
  int v = -1;
  EXPECT_EQ(q.TryPopState(&v), QueuePopState::kEmpty);
  EXPECT_TRUE(q.Push(7));
  EXPECT_EQ(q.TryPopState(&v), QueuePopState::kItem);
  EXPECT_EQ(v, 7);
  EXPECT_TRUE(q.Push(8));
  q.Close();
  // Closed but not drained: the queued item must still come out.
  EXPECT_EQ(q.TryPopState(&v), QueuePopState::kItem);
  EXPECT_EQ(v, 8);
  EXPECT_EQ(q.TryPopState(&v), QueuePopState::kDrained);

  auto cancel = std::make_shared<CancelToken>();
  BoundedQueue<int> aborted(2, cancel);
  EXPECT_TRUE(aborted.Push(1));
  cancel->Cancel("stop");
  EXPECT_EQ(aborted.TryPopState(&v), QueuePopState::kCancelled);
}

// Regression for the pump TOCTOU race: a consumer that checked closed()
// after a failed TryPop could observe the close issued *between* the
// two calls and terminate with the producer's final items still queued.
// TryPopState reads emptiness and closed under one lock, so a kDrained
// verdict guarantees every pushed item was already popped.
TEST(BoundedQueueTest, TryPopStateNeverDropsTailOnConcurrentClose) {
  constexpr int kRounds = 200;
  constexpr int kItems = 8;
  for (int round = 0; round < kRounds; ++round) {
    BoundedQueue<int> q(kItems);
    std::thread producer([&] {
      for (int i = 0; i < kItems; ++i) ASSERT_TRUE(q.Push(i));
      q.Close();  // the race window: close right behind the last push
    });
    int popped = 0, v = -1;
    for (;;) {
      QueuePopState st = q.TryPopState(&v);
      if (st == QueuePopState::kItem) {
        EXPECT_EQ(v, popped);
        ++popped;
      } else if (st == QueuePopState::kDrained) {
        break;
      } else {
        ASSERT_EQ(st, QueuePopState::kEmpty);
        std::this_thread::yield();
      }
    }
    producer.join();
    EXPECT_EQ(popped, kItems);  // the tail is never dropped
  }
}

// Multi-producer multi-consumer stress: every pushed value is popped
// exactly once, no deadlock on shutdown, TSan-clean.
TEST(BoundedQueueTest, MpmcStressDrainsWithoutDeadlock) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 500;
  BoundedQueue<int> q(8);
  std::atomic<int64_t> sum_popped{0};
  std::atomic<int> popped{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      int v;
      while (q.Pop(&v)) {
        sum_popped.fetch_add(v);
        popped.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  q.Close();  // consumers drain the tail, then exit
  for (auto& t : consumers) t.join();
  constexpr int64_t kTotal = kProducers * kPerProducer;
  EXPECT_EQ(popped.load(), kTotal);
  EXPECT_EQ(sum_popped.load(), kTotal * (kTotal - 1) / 2);
  EXPECT_EQ(q.stats().pushed, kTotal);
  EXPECT_EQ(q.stats().popped, kTotal);
}

// Mid-stream cancellation under concurrency: producers and consumers
// blocked at either end must all return promptly.
TEST(BoundedQueueTest, MpmcCancelMidStream) {
  auto cancel = std::make_shared<CancelToken>();
  BoundedQueue<int> q(2, cancel);
  std::vector<std::thread> threads;
  std::atomic<int> finished{0};
  for (int p = 0; p < 3; ++p) {
    threads.emplace_back([&] {
      int i = 0;
      while (q.Push(i)) ++i;  // eventually blocks, then cancel releases
      finished.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  cancel->Cancel("mid-stream");
  for (auto& t : threads) t.join();
  EXPECT_EQ(finished.load(), 3);
  int v;
  EXPECT_FALSE(q.Pop(&v));
}

}  // namespace
}  // namespace gesall

#include "util/stats.h"

#include <gtest/gtest.h>

namespace gesall {
namespace {

TEST(PhredTest, RoundTrip) {
  EXPECT_EQ(PhredFromErrorProb(0.1), 10);
  EXPECT_EQ(PhredFromErrorProb(0.01), 20);
  EXPECT_NEAR(ErrorProbFromPhred(30), 0.001, 1e-9);
  EXPECT_EQ(PhredFromErrorProb(0.0), 60);  // capped
}

TEST(FisherTest, ExtremeTableIsSignificant) {
  // Strong strand bias: all ref reads forward, all alt reads reverse.
  double p = FisherExactTwoSided(20, 0, 0, 20);
  EXPECT_LT(p, 1e-8);
}

TEST(FisherTest, BalancedTableNotSignificant) {
  double p = FisherExactTwoSided(10, 10, 10, 10);
  EXPECT_GT(p, 0.9);
}

TEST(FisherTest, KnownValue) {
  // R: fisher.test(matrix(c(1,9,11,3),2,2))$p.value = 0.002759...
  double p = FisherExactTwoSided(1, 9, 11, 3);
  EXPECT_NEAR(p, 0.002759, 0.0002);
}

TEST(FisherTest, EmptyTableIsOne) {
  EXPECT_DOUBLE_EQ(FisherExactTwoSided(0, 0, 0, 0), 1.0);
}

TEST(FisherTest, PhredScaleMonotone) {
  double weak = FisherStrandPhred(10, 8, 9, 11);
  double strong = FisherStrandPhred(20, 0, 0, 20);
  EXPECT_LT(weak, strong);
  EXPECT_GE(weak, 0.0);
}

TEST(LogisticWeightTest, PaperEndpoints) {
  // Paper: weight ~0 at mapq 30, ~1 at mapq 55 (§4.5.2).
  LogisticWeight w(30, 55);
  EXPECT_LT(w(30), 0.05);
  EXPECT_GT(w(55), 0.95);
  EXPECT_NEAR(w(42.5), 0.5, 1e-9);
  EXPECT_LT(w(0), 0.01);
  EXPECT_GT(w(60), 0.99);
}

TEST(LogisticWeightTest, Monotone) {
  LogisticWeight w(30, 55);
  double prev = -1;
  for (int q = 0; q <= 60; ++q) {
    double v = w(q);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

TEST(RunningStatsTest, MeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 4.571428, 1e-5);  // sample variance
}

TEST(RunningStatsTest, SingleValueZeroVariance) {
  RunningStats s;
  s.Add(42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

}  // namespace
}  // namespace gesall

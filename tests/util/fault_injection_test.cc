#include "util/fault_injection.h"

#include <gtest/gtest.h>

#include <vector>

namespace gesall {
namespace {

TEST(FaultInjectionTest, DisarmedInjectorNeverFails) {
  FaultInjector injector(7);
  for (int key = 0; key < 100; ++key) {
    EXPECT_FALSE(injector.ShouldFail(kFaultMapAttempt, key, 0));
    EXPECT_EQ(injector.LatencyMs(kFaultMapAttempt, key, 0), 0);
  }
  EXPECT_EQ(injector.fires(kFaultMapAttempt), 0);
}

TEST(FaultInjectionTest, ProbabilityIsDeterministicInSeed) {
  FaultInjector a(42), b(42), c(43);
  ASSERT_TRUE(a.ArmProbability(kFaultMapAttempt, 0.3).ok());
  ASSERT_TRUE(b.ArmProbability(kFaultMapAttempt, 0.3).ok());
  ASSERT_TRUE(c.ArmProbability(kFaultMapAttempt, 0.3).ok());
  int differs_from_c = 0;
  for (int key = 0; key < 1000; ++key) {
    bool fa = a.ShouldFail(kFaultMapAttempt, key, 0);
    EXPECT_EQ(fa, b.ShouldFail(kFaultMapAttempt, key, 0));
    differs_from_c += fa != c.ShouldFail(kFaultMapAttempt, key, 0);
  }
  EXPECT_GT(differs_from_c, 0);  // a different seed gives different faults
  // Empirical rate close to the armed probability.
  EXPECT_GT(a.fires(kFaultMapAttempt), 230);
  EXPECT_LT(a.fires(kFaultMapAttempt), 370);
  EXPECT_EQ(a.fires(kFaultMapAttempt), b.fires(kFaultMapAttempt));
}

TEST(FaultInjectionTest, DecisionIsPureInKeyAndAttempt) {
  FaultInjector injector(9);
  ASSERT_TRUE(injector.ArmProbability(kFaultSplitLoad, 0.5).ok());
  for (int key = 0; key < 50; ++key) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      bool first = injector.ShouldFail(kFaultSplitLoad, key, attempt);
      EXPECT_EQ(first, injector.ShouldFail(kFaultSplitLoad, key, attempt));
    }
  }
}

TEST(FaultInjectionTest, FirstAttemptsFailForEveryKey) {
  FaultInjector injector(1);
  ASSERT_TRUE(injector.ArmFirstAttempts(kFaultDfsReadReplica, 1).ok());
  for (int key = 0; key < 20; ++key) {
    EXPECT_TRUE(injector.ShouldFail(kFaultDfsReadReplica, key, 0));
    EXPECT_FALSE(injector.ShouldFail(kFaultDfsReadReplica, key, 1));
  }
  EXPECT_EQ(injector.fires(kFaultDfsReadReplica), 20);
}

TEST(FaultInjectionTest, ScheduleTargetsOneKey) {
  FaultInjector injector(1);
  injector.ArmSchedule(kFaultMapAttempt, /*key=*/3, {0, 1});
  EXPECT_TRUE(injector.ShouldFail(kFaultMapAttempt, 3, 0));
  EXPECT_TRUE(injector.ShouldFail(kFaultMapAttempt, 3, 1));
  EXPECT_FALSE(injector.ShouldFail(kFaultMapAttempt, 3, 2));
  EXPECT_FALSE(injector.ShouldFail(kFaultMapAttempt, 2, 0));
  EXPECT_FALSE(injector.ShouldFail(kFaultMapAttempt, 4, 1));
}

TEST(FaultInjectionTest, MaybeFailReturnsIOErrorNamingThePoint) {
  FaultInjector injector(1);
  injector.ArmSchedule(kFaultReduceAttempt, 2, {0});
  Status st = injector.MaybeFail(kFaultReduceAttempt, 2, 0);
  EXPECT_TRUE(st.IsIOError());
  EXPECT_NE(st.message().find(kFaultReduceAttempt), std::string::npos);
  EXPECT_TRUE(injector.MaybeFail(kFaultReduceAttempt, 2, 1).ok());
}

TEST(FaultInjectionTest, LatencyRespectsAttemptCeiling) {
  FaultInjector injector(5);
  ASSERT_TRUE(injector.ArmLatency(kFaultMapAttempt, 1.0, 25,
                                  /*only_attempts_below=*/1).ok());
  for (int key = 0; key < 10; ++key) {
    EXPECT_EQ(injector.LatencyMs(kFaultMapAttempt, key, 0), 25);
    EXPECT_EQ(injector.LatencyMs(kFaultMapAttempt, key, 1), 0);
    EXPECT_EQ(injector.LatencyMs(kFaultMapAttempt, key, 7), 0);
  }
  EXPECT_EQ(injector.latency_fires(kFaultMapAttempt), 10);
  EXPECT_EQ(injector.fires(kFaultMapAttempt), 0);  // latency is not failure
}

TEST(FaultInjectionTest, DisarmStopsInjection) {
  FaultInjector injector(5);
  ASSERT_TRUE(injector.ArmFirstAttempts(kFaultMapAttempt, 5).ok());
  ASSERT_TRUE(injector.ArmFirstAttempts(kFaultSplitLoad, 5).ok());
  EXPECT_TRUE(injector.ShouldFail(kFaultMapAttempt, 0, 0));
  injector.Disarm(kFaultMapAttempt);
  EXPECT_FALSE(injector.ShouldFail(kFaultMapAttempt, 0, 0));
  EXPECT_TRUE(injector.ShouldFail(kFaultSplitLoad, 0, 0));
  injector.DisarmAll();
  EXPECT_FALSE(injector.ShouldFail(kFaultSplitLoad, 0, 0));
}

TEST(FaultInjectionTest, RejectsInvalidArming) {
  FaultInjector injector(1);
  EXPECT_TRUE(injector.ArmProbability(kFaultMapAttempt, -0.1)
                  .IsInvalidArgument());
  EXPECT_TRUE(injector.ArmProbability(kFaultMapAttempt, 1.5)
                  .IsInvalidArgument());
  EXPECT_TRUE(injector.ArmFirstAttempts(kFaultMapAttempt, -1)
                  .IsInvalidArgument());
  EXPECT_TRUE(injector.ArmLatency(kFaultMapAttempt, 2.0, 10)
                  .IsInvalidArgument());
  EXPECT_TRUE(injector.ArmLatency(kFaultMapAttempt, 0.5, -10)
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace gesall

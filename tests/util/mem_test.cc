#include "util/mem.h"

#include <gtest/gtest.h>

namespace gesall {
namespace {

TEST(MemTest, PeakRssIsPositiveAndMonotone) {
  int64_t peak = PeakRssBytes();
  EXPECT_GT(peak, 0);
  EXPECT_GE(PeakRssBytes(), peak);
}

TEST(MemTest, CurrentRssIsSane) {
  // /proc may be unavailable on exotic platforms; when present, the
  // reading should be plausibly sized for a test process. (statm and
  // ru_maxrss use different page accounting under some kernels, so no
  // ordering between them is asserted.)
  int64_t cur = CurrentRssBytes();
  if (cur > 0) {
    EXPECT_GT(cur, 1 << 20);          // > 1 MiB
    EXPECT_LT(cur, 1LL << 40);        // < 1 TiB
  }
}

TEST(MemTest, AllocCounterTracksRecordCalls) {
  // The operator-new hooks are opt-in per binary and not linked into
  // tests; drive the counter API directly.
  ResetPeakAllocBytes();
  int64_t base_live = LiveAllocBytes();
  int64_t base_peak = PeakAllocBytes();
  memhooks::RecordAlloc(1 << 20);
  EXPECT_EQ(LiveAllocBytes(), base_live + (1 << 20));
  EXPECT_GE(PeakAllocBytes(), base_peak + (1 << 20));
  memhooks::RecordFree(1 << 20);
  EXPECT_EQ(LiveAllocBytes(), base_live);
  // The high-water mark survives the free until reset.
  EXPECT_GE(PeakAllocBytes(), base_peak + (1 << 20));
  ResetPeakAllocBytes();
  EXPECT_EQ(PeakAllocBytes(), LiveAllocBytes());
}

TEST(MemTest, SampleMemoryCombinesAllReadings) {
  MemorySample s = SampleMemory();
  EXPECT_GT(s.peak_rss_bytes, 0);
  EXPECT_EQ(s.live_alloc_bytes, LiveAllocBytes());
}

}  // namespace
}  // namespace gesall

#include "util/bgzf.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace gesall {
namespace {

std::string RandomBytes(Rng& rng, size_t n) {
  std::string s(n, '\0');
  for (auto& c : s) c = static_cast<char>(rng.Uniform(256));
  return s;
}

TEST(BgzfTest, SingleBlockRoundTrip) {
  auto block = BgzfCompressBlock("hello bgzf").ValueOrDie();
  size_t consumed = 0;
  auto data = BgzfDecompressBlock(block, &consumed).ValueOrDie();
  EXPECT_EQ(data, "hello bgzf");
  EXPECT_EQ(consumed, block.size());
}

TEST(BgzfTest, RejectsOversizedPayload) {
  std::string big(kBgzfBlockSize + 1, 'a');
  EXPECT_TRUE(BgzfCompressBlock(big).status().IsInvalidArgument());
}

TEST(BgzfTest, RejectsBadMagic) {
  std::string junk = "XXXX00000000";
  EXPECT_TRUE(BgzfDecompressBlock(junk, nullptr).status().IsCorruption());
}

TEST(BgzfTest, WriterSplitsIntoBlocks) {
  Rng rng(5);
  std::string payload = RandomBytes(rng, 3 * kBgzfBlockSize + 777);
  std::string compressed;
  BgzfWriter w(&compressed);
  ASSERT_TRUE(w.Append(payload).ok());
  ASSERT_TRUE(w.Flush().ok());

  auto blocks = BgzfListBlocks(compressed).ValueOrDie();
  EXPECT_EQ(blocks.size(), 4u);

  BgzfReader r(compressed);
  std::string out;
  ASSERT_TRUE(r.Read(payload.size(), &out).ok());
  EXPECT_EQ(out, payload);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BgzfTest, ReadAcrossBlockBoundary) {
  std::string compressed;
  BgzfWriter w(&compressed);
  std::string a(kBgzfBlockSize - 10, 'a');
  ASSERT_TRUE(w.Append(a).ok());
  ASSERT_TRUE(w.Append(std::string(20, 'b')).ok());
  ASSERT_TRUE(w.Flush().ok());

  BgzfReader r(compressed);
  std::string out;
  ASSERT_TRUE(r.Seek((0ULL << 16) | (kBgzfBlockSize - 10 - 5)).ok());
  ASSERT_TRUE(r.Read(15, &out).ok());
  EXPECT_EQ(out, "aaaaabbbbbbbbbb");
}

TEST(BgzfTest, VirtualOffsetsSeekable) {
  std::string compressed;
  BgzfWriter w(&compressed);
  ASSERT_TRUE(w.Append("first-chunk").ok());
  uint64_t voffset_before_flush = w.Tell();
  EXPECT_EQ(voffset_before_flush & 0xffff, 11u);
  ASSERT_TRUE(w.Flush().ok());
  uint64_t voffset = w.Tell();
  ASSERT_TRUE(w.Append("second-chunk").ok());
  ASSERT_TRUE(w.Flush().ok());

  BgzfReader r(compressed);
  ASSERT_TRUE(r.Seek(voffset).ok());
  std::string out;
  ASSERT_TRUE(r.Read(12, &out).ok());
  EXPECT_EQ(out, "second-chunk");
}

TEST(BgzfTest, ReadPastEndFails) {
  std::string compressed;
  BgzfWriter w(&compressed);
  ASSERT_TRUE(w.Append("tiny").ok());
  ASSERT_TRUE(w.Flush().ok());
  BgzfReader r(compressed);
  std::string out;
  EXPECT_TRUE(r.Read(5, &out).IsOutOfRange());
}

TEST(BgzfTest, EmptyStreamAtEnd) {
  BgzfReader r("");
  EXPECT_TRUE(r.AtEnd());
}

TEST(BgzfTest, TruncatedStreamDetected) {
  auto block = BgzfCompressBlock("payload-data").ValueOrDie();
  std::string truncated = block.substr(0, block.size() - 3);
  EXPECT_FALSE(BgzfListBlocks(truncated).ok());
}

TEST(BgzfTest, CompressionShrinksRepetitiveData) {
  std::string data(kBgzfBlockSize, 'G');
  auto block = BgzfCompressBlock(data).ValueOrDie();
  EXPECT_LT(block.size(), data.size() / 10);
}

}  // namespace
}  // namespace gesall

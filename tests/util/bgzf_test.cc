#include "util/bgzf.h"

#include <gtest/gtest.h>

#include "util/io.h"
#include "util/rng.h"

namespace gesall {
namespace {

std::string RandomBytes(Rng& rng, size_t n) {
  std::string s(n, '\0');
  for (auto& c : s) c = static_cast<char>(rng.Uniform(256));
  return s;
}

TEST(BgzfTest, SingleBlockRoundTrip) {
  auto block = BgzfCompressBlock("hello bgzf").ValueOrDie();
  size_t consumed = 0;
  auto data = BgzfDecompressBlock(block, &consumed).ValueOrDie();
  EXPECT_EQ(data, "hello bgzf");
  EXPECT_EQ(consumed, block.size());
}

TEST(BgzfTest, RejectsOversizedPayload) {
  std::string big(kBgzfBlockSize + 1, 'a');
  EXPECT_TRUE(BgzfCompressBlock(big).status().IsInvalidArgument());
}

TEST(BgzfTest, RejectsBadMagic) {
  std::string junk = "XXXX00000000";
  EXPECT_TRUE(BgzfDecompressBlock(junk, nullptr).status().IsCorruption());
}

TEST(BgzfTest, WriterSplitsIntoBlocks) {
  Rng rng(5);
  std::string payload = RandomBytes(rng, 3 * kBgzfBlockSize + 777);
  std::string compressed;
  BgzfWriter w(&compressed);
  ASSERT_TRUE(w.Append(payload).ok());
  ASSERT_TRUE(w.Flush().ok());

  auto blocks = BgzfListBlocks(compressed).ValueOrDie();
  EXPECT_EQ(blocks.size(), 4u);

  BgzfReader r(compressed);
  std::string out;
  ASSERT_TRUE(r.Read(payload.size(), &out).ok());
  EXPECT_EQ(out, payload);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BgzfTest, ReadAcrossBlockBoundary) {
  std::string compressed;
  BgzfWriter w(&compressed);
  std::string a(kBgzfBlockSize - 10, 'a');
  ASSERT_TRUE(w.Append(a).ok());
  ASSERT_TRUE(w.Append(std::string(20, 'b')).ok());
  ASSERT_TRUE(w.Flush().ok());

  BgzfReader r(compressed);
  std::string out;
  ASSERT_TRUE(r.Seek((0ULL << 16) | (kBgzfBlockSize - 10 - 5)).ok());
  ASSERT_TRUE(r.Read(15, &out).ok());
  EXPECT_EQ(out, "aaaaabbbbbbbbbb");
}

TEST(BgzfTest, VirtualOffsetsSeekable) {
  std::string compressed;
  BgzfWriter w(&compressed);
  ASSERT_TRUE(w.Append("first-chunk").ok());
  uint64_t voffset_before_flush = w.Tell();
  EXPECT_EQ(voffset_before_flush & 0xffff, 11u);
  ASSERT_TRUE(w.Flush().ok());
  uint64_t voffset = w.Tell();
  ASSERT_TRUE(w.Append("second-chunk").ok());
  ASSERT_TRUE(w.Flush().ok());

  BgzfReader r(compressed);
  ASSERT_TRUE(r.Seek(voffset).ok());
  std::string out;
  ASSERT_TRUE(r.Read(12, &out).ok());
  EXPECT_EQ(out, "second-chunk");
}

TEST(BgzfTest, ReadPastEndFails) {
  std::string compressed;
  BgzfWriter w(&compressed);
  ASSERT_TRUE(w.Append("tiny").ok());
  ASSERT_TRUE(w.Flush().ok());
  BgzfReader r(compressed);
  std::string out;
  EXPECT_TRUE(r.Read(5, &out).IsOutOfRange());
}

TEST(BgzfTest, EmptyStreamAtEnd) {
  BgzfReader r("");
  EXPECT_TRUE(r.AtEnd());
}

TEST(BgzfTest, TruncatedStreamDetected) {
  auto block = BgzfCompressBlock("payload-data").ValueOrDie();
  std::string truncated = block.substr(0, block.size() - 3);
  EXPECT_FALSE(BgzfListBlocks(truncated).ok());
}

TEST(BgzfTest, CompressionShrinksRepetitiveData) {
  std::string data(kBgzfBlockSize, 'G');
  auto block = BgzfCompressBlock(data).ValueOrDie();
  EXPECT_LT(block.size(), data.size() / 10);
}

TEST(BgzfTest, EmptyAppendAndDoubleFlushEmitNothing) {
  std::string compressed;
  BgzfWriter w(&compressed);
  ASSERT_TRUE(w.Append("").ok());
  ASSERT_TRUE(w.Flush().ok());
  EXPECT_TRUE(compressed.empty());
  EXPECT_EQ(w.stats().blocks, 0);

  ASSERT_TRUE(w.Append("data").ok());
  ASSERT_TRUE(w.Flush().ok());
  size_t after_first = compressed.size();
  ASSERT_TRUE(w.Flush().ok());  // idempotent: nothing pending
  EXPECT_EQ(compressed.size(), after_first);
  EXPECT_EQ(w.stats().blocks, 1);
  EXPECT_EQ(BgzfListBlocks(compressed).ValueOrDie().size(), 1u);
}

TEST(BgzfTest, StoredFallbackForIncompressibleBlock) {
  Rng rng(11);
  std::string noise = RandomBytes(rng, 4096);
  auto block = BgzfCompressBlock(noise).ValueOrDie();
  auto info = BgzfPeekBlock(block).ValueOrDie();
  EXPECT_TRUE(info.stored);
  // A stored frame never grows past raw size + header.
  EXPECT_EQ(block.size(), noise.size() + kBgzfHeaderSize);
  EXPECT_EQ(BgzfDecompressBlock(block, nullptr).ValueOrDie(), noise);
}

TEST(BgzfTest, WriterCountsStoredBlocksInStats) {
  Rng rng(12);
  std::string compressed;
  BgzfWriter w(&compressed);
  ASSERT_TRUE(w.Append(RandomBytes(rng, kBgzfBlockSize)).ok());  // stored
  ASSERT_TRUE(w.Append(std::string(kBgzfBlockSize, 'A')).ok());  // deflated
  ASSERT_TRUE(w.Flush().ok());
  EXPECT_EQ(w.stats().blocks, 2);
  EXPECT_EQ(w.stats().stored_blocks, 1);
  EXPECT_EQ(w.stats().raw_bytes, static_cast<int64_t>(2 * kBgzfBlockSize));
  EXPECT_EQ(w.stats().stored_bytes, static_cast<int64_t>(compressed.size()));
}

TEST(BgzfTest, CompressionLevelKnob) {
  std::string data(kBgzfBlockSize, 'x');
  for (int level : {-1, 0, 1, 6, 9}) {
    auto block = BgzfCompressBlock(data, level).ValueOrDie();
    EXPECT_EQ(BgzfDecompressBlock(block, nullptr).ValueOrDie(), data)
        << "level " << level;
  }
  EXPECT_TRUE(BgzfCompressBlock(data, 10).status().IsInvalidArgument());
  EXPECT_TRUE(BgzfCompressBlock(data, -2).status().IsInvalidArgument());
  std::string out;
  BgzfWriter bad(&out, 42);
  Status st = bad.Append("x");
  if (st.ok()) st = bad.Flush();
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST(BgzfTest, PeekFailsCleanlyOnEveryTruncatedHeaderPrefix) {
  auto block = BgzfCompressBlock("peek-me").ValueOrDie();
  for (size_t n = 0; n < kBgzfHeaderSize; ++n) {
    Status st = BgzfPeekBlockSize(block.substr(0, n)).status();
    ASSERT_TRUE(st.IsCorruption()) << "prefix length " << n;
    EXPECT_NE(st.message().find("truncated"), std::string::npos)
        << st.message();
  }
  EXPECT_TRUE(BgzfPeekBlockSize(block).ok());
}

TEST(BgzfTest, ZlibErrorSurfacesAsStatusWithOffsetContext) {
  // A deflate-method block whose payload is garbage: inflate must fail
  // with a Status naming the block offset, never abort.
  Rng rng(13);
  std::string junk = RandomBytes(rng, 64);
  std::string block;
  block += "GBZ1";
  BufferWriter w(&block);
  w.PutU32(static_cast<uint32_t>(junk.size()));
  w.PutU32(100);
  block += junk;

  Status st = BgzfDecompressBlock(block, nullptr).status();
  ASSERT_TRUE(st.IsCorruption());
  EXPECT_NE(st.message().find("zlib uncompress failed"), std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("offset 0"), std::string::npos) << st.message();

  // The same junk block sitting after a healthy one reports its own
  // offset, not 0.
  auto good = BgzfCompressBlock(std::string(1000, 'g')).ValueOrDie();
  std::string stream = good + block;
  std::string out;
  Status range = BgzfReadRange(stream, 1000, 50, &out);
  ASSERT_TRUE(range.IsCorruption());
  EXPECT_NE(range.message().find("offset " + std::to_string(good.size())),
            std::string::npos)
      << range.message();
}

TEST(BgzfTest, ReadRangeMatchesSlicesAtRandomOffsets) {
  Rng rng(14);
  // Genome-like compressible payload spanning several blocks.
  std::string payload;
  payload.reserve(3 * kBgzfBlockSize);
  const char bases[] = "ACGT";
  for (size_t i = 0; i < 3 * kBgzfBlockSize + 123; ++i) {
    payload.push_back(bases[rng.Uniform(4)]);
  }
  std::string compressed;
  BgzfWriter w(&compressed);
  ASSERT_TRUE(w.Append(payload).ok());
  ASSERT_TRUE(w.Flush().ok());

  for (int i = 0; i < 200; ++i) {
    size_t off = rng.Uniform(static_cast<uint32_t>(payload.size()));
    size_t len =
        rng.Uniform(static_cast<uint32_t>(payload.size() - off) + 1);
    std::string out;
    ASSERT_TRUE(BgzfReadRange(compressed, off, len, &out).ok());
    ASSERT_EQ(out, payload.substr(off, len)) << "off=" << off
                                             << " len=" << len;
  }
  std::string out;
  EXPECT_TRUE(
      BgzfReadRange(compressed, payload.size() - 1, 2, &out).IsOutOfRange());
}

TEST(BgzfTest, RandomizedTornAndCorruptBlocksFailCleanly) {
  // Satellite robustness sweep: flip a byte in a header or payload, or
  // truncate mid-block. Every mutation must produce a clean Status (or,
  // for payload flips of *stored* blocks, possibly wrong bytes — the
  // CRC layer above owns that case); nothing may crash.
  Rng rng(20170517);
  const char bases[] = "ACGT";
  for (int trial = 0; trial < 300; ++trial) {
    std::string payload;
    size_t n = 1 + rng.Uniform(2 * kBgzfBlockSize);
    payload.reserve(n);
    for (size_t i = 0; i < n; ++i) payload.push_back(bases[rng.Uniform(4)]);
    std::string compressed;
    BgzfWriter w(&compressed);
    ASSERT_TRUE(w.Append(payload).ok());
    ASSERT_TRUE(w.Flush().ok());

    std::string mutated = compressed;
    const int kind = static_cast<int>(rng.Uniform(3));
    if (kind == 0) {
      // Header flip (first block's header or a later one's).
      size_t pos = rng.Uniform(kBgzfHeaderSize);
      mutated[pos] ^= static_cast<char>(1 << rng.Uniform(8));
    } else if (kind == 1 && mutated.size() > kBgzfHeaderSize) {
      // Payload flip.
      size_t pos = kBgzfHeaderSize +
                   rng.Uniform(static_cast<uint32_t>(mutated.size() -
                                                     kBgzfHeaderSize));
      mutated[pos] ^= static_cast<char>(1 << rng.Uniform(8));
    } else {
      // Torn write: truncate mid-block.
      mutated.resize(rng.Uniform(static_cast<uint32_t>(mutated.size())));
    }
    if (mutated == compressed) continue;

    std::string out;
    Status st = BgzfReadRange(mutated, 0, payload.size(), &out);
    EXPECT_TRUE(!st.ok() || out != payload)
        << "trial " << trial << " kind " << kind
        << ": mutation survived decode byte-identically";
    // The block walk itself must also fail cleanly or terminate.
    (void)BgzfListBlocks(mutated);
  }
}

}  // namespace
}  // namespace gesall

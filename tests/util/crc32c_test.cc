#include "util/crc32c.h"

#include <gtest/gtest.h>

#include <string>

namespace gesall {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 §B.4 check value.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
  // 32 zero bytes (iSCSI test vector).
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8A9136AAu);
  // 32 0xFF bytes.
  EXPECT_EQ(Crc32c(std::string(32, '\xff')), 0x62A8AB43u);
}

TEST(Crc32cTest, PortableMatchesDispatch) {
  // Lengths straddle every hardware-path regime: the byte/word tails,
  // the single-lane loop, and the 3-way interleaved loop for buffers of
  // 12 KiB and above (including non-multiples of the lane stride).
  std::string data;
  for (int i = 0; i < 100'000; ++i) {
    data.push_back(static_cast<char>(i * 131 + (i >> 7)));
  }
  for (size_t len : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 1000u, 4096u, 12'287u,
                     12'288u, 12'289u, 24'576u, 65'536u, 100'000u}) {
    std::string_view slice(data.data(), len);
    EXPECT_EQ(Crc32c(slice), Crc32cPortable(slice)) << "len=" << len;
  }
}

TEST(Crc32cTest, ExtendComposesAcrossLargeBuffers) {
  // A nonzero incoming CRC must thread through the interleaved lanes
  // exactly as through the scalar loop.
  std::string a(50'000, '\0'), b(40'000, '\0');
  for (size_t i = 0; i < a.size(); ++i) a[i] = static_cast<char>(i * 7);
  for (size_t i = 0; i < b.size(); ++i) b[i] = static_cast<char>(i * 13 + 5);
  uint32_t whole = ExtendCrc32c(Crc32c(a), b.data(), b.size());
  uint32_t portable =
      ExtendCrc32cPortable(Crc32cPortable(a), b.data(), b.size());
  EXPECT_EQ(whole, portable);
}

TEST(Crc32cTest, ExtendComposes) {
  std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t whole = Crc32c(data);
  for (size_t cut = 0; cut <= data.size(); ++cut) {
    uint32_t part = ExtendCrc32c(0, data.data(), cut);
    part = ExtendCrc32c(part, data.data() + cut, data.size() - cut);
    EXPECT_EQ(part, whole) << "cut=" << cut;
  }
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::string data(257, 'g');
  uint32_t base = Crc32c(data);
  for (size_t i = 0; i < data.size(); i += 17) {
    std::string mutated = data;
    mutated[i] ^= 0x01;
    EXPECT_NE(Crc32c(mutated), base) << "flip at " << i;
  }
}

}  // namespace
}  // namespace gesall

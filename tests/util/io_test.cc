#include "util/io.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace gesall {
namespace {

TEST(BufferTest, RoundTripAllTypes) {
  std::string buf;
  BufferWriter w(&buf);
  w.PutU8(0xab);
  w.PutU16(0x1234);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutI32(-42);
  w.PutI64(-1'000'000'000'000LL);
  w.PutF64(3.14159);
  w.PutString("hello");

  BufferReader r(buf);
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  int32_t i32;
  int64_t i64;
  double f64;
  std::string s;
  ASSERT_TRUE(r.GetU8(&u8).ok());
  ASSERT_TRUE(r.GetU16(&u16).ok());
  ASSERT_TRUE(r.GetU32(&u32).ok());
  ASSERT_TRUE(r.GetU64(&u64).ok());
  ASSERT_TRUE(r.GetI32(&i32).ok());
  ASSERT_TRUE(r.GetI64(&i64).ok());
  ASSERT_TRUE(r.GetF64(&f64).ok());
  ASSERT_TRUE(r.GetString(&s).ok());
  EXPECT_EQ(u8, 0xab);
  EXPECT_EQ(u16, 0x1234);
  EXPECT_EQ(u32, 0xdeadbeefu);
  EXPECT_EQ(u64, 0x0123456789abcdefULL);
  EXPECT_EQ(i32, -42);
  EXPECT_EQ(i64, -1'000'000'000'000LL);
  EXPECT_DOUBLE_EQ(f64, 3.14159);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(BufferTest, UnderflowReported) {
  std::string buf = "ab";
  BufferReader r(buf);
  uint32_t v;
  EXPECT_TRUE(r.GetU32(&v).IsOutOfRange());
}

TEST(BufferTest, LittleEndianLayout) {
  std::string buf;
  BufferWriter w(&buf);
  w.PutU32(0x01020304);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(buf[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(buf[3]), 0x01);
}

TEST(FileIoTest, RoundTrip) {
  std::string path = testing::TempDir() + "/gesall_io_test.bin";
  std::string data = "binary\0data", big(100'000, 'x');
  ASSERT_TRUE(WriteStringToFile(path, big).ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.ValueOrDie(), big);
  std::remove(path.c_str());
}

TEST(FileIoTest, MissingFileIsIOError) {
  EXPECT_TRUE(ReadFileToString("/no/such/file").status().IsIOError());
}

}  // namespace
}  // namespace gesall

// Arena invariants the shuffle data path depends on: view stability
// across growth and moves, block-level allocation accounting, and the
// oversized-payload path.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "util/arena.h"

namespace gesall {
namespace {

TEST(ArenaTest, AppendReturnsCopy) {
  Arena arena;
  std::string source = "hello";
  std::string_view view = arena.Append(source);
  source[0] = 'X';  // mutating the source must not affect the copy
  EXPECT_EQ(view, "hello");
  EXPECT_EQ(arena.bytes_used(), 5);
}

TEST(ArenaTest, ViewsStableAcrossGrowth) {
  Arena arena(/*block_bytes=*/64);
  std::vector<std::string_view> views;
  std::vector<std::string> expected;
  for (int i = 0; i < 1000; ++i) {
    expected.push_back("value-" + std::to_string(i));
    views.push_back(arena.Append(expected.back()));
  }
  // Many blocks were allocated; every early view must still be intact.
  EXPECT_GT(arena.block_allocations(), 10);
  for (size_t i = 0; i < views.size(); ++i) EXPECT_EQ(views[i], expected[i]);
}

TEST(ArenaTest, ViewsStableAcrossMove) {
  Arena arena(/*block_bytes=*/64);
  std::string_view view = arena.Append("payload");
  Arena moved = std::move(arena);
  EXPECT_EQ(view, "payload");
  EXPECT_EQ(moved.bytes_used(), 7);
  // The moved-to arena keeps appending into the same block.
  EXPECT_EQ(moved.Append("more"), "more");
}

TEST(ArenaTest, SmallAppendsShareOneBlock) {
  Arena arena(/*block_bytes=*/1024);
  for (int i = 0; i < 100; ++i) arena.Append("x");
  EXPECT_EQ(arena.block_allocations(), 1);
  EXPECT_EQ(arena.bytes_used(), 100);
}

TEST(ArenaTest, OversizedPayloadGetsDedicatedBlock) {
  Arena arena(/*block_bytes=*/64);
  arena.Append("small");
  int64_t before = arena.block_allocations();
  std::string big(500, 'b');
  std::string_view big_view = arena.Append(big);
  EXPECT_EQ(big_view, big);
  EXPECT_EQ(arena.block_allocations(), before + 1);
  // The partially-filled current block still accepts small appends
  // without allocating again.
  arena.Append("tail");
  EXPECT_EQ(arena.block_allocations(), before + 1);
}

TEST(ArenaTest, EmptyAppendIsNoop) {
  Arena arena;
  EXPECT_TRUE(arena.Append("").empty());
  EXPECT_EQ(arena.bytes_used(), 0);
  EXPECT_EQ(arena.block_allocations(), 0);
}

TEST(ArenaTest, ClearReleasesEverything) {
  Arena arena(/*block_bytes=*/64);
  for (int i = 0; i < 100; ++i) arena.Append("payload");
  arena.Clear();
  EXPECT_EQ(arena.bytes_used(), 0);
  EXPECT_EQ(arena.block_allocations(), 0);
  EXPECT_EQ(arena.Append("fresh"), "fresh");
}

TEST(ArenaTest, EmbeddedZerosPreserved) {
  Arena arena;
  std::string binary("a\0b\0c", 5);
  std::string_view view = arena.Append(binary);
  EXPECT_EQ(view.size(), 5u);
  EXPECT_EQ(std::string(view), binary);
}

TEST(ArenaTest, ExtentsTileStoredBytesExactly) {
  // Small appends roll across blocks and an oversized payload lands in
  // a dedicated block; the extents must cover every stored byte exactly
  // once — unused block tails excluded — and every returned view must
  // alias some extent.
  Arena arena(/*block_bytes=*/64);
  std::vector<std::string_view> views;
  for (int i = 0; i < 20; ++i) {
    views.push_back(arena.Append("payload-" + std::to_string(i)));
  }
  views.push_back(arena.Append(std::string(200, 'x')));  // dedicated block
  views.push_back(arena.Append("tail"));

  int64_t covered = 0;
  auto extents = arena.extents();
  for (const auto& e : extents) covered += static_cast<int64_t>(e.size);
  EXPECT_EQ(covered, arena.bytes_used());
  for (std::string_view v : views) {
    bool inside = false;
    for (const auto& e : extents) {
      inside |= v.data() >= e.data && v.data() + v.size() <= e.data + e.size;
    }
    EXPECT_TRUE(inside);
  }
}

TEST(ArenaTest, ExtentsEmptyOnFreshAndCleared) {
  Arena arena;
  EXPECT_TRUE(arena.extents().empty());
  arena.Append("data");
  EXPECT_EQ(arena.extents().size(), 1u);
  arena.Clear();
  EXPECT_TRUE(arena.extents().empty());
}

}  // namespace
}  // namespace gesall

#include "util/bloom_filter.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace gesall {
namespace {

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter f(1000, 0.01);
  for (uint64_t k = 0; k < 1000; ++k) f.Insert(k * 7919);
  for (uint64_t k = 0; k < 1000; ++k) EXPECT_TRUE(f.MayContain(k * 7919));
}

TEST(BloomFilterTest, FalsePositiveRateNearTarget) {
  const size_t n = 10'000;
  BloomFilter f(n, 0.01);
  Rng rng(3);
  for (size_t i = 0; i < n; ++i) f.Insert(rng.Next());
  int fp = 0;
  const int probes = 100'000;
  Rng probe_rng(999);  // disjoint key space with high probability
  for (int i = 0; i < probes; ++i) {
    if (f.MayContain(probe_rng.Next())) ++fp;
  }
  double rate = fp / static_cast<double>(probes);
  EXPECT_LT(rate, 0.03);
}

TEST(BloomFilterTest, SerializationRoundTrip) {
  BloomFilter f(100, 0.05);
  for (uint64_t k = 0; k < 100; ++k) f.Insert(k);
  auto restored = BloomFilter::Deserialize(f.Serialize()).ValueOrDie();
  for (uint64_t k = 0; k < 100; ++k) EXPECT_TRUE(restored.MayContain(k));
  EXPECT_EQ(restored.bit_count(), f.bit_count());
  EXPECT_EQ(restored.hash_count(), f.hash_count());
}

TEST(BloomFilterTest, UnionCombinesSets) {
  BloomFilter a(100, 0.01), b(100, 0.01);
  a.Insert(1);
  b.Insert(2);
  ASSERT_TRUE(a.Union(b).ok());
  EXPECT_TRUE(a.MayContain(1));
  EXPECT_TRUE(a.MayContain(2));
}

TEST(BloomFilterTest, UnionRejectsGeometryMismatch) {
  BloomFilter a(100, 0.01), b(5000, 0.01);
  EXPECT_TRUE(a.Union(b).IsInvalidArgument());
}

// Property sweep: FPR should stay within ~3x of the target across sizes.
class BloomFprTest : public testing::TestWithParam<double> {};

TEST_P(BloomFprTest, TargetRespected) {
  const double target = GetParam();
  const size_t n = 5000;
  BloomFilter f(n, target);
  for (size_t i = 0; i < n; ++i) f.Insert(i * 1'000'003ULL);
  int fp = 0;
  const int probes = 50'000;
  for (int i = 0; i < probes; ++i) {
    if (f.MayContain(0x8000000000000000ULL + i)) ++fp;
  }
  EXPECT_LT(fp / static_cast<double>(probes), 3 * target + 0.001);
}

INSTANTIATE_TEST_SUITE_P(Rates, BloomFprTest,
                         testing::Values(0.001, 0.01, 0.05, 0.1));

}  // namespace
}  // namespace gesall

#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>

namespace gesall {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10'000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMeanAndSd) {
  Rng rng(17);
  double sum = 0, sumsq = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian(10.0, 3.0);
    sum += g;
    sumsq += g * g;
  }
  double mean = sum / n;
  double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.25);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.25, 0.01);
}

TEST(HashTest, Fnv1aDistinguishesStrings) {
  EXPECT_NE(Fnv1a64("read1"), Fnv1a64("read2"));
  EXPECT_EQ(Fnv1a64("same"), Fnv1a64("same"));
}

TEST(HashTest, MixSeedsOrderSensitive) {
  EXPECT_NE(MixSeeds(1, 2), MixSeeds(2, 1));
}

}  // namespace
}  // namespace gesall

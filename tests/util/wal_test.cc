// Durability substrate tests: journal framing, torn-tail replay,
// injected short-write/sync failures, atomic snapshots, and the
// fsimage/editlog checkpoint protocol of JournaledStore — including the
// snapshot-compaction equivalence replay(snapshot + tail) ==
// replay(full journal) over randomized op sequences.

#include "util/wal.h"

#include <cstdio>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/fault_injection.h"
#include "util/io.h"
#include "util/status.h"

namespace gesall {
namespace {

namespace fs = std::filesystem;

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("gesall_wal_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  // Appends `payloads` to a fresh journal at `name` and closes it.
  void WriteJournal(const std::string& name,
                    const std::vector<std::string>& payloads,
                    const DurabilityOptions& options = {}) {
    auto writer = JournalWriter::Open(Path(name), options);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    for (const auto& p : payloads) {
      ASSERT_TRUE(writer.ValueOrDie()->Append(p).ok());
    }
  }

  std::vector<std::string> Replayed(const std::string& name,
                                    JournalReplayStats* stats = nullptr) {
    std::vector<std::string> out;
    auto result = ReplayJournal(Path(name), [&](std::string_view payload) {
      out.emplace_back(payload);
      return Status::OK();
    });
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (stats != nullptr && result.ok()) *stats = result.ValueOrDie();
    return out;
  }

  fs::path dir_;
};

TEST_F(WalTest, ValidateOptions) {
  DurabilityOptions off;  // disabled: anything goes
  off.snapshot_every_records = -5;
  EXPECT_TRUE(ValidateDurabilityOptions(off).ok());

  DurabilityOptions on;
  on.root_dir = Path("store");
  EXPECT_TRUE(ValidateDurabilityOptions(on).ok());

  on.snapshot_every_records = -1;
  EXPECT_TRUE(ValidateDurabilityOptions(on).IsInvalidArgument());
  on.snapshot_every_records = 0;  // 0 = never snapshot, legal
  EXPECT_TRUE(ValidateDurabilityOptions(on).ok());

  on.fsync_every_records = 0;
  EXPECT_TRUE(ValidateDurabilityOptions(on).IsInvalidArgument());
  on.fsync_every_records = 8;
  on.fsync_every_bytes = -1;
  EXPECT_TRUE(ValidateDurabilityOptions(on).IsInvalidArgument());
  on.fsync_every_bytes = 1 << 20;
  EXPECT_TRUE(ValidateDurabilityOptions(on).ok());
}

TEST_F(WalTest, RoundTripAndMissingJournal) {
  JournalReplayStats stats;
  EXPECT_TRUE(Replayed("absent.log", &stats).empty());
  EXPECT_EQ(stats.records, 0);
  EXPECT_FALSE(stats.torn_tail);

  std::vector<std::string> payloads = {"alpha", "", std::string(5000, 'x'),
                                       std::string("\0\xff\x01", 3)};
  WriteJournal("j.log", payloads);
  EXPECT_EQ(Replayed("j.log", &stats), payloads);
  EXPECT_EQ(stats.records, 4);
  EXPECT_FALSE(stats.torn_tail);
}

// The satellite's torn-write contract: a journal truncated mid-record
// recovers to the last durable prefix — never a partial record.
TEST_F(WalTest, TornTailTruncationRecoversPrefix) {
  std::vector<std::string> payloads = {"first-record", "second-record",
                                       "third-record"};
  WriteJournal("j.log", payloads);
  const auto full_size = fs::file_size(Path("j.log"));
  // Cut the file at every byte length from full down to zero: replay
  // must always yield an exact prefix of the appended records.
  for (uint64_t cut = full_size; cut > 0; --cut) {
    fs::resize_file(Path("j.log"), cut - 1);
    JournalReplayStats stats;
    auto got = Replayed("j.log", &stats);
    ASSERT_LE(got.size(), payloads.size());
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i], payloads[i]) << "cut=" << cut - 1;
    }
    ASSERT_EQ(stats.torn_tail,
              stats.valid_bytes != static_cast<int64_t>(cut) - 1);
  }
}

TEST_F(WalTest, CorruptMiddleByteStopsReplayAtPriorRecord) {
  WriteJournal("j.log", {"aaaa", "bbbb", "cccc"});
  auto data = ReadFileToString(Path("j.log")).ValueOrDie();
  data[8 + 4 + 8 + 1] ^= 0x40;  // flip a bit inside record 2's payload
  ASSERT_TRUE(WriteStringToFile(Path("j.log"), data).ok());
  JournalReplayStats stats;
  auto got = Replayed("j.log", &stats);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "aaaa");
  EXPECT_TRUE(stats.torn_tail);
}

// Opening a writer on a torn journal truncates the tail, so appended
// records extend the valid prefix instead of hiding behind the tear.
TEST_F(WalTest, OpenTruncatesTornTailBeforeAppending) {
  WriteJournal("j.log", {"kept", "torn-away"});
  fs::resize_file(Path("j.log"), fs::file_size(Path("j.log")) - 3);
  WriteJournal("j.log", {"appended"});
  JournalReplayStats stats;
  EXPECT_EQ(Replayed("j.log", &stats),
            (std::vector<std::string>{"kept", "appended"}));
  EXPECT_FALSE(stats.torn_tail);
}

TEST_F(WalTest, InjectedShortWriteLeavesTornTail) {
  FaultInjector injector(7);
  injector.ArmSchedule(kFaultFsShortWrite, /*key=*/2, {0});
  DurabilityOptions options;
  auto writer = JournalWriter::Open(Path("j.log"), options, &injector);
  ASSERT_TRUE(writer.ok());
  EXPECT_TRUE(writer.ValueOrDie()->Append("one").ok());
  EXPECT_TRUE(writer.ValueOrDie()->Append("two").ok());
  Status torn = writer.ValueOrDie()->Append("three-cut-short");
  EXPECT_TRUE(torn.IsIOError()) << torn.ToString();
  writer = Status::IOError("closed");  // drop the writer, flushing
  EXPECT_EQ(injector.fires(kFaultFsShortWrite), 1);

  JournalReplayStats stats;
  EXPECT_EQ(Replayed("j.log", &stats),
            (std::vector<std::string>{"one", "two"}));
  EXPECT_TRUE(stats.torn_tail);
}

TEST_F(WalTest, InjectedSyncFailureSurfacesIOError) {
  FaultInjector injector(7);
  ASSERT_TRUE(injector.ArmFirstAttempts(kFaultFsSyncFail, 1).ok());
  DurabilityOptions options;  // fsync_every_records = 1: sync per append
  auto writer = JournalWriter::Open(Path("j.log"), options, &injector);
  ASSERT_TRUE(writer.ok());
  Status st = writer.ValueOrDie()->Append("payload");
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_GE(injector.fires(kFaultFsSyncFail), 1);
}

TEST_F(WalTest, FsyncBatchingCountsRecords) {
  FaultInjector injector(7);
  ASSERT_TRUE(injector.ArmProbability(kFaultFsSyncFail, 1.0).ok());
  DurabilityOptions options;
  options.fsync_every_records = 3;
  auto writer = JournalWriter::Open(Path("j.log"), options, &injector);
  ASSERT_TRUE(writer.ok());
  // With a batch of 3, the armed sync failure only fires on the third
  // append; the first two buffer without syncing.
  EXPECT_TRUE(writer.ValueOrDie()->Append("a").ok());
  EXPECT_TRUE(writer.ValueOrDie()->Append("b").ok());
  EXPECT_TRUE(writer.ValueOrDie()->Append("c").IsIOError());
}

TEST_F(WalTest, SnapshotRoundTripAndCorruptionDetection) {
  const std::string payload(10'000, 's');
  ASSERT_TRUE(WriteSnapshotFile(Path("snap"), payload).ok());
  auto read = ReadSnapshotFile(Path("snap"));
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read.ValueOrDie(), payload);

  EXPECT_TRUE(ReadSnapshotFile(Path("absent")).status().IsNotFound());

  auto raw = ReadFileToString(Path("snap")).ValueOrDie();
  raw[raw.size() / 2] ^= 1;
  ASSERT_TRUE(WriteStringToFile(Path("snap"), raw).ok());
  EXPECT_TRUE(ReadSnapshotFile(Path("snap")).status().IsCorruption());
}

TEST_F(WalTest, SnapshotWriteIsAtomicUnderSyncFailure) {
  ASSERT_TRUE(WriteSnapshotFile(Path("snap"), "old-state").ok());
  FaultInjector injector(7);
  ASSERT_TRUE(injector.ArmProbability(kFaultFsSyncFail, 1.0).ok());
  Status st = WriteSnapshotFile(Path("snap"), "new-state", &injector);
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  // The failed write never replaced the durable snapshot.
  EXPECT_EQ(ReadSnapshotFile(Path("snap")).ValueOrDie(), "old-state");
}

// ---------------------------------------------------------------------
// JournaledStore: fsimage/editlog protocol.

struct CounterState {
  int64_t sum = 0;
  int64_t records = 0;

  std::string Encode() const {
    std::string out;
    BufferWriter w(&out);
    w.PutI64(sum);
    w.PutI64(records);
    return out;
  }
  Status Load(std::string_view payload) {
    BufferReader r(payload);
    GESALL_RETURN_NOT_OK(r.GetI64(&sum));
    return r.GetI64(&records);
  }
  Status Apply(std::string_view payload) {
    BufferReader r(payload);
    int64_t delta = 0;
    GESALL_RETURN_NOT_OK(r.GetI64(&delta));
    sum += delta;
    ++records;
    return Status::OK();
  }
};

std::string EncodeDelta(int64_t delta) {
  std::string out;
  BufferWriter w(&out);
  w.PutI64(delta);
  return out;
}

TEST_F(WalTest, StoreRecoversAcrossCheckpointsAndReopen) {
  DurabilityOptions options;
  options.root_dir = Path("store");
  options.snapshot_every_records = 4;

  CounterState state;
  auto load = [&state](std::string_view p) { return state.Load(p); };
  auto apply = [&state](std::string_view p) { return state.Apply(p); };

  int64_t expect_sum = 0;
  {
    JournaledStore store(options.root_dir, options);
    ASSERT_TRUE(store.Recover(load, apply).ok());
    EXPECT_FALSE(store.snapshot_loaded());
    for (int64_t d = 1; d <= 10; ++d) {
      ASSERT_TRUE(store.Append(EncodeDelta(d)).ok());
      state.sum += d;
      ++state.records;
      expect_sum += d;
      if (store.ShouldCheckpoint()) {
        ASSERT_TRUE(store.Checkpoint(state.Encode()).ok());
      }
    }
    EXPECT_GE(store.snapshots_written(), 2);
    EXPECT_GE(store.epoch(), 2);
  }

  // Reopen: snapshot + current-epoch journal reconstruct the state.
  CounterState recovered;
  JournaledStore store(options.root_dir, options);
  ASSERT_TRUE(store
                  .Recover([&](std::string_view p) { return recovered.Load(p); },
                           [&](std::string_view p) { return recovered.Apply(p); })
                  .ok());
  EXPECT_TRUE(store.snapshot_loaded());
  EXPECT_EQ(recovered.sum, expect_sum);
  EXPECT_EQ(recovered.records, 10);
  // Only the current epoch's journal survives checkpointing.
  int journals = 0;
  for (const auto& e : fs::directory_iterator(options.root_dir)) {
    journals += e.path().filename().string().rfind("journal-", 0) == 0;
  }
  EXPECT_EQ(journals, 1);
}

// Satellite: snapshot-compaction correctness over randomized op
// sequences — a store that checkpoints (replaying snapshot + journal
// tail) must recover the exact state of a never-snapshotting store that
// replays its full journal.
TEST_F(WalTest, SnapshotCompactionEquivalenceRandomized) {
  std::mt19937_64 rng(20260809);
  for (int trial = 0; trial < 8; ++trial) {
    DurabilityOptions with_snap;
    with_snap.root_dir = Path("snap_store_" + std::to_string(trial));
    with_snap.snapshot_every_records =
        1 + static_cast<int>(rng() % 7);  // aggressive, varied cadence
    DurabilityOptions no_snap;
    no_snap.root_dir = Path("flat_store_" + std::to_string(trial));
    no_snap.snapshot_every_records = 0;  // full journal, never compacts

    CounterState a, b;
    {
      JournaledStore sa(with_snap.root_dir, with_snap);
      JournaledStore sb(no_snap.root_dir, no_snap);
      ASSERT_TRUE(
          sa.Recover([&](std::string_view p) { return a.Load(p); },
                     [&](std::string_view p) { return a.Apply(p); })
              .ok());
      ASSERT_TRUE(
          sb.Recover([&](std::string_view p) { return b.Load(p); },
                     [&](std::string_view p) { return b.Apply(p); })
              .ok());
      const int ops = 20 + static_cast<int>(rng() % 60);
      for (int i = 0; i < ops; ++i) {
        const auto delta = static_cast<int64_t>(rng() % 1000) - 500;
        const std::string rec = EncodeDelta(delta);
        ASSERT_TRUE(sa.Append(rec).ok());
        ASSERT_TRUE(sb.Append(rec).ok());
        a.sum += delta;
        ++a.records;
        if (sa.ShouldCheckpoint()) {
          ASSERT_TRUE(sa.Checkpoint(a.Encode()).ok());
        }
      }
    }
    CounterState ra, rb;
    JournaledStore sa(with_snap.root_dir, with_snap);
    JournaledStore sb(no_snap.root_dir, no_snap);
    ASSERT_TRUE(sa.Recover([&](std::string_view p) { return ra.Load(p); },
                           [&](std::string_view p) { return ra.Apply(p); })
                    .ok());
    ASSERT_TRUE(sb.Recover([&](std::string_view p) { return rb.Load(p); },
                           [&](std::string_view p) { return rb.Apply(p); })
                    .ok());
    EXPECT_TRUE(sa.snapshot_loaded());
    EXPECT_FALSE(sb.snapshot_loaded());
    EXPECT_EQ(ra.sum, rb.sum) << "trial " << trial;
    EXPECT_EQ(ra.records, rb.records) << "trial " << trial;
  }
}

TEST_F(WalTest, StoreSurvivesTornTailOnRecover) {
  DurabilityOptions options;
  options.root_dir = Path("store");
  options.snapshot_every_records = 0;
  CounterState state;
  {
    JournaledStore store(options.root_dir, options);
    ASSERT_TRUE(store
                    .Recover([&](std::string_view p) { return state.Load(p); },
                             [&](std::string_view p) { return state.Apply(p); })
                    .ok());
    for (int64_t d = 0; d < 5; ++d) {
      ASSERT_TRUE(store.Append(EncodeDelta(1)).ok());
    }
  }
  // Tear the journal mid-record, as a crash would.
  const std::string journal = options.root_dir + "/journal-0.log";
  fs::resize_file(journal, fs::file_size(journal) - 5);

  CounterState recovered;
  JournaledStore store(options.root_dir, options);
  ASSERT_TRUE(
      store
          .Recover([&](std::string_view p) { return recovered.Load(p); },
                   [&](std::string_view p) { return recovered.Apply(p); })
          .ok());
  EXPECT_EQ(recovered.records, 4);
  EXPECT_TRUE(store.replay_stats().torn_tail);
  // And the store keeps accepting appends after the tear.
  ASSERT_TRUE(store.Append(EncodeDelta(1)).ok());
}

}  // namespace
}  // namespace gesall

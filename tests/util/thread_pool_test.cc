#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>

namespace gesall {
namespace {

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, AtLeastOneThread) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  std::atomic<bool> ran{false};
  pool.Submit([&ran] { ran = true; });
  pool.Wait();
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, DestructorDrainsCleanly) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(counter.load(), 10);
}

}  // namespace
}  // namespace gesall

#include "util/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gesall {
namespace {

using std::chrono::milliseconds;

TEST(ExecutorTest, RunsAllTasks) {
  Executor executor(4);
  std::atomic<int> counter{0};
  TaskGroup group(&executor);
  for (int i = 0; i < 200; ++i) {
    group.Submit([&counter] { counter.fetch_add(1); });
  }
  group.Wait();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ExecutorTest, AtLeastOneThread) {
  Executor executor(0);
  EXPECT_EQ(executor.num_threads(), 1);
  std::atomic<bool> ran{false};
  TaskGroup group(&executor);
  group.Submit([&ran] { ran = true; });
  group.Wait();
  EXPECT_TRUE(ran);
}

TEST(ExecutorTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    Executor executor(2);
    for (int i = 0; i < 50; ++i) {
      executor.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait: the destructor itself must drain before joining.
  }
  EXPECT_EQ(counter.load(), 50);
}

// A worker that blocks must not strand the tasks queued behind it:
// the other workers have to steal them. This is the core guarantee the
// old FIFO ThreadPool lacked.
TEST(ExecutorTest, StealsWorkFromBlockedWorker) {
  Executor executor(4);
  std::mutex mu;
  std::condition_variable cv;
  int releases = 0;

  // One blocker per worker deque (fresh executor: round-robin starts at
  // worker 0), then 40 tasks spread behind them. Raw submits pin tasks
  // to deques, so the tasks behind still-blocked workers can only run
  // if a freed worker steals them.
  for (int i = 0; i < 4; ++i) {
    executor.Submit([&] {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return releases > 0; });
      --releases;
    });
  }
  std::atomic<int> done{0};
  for (int i = 0; i < 40; ++i) {
    executor.Submit([&done] { done.fetch_add(1); });
  }
  // Unblock exactly one worker; it must finish all 40 tasks (10 of its
  // own, 30 stolen) while the other 3 workers stay blocked.
  {
    std::lock_guard<std::mutex> lock(mu);
    releases = 1;
  }
  cv.notify_all();
  while (done.load() < 40) std::this_thread::yield();
  EXPECT_EQ(done.load(), 40);
  EXPECT_GE(executor.stats().steals, 1);
  {
    std::lock_guard<std::mutex> lock(mu);
    releases = 3;
  }
  cv.notify_all();
}

TEST(ExecutorTest, WorkStealingStress) {
  Executor executor(4);
  std::atomic<int64_t> sum{0};
  TaskGroup group(&executor);
  // Uneven recursive fan-out from worker threads: children land on the
  // spawning worker's deque, forcing idle workers to steal.
  std::function<void(int)> spawn = [&](int depth) {
    sum.fetch_add(1, std::memory_order_relaxed);
    if (depth == 0) return;
    for (int i = 0; i < 3; ++i) {
      group.Submit([&spawn, depth] { spawn(depth - 1); });
    }
  };
  for (int i = 0; i < 8; ++i) {
    group.Submit([&spawn] { spawn(5); });
  }
  group.Wait();
  // 8 roots, each expanding sum_{d=0..5} 3^d = 364 nodes.
  EXPECT_EQ(sum.load(), 8 * 364);
  // The helping Wait may have drained the closures before the workers'
  // thunks ran, so fence with one raw task before reading stats.
  std::atomic<bool> fenced{false};
  executor.Submit([&fenced] { fenced = true; });
  while (!fenced.load()) std::this_thread::yield();
  EXPECT_GE(executor.stats().tasks_executed, 1);
}

TEST(ExecutorTest, HighPriorityRunsBeforeNormalOnSameWorker) {
  // Single worker: queue a blocker so submissions pile up, then check
  // that a high-priority task overtakes earlier normal-priority ones.
  Executor executor(1);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  executor.Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  std::vector<int> order;
  std::mutex order_mu;
  TaskGroup group(&executor);
  auto record = [&](int id) {
    std::lock_guard<std::mutex> lock(order_mu);
    order.push_back(id);
  };
  executor.Submit([&] { record(1); });
  executor.Submit([&] { record(2); });
  executor.Submit([&] { record(0); }, Executor::Priority::kHigh);
  std::atomic<bool> fence{false};
  executor.Submit([&] { fence = true; }, Executor::Priority::kLow);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  while (!fence.load()) std::this_thread::yield();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 0);  // high overtakes
  EXPECT_EQ(order[1], 1);  // normals stay FIFO
  EXPECT_EQ(order[2], 2);
}

TEST(TaskGroupTest, WaitReturnsOnlyAfterAllTasksComplete) {
  Executor executor(4);
  std::atomic<int> completed{0};
  TaskGroup group(&executor);
  for (int i = 0; i < 32; ++i) {
    group.Submit([&completed] {
      std::this_thread::sleep_for(milliseconds(1));
      completed.fetch_add(1, std::memory_order_release);
    });
  }
  group.Wait();
  EXPECT_EQ(completed.load(std::memory_order_acquire), 32);
}

// Wait() must make progress even when every worker is blocked — the
// waiter runs the closures itself. With a single blocked worker this
// can only pass via the helping path.
TEST(TaskGroupTest, HelpingWaitProgressesOnBlockedExecutor) {
  Executor executor(1);
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  executor.Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  TaskGroup group(&executor);
  std::atomic<int> counter{0};
  for (int i = 0; i < 10; ++i) {
    group.Submit([&counter] { counter.fetch_add(1); });
  }
  group.Wait();  // would deadlock without helping
  EXPECT_EQ(counter.load(), 10);
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
}

TEST(TaskGroupTest, NestedWaitFromWorkerTask) {
  Executor executor(2);
  std::atomic<int> inner_sum{0};
  std::atomic<bool> outer_done{false};
  TaskGroup outer(&executor);
  outer.Submit([&] {
    TaskGroup inner(&executor);
    for (int i = 0; i < 16; ++i) {
      inner.Submit([&inner_sum] { inner_sum.fetch_add(1); });
    }
    inner.Wait();
    outer_done = true;
  });
  outer.Wait();
  EXPECT_TRUE(outer_done.load());
  EXPECT_EQ(inner_sum.load(), 16);
}

TEST(TaskGroupTest, WaitIsReusableAcrossBatches) {
  Executor executor(2);
  TaskGroup group(&executor);
  std::atomic<int> counter{0};
  group.Submit([&counter] { counter.fetch_add(1); });
  group.Wait();
  EXPECT_EQ(counter.load(), 1);
  group.Submit([&counter] { counter.fetch_add(1); });
  group.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThrottleTest, CapsConcurrency) {
  Executor executor(8);
  Throttle throttle(&executor, 3);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_seen{0};
  std::atomic<int> done{0};
  for (int i = 0; i < 64; ++i) {
    throttle.Submit([&] {
      int now = in_flight.fetch_add(1) + 1;
      int prev = max_seen.load();
      while (now > prev && !max_seen.compare_exchange_weak(prev, now)) {
      }
      std::this_thread::sleep_for(milliseconds(1));
      in_flight.fetch_sub(1);
      done.fetch_add(1);
    });
  }
  while (done.load() < 64) std::this_thread::yield();
  EXPECT_LE(max_seen.load(), 3);
  EXPECT_EQ(done.load(), 64);
}

TEST(ThrottleTest, SharedAcrossSubmittersStillCaps) {
  Executor executor(8);
  Throttle throttle(&executor, 2);
  std::atomic<int> in_flight{0};
  std::atomic<int> max_seen{0};
  std::atomic<int> done{0};
  auto task = [&] {
    int now = in_flight.fetch_add(1) + 1;
    int prev = max_seen.load();
    while (now > prev && !max_seen.compare_exchange_weak(prev, now)) {
    }
    std::this_thread::sleep_for(milliseconds(1));
    in_flight.fetch_sub(1);
    done.fetch_add(1);
  };
  // Two "jobs" feed the same throttle, as overlapped rounds do.
  std::thread a([&] {
    for (int i = 0; i < 20; ++i) throttle.Submit(task);
  });
  std::thread b([&] {
    for (int i = 0; i < 20; ++i) throttle.Submit(task);
  });
  a.join();
  b.join();
  while (done.load() < 40) std::this_thread::yield();
  EXPECT_LE(max_seen.load(), 2);
}

TEST(ReadySignalTest, CallbackBeforeNotifyRunsOnNotify) {
  ReadySignal signal;
  int fired = 0;
  signal.OnReady([&fired] { ++fired; });
  EXPECT_FALSE(signal.ready());
  EXPECT_EQ(fired, 0);
  signal.Notify();
  EXPECT_TRUE(signal.ready());
  EXPECT_EQ(fired, 1);
}

TEST(ReadySignalTest, CallbackAfterNotifyRunsInline) {
  ReadySignal signal;
  signal.Notify();
  int fired = 0;
  signal.OnReady([&fired] { ++fired; });
  EXPECT_EQ(fired, 1);
}

TEST(ReadySignalTest, NotifyIsIdempotent) {
  ReadySignal signal;
  int fired = 0;
  signal.OnReady([&fired] { ++fired; });
  signal.Notify();
  signal.Notify();
  EXPECT_EQ(fired, 1);
}

TEST(ReadySignalTest, CallbacksRunInRegistrationOrder) {
  ReadySignal signal;
  std::vector<int> order;
  signal.OnReady([&order] { order.push_back(1); });
  signal.OnReady([&order] { order.push_back(2); });
  signal.Notify();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

TEST(ExecutorTest, SharedIsSingletonAndCountsInstances) {
  Executor* shared = Executor::Shared();
  ASSERT_NE(shared, nullptr);
  EXPECT_GE(shared->num_threads(), 4);
  int64_t before = Executor::instances_created();
  EXPECT_EQ(Executor::Shared(), shared);
  EXPECT_EQ(Executor::instances_created(), before);  // no new instance
  {
    Executor local(1);
    EXPECT_EQ(Executor::instances_created(), before + 1);
  }
}

// Shutdown-race regression (run under TSan in the sanitizer matrix):
// destruction while producers are still submitting and ReadySignal
// waiters are pending must drain every accepted task exactly once. The
// original bug: Submit bumped the atomic pending_ counter and notified
// idle_cv_ without passing through idle_mu_, so a drain waiter that had
// just evaluated its predicate could miss the wake-up and block forever.
TEST(ExecutorTest, ShutdownRacesWithSubmittersAndSignalWaiters) {
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> executed{0};
    std::atomic<int> accepted{0};
    auto signal = std::make_shared<ReadySignal>();
    {
      Executor executor(3);
      // Tasks queued behind a ReadySignal callback chain.
      for (int i = 0; i < 8; ++i) {
        signal->OnReady([&executed] { executed.fetch_add(1); });
      }
      // Concurrent producers racing the destructor's drain.
      std::vector<std::thread> producers;
      for (int p = 0; p < 3; ++p) {
        producers.emplace_back([&executor, &executed, &accepted, signal] {
          for (int i = 0; i < 40; ++i) {
            executor.Submit([&executed] { executed.fetch_add(1); });
            accepted.fetch_add(1);
          }
          signal->Notify();
        });
      }
      for (auto& t : producers) t.join();
      // Destructor runs here with a full queue and fired signal.
    }
    EXPECT_EQ(executed.load(), accepted.load() + 8) << "round " << round;
  }
}

TEST(ExecutorTest, TagScopeChargesWorkToTheTag) {
  Executor executor(2);
  constexpr uint64_t kTag = 42;
  EXPECT_EQ(Executor::CurrentTag(), 0u);
  std::atomic<int> done{0};
  {
    Executor::TagScope scope(kTag);
    EXPECT_EQ(Executor::CurrentTag(), kTag);
    for (int i = 0; i < 10; ++i) {
      executor.Submit([&done] {
        // Tag inheritance: work submitted from inside a tagged task is
        // charged to the same tag.
        EXPECT_EQ(Executor::CurrentTag(), 42u);
        std::this_thread::sleep_for(milliseconds(1));
        done.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(Executor::CurrentTag(), 0u);
  while (done.load() < 10) std::this_thread::yield();
  // Untagged work is not charged anywhere.
  std::atomic<bool> fenced{false};
  executor.Submit([&fenced] { fenced = true; });
  while (!fenced.load()) std::this_thread::yield();
  TagStats stats = executor.tag_stats(kTag);
  EXPECT_EQ(stats.tasks_executed, 10);
  EXPECT_GT(stats.busy_micros, 0);
  EXPECT_EQ(executor.tag_stats(7777).tasks_executed, 0);
}

TEST(ThrottleTest, QueuedTasksKeepTheSubmittersTag) {
  Executor executor(2);
  Throttle throttle(&executor, 1);
  std::atomic<int> done{0};
  // Saturate the single slot from tag 1; the queued tasks launch later
  // from whichever worker frees the slot, but must still be charged to
  // the tag captured at Throttle::Submit time.
  {
    Executor::TagScope scope(1);
    for (int i = 0; i < 6; ++i) {
      throttle.Submit([&done] {
        EXPECT_EQ(Executor::CurrentTag(), 1u);
        std::this_thread::sleep_for(milliseconds(1));
        done.fetch_add(1);
      });
    }
  }
  {
    Executor::TagScope scope(2);
    for (int i = 0; i < 6; ++i) {
      throttle.Submit([&done] {
        EXPECT_EQ(Executor::CurrentTag(), 2u);
        done.fetch_add(1);
      });
    }
  }
  while (done.load() < 12) std::this_thread::yield();
  EXPECT_EQ(executor.tag_stats(1).tasks_executed, 6);
  EXPECT_EQ(executor.tag_stats(2).tasks_executed, 6);
}

TEST(ExecutorTest, StatsCountQueueWaitAndExecution) {
  Executor executor(2);
  TaskGroup group(&executor);
  for (int i = 0; i < 20; ++i) {
    group.Submit([] { std::this_thread::sleep_for(milliseconds(1)); });
  }
  group.Wait();
  std::atomic<bool> fenced{false};
  executor.Submit([&fenced] { fenced = true; });
  while (!fenced.load()) std::this_thread::yield();
  ExecutorStats stats = executor.stats();
  EXPECT_GE(stats.tasks_executed, 1);
  EXPECT_GE(stats.queue_wait_micros, 0);
}

}  // namespace
}  // namespace gesall

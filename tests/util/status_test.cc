#include "util/status.h"

#include <gtest/gtest.h>

namespace gesall {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::IOError("disk gone");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIOError());
  EXPECT_EQ(st.message(), "disk gone");
  EXPECT_EQ(st.ToString(), "IOError: disk gone");
}

TEST(StatusTest, CopyPreservesState) {
  Status st = Status::Corruption("bad block");
  Status copy = st;
  EXPECT_TRUE(copy.IsCorruption());
  EXPECT_EQ(copy.message(), "bad block");
}

TEST(StatusTest, AllConstructorsMapToCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

Result<int> Doubler(Result<int> in) {
  GESALL_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubler(21).ValueOrDie(), 42);
  EXPECT_TRUE(Doubler(Status::Internal("boom")).status().code() ==
              StatusCode::kInternal);
}

Status FailThrough() {
  GESALL_RETURN_NOT_OK(Status::OK());
  GESALL_RETURN_NOT_OK(Status::Cancelled("stop"));
  return Status::Internal("unreachable");
}

TEST(ResultTest, ReturnNotOkShortCircuits) {
  EXPECT_EQ(FailThrough().code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace gesall

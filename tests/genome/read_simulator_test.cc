#include "genome/read_simulator.h"

#include <gtest/gtest.h>

#include "genome/reference_generator.h"

namespace gesall {
namespace {

struct Fixture {
  ReferenceGenome ref;
  DonorGenome donor;
  SimulatedSample sample;
};

Fixture MakeFixture(double coverage = 5.0) {
  Fixture f;
  ReferenceGeneratorOptions ro;
  ro.num_chromosomes = 2;
  ro.chromosome_length = 100'000;
  f.ref = GenerateReference(ro);
  f.donor = PlantVariants(f.ref, VariantPlanterOptions{});
  ReadSimulatorOptions so;
  so.coverage = coverage;
  f.sample = SimulateReads(f.donor, so);
  return f;
}

TEST(ReadSimulatorTest, PairCountMatchesCoverage) {
  auto f = MakeFixture(5.0);
  int64_t expected = static_cast<int64_t>(
      5.0 * f.ref.TotalLength() / (2.0 * 100));
  EXPECT_EQ(static_cast<int64_t>(f.sample.mate1.size()), expected);
  EXPECT_EQ(f.sample.mate1.size(), f.sample.mate2.size());
  EXPECT_EQ(f.sample.mate1.size(), f.sample.truth.size());
}

TEST(ReadSimulatorTest, ReadShape) {
  auto f = MakeFixture(2.0);
  for (size_t i = 0; i < f.sample.mate1.size(); ++i) {
    EXPECT_EQ(f.sample.mate1[i].sequence.size(), 100u);
    EXPECT_EQ(f.sample.mate1[i].quality.size(), 100u);
    EXPECT_EQ(f.sample.mate1[i].name, f.sample.mate2[i].name);
  }
}

TEST(ReadSimulatorTest, MatesComeFromFragmentEnds) {
  auto f = MakeFixture(2.0);
  int verified = 0;
  for (size_t i = 0; i < f.sample.truth.size() && verified < 50; ++i) {
    const auto& t = f.sample.truth[i];
    if (t.junk_mate2) continue;
    // Mate 1 should roughly match the donor haplotype at the fragment
    // start (allowing sequencing errors).
    const auto& hap = f.donor.haplotypes[t.chrom][t.haplotype].sequence;
    // Locate the fragment start on the haplotype by scanning around the
    // reference coordinate (SNP-dominated maps are near-identity).
    const std::string& m1 = f.sample.mate1[i].sequence;
    int best = 0;
    for (int64_t s = std::max<int64_t>(0, t.ref_start - 32);
         s <= t.ref_start + 32 &&
         s + 100 <= static_cast<int64_t>(hap.size());
         ++s) {
      int same = 0;
      for (int j = 0; j < 100; ++j) same += hap[s + j] == m1[j];
      best = std::max(best, same);
    }
    EXPECT_GT(best, 90) << "pair " << i;
    ++verified;
  }
  EXPECT_GT(verified, 0);
}

TEST(ReadSimulatorTest, DuplicateRateNearTarget) {
  auto f = MakeFixture(8.0);
  int64_t dups = 0;
  for (const auto& t : f.sample.truth) dups += t.duplicate;
  double rate = dups / static_cast<double>(f.sample.truth.size());
  EXPECT_NEAR(rate, 0.02, 0.01);
}

TEST(ReadSimulatorTest, JunkMateRateNearTarget) {
  auto f = MakeFixture(8.0);
  int64_t junk = 0;
  for (const auto& t : f.sample.truth) junk += t.junk_mate2;
  double rate = junk / static_cast<double>(f.sample.truth.size());
  EXPECT_NEAR(rate, 0.003, 0.003);
}

TEST(ReadSimulatorTest, QualityDecaysAlongRead) {
  auto f = MakeFixture(5.0);
  double head = 0, tail = 0;
  int64_t n = 0;
  for (const auto& r : f.sample.mate1) {
    head += r.quality[5] - 33;
    tail += r.quality[95] - 33;
    ++n;
  }
  EXPECT_GT(head / n, tail / n + 5);
}

TEST(ReadSimulatorTest, Deterministic) {
  auto a = MakeFixture(2.0);
  auto b = MakeFixture(2.0);
  ASSERT_EQ(a.sample.mate1.size(), b.sample.mate1.size());
  EXPECT_EQ(a.sample.mate1[0], b.sample.mate1[0]);
  EXPECT_EQ(a.sample.mate2.back(), b.sample.mate2.back());
}

TEST(ReadSimulatorTest, InsertSizesNearDistribution) {
  auto f = MakeFixture(5.0);
  double sum = 0;
  int64_t n = 0;
  for (const auto& t : f.sample.truth) {
    sum += static_cast<double>(t.ref_end - t.ref_start);
    ++n;
  }
  EXPECT_NEAR(sum / n, 400.0, 15.0);
}

}  // namespace
}  // namespace gesall

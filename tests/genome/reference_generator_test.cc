#include "genome/reference_generator.h"

#include <gtest/gtest.h>

namespace gesall {
namespace {

ReferenceGeneratorOptions SmallOptions() {
  ReferenceGeneratorOptions o;
  o.num_chromosomes = 3;
  o.chromosome_length = 50'000;
  return o;
}

TEST(ReferenceGeneratorTest, Shape) {
  auto g = GenerateReference(SmallOptions());
  ASSERT_EQ(g.chromosomes.size(), 3u);
  for (const auto& c : g.chromosomes) {
    EXPECT_EQ(c.sequence.size(), 50'000u);
  }
  EXPECT_EQ(g.chromosomes[0].name, "chr1");
  EXPECT_EQ(g.chromosomes[2].name, "chr3");
  EXPECT_EQ(g.TotalLength(), 150'000);
}

TEST(ReferenceGeneratorTest, OnlyValidBases) {
  auto g = GenerateReference(SmallOptions());
  for (const auto& c : g.chromosomes) {
    for (char b : c.sequence) {
      EXPECT_TRUE(b == 'A' || b == 'C' || b == 'G' || b == 'T') << b;
    }
  }
}

TEST(ReferenceGeneratorTest, Deterministic) {
  auto a = GenerateReference(SmallOptions());
  auto b = GenerateReference(SmallOptions());
  EXPECT_EQ(a.chromosomes[0].sequence, b.chromosomes[0].sequence);
}

TEST(ReferenceGeneratorTest, SeedChangesSequence) {
  auto o = SmallOptions();
  auto a = GenerateReference(o);
  o.seed = 99;
  auto b = GenerateReference(o);
  EXPECT_NE(a.chromosomes[0].sequence, b.chromosomes[0].sequence);
}

TEST(ReferenceGeneratorTest, GcContentNearTarget) {
  auto o = SmallOptions();
  o.repeat_fraction = 0;  // repeats skew local GC
  auto g = GenerateReference(o);
  int64_t gc = 0, total = 0;
  for (const auto& c : g.chromosomes) {
    for (char b : c.sequence) {
      gc += (b == 'G' || b == 'C');
      ++total;
    }
  }
  EXPECT_NEAR(gc / static_cast<double>(total), 0.41, 0.02);
}

TEST(ReferenceGeneratorTest, AnnotatesCentromeres) {
  auto g = GenerateReference(SmallOptions());
  ASSERT_EQ(g.centromeres.size(), 3u);
  for (const auto& r : g.centromeres) {
    EXPECT_GT(r.end, r.start);
    // Mid-chromosome placement.
    EXPECT_GT(r.start, 50'000 / 4);
    EXPECT_LT(r.end, 3 * 50'000 / 4);
    EXPECT_TRUE(g.InCentromere(r.chrom, (r.start + r.end) / 2));
  }
}

TEST(ReferenceGeneratorTest, AnnotatesBlacklist) {
  auto o = SmallOptions();
  auto g = GenerateReference(o);
  EXPECT_EQ(g.blacklist.size(),
            static_cast<size_t>(o.num_chromosomes *
                                o.blacklist_per_chromosome));
  for (const auto& r : g.blacklist) {
    EXPECT_EQ(r.end - r.start, o.blacklist_length);
  }
}

TEST(ReferenceGeneratorTest, CentromereIsRepetitive) {
  // A window inside the centromere should recur elsewhere in the
  // centromere (satellite tandem structure).
  auto g = GenerateReference(SmallOptions());
  const auto& cen = g.centromeres[0];
  const std::string& seq = g.chromosomes[0].sequence;
  std::string probe = seq.substr(cen.start + 171, 40);
  // The same motif offset one monomer later should be nearly identical.
  std::string next = seq.substr(cen.start + 2 * 171, 40);
  int same = 0;
  for (int i = 0; i < 40; ++i) same += probe[i] == next[i];
  EXPECT_GT(same, 30);
}

}  // namespace
}  // namespace gesall

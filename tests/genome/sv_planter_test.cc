#include "genome/sv_planter.h"

#include <gtest/gtest.h>

#include "genome/reference_generator.h"

namespace gesall {
namespace {

using Type = StructuralVariantTruth::Type;

struct Fixture {
  ReferenceGenome ref;
  DonorGenome donor;
  std::vector<StructuralVariantTruth> svs;
};

Fixture Make(SvPlanterOptions opt = {}) {
  Fixture f;
  ReferenceGeneratorOptions ro;
  ro.num_chromosomes = 2;
  ro.chromosome_length = 100'000;
  f.ref = GenerateReference(ro);
  VariantPlanterOptions vp;
  vp.snp_rate = 0.0005;
  vp.indel_rate = 0.0;
  f.donor = PlantVariants(f.ref, vp);
  f.svs = PlantStructuralVariants(&f.donor, opt);
  return f;
}

TEST(SvPlanterTest, PlantsRequestedCounts) {
  auto f = Make();
  int dels = 0, inss = 0, invs = 0;
  for (const auto& sv : f.svs) {
    dels += sv.type == Type::kDeletion;
    inss += sv.type == Type::kInsertion;
    invs += sv.type == Type::kInversion;
  }
  EXPECT_EQ(dels, 2);  // 1 per chromosome x 2 chromosomes
  EXPECT_EQ(inss, 2);
  EXPECT_EQ(invs, 2);
}

TEST(SvPlanterTest, DeletionShrinksHaplotypes) {
  SvPlanterOptions opt;
  opt.insertions_per_chromosome = 0;
  opt.inversions_per_chromosome = 0;
  auto f = Make(opt);
  for (size_t c = 0; c < 2; ++c) {
    int64_t deleted = 0;
    for (const auto& sv : f.svs) {
      if (sv.chrom == static_cast<int32_t>(c) &&
          sv.type == Type::kDeletion) {
        deleted += sv.length;
      }
    }
    ASSERT_GT(deleted, 0);
    for (int hap = 0; hap < 2; ++hap) {
      int64_t hap_len =
          static_cast<int64_t>(f.donor.haplotypes[c][hap].sequence.size());
      EXPECT_NEAR(static_cast<double>(hap_len),
                  static_cast<double>(100'000 - deleted), 1.0)
          << "chrom " << c << " hap " << hap;
    }
  }
}

TEST(SvPlanterTest, InsertionGrowsHaplotypes) {
  SvPlanterOptions opt;
  opt.deletions_per_chromosome = 0;
  opt.inversions_per_chromosome = 0;
  auto f = Make(opt);
  for (size_t c = 0; c < 2; ++c) {
    int64_t inserted = 0;
    for (const auto& sv : f.svs) {
      if (sv.chrom == static_cast<int32_t>(c)) inserted += sv.length;
    }
    int64_t hap_len =
        static_cast<int64_t>(f.donor.haplotypes[c][0].sequence.size());
    EXPECT_NEAR(static_cast<double>(hap_len),
                static_cast<double>(100'000 + inserted), 1.0);
  }
}

TEST(SvPlanterTest, CoordinateMapSkipsDeletions) {
  SvPlanterOptions opt;
  opt.insertions_per_chromosome = 0;
  opt.inversions_per_chromosome = 0;
  auto f = Make(opt);
  const auto& sv = f.svs[0];
  const auto& hap = f.donor.haplotypes[sv.chrom][0];
  // A haplotype position just past the deletion's left breakpoint maps
  // to a reference position at/after the right breakpoint.
  int64_t hap_at_break = hap.to_reference.FromReference(sv.start);
  int64_t ref_after = hap.to_reference.ToReference(hap_at_break + 10);
  EXPECT_GE(ref_after, sv.end);
}

TEST(SvPlanterTest, SequenceMatchesReferenceOutsideSvs) {
  auto f = Make();
  const auto& hap = f.donor.haplotypes[0][0];
  // Sample positions far from any SV: the haplotype base must match the
  // reference (modulo planted SNPs, excluded by snp-free window checks).
  const std::string& ref_seq = f.ref.chromosomes[0].sequence;
  int checked = 0, matches = 0;
  for (int64_t hp = 100; hp < static_cast<int64_t>(hap.sequence.size());
       hp += 977) {
    int64_t rp = hap.to_reference.ToReference(hp);
    bool near_sv = false;
    for (const auto& sv : f.svs) {
      if (sv.chrom == 0 && rp > sv.start - 100 && rp < sv.end + 100) {
        near_sv = true;
      }
    }
    if (near_sv || rp >= static_cast<int64_t>(ref_seq.size())) continue;
    ++checked;
    matches += hap.sequence[hp] == ref_seq[rp];
  }
  ASSERT_GT(checked, 20);
  // SNPs are rare (5e-4): the vast majority must match.
  EXPECT_GT(matches, checked * 0.97);
}

TEST(SvPlanterTest, InversionPreservesLength) {
  SvPlanterOptions opt;
  opt.deletions_per_chromosome = 0;
  opt.insertions_per_chromosome = 0;
  auto f = Make(opt);
  for (size_t c = 0; c < 2; ++c) {
    // SNP-only donors have reference-length haplotypes; inversions keep it.
    EXPECT_EQ(f.donor.haplotypes[c][0].sequence.size(), 100'000u);
  }
  // The inverted block differs from the reference.
  const auto& sv = f.svs[0];
  const auto& hap = f.donor.haplotypes[sv.chrom][0].sequence;
  const std::string& ref_seq = f.ref.chromosomes[sv.chrom].sequence;
  int diff = 0;
  for (int64_t p = sv.start; p < sv.end; ++p) diff += hap[p] != ref_seq[p];
  EXPECT_GT(diff, sv.length / 3);
}

TEST(SvPlanterTest, Deterministic) {
  auto a = Make();
  auto b = Make();
  ASSERT_EQ(a.svs.size(), b.svs.size());
  for (size_t i = 0; i < a.svs.size(); ++i) {
    EXPECT_EQ(a.svs[i].start, b.svs[i].start);
    EXPECT_EQ(a.svs[i].length, b.svs[i].length);
  }
  EXPECT_EQ(a.donor.haplotypes[0][0].sequence,
            b.donor.haplotypes[0][0].sequence);
}

}  // namespace
}  // namespace gesall

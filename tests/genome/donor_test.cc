#include "genome/donor.h"

#include <gtest/gtest.h>

#include "genome/reference_generator.h"

namespace gesall {
namespace {

ReferenceGenome SmallReference() {
  ReferenceGeneratorOptions o;
  o.num_chromosomes = 2;
  o.chromosome_length = 100'000;
  return GenerateReference(o);
}

TEST(CoordinateMapTest, IdentityWhenEmpty) {
  CoordinateMap m;
  EXPECT_EQ(m.ToReference(1234), 1234);
}

TEST(CoordinateMapTest, ShiftsAfterIndel) {
  CoordinateMap m;
  m.AddSegment(0, 0);
  // 3-base insertion at hap position 100: hap 103 maps back to ref 100.
  m.AddSegment(103, 100);
  EXPECT_EQ(m.ToReference(50), 50);
  EXPECT_EQ(m.ToReference(103), 100);
  EXPECT_EQ(m.ToReference(200), 197);
}

TEST(DonorTest, TruthSetDensityNearRates) {
  auto ref = SmallReference();
  VariantPlanterOptions o;
  auto donor = PlantVariants(ref, o);
  double per_base =
      donor.truth.size() / static_cast<double>(ref.TotalLength());
  EXPECT_NEAR(per_base, o.snp_rate + o.indel_rate, 3e-4);
  int64_t snps = 0;
  for (const auto& v : donor.truth) snps += v.IsSnp();
  EXPECT_GT(snps, static_cast<int64_t>(donor.truth.size() * 0.8));
}

TEST(DonorTest, VariantsMatchReferenceAllele) {
  auto ref = SmallReference();
  auto donor = PlantVariants(ref, VariantPlanterOptions{});
  for (const auto& v : donor.truth) {
    ASSERT_EQ(ref.chromosomes[v.chrom].sequence.substr(v.pos, v.ref.size()),
              v.ref);
    EXPECT_NE(v.ref, v.alt);
  }
}

TEST(DonorTest, HaplotypesCarryPlantedSnps) {
  auto ref = SmallReference();
  auto donor = PlantVariants(ref, VariantPlanterOptions{});
  int checked = 0;
  for (const auto& v : donor.truth) {
    if (!v.IsSnp()) continue;
    for (int hap = 0; hap < 2; ++hap) {
      bool carried = v.homozygous || v.haplotype == hap;
      const auto& h = donor.haplotypes[v.chrom][hap];
      // Walk the haplotype to locate the reference position: use the
      // coordinate map inverse by scanning nearby hap positions.
      // For SNP-only mapping the offset is piecewise constant, so probe a
      // window around v.pos.
      bool found_alt = false, found_ref = false;
      for (int64_t hp = std::max<int64_t>(0, v.pos - 64);
           hp < std::min<int64_t>(
                    static_cast<int64_t>(h.sequence.size()), v.pos + 64);
           ++hp) {
        if (h.to_reference.ToReference(hp) == v.pos) {
          found_alt = h.sequence[hp] == v.alt[0];
          found_ref = h.sequence[hp] == v.ref[0];
          break;
        }
      }
      if (carried) {
        EXPECT_TRUE(found_alt) << "variant at " << v.pos;
      } else {
        EXPECT_TRUE(found_ref) << "variant at " << v.pos;
      }
      ++checked;
    }
    if (checked > 200) break;  // sample is enough
  }
  EXPECT_GT(checked, 0);
}

TEST(DonorTest, HomFractionRespected) {
  auto ref = SmallReference();
  VariantPlanterOptions o;
  o.hom_fraction = 0.35;
  auto donor = PlantVariants(ref, o);
  int64_t hom = 0;
  for (const auto& v : donor.truth) hom += v.homozygous;
  double frac = hom / static_cast<double>(donor.truth.size());
  EXPECT_NEAR(frac, 0.35, 0.1);
}

TEST(DonorTest, IndelsShiftCoordinates) {
  auto ref = SmallReference();
  VariantPlanterOptions o;
  o.snp_rate = 0.0;
  o.indel_rate = 0.001;
  auto donor = PlantVariants(ref, o);
  // With indels-only planting, haplotype length differs from reference.
  bool any_length_change = false;
  for (size_t c = 0; c < ref.chromosomes.size(); ++c) {
    for (int hap = 0; hap < 2; ++hap) {
      if (donor.haplotypes[c][hap].sequence.size() !=
          ref.chromosomes[c].sequence.size()) {
        any_length_change = true;
      }
    }
  }
  EXPECT_TRUE(any_length_change);
  // Terminal positions still map within the reference.
  for (size_t c = 0; c < ref.chromosomes.size(); ++c) {
    const auto& h = donor.haplotypes[c][0];
    int64_t last = static_cast<int64_t>(h.sequence.size()) - 1;
    int64_t mapped = h.to_reference.ToReference(last);
    EXPECT_NEAR(static_cast<double>(mapped),
                static_cast<double>(ref.chromosomes[c].sequence.size() - 1),
                200.0);
  }
}

}  // namespace
}  // namespace gesall

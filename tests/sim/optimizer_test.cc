#include "sim/optimizer.h"

#include <gtest/gtest.h>

namespace gesall {
namespace {

class OptimizerTest : public testing::Test {
 protected:
  OptimizerTest()
      : optimizer_(ClusterSpec::A(), WorkloadSpec::NA12878(),
                   GenomicsRates{}) {}
  PipelineOptimizer optimizer_;
};

TEST_F(OptimizerTest, EnumeratesNontrivialSearchSpace) {
  auto plans = optimizer_.EnumeratePlans();
  EXPECT_GT(plans.size(), 50u);
}

TEST_F(OptimizerTest, EvaluateFillsPredictions) {
  PipelinePlan plan;
  plan.align_maps_per_node = 4;
  plan.align_threads_per_map = 4;
  auto evaluated = optimizer_.Evaluate(plan);
  EXPECT_GT(evaluated.wall_seconds, 0);
  EXPECT_GT(evaluated.slot_seconds, 0);
  EXPECT_EQ(evaluated.round_walls.size(), 5u);
}

TEST_F(OptimizerTest, UnboundedDeadlinePicksCheapestPlan) {
  OptimizerObjective objective;  // infinite deadline
  auto chosen = optimizer_.Optimize(objective);
  // Every enumerated plan must cost at least as much in slot-seconds.
  for (const auto& p : optimizer_.EnumeratePlans()) {
    auto e = optimizer_.Evaluate(p);
    EXPECT_GE(e.slot_seconds, chosen.slot_seconds - 1e-6);
  }
}

TEST_F(OptimizerTest, TightDeadlineFallsBackToFastest) {
  OptimizerObjective impossible;
  impossible.deadline_seconds = 1.0;
  auto chosen = optimizer_.Optimize(impossible);
  for (const auto& p : optimizer_.EnumeratePlans()) {
    auto e = optimizer_.Evaluate(p);
    EXPECT_GE(e.wall_seconds, chosen.wall_seconds - 1e-6);
  }
}

TEST_F(OptimizerTest, DeadlineTradesOccupancyForSpeed) {
  OptimizerObjective loose;
  loose.deadline_seconds = 4.0 * 86400;
  OptimizerObjective tight;
  tight.deadline_seconds = 0.75 * 86400;
  auto cheap = optimizer_.Optimize(loose);
  auto fast = optimizer_.Optimize(tight);
  EXPECT_LE(fast.wall_seconds, tight.deadline_seconds);
  EXPECT_LE(cheap.slot_seconds, fast.slot_seconds + 1e-6);
}

TEST_F(OptimizerTest, ChosenPlanPrefersMarkDupOpt) {
  // MarkDup_opt dominates reg in both wall and occupancy, so no deadline
  // should ever select reg.
  for (double deadline : {0.5 * 86400, 1.0 * 86400, 7.0 * 86400}) {
    OptimizerObjective objective;
    objective.deadline_seconds = deadline;
    auto plan = optimizer_.Optimize(objective);
    EXPECT_TRUE(plan.markdup_optimized) << deadline;
  }
}

TEST_F(OptimizerTest, MemoryBoundsSlots) {
  // Cluster A has 64 GB per node -> at most 4 tasks of 13 GB.
  for (const auto& p : optimizer_.EnumeratePlans()) {
    EXPECT_LE(p.shuffle_slots_per_node, 4);
    EXPECT_LE(p.align_maps_per_node, 24);
  }
}

TEST(OptimizerClusterBTest, LargeMemoryAllowsMoreSlots) {
  PipelineOptimizer optimizer(ClusterSpec::B(), WorkloadSpec::NA12878(),
                              GenomicsRates{});
  int max_slots = 0;
  for (const auto& p : optimizer.EnumeratePlans()) {
    max_slots = std::max(max_slots, p.shuffle_slots_per_node);
  }
  EXPECT_GE(max_slots, 16);  // 256 GB / 13 GB, capped by 16 cores
}

}  // namespace
}  // namespace gesall

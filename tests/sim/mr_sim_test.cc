#include "sim/mr_sim.h"

#include <gtest/gtest.h>

#include "sim/genomics.h"

namespace gesall {
namespace {

MrJobSpec TinyMapOnly(int tasks, int slots) {
  MrJobSpec job;
  job.name = "tiny";
  job.num_map_tasks = tasks;
  job.map_input_bytes_per_task = 100 * 1000 * 1000;
  job.map_cpu_seconds_per_task = 10.0;
  job.map_slots_per_node = slots;
  job.task_startup_seconds = 1.0;
  return job;
}

TEST(MrSimTest, MapOnlySingleWave) {
  ClusterSpec cluster = ClusterSpec::A();
  auto result = SimulateMrJob(cluster, TinyMapOnly(15, 1));
  // One task per node: wall = startup + read + cpu.
  double read = 100e6 / (140.0 * 1e6);
  EXPECT_NEAR(result.wall_seconds, 1.0 + read + 10.0, 0.01);
  EXPECT_EQ(result.tasks.size(), 15u);
}

TEST(MrSimTest, WavesSerialize) {
  ClusterSpec cluster = ClusterSpec::A();
  auto one_wave = SimulateMrJob(cluster, TinyMapOnly(15, 1));
  auto two_waves = SimulateMrJob(cluster, TinyMapOnly(30, 1));
  EXPECT_GT(two_waves.wall_seconds, 1.9 * one_wave.wall_seconds);
}

TEST(MrSimTest, MoreSlotsShortenCpuBoundJobs) {
  ClusterSpec cluster = ClusterSpec::A();
  MrJobSpec job = TinyMapOnly(60, 1);
  job.map_input_bytes_per_task = 0;  // pure CPU
  auto slow = SimulateMrJob(cluster, job);
  job.map_slots_per_node = 4;
  auto fast = SimulateMrJob(cluster, job);
  EXPECT_LT(fast.wall_seconds, slow.wall_seconds / 3.0);
}

TEST(MrSimTest, DiskContentionSlowsColocatedTasks) {
  ClusterSpec cluster = ClusterSpec::A();  // 1 disk per node
  MrJobSpec job = TinyMapOnly(6, 6);       // 6 tasks share one node/disk
  job.map_cpu_seconds_per_task = 0.0;
  job.map_input_bytes_per_task = 1'400'000'000;  // 10 s of disk each
  auto result = SimulateMrJob(cluster, job);
  // All 6 reads serialize on the single disk: ~60 s, not ~10 s.
  EXPECT_GT(result.wall_seconds, 55.0);
}

TEST(MrSimTest, MultithreadedMapsUseScalingModel) {
  ClusterSpec cluster = ClusterSpec::A();
  MrJobSpec job = TinyMapOnly(15, 1);
  job.map_cpu_seconds_per_task = 240.0;
  job.map_input_bytes_per_task = 0;
  auto single = SimulateMrJob(cluster, job);
  job.threads_per_map = 24;
  auto threaded = SimulateMrJob(cluster, job);
  double speedup = single.wall_seconds / threaded.wall_seconds;
  EXPECT_GT(speedup, 8.0);
  EXPECT_LT(speedup, 24.0);  // sublinear
}

TEST(MrSimTest, SpillingChargesMergeIo) {
  ClusterSpec cluster = ClusterSpec::A();
  MrJobSpec job = TinyMapOnly(1, 1);
  job.map_cpu_seconds_per_task = 0;
  job.map_input_bytes_per_task = 0;
  job.map_output_bytes_per_task = 1'000'000'000;
  job.sort_buffer_bytes = 2LL << 30;  // no spill: single run
  job.num_reduce_tasks = 0;
  auto no_spill = SimulateMrJob(cluster, job);
  job.sort_buffer_bytes = 100'000'000;  // 10 spills -> map-side merge
  auto spill = SimulateMrJob(cluster, job);
  EXPECT_GT(spill.wall_seconds, no_spill.wall_seconds * 2.5);
}

MrJobSpec ShuffleJob(int64_t map_output_per_task) {
  MrJobSpec job;
  job.name = "shuffle";
  job.num_map_tasks = 15;
  job.map_cpu_seconds_per_task = 5;
  job.map_output_bytes_per_task = map_output_per_task;
  job.num_reduce_tasks = 15;
  job.reduce_cpu_seconds_per_task = 5;
  job.map_slots_per_node = 1;
  job.reduce_slots_per_node = 1;
  return job;
}

TEST(MrSimTest, ReducePhasesOrdered) {
  ClusterSpec cluster = ClusterSpec::A();
  auto result = SimulateMrJob(cluster, ShuffleJob(1'000'000'000));
  int reduces = 0;
  for (const auto& t : result.tasks) {
    if (t.type != SimTask::Type::kReduce) continue;
    ++reduces;
    EXPECT_GT(t.shuffle_merge_end, t.start);
    EXPECT_GT(t.end, t.shuffle_merge_end);
    // Shuffle cannot complete before the last map finishes.
    EXPECT_GE(t.shuffle_merge_end, result.map_phase_end);
  }
  EXPECT_EQ(reduces, 15);
  EXPECT_GT(result.avg_shuffle_merge_seconds, 0);
  EXPECT_GT(result.avg_reduce_seconds, 0);
}

TEST(MrSimTest, SlowstartAffectsSlotOccupancy) {
  ClusterSpec cluster = ClusterSpec::A();
  auto early = ShuffleJob(500'000'000);
  early.slowstart = 0.05;
  auto late = ShuffleJob(500'000'000);
  late.slowstart = 0.80;
  auto r_early = SimulateMrJob(cluster, early);
  auto r_late = SimulateMrJob(cluster, late);
  // Early-started reducers occupy slots longer (waiting for map output),
  // inflating serial slot time — the Table 5 efficiency effect.
  EXPECT_GT(r_early.serial_slot_seconds, r_late.serial_slot_seconds);
  // Wall time is barely affected.
  EXPECT_NEAR(r_early.wall_seconds / r_late.wall_seconds, 1.0, 0.25);
}

TEST(MrSimTest, MultipassMergeKicksInBeyondFanIn) {
  // Scalla-style multipass model: once a reducer's shuffled bytes exceed
  // merge_factor x shuffle_buffer, an extra pass re-reads and re-writes
  // everything, so doubling the data more than doubles merge I/O.
  ClusterSpec cluster = ClusterSpec::B(1);
  cluster.node.memory_bytes = 4LL << 30;  // too small for cached merges
  auto small = SimulateMrJob(cluster, ShuffleJob(8'000'000'000));
  auto big = SimulateMrJob(cluster, ShuffleJob(16'000'000'000));
  EXPECT_GT(static_cast<double>(big.reduce_merge_bytes),
            2.5 * static_cast<double>(small.reduce_merge_bytes));
}

TEST(MrSimTest, SinglePassMergeBelowFanIn) {
  // Below the fan-in threshold, merge I/O is one streamed pass: linear.
  ClusterSpec cluster = ClusterSpec::B(1);
  cluster.node.memory_bytes = 1LL << 30;  // force the disk-merge path
  auto a = SimulateMrJob(cluster, ShuffleJob(2'000'000'000));
  auto b = SimulateMrJob(cluster, ShuffleJob(4'000'000'000));
  EXPECT_NEAR(static_cast<double>(b.reduce_merge_bytes),
              2.0 * static_cast<double>(a.reduce_merge_bytes),
              0.1 * static_cast<double>(b.reduce_merge_bytes));
}

TEST(MrSimTest, MoreDisksRelieveMerge) {
  auto job = ShuffleJob(8'000'000'000);
  job.num_map_tasks = 16;
  job.num_reduce_tasks = 64;
  job.map_slots_per_node = 4;
  job.reduce_slots_per_node = 16;
  auto one_disk = SimulateMrJob(ClusterSpec::B(1), job);
  auto six_disks = SimulateMrJob(ClusterSpec::B(6), job);
  EXPECT_LT(six_disks.wall_seconds, one_disk.wall_seconds * 0.7);
}

TEST(MrSimTest, UtilizationTracesProduced) {
  ClusterSpec cluster = ClusterSpec::B(2);
  auto result = SimulateMrJob(cluster, ShuffleJob(2'000'000'000));
  EXPECT_EQ(result.disk_utilization.size(), 4u * 2u);
  double peak = 0;
  for (const auto& trace : result.disk_utilization) {
    for (double u : trace) peak = std::max(peak, u);
  }
  EXPECT_GT(peak, 0.5);
}

TEST(GenomicsJobTest, AlignmentJobShape) {
  auto workload = WorkloadSpec::NA12878();
  GenomicsRates rates;
  auto job = AlignmentJob(workload, rates, ClusterSpec::A(), 90, 6, 4);
  EXPECT_EQ(job.num_map_tasks, 90);
  EXPECT_EQ(job.num_reduce_tasks, 0);
  EXPECT_EQ(job.threads_per_map, 4);
  EXPECT_EQ(job.map_fixed_read_bytes, rates.bwa_index_bytes);
  EXPECT_GT(job.map_cpu_seconds_per_task, 1000);
}

TEST(GenomicsJobTest, MarkDupShuffleRatio) {
  auto workload = WorkloadSpec::NA12878();
  GenomicsRates rates;
  auto opt = MarkDuplicatesJob(workload, rates, ClusterSpec::A(), true, 510,
                               6);
  auto reg = MarkDuplicatesJob(workload, rates, ClusterSpec::A(), false, 510,
                               6);
  double ratio =
      static_cast<double>(reg.map_output_bytes_per_task) /
      static_cast<double>(opt.map_output_bytes_per_task);
  EXPECT_NEAR(ratio, 785.0 / 375.0, 0.1);  // paper byte sizes
  // Paper absolute anchors: ~375 GB vs ~785 GB shuffled.
  double opt_total = static_cast<double>(opt.map_output_bytes_per_task) * 510;
  double reg_total = static_cast<double>(reg.map_output_bytes_per_task) * 510;
  EXPECT_NEAR(opt_total / 1e9, 375.0, 40.0);
  EXPECT_NEAR(reg_total / 1e9, 785.0, 80.0);
}

TEST(GenomicsJobTest, CpuCacheGrowsWithPartitions) {
  auto workload = WorkloadSpec::NA12878();
  GenomicsRates rates;
  auto few = EstimateAlignmentCpuCache(workload, rates, 15);
  auto many = EstimateAlignmentCpuCache(workload, rates, 4800);
  EXPECT_GT(many.cycles_trillions, few.cycles_trillions);
  EXPECT_GT(many.cache_misses_billions, 1.5 * few.cache_misses_billions);
}

TEST(GenomicsJobTest, SpeedupMetrics) {
  // Paper Table 5 anchor: wall 3724 s vs single-node 24.1 h at 90 cores
  // gives speedup ~23.3, efficiency ~0.259.
  auto m = ComputeSpeedup(86'739, 1, 3'724, 90);
  EXPECT_NEAR(m.speedup, 23.29, 0.05);
  EXPECT_NEAR(m.efficiency, 0.259, 0.002);
}

TEST(GenomicsJobTest, SingleServerPipelineRoughlyTwoWeeks) {
  auto steps = SingleServerPipeline(WorkloadSpec::NA12878(), GenomicsRates{},
                                    ClusterSpec::SingleServer());
  double total = 0;
  for (const auto& s : steps) total += s.hours;
  // Paper: "about two weeks" for the full pipeline.
  EXPECT_GT(total, 150.0);
  EXPECT_LT(total, 500.0);
  // Anchors: Clean Sam ~7.5 h, Mark Duplicates ~14.5 h.
  for (const auto& s : steps) {
    if (s.name == "4. Clean Sam") {
      EXPECT_NEAR(s.hours, 7.5, 2.0);
    }
    if (s.name == "6. Mark Duplicates") {
      EXPECT_NEAR(s.hours, 14.4, 3.0);
    }
  }
}

}  // namespace
}  // namespace gesall

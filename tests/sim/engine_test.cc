#include "sim/engine.h"

#include <gtest/gtest.h>

#include "sim/cluster.h"
#include "sim/resources.h"

namespace gesall {
namespace {

TEST(SimEngineTest, EventsFireInTimeOrder) {
  SimEngine engine;
  std::vector<int> order;
  engine.At(5.0, [&] { order.push_back(2); });
  engine.At(1.0, [&] { order.push_back(1); });
  engine.At(9.0, [&] { order.push_back(3); });
  engine.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine.now(), 9.0);
}

TEST(SimEngineTest, TiesFireInScheduleOrder) {
  SimEngine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.At(1.0, [&order, i] { order.push_back(i); });
  }
  engine.Run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SimEngineTest, NestedScheduling) {
  SimEngine engine;
  double fired_at = -1;
  engine.After(1.0, [&] {
    engine.After(2.0, [&] { fired_at = engine.now(); });
  });
  engine.Run();
  EXPECT_DOUBLE_EQ(fired_at, 3.0);
}

TEST(FifoServerTest, SequentialService) {
  SimEngine engine;
  FifoServer disk(&engine, 100.0, "d");  // 100 bytes/sec
  std::vector<double> completions;
  disk.Request(200, [&] { completions.push_back(engine.now()); });
  disk.Request(300, [&] { completions.push_back(engine.now()); });
  engine.Run();
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_DOUBLE_EQ(completions[0], 2.0);
  EXPECT_DOUBLE_EQ(completions[1], 5.0);  // FIFO: starts after the first
  EXPECT_DOUBLE_EQ(disk.busy_seconds(), 5.0);
  EXPECT_EQ(disk.bytes_served(), 500);
}

TEST(FifoServerTest, ZeroByteRequestCompletesImmediately) {
  SimEngine engine;
  FifoServer disk(&engine, 100.0, "d");
  bool fired = false;
  disk.Request(0, [&] { fired = true; });
  engine.Run();
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(disk.busy_seconds(), 0.0);
}

TEST(FifoServerTest, IdleGapsTracked) {
  SimEngine engine;
  FifoServer disk(&engine, 100.0, "d");
  engine.After(0.0, [&] { disk.Request(100, [] {}); });
  engine.After(10.0, [&] { disk.Request(100, [] {}); });
  engine.Run();
  ASSERT_EQ(disk.busy_intervals().size(), 2u);
  EXPECT_DOUBLE_EQ(disk.busy_seconds(), 2.0);
  // Utilization trace: busy at t=0..1 and t=10..11, idle between.
  auto trace = disk.UtilizationTrace(1.0, 11.0);
  EXPECT_GT(trace[0], 0.9);
  EXPECT_LT(trace[5], 0.01);
  EXPECT_GT(trace[10], 0.9);
}

TEST(ThreadScalingTest, MonotoneButSaturating) {
  auto model = ThreadScalingModel::Readahead128KB();
  double prev = 0;
  for (int t = 1; t <= 16; ++t) {
    double s = model.Speedup(t);
    EXPECT_GT(s, prev);
    EXPECT_LE(s, t);  // never superlinear
    prev = s;
  }
}

TEST(ThreadScalingTest, BiggerReadaheadScalesBetter) {
  auto small = ThreadScalingModel::Readahead128KB();
  auto big = ThreadScalingModel::Readahead64MB();
  for (int t : {4, 8, 16, 24}) {
    EXPECT_GT(big.Speedup(t), small.Speedup(t)) << t;
  }
  // Paper Fig. 5c shape: 128 KB saturates well below the 64 MB curve at
  // 24 threads.
  EXPECT_LT(small.Speedup(24), 9.0);
  EXPECT_GT(big.Speedup(24), 11.0);
}

TEST(ClusterSpecTest, Table3Values) {
  auto a = ClusterSpec::A();
  EXPECT_EQ(a.num_data_nodes, 15);
  EXPECT_EQ(a.node.cores, 24);
  EXPECT_EQ(a.node.num_disks, 1);
  auto b = ClusterSpec::B();
  EXPECT_EQ(b.num_data_nodes, 4);
  EXPECT_EQ(b.node.cores, 16);
  EXPECT_EQ(b.node.num_disks, 6);
  EXPECT_GT(b.node.network_gbps, a.node.network_gbps);
}

}  // namespace
}  // namespace gesall

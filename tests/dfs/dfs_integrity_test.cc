// DFS data integrity and node-crash recovery: block CRC32C verification
// detects a corrupted replica at read time, quarantines it, and fails
// over; the scrubber re-replicates under-replicated blocks; the
// heartbeat clock declares crashed nodes dead and re-replicates around
// them; restarted nodes rejoin; invalid cluster options are rejected.

#include <gtest/gtest.h>

#include <string>

#include "dfs/dfs.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace gesall {
namespace {

DfsOptions SmallOptions() {
  DfsOptions o;
  o.block_size = 1024;
  o.replication = 2;
  o.num_data_nodes = 5;
  o.blacklist_threshold = 3;
  o.checksum_chunk_bytes = 256;
  o.heartbeat_miss_threshold = 2;
  return o;
}

std::string RandomData(size_t n, uint64_t seed = 1) {
  Rng rng(seed);
  std::string s(n, '\0');
  for (auto& c : s) c = static_cast<char>('a' + rng.Uniform(26));
  return s;
}

TEST(DfsIntegrityTest, CorruptReplicaIsDetectedQuarantinedAndFailedOver) {
  Dfs dfs(SmallOptions());
  FaultInjector injector(7);
  // Corrupt the first-placed replica of every block.
  ASSERT_TRUE(injector.ArmFirstAttempts(kFaultDfsBlockCorrupt, 1).ok());
  dfs.set_fault_injector(&injector);

  std::string data = RandomData(5000);
  ASSERT_TRUE(dfs.Write("/f", data).ok());

  // The read still returns the exact written bytes, served by the
  // healthy second replica of each of the 5 blocks.
  EXPECT_EQ(dfs.Read("/f").ValueOrDie(), data);
  DfsStats stats = dfs.stats();
  EXPECT_EQ(stats.corruptions_detected, 5);
  EXPECT_EQ(stats.replicas_quarantined, 5);
  EXPECT_EQ(stats.blocks_failed_over, 5);
  EXPECT_EQ(stats.reads_failed, 0);
  // Corruption is a media fault, not a node fault: nobody blacklisted.
  EXPECT_EQ(stats.nodes_blacklisted, 0);

  // Quarantine left every block under-replicated; one scrubber pass
  // (Tick) restores full replication from the verified healthy copy.
  ASSERT_TRUE(dfs.Tick().ok());
  stats = dfs.stats();
  EXPECT_EQ(stats.blocks_re_replicated, 5);
  EXPECT_EQ(stats.bytes_re_replicated, 5000);
  const auto locations = dfs.Locate("/f").ValueOrDie();
  for (const auto& loc : locations) {
    EXPECT_EQ(loc.replicas.size(), 2u);
  }

  // The re-replicated copies carry fresh ordinals, so the armed
  // "corrupt ordinal 0" fault never hits them: a re-read is clean.
  dfs.ResetStats();
  EXPECT_EQ(dfs.Read("/f").ValueOrDie(), data);
  EXPECT_EQ(dfs.stats().corruptions_detected, 0);
  EXPECT_EQ(dfs.stats().blocks_failed_over, 0);
}

TEST(DfsIntegrityTest, AllReplicasCorruptSurfacesIOError) {
  DfsOptions options = SmallOptions();
  options.replication = 1;
  Dfs dfs(options);
  FaultInjector injector(7);
  ASSERT_TRUE(injector.ArmFirstAttempts(kFaultDfsBlockCorrupt, 1).ok());
  dfs.set_fault_injector(&injector);

  ASSERT_TRUE(dfs.Write("/f", "payload").ok());
  auto read = dfs.Read("/f");
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsIOError());
  EXPECT_EQ(dfs.stats().corruptions_detected, 1);
  EXPECT_GE(dfs.stats().reads_failed, 1);

  // With no healthy source the scrubber cannot repair the block, and a
  // later read still fails rather than serving rotted bytes.
  ASSERT_TRUE(dfs.Tick().ok());
  EXPECT_EQ(dfs.stats().blocks_re_replicated, 0);
  EXPECT_FALSE(dfs.Read("/f").ok());
}

TEST(DfsIntegrityTest, CrashedNodeIsDeclaredDeadAndBlocksReReplicated) {
  Dfs dfs(SmallOptions());
  std::string data = RandomData(5000);
  LogicalPartitionPlacementPolicy policy;
  ASSERT_TRUE(dfs.Write("/part", data, &policy).ok());
  const int primary =
      LogicalPartitionPlacementPolicy::PrimaryNodeFor("/part", 5);
  const int64_t stored = dfs.BytesStoredOn(primary);
  ASSERT_GT(stored, 0);

  ASSERT_TRUE(dfs.CrashNode(primary).ok());
  // Crashed but not yet declared dead: heartbeat_miss_threshold = 2
  // intervals must elapse first.
  ASSERT_TRUE(dfs.Tick().ok());
  EXPECT_FALSE(dfs.IsDeclaredDead(primary));
  EXPECT_EQ(dfs.stats().nodes_declared_dead, 0);

  ASSERT_TRUE(dfs.Tick().ok());
  EXPECT_TRUE(dfs.IsDeclaredDead(primary));
  DfsStats stats = dfs.stats();
  EXPECT_EQ(stats.nodes_declared_dead, 1);
  // The dead node's replicas were dropped and re-replicated onto live
  // nodes in the same pass.
  EXPECT_EQ(stats.blocks_re_replicated, 5);
  EXPECT_EQ(dfs.BytesStoredOn(primary), 0);
  const auto locations = dfs.Locate("/part").ValueOrDie();
  for (const auto& loc : locations) {
    EXPECT_EQ(loc.replicas.size(), 2u);
    for (int node : loc.replicas) EXPECT_NE(node, primary);
  }
  EXPECT_EQ(dfs.Read("/part").ValueOrDie(), data);
}

TEST(DfsIntegrityTest, RestartedNodeRejoinsAndHeartbeatsAgain) {
  Dfs dfs(SmallOptions());
  std::string data = RandomData(3000);
  ASSERT_TRUE(dfs.Write("/f", data).ok());

  ASSERT_TRUE(dfs.CrashNode(1).ok());
  ASSERT_TRUE(dfs.Tick().ok());
  ASSERT_TRUE(dfs.Tick().ok());
  EXPECT_TRUE(dfs.IsDeclaredDead(1));

  ASSERT_TRUE(dfs.RestartNode(1).ok());
  EXPECT_FALSE(dfs.IsDeclaredDead(1));
  EXPECT_EQ(dfs.stats().node_restarts, 1);
  // Restarting an already-up node is a no-op, not a double restart.
  ASSERT_TRUE(dfs.RestartNode(1).ok());
  EXPECT_EQ(dfs.stats().node_restarts, 1);

  // The rejoined node heartbeats: many more intervals pass without it
  // being re-declared dead, and reads still verify.
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(dfs.Tick().ok());
  EXPECT_FALSE(dfs.IsDeclaredDead(1));
  EXPECT_EQ(dfs.stats().nodes_declared_dead, 1);
  EXPECT_EQ(dfs.Read("/f").ValueOrDie(), data);
}

TEST(DfsIntegrityTest, InjectorDrivenCrashAndRestartViaTick) {
  Dfs dfs(SmallOptions());
  FaultInjector injector(11);
  // Node 2 crashes at tick 0 and restarts at tick 3.
  injector.ArmSchedule(kFaultNodeCrash, 2, {0});
  injector.ArmSchedule(kFaultNodeRestart, 2, {3});
  dfs.set_fault_injector(&injector);

  std::string data = RandomData(4000);
  ASSERT_TRUE(dfs.Write("/f", data).ok());

  ASSERT_TRUE(dfs.Tick().ok());  // tick 0: crash fires
  ASSERT_TRUE(dfs.Tick().ok());  // tick 1: threshold reached, declared dead
  ASSERT_TRUE(dfs.Tick().ok());  // tick 2: stays dead
  EXPECT_TRUE(dfs.IsDeclaredDead(2));
  EXPECT_EQ(dfs.stats().nodes_declared_dead, 1);

  ASSERT_TRUE(dfs.Tick().ok());  // tick 3: restart fires
  EXPECT_FALSE(dfs.IsDeclaredDead(2));
  EXPECT_EQ(dfs.stats().node_restarts, 1);
  EXPECT_EQ(dfs.Read("/f").ValueOrDie(), data);
  EXPECT_EQ(dfs.heartbeat_tick(), 4);
}

TEST(DfsIntegrityTest, ValidateOptionsRejectsInconsistentClusters) {
  DfsOptions bad_replication = SmallOptions();
  bad_replication.replication = 6;  // > num_data_nodes
  EXPECT_TRUE(Dfs::ValidateOptions(bad_replication).IsInvalidArgument());

  DfsOptions zero_replication = SmallOptions();
  zero_replication.replication = 0;
  EXPECT_TRUE(Dfs::ValidateOptions(zero_replication).IsInvalidArgument());

  DfsOptions bad_block = SmallOptions();
  bad_block.block_size = 0;
  EXPECT_TRUE(Dfs::ValidateOptions(bad_block).IsInvalidArgument());

  DfsOptions bad_threshold = SmallOptions();
  bad_threshold.blacklist_threshold = 0;
  EXPECT_TRUE(Dfs::ValidateOptions(bad_threshold).IsInvalidArgument());

  DfsOptions bad_chunk = SmallOptions();
  bad_chunk.checksum_chunk_bytes = 0;
  EXPECT_TRUE(Dfs::ValidateOptions(bad_chunk).IsInvalidArgument());

  DfsOptions bad_heartbeat = SmallOptions();
  bad_heartbeat.heartbeat_miss_threshold = 0;
  EXPECT_TRUE(Dfs::ValidateOptions(bad_heartbeat).IsInvalidArgument());

  EXPECT_TRUE(Dfs::ValidateOptions(SmallOptions()).ok());
  EXPECT_TRUE(Dfs::ValidateOptions(DfsOptions{}).ok());
}

TEST(DfsIntegrityTest, InvalidOptionsSurfaceFromEveryOperation) {
  DfsOptions bad = SmallOptions();
  bad.replication = 6;
  Dfs dfs(bad);
  EXPECT_TRUE(dfs.Write("/f", "x").IsInvalidArgument());
  EXPECT_TRUE(dfs.Read("/f").status().IsInvalidArgument());
  EXPECT_TRUE(dfs.Locate("/f").status().IsInvalidArgument());
  EXPECT_TRUE(dfs.Delete("/f").IsInvalidArgument());
  EXPECT_TRUE(dfs.Tick().IsInvalidArgument());
  EXPECT_TRUE(dfs.MarkNodeDown(0).IsInvalidArgument());
  EXPECT_FALSE(dfs.Exists("/f"));
}

TEST(DfsIntegrityTest, ScrubberTopsUpAfterDeleteAndRewrite) {
  // Quarantine + delete + rewrite: stale verified-cache or block state
  // must not leak across a path's regeneration.
  Dfs dfs(SmallOptions());
  FaultInjector injector(7);
  ASSERT_TRUE(injector.ArmFirstAttempts(kFaultDfsBlockCorrupt, 1).ok());
  dfs.set_fault_injector(&injector);

  std::string first = RandomData(2000, 1);
  ASSERT_TRUE(dfs.Write("/f", first).ok());
  EXPECT_EQ(dfs.Read("/f").ValueOrDie(), first);
  EXPECT_EQ(dfs.stats().corruptions_detected, 2);

  ASSERT_TRUE(dfs.Delete("/f").ok());
  std::string second = RandomData(2000, 2);
  ASSERT_TRUE(dfs.Write("/f", second).ok());
  // New blocks, new ordinals: corruption fires again and is survived.
  EXPECT_EQ(dfs.Read("/f").ValueOrDie(), second);
  EXPECT_EQ(dfs.stats().corruptions_detected, 4);
  ASSERT_TRUE(dfs.Tick().ok());
  EXPECT_EQ(dfs.Read("/f").ValueOrDie(), second);
}

}  // namespace
}  // namespace gesall

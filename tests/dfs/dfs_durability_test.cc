// Namenode durability: journaled namespace + payload files survive
// SimulateCrash() and fresh construction on the same root; mutations
// (replace, delete, quarantine, dead-node re-replication) replay to the
// same namespace; filesystem failures surface as IOError.

#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dfs/dfs.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace gesall {
namespace {

namespace fs = std::filesystem;

class DfsDurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (fs::temp_directory_path() /
             ("gesall_dfs_durability_" +
              std::string(::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name())))
                .string();
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  DfsOptions DurableOptions() const {
    DfsOptions options;
    options.block_size = 64 * 1024;
    options.replication = 2;
    options.num_data_nodes = 4;
    options.durability.root_dir = root_;
    options.durability.snapshot_every_records = 8;
    return options;
  }

  static std::string Payload(size_t n, uint64_t seed) {
    std::string out(n, '\0');
    for (size_t i = 0; i < n; ++i) {
      out[i] = static_cast<char>(MixSeeds(seed, i) % 256);
    }
    return out;
  }

  std::string root_;
};

TEST_F(DfsDurabilityTest, ValidationRejectsBadDurabilityKnobs) {
  DfsOptions options = DurableOptions();
  options.durability.fsync_every_records = 0;
  EXPECT_TRUE(Dfs::ValidateOptions(options).IsInvalidArgument());
  Dfs dfs(options);  // invalid options poison every operation
  EXPECT_TRUE(dfs.Write("/f", "x").IsInvalidArgument());
}

TEST_F(DfsDurabilityTest, UnwritableRootSurfacesIOError) {
  DfsOptions options = DurableOptions();
  options.durability.root_dir = "/proc/gesall-no-such-writable-root";
  Dfs dfs(options);
  Status st = dfs.Write("/f", "x");
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
}

TEST_F(DfsDurabilityTest, SimulateCrashRequiresDurability) {
  Dfs dfs(DfsOptions{});
  EXPECT_TRUE(dfs.SimulateCrash().IsInvalidArgument());
  EXPECT_FALSE(dfs.recovery_stats().recovered);
}

TEST_F(DfsDurabilityTest, CrashRecoversFilesByteIdentical) {
  Dfs dfs(DurableOptions());
  const std::string small = Payload(100, 1);
  const std::string multi = Payload(200 * 1024, 2);  // several blocks
  LogicalPartitionPlacementPolicy logical;
  ASSERT_TRUE(dfs.Write("/a/small", small).ok());
  ASSERT_TRUE(dfs.Write("/a/multi", multi, &logical).ok());
  ASSERT_TRUE(dfs.Write("/a/empty", "").ok());

  ASSERT_TRUE(dfs.SimulateCrash().ok());

  const DfsRecoveryStats rec = dfs.recovery_stats();
  EXPECT_TRUE(rec.recovered);
  EXPECT_EQ(rec.files_recovered, 3);
  EXPECT_EQ(rec.files_dropped, 0);
  EXPECT_GE(rec.journal_records_replayed + (rec.snapshot_loaded ? 1 : 0), 1);

  EXPECT_EQ(dfs.Read("/a/small").ValueOrDie(), small);
  EXPECT_EQ(dfs.Read("/a/multi").ValueOrDie(), multi);
  EXPECT_EQ(dfs.Read("/a/empty").ValueOrDie(), "");
  EXPECT_EQ(dfs.List("/a").size(), 3u);
  // Placement metadata survives too: the logical partition still has
  // all blocks on one primary.
  auto locs = dfs.Locate("/a/multi").ValueOrDie();
  ASSERT_GE(locs.size(), 2u);
  for (const auto& loc : locs) {
    EXPECT_EQ(loc.replicas[0], locs[0].replicas[0]);
  }
}

TEST_F(DfsDurabilityTest, FreshInstanceOnSameRootRecovers) {
  const std::string data = Payload(70 * 1024, 3);
  {
    Dfs dfs(DurableOptions());
    ASSERT_TRUE(dfs.Write("/keep", data).ok());
    ASSERT_TRUE(dfs.Write("/gone", "temporary").ok());
    ASSERT_TRUE(dfs.Delete("/gone").ok());
    ASSERT_TRUE(dfs.Write("/keep2", "v2").ok());
  }  // destructor: no checkpoint required, the journal carries it all
  Dfs dfs(DurableOptions());
  EXPECT_TRUE(dfs.recovery_stats().recovered);
  EXPECT_EQ(dfs.Read("/keep").ValueOrDie(), data);
  EXPECT_EQ(dfs.Read("/keep2").ValueOrDie(), "v2");
  EXPECT_FALSE(dfs.Exists("/gone"));
}

TEST_F(DfsDurabilityTest, ReplaceSemanticsSurviveCrash) {
  Dfs dfs(DurableOptions());
  ASSERT_TRUE(dfs.Write("/f", Payload(80 * 1024, 4)).ok());
  const std::string v2 = Payload(1000, 5);
  ASSERT_TRUE(dfs.Write("/f", v2).ok());
  ASSERT_TRUE(dfs.SimulateCrash().ok());
  EXPECT_EQ(dfs.Read("/f").ValueOrDie(), v2);
  EXPECT_EQ(dfs.FileSize("/f").ValueOrDie(), 1000);
  EXPECT_EQ(dfs.recovery_stats().files_recovered, 1);
}

TEST_F(DfsDurabilityTest, SnapshotCompactionBoundsJournalAndRecovers) {
  DfsOptions options = DurableOptions();
  options.durability.snapshot_every_records = 4;
  std::vector<std::string> contents;
  {
    Dfs dfs(options);
    for (int i = 0; i < 20; ++i) {
      contents.push_back(Payload(500 + i * 37, 100 + i));
      ASSERT_TRUE(
          dfs.Write("/f" + std::to_string(i), contents.back()).ok());
    }
    EXPECT_GE(dfs.stats().snapshots_written, 1);
  }
  Dfs dfs(options);
  EXPECT_TRUE(dfs.recovery_stats().snapshot_loaded);
  // Replay after compaction covers only the tail, not all 20 creates.
  EXPECT_LT(dfs.recovery_stats().journal_records_replayed, 20);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(dfs.Read("/f" + std::to_string(i)).ValueOrDie(),
              contents[static_cast<size_t>(i)]);
  }
}

TEST_F(DfsDurabilityTest, QuarantineAndReReplicationSurviveCrash) {
  DfsOptions options = DurableOptions();
  Dfs dfs(options);
  FaultInjector injector(11);
  dfs.set_fault_injector(&injector);
  const std::string data = Payload(64 * 1024, 6);
  ASSERT_TRUE(dfs.Write("/f", data).ok());

  // Corrupt the write-time first replica of every block; the read
  // detects it, quarantines, and still serves from the healthy copy.
  ASSERT_TRUE(injector.ArmFirstAttempts(kFaultDfsBlockCorrupt, 1).ok());
  EXPECT_EQ(dfs.Read("/f").ValueOrDie(), data);
  EXPECT_GE(dfs.stats().replicas_quarantined, 1);
  // Scrub re-replicates back up to target.
  ASSERT_TRUE(dfs.Tick().ok());
  EXPECT_GE(dfs.stats().blocks_re_replicated, 1);
  injector.DisarmAll();

  ASSERT_TRUE(dfs.SimulateCrash().ok());
  // The recovered namespace reads clean (canonical payloads were never
  // rotted) and is back at full replication.
  EXPECT_EQ(dfs.Read("/f").ValueOrDie(), data);
  auto locs = dfs.Locate("/f").ValueOrDie();
  for (const auto& loc : locs) {
    EXPECT_EQ(static_cast<int>(loc.replicas.size()), options.replication);
  }
}

TEST_F(DfsDurabilityTest, DeadNodeReplicaMapSurvivesCrash) {
  DfsOptions options = DurableOptions();
  options.heartbeat_miss_threshold = 1;
  Dfs dfs(options);
  const std::string data = Payload(32 * 1024, 7);
  ASSERT_TRUE(dfs.Write("/f", data).ok());
  auto before = dfs.Locate("/f").ValueOrDie();
  const int victim = before[0].replicas[0];
  ASSERT_TRUE(dfs.CrashNode(victim).ok());
  ASSERT_TRUE(dfs.Tick().ok());
  ASSERT_TRUE(dfs.Tick().ok());  // declare dead + re-replicate
  EXPECT_TRUE(dfs.IsDeclaredDead(victim));

  ASSERT_TRUE(dfs.SimulateCrash().ok());
  EXPECT_EQ(dfs.Read("/f").ValueOrDie(), data);
  // The dead node's replica was journaled away; the re-replicated copy
  // landed elsewhere and both facts survived the crash.
  auto after = dfs.Locate("/f").ValueOrDie();
  for (const auto& loc : after) {
    EXPECT_EQ(static_cast<int>(loc.replicas.size()), options.replication);
    for (int node : loc.replicas) EXPECT_NE(node, victim);
  }
}

TEST_F(DfsDurabilityTest, TornJournalTailDropsOnlyLastFile) {
  DfsOptions options = DurableOptions();
  options.durability.snapshot_every_records = 0;  // keep the full journal
  {
    Dfs dfs(options);
    ASSERT_TRUE(dfs.Write("/first", Payload(100, 8)).ok());
    ASSERT_TRUE(dfs.Write("/second", Payload(100, 9)).ok());
  }
  // Tear the journal inside the last record, as a crash mid-append.
  const std::string journal = root_ + "/namespace/journal-0.log";
  ASSERT_TRUE(fs::exists(journal));
  fs::resize_file(journal, fs::file_size(journal) - 7);

  Dfs dfs(options);
  const DfsRecoveryStats rec = dfs.recovery_stats();
  EXPECT_TRUE(rec.torn_tail);
  EXPECT_TRUE(dfs.Exists("/first"));
  EXPECT_FALSE(dfs.Exists("/second"));  // its create record was torn
  EXPECT_EQ(dfs.Read("/first").ValueOrDie(), Payload(100, 8));
}

TEST_F(DfsDurabilityTest, MissingPayloadDropsWholeFile) {
  {
    Dfs dfs(DurableOptions());
    ASSERT_TRUE(dfs.Write("/ok", Payload(100, 10)).ok());
    ASSERT_TRUE(dfs.Write("/hollow", Payload(100, 11)).ok());
  }
  // Simulate the payload write never reaching disk for /hollow: delete
  // its (second) block payload file.
  std::vector<fs::path> blocks;
  for (const auto& e : fs::directory_iterator(root_ + "/blocks")) {
    blocks.push_back(e.path());
  }
  ASSERT_EQ(blocks.size(), 2u);
  std::sort(blocks.begin(), blocks.end());
  fs::remove(blocks.back());

  Dfs dfs(DurableOptions());
  EXPECT_EQ(dfs.recovery_stats().files_dropped, 1);
  EXPECT_EQ(dfs.recovery_stats().files_recovered, 1);
  EXPECT_TRUE(dfs.Exists("/ok"));
  EXPECT_FALSE(dfs.Exists("/hollow"));
}

}  // namespace
}  // namespace gesall

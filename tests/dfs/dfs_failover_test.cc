// DFS read-path failover: injected replica failures fall back to the next
// replica, repeated failures blacklist a node, and the telemetry that the
// diagnosis layer surfaces reflects each recovery.

#include <gtest/gtest.h>

#include "dfs/dfs.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace gesall {
namespace {

DfsOptions SmallOptions() {
  DfsOptions o;
  o.block_size = 1024;
  o.replication = 2;
  o.num_data_nodes = 5;
  o.blacklist_threshold = 3;
  return o;
}

std::string RandomData(size_t n, uint64_t seed = 1) {
  Rng rng(seed);
  std::string s(n, '\0');
  for (auto& c : s) c = static_cast<char>('a' + rng.Uniform(26));
  return s;
}

TEST(DfsFailoverTest, ReadFailsOverToSecondReplica) {
  Dfs dfs(SmallOptions());
  FaultInjector injector(1);
  // The first replica of every block is unavailable.
  ASSERT_TRUE(injector.ArmFirstAttempts(kFaultDfsReadReplica, 1).ok());
  dfs.set_fault_injector(&injector);

  std::string data = RandomData(5000);
  ASSERT_TRUE(dfs.Write("/f", data).ok());
  EXPECT_EQ(dfs.Read("/f").ValueOrDie(), data);

  DfsStats stats = dfs.stats();
  EXPECT_EQ(stats.blocks_failed_over, 5);  // ceil(5000/1024) blocks
  EXPECT_EQ(stats.replica_read_failures, 5);
  EXPECT_EQ(stats.reads_failed, 0);
}

TEST(DfsFailoverTest, ConsecutiveFailuresBlacklistTheNode) {
  Dfs dfs(SmallOptions());
  FaultInjector injector(1);
  ASSERT_TRUE(injector.ArmFirstAttempts(kFaultDfsReadReplica, 1).ok());
  dfs.set_fault_injector(&injector);

  // Logical-partition placement: every block of the file has the SAME
  // primary node, so its failures are consecutive.
  LogicalPartitionPlacementPolicy policy;
  std::string data = RandomData(5000);
  ASSERT_TRUE(dfs.Write("/part", data, &policy).ok());
  int primary = LogicalPartitionPlacementPolicy::PrimaryNodeFor("/part", 5);
  EXPECT_FALSE(dfs.IsBlacklisted(primary));

  EXPECT_EQ(dfs.Read("/part").ValueOrDie(), data);  // 5 blocks, 5 failures
  EXPECT_TRUE(dfs.IsBlacklisted(primary));
  EXPECT_EQ(dfs.stats().nodes_blacklisted, 1);

  // A blacklisted node keeps failing reads even after the injector is
  // disarmed; MarkNodeUp restores it.
  injector.DisarmAll();
  dfs.ResetStats();
  EXPECT_EQ(dfs.Read("/part").ValueOrDie(), data);
  EXPECT_EQ(dfs.stats().blocks_failed_over, 5);

  ASSERT_TRUE(dfs.MarkNodeUp(primary).ok());
  EXPECT_FALSE(dfs.IsBlacklisted(primary));
  dfs.ResetStats();
  EXPECT_EQ(dfs.Read("/part").ValueOrDie(), data);
  EXPECT_EQ(dfs.stats().blocks_failed_over, 0);
  EXPECT_EQ(dfs.stats().replica_read_failures, 0);
}

TEST(DfsFailoverTest, SuccessResetsTheConsecutiveFailureCount) {
  DfsOptions options = SmallOptions();
  options.blacklist_threshold = 2;
  Dfs dfs(options);
  FaultInjector injector(1);
  dfs.set_fault_injector(&injector);

  LogicalPartitionPlacementPolicy policy;
  ASSERT_TRUE(dfs.Write("/part", RandomData(3000), &policy).ok());  // 3 blocks
  auto locations = dfs.Locate("/part").ValueOrDie();
  ASSERT_EQ(locations.size(), 3u);
  int primary = LogicalPartitionPlacementPolicy::PrimaryNodeFor("/part", 5);

  // Fail the primary replica of blocks 0 and 2 only: the success on block
  // 1 breaks the streak, so the threshold of 2 is never reached.
  injector.ArmSchedule(kFaultDfsReadReplica, locations[0].block_id, {0});
  injector.ArmSchedule(kFaultDfsReadReplica, locations[2].block_id, {0});
  ASSERT_TRUE(dfs.Read("/part").ok());
  EXPECT_FALSE(dfs.IsBlacklisted(primary));
  EXPECT_EQ(dfs.stats().blocks_failed_over, 2);
}

TEST(DfsFailoverTest, AllReplicasFailingSurfacesIOError) {
  Dfs dfs(SmallOptions());
  FaultInjector injector(1);
  // replication = 2, both replica positions armed.
  ASSERT_TRUE(injector.ArmFirstAttempts(kFaultDfsReadReplica, 2).ok());
  dfs.set_fault_injector(&injector);

  ASSERT_TRUE(dfs.Write("/f", "payload").ok());
  auto read = dfs.Read("/f");
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsIOError());
  EXPECT_GE(dfs.stats().reads_failed, 1);
}

TEST(DfsFailoverTest, DownNodeCountsAsFailover) {
  Dfs dfs(SmallOptions());  // no injector at all
  std::string data = RandomData(2000);
  ASSERT_TRUE(dfs.Write("/f", data).ok());
  auto locations = dfs.Locate("/f").ValueOrDie();
  ASSERT_TRUE(dfs.MarkNodeDown(locations[0].replicas[0]).ok());
  EXPECT_EQ(dfs.Read("/f").ValueOrDie(), data);
  EXPECT_GE(dfs.stats().blocks_failed_over, 1);
}

TEST(DfsFailoverTest, RecoveredNodeServesReadsWithoutDoubleCounting) {
  Dfs dfs(SmallOptions());
  FaultInjector injector(1);
  ASSERT_TRUE(injector.ArmFirstAttempts(kFaultDfsReadReplica, 1).ok());
  dfs.set_fault_injector(&injector);

  LogicalPartitionPlacementPolicy policy;
  std::string data = RandomData(5000);
  ASSERT_TRUE(dfs.Write("/part", data, &policy).ok());
  int primary = LogicalPartitionPlacementPolicy::PrimaryNodeFor("/part", 5);

  // First blacklisting: 5 consecutive primary failures, counted once.
  EXPECT_EQ(dfs.Read("/part").ValueOrDie(), data);
  ASSERT_TRUE(dfs.IsBlacklisted(primary));
  EXPECT_EQ(dfs.stats().nodes_blacklisted, 1);

  // The recovered node serves reads again: with the injector disarmed a
  // read needs no failover, so the primary replica answered it.
  injector.DisarmAll();
  ASSERT_TRUE(dfs.MarkNodeUp(primary).ok());
  EXPECT_FALSE(dfs.IsBlacklisted(primary));
  const int64_t failovers_before = dfs.stats().blocks_failed_over;
  EXPECT_EQ(dfs.Read("/part").ValueOrDie(), data);
  EXPECT_EQ(dfs.stats().blocks_failed_over, failovers_before);

  // Second blacklisting after recovery: the counter advances once per
  // transition — repeated reads against an already-blacklisted node do
  // not double-count.
  ASSERT_TRUE(injector.ArmFirstAttempts(kFaultDfsReadReplica, 1).ok());
  EXPECT_EQ(dfs.Read("/part").ValueOrDie(), data);
  ASSERT_TRUE(dfs.IsBlacklisted(primary));
  EXPECT_EQ(dfs.Read("/part").ValueOrDie(), data);
  EXPECT_EQ(dfs.stats().nodes_blacklisted, 2);
}

TEST(DfsFailoverTest, StatsAreZeroWithoutFaults) {
  Dfs dfs(SmallOptions());
  ASSERT_TRUE(dfs.Write("/f", RandomData(5000)).ok());
  ASSERT_TRUE(dfs.Read("/f").ok());
  DfsStats stats = dfs.stats();
  EXPECT_EQ(stats.replica_read_failures, 0);
  EXPECT_EQ(stats.blocks_failed_over, 0);
  EXPECT_EQ(stats.reads_failed, 0);
  EXPECT_EQ(stats.nodes_blacklisted, 0);
}

}  // namespace
}  // namespace gesall

// DFS part compression (DfsOptions::compress_parts): BGZF-framed block
// payloads with lazy per-block range decode, CRC/quarantine/scrub and
// durable crash recovery over compressed state, raw-vs-stored stats, and
// BAM split reading composing transparently on top.

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dfs/bam_split_reader.h"
#include "dfs/dfs.h"
#include "formats/bam.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace gesall {
namespace {

namespace fs = std::filesystem;

DfsOptions CompressedOptions() {
  DfsOptions o;
  o.block_size = 150'000;  // several BGZF sub-blocks per DFS block
  o.replication = 2;
  o.num_data_nodes = 4;
  o.compress_parts = true;
  return o;
}

// Genome-like compressible payload.
std::string BasePayload(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::string s(n, '\0');
  for (auto& c : s) c = "ACGT"[rng.Uniform(4)];
  return s;
}

std::string NoisePayload(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::string s(n, '\0');
  for (auto& c : s) c = static_cast<char>(rng.Uniform(256));
  return s;
}

TEST(DfsCompressionTest, ValidationRejectsBadLevel) {
  DfsOptions o = CompressedOptions();
  o.compress_level = 10;
  EXPECT_TRUE(Dfs::ValidateOptions(o).IsInvalidArgument());
  o.compress_level = -2;
  EXPECT_TRUE(Dfs::ValidateOptions(o).IsInvalidArgument());
  o.compress_level = 9;
  EXPECT_TRUE(Dfs::ValidateOptions(o).ok());
}

TEST(DfsCompressionTest, RoundTripAndLazyRangeReads) {
  Dfs dfs(CompressedOptions());
  std::string data = BasePayload(500'000, 1);  // 4 DFS blocks
  ASSERT_TRUE(dfs.Write("/part", data).ok());
  EXPECT_EQ(dfs.Read("/part").ValueOrDie(), data);
  EXPECT_EQ(dfs.FileSize("/part").ValueOrDie(),
            static_cast<int64_t>(data.size()));

  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    int64_t off = static_cast<int64_t>(rng.Uniform(data.size()));
    int64_t len = static_cast<int64_t>(
        rng.Uniform(static_cast<uint64_t>(data.size()) - off + 1));
    EXPECT_EQ(dfs.ReadRange("/part", off, len).ValueOrDie(),
              data.substr(static_cast<size_t>(off), static_cast<size_t>(len)))
        << "off=" << off << " len=" << len;
  }

  DfsStats stats = dfs.stats();
  EXPECT_EQ(stats.bytes_written_raw, static_cast<int64_t>(data.size()));
  EXPECT_GT(stats.bytes_written_stored, 0);
  // ACGT text deflates well: on-disk bytes shrink by > 2.5x.
  EXPECT_LT(stats.bytes_written_stored * 5, stats.bytes_written_raw * 2);
  EXPECT_GT(stats.decompress_micros, 0);
  // Node storage holds the compressed frames, not the raw bytes.
  int64_t stored_total = 0;
  for (int n = 0; n < 4; ++n) stored_total += dfs.BytesStoredOn(n);
  EXPECT_EQ(stored_total, 2 * stats.bytes_written_stored);  // replication 2
}

TEST(DfsCompressionTest, RawEqualsStoredWhenCompressionOff) {
  DfsOptions o = CompressedOptions();
  o.compress_parts = false;
  Dfs dfs(o);
  std::string data = BasePayload(200'000, 3);
  ASSERT_TRUE(dfs.Write("/f", data).ok());
  DfsStats stats = dfs.stats();
  EXPECT_EQ(stats.bytes_written_raw, static_cast<int64_t>(data.size()));
  EXPECT_EQ(stats.bytes_written_stored, stats.bytes_written_raw);
  EXPECT_EQ(stats.compress_micros, 0);
}

TEST(DfsCompressionTest, IncompressibleBlocksTakeStoredFallback) {
  Dfs dfs(CompressedOptions());
  std::string noise = NoisePayload(300'000, 4);
  ASSERT_TRUE(dfs.Write("/noise", noise).ok());
  EXPECT_EQ(dfs.Read("/noise").ValueOrDie(), noise);
  DfsStats stats = dfs.stats();
  // Stored fallback bounds the overhead to the per-64KiB-block headers.
  EXPECT_GE(stats.bytes_written_stored, stats.bytes_written_raw);
  EXPECT_LT(stats.bytes_written_stored,
            stats.bytes_written_raw + stats.bytes_written_raw / 100);
}

TEST(DfsCompressionTest, EmptyFileRoundTrips) {
  Dfs dfs(CompressedOptions());
  ASSERT_TRUE(dfs.Write("/empty", "").ok());
  EXPECT_EQ(dfs.Read("/empty").ValueOrDie(), "");
}

TEST(DfsCompressionTest, CorruptCompressedReplicaQuarantinedAndRepaired) {
  Dfs dfs(CompressedOptions());
  FaultInjector injector(7);
  // Corrupt the first-placed replica of every block: the flip lands in
  // the *stored* (compressed) bytes and the CRC over stored bytes must
  // catch it before any inflate sees the frame.
  ASSERT_TRUE(injector.ArmFirstAttempts(kFaultDfsBlockCorrupt, 1).ok());
  dfs.set_fault_injector(&injector);

  std::string data = BasePayload(400'000, 5);  // 3 DFS blocks
  ASSERT_TRUE(dfs.Write("/part", data).ok());
  EXPECT_EQ(dfs.Read("/part").ValueOrDie(), data);
  DfsStats stats = dfs.stats();
  EXPECT_EQ(stats.corruptions_detected, 3);
  EXPECT_EQ(stats.replicas_quarantined, 3);
  EXPECT_EQ(stats.blocks_failed_over, 3);
  EXPECT_EQ(stats.reads_failed, 0);

  // Scrub restores replication; re-replication traffic is counted in
  // stored (compressed) bytes — less than the logical size.
  ASSERT_TRUE(dfs.Tick().ok());
  stats = dfs.stats();
  EXPECT_EQ(stats.blocks_re_replicated, 3);
  EXPECT_GT(stats.bytes_re_replicated, 0);
  EXPECT_LT(stats.bytes_re_replicated, static_cast<int64_t>(data.size()));
  dfs.ResetStats();
  EXPECT_EQ(dfs.Read("/part").ValueOrDie(), data);
  EXPECT_EQ(dfs.stats().corruptions_detected, 0);
}

class DfsCompressionDurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (fs::temp_directory_path() /
             ("gesall_dfs_compression_" +
              std::string(::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name())))
                .string();
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  DfsOptions DurableCompressedOptions() const {
    DfsOptions o = CompressedOptions();
    o.durability.root_dir = root_;
    return o;
  }

  std::string root_;
};

TEST_F(DfsCompressionDurabilityTest, CompressedStateSurvivesCrashRestart) {
  std::string data = BasePayload(450'000, 6);
  Dfs dfs(DurableCompressedOptions());
  ASSERT_TRUE(dfs.Write("/round/part-0", data).ok());
  ASSERT_TRUE(dfs.Write("/round/part-1", BasePayload(1000, 7)).ok());

  // Kill-restart: the recovered payload files are the compressed frames;
  // the size check runs against stored_length, and reads decode again.
  ASSERT_TRUE(dfs.SimulateCrash().ok());
  EXPECT_EQ(dfs.recovery_stats().files_recovered, 2);
  EXPECT_EQ(dfs.recovery_stats().files_dropped, 0);
  EXPECT_EQ(dfs.Read("/round/part-0").ValueOrDie(), data);
  EXPECT_EQ(dfs.Read("/round/part-1").ValueOrDie(), BasePayload(1000, 7));

  // A fresh process on the same root reconstructs the same namespace.
  Dfs reborn(DurableCompressedOptions());
  EXPECT_EQ(reborn.Read("/round/part-0").ValueOrDie(), data);
  EXPECT_EQ(reborn.FileSize("/round/part-0").ValueOrDie(),
            static_cast<int64_t>(data.size()));
}

TEST(DfsCompressionTest, BamSplitsReadableOverCompressedParts) {
  // The BAM container is itself BGZF, so DFS-level compression mostly
  // hits the stored fallback — but splits must still decode lazily and
  // the union of splits must be exactly every record.
  DfsOptions o = CompressedOptions();
  o.block_size = 16 * 1024;
  o.replication = 1;
  Dfs dfs(o);

  SamHeader header;
  header.refs = {{"chr1", 1'000'000}};
  Rng rng(8);
  std::vector<SamRecord> records;
  for (int i = 0; i < 800; ++i) {
    SamRecord r;
    r.qname = "read" + std::to_string(i);
    r.flag = sam_flags::kPaired;
    r.ref_id = 0;
    r.pos = static_cast<int64_t>(rng.Uniform(900'000));
    r.mapq = 60;
    r.cigar = {{'M', 100}};
    r.seq.resize(100);
    for (auto& c : r.seq) c = "ACGT"[rng.Uniform(4)];
    r.qual.resize(100);
    for (auto& c : r.qual) c = static_cast<char>(33 + rng.Uniform(40));
    records.push_back(std::move(r));
  }
  std::string bam = WriteBam(header, records).ValueOrDie();
  ASSERT_TRUE(dfs.Write("/sample.bam", bam).ok());

  auto splits = ComputeBamSplits(dfs, "/sample.bam").ValueOrDie();
  ASSERT_GT(splits.size(), 3u);
  std::vector<SamRecord> recovered;
  for (const auto& split : splits) {
    auto part = ReadBamSplit(dfs, "/sample.bam", split).ValueOrDie();
    recovered.insert(recovered.end(), part.begin(), part.end());
  }
  EXPECT_EQ(recovered, records);
}

}  // namespace
}  // namespace gesall

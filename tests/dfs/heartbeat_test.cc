// HeartbeatDriver: the DFS failure-detection clock decoupled from
// pipeline rounds. The regression this guards: before the driver, Tick
// only ran at round boundaries, so a node that crashed on an idle
// cluster was never declared dead and its blocks never re-replicated
// until the next job happened to run.

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "dfs/dfs.h"
#include "dfs/heartbeat.h"
#include "util/fault_injection.h"

namespace gesall {
namespace {

DfsOptions MakeOptions() {
  DfsOptions dopt;
  dopt.block_size = 1024;
  dopt.replication = 2;
  dopt.num_data_nodes = 4;
  dopt.heartbeat_miss_threshold = 1;
  return dopt;
}

std::string Blob(size_t n) { return std::string(n, 'x'); }

TEST(HeartbeatDriverTest, IdleClusterStillDetectsCrashedNodes) {
  Dfs dfs(MakeOptions());
  ASSERT_TRUE(dfs.Write("/data/file", Blob(8 * 1024)).ok());
  ASSERT_TRUE(dfs.CrashNode(1).ok());

  // No pipeline, no reads, no writes: only the driver's clock runs.
  HeartbeatDriver driver(&dfs);
  ASSERT_TRUE(driver.TickNow(3).ok());
  EXPECT_EQ(driver.ticks(), 3);
  EXPECT_TRUE(driver.last_error().ok());

  DfsStats stats = dfs.stats();
  EXPECT_EQ(stats.nodes_declared_dead, 1);
  // The scrubber restored replication for the dead node's blocks.
  EXPECT_GT(stats.blocks_re_replicated, 0);
  // And the data stayed readable throughout.
  auto data = dfs.Read("/data/file");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data.ValueOrDie().size(), 8u * 1024);
}

TEST(HeartbeatDriverTest, HealthyIdleClusterIsNeverDeclaredDead) {
  Dfs dfs(MakeOptions());
  ASSERT_TRUE(dfs.Write("/data/file", Blob(4 * 1024)).ok());
  HeartbeatDriver driver(&dfs);
  // An idle node is NOT a silent node: healthy nodes heartbeat on every
  // tick, so an arbitrarily long idle period declares nobody dead.
  ASSERT_TRUE(driver.TickNow(50).ok());
  EXPECT_EQ(dfs.stats().nodes_declared_dead, 0);
  EXPECT_EQ(dfs.stats().blocks_re_replicated, 0);
}

TEST(HeartbeatDriverTest, ScheduledCrashFiresFromDriverTicksAlone) {
  FaultInjector injector(7);
  Dfs dfs(MakeOptions());
  dfs.set_fault_injector(&injector);
  ASSERT_TRUE(dfs.Write("/data/file", Blob(8 * 1024)).ok());
  injector.ArmSchedule(kFaultNodeCrash, 2, {0});

  HeartbeatDriver driver(&dfs);
  ASSERT_TRUE(driver.TickNow(2).ok());
  EXPECT_EQ(dfs.stats().nodes_declared_dead, 1);
  dfs.set_fault_injector(nullptr);
}

TEST(HeartbeatDriverTest, BackgroundThreadTicksUntilStopped) {
  Dfs dfs(MakeOptions());
  HeartbeatDriver driver(&dfs);
  EXPECT_FALSE(driver.running());
  driver.Start(1);
  EXPECT_TRUE(driver.running());
  // Idempotent start.
  driver.Start(1);
  while (driver.ticks() < 3) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  driver.Stop();
  EXPECT_FALSE(driver.running());
  const int64_t frozen = driver.ticks();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(driver.ticks(), frozen);
  EXPECT_TRUE(driver.last_error().ok());
  // Restartable after Stop.
  driver.Start(1);
  while (driver.ticks() <= frozen) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  driver.Stop();
}

}  // namespace
}  // namespace gesall

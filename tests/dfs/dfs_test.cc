#include "dfs/dfs.h"

#include <gtest/gtest.h>

#include <set>

#include "util/rng.h"

namespace gesall {
namespace {

DfsOptions SmallOptions() {
  DfsOptions o;
  o.block_size = 1024;
  o.replication = 2;
  o.num_data_nodes = 5;
  return o;
}

std::string RandomData(size_t n, uint64_t seed = 1) {
  Rng rng(seed);
  std::string s(n, '\0');
  for (auto& c : s) c = static_cast<char>('a' + rng.Uniform(26));
  return s;
}

TEST(DfsTest, WriteReadRoundTrip) {
  Dfs dfs(SmallOptions());
  std::string data = RandomData(5000);
  ASSERT_TRUE(dfs.Write("/a/file", data).ok());
  EXPECT_EQ(dfs.Read("/a/file").ValueOrDie(), data);
  EXPECT_EQ(dfs.FileSize("/a/file").ValueOrDie(), 5000);
}

TEST(DfsTest, SplitsIntoBlocks) {
  Dfs dfs(SmallOptions());
  ASSERT_TRUE(dfs.Write("/f", RandomData(5000)).ok());
  auto locations = dfs.Locate("/f").ValueOrDie();
  ASSERT_EQ(locations.size(), 5u);  // ceil(5000/1024)
  EXPECT_EQ(locations[0].length, 1024);
  EXPECT_EQ(locations[4].length, 5000 - 4 * 1024);
  EXPECT_EQ(locations[2].offset, 2048);
  for (const auto& loc : locations) {
    EXPECT_EQ(loc.replicas.size(), 2u);
  }
}

TEST(DfsTest, RangeRead) {
  Dfs dfs(SmallOptions());
  std::string data = RandomData(5000);
  ASSERT_TRUE(dfs.Write("/f", data).ok());
  // Cross-block range.
  EXPECT_EQ(dfs.ReadRange("/f", 1000, 100).ValueOrDie(),
            data.substr(1000, 100));
  EXPECT_EQ(dfs.ReadRange("/f", 0, 1).ValueOrDie(), data.substr(0, 1));
  EXPECT_EQ(dfs.ReadRange("/f", 4999, 1).ValueOrDie(), data.substr(4999));
  EXPECT_TRUE(dfs.ReadRange("/f", 4999, 2).status().IsOutOfRange());
}

TEST(DfsTest, MissingFileNotFound) {
  Dfs dfs(SmallOptions());
  EXPECT_TRUE(dfs.Read("/nope").status().IsNotFound());
  EXPECT_TRUE(dfs.Delete("/nope").IsNotFound());
}

TEST(DfsTest, OverwriteReplaces) {
  Dfs dfs(SmallOptions());
  ASSERT_TRUE(dfs.Write("/f", "old-contents").ok());
  ASSERT_TRUE(dfs.Write("/f", "new").ok());
  EXPECT_EQ(dfs.Read("/f").ValueOrDie(), "new");
}

TEST(DfsTest, DeleteFreesStorage) {
  Dfs dfs(SmallOptions());
  ASSERT_TRUE(dfs.Write("/f", RandomData(5000)).ok());
  int64_t before = 0;
  for (int n = 0; n < 5; ++n) before += dfs.BytesStoredOn(n);
  EXPECT_EQ(before, 2 * 5000);  // replication 2
  ASSERT_TRUE(dfs.Delete("/f").ok());
  int64_t after = 0;
  for (int n = 0; n < 5; ++n) after += dfs.BytesStoredOn(n);
  EXPECT_EQ(after, 0);
}

TEST(DfsTest, ListByPrefix) {
  Dfs dfs(SmallOptions());
  ASSERT_TRUE(dfs.Write("/x/1", "a").ok());
  ASSERT_TRUE(dfs.Write("/x/2", "b").ok());
  ASSERT_TRUE(dfs.Write("/y/1", "c").ok());
  auto xs = dfs.List("/x/");
  EXPECT_EQ(xs, (std::vector<std::string>{"/x/1", "/x/2"}));
}

TEST(DfsTest, ReplicaFailover) {
  Dfs dfs(SmallOptions());
  std::string data = RandomData(3000);
  ASSERT_TRUE(dfs.Write("/f", data).ok());
  auto locations = dfs.Locate("/f").ValueOrDie();
  // Take down every primary; reads must use the second replica.
  std::set<int> primaries;
  for (const auto& loc : locations) primaries.insert(loc.replicas[0]);
  for (int p : primaries) ASSERT_TRUE(dfs.MarkNodeDown(p).ok());
  EXPECT_EQ(dfs.Read("/f").ValueOrDie(), data);
}

TEST(DfsTest, AllReplicasDownFails) {
  DfsOptions o = SmallOptions();
  o.replication = 1;
  Dfs dfs(o);
  ASSERT_TRUE(dfs.Write("/f", "data").ok());
  for (int n = 0; n < o.num_data_nodes; ++n) {
    ASSERT_TRUE(dfs.MarkNodeDown(n).ok());
  }
  EXPECT_TRUE(dfs.Read("/f").status().IsIOError());
  for (int n = 0; n < o.num_data_nodes; ++n) {
    ASSERT_TRUE(dfs.MarkNodeUp(n).ok());
  }
  EXPECT_TRUE(dfs.Read("/f").ok());
}

TEST(DfsTest, EmptyFileSupported) {
  Dfs dfs(SmallOptions());
  ASSERT_TRUE(dfs.Write("/empty", "").ok());
  EXPECT_EQ(dfs.Read("/empty").ValueOrDie(), "");
  EXPECT_EQ(dfs.FileSize("/empty").ValueOrDie(), 0);
}

TEST(PlacementTest, DefaultSpreadsBlocks) {
  Dfs dfs(SmallOptions());
  ASSERT_TRUE(dfs.Write("/big", RandomData(30 * 1024)).ok());
  auto locations = dfs.Locate("/big").ValueOrDie();
  std::set<int> primaries;
  for (const auto& loc : locations) primaries.insert(loc.replicas[0]);
  EXPECT_GT(primaries.size(), 1u);  // 30 blocks over 5 nodes
}

TEST(PlacementTest, LogicalPartitionPinsToOneNode) {
  // Gesall's custom policy: all blocks of one file on one primary node
  // (paper §3.1 feature 2).
  Dfs dfs(SmallOptions());
  LogicalPartitionPlacementPolicy policy;
  ASSERT_TRUE(dfs.Write("/part-00001", RandomData(30 * 1024), &policy).ok());
  auto locations = dfs.Locate("/part-00001").ValueOrDie();
  std::set<int> primaries;
  for (const auto& loc : locations) primaries.insert(loc.replicas[0]);
  EXPECT_EQ(primaries.size(), 1u);
  EXPECT_EQ(*primaries.begin(),
            LogicalPartitionPlacementPolicy::PrimaryNodeFor("/part-00001",
                                                            5));
}

TEST(PlacementTest, LogicalPartitionsSpreadAcrossFiles) {
  // Different partition files should land on different nodes overall.
  std::set<int> nodes;
  for (int i = 0; i < 20; ++i) {
    nodes.insert(LogicalPartitionPlacementPolicy::PrimaryNodeFor(
        "/part-" + std::to_string(i), 5));
  }
  EXPECT_GT(nodes.size(), 2u);
}

TEST(PlacementTest, ReplicasDistinct) {
  DefaultPlacementPolicy policy;
  auto nodes = policy.Place("/f", 3, 5, 3);
  std::set<int> unique(nodes.begin(), nodes.end());
  EXPECT_EQ(unique.size(), 3u);
}

TEST(PlacementTest, ReplicationCappedByClusterSize) {
  DefaultPlacementPolicy policy;
  auto nodes = policy.Place("/f", 0, 2, 3);
  EXPECT_EQ(nodes.size(), 2u);
}

}  // namespace
}  // namespace gesall

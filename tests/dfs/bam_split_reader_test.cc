#include "dfs/bam_split_reader.h"

#include <gtest/gtest.h>

#include "formats/bam.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace gesall {
namespace {

SamHeader TestHeader() {
  SamHeader h;
  h.refs = {{"chr1", 1'000'000}};
  return h;
}

std::vector<SamRecord> MakeRecords(int n) {
  Rng rng(7);
  std::vector<SamRecord> records;
  for (int i = 0; i < n; ++i) {
    SamRecord r;
    r.qname = "read" + std::to_string(i);
    r.flag = sam_flags::kPaired;
    r.ref_id = 0;
    r.pos = static_cast<int64_t>(rng.Uniform(900'000));
    r.mapq = 60;
    r.cigar = {{'M', 100}};
    r.seq.resize(100);
    for (auto& c : r.seq) c = "ACGT"[rng.Uniform(4)];
    r.qual.resize(100);
    for (auto& c : r.qual) c = static_cast<char>(33 + rng.Uniform(40));
    records.push_back(std::move(r));
  }
  return records;
}

class BamSplitReaderTest : public testing::Test {
 protected:
  void SetUp() override {
    DfsOptions o;
    o.block_size = 16 * 1024;  // force many blocks
    o.replication = 1;
    o.num_data_nodes = 4;
    dfs_ = std::make_unique<Dfs>(o);
    header_ = TestHeader();
    records_ = MakeRecords(3000);
    bam_ = WriteBam(header_, records_).ValueOrDie();
    ASSERT_TRUE(dfs_->Write("/sample.bam", bam_).ok());
  }

  std::unique_ptr<Dfs> dfs_;
  SamHeader header_;
  std::vector<SamRecord> records_;
  std::string bam_;
};

TEST_F(BamSplitReaderTest, HeaderReadableFromAnySplit) {
  auto h = ReadBamHeaderFromDfs(*dfs_, "/sample.bam").ValueOrDie();
  EXPECT_EQ(h, header_);
}

TEST_F(BamSplitReaderTest, SplitsCoverFile) {
  auto splits = ComputeBamSplits(*dfs_, "/sample.bam").ValueOrDie();
  ASSERT_GT(splits.size(), 3u);  // many 16 KB blocks
  EXPECT_EQ(splits.front().begin, 0);
  EXPECT_EQ(splits.back().end, static_cast<int64_t>(bam_.size()));
  for (size_t i = 1; i < splits.size(); ++i) {
    EXPECT_EQ(splits[i].begin, splits[i - 1].end);
  }
}

TEST_F(BamSplitReaderTest, UnionOfSplitsIsExactlyAllRecords) {
  // The core §3.1 correctness property: reading every split yields every
  // record exactly once, in file order, despite chunks spanning blocks.
  auto splits = ComputeBamSplits(*dfs_, "/sample.bam").ValueOrDie();
  std::vector<SamRecord> recovered;
  for (const auto& split : splits) {
    auto part = ReadBamSplit(*dfs_, "/sample.bam", split).ValueOrDie();
    recovered.insert(recovered.end(), part.begin(), part.end());
  }
  ASSERT_EQ(recovered.size(), records_.size());
  EXPECT_EQ(recovered, records_);
}

TEST_F(BamSplitReaderTest, SplitsNonTrivial) {
  // At least one mid-file split must itself contain records (i.e. the
  // reader really starts mid-file, not just split 0 doing all the work).
  auto splits = ComputeBamSplits(*dfs_, "/sample.bam").ValueOrDie();
  int nonempty_mid = 0;
  for (size_t i = 1; i < splits.size(); ++i) {
    auto part = ReadBamSplit(*dfs_, "/sample.bam", splits[i]).ValueOrDie();
    if (!part.empty()) ++nonempty_mid;
  }
  EXPECT_GT(nonempty_mid, 0);
}

TEST_F(BamSplitReaderTest, PreferredNodesExposed) {
  auto splits = ComputeBamSplits(*dfs_, "/sample.bam").ValueOrDie();
  for (const auto& s : splits) {
    EXPECT_FALSE(s.preferred_nodes.empty());
  }
}

TEST_F(BamSplitReaderTest, CorruptedBoundaryChunkFailsOverToHealthyReplica) {
  // A split's trailing BGZF chunk spans into the next DFS block; if the
  // replica holding that block is corrupted, the ranged read behind
  // ReadBamSplit must detect it via block checksums and fail over to
  // another replica, recovering byte-identical records. Replication 2 so
  // a healthy copy of every block exists.
  DfsOptions o;
  o.block_size = 16 * 1024;
  o.replication = 2;
  o.num_data_nodes = 4;
  Dfs dfs(o);
  FaultInjector injector(13);
  // Corrupt the first-placed replica of EVERY block — including each
  // block a boundary-spanning trailing chunk reaches into.
  ASSERT_TRUE(injector.ArmFirstAttempts(kFaultDfsBlockCorrupt, 1).ok());
  dfs.set_fault_injector(&injector);
  ASSERT_TRUE(dfs.Write("/sample.bam", bam_).ok());

  auto splits = ComputeBamSplits(dfs, "/sample.bam").ValueOrDie();
  ASSERT_GT(splits.size(), 3u);
  std::vector<SamRecord> recovered;
  for (const auto& split : splits) {
    auto part = ReadBamSplit(dfs, "/sample.bam", split).ValueOrDie();
    recovered.insert(recovered.end(), part.begin(), part.end());
  }
  EXPECT_EQ(recovered, records_);
  EXPECT_GT(dfs.stats().corruptions_detected, 0);
  EXPECT_EQ(dfs.stats().reads_failed, 0);
}

TEST_F(BamSplitReaderTest, WorksWithLogicalPlacement) {
  LogicalPartitionPlacementPolicy policy;
  ASSERT_TRUE(dfs_->Write("/part-0.bam", bam_, &policy).ok());
  auto splits = ComputeBamSplits(*dfs_, "/part-0.bam").ValueOrDie();
  std::vector<SamRecord> recovered;
  for (const auto& split : splits) {
    auto part = ReadBamSplit(*dfs_, "/part-0.bam", split).ValueOrDie();
    recovered.insert(recovered.end(), part.begin(), part.end());
    // All splits of a logical partition share one primary node.
    EXPECT_EQ(split.preferred_nodes[0],
              LogicalPartitionPlacementPolicy::PrimaryNodeFor("/part-0.bam",
                                                              4));
  }
  EXPECT_EQ(recovered, records_);
}

}  // namespace
}  // namespace gesall

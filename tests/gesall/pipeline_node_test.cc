// Streaming node-graph tests: the bounded-queue pipeline of
// pipeline_node.h must produce records bit-identical to the monolithic
// barriered path, stay live on a single-worker executor, honor
// backpressure, and unwind cleanly on mid-stream cancellation or sink
// errors. The suite ends with the end-to-end acceptance comparison:
// a streaming pipelined run versus the barriered engine.

#include "gesall/pipeline_node.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "analysis/steps.h"
#include "gesall/diagnosis.h"
#include "gesall/pipeline.h"
#include "genome/read_simulator.h"
#include "genome/reference_generator.h"
#include "util/executor.h"

namespace gesall {
namespace {

class PipelineNodeTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    ReferenceGeneratorOptions ro;
    ro.num_chromosomes = 2;
    ro.chromosome_length = 20'000;
    ref_ = new ReferenceGenome(GenerateReference(ro));
    donor_ = new DonorGenome(PlantVariants(*ref_, VariantPlanterOptions{}));
    ReadSimulatorOptions so;
    so.coverage = 4.0;
    sample_ = new SimulatedSample(SimulateReads(*donor_, so));
    index_ = new GenomeIndex(*ref_);
    interleaved_ = new std::vector<FastqRecord>(
        InterleavePairs(sample_->mate1, sample_->mate2).ValueOrDie());
  }

  static void TearDownTestSuite() {
    delete interleaved_;
    delete index_;
    delete sample_;
    delete donor_;
    delete ref_;
  }

  // Small batches so the chain pumps many ReadBatches through the
  // bounded edges instead of one monolithic one.
  static PairedAlignerOptions SmallBatches() {
    PairedAlignerOptions opt;
    opt.batch_size = 8;
    return opt;
  }

  static std::vector<SamRecord> CollectStream(
      const AlignCleanStreamOptions& opts, const PairedAlignerOptions& aopt,
      AlignCleanStreamStats* stats, Status* status) {
    std::vector<SamRecord> out;
    std::vector<int64_t> batch_order;
    *status = RunAlignCleanStream(
        *index_, aopt, *interleaved_, opts,
        [&](RecordBatch* b) {
          batch_order.push_back(b->index);
          for (auto& r : b->records) out.push_back(std::move(r));
          return Status::OK();
        },
        stats);
    // The sink sees batches in FIFO order regardless of scheduling.
    for (size_t i = 0; i < batch_order.size(); ++i) {
      EXPECT_EQ(batch_order[i], static_cast<int64_t>(i));
    }
    return out;
  }

  static ReferenceGenome* ref_;
  static DonorGenome* donor_;
  static SimulatedSample* sample_;
  static GenomeIndex* index_;
  static std::vector<FastqRecord>* interleaved_;
};

ReferenceGenome* PipelineNodeTest::ref_ = nullptr;
DonorGenome* PipelineNodeTest::donor_ = nullptr;
SimulatedSample* PipelineNodeTest::sample_ = nullptr;
GenomeIndex* PipelineNodeTest::index_ = nullptr;
std::vector<FastqRecord>* PipelineNodeTest::interleaved_ = nullptr;

TEST_F(PipelineNodeTest, StreamMatchesMonolithicAlignPairs) {
  PairedAlignerOptions aopt = SmallBatches();
  AlignCleanStreamOptions opts;
  opts.clean = false;
  AlignCleanStreamStats stats;
  Status status;
  std::vector<SamRecord> streamed =
      CollectStream(opts, aopt, &stats, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();

  PairedEndAligner aligner(*index_, aopt);
  std::vector<SamRecord> monolithic = aligner.AlignPairs(*interleaved_);
  EXPECT_EQ(streamed, monolithic);
  EXPECT_EQ(stats.reads, static_cast<int64_t>(interleaved_->size()));
  EXPECT_GT(stats.batches, 1);
  EXPECT_GT(stats.kernel.calls, 0);
}

TEST_F(PipelineNodeTest, CleanNodeMatchesBarrieredTransforms) {
  PairedAlignerOptions aopt = SmallBatches();
  PairedEndAligner aligner(*index_, aopt);
  SamHeader header = aligner.MakeHeader();
  ReadGroup rg{"rg1", "sample1", "lib1"};

  AlignCleanStreamOptions opts;
  opts.clean = true;
  opts.header = &header;
  opts.read_group = rg;
  AlignCleanStreamStats stats;
  Status status;
  std::vector<SamRecord> streamed =
      CollectStream(opts, aopt, &stats, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();

  // The barriered reference: whole-vector align, then the round-2
  // map-side transforms applied in one shot.
  std::vector<SamRecord> expected = aligner.AlignPairs(*interleaved_);
  SamHeader local = header;
  ASSERT_TRUE(AddReplaceReadGroups(rg, &local, &expected).ok());
  CleanSamStats cs = CleanSam(local, &expected);
  EXPECT_EQ(streamed, expected);
  EXPECT_EQ(stats.clean_clipped, cs.clipped_overhangs);
  EXPECT_EQ(stats.clean_dropped, cs.dropped_invalid);
}

TEST_F(PipelineNodeTest, LiveOnSingleWorkerExecutor) {
  // The serial reference chain runs the same graph on one worker: every
  // park/wake must resolve without a second thread to help.
  Executor one(1);
  PairedAlignerOptions aopt = SmallBatches();
  AlignCleanStreamOptions opts;
  opts.clean = false;
  opts.executor = &one;
  opts.queue_capacity = 1;
  AlignCleanStreamStats stats;
  Status status;
  std::vector<SamRecord> streamed =
      CollectStream(opts, aopt, &stats, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  PairedEndAligner aligner(*index_, aopt);
  EXPECT_EQ(streamed, aligner.AlignPairs(*interleaved_));
}

TEST_F(PipelineNodeTest, BackpressureBoundsQueueDepth) {
  PairedAlignerOptions aopt = SmallBatches();
  AlignCleanStreamOptions opts;
  opts.clean = false;
  opts.queue_capacity = 1;
  AlignCleanStreamStats stats;
  Status status;
  std::vector<SamRecord> streamed =
      CollectStream(opts, aopt, &stats, &status);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_FALSE(streamed.empty());
  ASSERT_FALSE(stats.edges.empty());
  for (const auto& e : stats.edges) {
    EXPECT_LE(e.queue.max_depth, 1) << e.name;
    EXPECT_EQ(e.queue.pushed, e.queue.popped) << e.name;
  }
  // Someone parked: with capacity-1 edges the producer and consumer
  // cannot both run free.
  int64_t parks = 0;
  for (const auto& n : stats.nodes) parks += n.parks;
  EXPECT_GT(parks, 0);
}

TEST_F(PipelineNodeTest, MidStreamCancelUnwindsCleanly) {
  auto cancel = std::make_shared<CancelToken>();
  PairedAlignerOptions aopt = SmallBatches();
  AlignCleanStreamOptions opts;
  opts.clean = false;
  opts.cancel = cancel;
  opts.queue_capacity = 1;
  AlignCleanStreamStats stats;
  std::atomic<int> sunk{0};
  Status status = RunAlignCleanStream(
      *index_, aopt, *interleaved_, opts,
      [&](RecordBatch*) {
        if (sunk.fetch_add(1) == 0) cancel->Cancel("test cancel");
        return Status::OK();
      },
      &stats);
  ASSERT_TRUE(status.IsCancelled()) << status.ToString();
  EXPECT_NE(status.message().find("test cancel"), std::string::npos);
  // The graph stopped early: not every batch reached the sink.
  const int64_t total_batches =
      (static_cast<int64_t>(interleaved_->size()) +
       2 * aopt.batch_size - 1) /
      (2 * aopt.batch_size);
  EXPECT_LT(sunk.load(), total_batches);
}

TEST_F(PipelineNodeTest, SinkErrorAbortsGraph) {
  PairedAlignerOptions aopt = SmallBatches();
  AlignCleanStreamOptions opts;
  opts.clean = false;
  AlignCleanStreamStats stats;
  Status status = RunAlignCleanStream(
      *index_, aopt, *interleaved_, opts,
      [](RecordBatch*) { return Status::IOError("sink disk full"); },
      &stats);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("disk full"), std::string::npos);
}

// ---------------------------------------------------------------------
// End-to-end acceptance: streaming pipelined run vs the barriered
// engine. The fused rounds 1+2 must be invisible in every output.

class StreamingPipelineTest : public PipelineNodeTest {
 protected:
  struct Run {
    std::unique_ptr<Dfs> dfs;
    std::unique_ptr<GesallPipeline> pipeline;
    std::vector<VariantRecord> variants;
  };

  static Run RunMode(bool streaming) {
    Run run;
    DfsOptions dopt;
    dopt.block_size = 64 * 1024;
    dopt.replication = 2;
    dopt.num_data_nodes = 4;
    run.dfs = std::make_unique<Dfs>(dopt);
    PipelineConfig config;
    config.alignment_partitions = 3;
    config.pipelined = streaming;
    config.streaming = streaming;
    run.pipeline = std::make_unique<GesallPipeline>(*ref_, *index_,
                                                    run.dfs.get(), config);
    EXPECT_TRUE(
        run.pipeline->LoadSample(sample_->mate1, sample_->mate2).ok());
    auto variants = run.pipeline->RunAll();
    EXPECT_TRUE(variants.ok()) << variants.status().ToString();
    if (variants.ok()) run.variants = variants.MoveValueUnsafe();
    return run;
  }
};

TEST_F(StreamingPipelineTest, StreamingRunMatchesBarriered) {
  Run barriered = RunMode(/*streaming=*/false);
  Run streaming = RunMode(/*streaming=*/true);

  // Variants identical.
  ASSERT_EQ(streaming.variants.size(), barriered.variants.size());
  for (size_t i = 0; i < streaming.variants.size(); ++i) {
    EXPECT_EQ(streaming.variants[i].Key(), barriered.variants[i].Key());
    EXPECT_EQ(streaming.variants[i].qual, barriered.variants[i].qual);
  }

  // Every downstream stage byte-identical on the DFS. The aligned stage
  // must NOT exist in the streaming run — that is the point.
  EXPECT_TRUE(streaming.dfs->List("/gesall/aligned/").empty());
  EXPECT_FALSE(barriered.dfs->List("/gesall/aligned/").empty());
  for (const char* dir :
       {"/gesall/cleaned/", "/gesall/dedup/", "/gesall/sorted/"}) {
    std::vector<std::string> paths = barriered.dfs->List(dir);
    ASSERT_EQ(streaming.dfs->List(dir), paths) << dir;
    for (const auto& path : paths) {
      auto a = barriered.dfs->Read(path);
      auto b = streaming.dfs->Read(path);
      ASSERT_TRUE(a.ok() && b.ok()) << path;
      EXPECT_TRUE(a.ValueOrDie() == b.ValueOrDie()) << path;
    }
  }

  // The fused round is reported under one name, with the streaming
  // telemetry present in its counters.
  const auto& stats = streaming.pipeline->stats();
  ASSERT_FALSE(stats.empty());
  EXPECT_EQ(stats.front().name, "round1_2_streamed");
  EXPECT_GT(stats.front().counters.Get("stream_batches"), 0);
  EXPECT_GT(stats.front().counters.Get("stream_node_align_pumps"), 0);
  EXPECT_GT(stats.front().counters.Get("align_kernel_calls"), 0);
  EXPECT_TRUE(streaming.pipeline->SummarizeExecution().streaming);
  EXPECT_FALSE(barriered.pipeline->SummarizeExecution().streaming);
  EXPECT_GT(streaming.pipeline->SummarizeExecution().peak_rss_bytes, 0);
}

}  // namespace
}  // namespace gesall

#include "gesall/contracts.h"

#include <gtest/gtest.h>

namespace gesall {
namespace {

TEST(SatisfiesTest, NoneAlwaysSatisfied) {
  for (auto p : {DataProperty::kNone, DataProperty::kGroupedByReadName,
                 DataProperty::kSortedByCoordinate}) {
    EXPECT_TRUE(Satisfies(p, DataProperty::kNone));
  }
}

TEST(SatisfiesTest, ExactMatch) {
  EXPECT_TRUE(Satisfies(DataProperty::kGroupedByReadName,
                        DataProperty::kGroupedByReadName));
  EXPECT_FALSE(Satisfies(DataProperty::kGroupedByReadName,
                         DataProperty::kSortedByCoordinate));
}

TEST(SatisfiesTest, ChromosomeRangeImpliesSorted) {
  EXPECT_TRUE(Satisfies(DataProperty::kRangeByChromosome,
                        DataProperty::kSortedByCoordinate));
  EXPECT_FALSE(Satisfies(DataProperty::kSortedByCoordinate,
                         DataProperty::kRangeByChromosome));
}

TEST(ValidatePipelineTest, StandardPipelineNeedsFourLogicalRounds) {
  // Minimum semantically-required rounds: initial partitioning for Bwa,
  // the MarkDuplicates compound-key shuffle, and the coordinate sort.
  auto check =
      ValidatePipeline(StandardPipelineContracts()).ValueOrDie();
  EXPECT_EQ(check.required_rounds, 4);
  ASSERT_EQ(check.shuffle_before_step.size(), 3u);
  EXPECT_EQ(check.shuffle_before_step[0], 0u);  // Bwa: group by read name
  EXPECT_EQ(check.shuffle_before_step[1], 5u);  // MarkDuplicates
  EXPECT_EQ(check.shuffle_before_step[2], 6u);  // SortSam repartitioner
  EXPECT_EQ(check.trace.size(), 8u);
}

TEST(ValidatePipelineTest, FixMateNeedsNoShuffleAfterBwa) {
  // Bwa output is grouped by read name at the logical-partition level, so
  // FixMateInformation is semantically shuffle-free — the production
  // pipeline's Round-2 shuffle exists only because its mappers read
  // physical block splits (paper Appendix A.2).
  auto check =
      ValidatePipeline(StandardPipelineContracts()).ValueOrDie();
  for (size_t idx : check.shuffle_before_step) {
    EXPECT_NE(idx, 4u) << "FixMateInformation should not need a shuffle";
  }
}

TEST(ValidatePipelineTest, RecalibrationAddsNoShuffles) {
  // Covariate tables merge, PrintReads is per-record: same round count.
  auto with = ValidatePipeline(StandardPipelineContracts(true)).ValueOrDie();
  auto without =
      ValidatePipeline(StandardPipelineContracts(false)).ValueOrDie();
  EXPECT_EQ(with.required_rounds, without.required_rounds);
}

TEST(ValidatePipelineTest, HaplotypeCallerRunsMapOnlyAfterSort) {
  auto check =
      ValidatePipeline(StandardPipelineContracts()).ValueOrDie();
  // The last step (HC) must not be preceded by a shuffle: the sort round
  // already range-partitioned by chromosome.
  size_t hc_index = StandardPipelineContracts().size() - 1;
  for (size_t idx : check.shuffle_before_step) {
    EXPECT_NE(idx, hc_index);
  }
}

TEST(ValidatePipelineTest, WholeGenomeProgramRejected) {
  ProgramContract monolith{"Theta", DataProperty::kWholeGenome,
                           DataProperty::kNone, false, false};
  auto result = ValidatePipeline({BwaContract(), monolith});
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(ValidatePipelineTest, DestructiveStepForcesLaterShuffle) {
  // A program that destroys grouping forces a re-shuffle before the next
  // grouping-dependent program.
  ProgramContract scrambler{"Scrambler", DataProperty::kNone,
                            DataProperty::kNone, true, false};
  auto check = ValidatePipeline(
                   {BwaContract(), scrambler, FixMateInformationContract()})
                   .ValueOrDie();
  // Shuffles: before Bwa, and again before FixMate (grouping destroyed).
  EXPECT_EQ(check.required_rounds, 3);
}

TEST(ValidatePipelineTest, TraceMentionsShuffles) {
  auto check =
      ValidatePipeline(StandardPipelineContracts()).ValueOrDie();
  int shuffle_lines = 0;
  for (const auto& line : check.trace) {
    if (line.find("SHUFFLE") != std::string::npos) ++shuffle_lines;
  }
  EXPECT_EQ(shuffle_lines, 3);
}

TEST(ValidatePipelineTest, InitialPropertyHonored) {
  // If the FASTQ is already interleaved into name-grouped partitions,
  // Bwa needs no shuffle.
  auto check = ValidatePipeline(StandardPipelineContracts(),
                                DataProperty::kGroupedByReadName)
                   .ValueOrDie();
  EXPECT_EQ(check.required_rounds, 3);
}

}  // namespace
}  // namespace gesall

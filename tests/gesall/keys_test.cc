#include "gesall/keys.h"

#include <gtest/gtest.h>

namespace gesall {
namespace {

SamRecord Rec(int32_t ref, int64_t pos, bool reverse = false,
              bool unmapped = false) {
  SamRecord r;
  r.qname = "q" + std::to_string(pos);
  r.ref_id = unmapped ? -1 : ref;
  r.pos = unmapped ? -1 : pos;
  r.cigar = unmapped ? Cigar{} : Cigar{{'M', 100}};
  if (reverse) r.SetFlag(sam_flags::kReverse, true);
  if (unmapped) r.SetFlag(sam_flags::kUnmapped, true);
  r.seq = std::string(100, 'A');
  r.qual = std::string(100, 'I');
  return r;
}

TEST(CoordinateKeyTest, OrderMatchesCoordinateOrder) {
  // Byte order of keys must equal (ref, pos) order.
  EXPECT_LT(EncodeCoordinateKey(Rec(0, 100)), EncodeCoordinateKey(Rec(0, 101)));
  EXPECT_LT(EncodeCoordinateKey(Rec(0, 1'000'000)),
            EncodeCoordinateKey(Rec(1, 0)));
  EXPECT_LT(EncodeCoordinateKey(Rec(1, 5)), EncodeCoordinateKey(Rec(2, 0)));
}

TEST(CoordinateKeyTest, UnmappedSortLast) {
  EXPECT_LT(EncodeCoordinateKey(Rec(30, 1'000'000'000)),
            EncodeCoordinateKey(Rec(0, 0, false, /*unmapped=*/true)));
}

TEST(CoordinateKeyTest, BoundaryBelowAllPositionsOfChromosome) {
  std::string boundary = EncodeCoordinateBoundary(2, 0);
  EXPECT_LT(EncodeCoordinateKey(Rec(1, 999'999)), boundary);
  EXPECT_LE(boundary, EncodeCoordinateKey(Rec(2, 0)));
  EXPECT_LT(boundary, EncodeCoordinateKey(Rec(2, 1)));
}

TEST(PairEndKeyTest, DistinctFamilies) {
  ReadEndKey k1{0, 100, false}, k2{0, 400, true};
  std::string pair_key = EncodePairKey(k1, k2);
  std::string end_key = EncodeEndKey(k1);
  std::string pass_key = EncodePassthroughKey("q1");
  EXPECT_EQ(pair_key[0], 'P');
  EXPECT_EQ(end_key[0], 'E');
  EXPECT_EQ(pass_key[0], 'U');
  EXPECT_NE(pair_key, end_key);
}

TEST(PairEndKeyTest, EndKeyDistinguishesStrand) {
  EXPECT_NE(EncodeEndKey({0, 100, false}), EncodeEndKey({0, 100, true}));
  EXPECT_NE(EncodeEndKey({0, 100, false}), EncodeEndKey({1, 100, false}));
}

TEST(PairEndKeyTest, PairKeySensitiveToBothEnds) {
  ReadEndKey a{0, 100, false}, b{0, 400, true}, c{0, 401, true};
  EXPECT_NE(EncodePairKey(a, b), EncodePairKey(a, c));
}

TEST(MarkDupValueTest, SingleRecordRoundTrip) {
  SamRecord r = Rec(1, 555);
  auto decoded = DecodeMarkDupValue(
                     EncodeMarkDupValue(MarkDupRole::kEndRepresentative, r))
                     .ValueOrDie();
  EXPECT_EQ(decoded.role, MarkDupRole::kEndRepresentative);
  EXPECT_EQ(decoded.first, r);
  EXPECT_FALSE(decoded.has_second);
}

TEST(MarkDupValueTest, PairRoundTrip) {
  SamRecord a = Rec(1, 555), b = Rec(1, 900, true);
  auto decoded =
      DecodeMarkDupValue(EncodeMarkDupValue(MarkDupRole::kCompletePair, a, &b))
          .ValueOrDie();
  EXPECT_EQ(decoded.role, MarkDupRole::kCompletePair);
  EXPECT_EQ(decoded.first, a);
  ASSERT_TRUE(decoded.has_second);
  EXPECT_EQ(decoded.second, b);
}

TEST(MarkDupValueTest, CorruptValueRejected) {
  EXPECT_FALSE(DecodeMarkDupValue("x").ok());
  EXPECT_FALSE(DecodeMarkDupValue("\x01\x01garbage").ok());
}

TEST(OrderedU64Test, PreservesOrder) {
  std::string a, b;
  AppendOrderedU64(&a, 5);
  AppendOrderedU64(&b, 600);
  EXPECT_LT(a, b);
  std::string c, d;
  AppendOrderedU64(&c, 0);
  AppendOrderedU64(&d, UINT64_MAX);
  EXPECT_LT(c, d);
}

}  // namespace
}  // namespace gesall

// Pipelined round-DAG acceptance tests: running RunAll() with
// config.pipelined = true (rounds overlap per partition on the shared
// work-stealing executor) must be invisible in every output — stage part
// bytes in DFS, variant calls, and per-record round counters are
// byte-identical to the barriered engine — and visible only in the
// execution-engine telemetry. Also covers the RoundDag scheduler itself
// and determinism of chaos recovery mid-overlap.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "gesall/pipeline.h"
#include "gesall/report.h"
#include "gesall/round_dag.h"
#include "genome/read_simulator.h"
#include "genome/reference_generator.h"
#include "util/executor.h"
#include "util/fault_injection.h"

namespace gesall {
namespace {

constexpr uint64_t kChaosSeed = 2017;

const char* const kStageDirs[] = {"/gesall/aligned/", "/gesall/cleaned/",
                                  "/gesall/dedup/", "/gesall/sorted/"};

std::vector<std::string> VariantKeys(const std::vector<VariantRecord>& vs) {
  std::vector<std::string> keys;
  keys.reserve(vs.size());
  for (const auto& v : vs) {
    std::ostringstream os;
    os << v.Key() << "@" << v.qual;
    keys.push_back(os.str());
  }
  return keys;
}

// Per-round counters with the wall-clock-dependent *_micros keys dropped:
// the pipelined engine moves work in time, never in kind.
std::vector<std::map<std::string, int64_t>> RecordCounters(
    const GesallPipeline& p) {
  std::vector<std::map<std::string, int64_t>> rounds;
  for (const auto& round : p.stats()) {
    std::map<std::string, int64_t> counters;
    for (const auto& [name, value] : round.counters.values()) {
      if (name.size() >= 7 &&
          name.compare(name.size() - 7, 7, "_micros") == 0) {
        continue;
      }
      counters[name] = value;
    }
    rounds.push_back(std::move(counters));
  }
  return rounds;
}

// One full pipeline execution with everything the comparisons need.
struct ModeRun {
  std::unique_ptr<FaultInjector> injector;
  std::unique_ptr<Dfs> dfs;
  std::unique_ptr<GesallPipeline> pipeline;
  std::vector<VariantRecord> variants;
};

class PipelineDagTest : public testing::Test {
 protected:
  static DfsOptions MakeDfsOptions() {
    DfsOptions dopt;
    dopt.block_size = 64 * 1024;
    dopt.replication = 2;
    dopt.num_data_nodes = 4;
    dopt.blacklist_threshold = 1 << 20;
    return dopt;
  }

  static PipelineConfig MakePipelineConfig(bool pipelined) {
    PipelineConfig config;
    config.alignment_partitions = 3;
    config.pipelined = pipelined;
    return config;
  }

  static ModeRun RunMode(bool pipelined, bool run_recalibration) {
    ModeRun run;
    run.dfs = std::make_unique<Dfs>(MakeDfsOptions());
    PipelineConfig config = MakePipelineConfig(pipelined);
    config.run_recalibration = run_recalibration;
    run.pipeline = std::make_unique<GesallPipeline>(*ref_, *index_,
                                                    run.dfs.get(), config);
    EXPECT_TRUE(
        run.pipeline->LoadSample(sample_->mate1, sample_->mate2).ok());
    auto variants = run.pipeline->RunAll();
    EXPECT_TRUE(variants.ok()) << variants.status().ToString();
    if (variants.ok()) run.variants = variants.MoveValueUnsafe();
    return run;
  }

  // The chaos-mid-overlap acceptance run: one replica of every block
  // corrupted plus a node crash after round 1, while rounds overlap.
  // Mirrors pipeline_chaos_test's node-chaos arming; determinism holds
  // across modes because every injector decision is a pure function of
  // (point, key, attempt) and task keys are stable split/partition
  // indices, not arrival order.
  static ModeRun RunNodeChaos(bool pipelined, uint64_t seed) {
    ModeRun run;
    run.injector = std::make_unique<FaultInjector>(seed);
    EXPECT_TRUE(
        run.injector->ArmFirstAttempts(kFaultDfsBlockCorrupt, 1).ok());
    const int crash_node = LogicalPartitionPlacementPolicy::PrimaryNodeFor(
        "/gesall/aligned/part-00000.bam", 4);
    run.injector->ArmSchedule(kFaultNodeCrash, crash_node, {0});

    DfsOptions dopt = MakeDfsOptions();
    dopt.replication = 3;
    dopt.heartbeat_miss_threshold = 1;
    run.dfs = std::make_unique<Dfs>(dopt);
    PipelineConfig config = MakePipelineConfig(pipelined);
    // Single-threaded execution keeps the DFS health-state evolution a
    // pure function of the fault seed, as in pipeline_chaos_test.
    config.max_parallel_tasks = 1;
    config.fault_injector = run.injector.get();
    run.pipeline = std::make_unique<GesallPipeline>(*ref_, *index_,
                                                    run.dfs.get(), config);
    EXPECT_TRUE(
        run.pipeline->LoadSample(sample_->mate1, sample_->mate2).ok());
    auto variants = run.pipeline->RunAll();
    EXPECT_TRUE(variants.ok()) << variants.status().ToString();
    if (variants.ok()) run.variants = variants.MoveValueUnsafe();
    return run;
  }

  static void SetUpTestSuite() {
    ReferenceGeneratorOptions ro;
    ro.num_chromosomes = 2;
    ro.chromosome_length = 30'000;
    ref_ = new ReferenceGenome(GenerateReference(ro));
    donor_ = new DonorGenome(PlantVariants(*ref_, VariantPlanterOptions{}));
    ReadSimulatorOptions so;
    so.coverage = 6.0;
    sample_ = new SimulatedSample(SimulateReads(*donor_, so));
    index_ = new GenomeIndex(*ref_);

    barriered_ = new ModeRun(RunMode(/*pipelined=*/false, false));
    pipelined_ = new ModeRun(RunMode(/*pipelined=*/true, false));
    barriered_recal_ = new ModeRun(RunMode(/*pipelined=*/false, true));
    pipelined_recal_ = new ModeRun(RunMode(/*pipelined=*/true, true));
    chaos_barriered_ =
        new ModeRun(RunNodeChaos(/*pipelined=*/false, kChaosSeed));
    chaos_pipelined_ =
        new ModeRun(RunNodeChaos(/*pipelined=*/true, kChaosSeed));
  }

  static void TearDownTestSuite() {
    delete chaos_pipelined_;
    delete chaos_barriered_;
    delete pipelined_recal_;
    delete barriered_recal_;
    delete pipelined_;
    delete barriered_;
    delete index_;
    delete sample_;
    delete donor_;
    delete ref_;
  }

  static void ExpectStagePartsIdentical(const ModeRun& a, const ModeRun& b) {
    for (const char* dir : kStageDirs) {
      std::vector<std::string> paths_a = a.dfs->List(dir);
      std::vector<std::string> paths_b = b.dfs->List(dir);
      EXPECT_EQ(paths_a, paths_b) << dir;
      for (const auto& path : paths_a) {
        if (!b.dfs->Exists(path)) continue;
        auto bytes_a = a.dfs->Read(path);
        auto bytes_b = b.dfs->Read(path);
        ASSERT_TRUE(bytes_a.ok() && bytes_b.ok()) << path;
        EXPECT_TRUE(bytes_a.ValueOrDie() == bytes_b.ValueOrDie())
            << path << " differs between barriered and pipelined runs";
      }
    }
  }

  static ReferenceGenome* ref_;
  static DonorGenome* donor_;
  static SimulatedSample* sample_;
  static GenomeIndex* index_;
  static ModeRun* barriered_;
  static ModeRun* pipelined_;
  static ModeRun* barriered_recal_;
  static ModeRun* pipelined_recal_;
  static ModeRun* chaos_barriered_;
  static ModeRun* chaos_pipelined_;
};

ReferenceGenome* PipelineDagTest::ref_ = nullptr;
DonorGenome* PipelineDagTest::donor_ = nullptr;
SimulatedSample* PipelineDagTest::sample_ = nullptr;
GenomeIndex* PipelineDagTest::index_ = nullptr;
ModeRun* PipelineDagTest::barriered_ = nullptr;
ModeRun* PipelineDagTest::pipelined_ = nullptr;
ModeRun* PipelineDagTest::barriered_recal_ = nullptr;
ModeRun* PipelineDagTest::pipelined_recal_ = nullptr;
ModeRun* PipelineDagTest::chaos_barriered_ = nullptr;
ModeRun* PipelineDagTest::chaos_pipelined_ = nullptr;

TEST_F(PipelineDagTest, VariantsByteIdenticalAcrossModes) {
  ASSERT_FALSE(barriered_->variants.empty());
  EXPECT_EQ(VariantKeys(barriered_->variants),
            VariantKeys(pipelined_->variants));
}

TEST_F(PipelineDagTest, StagePartBytesIdenticalAcrossModes) {
  ExpectStagePartsIdentical(*barriered_, *pipelined_);
}

TEST_F(PipelineDagTest, RoundCountersIdenticalAcrossModes) {
  auto barriered = RecordCounters(*barriered_->pipeline);
  auto pipelined = RecordCounters(*pipelined_->pipeline);
  ASSERT_EQ(barriered.size(), pipelined.size());
  for (size_t i = 0; i < barriered.size(); ++i) {
    EXPECT_EQ(barriered_->pipeline->stats()[i].name,
              pipelined_->pipeline->stats()[i].name);
    EXPECT_EQ(barriered[i], pipelined[i])
        << "round " << barriered_->pipeline->stats()[i].name;
  }
}

TEST_F(PipelineDagTest, RecalibrationRoundsIdenticalAcrossModes) {
  ASSERT_FALSE(barriered_recal_->variants.empty());
  EXPECT_EQ(VariantKeys(barriered_recal_->variants),
            VariantKeys(pipelined_recal_->variants));
  auto barriered = RecordCounters(*barriered_recal_->pipeline);
  auto pipelined = RecordCounters(*pipelined_recal_->pipeline);
  EXPECT_EQ(barriered, pipelined);
}

TEST_F(PipelineDagTest, ChaosRecoveryMidOverlapMatchesBarriered) {
  // Recovery must actually have fired...
  const NodeFailureSummary nodes =
      chaos_pipelined_->pipeline->SummarizeNodeFailures();
  EXPECT_GT(nodes.corruptions_detected, 0);
  EXPECT_GT(nodes.nodes_declared_dead, 0);
  // ...and be invisible: same calls as the barriered engine under the
  // identical fault schedule, and as the fault-free runs.
  ASSERT_FALSE(chaos_barriered_->variants.empty());
  EXPECT_EQ(VariantKeys(chaos_barriered_->variants),
            VariantKeys(chaos_pipelined_->variants));
  EXPECT_EQ(VariantKeys(barriered_->variants),
            VariantKeys(chaos_pipelined_->variants));
}

TEST_F(PipelineDagTest, ExecutionSummaryDescribesEachMode) {
  const ExecutionSummary& barriered =
      barriered_->pipeline->SummarizeExecution();
  EXPECT_FALSE(barriered.pipelined);
  EXPECT_GT(barriered.tasks_executed, 0);
  EXPECT_FALSE(barriered.rounds.empty());

  const ExecutionSummary& pipelined =
      pipelined_->pipeline->SummarizeExecution();
  EXPECT_TRUE(pipelined.pipelined);
  EXPECT_GT(pipelined.tasks_executed, 0);
  EXPECT_GT(pipelined.wall_seconds, 0.0);
  EXPECT_FALSE(pipelined.rounds.empty());
  EXPECT_FALSE(pipelined.critical_path.empty());
  EXPECT_GT(pipelined.critical_path_seconds, 0.0);
  // Serialized time sums the round spans; with overlap it can only be
  // >= the observed wall clock.
  EXPECT_GE(pipelined.serialized_round_seconds,
            pipelined.wall_seconds - 1e-9);
}

TEST_F(PipelineDagTest, ReportRendersExecutionEngineSection) {
  auto interleaved =
      InterleavePairs(sample_->mate1, sample_->mate2).ValueOrDie();
  SerialStageOutputs serial =
      RunSerialPipeline(*ref_, *index_, interleaved).ValueOrDie();
  auto aligned = pipelined_->pipeline->ReadStageRecords("aligned");
  auto deduped = pipelined_->pipeline->ReadStageRecords("dedup");
  ASSERT_TRUE(aligned.ok() && deduped.ok());

  DiagnosisReportInputs inputs;
  inputs.reference = ref_;
  inputs.serial = &serial;
  inputs.parallel_aligned = &aligned.ValueOrDie();
  inputs.parallel_deduped = &deduped.ValueOrDie();
  inputs.parallel_variants = &pipelined_->variants;
  inputs.execution = &pipelined_->pipeline->SummarizeExecution();
  auto report = GenerateDiagnosisReport(inputs);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const std::string& md = report.ValueOrDie().markdown;
  EXPECT_NE(md.find("## Execution engine"), std::string::npos);
  EXPECT_NE(md.find("pipelined (per-partition overlap)"),
            std::string::npos);
  EXPECT_NE(md.find("critical path"), std::string::npos);
}

// ---------------------------------------------------------------------
// RoundDag scheduler unit tests.

TEST(RoundDagTest, RunsTasksInDependencyOrder) {
  Executor executor(2);
  RoundDag dag;
  std::mutex mu;
  std::vector<std::string> order;
  auto record = [&](const std::string& name) {
    return [&, name]() {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(name);
      return Status::OK();
    };
  };
  int a = dag.AddTask("a", record("a"));
  int b = dag.AddTask("b", record("b"));
  int c = dag.AddTask("c", record("c"));
  int d = dag.AddTask("d", record("d"));
  dag.AddDep(a, b);
  dag.AddDep(a, c);
  dag.AddDep(b, d);
  dag.AddDep(c, d);
  ASSERT_TRUE(dag.Run(&executor).ok());
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order.front(), "a");
  EXPECT_EQ(order.back(), "d");
}

TEST(RoundDagTest, ErrorSkipsDependentsAndPropagates) {
  Executor executor(1);
  RoundDag dag;
  bool downstream_ran = false;
  int a = dag.AddTask(
      "a", []() { return Status::IOError("round a exploded"); });
  int b = dag.AddTask("b", [&]() {
    downstream_ran = true;
    return Status::OK();
  });
  dag.AddDep(a, b);
  Status status = dag.Run(&executor);
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("round a exploded"), std::string::npos);
  EXPECT_FALSE(downstream_ran);
}

TEST(RoundDagTest, CycleIsRejected) {
  Executor executor(1);
  RoundDag dag;
  int a = dag.AddTask("a", []() { return Status::OK(); });
  int b = dag.AddTask("b", []() { return Status::OK(); });
  dag.AddDep(a, b);
  dag.AddDep(b, a);
  EXPECT_FALSE(dag.Run(&executor).ok());
}

TEST(RoundDagTest, CriticalPathPicksLongestSpanChain) {
  RoundDag dag;
  int a = dag.AddTask("a");
  int b = dag.AddTask("b");
  int c = dag.AddTask("c");
  int d = dag.AddTask("d");
  dag.AddDep(a, b);
  dag.AddDep(a, c);
  dag.AddDep(b, d);
  dag.AddDep(c, d);
  dag.RecordSpan(a, 0.0, 1.0);
  dag.RecordSpan(b, 1.0, 1.5);   // short branch
  dag.RecordSpan(c, 1.0, 4.0);   // long branch
  dag.RecordSpan(d, 4.0, 5.0);
  std::vector<std::string> path = dag.CriticalPath();
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], "a");
  EXPECT_EQ(path[1], "c");
  EXPECT_EQ(path[2], "d");
  EXPECT_NEAR(dag.CriticalPathSeconds(), 5.0, 1e-9);
}

}  // namespace
}  // namespace gesall

#include "gesall/report.h"

#include <gtest/gtest.h>

#include "align/aligner.h"
#include "genome/read_simulator.h"
#include "genome/reference_generator.h"

namespace gesall {
namespace {

class ReportTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    ReferenceGeneratorOptions ro;
    ro.num_chromosomes = 2;
    ro.chromosome_length = 70'000;
    ref_ = new ReferenceGenome(GenerateReference(ro));
    donor_ = new DonorGenome(PlantVariants(*ref_, VariantPlanterOptions{}));
    ReadSimulatorOptions so;
    so.coverage = 15.0;
    auto sample = SimulateReads(*donor_, so);
    GenomeIndex index(*ref_);
    auto interleaved =
        InterleavePairs(sample.mate1, sample.mate2).ValueOrDie();
    serial_ = new SerialStageOutputs(
        RunSerialPipeline(*ref_, index, interleaved).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete serial_;
    delete donor_;
    delete ref_;
  }

  static ReferenceGenome* ref_;
  static DonorGenome* donor_;
  static SerialStageOutputs* serial_;
};

ReferenceGenome* ReportTest::ref_ = nullptr;
DonorGenome* ReportTest::donor_ = nullptr;
SerialStageOutputs* ReportTest::serial_ = nullptr;

TEST_F(ReportTest, SelfComparisonAccepts) {
  // Comparing the serial pipeline against itself must trivially pass
  // every acceptance criterion.
  DiagnosisReportInputs inputs;
  inputs.reference = ref_;
  inputs.serial = serial_;
  inputs.parallel_aligned = &serial_->aligned;
  inputs.parallel_deduped = &serial_->deduped;
  inputs.parallel_variants = &serial_->variants;
  inputs.truth = &donor_->truth;
  auto report = GenerateDiagnosisReport(inputs).ValueOrDie();
  EXPECT_EQ(report.alignment.d_count, 0);
  EXPECT_EQ(report.duplicates.d_count, 0);
  EXPECT_EQ(report.variants.d_count(), 0);
  EXPECT_TRUE(report.discordance_is_low_quality);
  EXPECT_TRUE(report.variant_impact_small);
  EXPECT_TRUE(report.truth_scores_match);
  EXPECT_NE(report.markdown.find("ACCEPT"), std::string::npos);
}

TEST_F(ReportTest, MarkdownContainsAllSections) {
  DiagnosisReportInputs inputs;
  inputs.reference = ref_;
  inputs.serial = serial_;
  inputs.parallel_aligned = &serial_->aligned;
  inputs.parallel_deduped = &serial_->deduped;
  inputs.parallel_variants = &serial_->variants;
  inputs.truth = &donor_->truth;
  auto report = GenerateDiagnosisReport(inputs).ValueOrDie();
  for (const char* section :
       {"# Parallel pipeline error-tracking report",
        "## Stage 1: alignment", "## Stage 2: duplicate marking",
        "## Stage 3: final variant calls", "## Truth-set scoring",
        "## Verdict"}) {
    EXPECT_NE(report.markdown.find(section), std::string::npos) << section;
  }
}

TEST_F(ReportTest, TruthSectionOptional) {
  DiagnosisReportInputs inputs;
  inputs.reference = ref_;
  inputs.serial = serial_;
  inputs.parallel_aligned = &serial_->aligned;
  inputs.parallel_deduped = &serial_->deduped;
  inputs.parallel_variants = &serial_->variants;
  auto report = GenerateDiagnosisReport(inputs).ValueOrDie();
  EXPECT_EQ(report.markdown.find("Truth-set scoring"), std::string::npos);
  EXPECT_TRUE(report.truth_scores_match);  // vacuously true
}

TEST_F(ReportTest, DiskBytesSectionRendersStorageSummary) {
  DiagnosisReportInputs inputs;
  inputs.reference = ref_;
  inputs.serial = serial_;
  inputs.parallel_aligned = &serial_->aligned;
  inputs.parallel_deduped = &serial_->deduped;
  inputs.parallel_variants = &serial_->variants;

  // Without a storage summary the section is omitted entirely.
  auto plain = GenerateDiagnosisReport(inputs).ValueOrDie();
  EXPECT_EQ(plain.markdown.find("Disk bytes"), std::string::npos);

  StorageSummary storage;
  storage.shuffle_bytes_raw = 4'000'000;
  storage.shuffle_bytes_compressed = 1'000'000;
  storage.shuffle_compress_micros = 120'000;
  storage.dfs_bytes_raw = 2'000'000;
  storage.dfs_bytes_compressed = 500'000;
  inputs.storage = &storage;
  auto report = GenerateDiagnosisReport(inputs).ValueOrDie();
  EXPECT_NE(report.markdown.find("## Disk bytes"), std::string::npos);
  EXPECT_NE(report.markdown.find("4.00x"), std::string::npos);
  EXPECT_NE(report.markdown.find("round-trips byte-identically"),
            std::string::npos);
  EXPECT_EQ(report.storage.shuffle_bytes_raw, 4'000'000);
}

TEST_F(ReportTest, CorruptedVariantsTriggerReview) {
  // Feed a parallel variant set missing 20% of calls and carrying junk
  // high-quality extras: the verdict must flip to REVIEW.
  std::vector<VariantRecord> corrupted(
      serial_->variants.begin(),
      serial_->variants.begin() + serial_->variants.size() * 8 / 10);
  for (int i = 0; i < 40; ++i) {
    VariantRecord junk;
    junk.chrom = 0;
    junk.pos = 60'000 + i * 10;
    junk.ref = "A";
    junk.alt = "T";
    junk.qual = 99;
    corrupted.push_back(junk);
  }
  DiagnosisReportInputs inputs;
  inputs.reference = ref_;
  inputs.serial = serial_;
  inputs.parallel_aligned = &serial_->aligned;
  inputs.parallel_deduped = &serial_->deduped;
  inputs.parallel_variants = &corrupted;
  inputs.truth = &donor_->truth;
  auto report = GenerateDiagnosisReport(inputs).ValueOrDie();
  EXPECT_FALSE(report.variant_impact_small);
  EXPECT_NE(report.markdown.find("REVIEW"), std::string::npos);
}

TEST_F(ReportTest, MissingInputsRejected) {
  DiagnosisReportInputs inputs;
  inputs.reference = ref_;
  EXPECT_TRUE(
      GenerateDiagnosisReport(inputs).status().IsInvalidArgument());
}

}  // namespace
}  // namespace gesall

// End-to-end integration tests: the parallel Gesall pipeline versus the
// serial reference pipeline on a simulated whole-genome sample.

#include "gesall/pipeline.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "analysis/mark_duplicates.h"
#include "formats/bam.h"
#include "gesall/diagnosis.h"
#include "genome/read_simulator.h"
#include "genome/reference_generator.h"

namespace gesall {
namespace {

// One shared sample + serial run + parallel run for the whole suite.
class PipelineIntegrationTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    ReferenceGeneratorOptions ro;
    ro.num_chromosomes = 2;
    ro.chromosome_length = 100'000;
    ref_ = new ReferenceGenome(GenerateReference(ro));
    donor_ = new DonorGenome(PlantVariants(*ref_, VariantPlanterOptions{}));
    ReadSimulatorOptions so;
    so.coverage = 20.0;
    sample_ = new SimulatedSample(SimulateReads(*donor_, so));
    index_ = new GenomeIndex(*ref_);

    interleaved_ = new std::vector<FastqRecord>(
        InterleavePairs(sample_->mate1, sample_->mate2).ValueOrDie());

    serial_ = new SerialStageOutputs(
        RunSerialPipeline(*ref_, *index_, *interleaved_).ValueOrDie());

    DfsOptions dopt;
    dopt.block_size = 256 * 1024;
    dopt.replication = 2;
    dopt.num_data_nodes = 4;
    dfs_ = new Dfs(dopt);
    PipelineConfig config;
    config.alignment_partitions = 4;
    pipeline_ = new GesallPipeline(*ref_, *index_, dfs_, config);
    ASSERT_TRUE(pipeline_->LoadSample(sample_->mate1, sample_->mate2).ok());
    auto variants = pipeline_->RunAll();
    ASSERT_TRUE(variants.ok()) << variants.status().ToString();
    parallel_variants_ =
        new std::vector<VariantRecord>(variants.MoveValueUnsafe());
  }

  static void TearDownTestSuite() {
    delete parallel_variants_;
    delete pipeline_;
    delete dfs_;
    delete serial_;
    delete interleaved_;
    delete index_;
    delete sample_;
    delete donor_;
    delete ref_;
  }

  static ReferenceGenome* ref_;
  static DonorGenome* donor_;
  static SimulatedSample* sample_;
  static GenomeIndex* index_;
  static std::vector<FastqRecord>* interleaved_;
  static SerialStageOutputs* serial_;
  static Dfs* dfs_;
  static GesallPipeline* pipeline_;
  static std::vector<VariantRecord>* parallel_variants_;
};

ReferenceGenome* PipelineIntegrationTest::ref_ = nullptr;
DonorGenome* PipelineIntegrationTest::donor_ = nullptr;
SimulatedSample* PipelineIntegrationTest::sample_ = nullptr;
GenomeIndex* PipelineIntegrationTest::index_ = nullptr;
std::vector<FastqRecord>* PipelineIntegrationTest::interleaved_ = nullptr;
SerialStageOutputs* PipelineIntegrationTest::serial_ = nullptr;
Dfs* PipelineIntegrationTest::dfs_ = nullptr;
GesallPipeline* PipelineIntegrationTest::pipeline_ = nullptr;
std::vector<VariantRecord>* PipelineIntegrationTest::parallel_variants_ =
    nullptr;

TEST_F(PipelineIntegrationTest, AllReadsSurviveEveryStage) {
  const size_t expected = interleaved_->size();
  for (const char* stage : {"aligned", "cleaned", "dedup", "sorted"}) {
    auto records = pipeline_->ReadStageRecords(stage);
    ASSERT_TRUE(records.ok()) << stage;
    EXPECT_EQ(records.ValueOrDie().size(), expected) << stage;
  }
}

TEST_F(PipelineIntegrationTest, EveryReadAppearsExactlyOnce) {
  auto records = pipeline_->ReadStageRecords("dedup").ValueOrDie();
  std::map<std::string, int> seen;
  for (const auto& r : records) {
    ++seen[r.qname + (r.IsFirstOfPair() ? "/1" : "/2")];
  }
  for (const auto& [key, count] : seen) {
    ASSERT_EQ(count, 1) << key;
  }
  EXPECT_EQ(seen.size(), interleaved_->size());
}

TEST_F(PipelineIntegrationTest, SortedStageIsCoordinateSorted) {
  // Each sorted partition holds one chromosome in coordinate order.
  std::vector<std::string> paths;
  for (auto& p : dfs_->List("/gesall/sorted/")) {
    if (p.size() > 4 && p.compare(p.size() - 4, 4, ".bam") == 0) {
      paths.push_back(std::move(p));
    }
  }
  ASSERT_GE(paths.size(), 2u);
  for (const auto& path : paths) {
    auto bam = dfs_->Read(path).ValueOrDie();
    auto [header, records] = ReadBam(bam).ValueOrDie();
    EXPECT_EQ(header.sort_order, "coordinate");
    std::set<int32_t> chroms;
    for (size_t i = 1; i < records.size(); ++i) {
      if (records[i].IsUnmapped()) continue;
      chroms.insert(records[i].ref_id);
      if (!records[i - 1].IsUnmapped()) {
        EXPECT_LE(records[i - 1].pos, records[i].pos) << path;
      }
    }
    EXPECT_LE(chroms.size(), 1u) << path;  // range partitioning by chrom
  }
}

TEST_F(PipelineIntegrationTest, DuplicateFlagsMatchSerialClosely) {
  // Parallel MarkDuplicates on (slightly different) parallel alignments:
  // duplicate counts should be close to serial; flags on identically
  // aligned reads must agree except where upstream alignment differs.
  auto parallel = pipeline_->ReadStageRecords("dedup").ValueOrDie();
  auto disc = CompareDuplicates(serial_->deduped, parallel);
  EXPECT_GT(disc.duplicates_serial, 0);
  EXPECT_GT(disc.duplicates_parallel, 0);
  // Number-of-duplicates delta small (paper: 259 out of 2.5 B reads).
  EXPECT_LT(disc.duplicate_count_delta(),
            disc.duplicates_serial / 10 + 20);
}

TEST_F(PipelineIntegrationTest, ParallelMarkDupEqualsSerialOnSameInput) {
  // The §4.5.2 property: feeding the SERIAL alignment output through the
  // parallel MarkDuplicates rounds yields byte-identical duplicate flags.
  DfsOptions dopt;
  dopt.block_size = 256 * 1024;
  dopt.num_data_nodes = 4;
  Dfs dfs(dopt);
  PipelineConfig config;
  config.alignment_partitions = 4;
  GesallPipeline pipe(*ref_, *index_, &dfs, config);

  // Inject the serial cleaned records as "cleaned" partitions (grouped by
  // read name, split at pair boundaries).
  std::vector<SamRecord> cleaned = serial_->cleaned;
  const int P = 3;
  size_t pairs = cleaned.size() / 2;
  LogicalPartitionPlacementPolicy policy;
  for (int p = 0; p < P; ++p) {
    size_t begin = 2 * (pairs * p / P), end = 2 * (pairs * (p + 1) / P);
    std::vector<SamRecord> part(cleaned.begin() + begin,
                                cleaned.begin() + end);
    auto bam = WriteBam(serial_->header, part).ValueOrDie();
    char name[64];
    std::snprintf(name, sizeof(name), "/gesall/cleaned/part-%05d.bam", p);
    ASSERT_TRUE(dfs.Write(name, bam, &policy).ok());
  }
  ASSERT_TRUE(pipe.RunRound3MarkDuplicates().ok());
  auto parallel = pipe.ReadStageRecords("dedup").ValueOrDie();

  auto disc = CompareDuplicates(serial_->deduped, parallel);
  EXPECT_EQ(disc.d_count, 0);
  EXPECT_EQ(disc.duplicates_serial, disc.duplicates_parallel);
}

TEST_F(PipelineIntegrationTest, BloomAndRegularMarkDupAgree) {
  // MarkDup_opt is an optimization only: identical output to MarkDup_reg.
  auto run_markdup = [&](bool use_bloom) {
    DfsOptions dopt;
    dopt.block_size = 256 * 1024;
    dopt.num_data_nodes = 4;
    auto dfs = std::make_unique<Dfs>(dopt);
    PipelineConfig config;
    config.markdup_use_bloom = use_bloom;
    GesallPipeline pipe(*ref_, *index_, dfs.get(), config);
    std::vector<SamRecord> cleaned = serial_->cleaned;
    auto bam = WriteBam(serial_->header, cleaned).ValueOrDie();
    LogicalPartitionPlacementPolicy policy;
    EXPECT_TRUE(
        dfs->Write("/gesall/cleaned/part-00000.bam", bam, &policy).ok());
    EXPECT_TRUE(pipe.RunRound3MarkDuplicates().ok());
    auto records = pipe.ReadStageRecords("dedup").ValueOrDie();
    std::map<std::string, bool> flags;
    for (const auto& r : records) {
      flags[r.qname + (r.IsFirstOfPair() ? "/1" : "/2")] = r.IsDuplicate();
    }
    return flags;
  };
  EXPECT_EQ(run_markdup(true), run_markdup(false));
}

TEST_F(PipelineIntegrationTest, BloomReducesShuffledRecords) {
  // The MarkDup_opt motivation (paper: 1.03x vs 1.92x input records).
  auto shuffle_count = [&](bool use_bloom) {
    DfsOptions dopt;
    dopt.num_data_nodes = 4;
    auto dfs = std::make_unique<Dfs>(dopt);
    PipelineConfig config;
    config.markdup_use_bloom = use_bloom;
    GesallPipeline pipe(*ref_, *index_, dfs.get(), config);
    auto bam = WriteBam(serial_->header, serial_->cleaned).ValueOrDie();
    LogicalPartitionPlacementPolicy policy;
    EXPECT_TRUE(
        dfs->Write("/gesall/cleaned/part-00000.bam", bam, &policy).ok());
    EXPECT_TRUE(pipe.RunRound3MarkDuplicates().ok());
    for (const auto& s : pipe.stats()) {
      if (s.name.rfind("round3_markdup", 0) == 0) {
        return s.counters.Get("reduce_shuffle_records");
      }
    }
    return int64_t{-1};
  };
  int64_t with_bloom = shuffle_count(true);
  int64_t without_bloom = shuffle_count(false);
  ASSERT_GT(with_bloom, 0);
  // reg shuffles ~1.9x input; opt close to ~1.0x.
  EXPECT_LT(with_bloom, without_bloom * 0.75);
}

TEST_F(PipelineIntegrationTest, VariantsCloseToSerial) {
  auto disc = CompareVariants(serial_->variants, *parallel_variants_);
  ASSERT_GT(serial_->variants.size(), 50u);
  ASSERT_GT(parallel_variants_->size(), 50u);
  // Paper: ~0.1% discordant impact; allow a loose bound at small scale.
  double frac = disc.d_count() /
                static_cast<double>(disc.concordant.size() + 1);
  EXPECT_LT(frac, 0.05);
}

TEST_F(PipelineIntegrationTest, ParallelRecoversPlantedTruth) {
  auto ps = EvaluateAgainstTruth(*parallel_variants_, donor_->truth);
  EXPECT_GT(ps.precision, 0.85);
  EXPECT_GT(ps.sensitivity, 0.55);
}

TEST_F(PipelineIntegrationTest, SerialAndParallelTruthScoresComparable) {
  // App. B.3: serial vs hybrid precision/sensitivity nearly identical.
  auto serial_ps = EvaluateAgainstTruth(serial_->variants, donor_->truth);
  auto parallel_ps =
      EvaluateAgainstTruth(*parallel_variants_, donor_->truth);
  EXPECT_NEAR(serial_ps.precision, parallel_ps.precision, 0.02);
  EXPECT_NEAR(serial_ps.sensitivity, parallel_ps.sensitivity, 0.02);
}

TEST_F(PipelineIntegrationTest, StatsRecordedPerRound) {
  const auto& stats = pipeline_->stats();
  ASSERT_GE(stats.size(), 5u);
  std::set<std::string> names;
  for (const auto& s : stats) names.insert(s.name);
  EXPECT_TRUE(names.count("round1_alignment"));
  EXPECT_TRUE(names.count("round2_cleaning"));
  EXPECT_TRUE(names.count("round3_markdup_opt"));
  EXPECT_TRUE(names.count("round4_sort"));
  EXPECT_TRUE(names.count("round5_haplotype_caller"));
  for (const auto& s : stats) {
    if (s.name == "round3_bloom_preround") continue;
    EXPECT_GT(s.wall_seconds, 0.0) << s.name;
  }
}

TEST_F(PipelineIntegrationTest, TransformTimeAccounted) {
  // Fig 6(a): the data-transformation counter must be populated and be a
  // nontrivial share of transform+program time in shuffling rounds.
  for (const auto& s : pipeline_->stats()) {
    if (s.name != "round2_cleaning") continue;
    int64_t transform = s.counters.Get("transform_micros");
    int64_t program = s.counters.Get("program_micros");
    EXPECT_GT(transform, 0);
    EXPECT_GT(program, 0);
  }
}

TEST_F(PipelineIntegrationTest, OverlappingHcPartitioningWorks) {
  // Re-run round 5 with fine-grained overlapping segments; results must
  // stay close to chromosome-level partitioning.
  DfsOptions dopt;
  dopt.num_data_nodes = 4;
  Dfs dfs(dopt);
  PipelineConfig config;
  config.hc_partitioning = PipelineConfig::HcPartitioning::kOverlappingSegments;
  config.hc_segments_per_chromosome = 3;
  GesallPipeline pipe(*ref_, *index_, &dfs, config);
  // Inject the sorted partitions from the main pipeline's DFS.
  for (const auto& path : dfs_->List("/gesall/sorted/")) {
    auto bytes = dfs_->Read(path).ValueOrDie();
    ASSERT_TRUE(dfs.Write(path, bytes).ok());
  }
  auto variants = pipe.RunRound5VariantCalling();
  ASSERT_TRUE(variants.ok()) << variants.status().ToString();
  auto disc = CompareVariants(*parallel_variants_, variants.ValueOrDie());
  double frac = disc.d_count() /
                static_cast<double>(disc.concordant.size() + 1);
  EXPECT_LT(frac, 0.05);
}

}  // namespace
}  // namespace gesall

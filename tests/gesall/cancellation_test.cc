// Job cancellation: a run cancelled mid-flight must stop scheduling new
// work, surface Status::Cancelled with the cancellation cause, leave no
// partial DFS stage outputs visible, and keep dependency bookkeeping
// consistent (unrun RoundDag nodes stay ran == false).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gesall/pipeline.h"
#include "gesall/round_dag.h"
#include "genome/read_simulator.h"
#include "genome/reference_generator.h"
#include "mr/mapreduce.h"
#include "util/cancel.h"

namespace gesall {
namespace {

TEST(CancelTokenTest, FirstCauseWinsAndCallbacksFireOnce) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_TRUE(token.status().ok());
  int fired = 0;
  token.OnCancel([&] { fired++; });
  token.Cancel("first cause");
  token.Cancel("second cause");
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.cause(), "first cause");
  EXPECT_TRUE(token.status().IsCancelled());
  EXPECT_NE(token.status().ToString().find("first cause"), std::string::npos);
  EXPECT_EQ(fired, 1);
  // Late registration runs inline.
  token.OnCancel([&] { fired++; });
  EXPECT_EQ(fired, 2);
}

TEST(RoundDagCancelTest, PreCancelledRunsNothing) {
  Executor executor(2);
  RoundDag dag;
  std::atomic<int> ran{0};
  int a = dag.AddTask("a", [&] {
    ran++;
    return Status::OK();
  });
  int b = dag.AddTask("b", [&] {
    ran++;
    return Status::OK();
  });
  dag.AddDep(a, b);
  auto cancel = std::make_shared<CancelToken>();
  cancel->Cancel("cancelled before start");
  Status s = dag.Run(&executor, cancel);
  EXPECT_TRUE(s.IsCancelled()) << s.ToString();
  EXPECT_NE(s.ToString().find("cancelled before start"), std::string::npos);
  EXPECT_EQ(ran.load(), 0);
  for (const auto& node : dag.nodes()) EXPECT_FALSE(node.ran);
}

TEST(RoundDagCancelTest, MidRunCancelSkipsDependents) {
  Executor executor(2);
  RoundDag dag;
  auto cancel = std::make_shared<CancelToken>();
  std::atomic<int> downstream_ran{0};
  // The first node cancels the run from inside its own body; its
  // dependent must never start, and the run must report the cause.
  int head = dag.AddTask("head", [&] {
    cancel->Cancel("operator abort");
    return Status::OK();
  });
  int tail = dag.AddTask("tail", [&] {
    downstream_ran++;
    return Status::OK();
  });
  dag.AddDep(head, tail);
  Status s = dag.Run(&executor, cancel);
  EXPECT_TRUE(s.IsCancelled()) << s.ToString();
  EXPECT_NE(s.ToString().find("operator abort"), std::string::npos);
  EXPECT_EQ(downstream_ran.load(), 0);
  EXPECT_TRUE(dag.nodes()[head].ran);
  EXPECT_FALSE(dag.nodes()[tail].ran);
}

TEST(RoundDagCancelTest, NodeErrorBeatsLaterCancel) {
  Executor executor(1);
  RoundDag dag;
  auto cancel = std::make_shared<CancelToken>();
  dag.AddTask("boom", [&] {
    Status failure = Status::IOError("disk on fire");
    cancel->Cancel("too late");
    return failure;
  });
  Status s = dag.Run(&executor, cancel);
  // The node failure latched first; cancellation must not mask it.
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
}

// A mapper that flips the shared token while the job is in flight: every
// split after the first must fail fast with the cancellation status.
class CancellingMapper : public Mapper {
 public:
  explicit CancellingMapper(std::shared_ptr<CancelToken> token)
      : token_(std::move(token)) {}
  Status Map(const std::string& input, MapContext* ctx) override {
    ctx->Emit("k", input);
    token_->Cancel("mapper pulled the plug");
    return Status::OK();
  }

 private:
  std::shared_ptr<CancelToken> token_;
};

class IdentityReducer : public Reducer {
 public:
  Status Reduce(const std::string& key,
                const std::vector<std::string>& values,
                ReduceContext* ctx) override {
    for (const auto& v : values) ctx->Emit(v);
    return Status::OK();
  }
};

TEST(MapReduceCancelTest, CancelledJobReturnsTheCause) {
  auto token = std::make_shared<CancelToken>();
  JobConfig cfg;
  cfg.num_reducers = 2;
  cfg.max_parallel_tasks = 1;  // deterministic: split 0 cancels split 1+
  cfg.max_task_attempts = 4;
  // Even with skip_bad_records, a cancelled task must never be isolated
  // as a poison split (that would let the job "succeed" truncated).
  cfg.skip_bad_records = true;
  cfg.cancel = token;
  std::vector<InputSplit> splits;
  for (const char* s : {"s0", "s1", "s2", "s3"}) {
    splits.push_back(InlineSplit(s));
  }
  MapReduceJob job(cfg);
  auto result = job.Run(
      splits, [token] { return std::make_unique<CancellingMapper>(token); },
      [] { return std::make_unique<IdentityReducer>(); });
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  EXPECT_NE(result.status().ToString().find("mapper pulled the plug"),
            std::string::npos);
}

class PipelineCancelTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    ReferenceGeneratorOptions ro;
    ro.num_chromosomes = 1;
    ro.chromosome_length = 25'000;
    ref_ = new ReferenceGenome(GenerateReference(ro));
    donor_ = new DonorGenome(PlantVariants(*ref_, VariantPlanterOptions{}));
    ReadSimulatorOptions so;
    so.coverage = 6.0;
    sample_ = new SimulatedSample(SimulateReads(*donor_, so));
    index_ = new GenomeIndex(*ref_);
  }

  static void TearDownTestSuite() {
    delete index_;
    delete sample_;
    delete donor_;
    delete ref_;
  }

  static DfsOptions MakeDfsOptions() {
    DfsOptions dopt;
    dopt.block_size = 64 * 1024;
    dopt.replication = 2;
    dopt.num_data_nodes = 4;
    return dopt;
  }

  static ReferenceGenome* ref_;
  static DonorGenome* donor_;
  static SimulatedSample* sample_;
  static GenomeIndex* index_;
};

ReferenceGenome* PipelineCancelTest::ref_ = nullptr;
DonorGenome* PipelineCancelTest::donor_ = nullptr;
SimulatedSample* PipelineCancelTest::sample_ = nullptr;
GenomeIndex* PipelineCancelTest::index_ = nullptr;

TEST_F(PipelineCancelTest, CancelledRunAllRemovesPartialStageOutputs) {
  Dfs dfs(MakeDfsOptions());
  PipelineConfig config;
  config.alignment_partitions = 2;
  auto token = std::make_shared<CancelToken>();
  config.cancel = token;
  GesallPipeline pipeline(*ref_, *index_, &dfs, config);
  ASSERT_TRUE(pipeline.LoadSample(sample_->mate1, sample_->mate2).ok());

  // Produce real round-1 output, then cancel: the next RunAll must fail
  // fast AND scrub the stale aligned partitions so no partial stage
  // output stays visible.
  ASSERT_TRUE(pipeline.RunRound1Alignment().ok());
  ASSERT_FALSE(dfs.List("/gesall/aligned/").empty());
  token->Cancel("tenant deleted the job");
  auto result = pipeline.RunAll();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  EXPECT_NE(result.status().ToString().find("tenant deleted the job"),
            std::string::npos);
  EXPECT_TRUE(dfs.List("/gesall/aligned/").empty());
  EXPECT_TRUE(dfs.List("/gesall/sorted/").empty());
  auto stage = pipeline.ReadStageRecords("aligned");
  EXPECT_FALSE(stage.ok());
  // The loaded input partitions survive: a re-submitted job can reuse
  // them.
  EXPECT_FALSE(dfs.List("/gesall/input/").empty());
}

TEST_F(PipelineCancelTest, AsyncCancelMidRunUnwindsCooperatively) {
  Dfs dfs(MakeDfsOptions());
  PipelineConfig config;
  config.alignment_partitions = 2;
  auto token = std::make_shared<CancelToken>();
  config.cancel = token;
  GesallPipeline pipeline(*ref_, *index_, &dfs, config);
  ASSERT_TRUE(pipeline.LoadSample(sample_->mate1, sample_->mate2).ok());

  std::thread canceller([&] {
    // Flip the token the moment round-1 output becomes visible — with
    // four more rounds ahead, the run is guaranteed to be mid-flight.
    while (dfs.List("/gesall/aligned/").empty()) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    token->Cancel("async abort");
  });
  auto result = pipeline.RunAll();
  canceller.join();
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCancelled()) << result.status().ToString();
  EXPECT_NE(result.status().ToString().find("async abort"),
            std::string::npos);
  // No partial stage output visible anywhere.
  for (const char* stage : {"aligned", "cleaned", "dedup", "sorted"}) {
    EXPECT_TRUE(dfs.List(std::string("/gesall/") + stage + "/").empty())
        << stage;
  }
}

}  // namespace
}  // namespace gesall

// Tests for the optional pipeline features: parallel Base Recalibration
// rounds, the Unified Genotyper round-5 alternative, and the Round-4
// linear index sidecars.

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "analysis/recalibration.h"
#include "formats/bam.h"
#include "gesall/diagnosis.h"
#include "gesall/linear_index.h"
#include "gesall/pipeline.h"
#include "genome/read_simulator.h"
#include "genome/reference_generator.h"

namespace gesall {
namespace {

class PipelineExtensionsTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    ReferenceGeneratorOptions ro;
    ro.num_chromosomes = 2;
    ro.chromosome_length = 80'000;
    ref_ = new ReferenceGenome(GenerateReference(ro));
    donor_ = new DonorGenome(PlantVariants(*ref_, VariantPlanterOptions{}));
    ReadSimulatorOptions so;
    so.coverage = 15.0;
    sample_ = new SimulatedSample(SimulateReads(*donor_, so));
    index_ = new GenomeIndex(*ref_);
  }
  static void TearDownTestSuite() {
    delete index_;
    delete sample_;
    delete donor_;
    delete ref_;
  }

  static std::unique_ptr<GesallPipeline> MakePipeline(Dfs* dfs,
                                                      PipelineConfig cfg) {
    auto p = std::make_unique<GesallPipeline>(*ref_, *index_, dfs, cfg);
    EXPECT_TRUE(p->LoadSample(sample_->mate1, sample_->mate2).ok());
    return p;
  }

  static ReferenceGenome* ref_;
  static DonorGenome* donor_;
  static SimulatedSample* sample_;
  static GenomeIndex* index_;
};

ReferenceGenome* PipelineExtensionsTest::ref_ = nullptr;
DonorGenome* PipelineExtensionsTest::donor_ = nullptr;
SimulatedSample* PipelineExtensionsTest::sample_ = nullptr;
GenomeIndex* PipelineExtensionsTest::index_ = nullptr;

TEST_F(PipelineExtensionsTest, RecalibrationRoundsRewriteQualities) {
  DfsOptions dopt;
  dopt.block_size = 256 * 1024;
  Dfs dfs(dopt);
  PipelineConfig cfg;
  cfg.run_recalibration = true;
  auto pipe = MakePipeline(&dfs, cfg);
  auto variants = pipe->RunAll();
  ASSERT_TRUE(variants.ok()) << variants.status().ToString();

  // The recal stage exists and qualities changed from the dedup stage.
  auto dedup = pipe->ReadStageRecords("dedup").ValueOrDie();
  auto recal = pipe->ReadStageRecords("recal").ValueOrDie();
  ASSERT_EQ(dedup.size(), recal.size());
  int64_t changed = 0;
  std::map<std::string, const SamRecord*> dedup_by_key;
  for (const auto& r : dedup) {
    dedup_by_key[r.qname + (r.IsFirstOfPair() ? "/1" : "/2")] = &r;
  }
  for (const auto& r : recal) {
    auto it = dedup_by_key.find(r.qname + (r.IsFirstOfPair() ? "/1" : "/2"));
    ASSERT_NE(it, dedup_by_key.end());
    if (r.qual != it->second->qual) ++changed;
  }
  EXPECT_GT(changed, static_cast<int64_t>(recal.size() / 2));

  // Stats contain the two extra rounds.
  std::set<std::string> names;
  for (const auto& s : pipe->stats()) names.insert(s.name);
  EXPECT_TRUE(names.count("round3.5_base_recalibrator"));
  EXPECT_TRUE(names.count("round3.5_print_reads"));
}

TEST_F(PipelineExtensionsTest, ParallelRecalMatchesSerialRecal) {
  // The merged per-partition tables must equal the serial whole-input
  // table, so the rewritten qualities agree with the serial pipeline's.
  DfsOptions dopt;
  dopt.block_size = 256 * 1024;
  Dfs dfs(dopt);
  PipelineConfig cfg;
  cfg.run_recalibration = true;
  auto pipe = MakePipeline(&dfs, cfg);
  ASSERT_TRUE(pipe->RunRound1Alignment().ok());
  ASSERT_TRUE(pipe->RunRound2Cleaning().ok());
  ASSERT_TRUE(pipe->RunRound3MarkDuplicates().ok());
  ASSERT_TRUE(pipe->RunRecalibrationRounds().ok());

  // Serial recalibration over the SAME (parallel) dedup records.
  auto dedup = pipe->ReadStageRecords("dedup").ValueOrDie();
  RecalibrationTable serial_table = BaseRecalibrator(*ref_, dedup);
  std::vector<SamRecord> serial_applied = dedup;
  PrintReads(serial_table, &serial_applied);

  auto recal = pipe->ReadStageRecords("recal").ValueOrDie();
  std::map<std::string, std::string> parallel_quals;
  for (const auto& r : recal) {
    parallel_quals[r.qname + (r.IsFirstOfPair() ? "/1" : "/2")] = r.qual;
  }
  int64_t mismatches = 0;
  for (const auto& r : serial_applied) {
    auto it =
        parallel_quals.find(r.qname + (r.IsFirstOfPair() ? "/1" : "/2"));
    ASSERT_NE(it, parallel_quals.end());
    if (it->second != r.qual) ++mismatches;
  }
  EXPECT_EQ(mismatches, 0);
}

TEST_F(PipelineExtensionsTest, UnifiedGenotyperRoundWorks) {
  DfsOptions dopt;
  dopt.block_size = 256 * 1024;
  Dfs dfs(dopt);
  PipelineConfig cfg;
  cfg.variant_caller = PipelineConfig::VariantCaller::kUnifiedGenotyper;
  auto pipe = MakePipeline(&dfs, cfg);
  auto variants = pipe->RunAll();
  ASSERT_TRUE(variants.ok()) << variants.status().ToString();
  ASSERT_GT(variants.ValueOrDie().size(), 20u);

  auto ps = EvaluateAgainstTruth(variants.ValueOrDie(), donor_->truth);
  EXPECT_GT(ps.precision, 0.8);
  EXPECT_GT(ps.sensitivity, 0.5);

  bool saw_ug_round = false;
  for (const auto& s : pipe->stats()) {
    saw_ug_round |= s.name == "round5_unified_genotyper";
  }
  EXPECT_TRUE(saw_ug_round);
}

TEST_F(PipelineExtensionsTest, Round4WritesIndexSidecars) {
  DfsOptions dopt;
  dopt.block_size = 256 * 1024;
  Dfs dfs(dopt);
  auto pipe = MakePipeline(&dfs, PipelineConfig{});
  ASSERT_TRUE(pipe->RunRound1Alignment().ok());
  ASSERT_TRUE(pipe->RunRound2Cleaning().ok());
  ASSERT_TRUE(pipe->RunRound3MarkDuplicates().ok());
  ASSERT_TRUE(pipe->RunRound4Sort().ok());

  int indexes = 0;
  for (const auto& path : dfs.List("/gesall/sorted/")) {
    if (path.size() > 4 &&
        path.compare(path.size() - 4, 4, ".bai") == 0) {
      ++indexes;
      auto raw = dfs.Read(path).ValueOrDie();
      auto idx = LinearBamIndex::Deserialize(raw);
      ASSERT_TRUE(idx.ok());
      // Index agrees with its BAM partition.
      std::string bam_path = path.substr(0, path.size() - 4) + ".bam";
      auto bam = dfs.Read(bam_path).ValueOrDie();
      auto [h, records] = ReadBam(bam).ValueOrDie();
      EXPECT_EQ(idx.ValueOrDie().record_count(),
                static_cast<int64_t>(records.size()));
    }
  }
  EXPECT_GE(indexes, 2);
}

TEST_F(PipelineExtensionsTest, NodeFailureBetweenRoundsTolerated) {
  // DFS replication must carry the pipeline through a data-node loss
  // between rounds: reads fall back to surviving replicas.
  DfsOptions dopt;
  dopt.block_size = 256 * 1024;
  dopt.replication = 2;
  dopt.num_data_nodes = 4;
  Dfs dfs(dopt);
  auto pipe = MakePipeline(&dfs, PipelineConfig{});
  ASSERT_TRUE(pipe->RunRound1Alignment().ok());
  ASSERT_TRUE(pipe->RunRound2Cleaning().ok());
  ASSERT_TRUE(dfs.MarkNodeDown(1).ok());
  ASSERT_TRUE(pipe->RunRound3MarkDuplicates().ok());
  ASSERT_TRUE(pipe->RunRound4Sort().ok());
  auto variants = pipe->RunRound5VariantCalling();
  ASSERT_TRUE(variants.ok()) << variants.status().ToString();
  EXPECT_GT(variants.ValueOrDie().size(), 20u);
}

TEST_F(PipelineExtensionsTest, OverlappingSegmentsUseIndexAndMatch) {
  // Overlapping-segment round 5 (which reads via the index) produces
  // nearly the same calls as chromosome-level partitioning.
  DfsOptions dopt;
  dopt.block_size = 256 * 1024;
  Dfs dfs(dopt);
  auto pipe = MakePipeline(&dfs, PipelineConfig{});
  auto chrom_variants = pipe->RunAll();
  ASSERT_TRUE(chrom_variants.ok());

  PipelineConfig seg_cfg;
  seg_cfg.hc_partitioning =
      PipelineConfig::HcPartitioning::kOverlappingSegments;
  seg_cfg.hc_segments_per_chromosome = 3;
  GesallPipeline seg_pipe(*ref_, *index_, &dfs, seg_cfg);
  auto seg_variants = seg_pipe.RunRound5VariantCalling();
  ASSERT_TRUE(seg_variants.ok()) << seg_variants.status().ToString();

  auto disc = CompareVariants(chrom_variants.ValueOrDie(),
                              seg_variants.ValueOrDie());
  EXPECT_LT(disc.d_count(),
            static_cast<int64_t>(disc.concordant.size()) / 10 + 5);
}

TEST_F(PipelineExtensionsTest, CombinerRoundsPreserveOutputExactly) {
  // The Round-2 FixMate combiner and Round-3 representative-dedup
  // combiner are output-preserving: with a sort buffer small enough to
  // force spill-level combining, every stage's records and the final
  // variant calls must be byte-identical to a combiner-off run.
  auto run = [&](bool use_combiners) {
    DfsOptions dopt;
    dopt.block_size = 256 * 1024;
    auto dfs = std::make_unique<Dfs>(dopt);
    PipelineConfig cfg;
    cfg.use_combiners = use_combiners;
    cfg.sort_buffer_bytes = 64 << 10;  // spill-heavy
    auto pipe = MakePipeline(dfs.get(), cfg);
    auto variants = pipe->RunAll();
    EXPECT_TRUE(variants.ok()) << variants.status().ToString();
    return std::make_tuple(std::move(dfs), std::move(pipe),
                           variants.ValueOrDie());
  };
  auto [dfs_on, pipe_on, variants_on] = run(true);
  auto [dfs_off, pipe_off, variants_off] = run(false);

  EXPECT_EQ(variants_on, variants_off);
  for (const char* stage : {"cleaned", "dedup", "sorted"}) {
    EXPECT_EQ(pipe_on->ReadStageRecords(stage).ValueOrDie(),
              pipe_off->ReadStageRecords(stage).ValueOrDie())
        << "stage=" << stage;
  }

  // The combiners actually engaged in rounds 2 and 3.
  int64_t combine_inputs = 0;
  for (const auto& s : pipe_on->stats()) {
    combine_inputs += s.counters.Get("combine_input_records");
  }
  EXPECT_GT(combine_inputs, 0);
  for (const auto& s : pipe_off->stats()) {
    EXPECT_EQ(s.counters.Get("combine_input_records"), 0) << s.name;
  }
}

TEST_F(PipelineExtensionsTest, CompressedDataPathPreservesOutputExactly) {
  // Turning on the whole compression-aware data path — BGZF DFS parts
  // plus compressed shuffle spills with a spill-heavy sort buffer — must
  // leave every stage's records and the final variant calls byte-identical
  // to a plain run, while the storage summary shows real disk savings.
  auto run = [&](bool compressed) {
    DfsOptions dopt;
    dopt.block_size = 256 * 1024;
    dopt.compress_parts = compressed;
    auto dfs = std::make_unique<Dfs>(dopt);
    PipelineConfig cfg;
    cfg.compress_shuffle = compressed;
    cfg.sort_buffer_bytes = 64 << 10;  // spill-heavy
    auto pipe = MakePipeline(dfs.get(), cfg);
    auto variants = pipe->RunAll();
    EXPECT_TRUE(variants.ok()) << variants.status().ToString();
    return std::make_tuple(std::move(dfs), std::move(pipe),
                           variants.ValueOrDie());
  };
  auto [dfs_on, pipe_on, variants_on] = run(true);
  auto [dfs_off, pipe_off, variants_off] = run(false);

  EXPECT_EQ(variants_on, variants_off);
  for (const char* stage : {"aligned", "cleaned", "dedup", "sorted"}) {
    EXPECT_EQ(pipe_on->ReadStageRecords(stage).ValueOrDie(),
              pipe_off->ReadStageRecords(stage).ValueOrDie())
        << "stage=" << stage;
  }

  // Both legs of the data path compressed and were accounted for.
  StorageSummary on = pipe_on->SummarizeStorage();
  EXPECT_TRUE(on.any_compression_active());
  EXPECT_GT(on.shuffle_bytes_raw, 0);
  EXPECT_GT(on.shuffle_bytes_compressed, 0);
  EXPECT_LT(on.shuffle_bytes_compressed, on.shuffle_bytes_raw);
  EXPECT_GT(on.dfs_bytes_raw, 0);
  EXPECT_LT(on.dfs_bytes_compressed, on.dfs_bytes_raw);
  EXPECT_GT(on.shuffle_ratio(), 1.0);
  EXPECT_GT(on.dfs_ratio(), 1.0);
  EXPECT_GT(on.shuffle_compress_micros + on.shuffle_decompress_micros, 0);

  StorageSummary off = pipe_off->SummarizeStorage();
  EXPECT_FALSE(off.any_compression_active());
  EXPECT_EQ(off.shuffle_bytes_compressed, 0);
  EXPECT_EQ(off.dfs_bytes_raw, off.dfs_bytes_compressed);
}

}  // namespace
}  // namespace gesall

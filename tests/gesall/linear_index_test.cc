#include "gesall/linear_index.h"

#include <gtest/gtest.h>

#include <set>

#include "formats/bam.h"
#include "util/rng.h"

namespace gesall {
namespace {

SamHeader TestHeader() {
  SamHeader h;
  h.refs = {{"chr1", 1'000'000}};
  h.sort_order = "coordinate";
  return h;
}

// Coordinate-sorted records over [0, span) with random gaps.
std::vector<SamRecord> SortedRecords(int n, int64_t span, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> positions;
  for (int i = 0; i < n; ++i) {
    positions.push_back(static_cast<int64_t>(
        rng.Uniform(static_cast<uint64_t>(span - 200))));
  }
  std::sort(positions.begin(), positions.end());
  std::vector<SamRecord> records;
  for (int i = 0; i < n; ++i) {
    SamRecord r;
    r.qname = "r" + std::to_string(i);
    r.ref_id = 0;
    r.pos = positions[i];
    r.mapq = 60;
    r.cigar = {{'M', 100}};
    r.seq.resize(100);
    for (auto& c : r.seq) c = "ACGT"[rng.Uniform(4)];
    r.qual.resize(100);
    for (auto& c : r.qual) c = static_cast<char>(33 + rng.Uniform(40));
    records.push_back(std::move(r));
  }
  return records;
}

class LinearIndexTest : public testing::Test {
 protected:
  void SetUp() override {
    header_ = TestHeader();
    records_ = SortedRecords(4000, 900'000, 3);
    bam_ = WriteBam(header_, records_).ValueOrDie();
    index_ = std::make_unique<LinearBamIndex>(
        LinearBamIndex::Build(bam_).ValueOrDie());
  }

  SamHeader header_;
  std::vector<SamRecord> records_;
  std::string bam_;
  std::unique_ptr<LinearBamIndex> index_;
};

TEST_F(LinearIndexTest, CountsRecords) {
  EXPECT_EQ(index_->record_count(), 4000);
  EXPECT_EQ(index_->max_span(), 100);
  EXPECT_GT(index_->window_count(), 10u);
}

TEST_F(LinearIndexTest, RegionReadReturnsExactOverlaps) {
  for (auto [start, end] : std::vector<std::pair<int64_t, int64_t>>{
           {0, 10'000}, {123'456, 234'567}, {899'000, 900'000},
           {500'000, 500'001}}) {
    auto got = ReadBamRegion(bam_, *index_, start, end).ValueOrDie();
    std::set<std::string> got_names;
    for (const auto& r : got) got_names.insert(r.qname);
    std::set<std::string> expected;
    for (const auto& r : records_) {
      if (r.pos < end && r.AlignmentEnd() > start) expected.insert(r.qname);
    }
    EXPECT_EQ(got_names, expected) << start << ".." << end;
  }
}

TEST_F(LinearIndexTest, RegionReadPrunesIo) {
  // A narrow region must not decode the whole file: the returned offsets
  // bound a small byte range.
  uint64_t lo = index_->LowerBoundOffset(400'000);
  uint64_t hi = index_->UpperBoundOffset(410'000);
  int64_t byte_span =
      static_cast<int64_t>(hi >> 16) - static_cast<int64_t>(lo >> 16);
  EXPECT_GT(byte_span, 0);
  EXPECT_LT(byte_span, static_cast<int64_t>(bam_.size()) / 4);
}

TEST_F(LinearIndexTest, SerializationRoundTrip) {
  auto restored =
      LinearBamIndex::Deserialize(index_->Serialize()).ValueOrDie();
  EXPECT_EQ(restored.record_count(), index_->record_count());
  EXPECT_EQ(restored.max_span(), index_->max_span());
  EXPECT_EQ(restored.window_count(), index_->window_count());
  auto a = ReadBamRegion(bam_, *index_, 200'000, 250'000).ValueOrDie();
  auto b = ReadBamRegion(bam_, restored, 200'000, 250'000).ValueOrDie();
  EXPECT_EQ(a.size(), b.size());
}

TEST_F(LinearIndexTest, EmptyRegion) {
  auto got = ReadBamRegion(bam_, *index_, 990'000, 1'000'000).ValueOrDie();
  EXPECT_TRUE(got.empty());
}

TEST(LinearIndexEdgeTest, EmptyBam) {
  auto bam = WriteBam(TestHeader(), {}).ValueOrDie();
  auto index = LinearBamIndex::Build(bam).ValueOrDie();
  EXPECT_EQ(index.record_count(), 0);
  auto got = ReadBamRegion(bam, index, 0, 1'000'000).ValueOrDie();
  EXPECT_TRUE(got.empty());
}

TEST(LinearIndexEdgeTest, UnmappedTailIgnored) {
  auto records = SortedRecords(100, 100'000, 5);
  SamRecord unmapped;
  unmapped.qname = "u";
  unmapped.flag = sam_flags::kUnmapped;
  unmapped.seq = std::string(100, 'A');
  unmapped.qual = std::string(100, 'I');
  records.push_back(unmapped);
  auto bam = WriteBam(TestHeader(), records).ValueOrDie();
  auto index = LinearBamIndex::Build(bam).ValueOrDie();
  EXPECT_EQ(index.record_count(), 101);
  auto got = ReadBamRegion(bam, index, 0, 1'000'000).ValueOrDie();
  EXPECT_EQ(got.size(), 100u);  // unmapped record not returned
}

}  // namespace
}  // namespace gesall

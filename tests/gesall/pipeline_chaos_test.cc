// End-to-end chaos test: the full parallel pipeline under injected task
// failures and DFS replica failures. Recovery must be invisible (same
// variants as the fault-free run, reproducible per seed) and visible only
// in the fault-tolerance telemetry of the diagnosis report.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "gesall/pipeline.h"
#include "gesall/report.h"
#include "genome/read_simulator.h"
#include "genome/reference_generator.h"
#include "util/fault_injection.h"

namespace gesall {
namespace {

constexpr uint64_t kChaosSeed = 2017;

// One chaos execution: everything the assertions need to outlive the run.
// The injector outlives the Dfs because the DFS read path keeps a pointer
// to it (ReadStageRecords still consults it after the rounds finish).
struct ChaosRun {
  std::unique_ptr<FaultInjector> injector;
  std::unique_ptr<Dfs> dfs;
  std::unique_ptr<GesallPipeline> pipeline;
  std::vector<VariantRecord> variants;
  FaultToleranceSummary summary;
  NodeFailureSummary node_summary;
};

std::vector<std::string> VariantKeys(const std::vector<VariantRecord>& vs) {
  std::vector<std::string> keys;
  keys.reserve(vs.size());
  for (const auto& v : vs) {
    std::ostringstream os;
    os << v.Key() << "@" << v.qual;
    keys.push_back(os.str());
  }
  return keys;
}

std::string SummaryToString(const FaultToleranceSummary& s) {
  std::ostringstream os;
  os << "map_retries=" << s.map_task_retries
     << " reduce_retries=" << s.reduce_task_retries
     << " spec_launches=" << s.speculative_launches
     << " spec_wins=" << s.speculative_wins
     << " skipped=" << s.map_splits_skipped
     << " failed_over=" << s.blocks_failed_over
     << " replica_failures=" << s.replica_read_failures
     << " blacklisted=" << s.nodes_blacklisted;
  return os.str();
}

std::string NodeSummaryToString(const NodeFailureSummary& s) {
  std::ostringstream os;
  os << "corruptions=" << s.corruptions_detected
     << " quarantined=" << s.replicas_quarantined
     << " re_replicated=" << s.blocks_re_replicated
     << " dead=" << s.nodes_declared_dead
     << " restarts=" << s.node_restarts
     << " reexecuted=" << s.map_tasks_reexecuted
     << " lost_to_dead=" << s.map_outputs_lost_to_dead_nodes
     << " fetch_corruptions=" << s.shuffle_fetch_corruptions;
  return os.str();
}

class PipelineChaosTest : public testing::Test {
 protected:
  static DfsOptions MakeDfsOptions() {
    DfsOptions dopt;
    dopt.block_size = 64 * 1024;
    dopt.replication = 2;
    dopt.num_data_nodes = 4;
    // Keep every node usable for the whole run: blacklisting under a
    // sustained every-first-replica fault pattern would otherwise depend
    // on read order (it has its own unit tests in dfs_failover_test).
    dopt.blacklist_threshold = 1 << 20;
    return dopt;
  }

  static PipelineConfig MakePipelineConfig() {
    PipelineConfig config;
    config.alignment_partitions = 3;
    // Single-threaded execution keeps the DFS health-state evolution (and
    // with it every counter) a pure function of the fault seed.
    config.max_parallel_tasks = 1;
    return config;
  }

  static ChaosRun RunUnderChaos(uint64_t seed) {
    ChaosRun run;
    run.injector = std::make_unique<FaultInjector>(seed);
    EXPECT_TRUE(run.injector->ArmProbability(kFaultMapAttempt, 0.2).ok());
    EXPECT_TRUE(run.injector->ArmProbability(kFaultReduceAttempt, 0.2).ok());
    EXPECT_TRUE(
        run.injector->ArmFirstAttempts(kFaultDfsReadReplica, 1).ok());

    run.dfs = std::make_unique<Dfs>(MakeDfsOptions());
    PipelineConfig config = MakePipelineConfig();
    config.fault_injector = run.injector.get();
    config.max_task_attempts = 6;
    run.pipeline = std::make_unique<GesallPipeline>(*ref_, *index_,
                                                    run.dfs.get(), config);
    EXPECT_TRUE(
        run.pipeline->LoadSample(sample_->mate1, sample_->mate2).ok());
    auto variants = run.pipeline->RunAll();
    EXPECT_TRUE(variants.ok()) << variants.status().ToString();
    if (variants.ok()) run.variants = variants.MoveValueUnsafe();
    run.summary = run.pipeline->SummarizeFaultTolerance();
    return run;
  }

  // The node-chaos acceptance run: one replica of EVERY block corrupted
  // AND one node crashed mid-job (after round 1, via the heartbeat
  // clock). Replication 3 so a block whose first-placed replica rots and
  // whose second sits on the crashed node still has a healthy copy.
  static ChaosRun RunUnderNodeChaos(uint64_t seed) {
    ChaosRun run;
    run.injector = std::make_unique<FaultInjector>(seed);
    EXPECT_TRUE(
        run.injector->ArmFirstAttempts(kFaultDfsBlockCorrupt, 1).ok());
    // Crash the node that round 2's first split prefers: its map outputs
    // are lost at reduce fetch, forcing lost-map-output re-execution,
    // and its DFS replicas are dropped and re-replicated when the
    // heartbeat clock declares it dead at the end of round 1.
    const int crash_node = LogicalPartitionPlacementPolicy::PrimaryNodeFor(
        "/gesall/aligned/part-00000.bam", 4);
    run.injector->ArmSchedule(kFaultNodeCrash, crash_node, {0});

    DfsOptions dopt = MakeDfsOptions();
    dopt.replication = 3;
    dopt.heartbeat_miss_threshold = 1;
    run.dfs = std::make_unique<Dfs>(dopt);
    PipelineConfig config = MakePipelineConfig();
    config.fault_injector = run.injector.get();
    run.pipeline = std::make_unique<GesallPipeline>(*ref_, *index_,
                                                    run.dfs.get(), config);
    EXPECT_TRUE(
        run.pipeline->LoadSample(sample_->mate1, sample_->mate2).ok());
    auto variants = run.pipeline->RunAll();
    EXPECT_TRUE(variants.ok()) << variants.status().ToString();
    if (variants.ok()) run.variants = variants.MoveValueUnsafe();
    run.summary = run.pipeline->SummarizeFaultTolerance();
    run.node_summary = run.pipeline->SummarizeNodeFailures();
    return run;
  }

  static void SetUpTestSuite() {
    ReferenceGeneratorOptions ro;
    ro.num_chromosomes = 1;
    ro.chromosome_length = 40'000;
    ref_ = new ReferenceGenome(GenerateReference(ro));
    donor_ = new DonorGenome(PlantVariants(*ref_, VariantPlanterOptions{}));
    ReadSimulatorOptions so;
    so.coverage = 8.0;
    sample_ = new SimulatedSample(SimulateReads(*donor_, so));
    index_ = new GenomeIndex(*ref_);

    auto interleaved =
        InterleavePairs(sample_->mate1, sample_->mate2).ValueOrDie();
    serial_ = new SerialStageOutputs(
        RunSerialPipeline(*ref_, *index_, interleaved).ValueOrDie());

    // Fault-free baseline on the same sample and pipeline shape.
    baseline_dfs_ = new Dfs(MakeDfsOptions());
    GesallPipeline baseline(*ref_, *index_, baseline_dfs_,
                            MakePipelineConfig());
    ASSERT_TRUE(baseline.LoadSample(sample_->mate1, sample_->mate2).ok());
    auto variants = baseline.RunAll();
    ASSERT_TRUE(variants.ok()) << variants.status().ToString();
    baseline_variants_ =
        new std::vector<VariantRecord>(variants.MoveValueUnsafe());
    baseline_summary_ =
        new FaultToleranceSummary(baseline.SummarizeFaultTolerance());
    baseline_node_summary_ =
        new NodeFailureSummary(baseline.SummarizeNodeFailures());

    chaos_ = new ChaosRun(RunUnderChaos(kChaosSeed));
    chaos_repeat_ = new ChaosRun(RunUnderChaos(kChaosSeed));
    node_chaos_ = new ChaosRun(RunUnderNodeChaos(kChaosSeed));
    node_chaos_repeat_ = new ChaosRun(RunUnderNodeChaos(kChaosSeed));
  }

  static void TearDownTestSuite() {
    delete node_chaos_repeat_;
    delete node_chaos_;
    delete chaos_repeat_;
    delete chaos_;
    delete baseline_node_summary_;
    delete baseline_summary_;
    delete baseline_variants_;
    delete baseline_dfs_;
    delete serial_;
    delete index_;
    delete sample_;
    delete donor_;
    delete ref_;
  }

  static ReferenceGenome* ref_;
  static DonorGenome* donor_;
  static SimulatedSample* sample_;
  static GenomeIndex* index_;
  static SerialStageOutputs* serial_;
  static Dfs* baseline_dfs_;
  static std::vector<VariantRecord>* baseline_variants_;
  static FaultToleranceSummary* baseline_summary_;
  static NodeFailureSummary* baseline_node_summary_;
  static ChaosRun* chaos_;
  static ChaosRun* chaos_repeat_;
  static ChaosRun* node_chaos_;
  static ChaosRun* node_chaos_repeat_;
};

ReferenceGenome* PipelineChaosTest::ref_ = nullptr;
DonorGenome* PipelineChaosTest::donor_ = nullptr;
SimulatedSample* PipelineChaosTest::sample_ = nullptr;
GenomeIndex* PipelineChaosTest::index_ = nullptr;
SerialStageOutputs* PipelineChaosTest::serial_ = nullptr;
Dfs* PipelineChaosTest::baseline_dfs_ = nullptr;
std::vector<VariantRecord>* PipelineChaosTest::baseline_variants_ = nullptr;
FaultToleranceSummary* PipelineChaosTest::baseline_summary_ = nullptr;
NodeFailureSummary* PipelineChaosTest::baseline_node_summary_ = nullptr;
ChaosRun* PipelineChaosTest::chaos_ = nullptr;
ChaosRun* PipelineChaosTest::chaos_repeat_ = nullptr;
ChaosRun* PipelineChaosTest::node_chaos_ = nullptr;
ChaosRun* PipelineChaosTest::node_chaos_repeat_ = nullptr;

TEST_F(PipelineChaosTest, RecoveryIsInvisibleInTheOutput) {
  ASSERT_GT(baseline_variants_->size(), 10u);
  EXPECT_EQ(VariantKeys(chaos_->variants), VariantKeys(*baseline_variants_));
}

TEST_F(PipelineChaosTest, SameSeedReproducesRunExactly) {
  EXPECT_EQ(VariantKeys(chaos_->variants),
            VariantKeys(chaos_repeat_->variants));
  EXPECT_EQ(SummaryToString(chaos_->summary),
            SummaryToString(chaos_repeat_->summary));
}

TEST_F(PipelineChaosTest, SummaryShowsTheRecoveries) {
  const FaultToleranceSummary& s = chaos_->summary;
  EXPECT_GT(s.map_task_retries + s.reduce_task_retries, 0);
  EXPECT_GT(s.blocks_failed_over, 0);
  EXPECT_GT(s.replica_read_failures, 0);
  EXPECT_TRUE(s.any_faults_survived());

  // The fault-free baseline shows nothing.
  EXPECT_FALSE(baseline_summary_->any_faults_survived());
  EXPECT_EQ(baseline_summary_->map_task_retries, 0);
  EXPECT_EQ(baseline_summary_->blocks_failed_over, 0);
}

TEST_F(PipelineChaosTest, DiagnosisReportSurfacesFaultTolerance) {
  auto aligned = chaos_->pipeline->ReadStageRecords("aligned");
  auto deduped = chaos_->pipeline->ReadStageRecords("dedup");
  ASSERT_TRUE(aligned.ok()) << aligned.status().ToString();
  ASSERT_TRUE(deduped.ok()) << deduped.status().ToString();

  DiagnosisReportInputs inputs;
  inputs.reference = ref_;
  inputs.serial = serial_;
  inputs.parallel_aligned = &aligned.ValueOrDie();
  inputs.parallel_deduped = &deduped.ValueOrDie();
  inputs.parallel_variants = &chaos_->variants;
  inputs.fault_tolerance = &chaos_->summary;
  auto report = GenerateDiagnosisReport(inputs);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.ValueOrDie().fault_tolerance.any_faults_survived());
  const std::string& md = report.ValueOrDie().markdown;
  EXPECT_NE(md.find("## Fault tolerance"), std::string::npos);
  EXPECT_NE(md.find("blocks failed over"), std::string::npos);
  EXPECT_NE(md.find("produced UNDER faults"), std::string::npos);

  // Without the telemetry input the section is absent and zeroed.
  inputs.fault_tolerance = nullptr;
  auto plain = GenerateDiagnosisReport(inputs);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.ValueOrDie().markdown.find("## Fault tolerance"),
            std::string::npos);
  EXPECT_FALSE(plain.ValueOrDie().fault_tolerance.any_faults_survived());
}

// --- Node chaos: corruption on every block + a mid-job node crash ---

TEST_F(PipelineChaosTest, NodeChaosRecoveryIsInvisibleInTheOutput) {
  ASSERT_GT(baseline_variants_->size(), 10u);
  EXPECT_EQ(VariantKeys(node_chaos_->variants),
            VariantKeys(*baseline_variants_));
}

TEST_F(PipelineChaosTest, NodeChaosSameSeedReproducesRunExactly) {
  EXPECT_EQ(VariantKeys(node_chaos_->variants),
            VariantKeys(node_chaos_repeat_->variants));
  EXPECT_EQ(NodeSummaryToString(node_chaos_->node_summary),
            NodeSummaryToString(node_chaos_repeat_->node_summary));
}

TEST_F(PipelineChaosTest, NodeChaosSummaryShowsEveryRecoveryPath) {
  const NodeFailureSummary& s = node_chaos_->node_summary;
  // Corrupted replicas were detected by block checksums and quarantined.
  EXPECT_GT(s.corruptions_detected, 0);
  EXPECT_GT(s.replicas_quarantined, 0);
  // The scrubber restored replication (quarantined replicas + the dead
  // node's dropped blocks).
  EXPECT_GT(s.blocks_re_replicated, 0);
  // The crashed node was declared dead on missed heartbeats.
  EXPECT_EQ(s.nodes_declared_dead, 1);
  // Its completed map outputs were lost and the map tasks re-executed.
  EXPECT_GT(s.map_tasks_reexecuted, 0);
  EXPECT_GT(s.map_outputs_lost_to_dead_nodes, 0);
  // Every round's shuffle was checksum-verified.
  EXPECT_GT(s.shuffle_partitions_verified, 0);
  EXPECT_GT(s.shuffle_checksummed_bytes, 0);
  EXPECT_TRUE(s.any_node_failures_survived());

  // The fault-free baseline shows none of this.
  EXPECT_FALSE(baseline_node_summary_->any_node_failures_survived());
  EXPECT_EQ(baseline_node_summary_->corruptions_detected, 0);
  EXPECT_EQ(baseline_node_summary_->map_tasks_reexecuted, 0);
}

TEST_F(PipelineChaosTest, DiagnosisReportSurfacesNodeFailures) {
  auto aligned = node_chaos_->pipeline->ReadStageRecords("aligned");
  auto deduped = node_chaos_->pipeline->ReadStageRecords("dedup");
  ASSERT_TRUE(aligned.ok()) << aligned.status().ToString();
  ASSERT_TRUE(deduped.ok()) << deduped.status().ToString();

  DiagnosisReportInputs inputs;
  inputs.reference = ref_;
  inputs.serial = serial_;
  inputs.parallel_aligned = &aligned.ValueOrDie();
  inputs.parallel_deduped = &deduped.ValueOrDie();
  inputs.parallel_variants = &node_chaos_->variants;
  inputs.fault_tolerance = &node_chaos_->summary;
  inputs.node_failures = &node_chaos_->node_summary;
  auto report = GenerateDiagnosisReport(inputs);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(
      report.ValueOrDie().node_failures.any_node_failures_survived());
  const std::string& md = report.ValueOrDie().markdown;
  EXPECT_NE(md.find("## Node failures"), std::string::npos);
  EXPECT_NE(md.find("corrupt replicas"), std::string::npos);
  EXPECT_NE(md.find("map tasks re-executed"), std::string::npos);
  EXPECT_NE(md.find("survived corruption/node loss"), std::string::npos);

  // Without the telemetry input the section is absent and zeroed.
  inputs.node_failures = nullptr;
  auto plain = GenerateDiagnosisReport(inputs);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.ValueOrDie().markdown.find("## Node failures"),
            std::string::npos);
  EXPECT_FALSE(
      plain.ValueOrDie().node_failures.any_node_failures_survived());
}

}  // namespace
}  // namespace gesall

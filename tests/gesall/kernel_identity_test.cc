// End-to-end proof that the SIMD machinery is output-invisible: pipeline
// round 1 run with the banded scalar kernel and with the banded SIMD
// kernel (runtime dispatch, 16-bit lanes, overflow promotion) must
// produce byte-identical BAM partitions and the same planted-truth
// accuracy — vectorization is a pure performance switch. The
// full-rectangle oracle is compared on counters only: its output may
// legitimately differ from any banded kernel on repetitive windows where
// the best local alignment leaves the band (DESIGN.md §8); per-call
// agreement for seed-anchored reads is covered by
// tests/align/sw_differential_test.cc.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "align/smith_waterman.h"
#include "formats/sam.h"
#include "gesall/pipeline.h"
#include "genome/read_simulator.h"
#include "genome/reference_generator.h"

namespace gesall {
namespace {

struct Round1Output {
  std::vector<std::string> bam_paths;
  std::vector<std::string> bam_bytes;
  std::vector<SamRecord> records;
  RoundStats stats;
};

class KernelIdentityTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    ReferenceGeneratorOptions ro;
    ro.num_chromosomes = 1;
    ro.chromosome_length = 60'000;
    ref_ = new ReferenceGenome(GenerateReference(ro));
    donor_ = new DonorGenome(PlantVariants(*ref_, VariantPlanterOptions{}));
    ReadSimulatorOptions so;
    so.coverage = 4.0;
    sample_ = new SimulatedSample(SimulateReads(*donor_, so));
    index_ = new GenomeIndex(*ref_);
  }

  static void TearDownTestSuite() {
    delete index_;
    delete sample_;
    delete donor_;
    delete ref_;
  }

  static Round1Output RunRound1(SwKernelMode kernel) {
    DfsOptions dopt;
    dopt.block_size = 256 * 1024;
    dopt.replication = 2;
    dopt.num_data_nodes = 3;
    Dfs dfs(dopt);
    PipelineConfig config;
    config.alignment_partitions = 3;
    config.aligner.aligner.kernel = kernel;
    GesallPipeline pipeline(*ref_, *index_, &dfs, config);
    EXPECT_TRUE(pipeline.LoadSample(sample_->mate1, sample_->mate2).ok());
    EXPECT_TRUE(pipeline.RunRound1Alignment().ok());

    Round1Output out;
    out.bam_paths = dfs.List("/gesall/aligned/");
    for (const auto& path : out.bam_paths) {
      out.bam_bytes.push_back(dfs.Read(path).ValueOrDie());
    }
    out.records = pipeline.ReadStageRecords("aligned").ValueOrDie();
    EXPECT_FALSE(pipeline.stats().empty());
    out.stats = pipeline.stats().back();
    return out;
  }

  // Fraction of mapped first mates landing within 5 bp of their simulated
  // origin (read names are "p<truth index>").
  static double PlantedTruthAccuracy(const std::vector<SamRecord>& records) {
    int64_t correct = 0, evaluated = 0;
    for (const auto& r : records) {
      if (!(r.flag & sam_flags::kFirstOfPair) || r.IsUnmapped()) continue;
      const size_t i = std::strtoull(r.qname.c_str() + 1, nullptr, 10);
      const ReadPairTruth& t = sample_->truth.at(i);
      if (t.junk_mate2) continue;
      ++evaluated;
      if (r.ref_id == t.chrom && std::abs(r.pos - t.ref_start) <= 5) {
        ++correct;
      }
    }
    EXPECT_GT(evaluated, 100);
    return correct / static_cast<double>(evaluated);
  }

  static ReferenceGenome* ref_;
  static DonorGenome* donor_;
  static SimulatedSample* sample_;
  static GenomeIndex* index_;
};

ReferenceGenome* KernelIdentityTest::ref_ = nullptr;
DonorGenome* KernelIdentityTest::donor_ = nullptr;
SimulatedSample* KernelIdentityTest::sample_ = nullptr;
GenomeIndex* KernelIdentityTest::index_ = nullptr;

TEST_F(KernelIdentityTest, Round1BamBytesIdenticalAcrossKernels) {
  Round1Output scalar = RunRound1(SwKernelMode::kBanded);
  Round1Output simd = RunRound1(SwKernelMode::kAuto);

  ASSERT_EQ(scalar.bam_paths, simd.bam_paths);
  ASSERT_FALSE(scalar.bam_bytes.empty());
  for (size_t i = 0; i < scalar.bam_bytes.size(); ++i) {
    EXPECT_EQ(scalar.bam_bytes[i], simd.bam_bytes[i])
        << "BAM partition " << scalar.bam_paths[i]
        << " differs between kernels";
  }

  const double acc_scalar = PlantedTruthAccuracy(scalar.records);
  const double acc_simd = PlantedTruthAccuracy(simd.records);
  EXPECT_DOUBLE_EQ(acc_scalar, acc_simd);
  EXPECT_GT(acc_simd, 0.9);
}

TEST_F(KernelIdentityTest, RoundCountersRecordKernelChoice) {
  Round1Output oracle = RunRound1(SwKernelMode::kScalarFull);
  Round1Output fast = RunRound1(SwKernelMode::kAuto);

  EXPECT_GT(oracle.stats.counters.Get("align_kernel_calls"), 0);
  EXPECT_EQ(oracle.stats.counters.Get("align_kernel_simd_calls"), 0);
  EXPECT_GT(oracle.stats.counters.Get("align_kernel_scalar_calls"), 0);
  // The oracle fills the full rectangle: nothing skipped.
  EXPECT_EQ(oracle.stats.counters.Get("align_band_cells_skipped"), 0);

  EXPECT_EQ(fast.stats.counters.Get("align_kernel_calls"),
            oracle.stats.counters.Get("align_kernel_calls"));
  // Banding skips most of the DP regardless of SIMD availability.
  EXPECT_GT(fast.stats.counters.Get("align_band_cells_skipped"), 0);
  if (SwSimdAvailable()) {
    EXPECT_GT(fast.stats.counters.Get("align_kernel_simd_calls"), 0);
    EXPECT_EQ(fast.stats.counters.Get("align_kernel_scalar_calls"), 0);
  }
}

}  // namespace
}  // namespace gesall

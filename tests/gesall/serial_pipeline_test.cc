#include "gesall/pipeline.h"

#include <gtest/gtest.h>

#include <map>

#include "analysis/mark_duplicates.h"
#include "analysis/steps.h"
#include "genome/read_simulator.h"
#include "genome/reference_generator.h"

namespace gesall {
namespace {

class SerialPipelineTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    ReferenceGeneratorOptions ro;
    ro.num_chromosomes = 2;
    ro.chromosome_length = 70'000;
    ref_ = new ReferenceGenome(GenerateReference(ro));
    donor_ = new DonorGenome(PlantVariants(*ref_, VariantPlanterOptions{}));
    ReadSimulatorOptions so;
    so.coverage = 12.0;
    auto sample = SimulateReads(*donor_, so);
    index_ = new GenomeIndex(*ref_);
    interleaved_ = new std::vector<FastqRecord>(
        InterleavePairs(sample.mate1, sample.mate2).ValueOrDie());
    outputs_ = new SerialStageOutputs(
        RunSerialPipeline(*ref_, *index_, *interleaved_).ValueOrDie());
  }
  static void TearDownTestSuite() {
    delete outputs_;
    delete interleaved_;
    delete index_;
    delete donor_;
    delete ref_;
  }

  static ReferenceGenome* ref_;
  static DonorGenome* donor_;
  static GenomeIndex* index_;
  static std::vector<FastqRecord>* interleaved_;
  static SerialStageOutputs* outputs_;
};

ReferenceGenome* SerialPipelineTest::ref_ = nullptr;
DonorGenome* SerialPipelineTest::donor_ = nullptr;
GenomeIndex* SerialPipelineTest::index_ = nullptr;
std::vector<FastqRecord>* SerialPipelineTest::interleaved_ = nullptr;
SerialStageOutputs* SerialPipelineTest::outputs_ = nullptr;

TEST_F(SerialPipelineTest, EveryStagePreservesReadCount) {
  const size_t n = interleaved_->size();
  EXPECT_EQ(outputs_->aligned.size(), n);
  EXPECT_EQ(outputs_->cleaned.size(), n);
  EXPECT_EQ(outputs_->deduped.size(), n);
  EXPECT_EQ(outputs_->sorted.size(), n);
}

TEST_F(SerialPipelineTest, StepTimingsRecorded) {
  for (const char* step :
       {"bwa", "add_replace_groups", "clean_sam", "fix_mate_info",
        "mark_duplicates", "sort_sam", "haplotype_caller"}) {
    auto it = outputs_->step_seconds.find(step);
    ASSERT_NE(it, outputs_->step_seconds.end()) << step;
    EXPECT_GE(it->second, 0.0) << step;
  }
}

TEST_F(SerialPipelineTest, CleanedStageHasReadGroups) {
  ASSERT_FALSE(outputs_->header.read_groups.empty());
  for (const auto& r : outputs_->cleaned) {
    EXPECT_EQ(r.GetTag("RG"), outputs_->header.read_groups[0].id);
  }
}

TEST_F(SerialPipelineTest, SortedStageIsCoordinateOrdered) {
  const auto& sorted = outputs_->sorted;
  for (size_t i = 1; i < sorted.size(); ++i) {
    EXPECT_FALSE(CoordinateLess(sorted[i], sorted[i - 1])) << i;
  }
}

TEST_F(SerialPipelineTest, MarkDuplicatesIsIdempotent) {
  std::vector<SamRecord> again = outputs_->deduped;
  // Re-running on already-marked data must not change any flag.
  ASSERT_TRUE(MarkDuplicates(&again).ok());
  EXPECT_EQ(again, outputs_->deduped);
}

TEST_F(SerialPipelineTest, FixMateInformationIsIdempotent) {
  std::vector<SamRecord> again = outputs_->cleaned;
  ASSERT_TRUE(FixMateInformation(&again).ok());
  EXPECT_EQ(again, outputs_->cleaned);
}

TEST_F(SerialPipelineTest, DuplicateRateNearSimulatedRate) {
  int64_t dups = 0;
  for (const auto& r : outputs_->deduped) dups += r.IsDuplicate();
  double rate = dups / static_cast<double>(outputs_->deduped.size());
  // The simulator plants ~2% PCR duplicates; detection should land near
  // that (plus random fragment collisions, minus unmapped pairs).
  EXPECT_GT(rate, 0.008);
  EXPECT_LT(rate, 0.05);
}

TEST_F(SerialPipelineTest, HybridTailEqualsSerialTailOnSerialPrefix) {
  // Feeding the serial pipeline's own alignment output through the
  // hybrid tail must reproduce the serial variant calls exactly.
  auto hybrid = SerialTailFromAligned(*ref_, outputs_->header,
                                      outputs_->aligned)
                    .ValueOrDie();
  ASSERT_EQ(hybrid.size(), outputs_->variants.size());
  for (size_t i = 0; i < hybrid.size(); ++i) {
    EXPECT_EQ(hybrid[i].Key(), outputs_->variants[i].Key());
  }
}

TEST_F(SerialPipelineTest, DedupedTailEqualsSerialTail) {
  auto hybrid = SerialTailFromDeduped(*ref_, outputs_->header,
                                      outputs_->deduped)
                    .ValueOrDie();
  ASSERT_EQ(hybrid.size(), outputs_->variants.size());
  for (size_t i = 0; i < hybrid.size(); ++i) {
    EXPECT_EQ(hybrid[i].Key(), outputs_->variants[i].Key());
  }
}

TEST_F(SerialPipelineTest, RecalibrationChangesQualitiesNotCalls) {
  SerialPipelineConfig config;
  config.run_recalibration = true;
  auto with_recal =
      RunSerialPipeline(*ref_, *index_, *interleaved_, config).ValueOrDie();
  // Qualities in the sorted stage differ from the non-recalibrated run.
  ASSERT_EQ(with_recal.sorted.size(), outputs_->sorted.size());
  int64_t changed = 0;
  for (size_t i = 0; i < with_recal.sorted.size(); ++i) {
    changed += with_recal.sorted[i].qual != outputs_->sorted[i].qual;
  }
  EXPECT_GT(changed, static_cast<int64_t>(with_recal.sorted.size() / 2));
  // Variant calls barely move (clean synthetic data is well calibrated).
  double delta =
      std::abs(static_cast<double>(with_recal.variants.size()) -
               static_cast<double>(outputs_->variants.size()));
  EXPECT_LT(delta / outputs_->variants.size(), 0.15);
}

}  // namespace
}  // namespace gesall

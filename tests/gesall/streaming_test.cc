#include "gesall/streaming.h"

#include <gtest/gtest.h>

#include "formats/bam.h"
#include "genome/read_simulator.h"
#include "genome/reference_generator.h"

namespace gesall {
namespace {

// A trivial program: upper-cases each line.
class UpcaseProgram : public LineProgram {
 public:
  Status ConsumeLine(std::string_view line, const Emit& emit) override {
    std::string out(line);
    for (char& c : out) c = static_cast<char>(std::toupper(c));
    return emit(out);
  }
};

// Emits every line twice.
class DoubleProgram : public LineProgram {
 public:
  Status ConsumeLine(std::string_view line, const Emit& emit) override {
    GESALL_RETURN_NOT_OK(emit(line));
    return emit(line);
  }
};

// Batches lines and emits them joined at Finish (tests drain logic).
class JoinAtFinishProgram : public LineProgram {
 public:
  Status ConsumeLine(std::string_view line, const Emit&) override {
    lines_.emplace_back(line);
    return Status::OK();
  }
  Status Finish(const Emit& emit) override {
    std::string joined;
    for (const auto& l : lines_) joined += l + "|";
    return emit(joined);
  }

 private:
  std::vector<std::string> lines_;
};

TEST(PipeBufferTest, FlushesAtCapacity) {
  PipeBuffer pipe(8);
  std::string seen;
  int flushes = 0;
  pipe.SetConsumer([&](std::string_view d) {
    seen.append(d);
    ++flushes;
    return Status::OK();
  });
  ASSERT_TRUE(pipe.Write("0123456789abcdef").ok());  // 2 full buffers
  EXPECT_EQ(flushes, 2);
  EXPECT_EQ(seen, "0123456789abcdef");
  ASSERT_TRUE(pipe.Write("xy").ok());
  EXPECT_EQ(flushes, 2);  // buffered, below capacity
  ASSERT_TRUE(pipe.Flush().ok());
  EXPECT_EQ(flushes, 3);
  EXPECT_EQ(pipe.bytes_transferred(), 18);
}

TEST(StreamingChainTest, SingleProgram) {
  UpcaseProgram up;
  auto out = RunStreamingChain("hello\nworld\n", {&up}).ValueOrDie();
  EXPECT_EQ(out, "HELLO\nWORLD\n");
}

TEST(StreamingChainTest, TwoProgramChain) {
  UpcaseProgram up;
  DoubleProgram dbl;
  auto out = RunStreamingChain("ab\ncd\n", {&up, &dbl}).ValueOrDie();
  EXPECT_EQ(out, "AB\nAB\nCD\nCD\n");
}

TEST(StreamingChainTest, FinishOutputPropagatesThroughChain) {
  JoinAtFinishProgram join;
  UpcaseProgram up;
  auto out = RunStreamingChain("a\nb\nc\n", {&join, &up}).ValueOrDie();
  EXPECT_EQ(out, "A|B|C|\n");
}

TEST(StreamingChainTest, SmallPipeStillCorrect) {
  // A 4-byte pipe forces many flushes and split lines.
  UpcaseProgram up;
  StreamingStats stats;
  auto out = RunStreamingChain("abcdefgh\nij\n", {&up}, &stats,
                               /*pipe_capacity=*/4)
                 .ValueOrDie();
  EXPECT_EQ(out, "ABCDEFGH\nIJ\n");
  EXPECT_GT(stats.pipe_flushes, 2);
}

TEST(StreamingChainTest, MissingTrailingNewlineHandled) {
  UpcaseProgram up;
  auto out = RunStreamingChain("no-newline", {&up}).ValueOrDie();
  EXPECT_EQ(out, "NO-NEWLINE\n");
}

TEST(StreamingChainTest, EmptyChainRejected) {
  EXPECT_TRUE(RunStreamingChain("x", {}).status().IsInvalidArgument());
}

TEST(StreamingChainTest, StatsPopulated) {
  UpcaseProgram up;
  StreamingStats stats;
  ASSERT_TRUE(RunStreamingChain("abc\ndef\n", {&up}, &stats).ok());
  EXPECT_EQ(stats.input_bytes, 8);
  EXPECT_EQ(stats.output_bytes, 8);
  EXPECT_GE(stats.pipe_flushes, 1);
}

// --- BwaStreamProgram: Fig. 8 fidelity --------------------------------

class BwaStreamTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    ReferenceGeneratorOptions ro;
    ro.num_chromosomes = 1;
    ro.chromosome_length = 60'000;
    ref_ = new ReferenceGenome(GenerateReference(ro));
    index_ = new GenomeIndex(*ref_);
    DonorGenome donor = PlantVariants(*ref_, VariantPlanterOptions{});
    ReadSimulatorOptions so;
    so.coverage = 4.0;
    sample_ = new SimulatedSample(SimulateReads(donor, so));
  }
  static void TearDownTestSuite() {
    delete sample_;
    delete index_;
    delete ref_;
  }
  static ReferenceGenome* ref_;
  static GenomeIndex* index_;
  static SimulatedSample* sample_;
};

ReferenceGenome* BwaStreamTest::ref_ = nullptr;
GenomeIndex* BwaStreamTest::index_ = nullptr;
SimulatedSample* BwaStreamTest::sample_ = nullptr;

TEST_F(BwaStreamTest, StreamingMatchesNativeAlignment) {
  auto interleaved =
      InterleavePairs(sample_->mate1, sample_->mate2).ValueOrDie();
  PairedAlignerOptions opt;
  opt.batch_size = 128;  // several batches

  // Native path.
  PairedEndAligner native(*index_, opt);
  auto native_records = native.AlignPairs(interleaved);

  // Streaming path: FASTQ text -> bwa -> SAM text -> parse.
  BwaStreamProgram bwa(*index_, opt);
  auto sam_text =
      RunStreamingChain(WriteFastq(interleaved), {&bwa}).ValueOrDie();
  auto [header, streamed_records] =
      ParseSamText(sam_text).ValueOrDie();

  ASSERT_EQ(streamed_records.size(), native_records.size());
  for (size_t i = 0; i < native_records.size(); ++i) {
    EXPECT_EQ(streamed_records[i], native_records[i]) << i;
  }
}

TEST_F(BwaStreamTest, SamTextToBamRoundTrip) {
  auto interleaved =
      InterleavePairs(sample_->mate1, sample_->mate2).ValueOrDie();
  PairedAlignerOptions opt;
  BwaStreamProgram bwa(*index_, opt);
  auto sam_text =
      RunStreamingChain(WriteFastq(interleaved), {&bwa}).ValueOrDie();
  auto bam = SamTextToBam(sam_text).ValueOrDie();
  auto [header, records] = ReadBam(bam).ValueOrDie();
  EXPECT_EQ(records.size(), interleaved.size());
  EXPECT_EQ(header.refs.size(), 1u);
}

TEST_F(BwaStreamTest, TruncatedRecordRejected) {
  PairedAlignerOptions opt;
  BwaStreamProgram bwa(*index_, opt);
  auto result = RunStreamingChain("@r1\nACGT\n+\n", {&bwa});
  EXPECT_FALSE(result.ok());
}

TEST_F(BwaStreamTest, OddReadCountRejected) {
  PairedAlignerOptions opt;
  BwaStreamProgram bwa(*index_, opt);
  std::string one_read = "@r1\nACGTACGTACGTACGTACGTACGT\n+\nIIIIIIIIIIIIIIIIIIIIIIII\n";
  auto result = RunStreamingChain(one_read, {&bwa});
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace gesall

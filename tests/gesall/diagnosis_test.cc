#include "gesall/diagnosis.h"

#include <gtest/gtest.h>

namespace gesall {
namespace {

ReferenceGenome AnnotatedRef() {
  ReferenceGenome g;
  g.chromosomes.push_back({"chr1", std::string(100'000, 'A')});
  g.centromeres.push_back({0, 40'000, 45'000});
  g.blacklist.push_back({0, 80'000, 82'000});
  return g;
}

SamRecord Rec(const std::string& name, bool first, int64_t pos, int mapq,
              bool duplicate = false, bool unmapped = false) {
  SamRecord r;
  r.qname = name;
  r.flag = sam_flags::kPaired;
  r.SetFlag(first ? sam_flags::kFirstOfPair : sam_flags::kSecondOfPair,
            true);
  if (unmapped) {
    r.SetFlag(sam_flags::kUnmapped, true);
  } else {
    r.ref_id = 0;
    r.pos = pos;
    r.mapq = mapq;
    r.cigar = {{'M', 100}};
  }
  if (duplicate) r.SetFlag(sam_flags::kDuplicate, true);
  r.seq = std::string(100, 'A');
  r.qual = std::string(100, 'I');
  r.tlen = first ? 400 : -400;
  return r;
}

TEST(CompareAlignmentsTest, IdenticalSetsNoDiscordance) {
  auto ref = AnnotatedRef();
  std::vector<SamRecord> a = {Rec("p1", true, 100, 60),
                              Rec("p1", false, 400, 60)};
  auto d = CompareAlignments(ref, a, a);
  EXPECT_EQ(d.total_reads, 2);
  EXPECT_EQ(d.d_count, 0);
  EXPECT_DOUBLE_EQ(d.weighted_d_count, 0.0);
}

TEST(CompareAlignmentsTest, PositionChangeCounted) {
  auto ref = AnnotatedRef();
  std::vector<SamRecord> a = {Rec("p1", true, 100, 60)};
  std::vector<SamRecord> b = {Rec("p1", true, 2'000, 60)};
  auto d = CompareAlignments(ref, a, b);
  EXPECT_EQ(d.d_count, 1);
  EXPECT_GT(d.weighted_d_count, 0.9);  // high mapq -> weight ~1
  EXPECT_EQ(d.discordant_elsewhere, 1);
  EXPECT_EQ(d.discordant_after_filters, 1);
}

TEST(CompareAlignmentsTest, LowQualityDisagreementWeighsLittle) {
  auto ref = AnnotatedRef();
  std::vector<SamRecord> a = {Rec("p1", true, 100, 5)};
  std::vector<SamRecord> b = {Rec("p1", true, 2'000, 8)};
  auto d = CompareAlignments(ref, a, b);
  EXPECT_EQ(d.d_count, 1);
  EXPECT_LT(d.weighted_d_count, 0.05);
  EXPECT_EQ(d.discordant_after_filters, 0);  // mapq filter removes it
}

TEST(CompareAlignmentsTest, CentromereClassified) {
  auto ref = AnnotatedRef();
  std::vector<SamRecord> a = {Rec("p1", true, 41'000, 20)};
  std::vector<SamRecord> b = {Rec("p1", true, 42'000, 20)};
  auto d = CompareAlignments(ref, a, b);
  EXPECT_EQ(d.discordant_centromere, 1);
  EXPECT_EQ(d.discordant_after_filters, 0);
}

TEST(CompareAlignmentsTest, BlacklistClassified) {
  auto ref = AnnotatedRef();
  std::vector<SamRecord> a = {Rec("p1", true, 80'500, 60)};
  std::vector<SamRecord> b = {Rec("p1", true, 9'000, 60)};
  auto d = CompareAlignments(ref, a, b);
  EXPECT_EQ(d.discordant_blacklist, 1);
}

TEST(CompareAlignmentsTest, UnmappedVsMappedIsDiscordant) {
  auto ref = AnnotatedRef();
  std::vector<SamRecord> a = {Rec("p1", true, 0, 0, false, true)};
  std::vector<SamRecord> b = {Rec("p1", true, 500, 40)};
  auto d = CompareAlignments(ref, a, b);
  EXPECT_EQ(d.d_count, 1);
}

TEST(CompareAlignmentsTest, MatesComparedIndependently) {
  auto ref = AnnotatedRef();
  std::vector<SamRecord> a = {Rec("p1", true, 100, 60),
                              Rec("p1", false, 400, 60)};
  std::vector<SamRecord> b = {Rec("p1", true, 100, 60),
                              Rec("p1", false, 5'000, 60)};
  auto d = CompareAlignments(ref, a, b);
  EXPECT_EQ(d.d_count, 1);
}

TEST(CompareAlignmentsTest, InsertSizeBucketsFilled) {
  auto ref = AnnotatedRef();
  std::vector<SamRecord> a = {Rec("p1", true, 100, 60),
                              Rec("p1", false, 400, 60)};
  std::vector<SamRecord> b = {Rec("p1", true, 900, 60),
                              Rec("p1", false, 400, 60)};
  auto d = CompareAlignments(ref, a, b);
  ASSERT_EQ(d.insert_size_buckets.size(), 1u);
  EXPECT_EQ(d.insert_size_buckets.begin()->first, 400);
}

TEST(CompareDuplicatesTest, FlagDifferenceCounted) {
  std::vector<SamRecord> a = {Rec("p1", true, 100, 60, /*duplicate=*/true),
                              Rec("p2", true, 200, 60, false)};
  std::vector<SamRecord> b = {Rec("p1", true, 100, 60, false),
                              Rec("p2", true, 200, 60, false)};
  auto d = CompareDuplicates(a, b);
  EXPECT_EQ(d.d_count, 1);
  EXPECT_EQ(d.duplicates_serial, 1);
  EXPECT_EQ(d.duplicates_parallel, 0);
  EXPECT_EQ(d.duplicate_count_delta(), 1);
}

VariantRecord Var(int64_t pos, const char* ref, const char* alt,
                  double qual = 60) {
  VariantRecord v;
  v.chrom = 0;
  v.pos = pos;
  v.ref = ref;
  v.alt = alt;
  v.qual = qual;
  return v;
}

TEST(CompareVariantsTest, PartitionsIntoThreeSets) {
  std::vector<VariantRecord> a = {Var(10, "A", "G"), Var(20, "C", "T")};
  std::vector<VariantRecord> b = {Var(10, "A", "G"), Var(30, "G", "A")};
  auto d = CompareVariants(a, b);
  EXPECT_EQ(d.concordant.size(), 1u);
  EXPECT_EQ(d.only_first.size(), 1u);
  EXPECT_EQ(d.only_second.size(), 1u);
  EXPECT_EQ(d.d_count(), 2);
  EXPECT_GT(d.weighted_d_count, 1.5);  // two high-qual discordant calls
}

TEST(CompareVariantsTest, LowQualityDiscordanceWeighsLess) {
  std::vector<VariantRecord> a = {Var(10, "A", "G", 5)};
  std::vector<VariantRecord> b = {};
  auto d = CompareVariants(a, b);
  EXPECT_EQ(d.d_count(), 1);
  EXPECT_LT(d.weighted_d_count, 0.05);
}

TEST(CompareVariantsTest, AlleleMismatchIsDiscordant) {
  std::vector<VariantRecord> a = {Var(10, "A", "G")};
  std::vector<VariantRecord> b = {Var(10, "A", "C")};
  auto d = CompareVariants(a, b);
  EXPECT_EQ(d.concordant.size(), 0u);
  EXPECT_EQ(d.d_count(), 2);
}

TEST(EvaluateAgainstTruthTest, PerfectCalls) {
  std::vector<PlantedVariant> truth = {{0, 10, "A", "G", false, 0},
                                       {0, 20, "C", "T", true, 0}};
  std::vector<VariantRecord> calls = {Var(10, "A", "G"), Var(20, "C", "T")};
  auto ps = EvaluateAgainstTruth(calls, truth);
  EXPECT_EQ(ps.true_positives, 2);
  EXPECT_DOUBLE_EQ(ps.precision, 1.0);
  EXPECT_DOUBLE_EQ(ps.sensitivity, 1.0);
}

TEST(EvaluateAgainstTruthTest, FalsePositivesAndNegatives) {
  std::vector<PlantedVariant> truth = {{0, 10, "A", "G", false, 0},
                                       {0, 20, "C", "T", true, 0}};
  std::vector<VariantRecord> calls = {Var(10, "A", "G"), Var(99, "T", "A")};
  auto ps = EvaluateAgainstTruth(calls, truth);
  EXPECT_EQ(ps.true_positives, 1);
  EXPECT_EQ(ps.false_positives, 1);
  EXPECT_EQ(ps.false_negatives, 1);
  EXPECT_DOUBLE_EQ(ps.precision, 0.5);
  EXPECT_DOUBLE_EQ(ps.sensitivity, 0.5);
}

TEST(EvaluateAgainstTruthTest, EmptyCalls) {
  std::vector<PlantedVariant> truth = {{0, 10, "A", "G", false, 0}};
  auto ps = EvaluateAgainstTruth({}, truth);
  EXPECT_EQ(ps.false_negatives, 1);
  EXPECT_DOUBLE_EQ(ps.sensitivity, 0.0);
}

}  // namespace
}  // namespace gesall

// Differential tests pinning the banded/SIMD Smith-Waterman kernels to
// the full-rectangle scalar oracle: for any fixed band all kernel modes
// must produce bit-identical scores, CIGARs, positions, edit counts and
// tie-breaks, and with a full band they must match SmithWaterman()
// exactly. Runs under ASan/UBSan via scripts/check.sh.

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "align/smith_waterman.h"
#include "formats/cigar.h"
#include "util/rng.h"

namespace gesall {
namespace {

const char kBases[] = "ACGT";

std::string RandomSeq(Rng& rng, int len) {
  std::string s(len, 'A');
  for (char& c : s) c = kBases[rng.Uniform(4)];
  return s;
}

// A read sampled from `window` at `offset` with point mutations, small
// indels, and (sometimes) a garbage low-quality tail.
std::string MutatedRead(Rng& rng, std::string_view window, int offset,
                        int len, int mutations, int indels,
                        int garbage_tail) {
  std::string read(window.substr(offset, len));
  for (int i = 0; i < mutations && !read.empty(); ++i) {
    read[rng.Uniform(read.size())] = kBases[rng.Uniform(4)];
  }
  for (int i = 0; i < indels && read.size() > 4; ++i) {
    size_t at = rng.Uniform(read.size() - 2);
    int indel_len = 1 + static_cast<int>(rng.Uniform(3));
    if (rng.Uniform(2) == 0) {
      read.erase(at, indel_len);
    } else {
      read.insert(at, RandomSeq(rng, indel_len));
    }
  }
  for (int i = 0; i < garbage_tail && !read.empty(); ++i) {
    read[read.size() - 1 - i] = kBases[rng.Uniform(4)];
  }
  return read;
}

void ExpectIdentical(const SwAlignment& want, const SwAlignment& got,
                     const std::string& what) {
  EXPECT_EQ(want.aligned, got.aligned) << what;
  EXPECT_EQ(want.score, got.score) << what;
  EXPECT_EQ(want.window_start, got.window_start) << what;
  EXPECT_EQ(want.window_end, got.window_end) << what;
  EXPECT_EQ(want.edit_distance, got.edit_distance) << what;
  EXPECT_EQ(CigarToString(want.cigar), CigarToString(got.cigar)) << what;
}

SwAlignment RunKernel(std::string_view read, std::string_view window,
                      const SwScoring& sc, const SwBand& band,
                      SwKernelMode mode, SwKernelStats* stats = nullptr) {
  SwScratch scratch;
  SwAlignment out;
  SmithWatermanKernel(read, window, sc, band, mode, &scratch, &out, stats);
  return out;
}

constexpr SwKernelMode kAllModes[] = {
    SwKernelMode::kScalarFull, SwKernelMode::kBanded,
    SwKernelMode::kBandedSimd, SwKernelMode::kAuto};

const char* ModeName(SwKernelMode m) {
  switch (m) {
    case SwKernelMode::kScalarFull: return "kScalarFull";
    case SwKernelMode::kBanded: return "kBanded";
    case SwKernelMode::kBandedSimd: return "kBandedSimd";
    case SwKernelMode::kAuto: return "kAuto";
  }
  return "?";
}

TEST(SwDifferentialTest, FullBandAllModesMatchOracleOnRandomReads) {
  Rng rng(20260807);
  SwScoring sc;
  for (int iter = 0; iter < 400; ++iter) {
    const int n = 60 + static_cast<int>(rng.Uniform(120));
    std::string window = RandomSeq(rng, n);
    const int len = 20 + static_cast<int>(rng.Uniform(n - 25));
    const int offset = static_cast<int>(rng.Uniform(n - len));
    std::string read = MutatedRead(
        rng, window, offset, len, static_cast<int>(rng.Uniform(6)),
        static_cast<int>(rng.Uniform(3)), static_cast<int>(rng.Uniform(8)));
    SwAlignment want = SmithWaterman(read, window, sc);
    for (SwKernelMode mode : kAllModes) {
      SwAlignment got = RunKernel(read, window, sc, SwBand::Full(), mode);
      ExpectIdentical(want, got,
                      std::string("iter ") + std::to_string(iter) + " " +
                          ModeName(mode) + " read=" + read);
    }
  }
}

TEST(SwDifferentialTest, FixedBandScalarAndSimdAgree) {
  Rng rng(7);
  SwScoring sc;
  for (int iter = 0; iter < 400; ++iter) {
    const int n = 40 + static_cast<int>(rng.Uniform(150));
    std::string window = RandomSeq(rng, n);
    const int len = 15 + static_cast<int>(rng.Uniform(60));
    std::string read = RandomSeq(rng, len);
    SwBand band;
    band.center = rng.UniformInt(-len, n);
    band.half_width = rng.UniformInt(0, 64);
    SwAlignment scalar = RunKernel(read, window, sc, band,
                                   SwKernelMode::kBanded);
    SwAlignment simd = RunKernel(read, window, sc, band,
                                 SwKernelMode::kBandedSimd);
    ExpectIdentical(scalar, simd,
                    "iter " + std::to_string(iter) + " center=" +
                        std::to_string(band.center) + " half=" +
                        std::to_string(band.half_width));
  }
}

TEST(SwDifferentialTest, SeedAnchoredBandMatchesFullRectangle) {
  // The aligner's contract: when the band is centered on the seed-implied
  // diagonal with the default half-width, banding never changes the
  // alignment of a read whose indels fit in the band.
  Rng rng(99);
  SwScoring sc;
  for (int iter = 0; iter < 300; ++iter) {
    std::string window = RandomSeq(rng, 200);
    const int offset = 24;  // aligner's window_pad placement
    std::string read = MutatedRead(rng, window, offset, 100,
                                   static_cast<int>(rng.Uniform(5)),
                                   static_cast<int>(rng.Uniform(3)),
                                   /*garbage_tail=*/0);
    SwAlignment want = SmithWaterman(read, window, sc);
    SwBand band;
    band.center = offset;
    band.half_width = 40;
    for (SwKernelMode mode :
         {SwKernelMode::kBanded, SwKernelMode::kBandedSimd}) {
      SwAlignment got = RunKernel(read, window, sc, band, mode);
      ExpectIdentical(want, got, std::string(ModeName(mode)) + " iter " +
                                     std::to_string(iter));
    }
  }
}

TEST(SwDifferentialTest, EdgeCasesMatchOracle) {
  SwScoring sc;
  Rng rng(3);
  const std::string window = RandomSeq(rng, 80);
  const std::vector<std::string> reads = {
      "",                              // empty read
      std::string(40, 'N'),            // all-N (never matches ACGT)
      RandomSeq(rng, 200),             // read longer than the window
      window.substr(10, 30),           // exact match
      std::string(window.rbegin(), window.rend()),
  };
  for (const std::string& read : reads) {
    SwAlignment want = SmithWaterman(read, window, sc);
    for (SwKernelMode mode : kAllModes) {
      ExpectIdentical(want, RunKernel(read, window, sc, SwBand::Full(), mode),
                      std::string(ModeName(mode)) + " len=" +
                          std::to_string(read.size()));
    }
    // Empty window too.
    SwAlignment got = RunKernel(read, "", sc, SwBand::Full(),
                                SwKernelMode::kAuto);
    EXPECT_FALSE(got.aligned);
  }
}

TEST(SwDifferentialTest, TieBreakingIsBitIdentical) {
  // A periodic window offers many equal-scoring placements; the kernels
  // must pick the same one (first maximum in i-major, j-ascending order).
  SwScoring sc;
  std::string window;
  for (int i = 0; i < 12; ++i) window += "ACGTACGT";
  std::string read = "ACGTACGT";
  SwAlignment want = SmithWaterman(read, window, sc);
  for (SwKernelMode mode : kAllModes) {
    SwAlignment got = RunKernel(read, window, sc, SwBand::Full(), mode);
    ExpectIdentical(want, got, ModeName(mode));
  }
  EXPECT_TRUE(want.aligned);
}

TEST(SwDifferentialTest, OverflowPromotionRerunsIn32Bit) {
  // A long high-identity read with a large match bonus saturates int16
  // (400 * 200 >> 32767); the kernel must transparently rerun in 32-bit
  // lanes and still match the oracle bit for bit.
  Rng rng(41);
  SwScoring sc;
  sc.match = 200;
  std::string window = RandomSeq(rng, 500);
  std::string read(window.substr(20, 400));
  read[100] = read[100] == 'A' ? 'C' : 'A';  // one mismatch for texture

  SwAlignment want = SmithWaterman(read, window, sc);
  ASSERT_TRUE(want.aligned);
  ASSERT_GT(want.score, INT16_MAX);

  SwKernelStats stats;
  SwAlignment got = RunKernel(read, window, sc, SwBand::Full(),
                              SwKernelMode::kBandedSimd, &stats);
  ExpectIdentical(want, got, "overflow rerun");
  EXPECT_EQ(stats.calls, 1);
  if (SwSimdAvailable()) {
    EXPECT_EQ(stats.simd_calls, 1);
    EXPECT_EQ(stats.overflow_reruns, 1);
  }
}

TEST(SwDifferentialTest, StatsCountSkippedCells) {
  Rng rng(5);
  std::string window = RandomSeq(rng, 148);
  std::string read(window.substr(24, 100));
  SwBand band;
  band.center = 24;
  band.half_width = 40;
  SwKernelStats stats;
  SwAlignment got =
      RunKernel(read, window, SwScoring(), band, SwKernelMode::kAuto, &stats);
  EXPECT_TRUE(got.aligned);
  EXPECT_EQ(stats.calls, 1);
  EXPECT_EQ(stats.cells_full, 100 * 148);
  EXPECT_GT(stats.cells_filled, 0);
  EXPECT_GT(stats.cells_skipped(), 0);
  EXPECT_LT(stats.cells_filled, stats.cells_full);
}

TEST(SwDifferentialTest, BatchKernelBitIdenticalToPerReadKernel) {
  // The vertical batched kernel packs same-geometry jobs one per SIMD
  // lane; every job must come out bit-identical to the per-read kernel,
  // including stats accounting, across uniform geometry (full lanes),
  // mixed geometry (grouping + remainders), and empty/degenerate jobs.
  Rng rng(20260809);
  SwScoring sc;
  for (int iter = 0; iter < 20; ++iter) {
    const bool uniform = iter % 2 == 0;
    const int n_jobs = 1 + static_cast<int>(rng.Uniform(70));
    std::vector<std::string> reads(n_jobs), windows(n_jobs);
    std::vector<SwBand> bands(n_jobs);
    const int base_n = 100 + static_cast<int>(rng.Uniform(80));
    const int base_len = 40 + static_cast<int>(rng.Uniform(40));
    for (int k = 0; k < n_jobs; ++k) {
      const int n = uniform ? base_n
                            : 40 + static_cast<int>(rng.Uniform(140));
      const int len = uniform
                          ? base_len
                          : 10 + static_cast<int>(rng.Uniform(n - 15));
      windows[k] = RandomSeq(rng, n);
      const int offset = static_cast<int>(rng.Uniform(n - len + 1));
      reads[k] = MutatedRead(rng, windows[k], offset, len,
                             static_cast<int>(rng.Uniform(5)),
                             static_cast<int>(rng.Uniform(3)),
                             static_cast<int>(rng.Uniform(6)));
      bands[k].center = uniform ? 24 : rng.UniformInt(-len, n);
      bands[k].half_width = uniform ? 40 : rng.UniformInt(0, 64);
    }
    if (iter == 5 && n_jobs > 2) reads[1].clear();  // empty-read job

    std::vector<SwAlignment> want(n_jobs), got(n_jobs);
    SwScratch scratch;
    SwKernelStats want_stats;
    for (int k = 0; k < n_jobs; ++k) {
      SmithWatermanKernel(reads[k], windows[k], sc, bands[k],
                          SwKernelMode::kAuto, &scratch, &want[k],
                          &want_stats);
    }
    std::vector<SwBatchJob> jobs(n_jobs);
    for (int k = 0; k < n_jobs; ++k) {
      jobs[k] = {reads[k], windows[k], bands[k], &got[k]};
    }
    SwBatchScratch batch;
    SwKernelStats got_stats;
    SmithWatermanBatch(jobs.data(), jobs.size(), sc, SwKernelMode::kAuto,
                       &scratch, &batch, &got_stats);
    for (int k = 0; k < n_jobs; ++k) {
      ExpectIdentical(want[k], got[k],
                      "iter " + std::to_string(iter) + " job " +
                          std::to_string(k));
    }
    EXPECT_EQ(want_stats.calls, got_stats.calls);
    EXPECT_EQ(want_stats.simd_calls, got_stats.simd_calls);
    EXPECT_EQ(want_stats.scalar_calls, got_stats.scalar_calls);
    EXPECT_EQ(want_stats.overflow_reruns, got_stats.overflow_reruns);
    EXPECT_EQ(want_stats.cells_full, got_stats.cells_full);
    EXPECT_EQ(want_stats.cells_filled, got_stats.cells_filled);
  }
}

TEST(SwDifferentialTest, BatchKernelHandlesPerLaneOverflow) {
  // One saturating job inside a full vector chunk must promote only that
  // lane to the 32-bit rerun and leave its neighbors untouched.
  Rng rng(17);
  SwScoring sc;
  sc.match = 200;
  const int kJobs = 20;
  std::vector<std::string> reads(kJobs), windows(kJobs);
  for (int k = 0; k < kJobs; ++k) {
    windows[k] = RandomSeq(rng, 500);
    if (k == 7) {
      reads[k] = windows[k].substr(20, 400);  // saturates: 400 * 200
    } else {
      reads[k] = MutatedRead(rng, windows[k], 20, 60, 3, 1, 2);
    }
    // Same geometry only when lengths match; force uniform sizes so the
    // saturating job shares a chunk with non-saturating neighbors.
    reads[k].resize(400, 'N');
  }
  std::vector<SwAlignment> want(kJobs), got(kJobs);
  SwScratch scratch;
  for (int k = 0; k < kJobs; ++k) {
    SmithWatermanKernel(reads[k], windows[k], sc, SwBand::Full(),
                        SwKernelMode::kAuto, &scratch, &want[k]);
  }
  std::vector<SwBatchJob> jobs(kJobs);
  for (int k = 0; k < kJobs; ++k) {
    jobs[k] = {reads[k], windows[k], SwBand::Full(), &got[k]};
  }
  SwBatchScratch batch;
  SwKernelStats stats;
  SmithWatermanBatch(jobs.data(), jobs.size(), sc, SwKernelMode::kAuto,
                     &scratch, &batch, &stats);
  for (int k = 0; k < kJobs; ++k) {
    ExpectIdentical(want[k], got[k], "job " + std::to_string(k));
  }
  EXPECT_GT(want[7].score, INT16_MAX);
  if (SwSimdAvailable()) EXPECT_EQ(stats.overflow_reruns, 1);
}

TEST(SwDifferentialTest, ScratchReuseAcrossShrinkingInputs) {
  // Buffers grow to the high-water mark; a large call followed by small
  // ones must not leave stale state behind.
  Rng rng(13);
  SwScoring sc;
  SwScratch scratch;
  SwAlignment out;
  std::string big_window = RandomSeq(rng, 300);
  std::string big_read = RandomSeq(rng, 150);
  SmithWatermanKernel(big_read, big_window, sc, SwBand::Full(),
                      SwKernelMode::kAuto, &scratch, &out);
  for (int iter = 0; iter < 50; ++iter) {
    const int n = 30 + static_cast<int>(rng.Uniform(100));
    std::string window = RandomSeq(rng, n);
    std::string read =
        MutatedRead(rng, window, 0, std::min(n, 40), 2, 1, 0);
    SwAlignment want = SmithWaterman(read, window, sc);
    SmithWatermanKernel(read, window, sc, SwBand::Full(),
                        SwKernelMode::kAuto, &scratch, &out);
    ExpectIdentical(want, out, "iter " + std::to_string(iter));
  }
}

}  // namespace
}  // namespace gesall

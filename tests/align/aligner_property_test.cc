// Property tests over the aligner's output: structural invariants that
// must hold for EVERY record it emits on simulated whole-genome samples.

#include <gtest/gtest.h>

#include "align/aligner.h"
#include "genome/read_simulator.h"
#include "genome/reference_generator.h"

namespace gesall {
namespace {

class AlignerPropertyTest : public testing::TestWithParam<uint64_t> {
 protected:
  static void SetUpTestSuite() {
    ReferenceGeneratorOptions ro;
    ro.num_chromosomes = 2;
    ro.chromosome_length = 80'000;
    ref_ = new ReferenceGenome(GenerateReference(ro));
    index_ = new GenomeIndex(*ref_);
  }
  static void TearDownTestSuite() {
    delete index_;
    delete ref_;
  }
  static ReferenceGenome* ref_;
  static GenomeIndex* index_;
};

ReferenceGenome* AlignerPropertyTest::ref_ = nullptr;
GenomeIndex* AlignerPropertyTest::index_ = nullptr;

TEST_P(AlignerPropertyTest, OutputInvariants) {
  DonorGenome donor = PlantVariants(*ref_, VariantPlanterOptions{});
  ReadSimulatorOptions so;
  so.coverage = 3.0;
  so.seed = GetParam();
  auto sample = SimulateReads(donor, so);
  auto interleaved =
      InterleavePairs(sample.mate1, sample.mate2).ValueOrDie();
  PairedEndAligner aligner(*index_);
  auto records = aligner.AlignPairs(interleaved);

  ASSERT_EQ(records.size(), interleaved.size());
  for (size_t i = 0; i < records.size(); ++i) {
    const SamRecord& r = records[i];
    SCOPED_TRACE(r.qname);

    // Pairing structure: interleaved mate order preserved.
    EXPECT_TRUE(r.IsPaired());
    EXPECT_EQ(r.IsFirstOfPair(), i % 2 == 0);
    EXPECT_EQ(r.qname, interleaved[i].name);

    if (r.IsUnmapped()) {
      EXPECT_TRUE(r.cigar.empty());
      EXPECT_EQ(r.mapq, 0);
      // Original sequence preserved verbatim.
      EXPECT_EQ(r.seq, interleaved[i].sequence);
      continue;
    }

    // CIGAR consumes the whole read.
    EXPECT_EQ(CigarQueryLength(r.cigar),
              static_cast<int64_t>(r.seq.size()));
    // Alignment lies within the chromosome.
    ASSERT_GE(r.ref_id, 0);
    ASSERT_LT(r.ref_id, 2);
    EXPECT_GE(r.pos, 0);
    EXPECT_LE(r.AlignmentEnd(),
              static_cast<int64_t>(
                  ref_->chromosomes[r.ref_id].sequence.size()));
    // MAPQ in range.
    EXPECT_GE(r.mapq, 0);
    EXPECT_LE(r.mapq, 60);
    // SEQ orientation: reverse-strand records store the reverse
    // complement of the input read.
    if (r.IsReverse()) {
      EXPECT_EQ(r.seq, ReverseComplement(interleaved[i].sequence));
    } else {
      EXPECT_EQ(r.seq, interleaved[i].sequence);
    }
    // Score tags present and sane.
    auto as = r.GetIntTag("AS");
    ASSERT_TRUE(as.has_value());
    EXPECT_GT(*as, 0);
    EXPECT_LE(*as, static_cast<int64_t>(r.seq.size()));
  }

  // Mate-field symmetry within each pair.
  for (size_t i = 0; i + 1 < records.size(); i += 2) {
    const SamRecord& a = records[i];
    const SamRecord& b = records[i + 1];
    EXPECT_EQ(a.qname, b.qname);
    if (!a.IsUnmapped() && !b.IsUnmapped()) {
      EXPECT_EQ(a.mate_pos, b.pos);
      EXPECT_EQ(b.mate_pos, a.pos);
      EXPECT_EQ(a.mate_ref_id, b.ref_id);
      EXPECT_EQ(a.IsMateReverse(), b.IsReverse());
      EXPECT_EQ(a.tlen, -b.tlen);
    }
    EXPECT_EQ(a.IsMateUnmapped(), b.IsUnmapped());
    EXPECT_EQ(b.IsMateUnmapped(), a.IsUnmapped());
  }
}

TEST_P(AlignerPropertyTest, DeterministicAcrossRuns) {
  DonorGenome donor = PlantVariants(*ref_, VariantPlanterOptions{});
  ReadSimulatorOptions so;
  so.coverage = 1.0;
  so.seed = GetParam();
  auto sample = SimulateReads(donor, so);
  auto interleaved =
      InterleavePairs(sample.mate1, sample.mate2).ValueOrDie();
  PairedEndAligner a(*index_), b(*index_);
  EXPECT_EQ(a.AlignPairs(interleaved), b.AlignPairs(interleaved));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlignerPropertyTest,
                         testing::Values(3u, 17u, 4242u));

}  // namespace
}  // namespace gesall

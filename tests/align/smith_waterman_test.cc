#include "align/smith_waterman.h"

#include <gtest/gtest.h>

namespace gesall {
namespace {

TEST(SmithWatermanTest, ExactMatch) {
  auto a = SmithWaterman("ACGTACGT", "TTACGTACGTTT");
  ASSERT_TRUE(a.aligned);
  EXPECT_EQ(a.score, 8);
  EXPECT_EQ(a.window_start, 2);
  EXPECT_EQ(a.window_end, 10);
  EXPECT_EQ(CigarToString(a.cigar), "8M");
  EXPECT_EQ(a.edit_distance, 0);
}

TEST(SmithWatermanTest, SingleMismatch) {
  //            v
  auto a = SmithWaterman("ACGTACGTACGT", "ACGTACCTACGT");
  ASSERT_TRUE(a.aligned);
  EXPECT_EQ(CigarToString(a.cigar), "12M");
  EXPECT_EQ(a.edit_distance, 1);
  EXPECT_EQ(a.score, 11 - 4);
}

TEST(SmithWatermanTest, SoftClipsUnalignableEnds) {
  // Read has 4 junk bases at the front.
  auto a = SmithWaterman("TTTTACGTACGTACGT", "GGACGTACGTACGTGG");
  ASSERT_TRUE(a.aligned);
  EXPECT_EQ(CigarToString(a.cigar), "4S12M");
}

TEST(SmithWatermanTest, TrailingSoftClip) {
  auto a = SmithWaterman("ACGTACGTACGTTTTT", "GGACGTACGTACGTGG");
  ASSERT_TRUE(a.aligned);
  EXPECT_EQ(CigarToString(a.cigar), "12M4S");
}

TEST(SmithWatermanTest, InsertionInRead) {
  // Read = ref with "GG" inserted in the middle; flanks long enough that
  // the gapped alignment strictly beats soft-clipping one side.
  std::string ref = "ACGTTGCAACGGATCCTAGGATCGATCGTTAACCGG";
  std::string read = ref.substr(0, 18) + "GG" + ref.substr(18);
  auto a = SmithWaterman(read, ref);
  ASSERT_TRUE(a.aligned);
  int64_t ins = 0, del = 0;
  for (const auto& op : a.cigar) {
    if (op.op == 'I') ins += op.len;
    if (op.op == 'D') del += op.len;
  }
  EXPECT_EQ(ins, 2);
  EXPECT_EQ(del, 0);
  EXPECT_EQ(a.score, 36 - 6 - 1);
}

TEST(SmithWatermanTest, DeletionInRead) {
  std::string ref = "ACGTTGCAACGGATCCTAGGATCGATCGTTAACCGG";
  std::string read = ref.substr(0, 17) + ref.substr(20);  // 3 bases gone
  auto a = SmithWaterman(read, ref);
  ASSERT_TRUE(a.aligned);
  int64_t del = 0;
  for (const auto& op : a.cigar) {
    if (op.op == 'D') del += op.len;
  }
  EXPECT_EQ(del, 3);
}

TEST(SmithWatermanTest, NoAlignmentBelowZero) {
  auto a = SmithWaterman("AAAA", "TTTT");
  EXPECT_FALSE(a.aligned);
}

TEST(SmithWatermanTest, EmptyInputs) {
  EXPECT_FALSE(SmithWaterman("", "ACGT").aligned);
  EXPECT_FALSE(SmithWaterman("ACGT", "").aligned);
}

TEST(SmithWatermanTest, CigarConsumesWholeRead) {
  std::string read = "TTTTACGTACGTACGTCCCC";
  auto a = SmithWaterman(read, "GGACGTACGTACGTGG");
  ASSERT_TRUE(a.aligned);
  EXPECT_EQ(CigarQueryLength(a.cigar), static_cast<int64_t>(read.size()));
}

TEST(SmithWatermanTest, ReferenceSpanMatchesCigar) {
  std::string ref = "ACACACTGGGTGTGCATCAT";
  std::string read = "ACACACTGTGTGCATCAT";
  auto a = SmithWaterman(read, ref);
  ASSERT_TRUE(a.aligned);
  EXPECT_EQ(a.window_end - a.window_start, CigarReferenceLength(a.cigar));
}

TEST(SmithWatermanTest, AffineGapPreferredOverScattered) {
  // With affine gaps, one contiguous 4-base deletion appears as a single
  // 'D' run rather than scattered gaps.
  SwScoring sc;
  std::string ref = "ACGTTGCAACGGATCCTAGGATCGATCGTTAACCGGACGT";
  std::string read = ref.substr(0, 20) + ref.substr(24);
  auto a = SmithWaterman(read, ref, sc);
  ASSERT_TRUE(a.aligned);
  int runs = 0;
  int64_t del = 0;
  for (const auto& op : a.cigar) {
    if (op.op == 'D') {
      ++runs;
      del += op.len;
    }
  }
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(del, 4);
}

TEST(SmithWatermanTest, ScoringParametersRespected) {
  SwScoring sc;
  sc.match = 2;
  auto a = SmithWaterman("ACGT", "ACGT", sc);
  ASSERT_TRUE(a.aligned);
  EXPECT_EQ(a.score, 8);
}

}  // namespace
}  // namespace gesall

#include "align/aligner.h"

#include <gtest/gtest.h>

#include <memory>

#include "genome/read_simulator.h"
#include "genome/reference_generator.h"
#include "util/rng.h"

namespace gesall {
namespace {

// Shared fixture: small genome + index is expensive to build, do it once.
class AlignerTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    ReferenceGeneratorOptions ro;
    ro.num_chromosomes = 2;
    ro.chromosome_length = 80'000;
    ref_ = new ReferenceGenome(GenerateReference(ro));
    index_ = new GenomeIndex(*ref_);
  }
  static void TearDownTestSuite() {
    delete index_;
    delete ref_;
    index_ = nullptr;
    ref_ = nullptr;
  }

  static ReferenceGenome* ref_;
  static GenomeIndex* index_;
};

ReferenceGenome* AlignerTest::ref_ = nullptr;
GenomeIndex* AlignerTest::index_ = nullptr;

TEST_F(AlignerTest, GenomeIndexCoordinateMapping) {
  int32_t chrom;
  int64_t pos;
  ASSERT_TRUE(index_->ToChromPos(0, &chrom, &pos));
  EXPECT_EQ(chrom, 0);
  EXPECT_EQ(pos, 0);
  ASSERT_TRUE(index_->ToChromPos(80'000, &chrom, &pos));
  EXPECT_EQ(chrom, 1);
  EXPECT_EQ(pos, 0);
  ASSERT_TRUE(index_->ToChromPos(159'999, &chrom, &pos));
  EXPECT_EQ(chrom, 1);
  EXPECT_EQ(pos, 79'999);
  EXPECT_FALSE(index_->ToChromPos(160'000, &chrom, &pos));
  EXPECT_EQ(index_->ToTextPos(1, 5), 80'005);
}

TEST_F(AlignerTest, ExactReadAlignsToOrigin) {
  ReadAligner aligner(*index_);
  const std::string& seq = ref_->chromosomes[1].sequence;
  std::string read = seq.substr(12'345, 100);
  auto alignments = aligner.AlignRead(read);
  ASSERT_FALSE(alignments.empty());
  EXPECT_EQ(alignments[0].ref_id, 1);
  EXPECT_EQ(alignments[0].pos, 12'345);
  EXPECT_FALSE(alignments[0].reverse);
  EXPECT_EQ(CigarToString(alignments[0].cigar), "100M");
  EXPECT_EQ(alignments[0].score, 100);
}

TEST_F(AlignerTest, ReverseComplementReadDetected) {
  ReadAligner aligner(*index_);
  const std::string& seq = ref_->chromosomes[0].sequence;
  std::string read = ReverseComplement(seq.substr(30'000, 100));
  auto alignments = aligner.AlignRead(read);
  ASSERT_FALSE(alignments.empty());
  EXPECT_EQ(alignments[0].ref_id, 0);
  EXPECT_EQ(alignments[0].pos, 30'000);
  EXPECT_TRUE(alignments[0].reverse);
}

TEST_F(AlignerTest, ReadWithMismatchesStillAligns) {
  ReadAligner aligner(*index_);
  std::string read = ref_->chromosomes[0].sequence.substr(44'000, 100);
  read[10] = read[10] == 'A' ? 'C' : 'A';
  read[60] = read[60] == 'G' ? 'T' : 'G';
  auto alignments = aligner.AlignRead(read);
  ASSERT_FALSE(alignments.empty());
  EXPECT_EQ(alignments[0].pos, 44'000);
  EXPECT_EQ(alignments[0].edit_distance, 2);
}

TEST_F(AlignerTest, JunkReadUnaligned) {
  ReadAligner aligner(*index_);
  // A read of alternating junk unlikely to seed anywhere.
  std::string junk;
  Rng rng(5);
  for (int i = 0; i < 100; ++i) junk += "ACGT"[rng.Uniform(4)];
  // Junk may occasionally align weakly; what matters is that a real read
  // scores far higher. Require either no alignment or low score.
  auto alignments = aligner.AlignRead(junk);
  if (!alignments.empty()) {
    EXPECT_LT(alignments[0].score, 60);
  }
}

TEST_F(AlignerTest, ShortReadRejected) {
  ReadAligner aligner(*index_);
  EXPECT_TRUE(aligner.AlignRead("ACGT").empty());
}

TEST_F(AlignerTest, AlignmentsSortedByScore) {
  ReadAligner aligner(*index_);
  std::string read = ref_->chromosomes[0].sequence.substr(20'000, 100);
  auto alignments = aligner.AlignRead(read);
  for (size_t i = 1; i < alignments.size(); ++i) {
    EXPECT_GE(alignments[i - 1].score, alignments[i].score);
  }
}

TEST_F(AlignerTest, PairedEndProperPair) {
  PairedEndAligner aligner(*index_);
  const std::string& seq = ref_->chromosomes[0].sequence;
  // Fragment [50000, 50400): mate1 forward at 50000, mate2 reverse.
  std::string frag = seq.substr(50'000, 400);
  std::vector<FastqRecord> interleaved = {
      {"p0", frag.substr(0, 100), std::string(100, 'I')},
      {"p0", ReverseComplement(frag.substr(300, 100)),
       std::string(100, 'I')},
  };
  auto records = aligner.AlignPairs(interleaved);
  ASSERT_EQ(records.size(), 2u);
  const SamRecord& r1 = records[0];
  const SamRecord& r2 = records[1];
  EXPECT_EQ(r1.qname, "p0");
  EXPECT_TRUE(r1.IsPaired());
  EXPECT_TRUE(r1.IsFirstOfPair());
  EXPECT_FALSE(r2.IsFirstOfPair());
  EXPECT_EQ(r1.pos, 50'000);
  EXPECT_EQ(r2.pos, 50'300);
  EXPECT_FALSE(r1.IsReverse());
  EXPECT_TRUE(r2.IsReverse());
  EXPECT_EQ(r1.mate_pos, r2.pos);
  EXPECT_EQ(r2.mate_pos, r1.pos);
  EXPECT_EQ(r1.tlen, 400);
  EXPECT_EQ(r2.tlen, -400);
  EXPECT_GT(r1.mapq, 30);
}

TEST_F(AlignerTest, JunkMateMarkedUnmapped) {
  PairedEndAligner aligner(*index_);
  const std::string& seq = ref_->chromosomes[0].sequence;
  Rng rng(17);
  std::string junk;
  for (int i = 0; i < 100; ++i) junk += "ACGT"[rng.Uniform(4)];
  std::vector<FastqRecord> interleaved = {
      {"p0", seq.substr(10'000, 100), std::string(100, 'I')},
      {"p0", junk, std::string(100, 'I')},
  };
  auto records = aligner.AlignPairs(interleaved);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_FALSE(records[0].IsUnmapped());
  if (records[1].IsUnmapped()) {
    EXPECT_TRUE(records[0].IsMateUnmapped());
    // Unmapped mate placed at the mapped mate's locus.
    EXPECT_EQ(records[1].ref_id, records[0].ref_id);
    EXPECT_EQ(records[1].pos, records[0].pos);
    EXPECT_EQ(records[1].mapq, 0);
  }
}

TEST_F(AlignerTest, SamSeqIsReverseComplementedForReverseStrand) {
  PairedEndAligner aligner(*index_);
  const std::string& seq = ref_->chromosomes[0].sequence;
  std::string frag = seq.substr(60'000, 400);
  std::string mate2_read = ReverseComplement(frag.substr(300, 100));
  std::vector<FastqRecord> interleaved = {
      {"p0", frag.substr(0, 100), std::string(100, 'I')},
      {"p0", mate2_read, std::string(100, 'I')},
  };
  auto records = aligner.AlignPairs(interleaved);
  // Mate2 aligned reverse: stored SEQ must match the forward reference.
  EXPECT_EQ(records[1].seq, frag.substr(300, 100));
}

TEST_F(AlignerTest, HeaderMatchesReference) {
  PairedEndAligner aligner(*index_);
  SamHeader h = aligner.MakeHeader();
  ASSERT_EQ(h.refs.size(), 2u);
  EXPECT_EQ(h.refs[0].name, "chr1");
  EXPECT_EQ(h.refs[0].length, 80'000);
}

TEST_F(AlignerTest, WholeSampleAlignmentAccuracy) {
  // End-to-end: simulate reads from a donor and check >95% of non-junk
  // pairs align within 5 bp of their true origin.
  auto donor = PlantVariants(*ref_, VariantPlanterOptions{});
  ReadSimulatorOptions so;
  so.coverage = 1.0;
  auto sample = SimulateReads(donor, so);
  auto interleaved =
      InterleavePairs(sample.mate1, sample.mate2).ValueOrDie();
  PairedEndAligner aligner(*index_);
  auto records = aligner.AlignPairs(interleaved);
  ASSERT_EQ(records.size(), interleaved.size());

  int64_t correct = 0, evaluated = 0;
  for (size_t i = 0; i < sample.truth.size(); ++i) {
    const auto& t = sample.truth[i];
    if (t.junk_mate2) continue;
    const SamRecord& r1 = records[2 * i];
    if (r1.IsUnmapped()) continue;
    ++evaluated;
    if (r1.ref_id == t.chrom && std::abs(r1.pos - t.ref_start) <= 5) {
      ++correct;
    }
  }
  ASSERT_GT(evaluated, 100);
  EXPECT_GT(correct / static_cast<double>(evaluated), 0.95);
}

TEST_F(AlignerTest, InsertStatsEstimation) {
  PairedEndAligner aligner(*index_);
  // Construct synthetic candidate lists: 100 confident pairs at insert 400.
  std::vector<std::vector<Alignment>> c1, c2;
  for (int i = 0; i < 100; ++i) {
    Alignment fwd;
    fwd.ref_id = 0;
    fwd.pos = 1000 * i;
    fwd.reverse = false;
    fwd.cigar = {{'M', 100}};
    fwd.score = 100;
    Alignment rev = fwd;
    rev.pos = 1000 * i + 300;
    rev.reverse = true;
    c1.push_back({fwd});
    c2.push_back({rev});
  }
  auto stats = aligner.EstimateInsertStats(c1, c2);
  EXPECT_EQ(stats.samples, 100);
  EXPECT_DOUBLE_EQ(stats.mean, 400.0);
  EXPECT_DOUBLE_EQ(stats.sd, 1.0);  // clamped minimum
}

TEST_F(AlignerTest, FallbackInsertStatsWhenTooFewSamples) {
  PairedEndAligner aligner(*index_);
  auto stats = aligner.EstimateInsertStats({}, {});
  EXPECT_EQ(stats.samples, 0);
  EXPECT_DOUBLE_EQ(stats.mean, 400.0);
  EXPECT_DOUBLE_EQ(stats.sd, 60.0);
}

TEST_F(AlignerTest, PartitioningChangesSomeResults) {
  // The paper's core accuracy finding: running the aligner on partitioned
  // input produces slightly different results than one serial run.
  auto donor = PlantVariants(*ref_, VariantPlanterOptions{});
  ReadSimulatorOptions so;
  so.coverage = 2.0;
  auto sample = SimulateReads(donor, so);
  auto interleaved =
      InterleavePairs(sample.mate1, sample.mate2).ValueOrDie();

  PairedAlignerOptions po;
  po.batch_size = 512;
  PairedEndAligner aligner(*index_, po);

  auto serial = aligner.AlignPairs(interleaved);

  // "Parallel": split into 4 partitions at pair boundaries and align each.
  std::vector<SamRecord> parallel;
  size_t n_pairs = interleaved.size() / 2;
  size_t per_part = n_pairs / 4;
  for (int p = 0; p < 4; ++p) {
    size_t begin = 2 * p * per_part;
    size_t end = p == 3 ? interleaved.size() : 2 * (p + 1) * per_part;
    std::vector<FastqRecord> part(interleaved.begin() + begin,
                                  interleaved.begin() + end);
    auto out = aligner.AlignPairs(part);
    parallel.insert(parallel.end(), out.begin(), out.end());
  }
  ASSERT_EQ(parallel.size(), serial.size());

  int64_t discordant = 0;
  for (size_t i = 0; i < serial.size(); ++i) {
    if (serial[i].pos != parallel[i].pos ||
        serial[i].ref_id != parallel[i].ref_id ||
        serial[i].flag != parallel[i].flag) {
      ++discordant;
    }
  }
  // Most reads agree; a small tail differs (hard-to-map regions).
  EXPECT_LT(discordant, static_cast<int64_t>(serial.size() / 20));
}

}  // namespace
}  // namespace gesall

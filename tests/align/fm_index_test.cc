#include "align/fm_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace gesall {
namespace {

std::vector<int64_t> NaiveOccurrences(const std::string& text,
                                      const std::string& pattern) {
  std::vector<int64_t> out;
  size_t pos = text.find(pattern);
  while (pos != std::string::npos) {
    out.push_back(static_cast<int64_t>(pos));
    pos = text.find(pattern, pos + 1);
  }
  return out;
}

std::string RandomDna(Rng& rng, int len) {
  std::string s(len, 'A');
  for (auto& c : s) c = "ACGT"[rng.Uniform(4)];
  return s;
}

TEST(FmIndexTest, FindsAllOccurrences) {
  std::string text = "ACGTACGTTACGT";
  FmIndex fm(text);
  SaInterval hit = fm.Search("ACGT");
  EXPECT_EQ(hit.size(), 3);
  auto positions = fm.LocateAll(hit, 100);
  std::sort(positions.begin(), positions.end());
  EXPECT_EQ(positions, (std::vector<int64_t>{0, 4, 9}));
}

TEST(FmIndexTest, AbsentPatternEmpty) {
  FmIndex fm("ACGTACGT");
  EXPECT_TRUE(fm.Search("TTTT").empty());
}

TEST(FmIndexTest, InvalidCharacterNeverMatches) {
  FmIndex fm("ACGTACGT");
  EXPECT_TRUE(fm.Search("ACNG").empty());
}

TEST(FmIndexTest, TextLength) {
  FmIndex fm("ACGT");
  EXPECT_EQ(fm.text_length(), 4);
}

TEST(FmIndexTest, MatchesNaiveOnRandomText) {
  Rng rng(11);
  std::string text = RandomDna(rng, 5000);
  FmIndex fm(text);
  for (int trial = 0; trial < 50; ++trial) {
    int plen = 4 + static_cast<int>(rng.Uniform(20));
    // Half the probes are substrings (guaranteed hits).
    std::string pattern;
    if (trial % 2 == 0) {
      int64_t start = rng.Uniform(text.size() - plen);
      pattern = text.substr(start, plen);
    } else {
      pattern = RandomDna(rng, plen);
    }
    auto expected = NaiveOccurrences(text, pattern);
    SaInterval hit = fm.Search(pattern);
    ASSERT_EQ(hit.size(), static_cast<int64_t>(expected.size()))
        << pattern;
    auto got = fm.LocateAll(hit, 10'000);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << pattern;
  }
}

TEST(FmIndexTest, LocateConsistentAcrossSampleRates) {
  Rng rng(13);
  std::string text = RandomDna(rng, 2000);
  FmIndex fm1(text, /*sa_sample_rate=*/1);
  FmIndex fm8(text, /*sa_sample_rate=*/8);
  FmIndex fm32(text, /*sa_sample_rate=*/32);
  for (int trial = 0; trial < 20; ++trial) {
    int64_t start = rng.Uniform(text.size() - 12);
    std::string pattern = text.substr(start, 12);
    auto a = fm1.LocateAll(fm1.Search(pattern), 1000);
    auto b = fm8.LocateAll(fm8.Search(pattern), 1000);
    auto c = fm32.LocateAll(fm32.Search(pattern), 1000);
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    std::sort(c.begin(), c.end());
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, c);
  }
}

TEST(FmIndexTest, ExtendLeftIncremental) {
  std::string text = "ACGTACGTTACGT";
  FmIndex fm(text);
  // Building "CGT" by extending T <- GT <- CGT must equal direct search.
  SaInterval step = fm.WholeInterval();
  step = fm.ExtendLeft(step, 'T');
  step = fm.ExtendLeft(step, 'G');
  step = fm.ExtendLeft(step, 'C');
  SaInterval direct = fm.Search("CGT");
  EXPECT_EQ(step.lo, direct.lo);
  EXPECT_EQ(step.hi, direct.hi);
}

TEST(FmIndexTest, WholeIntervalCoversEverySuffix) {
  FmIndex fm("ACGT");
  EXPECT_EQ(fm.WholeInterval().size(), 5);  // 4 + sentinel
}

TEST(FmIndexTest, RepetitiveTextManyHits) {
  std::string text;
  for (int i = 0; i < 100; ++i) text += "ACGT";
  FmIndex fm(text);
  SaInterval hit = fm.Search("ACGTACGT");
  EXPECT_EQ(hit.size(), 99 - 1 + 1);
  auto some = fm.LocateAll(hit, 5);
  EXPECT_EQ(some.size(), 5u);
}

}  // namespace
}  // namespace gesall

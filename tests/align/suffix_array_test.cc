#include "align/suffix_array.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.h"

namespace gesall {
namespace {

std::vector<int32_t> NaiveSuffixArray(const std::string& text) {
  std::vector<int32_t> sa(text.size());
  for (size_t i = 0; i < sa.size(); ++i) sa[i] = static_cast<int32_t>(i);
  std::sort(sa.begin(), sa.end(), [&](int32_t a, int32_t b) {
    return text.compare(a, std::string::npos, text, b, std::string::npos) < 0;
  });
  return sa;
}

std::string WithSentinel(std::string s) {
  s.push_back('\0');
  return s;
}

TEST(SuffixArrayTest, Banana) {
  std::string text = WithSentinel("banana");
  EXPECT_EQ(BuildSuffixArray(text), NaiveSuffixArray(text));
}

TEST(SuffixArrayTest, Empty) {
  EXPECT_TRUE(BuildSuffixArray("").empty());
}

TEST(SuffixArrayTest, SingleChar) {
  std::string text = WithSentinel("a");
  EXPECT_EQ(BuildSuffixArray(text), (std::vector<int32_t>{1, 0}));
}

TEST(SuffixArrayTest, AllSameCharacter) {
  std::string text = WithSentinel(std::string(100, 'G'));
  EXPECT_EQ(BuildSuffixArray(text), NaiveSuffixArray(text));
}

TEST(SuffixArrayTest, MatchesNaiveOnRandomDna) {
  Rng rng(42);
  for (int trial = 0; trial < 20; ++trial) {
    std::string s;
    int len = 1 + static_cast<int>(rng.Uniform(500));
    for (int i = 0; i < len; ++i) s.push_back("ACGT"[rng.Uniform(4)]);
    std::string text = WithSentinel(s);
    ASSERT_EQ(BuildSuffixArray(text), NaiveSuffixArray(text))
        << "trial " << trial;
  }
}

TEST(SuffixArrayTest, MatchesNaiveOnRepetitiveText) {
  std::string s;
  for (int i = 0; i < 50; ++i) s += "ACGTACG";
  std::string text = WithSentinel(s);
  EXPECT_EQ(BuildSuffixArray(text), NaiveSuffixArray(text));
}

TEST(SuffixArrayTest, IsPermutation) {
  Rng rng(7);
  std::string s;
  for (int i = 0; i < 1000; ++i) s.push_back("ACGT"[rng.Uniform(4)]);
  auto sa = BuildSuffixArray(WithSentinel(s));
  std::vector<int32_t> sorted = sa;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) {
    EXPECT_EQ(sorted[i], static_cast<int32_t>(i));
  }
}

}  // namespace
}  // namespace gesall

#include "analysis/mark_duplicates.h"

#include <gtest/gtest.h>

namespace gesall {
namespace {

// Builds a complete pair at (pos1 fwd, pos2 rev) with a given base
// quality character.
std::vector<SamRecord> Pair(const std::string& name, int64_t pos1,
                            int64_t pos2, char qual = 'I') {
  SamRecord a;
  a.qname = name;
  a.flag = sam_flags::kPaired | sam_flags::kFirstOfPair;
  a.ref_id = 0;
  a.pos = pos1;
  a.mapq = 60;
  a.cigar = {{'M', 100}};
  a.seq = std::string(100, 'A');
  a.qual = std::string(100, qual);
  SamRecord b = a;
  b.flag = sam_flags::kPaired | sam_flags::kSecondOfPair |
           sam_flags::kReverse;
  b.pos = pos2;
  return {a, b};
}

std::vector<SamRecord> PartialPair(const std::string& name, int64_t pos,
                                   bool reverse = false, char qual = 'I') {
  auto pair = Pair(name, pos, pos, qual);
  pair[1].SetFlag(sam_flags::kUnmapped, true);
  pair[1].cigar.clear();
  pair[1].mapq = 0;
  pair[0].SetFlag(sam_flags::kMateUnmapped, true);
  if (reverse) pair[0].SetFlag(sam_flags::kReverse, true);
  return pair;
}

void Append(std::vector<SamRecord>* out, std::vector<SamRecord> recs) {
  for (auto& r : recs) out->push_back(std::move(r));
}

TEST(ReadEndKeyTest, ForwardUsesUnclippedStart) {
  SamRecord r;
  r.ref_id = 2;
  r.pos = 1000;
  r.cigar = ParseCigar("5S95M").ValueOrDie();
  ReadEndKey k = KeyOf(r);
  EXPECT_EQ(k.ref_id, 2);
  EXPECT_EQ(k.unclipped_5p, 995);
  EXPECT_FALSE(k.reverse);
}

TEST(ReadEndKeyTest, FingerprintDistinguishes) {
  ReadEndKey a{0, 100, false}, b{0, 100, true}, c{0, 101, false};
  EXPECT_NE(a.Fingerprint(), b.Fingerprint());
  EXPECT_NE(a.Fingerprint(), c.Fingerprint());
  EXPECT_EQ(a.Fingerprint(), (ReadEndKey{0, 100, false}).Fingerprint());
}

TEST(MarkDuplicatesTest, IdenticalPairsOneSurvives) {
  std::vector<SamRecord> records;
  Append(&records, Pair("p1", 100, 400, 'I'));
  Append(&records, Pair("p2", 100, 400, '5'));  // lower quality
  auto stats = MarkDuplicates(&records).ValueOrDie();
  EXPECT_EQ(stats.complete_pairs, 2);
  EXPECT_EQ(stats.duplicate_pairs, 1);
  // p1 has higher quality: p2 is the duplicate.
  EXPECT_FALSE(records[0].IsDuplicate());
  EXPECT_FALSE(records[1].IsDuplicate());
  EXPECT_TRUE(records[2].IsDuplicate());
  EXPECT_TRUE(records[3].IsDuplicate());
}

TEST(MarkDuplicatesTest, DistinctPositionsKept) {
  std::vector<SamRecord> records;
  Append(&records, Pair("p1", 100, 400));
  Append(&records, Pair("p2", 101, 400));
  Append(&records, Pair("p3", 100, 401));
  auto stats = MarkDuplicates(&records).ValueOrDie();
  EXPECT_EQ(stats.duplicate_pairs, 0);
  for (const auto& r : records) EXPECT_FALSE(r.IsDuplicate());
}

TEST(MarkDuplicatesTest, ClippingDoesNotHideDuplicates) {
  // Same fragment, one alignment soft-clipped: 5' unclipped ends match.
  std::vector<SamRecord> records;
  Append(&records, Pair("p1", 100, 400));
  auto clipped = Pair("p2", 105, 400, '5');
  clipped[0].cigar = ParseCigar("5S95M").ValueOrDie();  // unclipped = 100
  Append(&records, std::move(clipped));
  auto stats = MarkDuplicates(&records).ValueOrDie();
  EXPECT_EQ(stats.duplicate_pairs, 1);
  EXPECT_TRUE(records[2].IsDuplicate());
}

TEST(MarkDuplicatesTest, TieBrokenByName) {
  // Equal quality: deterministic winner is the smaller read name.
  std::vector<SamRecord> records;
  Append(&records, Pair("pB", 100, 400));
  Append(&records, Pair("pA", 100, 400));
  auto stats = MarkDuplicates(&records).ValueOrDie();
  EXPECT_EQ(stats.duplicate_pairs, 1);
  EXPECT_TRUE(records[0].IsDuplicate());   // pB loses
  EXPECT_FALSE(records[2].IsDuplicate());  // pA wins
}

TEST(MarkDuplicatesTest, OrderIndependentOutput) {
  // The paper relies on parallel == serial for identical input; our
  // implementation must be insensitive to record group order.
  std::vector<SamRecord> forward, backward;
  Append(&forward, Pair("p1", 100, 400, 'I'));
  Append(&forward, Pair("p2", 100, 400, '5'));
  Append(&forward, Pair("p3", 200, 600, '5'));
  backward.insert(backward.end(), forward.begin() + 4, forward.end());
  backward.insert(backward.end(), forward.begin() + 2, forward.begin() + 4);
  backward.insert(backward.end(), forward.begin(), forward.begin() + 2);
  ASSERT_TRUE(MarkDuplicates(&forward).ok());
  ASSERT_TRUE(MarkDuplicates(&backward).ok());
  auto dup_names = [](const std::vector<SamRecord>& rs) {
    std::set<std::string> names;
    for (const auto& r : rs) {
      if (r.IsDuplicate()) names.insert(r.qname);
    }
    return names;
  };
  EXPECT_EQ(dup_names(forward), dup_names(backward));
}

TEST(MarkDuplicatesTest, PartialMatchingAgainstCompletePair) {
  // Paper Fig. 4: partial pair R7 coincides with a complete-pair read end
  // and is marked as a duplicate.
  std::vector<SamRecord> records;
  Append(&records, Pair("p1", 100, 400));
  Append(&records, PartialPair("p7", 100));  // same 5' end as p1's mate 1
  auto stats = MarkDuplicates(&records).ValueOrDie();
  EXPECT_EQ(stats.partial_pairs, 1);
  EXPECT_EQ(stats.duplicate_partials, 1);
  EXPECT_TRUE(records[2].IsDuplicate());
  EXPECT_FALSE(records[0].IsDuplicate());  // complete pair never flagged
}

TEST(MarkDuplicatesTest, PartialVersusPartialQualityContest) {
  std::vector<SamRecord> records;
  Append(&records, PartialPair("pa", 5000, false, 'I'));
  Append(&records, PartialPair("pb", 5000, false, '5'));
  auto stats = MarkDuplicates(&records).ValueOrDie();
  EXPECT_EQ(stats.duplicate_partials, 1);
  EXPECT_FALSE(records[0].IsDuplicate());
  EXPECT_TRUE(records[2].IsDuplicate());
}

TEST(MarkDuplicatesTest, PartialDifferentStrandNotDuplicate) {
  std::vector<SamRecord> records;
  Append(&records, PartialPair("pa", 5000, false));
  Append(&records, PartialPair("pb", 5000, true));
  auto stats = MarkDuplicates(&records).ValueOrDie();
  EXPECT_EQ(stats.duplicate_partials, 0);
}

TEST(MarkDuplicatesTest, ResetsPreviousFlags) {
  std::vector<SamRecord> records;
  Append(&records, Pair("p1", 100, 400));
  records[0].SetFlag(sam_flags::kDuplicate, true);
  records[1].SetFlag(sam_flags::kDuplicate, true);
  ASSERT_TRUE(MarkDuplicates(&records).ok());
  EXPECT_FALSE(records[0].IsDuplicate());
  EXPECT_FALSE(records[1].IsDuplicate());
}

TEST(MarkDuplicatesTest, RejectsUngroupedInput) {
  std::vector<SamRecord> records;
  auto p1 = Pair("p1", 100, 400);
  auto p2 = Pair("p2", 100, 400);
  records = {p1[0], p2[0], p1[1], p2[1]};
  EXPECT_TRUE(MarkDuplicates(&records).status().IsInvalidArgument());
}

TEST(MarkDuplicatesTest, BothUnmappedIgnored) {
  std::vector<SamRecord> records;
  auto p = Pair("p1", 100, 400);
  for (auto& r : p) {
    r.SetFlag(sam_flags::kUnmapped, true);
    r.cigar.clear();
  }
  Append(&records, std::move(p));
  auto stats = MarkDuplicates(&records).ValueOrDie();
  EXPECT_EQ(stats.complete_pairs, 0);
  EXPECT_EQ(stats.partial_pairs, 0);
}

}  // namespace
}  // namespace gesall

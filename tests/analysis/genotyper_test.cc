#include "analysis/genotyper.h"

#include <gtest/gtest.h>

#include <set>

namespace gesall {
namespace {

ReferenceGenome UniformRef(char base = 'A', int64_t len = 2000) {
  ReferenceGenome g;
  g.chromosomes.push_back({"chr1", std::string(len, base)});
  return g;
}

SamRecord ReadAt(int64_t pos, const std::string& seq,
                 uint16_t flags = 0) {
  SamRecord r;
  r.qname = "r" + std::to_string(pos) + "_" + std::to_string(flags);
  r.flag = flags;
  r.ref_id = 0;
  r.pos = pos;
  r.mapq = 60;
  r.cigar = {{'M', static_cast<int32_t>(seq.size())}};
  r.seq = seq;
  r.qual = std::string(seq.size(), 'I');
  return r;
}

// 30 reads covering [0, 50); `alt_every` of them carry G at position 25.
std::vector<SamRecord> SnpStack(int n_reads, int n_alt) {
  std::vector<SamRecord> records;
  for (int i = 0; i < n_reads; ++i) {
    std::string seq(50, 'A');
    if (i < n_alt) seq[25] = 'G';
    records.push_back(
        ReadAt(0, seq, i % 2 == 0 ? 0 : sam_flags::kReverse));
    records.back().qname = "r" + std::to_string(i);
  }
  return records;
}

TEST(CallSnpSiteTest, HetCalled) {
  auto ref = UniformRef();
  auto records = SnpStack(30, 15);
  auto pileup = RegionPileup::Build(records, 0, 0, 50);
  PileupColumn col = pileup.at(25);
  GenotyperOptions opt;
  auto v = CallSnpSite('A', col, 0, 25, opt);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->ref, "A");
  EXPECT_EQ(v->alt, "G");
  EXPECT_EQ(v->genotype, Genotype::kHet);
  EXPECT_GT(v->qual, 100);
  EXPECT_EQ(v->dp, 30);
  EXPECT_NEAR(v->ab, 0.5, 0.01);
  EXPECT_NEAR(v->mq, 60.0, 0.01);
  EXPECT_LT(v->fs, 10.0);  // alt spread across both strands
}

TEST(CallSnpSiteTest, HomCalled) {
  auto records = SnpStack(30, 30);
  auto pileup = RegionPileup::Build(records, 0, 0, 50);
  auto v = CallSnpSite('A', pileup.at(25), 0, 25, GenotyperOptions{});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->genotype, Genotype::kHomAlt);
  EXPECT_NEAR(v->ab, 1.0, 0.01);
}

TEST(CallSnpSiteTest, CleanReferenceNotCalled) {
  auto records = SnpStack(30, 0);
  auto pileup = RegionPileup::Build(records, 0, 0, 50);
  EXPECT_FALSE(
      CallSnpSite('A', pileup.at(25), 0, 25, GenotyperOptions{}).has_value());
}

TEST(CallSnpSiteTest, SingleErrorNotCalled) {
  auto records = SnpStack(30, 1);
  auto pileup = RegionPileup::Build(records, 0, 0, 50);
  EXPECT_FALSE(
      CallSnpSite('A', pileup.at(25), 0, 25, GenotyperOptions{}).has_value());
}

TEST(CallSnpSiteTest, LowDepthNotCalled) {
  auto records = SnpStack(3, 2);
  auto pileup = RegionPileup::Build(records, 0, 0, 50);
  EXPECT_FALSE(
      CallSnpSite('A', pileup.at(25), 0, 25, GenotyperOptions{}).has_value());
}

TEST(CallSnpSiteTest, StrandBiasReflectedInFs) {
  // All alt reads on the forward strand only.
  std::vector<SamRecord> records;
  for (int i = 0; i < 40; ++i) {
    std::string seq(50, 'A');
    bool alt = i < 20;
    if (alt) seq[25] = 'G';
    // alt reads all forward; ref reads all reverse.
    records.push_back(ReadAt(0, seq, alt ? 0 : sam_flags::kReverse));
    records.back().qname = "r" + std::to_string(i);
  }
  auto pileup = RegionPileup::Build(records, 0, 0, 50);
  auto v = CallSnpSite('A', pileup.at(25), 0, 25, GenotyperOptions{});
  ASSERT_TRUE(v.has_value());
  EXPECT_GT(v->fs, 30.0);
}

TEST(CallIndelSiteTest, InsertionCalled) {
  auto ref = UniformRef();
  std::vector<SamRecord> records;
  for (int i = 0; i < 20; ++i) {
    SamRecord r = ReadAt(0, std::string(52, 'A'));
    r.qname = "r" + std::to_string(i);
    if (i < 10) {
      r.cigar = ParseCigar("26M2I24M").ValueOrDie();
      r.seq[26] = 'G';
      r.seq[27] = 'G';
    } else {
      r.seq.resize(50);
      r.cigar = ParseCigar("50M").ValueOrDie();
    }
    records.push_back(std::move(r));
  }
  auto pileup = RegionPileup::Build(records, 0, 0, 60);
  auto v = CallIndelSite(ref, pileup.at(25), 0, 25, GenotyperOptions{});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->ref, "A");
  EXPECT_EQ(v->alt, "AGG");
  EXPECT_EQ(v->genotype, Genotype::kHet);
}

TEST(CallIndelSiteTest, DeletionCalled) {
  auto ref = UniformRef();
  std::vector<SamRecord> records;
  for (int i = 0; i < 20; ++i) {
    SamRecord r = ReadAt(0, std::string(50, 'A'));
    r.qname = "r" + std::to_string(i);
    r.cigar = ParseCigar("26M3D24M").ValueOrDie();
    records.push_back(std::move(r));
  }
  auto pileup = RegionPileup::Build(records, 0, 0, 60);
  auto v = CallIndelSite(ref, pileup.at(25), 0, 25, GenotyperOptions{});
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->ref.size(), 4u);
  EXPECT_EQ(v->alt.size(), 1u);
  EXPECT_EQ(v->genotype, Genotype::kHomAlt);
}

TEST(CallIndelSiteTest, FewObservationsNotCalled) {
  auto ref = UniformRef();
  std::vector<SamRecord> records;
  for (int i = 0; i < 30; ++i) {
    SamRecord r = ReadAt(0, std::string(50, 'A'));
    r.qname = "r" + std::to_string(i);
    if (i < 2) r.cigar = ParseCigar("26M3D24M").ValueOrDie();
    records.push_back(std::move(r));
  }
  auto pileup = RegionPileup::Build(records, 0, 0, 60);
  EXPECT_FALSE(
      CallIndelSite(ref, pileup.at(25), 0, 25, GenotyperOptions{})
          .has_value());
}

TEST(DownsampleTest, ShallowColumnUntouched) {
  PileupColumn col;
  for (int i = 0; i < 10; ++i) col.entries.push_back({'A', 40, 60, false});
  Rng rng(1);
  uint64_t before = rng.Next();
  Rng rng2(1);
  DownsampleColumn(&col, 100, &rng2);
  EXPECT_EQ(col.depth(), 10);
  // RNG state untouched for shallow columns.
  EXPECT_EQ(rng2.Next(), before);
}

TEST(DownsampleTest, DeepColumnReduced) {
  PileupColumn col;
  for (int i = 0; i < 500; ++i) {
    col.entries.push_back({"ACGT"[i % 4], 40, 60, false});
  }
  Rng rng(1);
  DownsampleColumn(&col, 100, &rng);
  EXPECT_EQ(col.depth(), 100);
}

TEST(DownsampleTest, RngStateDependence) {
  // Different RNG states select different subsets — the mechanism behind
  // partitioning-sensitive caller output.
  auto make_col = [] {
    PileupColumn col;
    for (int i = 0; i < 500; ++i) {
      col.entries.push_back({'A', i % 40, 60, false});
    }
    return col;
  };
  PileupColumn a = make_col(), b = make_col();
  Rng rng1(1), rng2(2);
  DownsampleColumn(&a, 100, &rng1);
  DownsampleColumn(&b, 100, &rng2);
  bool same = true;
  for (int i = 0; i < 100; ++i) same &= a.entries[i].qual == b.entries[i].qual;
  EXPECT_FALSE(same);
}

TEST(UnifiedGenotyperTest, RegionRespected) {
  auto ref = UniformRef();
  auto records = SnpStack(30, 15);
  UnifiedGenotyper ug(ref);
  auto in_range = ug.CallRegion(records, 0, 0, 50);
  EXPECT_EQ(in_range.size(), 1u);
  UnifiedGenotyper ug2(ref);
  auto out_of_range = ug2.CallRegion(records, 0, 30, 50);
  EXPECT_TRUE(out_of_range.empty());
}

TEST(UnifiedGenotyperTest, ChromosomeCallMatchesRegionCall) {
  auto ref = UniformRef('A', 5000);
  auto records = SnpStack(30, 15);
  UnifiedGenotyper a(ref), b(ref);
  auto whole = a.CallChromosome(records, 0);
  auto region = b.CallRegion(records, 0, 0, 5000);
  ASSERT_EQ(whole.size(), region.size());
  for (size_t i = 0; i < whole.size(); ++i) {
    EXPECT_EQ(whole[i].Key(), region[i].Key());
  }
}

}  // namespace
}  // namespace gesall

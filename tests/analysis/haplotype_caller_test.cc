#include "analysis/haplotype_caller.h"

#include <gtest/gtest.h>

#include <set>

#include "align/aligner.h"
#include "analysis/steps.h"
#include "genome/read_simulator.h"
#include "genome/reference_generator.h"

namespace gesall {
namespace {

TEST(SegmentActiveWindowsTest, NoActivityNoWindows) {
  std::vector<double> activity(1000, 0.0);
  auto w = SegmentActiveWindows(activity, 0, 1000, HaplotypeCallerOptions{});
  EXPECT_TRUE(w.empty());
}

TEST(SegmentActiveWindowsTest, SingleSpikeMakesMinWindow) {
  HaplotypeCallerOptions opt;
  std::vector<double> activity(1000, 0.0);
  activity[500] = 0.5;
  auto w = SegmentActiveWindows(activity, 0, 1000, opt);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_GE(w[0].end - w[0].start, opt.min_window);
  EXPECT_LE(w[0].start, 500);
  EXPECT_GT(w[0].end, 500);
}

TEST(SegmentActiveWindowsTest, NearbySpikesMerge) {
  HaplotypeCallerOptions opt;
  std::vector<double> activity(1000, 0.0);
  activity[500] = 0.5;
  activity[510] = 0.5;  // within window_gap of 500
  auto w = SegmentActiveWindows(activity, 0, 1000, opt);
  EXPECT_EQ(w.size(), 1u);
}

TEST(SegmentActiveWindowsTest, DistantSpikesSeparate) {
  HaplotypeCallerOptions opt;
  std::vector<double> activity(1000, 0.0);
  activity[200] = 0.5;
  activity[700] = 0.5;
  auto w = SegmentActiveWindows(activity, 0, 1000, opt);
  EXPECT_EQ(w.size(), 2u);
}

TEST(SegmentActiveWindowsTest, MaxWindowEnforced) {
  HaplotypeCallerOptions opt;
  std::vector<double> activity(2000, 0.5);  // everything active
  auto w = SegmentActiveWindows(activity, 0, 2000, opt);
  ASSERT_GT(w.size(), 1u);
  for (const auto& win : w) {
    EXPECT_LE(win.end - win.start, opt.max_window + 2 * opt.window_pad);
  }
}

TEST(SegmentActiveWindowsTest, RegionOffsetsHonored) {
  HaplotypeCallerOptions opt;
  std::vector<double> activity(100, 0.0);
  activity[50] = 0.5;  // absolute position 1050
  auto w = SegmentActiveWindows(activity, 1000, 1100, opt);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_GE(w[0].start, 1000);
  EXPECT_LE(w[0].end, 1100);
  EXPECT_LE(w[0].start, 1050);
  EXPECT_GT(w[0].end, 1050);
}

TEST(SegmentActiveWindowsTest, TrailingWindowClosed) {
  HaplotypeCallerOptions opt;
  std::vector<double> activity(100, 0.0);
  activity[99] = 0.5;
  auto w = SegmentActiveWindows(activity, 0, 100, opt);
  ASSERT_EQ(w.size(), 1u);
  EXPECT_EQ(w[0].end, 100);
}

// End-to-end: simulate → align → clean → sort → HC call → compare truth.
class HaplotypeCallerPipelineTest : public testing::Test {
 protected:
  static void SetUpTestSuite() {
    ReferenceGeneratorOptions ro;
    ro.num_chromosomes = 2;
    ro.chromosome_length = 120'000;
    ref_ = new ReferenceGenome(GenerateReference(ro));
    donor_ = new DonorGenome(PlantVariants(*ref_, VariantPlanterOptions{}));
    ReadSimulatorOptions so;
    so.coverage = 30.0;
    auto sample = SimulateReads(*donor_, so);
    auto interleaved =
        InterleavePairs(sample.mate1, sample.mate2).ValueOrDie();
    GenomeIndex index(*ref_);
    PairedEndAligner aligner(index);
    records_ = new std::vector<SamRecord>(aligner.AlignPairs(interleaved));
    header_ = new SamHeader(aligner.MakeHeader());
    CleanSam(*header_, records_);
    SortSamByCoordinate(header_, records_);
  }
  static void TearDownTestSuite() {
    delete records_;
    delete header_;
    delete donor_;
    delete ref_;
  }

  static ReferenceGenome* ref_;
  static DonorGenome* donor_;
  static std::vector<SamRecord>* records_;
  static SamHeader* header_;
};

ReferenceGenome* HaplotypeCallerPipelineTest::ref_ = nullptr;
DonorGenome* HaplotypeCallerPipelineTest::donor_ = nullptr;
std::vector<SamRecord>* HaplotypeCallerPipelineTest::records_ = nullptr;
SamHeader* HaplotypeCallerPipelineTest::header_ = nullptr;

TEST_F(HaplotypeCallerPipelineTest, SensitivityAndPrecisionAgainstTruth) {
  HaplotypeCaller hc(*ref_);
  auto calls = hc.CallAll(*records_);
  ASSERT_GT(calls.size(), 50u);

  std::set<std::string> truth_keys;
  for (const auto& v : donor_->truth) {
    VariantRecord t;
    t.chrom = v.chrom;
    t.pos = v.pos;
    t.ref = v.ref;
    t.alt = v.alt;
    truth_keys.insert(t.Key());
  }
  int64_t tp = 0;
  for (const auto& c : calls) tp += truth_keys.count(c.Key()) > 0;
  double precision = tp / static_cast<double>(calls.size());
  double sensitivity = tp / static_cast<double>(truth_keys.size());
  // SNP-dominated truth on clean synthetic data: expect strong recovery.
  EXPECT_GT(precision, 0.85);
  EXPECT_GT(sensitivity, 0.6);
}

TEST_F(HaplotypeCallerPipelineTest, UnifiedGenotyperAlsoRecoversTruth) {
  UnifiedGenotyper ug(*ref_);
  auto calls = ug.CallAll(*records_);
  ASSERT_GT(calls.size(), 50u);
  std::set<std::string> truth_keys;
  for (const auto& v : donor_->truth) {
    VariantRecord t;
    t.chrom = v.chrom;
    t.pos = v.pos;
    t.ref = v.ref;
    t.alt = v.alt;
    truth_keys.insert(t.Key());
  }
  int64_t tp = 0;
  for (const auto& c : calls) tp += truth_keys.count(c.Key()) > 0;
  EXPECT_GT(tp / static_cast<double>(calls.size()), 0.85);
}

TEST_F(HaplotypeCallerPipelineTest, ChromosomePartitioningNearlySerial) {
  // Chromosome-level partitioning: one HC instance per chromosome versus
  // one serial instance. Differences are possible (downsampling RNG) but
  // must be a small fraction (paper: "slightly different results").
  HaplotypeCaller serial(*ref_);
  auto serial_calls = serial.CallAll(*records_);

  std::vector<VariantRecord> parallel_calls;
  for (size_t c = 0; c < ref_->chromosomes.size(); ++c) {
    HaplotypeCaller per_chrom(*ref_);  // fresh instance per partition
    auto part = per_chrom.CallChromosome(*records_,
                                         static_cast<int32_t>(c));
    parallel_calls.insert(parallel_calls.end(), part.begin(), part.end());
  }
  std::set<std::string> s_keys, p_keys;
  for (const auto& v : serial_calls) s_keys.insert(v.Key());
  for (const auto& v : parallel_calls) p_keys.insert(v.Key());
  std::vector<std::string> discordant;
  std::set_symmetric_difference(s_keys.begin(), s_keys.end(), p_keys.begin(),
                                p_keys.end(),
                                std::back_inserter(discordant));
  EXPECT_LT(discordant.size(), s_keys.size() / 20 + 10);
}

TEST_F(HaplotypeCallerPipelineTest, OverlappingRegionsMatchWholeChromosome) {
  // Gesall's fine-grained scheme: overlapping segments with emit ranges
  // reproduce the whole-chromosome walk when overlap >= max window.
  HaplotypeCallerOptions opt;
  HaplotypeCaller whole(*ref_);
  auto expected = whole.CallChromosome(*records_, 0);

  const int64_t len =
      static_cast<int64_t>(ref_->chromosomes[0].sequence.size());
  const int64_t overlap = opt.max_window + opt.window_pad;
  std::vector<VariantRecord> pieces;
  const int64_t step = 30'000;
  for (int64_t s = 0; s < len; s += step) {
    int64_t e = std::min(len, s + step);
    HaplotypeCaller part(*ref_);
    auto out = part.CallRegion(*records_, 0, std::max<int64_t>(0, s - overlap),
                               std::min(len, e + overlap), s, e);
    pieces.insert(pieces.end(), out.begin(), out.end());
  }
  std::set<std::string> exp_keys, got_keys;
  for (const auto& v : expected) exp_keys.insert(v.Key());
  for (const auto& v : pieces) got_keys.insert(v.Key());
  std::vector<std::string> discordant;
  std::set_symmetric_difference(exp_keys.begin(), exp_keys.end(),
                                got_keys.begin(), got_keys.end(),
                                std::back_inserter(discordant));
  // Bounded boundary error (paper §3.2-3: "bound the probability of
  // errors produced by this scheme").
  EXPECT_LT(discordant.size(), exp_keys.size() / 20 + 5);
}

}  // namespace
}  // namespace gesall

#include "analysis/recalibration.h"

#include <gtest/gtest.h>

namespace gesall {
namespace {

ReferenceGenome SmallRef() {
  ReferenceGenome g;
  g.chromosomes.push_back({"chr1", std::string(1000, 'A')});
  return g;
}

SamRecord ReadAt(int64_t pos, const std::string& seq, char qual_char = 'I') {
  SamRecord r;
  r.qname = "r";
  r.ref_id = 0;
  r.pos = pos;
  r.mapq = 60;
  r.cigar = {{'M', static_cast<int32_t>(seq.size())}};
  r.seq = seq;
  r.qual = std::string(seq.size(), qual_char);
  r.SetTag("RG", 'Z', "rg1");
  return r;
}

TEST(RecalibrationTableTest, EmpiricalQualityFromCounts) {
  RecalibrationTable t;
  CovariateKey k{"rg1", 40, 0, 'A'};
  // 1000 observations, 10 mismatches -> p ~ 0.011 -> Q ~ 20.
  for (int i = 0; i < 990; ++i) t.Observe(k, false);
  for (int i = 0; i < 10; ++i) t.Observe(k, true);
  EXPECT_NEAR(t.EmpiricalQuality(k), 20, 1);
}

TEST(RecalibrationTableTest, UnseenKeyKeepsReportedQuality) {
  RecalibrationTable t;
  CovariateKey k{"rg1", 37, 2, 'C'};
  EXPECT_EQ(t.EmpiricalQuality(k), 37);
}

TEST(RecalibrationTableTest, MergeAddsCounts) {
  RecalibrationTable a, b;
  CovariateKey k{"rg1", 40, 0, 'A'};
  for (int i = 0; i < 50; ++i) a.Observe(k, i < 25);
  for (int i = 0; i < 50; ++i) b.Observe(k, false);
  a.Merge(b);
  EXPECT_EQ(a.total_observations(), 100);
  EXPECT_EQ(a.total_mismatches(), 25);
}

TEST(RecalibrationTableTest, SerializationRoundTrip) {
  RecalibrationTable t;
  t.Observe({"rg1", 40, 0, 'A'}, true);
  t.Observe({"rg2", 30, 5, 'G'}, false);
  auto restored = RecalibrationTable::Deserialize(t.Serialize()).ValueOrDie();
  EXPECT_EQ(restored.size(), 2u);
  EXPECT_EQ(restored.total_observations(), 2);
  EXPECT_EQ(restored.total_mismatches(), 1);
}

TEST(BaseRecalibratorTest, CountsMismatchesAgainstReference) {
  auto ref = SmallRef();
  // Reference is all-A; read "AAAC" has one mismatch.
  std::vector<SamRecord> records = {ReadAt(100, "AAAC")};
  auto table = BaseRecalibrator(ref, records);
  EXPECT_EQ(table.total_observations(), 4);
  EXPECT_EQ(table.total_mismatches(), 1);
}

TEST(BaseRecalibratorTest, SkipsDuplicates) {
  auto ref = SmallRef();
  SamRecord dup = ReadAt(100, "AAAC");
  dup.SetFlag(sam_flags::kDuplicate, true);
  auto table = BaseRecalibrator(ref, {dup});
  EXPECT_EQ(table.total_observations(), 0);
}

TEST(BaseRecalibratorTest, PerPartitionTablesMergeToSerialTable) {
  // The GDPT covariate-partitioning contract: building tables on
  // partitions and merging equals building one table serially.
  auto ref = SmallRef();
  std::vector<SamRecord> all = {ReadAt(10, "AAAA"), ReadAt(20, "AACA"),
                                ReadAt(30, "CAAA", '5'),
                                ReadAt(40, "AAAA", '5')};
  auto serial = BaseRecalibrator(ref, all);
  auto part1 = BaseRecalibrator(
      ref, std::vector<SamRecord>(all.begin(), all.begin() + 2));
  auto part2 = BaseRecalibrator(
      ref, std::vector<SamRecord>(all.begin() + 2, all.end()));
  part1.Merge(part2);
  EXPECT_EQ(part1.Serialize(), serial.Serialize());
}

TEST(PrintReadsTest, RewritesQualitiesFromTable) {
  auto ref = SmallRef();
  // Train: reported Q40 bases actually mismatch 10% of the time.
  std::vector<SamRecord> train;
  for (int i = 0; i < 100; ++i) {
    // 10-base reads; one mismatching base each -> 10% mismatch rate.
    std::string seq = "AAAAAAAAAC";
    train.push_back(ReadAt(i * 10, seq));
  }
  auto table = BaseRecalibrator(ref, train);
  std::vector<SamRecord> apply = {ReadAt(500, "AAAAAAAAAA")};
  std::string before = apply[0].qual;
  PrintReads(table, &apply);
  EXPECT_NE(apply[0].qual, before);
  // Mid-read bases in context 'A' at Q40 should drop to ~Q10.
  int q5 = apply[0].qual[5] - 33;
  EXPECT_LT(q5, 20);
  EXPECT_GT(q5, 5);
}

TEST(PrintReadsTest, UncoveredCovariatesUnchanged) {
  RecalibrationTable empty;
  std::vector<SamRecord> records = {ReadAt(500, "AAAA")};
  std::string before = records[0].qual;
  PrintReads(empty, &records);
  EXPECT_EQ(records[0].qual, before);
}

}  // namespace
}  // namespace gesall

#include "analysis/pileup.h"

#include <gtest/gtest.h>

namespace gesall {
namespace {

SamRecord Read(int64_t pos, const std::string& seq, const char* cigar,
               int mapq = 60, uint16_t flags = 0) {
  SamRecord r;
  r.qname = "r";
  r.flag = flags;
  r.ref_id = 0;
  r.pos = pos;
  r.mapq = mapq;
  r.cigar = ParseCigar(cigar).ValueOrDie();
  r.seq = seq;
  r.qual = std::string(seq.size(), 'I');
  return r;
}

TEST(PileupTest, SimpleMatchColumns) {
  std::vector<SamRecord> records = {Read(10, "ACGT", "4M"),
                                    Read(12, "GTAC", "4M")};
  auto p = RegionPileup::Build(records, 0, 0, 20);
  EXPECT_EQ(p.at(10).depth(), 1);
  EXPECT_EQ(p.at(12).depth(), 2);
  EXPECT_EQ(p.at(12).entries[0].base, 'G');
  EXPECT_EQ(p.at(12).entries[1].base, 'G');
  EXPECT_EQ(p.at(16).depth(), 0);
}

TEST(PileupTest, SoftClipSkipped) {
  // 2S2M: only the last two bases align, at pos 10-11.
  std::vector<SamRecord> records = {Read(10, "TTGG", "2S2M")};
  auto p = RegionPileup::Build(records, 0, 0, 20);
  EXPECT_EQ(p.at(10).depth(), 1);
  EXPECT_EQ(p.at(10).entries[0].base, 'G');
  EXPECT_EQ(p.at(12).depth(), 0);
}

TEST(PileupTest, InsertionAnchored) {
  // 2M2I2M: insertion "GG" anchored at ref pos 11 (base before event).
  std::vector<SamRecord> records = {Read(10, "ACGGTT", "2M2I2M")};
  auto p = RegionPileup::Build(records, 0, 0, 20);
  ASSERT_EQ(p.at(11).indels.size(), 1u);
  EXPECT_EQ(p.at(11).indels[0].inserted, "GG");
  EXPECT_EQ(p.at(11).indels[0].deleted, 0);
  // The bases after the insertion continue at ref 12.
  EXPECT_EQ(p.at(12).entries[0].base, 'T');
}

TEST(PileupTest, DeletionAnchored) {
  // 2M3D2M: deletion of 3 ref bases anchored at pos 11.
  std::vector<SamRecord> records = {Read(10, "ACTT", "2M3D2M")};
  auto p = RegionPileup::Build(records, 0, 0, 20);
  ASSERT_EQ(p.at(11).indels.size(), 1u);
  EXPECT_EQ(p.at(11).indels[0].deleted, 3);
  // Deleted positions have no base entries from this read.
  EXPECT_EQ(p.at(12).depth(), 0);
  EXPECT_EQ(p.at(15).entries[0].base, 'T');
}

TEST(PileupTest, FiltersRespected) {
  PileupOptions opt;
  opt.min_mapq = 20;
  std::vector<SamRecord> records = {
      Read(10, "ACGT", "4M", /*mapq=*/10),
      Read(10, "ACGT", "4M", 60, sam_flags::kDuplicate),
      Read(10, "ACGT", "4M", 60, sam_flags::kSecondary),
      Read(10, "ACGT", "4M", 60, sam_flags::kUnmapped),
      Read(10, "ACGT", "4M", 60),
  };
  auto p = RegionPileup::Build(records, 0, 0, 20, opt);
  EXPECT_EQ(p.at(10).depth(), 1);
}

TEST(PileupTest, LowBaseQualitySkipped) {
  PileupOptions opt;
  opt.min_base_qual = 20;
  SamRecord r = Read(10, "ACGT", "4M");
  r.qual = "I!I!";  // phred 40, 0, 40, 0
  auto p = RegionPileup::Build({r}, 0, 0, 20, opt);
  EXPECT_EQ(p.at(10).depth(), 1);
  EXPECT_EQ(p.at(11).depth(), 0);
  EXPECT_EQ(p.at(12).depth(), 1);
}

TEST(PileupTest, RegionBoundariesRespected) {
  std::vector<SamRecord> records = {Read(10, std::string(20, 'A'), "20M")};
  auto p = RegionPileup::Build(records, 0, 15, 25);
  EXPECT_EQ(p.at(15).depth(), 1);
  EXPECT_EQ(p.at(24).depth(), 1);
  EXPECT_EQ(p.start(), 15);
  EXPECT_EQ(p.end(), 25);
}

TEST(PileupTest, WrongChromosomeSkipped) {
  SamRecord r = Read(10, "ACGT", "4M");
  r.ref_id = 3;
  auto p = RegionPileup::Build({r}, 0, 0, 20);
  EXPECT_EQ(p.at(10).depth(), 0);
}

TEST(PileupTest, StrandRecorded) {
  std::vector<SamRecord> records = {
      Read(10, "ACGT", "4M"),
      Read(10, "ACGT", "4M", 60, sam_flags::kReverse)};
  auto p = RegionPileup::Build(records, 0, 0, 20);
  ASSERT_EQ(p.at(10).depth(), 2);
  EXPECT_FALSE(p.at(10).entries[0].reverse);
  EXPECT_TRUE(p.at(10).entries[1].reverse);
}

}  // namespace
}  // namespace gesall

#include "analysis/steps.h"

#include <gtest/gtest.h>

namespace gesall {
namespace {

SamHeader TestHeader() {
  SamHeader h;
  h.refs = {{"chr1", 1000}, {"chr2", 500}};
  return h;
}

SamRecord Mapped(const std::string& name, int32_t ref, int64_t pos,
                 uint16_t extra_flags = 0) {
  SamRecord r;
  r.qname = name;
  r.flag = sam_flags::kPaired | extra_flags;
  r.ref_id = ref;
  r.pos = pos;
  r.mapq = 60;
  r.cigar = {{'M', 100}};
  r.seq = std::string(100, 'A');
  r.qual = std::string(100, 'I');
  return r;
}

TEST(SamToBamTest, ProducesReadableBam) {
  SamHeader h = TestHeader();
  std::vector<SamRecord> records = {Mapped("r1", 0, 10)};
  auto bam = SamToBam(h, records).ValueOrDie();
  auto [ph, pr] = ReadBam(bam).ValueOrDie();
  EXPECT_EQ(pr, records);
}

TEST(AddReplaceReadGroupsTest, TagsEveryRecord) {
  SamHeader h = TestHeader();
  std::vector<SamRecord> records = {Mapped("r1", 0, 10), Mapped("r2", 0, 20)};
  ReadGroup rg{"rg9", "NA12878", "lib1"};
  ASSERT_TRUE(AddReplaceReadGroups(rg, &h, &records).ok());
  ASSERT_EQ(h.read_groups.size(), 1u);
  EXPECT_EQ(h.read_groups[0].id, "rg9");
  for (const auto& r : records) EXPECT_EQ(r.GetTag("RG"), "rg9");
}

TEST(AddReplaceReadGroupsTest, ReplacesExistingGroup) {
  SamHeader h = TestHeader();
  std::vector<SamRecord> records = {Mapped("r1", 0, 10)};
  records[0].SetTag("RG", 'Z', "old");
  ASSERT_TRUE(
      AddReplaceReadGroups({"new", "s", "l"}, &h, &records).ok());
  EXPECT_EQ(records[0].GetTag("RG"), "new");
}

TEST(AddReplaceReadGroupsTest, RejectsEmptyId) {
  SamHeader h = TestHeader();
  std::vector<SamRecord> records;
  EXPECT_TRUE(
      AddReplaceReadGroups({"", "s", "l"}, &h, &records).IsInvalidArgument());
}

TEST(CleanSamTest, ClipsOverhangAtReferenceEnd) {
  SamHeader h = TestHeader();
  // chr2 has length 500; alignment at 450 with 100M overhangs by 50.
  std::vector<SamRecord> records = {Mapped("r1", 1, 450)};
  auto stats = CleanSam(h, &records);
  EXPECT_EQ(stats.clipped_overhangs, 1);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].AlignmentEnd(), 500);
  EXPECT_EQ(CigarToString(records[0].cigar), "50M50S");
  // Read length must still be fully consumed.
  EXPECT_EQ(CigarQueryLength(records[0].cigar), 100);
}

TEST(CleanSamTest, NormalizesUnmapped) {
  SamHeader h = TestHeader();
  SamRecord r = Mapped("r1", 0, 10);
  r.SetFlag(sam_flags::kUnmapped, true);  // unmapped but cigar/mapq set
  std::vector<SamRecord> records = {r};
  auto stats = CleanSam(h, &records);
  EXPECT_EQ(stats.unmapped_normalized, 1);
  EXPECT_TRUE(records[0].cigar.empty());
  EXPECT_EQ(records[0].mapq, 0);
}

TEST(CleanSamTest, DropsCigarLengthMismatch) {
  SamHeader h = TestHeader();
  SamRecord r = Mapped("r1", 0, 10);
  r.cigar = {{'M', 50}};  // consumes 50 but seq is 100
  std::vector<SamRecord> records = {r, Mapped("r2", 0, 10)};
  auto stats = CleanSam(h, &records);
  EXPECT_EQ(stats.dropped_invalid, 1);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].qname, "r2");
}

TEST(CleanSamTest, CleanInputUntouched) {
  SamHeader h = TestHeader();
  std::vector<SamRecord> records = {Mapped("r1", 0, 10)};
  auto before = records;
  auto stats = CleanSam(h, &records);
  EXPECT_EQ(stats.clipped_overhangs, 0);
  EXPECT_EQ(stats.dropped_invalid, 0);
  EXPECT_EQ(records, before);
}

TEST(FixMateInfoTest, SetsMateFields) {
  std::vector<SamRecord> records = {Mapped("p1", 0, 100),
                                    Mapped("p1", 0, 400)};
  records[1].SetFlag(sam_flags::kReverse, true);
  // Break the mate info on purpose.
  records[0].mate_ref_id = -1;
  records[0].mate_pos = -1;
  records[0].tlen = 0;
  ASSERT_TRUE(FixMateInformation(&records).ok());
  EXPECT_EQ(records[0].mate_ref_id, 0);
  EXPECT_EQ(records[0].mate_pos, 400);
  EXPECT_TRUE(records[0].IsMateReverse());
  EXPECT_EQ(records[0].tlen, 400);
  EXPECT_EQ(records[1].tlen, -400);
}

TEST(FixMateInfoTest, UnmappedMateAdoptsCoordinates) {
  std::vector<SamRecord> records = {Mapped("p1", 0, 100),
                                    Mapped("p1", 0, 100)};
  records[1].SetFlag(sam_flags::kUnmapped, true);
  records[1].ref_id = -1;
  records[1].pos = -1;
  ASSERT_TRUE(FixMateInformation(&records).ok());
  EXPECT_TRUE(records[0].IsMateUnmapped());
  EXPECT_EQ(records[0].mate_ref_id, 0);
  EXPECT_EQ(records[0].mate_pos, 100);
  EXPECT_EQ(records[0].tlen, 0);
}

TEST(FixMateInfoTest, RejectsUngroupedInput) {
  std::vector<SamRecord> records = {Mapped("p1", 0, 100),
                                    Mapped("p2", 0, 400)};
  EXPECT_TRUE(FixMateInformation(&records).IsInvalidArgument());
}

TEST(SortSamTest, CoordinateOrder) {
  SamHeader h = TestHeader();
  std::vector<SamRecord> records = {Mapped("a", 1, 50), Mapped("b", 0, 99),
                                    Mapped("c", 0, 10)};
  SamRecord unmapped;
  unmapped.qname = "u";
  unmapped.flag = sam_flags::kUnmapped;
  records.push_back(unmapped);
  SortSamByCoordinate(&h, &records);
  EXPECT_EQ(h.sort_order, "coordinate");
  EXPECT_EQ(records[0].qname, "c");
  EXPECT_EQ(records[1].qname, "b");
  EXPECT_EQ(records[2].qname, "a");
  EXPECT_EQ(records[3].qname, "u");  // unmapped last
}

TEST(SortSamTest, NameOrder) {
  SamHeader h = TestHeader();
  std::vector<SamRecord> records = {Mapped("z", 0, 1), Mapped("a", 0, 2),
                                    Mapped("m", 0, 3)};
  SortSamByName(&h, &records);
  EXPECT_EQ(h.sort_order, "queryname");
  EXPECT_EQ(records[0].qname, "a");
  EXPECT_EQ(records[2].qname, "z");
}

}  // namespace
}  // namespace gesall

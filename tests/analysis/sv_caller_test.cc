#include "analysis/sv_caller.h"

#include <gtest/gtest.h>

#include "align/aligner.h"
#include "analysis/steps.h"
#include "genome/read_simulator.h"
#include "genome/reference_generator.h"
#include "genome/sv_planter.h"

namespace gesall {
namespace {

using CallType = StructuralVariantCall::Type;

// --- Unit tests on hand-built discordant pairs -------------------------

SamRecord Pair1(int32_t chrom, int64_t pos, int32_t mate_chrom,
                int64_t mate_pos, bool reverse, bool mate_reverse,
                int64_t tlen) {
  SamRecord r;
  r.qname = "p" + std::to_string(pos);
  r.flag = sam_flags::kPaired | sam_flags::kFirstOfPair;
  r.ref_id = chrom;
  r.pos = pos;
  r.mapq = 60;
  r.cigar = {{'M', 100}};
  r.mate_ref_id = mate_chrom;
  r.mate_pos = mate_pos;
  r.tlen = tlen;
  if (reverse) r.SetFlag(sam_flags::kReverse, true);
  if (mate_reverse) r.SetFlag(sam_flags::kMateReverse, true);
  r.seq = std::string(100, 'A');
  r.qual = std::string(100, 'I');
  return r;
}

TEST(SvCallerUnitTest, DeletionFromLongSpans) {
  std::vector<SamRecord> records;
  for (int i = 0; i < 6; ++i) {
    // Convergent pairs spanning 2400 bases (library mean 400).
    records.push_back(Pair1(0, 10'000 + 10 * i, 0, 12'300 + 10 * i,
                            false, true, 2400));
    records.back().qname = "d" + std::to_string(i);
  }
  auto calls = CallStructuralVariants(records);
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0].type, CallType::kDeletion);
  EXPECT_EQ(calls[0].support, 6);
  EXPECT_NEAR(static_cast<double>(calls[0].start), 10'120, 50);
  EXPECT_NEAR(static_cast<double>(calls[0].end), 12'320, 50);
}

TEST(SvCallerUnitTest, InversionFromSameStrandPairs) {
  std::vector<SamRecord> records;
  for (int i = 0; i < 5; ++i) {
    records.push_back(Pair1(1, 40'000 + 15 * i, 1, 41'500 + 15 * i,
                            false, false, 1500));  // both forward
    records.back().qname = "v" + std::to_string(i);
  }
  auto calls = CallStructuralVariants(records);
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0].type, CallType::kInversion);
  EXPECT_EQ(calls[0].chrom, 1);
}

TEST(SvCallerUnitTest, TranslocationFromCrossChromosomePairs) {
  std::vector<SamRecord> records;
  for (int i = 0; i < 5; ++i) {
    records.push_back(Pair1(0, 20'000 + 20 * i, 2, 70'000 + 20 * i,
                            false, true, 0));
    records.back().qname = "t" + std::to_string(i);
  }
  auto calls = CallStructuralVariants(records);
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0].type, CallType::kTranslocation);
  EXPECT_EQ(calls[0].chrom, 0);
  EXPECT_EQ(calls[0].chrom2, 2);
  EXPECT_NEAR(static_cast<double>(calls[0].pos2), 70'040, 60);
}

TEST(SvCallerUnitTest, ConcordantPairsProduceNoCalls) {
  std::vector<SamRecord> records;
  for (int i = 0; i < 50; ++i) {
    records.push_back(
        Pair1(0, 1000 * i, 0, 1000 * i + 300, false, true, 400));
    records.back().qname = "c" + std::to_string(i);
  }
  EXPECT_TRUE(CallStructuralVariants(records).empty());
}

TEST(SvCallerUnitTest, MinSupportRespected) {
  std::vector<SamRecord> records;
  for (int i = 0; i < 3; ++i) {  // below min_support = 4
    records.push_back(Pair1(0, 10'000 + 10 * i, 0, 12'300 + 10 * i,
                            false, true, 2400));
    records.back().qname = "d" + std::to_string(i);
  }
  EXPECT_TRUE(CallStructuralVariants(records).empty());
}

TEST(SvCallerUnitTest, LowMapqFiltered) {
  std::vector<SamRecord> records;
  for (int i = 0; i < 6; ++i) {
    auto r = Pair1(0, 10'000 + 10 * i, 0, 12'300 + 10 * i, false, true,
                   2400);
    r.mapq = 5;
    r.qname = "d" + std::to_string(i);
    records.push_back(std::move(r));
  }
  EXPECT_TRUE(CallStructuralVariants(records).empty());
}

// --- End-to-end: plant SVs, simulate, align, detect --------------------

TEST(SvCallerPipelineTest, RecoversPlantedDeletionsAndInsertions) {
  ReferenceGeneratorOptions ro;
  ro.num_chromosomes = 1;
  ro.chromosome_length = 150'000;
  auto ref = GenerateReference(ro);
  VariantPlanterOptions vp;
  vp.snp_rate = 0.0005;
  vp.indel_rate = 0.0;
  auto donor = PlantVariants(ref, vp);
  SvPlanterOptions sv_opt;
  sv_opt.deletions_per_chromosome = 2;
  sv_opt.insertions_per_chromosome = 0;
  sv_opt.inversions_per_chromosome = 0;
  sv_opt.min_length = 1'500;
  sv_opt.max_length = 2'500;
  auto svs = PlantStructuralVariants(&donor, sv_opt);
  ASSERT_EQ(svs.size(), 2u);

  ReadSimulatorOptions so;
  so.coverage = 20.0;
  auto sample = SimulateReads(donor, so);
  GenomeIndex index(ref);
  PairedEndAligner aligner(index);
  auto interleaved =
      InterleavePairs(sample.mate1, sample.mate2).ValueOrDie();
  auto records = aligner.AlignPairs(interleaved);
  SamHeader header = aligner.MakeHeader();
  ASSERT_TRUE(FixMateInformation(&records).ok());

  auto calls = CallStructuralVariants(records);
  // Every planted deletion must be recovered within library slack.
  for (const auto& sv : svs) {
    bool found = false;
    for (const auto& call : calls) {
      if (call.type != CallType::kDeletion) continue;
      if (std::abs(call.start - sv.start) < 600 &&
          std::abs(call.end - sv.end) < 600) {
        found = true;
      }
    }
    EXPECT_TRUE(found) << "deletion at " << sv.start << ".." << sv.end;
  }
  // And no flood of false calls.
  EXPECT_LE(calls.size(), 4u);
}

TEST(SvCallerPipelineTest, RecoversPlantedInversion) {
  ReferenceGeneratorOptions ro;
  ro.num_chromosomes = 1;
  ro.chromosome_length = 120'000;
  auto ref = GenerateReference(ro);
  VariantPlanterOptions vp;
  vp.snp_rate = 0.0;
  vp.indel_rate = 0.0;
  auto donor = PlantVariants(ref, vp);
  SvPlanterOptions sv_opt;
  sv_opt.deletions_per_chromosome = 0;
  sv_opt.insertions_per_chromosome = 0;
  sv_opt.inversions_per_chromosome = 1;
  sv_opt.min_length = 2'000;
  sv_opt.max_length = 3'000;
  auto svs = PlantStructuralVariants(&donor, sv_opt);
  ASSERT_EQ(svs.size(), 1u);

  ReadSimulatorOptions so;
  so.coverage = 25.0;
  auto sample = SimulateReads(donor, so);
  GenomeIndex index(ref);
  PairedEndAligner aligner(index);
  auto interleaved =
      InterleavePairs(sample.mate1, sample.mate2).ValueOrDie();
  auto records = aligner.AlignPairs(interleaved);
  ASSERT_TRUE(FixMateInformation(&records).ok());

  auto calls = CallStructuralVariants(records);
  bool found = false;
  for (const auto& call : calls) {
    if (call.type != CallType::kInversion) continue;
    if (call.start > svs[0].start - 800 && call.end < svs[0].end + 800) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "inversion at " << svs[0].start << ".."
                     << svs[0].end;
}

}  // namespace
}  // namespace gesall

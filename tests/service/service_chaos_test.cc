// Multi-tenant chaos acceptance: three tenants run concurrently through
// one GesallService on one shared DFS while one tenant's job is hit by a
// node crash AND block corruption. The victim must recover through the
// existing fetch-epoch / re-replication machinery, and — the isolation
// guarantee — every other tenant's output must stay byte-identical to a
// solo fault-free baseline of the same sample.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "dfs/dfs.h"
#include "genome/read_simulator.h"
#include "genome/reference_generator.h"
#include "service/service.h"
#include "util/fault_injection.h"

namespace gesall {
namespace {

constexpr uint64_t kChaosSeed = 2017;

std::vector<std::string> VariantKeys(const std::vector<VariantRecord>& vs) {
  std::vector<std::string> keys;
  keys.reserve(vs.size());
  for (const auto& v : vs) {
    std::ostringstream os;
    os << v.Key() << "@" << v.qual;
    keys.push_back(os.str());
  }
  return keys;
}

class ServiceChaosTest : public testing::Test {
 protected:
  static constexpr int kNumTenants = 3;

  static DfsOptions MakeDfsOptions() {
    DfsOptions dopt;
    dopt.block_size = 64 * 1024;
    // Replication 3: a block whose first replica rots and whose second
    // sits on the crashed node still has a healthy copy.
    dopt.replication = 3;
    dopt.num_data_nodes = 4;
    dopt.heartbeat_miss_threshold = 1;
    // Keep every node usable under the every-first-replica fault
    // pattern (blacklisting has its own unit tests).
    dopt.blacklist_threshold = 1 << 20;
    return dopt;
  }

  static PipelineConfig MakePipelineConfig() {
    PipelineConfig config;
    config.alignment_partitions = 3;
    config.max_parallel_tasks = 2;
    return config;
  }

  static void SetUpTestSuite() {
    ReferenceGeneratorOptions ro;
    ro.num_chromosomes = 1;
    ro.chromosome_length = 30'000;
    ref_ = new ReferenceGenome(GenerateReference(ro));
    donor_ = new DonorGenome(PlantVariants(*ref_, VariantPlanterOptions{}));
    index_ = new GenomeIndex(*ref_);
    // Three distinct samples, one per tenant.
    for (int i = 0; i < kNumTenants; ++i) {
      ReadSimulatorOptions so;
      so.coverage = 6.0;
      so.seed = 3 + 4 * static_cast<uint64_t>(i);
      samples_[i] = new SimulatedSample(SimulateReads(*donor_, so));
      // Solo fault-free baseline: same sample, same pipeline shape, a
      // private healthy DFS.
      Dfs dfs(MakeDfsOptions());
      GesallPipeline solo(*ref_, *index_, &dfs, MakePipelineConfig());
      ASSERT_TRUE(
          solo.LoadSample(samples_[i]->mate1, samples_[i]->mate2).ok());
      auto variants = solo.RunAll();
      ASSERT_TRUE(variants.ok()) << variants.status().ToString();
      baselines_[i] =
          new std::vector<VariantRecord>(variants.MoveValueUnsafe());
    }
  }

  static void TearDownTestSuite() {
    for (int i = 0; i < kNumTenants; ++i) {
      delete baselines_[i];
      delete samples_[i];
    }
    delete index_;
    delete donor_;
    delete ref_;
  }

  static ReferenceGenome* ref_;
  static DonorGenome* donor_;
  static GenomeIndex* index_;
  static SimulatedSample* samples_[kNumTenants];
  static std::vector<VariantRecord>* baselines_[kNumTenants];
};

ReferenceGenome* ServiceChaosTest::ref_ = nullptr;
DonorGenome* ServiceChaosTest::donor_ = nullptr;
GenomeIndex* ServiceChaosTest::index_ = nullptr;
SimulatedSample* ServiceChaosTest::samples_[kNumTenants] = {};
std::vector<VariantRecord>* ServiceChaosTest::baselines_[kNumTenants] = {};

TEST_F(ServiceChaosTest, VictimRecoversOthersStayByteIdentical) {
  // Cluster-wide chaos on the SHARED DFS: one replica of every block
  // corrupted on first read, plus a node crash on the very first
  // heartbeat tick — exactly the multi-tenant blast radius this test is
  // about. Installed on the Dfs before the service starts so the
  // scheduled crash fires deterministically regardless of how long job
  // startup takes (under TSan the victim pipeline can take many ticks
  // to construct).
  FaultInjector injector(kChaosSeed);
  ASSERT_TRUE(injector.ArmFirstAttempts(kFaultDfsBlockCorrupt, 1).ok());
  // The first attempt of every victim map task fails (keyed per task, so
  // deterministic under any interleaving): the victim's own retry
  // counters must fire no matter where the dead node's blocks land.
  ASSERT_TRUE(injector.ArmFirstAttempts(kFaultMapAttempt, 1).ok());
  const int crash_node = LogicalPartitionPlacementPolicy::PrimaryNodeFor(
      "/jobs/victim/job-crash-probe", 4);
  injector.ArmSchedule(kFaultNodeCrash, crash_node, {0});

  Dfs dfs(MakeDfsOptions());
  dfs.set_fault_injector(&injector);
  ServiceConfig config;
  config.max_running_jobs = kNumTenants;  // all three run concurrently
  config.heartbeat_interval_ms = 1;       // continuous dead-node detection
  GesallService service(*ref_, *index_, &dfs, config);

  const char* tenants[kNumTenants] = {"victim", "tenant-b", "tenant-c"};
  JobId ids[kNumTenants] = {};
  for (int i = 0; i < kNumTenants; ++i) {
    JobSpec spec;
    spec.tenant = tenants[i];
    spec.mate1 = samples_[i]->mate1;
    spec.mate2 = samples_[i]->mate2;
    spec.pipeline = MakePipelineConfig();
    if (i == 0) {
      spec.pipeline.fault_injector = &injector;
      spec.pipeline.max_task_attempts = 6;
    }
    auto id = service.Submit(std::move(spec));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids[i] = id.ValueOrDie();
  }

  JobOutput outputs[kNumTenants];
  for (int i = 0; i < kNumTenants; ++i) {
    auto out = service.Wait(ids[i]);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    outputs[i] = out.ValueOrDie();
    ASSERT_TRUE(outputs[i].status.ok())
        << tenants[i] << ": " << outputs[i].status.ToString();
  }

  // Every tenant — including the victim — produced output byte-identical
  // to its solo fault-free baseline.
  for (int i = 0; i < kNumTenants; ++i) {
    // Sanity: the baseline is a real call set, not a degenerate run.
    ASSERT_GT(baselines_[i]->size(), 4u);
    EXPECT_EQ(VariantKeys(outputs[i].variants), VariantKeys(*baselines_[i]))
        << tenants[i];
  }

  // The victim actually recovered (its own round counters fired), and
  // the service surfaced it.
  EXPECT_TRUE(outputs[0].recovered);
  EXPECT_GE(service.stats().recovered_jobs, 1);

  // The cluster really went through chaos: corruption was detected and
  // healed, and the crashed node was declared dead by the continuous
  // heartbeat — not by any pipeline round.
  DfsStats dstats = dfs.stats();
  EXPECT_GT(dstats.corruptions_detected, 0);
  EXPECT_GT(dstats.replicas_quarantined, 0);
  EXPECT_GT(dstats.blocks_re_replicated, 0);
  EXPECT_EQ(dstats.nodes_declared_dead, 1);
  EXPECT_EQ(service.stats().completed, kNumTenants);
}

}  // namespace
}  // namespace gesall

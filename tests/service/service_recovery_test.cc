// Kill-and-restart recovery: the durable job log + DFS round manifests
// let a rebuilt service resume queued AND mid-flight jobs at round
// granularity, with final outputs byte-identical to a crash-free run.
// Also guards drain/restart queue-order and tenant-quota accounting.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "genome/read_simulator.h"
#include "genome/reference_generator.h"
#include "service/service.h"

namespace gesall {
namespace {

namespace fs = std::filesystem;

std::vector<std::string> VariantKeys(const std::vector<VariantRecord>& vs) {
  std::vector<std::string> keys;
  keys.reserve(vs.size());
  for (const auto& v : vs) {
    std::ostringstream os;
    os << v.Key() << "@" << v.qual;
    keys.push_back(os.str());
  }
  return keys;
}

class ServiceRecoveryTest : public testing::Test {
 protected:
  void SetUp() override {
    root_ = (fs::temp_directory_path() /
             ("gesall_service_recovery_" +
              std::string(::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name())))
                .string();
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  DfsOptions DurableDfsOptions() const {
    DfsOptions dopt;
    dopt.block_size = 64 * 1024;
    dopt.replication = 2;
    dopt.num_data_nodes = 4;
    dopt.durability.root_dir = root_ + "/dfs";
    return dopt;
  }

  ServiceConfig DurableServiceConfig() const {
    ServiceConfig config;
    config.max_running_jobs = 1;  // deterministic job ordering
    config.durability.root_dir = root_;
    return config;
  }

  static JobSpec MakeJob(const std::string& tenant) {
    JobSpec spec;
    spec.tenant = tenant;
    spec.mate1 = sample_->mate1;
    spec.mate2 = sample_->mate2;
    spec.pipeline.alignment_partitions = 2;
    spec.pipeline.max_parallel_tasks = 2;
    return spec;
  }

  static void SetUpTestSuite() {
    ReferenceGeneratorOptions ro;
    ro.num_chromosomes = 1;
    ro.chromosome_length = 20'000;
    ref_ = new ReferenceGenome(GenerateReference(ro));
    donor_ = new DonorGenome(PlantVariants(*ref_, VariantPlanterOptions{}));
    ReadSimulatorOptions so;
    so.coverage = 5.0;
    sample_ = new SimulatedSample(SimulateReads(*donor_, so));
    index_ = new GenomeIndex(*ref_);

    // Crash-free baseline with the same pipeline shape the jobs use.
    Dfs dfs(DfsOptions{});
    PipelineConfig config;
    config.alignment_partitions = 2;
    config.max_parallel_tasks = 2;
    GesallPipeline baseline(*ref_, *index_, &dfs, config);
    ASSERT_TRUE(baseline.LoadSample(sample_->mate1, sample_->mate2).ok());
    auto variants = baseline.RunAll();
    ASSERT_TRUE(variants.ok()) << variants.status().ToString();
    baseline_variants_ =
        new std::vector<VariantRecord>(variants.MoveValueUnsafe());
  }

  static void TearDownTestSuite() {
    delete baseline_variants_;
    delete index_;
    delete sample_;
    delete donor_;
    delete ref_;
  }

  std::string root_;
  static ReferenceGenome* ref_;
  static DonorGenome* donor_;
  static SimulatedSample* sample_;
  static GenomeIndex* index_;
  static std::vector<VariantRecord>* baseline_variants_;
};

ReferenceGenome* ServiceRecoveryTest::ref_ = nullptr;
DonorGenome* ServiceRecoveryTest::donor_ = nullptr;
SimulatedSample* ServiceRecoveryTest::sample_ = nullptr;
GenomeIndex* ServiceRecoveryTest::index_ = nullptr;
std::vector<VariantRecord>* ServiceRecoveryTest::baseline_variants_ = nullptr;

// The acceptance scenario: kill the service after the mid-flight job
// sealed rounds 1-2 (crash lands before round 3 starts), rebuild both
// DFS and service from their logs, and require (a) every job finishes,
// (b) outputs byte-identical to the crash-free baseline, (c) completed
// rounds were skipped, not recomputed.
TEST_F(ServiceRecoveryTest, KillRestartResumesAtRoundGranularity) {
  Dfs dfs(DurableDfsOptions());
  JobId job1 = 0, job2 = 0;

  std::mutex hook_mu;
  std::condition_variable hook_cv;
  bool reached_round2 = false;
  bool crash_landed = false;
  std::atomic<JobId> crash_target{0};

  ServiceConfig config = DurableServiceConfig();
  config.round_complete_hook = [&](JobId id, int round_index,
                                   const std::string&) {
    if (id != crash_target.load() || round_index != kRoundCleaning) return;
    // Hold the pipeline between rounds 2 and 3 until the crash lands,
    // so the kill deterministically catches this job mid-flight.
    std::unique_lock<std::mutex> lock(hook_mu);
    reached_round2 = true;
    hook_cv.notify_all();
    hook_cv.wait(lock, [&] { return crash_landed; });
  };

  {
    GesallService service(*ref_, *index_, &dfs, config);
    ASSERT_TRUE(service.recovery_status().ok());
    auto id1 = service.Submit(MakeJob("alpha"));
    ASSERT_TRUE(id1.ok()) << id1.status().ToString();
    job1 = id1.ValueOrDie();
    crash_target.store(job1);
    auto id2 = service.Submit(MakeJob("beta"));
    ASSERT_TRUE(id2.ok()) << id2.status().ToString();
    job2 = id2.ValueOrDie();

    {
      std::unique_lock<std::mutex> lock(hook_mu);
      hook_cv.wait(lock, [&] { return reached_round2; });
    }
    // SimulateCrash flips the running job's cancel token before waiting
    // for runners, so releasing the hook after a short grace period
    // always lets the pipeline observe the cancellation at round 3's
    // start.
    std::thread crasher([&] { ASSERT_TRUE(service.SimulateCrash().ok()); });
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    {
      std::lock_guard<std::mutex> lock(hook_mu);
      crash_landed = true;
    }
    hook_cv.notify_all();
    crasher.join();

    // Waiters of the dead instance observe the synthetic failures; the
    // log records neither job as finished.
    auto out1 = service.Wait(job1);
    ASSERT_TRUE(out1.ok());
    EXPECT_TRUE(out1.ValueOrDie().status.IsCancelled())
        << out1.ValueOrDie().status.ToString();
    auto out2 = service.Wait(job2);
    ASSERT_TRUE(out2.ok());
    EXPECT_TRUE(out2.ValueOrDie().status.IsUnavailable())
        << out2.ValueOrDie().status.ToString();
    EXPECT_GT(service.stats().journal_records_appended, 0);
  }

  // Full restart: drop the DFS's memory too, then rebuild the service
  // against the recovered namespace (sealed manifests included).
  ASSERT_TRUE(dfs.SimulateCrash().ok());
  ServiceConfig fresh = DurableServiceConfig();
  GesallService service(*ref_, *index_, &dfs, fresh);
  ASSERT_TRUE(service.recovery_status().ok())
      << service.recovery_status().ToString();
  const ServiceRecoveryStats rec = service.recovery_stats();
  EXPECT_TRUE(rec.recovered);
  EXPECT_EQ(rec.jobs_recovered, 2);

  auto out1 = service.Wait(job1);
  ASSERT_TRUE(out1.ok()) << out1.status().ToString();
  const JobOutput& resumed = out1.ValueOrDie();
  ASSERT_TRUE(resumed.status.ok()) << resumed.status.ToString();
  EXPECT_EQ(resumed.tenant, "alpha");
  ASSERT_GT(baseline_variants_->size(), 5u);
  EXPECT_EQ(VariantKeys(resumed.variants), VariantKeys(*baseline_variants_));
  // Rounds 1 and 2 were sealed before the crash: skipped, and the
  // alignment kernel never ran again.
  EXPECT_GE(resumed.counters.Get("round_skipped_on_resume"), 2);
  EXPECT_EQ(resumed.counters.Get("align_kernel_calls"), 0);

  auto out2 = service.Wait(job2);
  ASSERT_TRUE(out2.ok()) << out2.status().ToString();
  const JobOutput& requeued = out2.ValueOrDie();
  ASSERT_TRUE(requeued.status.ok()) << requeued.status.ToString();
  EXPECT_EQ(requeued.tenant, "beta");
  EXPECT_EQ(VariantKeys(requeued.variants), VariantKeys(*baseline_variants_));
  // The queued job had no sealed rounds: it runs from the top.
  EXPECT_EQ(requeued.counters.Get("round_skipped_on_resume"), 0);
  EXPECT_GT(requeued.counters.Get("align_kernel_calls"), 0);

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 2);
}

// A graceful destructor keeps queued jobs in the log (only their
// waiters see the shutdown cancellation); the next incarnation requeues
// exactly those, in submit order, with quota accounting rebuilt.
TEST_F(ServiceRecoveryTest, GracefulShutdownRequeuesQueuedJobs) {
  Dfs dfs(DurableDfsOptions());
  JobId running = 0, queued1 = 0, queued2 = 0;
  {
    GesallService service(*ref_, *index_, &dfs, DurableServiceConfig());
    auto id0 = service.Submit(MakeJob("alpha"));
    ASSERT_TRUE(id0.ok());
    running = id0.ValueOrDie();
    auto id1 = service.Submit(MakeJob("alpha"));
    ASSERT_TRUE(id1.ok());
    queued1 = id1.ValueOrDie();
    auto id2 = service.Submit(MakeJob("beta"));
    ASSERT_TRUE(id2.ok());
    queued2 = id2.ValueOrDie();
    // Let the first job finish cleanly (journaled as finished); the
    // destructor then cancels the two still queued without journaling.
    // Drain first: once the runner delivers the first job's output it
    // would otherwise race this scope's exit to pick up a queued job
    // (weighted-fair prefers the idle tenant) and run it to completion.
    service.Drain();
    auto out = service.Wait(running);
    ASSERT_TRUE(out.ok());
    ASSERT_TRUE(out.ValueOrDie().status.ok())
        << out.ValueOrDie().status.ToString();
  }

  ASSERT_TRUE(dfs.SimulateCrash().ok());
  GesallService service(*ref_, *index_, &dfs, DurableServiceConfig());
  ASSERT_TRUE(service.recovery_status().ok())
      << service.recovery_status().ToString();
  EXPECT_EQ(service.recovery_stats().jobs_recovered, 2);

  // Completion order under one runner == recovered queue order ==
  // original submit order, across tenants.
  auto o1 = service.Wait(queued1);
  auto o2 = service.Wait(queued2);
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o2.ok());
  ASSERT_TRUE(o1.ValueOrDie().status.ok())
      << o1.ValueOrDie().status.ToString();
  ASSERT_TRUE(o2.ValueOrDie().status.ok())
      << o2.ValueOrDie().status.ToString();
  EXPECT_LT(o1.ValueOrDie().queue_seconds, o2.ValueOrDie().queue_seconds);
  EXPECT_EQ(VariantKeys(o1.ValueOrDie().variants),
            VariantKeys(*baseline_variants_));
  EXPECT_EQ(VariantKeys(o2.ValueOrDie().variants),
            VariantKeys(*baseline_variants_));
  // The finished job was not resurrected.
  EXPECT_TRUE(service.Wait(running).status().IsNotFound());
}

// Drain/Restart regression: queued jobs keep their submit order and the
// per-tenant quota ledger stays exact across the drain cycle.
TEST_F(ServiceRecoveryTest, DrainRestartPreservesOrderAndQuotas) {
  Dfs dfs(DfsOptions{});  // in-memory: this guards the graceful path
  ServiceConfig config;
  config.max_running_jobs = 1;
  config.tenants["alpha"].max_queued_jobs = 2;

  std::mutex order_mu;
  std::vector<JobId> start_order;
  config.round_complete_hook = [&](JobId id, int round_index,
                                   const std::string&) {
    if (round_index != kRoundAlignment) return;
    std::lock_guard<std::mutex> lock(order_mu);
    start_order.push_back(id);
  };

  GesallService service(*ref_, *index_, &dfs, config);
  auto blocker = service.Submit(MakeJob("beta"));
  ASSERT_TRUE(blocker.ok());
  // The single runner must hold the blocker before the alpha jobs
  // arrive, so those deterministically queue.
  while (service.running_jobs() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  auto a1 = service.Submit(MakeJob("alpha"));
  ASSERT_TRUE(a1.ok());
  auto a2 = service.Submit(MakeJob("alpha"));
  ASSERT_TRUE(a2.ok());
  // Quota exact before the drain: a third queued alpha job is shed.
  auto a3 = service.Submit(MakeJob("alpha"));
  ASSERT_TRUE(a3.status().IsUnavailable()) << a3.status().ToString();
  EXPECT_EQ(service.stats().shed_tenant_quota, 1);

  service.Drain();
  EXPECT_EQ(service.state(), GesallService::State::kDrained);
  // The blocker ran to completion; both alpha jobs survived the drain.
  EXPECT_EQ(service.queue_depth(), 2);
  service.Restart();
  EXPECT_EQ(service.state(), GesallService::State::kAccepting);

  // Quota accounting survived the cycle: alpha is still at its cap
  // until a queued job starts running, and a beta submission is not
  // affected by alpha's ledger.
  auto b2 = service.Submit(MakeJob("beta"));
  ASSERT_TRUE(b2.ok()) << b2.status().ToString();

  for (JobId id : {blocker.ValueOrDie(), a1.ValueOrDie(), a2.ValueOrDie(),
                   b2.ValueOrDie()}) {
    auto out = service.Wait(id);
    ASSERT_TRUE(out.ok());
    ASSERT_TRUE(out.ValueOrDie().status.ok())
        << out.ValueOrDie().status.ToString();
  }
  // Within alpha, the drained queue replayed in submit order.
  std::lock_guard<std::mutex> lock(order_mu);
  auto pos = [&](JobId id) {
    return std::find(start_order.begin(), start_order.end(), id) -
           start_order.begin();
  };
  EXPECT_LT(pos(a1.ValueOrDie()), pos(a2.ValueOrDie()));
}

// Durability misconfiguration and unwritable roots fail loudly at
// Submit instead of silently running without a log.
TEST_F(ServiceRecoveryTest, BrokenDurabilityFailsSubmitsLoudly) {
  Dfs dfs(DfsOptions{});
  {
    ServiceConfig config;
    config.durability.root_dir = root_;
    config.durability.fsync_every_records = 0;  // invalid
    GesallService service(*ref_, *index_, &dfs, config);
    EXPECT_TRUE(service.recovery_status().IsInvalidArgument());
    auto id = service.Submit(MakeJob("alpha"));
    EXPECT_TRUE(id.status().IsInvalidArgument());
  }
  {
    ServiceConfig config;
    config.durability.root_dir = "/proc/gesall-no-such-writable-root";
    GesallService service(*ref_, *index_, &dfs, config);
    EXPECT_FALSE(service.recovery_status().ok());
    auto id = service.Submit(MakeJob("alpha"));
    EXPECT_FALSE(id.ok());
    EXPECT_EQ(service.queue_depth(), 0);
  }
}

}  // namespace
}  // namespace gesall

// GesallService functional tests: admission control and shedding,
// per-tenant quotas, weighted-fair + deadline scheduling, cancellation,
// timeouts, drain/restart, and the online planner.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "genome/read_simulator.h"
#include "genome/reference_generator.h"
#include "service/service.h"

namespace gesall {
namespace {

std::vector<std::string> VariantKeys(const std::vector<VariantRecord>& vs) {
  std::vector<std::string> keys;
  keys.reserve(vs.size());
  for (const auto& v : vs) {
    std::ostringstream os;
    os << v.Key() << "@" << v.qual;
    keys.push_back(os.str());
  }
  return keys;
}

class ServiceTest : public testing::Test {
 protected:
  static DfsOptions MakeDfsOptions() {
    DfsOptions dopt;
    dopt.block_size = 64 * 1024;
    dopt.replication = 2;
    dopt.num_data_nodes = 4;
    return dopt;
  }

  static JobSpec MakeJob(const std::string& tenant) {
    JobSpec spec;
    spec.tenant = tenant;
    spec.mate1 = sample_->mate1;
    spec.mate2 = sample_->mate2;
    spec.pipeline.alignment_partitions = 2;
    spec.pipeline.max_parallel_tasks = 2;
    return spec;
  }

  static void SetUpTestSuite() {
    ReferenceGeneratorOptions ro;
    ro.num_chromosomes = 1;
    ro.chromosome_length = 25'000;
    ref_ = new ReferenceGenome(GenerateReference(ro));
    donor_ = new DonorGenome(PlantVariants(*ref_, VariantPlanterOptions{}));
    ReadSimulatorOptions so;
    so.coverage = 6.0;
    sample_ = new SimulatedSample(SimulateReads(*donor_, so));
    index_ = new GenomeIndex(*ref_);

    // Solo baseline with the same pipeline shape the service jobs use.
    Dfs dfs(MakeDfsOptions());
    PipelineConfig config;
    config.alignment_partitions = 2;
    config.max_parallel_tasks = 2;
    GesallPipeline baseline(*ref_, *index_, &dfs, config);
    ASSERT_TRUE(baseline.LoadSample(sample_->mate1, sample_->mate2).ok());
    auto variants = baseline.RunAll();
    ASSERT_TRUE(variants.ok()) << variants.status().ToString();
    baseline_variants_ =
        new std::vector<VariantRecord>(variants.MoveValueUnsafe());
  }

  static void TearDownTestSuite() {
    delete baseline_variants_;
    delete index_;
    delete sample_;
    delete donor_;
    delete ref_;
  }

  static ReferenceGenome* ref_;
  static DonorGenome* donor_;
  static SimulatedSample* sample_;
  static GenomeIndex* index_;
  static std::vector<VariantRecord>* baseline_variants_;
};

ReferenceGenome* ServiceTest::ref_ = nullptr;
DonorGenome* ServiceTest::donor_ = nullptr;
SimulatedSample* ServiceTest::sample_ = nullptr;
GenomeIndex* ServiceTest::index_ = nullptr;
std::vector<VariantRecord>* ServiceTest::baseline_variants_ = nullptr;

TEST_F(ServiceTest, RunsOneJobEndToEnd) {
  Dfs dfs(MakeDfsOptions());
  GesallService service(*ref_, *index_, &dfs, ServiceConfig{});
  auto id = service.Submit(MakeJob("alpha"));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  auto out = service.Wait(id.ValueOrDie());
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  const JobOutput& job = out.ValueOrDie();
  EXPECT_TRUE(job.status.ok()) << job.status.ToString();
  EXPECT_EQ(job.tenant, "alpha");
  ASSERT_GT(baseline_variants_->size(), 10u);
  // Byte-identical to a solo pipeline on a private DFS.
  EXPECT_EQ(VariantKeys(job.variants), VariantKeys(*baseline_variants_));
  EXPECT_GT(job.busy_micros, 0);
  EXPECT_GT(job.run_seconds, 0);
  EXPECT_FALSE(job.recovered);
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 1);
  EXPECT_EQ(stats.admitted, 1);
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.completed_by_tenant.at("alpha"), 1);
  EXPECT_EQ(stats.shed, 0);
}

TEST_F(ServiceTest, ConcurrentTenantsAllByteIdentical) {
  Dfs dfs(MakeDfsOptions());
  ServiceConfig config;
  config.max_running_jobs = 3;
  GesallService service(*ref_, *index_, &dfs, config);
  std::vector<JobId> ids;
  for (const char* tenant : {"alpha", "beta", "gamma"}) {
    auto id = service.Submit(MakeJob(tenant));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(id.ValueOrDie());
  }
  for (JobId id : ids) {
    auto out = service.Wait(id);
    ASSERT_TRUE(out.ok());
    ASSERT_TRUE(out.ValueOrDie().status.ok())
        << out.ValueOrDie().status.ToString();
    EXPECT_EQ(VariantKeys(out.ValueOrDie().variants),
              VariantKeys(*baseline_variants_));
  }
  EXPECT_EQ(service.stats().completed, 3);
}

TEST_F(ServiceTest, ShedsWhenQueueIsFull) {
  Dfs dfs(MakeDfsOptions());
  ServiceConfig config;
  config.max_running_jobs = 1;
  config.max_queue_depth = 2;
  config.retry_after_ms = 77;
  GesallService service(*ref_, *index_, &dfs, config);

  // The queue holds jobs until a runner picks them; saturate it faster
  // than one runner can drain.
  std::vector<JobId> admitted;
  int shed = 0;
  for (int i = 0; i < 12; ++i) {
    auto id = service.Submit(MakeJob("flood"));
    if (id.ok()) {
      admitted.push_back(id.ValueOrDie());
    } else {
      EXPECT_TRUE(id.status().IsUnavailable()) << id.status().ToString();
      EXPECT_NE(id.status().ToString().find("retry after 77ms"),
                std::string::npos)
          << id.status().ToString();
      shed++;
    }
  }
  EXPECT_GT(shed, 0);
  for (JobId id : admitted) {
    auto out = service.Wait(id);
    ASSERT_TRUE(out.ok());
    EXPECT_TRUE(out.ValueOrDie().status.ok());
  }
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.shed, shed);
  EXPECT_GT(stats.shed_queue_depth + stats.shed_tenant_quota, 0);
  EXPECT_EQ(stats.submitted, stats.admitted + stats.shed);
}

TEST_F(ServiceTest, ShedsOnTenantQuotaWhileOthersAdmit) {
  Dfs dfs(MakeDfsOptions());
  ServiceConfig config;
  config.max_running_jobs = 1;
  config.max_queue_depth = 100;
  config.default_quota.max_queued_jobs = 1;
  GesallService service(*ref_, *index_, &dfs, config);

  std::vector<JobId> ids;
  auto a1 = service.Submit(MakeJob("greedy"));
  ASSERT_TRUE(a1.ok());
  ids.push_back(a1.ValueOrDie());
  // Runner may have already started a1; submit until the tenant holds
  // one queued job, then the next submission must shed.
  auto a2 = service.Submit(MakeJob("greedy"));
  if (a2.ok()) ids.push_back(a2.ValueOrDie());
  auto a3 = service.Submit(MakeJob("greedy"));
  if (a3.ok()) ids.push_back(a3.ValueOrDie());
  EXPECT_FALSE(a2.ok() && a3.ok());
  Status shed_status = !a2.ok() ? a2.status() : a3.status();
  EXPECT_TRUE(shed_status.IsUnavailable()) << shed_status.ToString();
  EXPECT_NE(shed_status.ToString().find("quota"), std::string::npos);
  // A different tenant still gets in.
  auto b = service.Submit(MakeJob("modest"));
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ids.push_back(b.ValueOrDie());
  for (JobId id : ids) {
    auto out = service.Wait(id);
    ASSERT_TRUE(out.ok());
    EXPECT_TRUE(out.ValueOrDie().status.ok());
  }
  EXPECT_GT(service.stats().shed_tenant_quota, 0);
}

TEST_F(ServiceTest, ShedsOnByteBudget) {
  Dfs dfs(MakeDfsOptions());
  ServiceConfig config;
  config.max_running_jobs = 1;
  // Budget fits one copy of the sample but not two.
  int64_t one_job = 0;
  for (const auto& r : sample_->mate1) {
    one_job += static_cast<int64_t>(2 * (r.name.size() + r.sequence.size() +
                                         r.quality.size() + 3));
  }
  config.max_in_flight_bytes = one_job + one_job / 2;
  GesallService service(*ref_, *index_, &dfs, config);
  auto first = service.Submit(MakeJob("bytes"));
  ASSERT_TRUE(first.ok());
  auto second = service.Submit(MakeJob("bytes"));
  // Either shed on bytes immediately, or (if the first already ran to
  // completion) admitted; force the deterministic case via a third.
  if (second.ok()) {
    auto third = service.Submit(MakeJob("bytes"));
    EXPECT_FALSE(third.ok());
  } else {
    EXPECT_TRUE(second.status().IsUnavailable());
    EXPECT_NE(second.status().ToString().find("byte budget"),
              std::string::npos);
  }
  auto out = service.Wait(first.ValueOrDie());
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.ValueOrDie().status.ok());
  EXPECT_GT(service.stats().shed_bytes, 0);
}

TEST_F(ServiceTest, EarliestDeadlineRunsFirstWithinTenant) {
  Dfs dfs(MakeDfsOptions());
  ServiceConfig config;
  config.max_running_jobs = 1;
  config.max_queue_depth = 10;
  config.default_quota.max_queued_jobs = 10;
  GesallService service(*ref_, *index_, &dfs, config);

  // Occupy the single runner, then queue in submission order: a late
  // deadline, a tight deadline, and a high-priority no-deadline job.
  auto blocker = service.Submit(MakeJob("edf"));
  ASSERT_TRUE(blocker.ok());
  JobSpec late = MakeJob("edf");
  late.deadline_seconds = 10'000;
  JobSpec soon = MakeJob("edf");
  soon.deadline_seconds = 500;
  JobSpec urgent = MakeJob("edf");
  urgent.priority = 9;
  auto late_id = service.Submit(std::move(late));
  auto soon_id = service.Submit(std::move(soon));
  auto urgent_id = service.Submit(std::move(urgent));
  ASSERT_TRUE(late_id.ok() && soon_id.ok() && urgent_id.ok());

  auto late_out = service.Wait(late_id.ValueOrDie());
  auto soon_out = service.Wait(soon_id.ValueOrDie());
  auto urgent_out = service.Wait(urgent_id.ValueOrDie());
  ASSERT_TRUE(late_out.ok() && soon_out.ok() && urgent_out.ok());
  // Deadlines order before priority, priority before FIFO: submission
  // order was late, soon, urgent; execution order must be soon, late,
  // urgent... no — deadline-carrying jobs (soon, then late) precede the
  // deadline-less urgent job. Queue waits reflect that order.
  EXPECT_LT(soon_out.ValueOrDie().queue_seconds,
            late_out.ValueOrDie().queue_seconds);
  EXPECT_LT(late_out.ValueOrDie().queue_seconds,
            urgent_out.ValueOrDie().queue_seconds);
}

TEST_F(ServiceTest, WeightedFairnessInterleavesTenants) {
  Dfs dfs(MakeDfsOptions());
  ServiceConfig config;
  config.max_running_jobs = 1;
  config.max_queue_depth = 10;
  config.default_quota.max_queued_jobs = 10;
  GesallService service(*ref_, *index_, &dfs, config);

  // Tenant A floods three jobs; tenant B submits one afterwards. Once
  // A's first job has charged usage to A, B's untouched account must
  // win the next slot ahead of A's remaining queue.
  auto a1 = service.Submit(MakeJob("a"));
  ASSERT_TRUE(a1.ok());
  auto a2 = service.Submit(MakeJob("a"));
  ASSERT_TRUE(a2.ok());
  auto a3 = service.Submit(MakeJob("a"));
  ASSERT_TRUE(a3.ok());
  auto b1 = service.Submit(MakeJob("b"));
  ASSERT_TRUE(b1.ok());

  auto a2_out = service.Wait(a2.ValueOrDie());
  auto b1_out = service.Wait(b1.ValueOrDie());
  ASSERT_TRUE(a2_out.ok() && b1_out.ok());
  EXPECT_LT(b1_out.ValueOrDie().queue_seconds,
            a2_out.ValueOrDie().queue_seconds);
  // Drain the rest so destruction is quiet.
  EXPECT_TRUE(service.Wait(a1.ValueOrDie()).ok());
  EXPECT_TRUE(service.Wait(a3.ValueOrDie()).ok());
}

TEST_F(ServiceTest, CancelQueuedJobReturnsCauseImmediately) {
  Dfs dfs(MakeDfsOptions());
  ServiceConfig config;
  config.max_running_jobs = 1;
  GesallService service(*ref_, *index_, &dfs, config);
  auto blocker = service.Submit(MakeJob("c"));
  ASSERT_TRUE(blocker.ok());
  auto queued = service.Submit(MakeJob("c"));
  ASSERT_TRUE(queued.ok());
  ASSERT_TRUE(service.Cancel(queued.ValueOrDie(), "operator says no").ok());
  auto out = service.Wait(queued.ValueOrDie());
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.ValueOrDie().status.IsCancelled());
  EXPECT_NE(out.ValueOrDie().status.ToString().find("operator says no"),
            std::string::npos);
  EXPECT_EQ(service.stats().cancelled, 1);
  EXPECT_TRUE(service.Wait(blocker.ValueOrDie()).ok());
  EXPECT_TRUE(service.Cancel(9999999, "x").IsNotFound());
}

TEST_F(ServiceTest, CancelRunningJobUnwindsAndCleansItsNamespace) {
  Dfs dfs(MakeDfsOptions());
  ServiceConfig config;
  config.max_running_jobs = 1;
  GesallService service(*ref_, *index_, &dfs, config);
  auto id = service.Submit(MakeJob("c"));
  ASSERT_TRUE(id.ok());
  // Wait for the job to actually start, then cancel mid-run.
  while (service.running_jobs() == 0 && service.queue_depth() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(service.Cancel(id.ValueOrDie(), "mid-run abort").ok());
  auto out = service.Wait(id.ValueOrDie());
  ASSERT_TRUE(out.ok());
  const JobOutput& job = out.ValueOrDie();
  if (job.status.IsCancelled()) {
    EXPECT_NE(job.status.ToString().find("mid-run abort"), std::string::npos);
    // The cancelled pipeline removed its partial stage outputs; only the
    // loaded input partitions may remain under the job's namespace.
    for (const std::string& path : dfs.List("/jobs/c/")) {
      EXPECT_NE(path.find("/input/"), std::string::npos) << path;
    }
  } else {
    // The job may have completed before the token flipped; then the
    // output must be fully intact.
    EXPECT_TRUE(job.status.ok()) << job.status.ToString();
    EXPECT_EQ(VariantKeys(job.variants), VariantKeys(*baseline_variants_));
  }
}

TEST_F(ServiceTest, TimeoutCancelsARunningJob) {
  Dfs dfs(MakeDfsOptions());
  ServiceConfig config;
  config.max_running_jobs = 1;
  config.default_timeout_seconds = 0.001;  // far below one pipeline run
  config.watchdog_interval_ms = 1;
  GesallService service(*ref_, *index_, &dfs, config);
  auto id = service.Submit(MakeJob("t"));
  ASSERT_TRUE(id.ok());
  auto out = service.Wait(id.ValueOrDie());
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out.ValueOrDie().status.IsCancelled())
      << out.ValueOrDie().status.ToString();
  EXPECT_NE(out.ValueOrDie().status.ToString().find("timeout"),
            std::string::npos)
      << out.ValueOrDie().status.ToString();
  EXPECT_GE(service.stats().timed_out, 1);
}

TEST_F(ServiceTest, DrainStopsAdmissionKeepsQueueAndRestartResumes) {
  Dfs dfs(MakeDfsOptions());
  ServiceConfig config;
  config.max_running_jobs = 1;
  GesallService service(*ref_, *index_, &dfs, config);
  auto running = service.Submit(MakeJob("d"));
  ASSERT_TRUE(running.ok());
  auto queued = service.Submit(MakeJob("d"));
  ASSERT_TRUE(queued.ok());
  // Let the runner actually pick up the first job: drain only waits for
  // RUNNING jobs, so draining before the pick would (correctly) leave
  // both jobs checkpointed in the queue.
  while (service.running_jobs() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  service.Drain();
  EXPECT_EQ(service.state(), GesallService::State::kDrained);
  EXPECT_EQ(service.running_jobs(), 0);
  // The running job finished; the queued one is checkpointed, not lost.
  auto ran = service.Wait(running.ValueOrDie());
  ASSERT_TRUE(ran.ok());
  EXPECT_TRUE(ran.ValueOrDie().status.ok());
  EXPECT_EQ(service.queue_depth(), 1);
  // Admission is off while drained.
  auto rejected = service.Submit(MakeJob("d"));
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsUnavailable());
  EXPECT_NE(rejected.status().ToString().find("draining"), std::string::npos);
  EXPECT_GT(service.stats().shed_draining, 0);

  service.Restart();
  EXPECT_EQ(service.state(), GesallService::State::kAccepting);
  auto resumed = service.Wait(queued.ValueOrDie());
  ASSERT_TRUE(resumed.ok());
  EXPECT_TRUE(resumed.ValueOrDie().status.ok())
      << resumed.ValueOrDie().status.ToString();
  EXPECT_EQ(VariantKeys(resumed.ValueOrDie().variants),
            VariantKeys(*baseline_variants_));
  EXPECT_EQ(service.stats().drains, 1);
  EXPECT_EQ(service.stats().restarts, 1);
}

TEST_F(ServiceTest, DestructionFailsQueuedJobsSoWaitersUnblock) {
  Dfs dfs(MakeDfsOptions());
  auto service = std::make_unique<GesallService>(*ref_, *index_, &dfs,
                                                 ServiceConfig{});
  // Exercise the drain -> restart -> drain path, then a clean shutdown.
  service->Drain();
  service->Restart();
  service->Drain();
  EXPECT_EQ(service->state(), GesallService::State::kDrained);
  service.reset();  // no queued jobs: clean shutdown path
  // And with a queued job the destructor must fail it rather than leave
  // waiters hung. One runner, so the second job is guaranteed to still
  // be queued (not running to completion) when the destructor fires.
  ServiceConfig one_runner;
  one_runner.max_running_jobs = 1;
  auto service2 = std::make_unique<GesallService>(*ref_, *index_, &dfs,
                                                  one_runner);
  auto blocker = service2->Submit(MakeJob("z"));
  ASSERT_TRUE(blocker.ok());
  auto queued = service2->Submit(MakeJob("z"));
  ASSERT_TRUE(queued.ok());
  // Raw pointer: the waiter must not touch the unique_ptr the main
  // thread resets. The destructor drains waiters before tearing down.
  GesallService* svc = service2.get();
  const JobId queued_id = queued.ValueOrDie();
  std::thread waiter([svc, queued_id] {
    auto out = svc->Wait(queued_id);
    ASSERT_TRUE(out.ok());
    EXPECT_FALSE(out.ValueOrDie().status.ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  service2.reset();
  waiter.join();
}

TEST_F(ServiceTest, DeadlineJobGetsAnOptimizerPlan) {
  Dfs dfs(MakeDfsOptions());
  GesallService service(*ref_, *index_, &dfs, ServiceConfig{});
  JobSpec spec = MakeJob("p");
  spec.deadline_seconds = 3600;
  auto id = service.Submit(std::move(spec));
  ASSERT_TRUE(id.ok());
  auto out = service.Wait(id.ValueOrDie());
  ASSERT_TRUE(out.ok());
  const JobOutput& job = out.ValueOrDie();
  EXPECT_TRUE(job.status.ok()) << job.status.ToString();
  EXPECT_TRUE(job.planned);
  EXPECT_GT(job.plan.wall_seconds, 0);
  EXPECT_GT(job.plan.slot_seconds, 0);
  // The plan reconfigured, not broke, the pipeline: output unchanged.
  EXPECT_EQ(VariantKeys(job.variants).size(), baseline_variants_->size());
}

TEST_F(ServiceTest, HeartbeatDriverTicksWhileServiceIdles) {
  Dfs dfs(MakeDfsOptions());
  ServiceConfig config;
  config.heartbeat_interval_ms = 1;
  GesallService service(*ref_, *index_, &dfs, config);
  // No job submitted at all: the DFS clock must still advance.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_GT(service.heartbeat()->ticks(), 0);
  EXPECT_TRUE(service.heartbeat()->last_error().ok());
}

}  // namespace
}  // namespace gesall

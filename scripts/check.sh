#!/usr/bin/env bash
# Tier-1 verification plus sanitizer passes over the failure-handling
# hot spots.
#
#   scripts/check.sh                 # tier-1 + ASan + UBSan + TSan suites
#   scripts/check.sh --no-asan       # skip the ASan pass
#   scripts/check.sh --no-tsan       # skip the TSan pass
#   scripts/check.sh --no-sanitizers # tier-1 only
#
# The sanitizer builds live in build-asan/, build-ubsan/ and
# build-tsan/ so they never pollute the regular build directory, and
# only build the suites that exercise the risky machinery.
#   - ASan (mr_test, util_test, align_test, dfs_test, service_test):
#     arena lifetime bugs — views outliving a spill, combiner emits into
#     a moved arena — are exactly what ASan catches and what the plain
#     build can silently survive; the banded SIMD aligner's
#     scratch-buffer reuse and unaligned vector loads get the same
#     treatment via the differential suite. The dfs and service suites
#     cover the durability layer: journal replay over torn tails,
#     SimulateCrash teardown/rebuild, and job-log recovery all juggle
#     raw FILE* handles and buffers whose misuse ASan surfaces. The
#     compressed data path rides the same suites: the bgzf codec and its
#     torn/corrupt-block decodes (util_test), lazy-decompress merge
#     cursors whose entries die on Advance (mr_test
#     shuffle_compression_test), and compressed DFS parts under
#     quarantine/repair and crash-restart (dfs_test
#     dfs_compression_test) are all scratch-buffer-reuse machinery
#     where an overread is silent without ASan.
#   - UBSan (dfs_test, mr_test, align_test): the integrity layer's
#     checksum kernels (unaligned word loads, table folds, shift
#     combines), the fault-injection arithmetic, and the 16-bit
#     saturating DP arithmetic must be free of undefined behavior, or
#     corruption detection itself can't be trusted.
#   - TSan (util_test, mr_test, service_test, plus the streaming
#     node-graph suite): the work-stealing executor (per-worker deques,
#     steal-half transfers, TaskGroup helping waits, the shutdown/submit
#     race) and the async MapReduce engine built on it are
#     lock-ordering-sensitive by design; a data race here silently
#     reorders round outputs. The service suite adds the job-manager
#     threads (runners, watchdog, heartbeat) racing admission,
#     cancellation and drain, including the multi-tenant chaos test over
#     a shared DFS. The PipelineNodeTest filter exercises the pipeline
#     node graph's pump/park state machine — one-shot queue wake-ups
#     racing the idle transition, abort racing parked callbacks — which
#     is exactly the machinery TSan exists for (util_test covers the
#     BoundedQueue underneath it).

set -euo pipefail
cd "$(dirname "$0")/.."

run_asan=1
run_ubsan=1
run_tsan=1
for arg in "$@"; do
  case "$arg" in
    --no-asan) run_asan=0 ;;
    --no-tsan) run_tsan=0 ;;
    --no-sanitizers) run_asan=0; run_ubsan=0; run_tsan=0 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

echo "=== tier-1: configure + build + ctest ==="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure --timeout 1200

if [[ "$run_asan" == 1 ]]; then
  echo "=== asan: shuffle engine + aligner + durability suites ==="
  cmake -B build-asan -S . -DGESALL_SANITIZE=address
  cmake --build build-asan -j --target mr_test util_test align_test \
    dfs_test service_test
  ./build-asan/tests/mr_test
  ./build-asan/tests/util_test
  ./build-asan/tests/align_test
  ./build-asan/tests/dfs_test
  ./build-asan/tests/service_test
fi

if [[ "$run_ubsan" == 1 ]]; then
  echo "=== ubsan: integrity + failure-model + aligner suites ==="
  cmake -B build-ubsan -S . -DGESALL_SANITIZE=undefined
  cmake --build build-ubsan -j --target dfs_test mr_test align_test
  ./build-ubsan/tests/dfs_test
  ./build-ubsan/tests/mr_test
  ./build-ubsan/tests/align_test
fi

if [[ "$run_tsan" == 1 ]]; then
  echo "=== tsan: executor + mapreduce + service suites ==="
  cmake -B build-tsan -S . -DGESALL_SANITIZE=thread
  cmake --build build-tsan -j --target util_test mr_test service_test \
    gesall_test
  ./build-tsan/tests/util_test
  ./build-tsan/tests/mr_test
  ./build-tsan/tests/service_test
  ./build-tsan/tests/gesall_test --gtest_filter='PipelineNodeTest.*'
fi

echo "=== check.sh: all green ==="

#!/usr/bin/env bash
# Tier-1 verification plus an AddressSanitizer pass over the MapReduce
# shuffle engine.
#
#   scripts/check.sh            # full tier-1 build + ctest + ASan mr suites
#   scripts/check.sh --no-asan  # tier-1 only
#
# The ASan build lives in build-asan/ so it never pollutes the regular
# build directory, and only builds the suites that exercise the arena
# shuffle (mr_test, util_test): arena lifetime bugs — views outliving a
# spill, combiner emits into a moved arena — are exactly what ASan
# catches and what the plain build can silently survive.

set -euo pipefail
cd "$(dirname "$0")/.."

run_asan=1
if [[ "${1:-}" == "--no-asan" ]]; then
  run_asan=0
fi

echo "=== tier-1: configure + build + ctest ==="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure

if [[ "$run_asan" == 1 ]]; then
  echo "=== asan: shuffle engine suites ==="
  cmake -B build-asan -S . -DGESALL_SANITIZE=address
  cmake --build build-asan -j --target mr_test util_test
  ./build-asan/tests/mr_test
  ./build-asan/tests/util_test
fi

echo "=== check.sh: all green ==="

#include "genome/reference_generator.h"

#include <algorithm>

#include "util/rng.h"

namespace gesall {

namespace {

char RandomBase(Rng& rng, double gc) {
  if (rng.NextDouble() < gc) {
    return rng.Bernoulli(0.5) ? 'G' : 'C';
  }
  return rng.Bernoulli(0.5) ? 'A' : 'T';
}

std::string RandomSequence(Rng& rng, int64_t length, double gc) {
  std::string s(length, 'N');
  for (auto& c : s) c = RandomBase(rng, gc);
  return s;
}

char MutateBase(Rng& rng, char base) {
  static const char kBases[] = {'A', 'C', 'G', 'T'};
  char out = base;
  while (out == base) out = kBases[rng.Uniform(4)];
  return out;
}

// Copies `element` into `chrom` at `pos` with per-base divergence.
void PasteRepeat(Rng& rng, const std::string& element, double divergence,
                 std::string* chrom, int64_t pos) {
  for (size_t i = 0; i < element.size(); ++i) {
    int64_t p = pos + static_cast<int64_t>(i);
    if (p < 0 || p >= static_cast<int64_t>(chrom->size())) break;
    char base = element[i];
    if (rng.Bernoulli(divergence)) base = MutateBase(rng, base);
    (*chrom)[p] = base;
  }
}

}  // namespace

ReferenceGenome GenerateReference(const ReferenceGeneratorOptions& options) {
  Rng rng(options.seed);
  ReferenceGenome genome;

  // One genome-wide repeat element family so copies on different
  // chromosomes cross-map (multi-mapping ambiguity).
  std::string repeat_element =
      RandomSequence(rng, options.repeat_element_length, options.gc_content);
  std::string satellite_motif =
      RandomSequence(rng, options.satellite_motif_length, options.gc_content);

  for (int ci = 0; ci < options.num_chromosomes; ++ci) {
    Chromosome chrom;
    chrom.name = "chr" + std::to_string(ci + 1);
    chrom.sequence =
        RandomSequence(rng, options.chromosome_length, options.gc_content);
    const int64_t len = options.chromosome_length;

    // Interspersed repeats: copies until the target fraction is covered.
    int64_t repeat_target =
        static_cast<int64_t>(options.repeat_fraction * len);
    int64_t pasted = 0;
    while (pasted < repeat_target) {
      int64_t pos = static_cast<int64_t>(
          rng.Uniform(static_cast<uint64_t>(len)));
      PasteRepeat(rng, repeat_element, options.repeat_divergence,
                  &chrom.sequence, pos);
      pasted += options.repeat_element_length;
    }

    // Centromere: noisy tandem satellite in the middle of the chromosome.
    int64_t cen_len = static_cast<int64_t>(options.centromere_fraction * len);
    int64_t cen_start = len / 2 - cen_len / 2;
    for (int64_t p = cen_start; p < cen_start + cen_len;
         p += options.satellite_motif_length) {
      PasteRepeat(rng, satellite_motif, 0.02, &chrom.sequence, p);
    }
    if (cen_len > 0) {
      genome.centromeres.push_back({ci, cen_start, cen_start + cen_len});
    }

    genome.chromosomes.push_back(std::move(chrom));

    // Blacklist regions: low-complexity homopolymer-ish stretches outside
    // the centromere.
    std::string& seq = genome.chromosomes.back().sequence;
    for (int b = 0; b < options.blacklist_per_chromosome; ++b) {
      int64_t bl_len = std::min<int64_t>(options.blacklist_length, len / 10);
      int64_t start;
      do {
        start = static_cast<int64_t>(
            rng.Uniform(static_cast<uint64_t>(len - bl_len)));
      } while (start < cen_start + cen_len && start + bl_len > cen_start);
      // Two-base microsatellite (e.g. ATATAT...) with light noise.
      char b1 = RandomBase(rng, options.gc_content);
      char b2 = RandomBase(rng, options.gc_content);
      for (int64_t p = start; p < start + bl_len; ++p) {
        char base = ((p - start) % 2 == 0) ? b1 : b2;
        if (rng.Bernoulli(0.02)) base = MutateBase(rng, base);
        seq[p] = base;
      }
      genome.blacklist.push_back({ci, start, start + bl_len});
    }
  }
  return genome;
}

}  // namespace gesall

// Synthetic reference genome generation.
//
// Substitutes for the human reference (DESIGN.md §1). The generator plants
// the structural features the paper's accuracy analysis depends on:
// interspersed repeat elements, highly repetitive centromeres, and
// low-complexity blacklist regions — the "hard-to-map" regions where most
// serial-vs-parallel alignment disagreements cluster (paper Fig. 11a).

#ifndef GESALL_GENOME_REFERENCE_GENERATOR_H_
#define GESALL_GENOME_REFERENCE_GENERATOR_H_

#include <cstdint>

#include "formats/fasta.h"

namespace gesall {

/// \brief Parameters of the synthetic reference.
struct ReferenceGeneratorOptions {
  int num_chromosomes = 4;
  int64_t chromosome_length = 500'000;
  double gc_content = 0.41;  // human-like GC fraction

  /// Fraction of each chromosome covered by interspersed repeat copies
  /// (ALU-like elements with per-copy mutations).
  double repeat_fraction = 0.08;
  int repeat_element_length = 300;
  /// Per-base mutation rate applied to each repeat copy (divergence).
  double repeat_divergence = 0.03;

  /// Centromere length as a fraction of the chromosome; placed mid-arm and
  /// filled with a noisy tandem satellite repeat.
  double centromere_fraction = 0.03;
  int satellite_motif_length = 171;  // alpha-satellite-like monomer

  /// Number and length of blacklist (low-complexity) regions per
  /// chromosome.
  int blacklist_per_chromosome = 2;
  int64_t blacklist_length = 2'000;

  uint64_t seed = 1;
};

/// \brief Generates a reference genome with annotated centromere and
/// blacklist regions.
ReferenceGenome GenerateReference(const ReferenceGeneratorOptions& options);

}  // namespace gesall

#endif  // GESALL_GENOME_REFERENCE_GENERATOR_H_

#include "genome/donor.h"

#include <algorithm>
#include <array>

#include "util/rng.h"

namespace gesall {

int64_t CoordinateMap::FromReference(int64_t ref_pos) const {
  if (segments_.empty()) return ref_pos;
  // Last segment whose ref_start <= ref_pos (segments are ordered by both
  // coordinates since indels never reorder).
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), ref_pos,
      [](int64_t pos, const Segment& s) { return pos < s.ref_start; });
  if (it == segments_.begin()) return ref_pos;
  --it;
  return it->hap_start + (ref_pos - it->ref_start);
}

int64_t CoordinateMap::ToReference(int64_t hap_pos) const {
  if (segments_.empty()) return hap_pos;
  // Find the last segment whose hap_start <= hap_pos.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), hap_pos,
      [](int64_t pos, const Segment& s) { return pos < s.hap_start; });
  if (it == segments_.begin()) return hap_pos;
  --it;
  return it->ref_start + (hap_pos - it->hap_start);
}

namespace {

char MutateBase(Rng& rng, char base) {
  // Transition-biased substitution (Ti:Tv ~ 2:1), matching real genomes so
  // that called variant Ti/Tv ratios are meaningful.
  static const char kTransition[256] = {};
  (void)kTransition;
  char transition;
  switch (base) {
    case 'A':
      transition = 'G';
      break;
    case 'G':
      transition = 'A';
      break;
    case 'C':
      transition = 'T';
      break;
    case 'T':
      transition = 'C';
      break;
    default:
      return 'A';
  }
  if (rng.Bernoulli(2.0 / 3.0)) return transition;
  static const char kBases[] = {'A', 'C', 'G', 'T'};
  char out = base;
  while (out == base || out == transition) out = kBases[rng.Uniform(4)];
  return out;
}

std::string RandomInsert(Rng& rng, int length) {
  static const char kBases[] = {'A', 'C', 'G', 'T'};
  std::string s(length, 'A');
  for (auto& c : s) c = kBases[rng.Uniform(4)];
  return s;
}

// Applies the subset of variants carried by one haplotype to a chromosome.
DonorGenome::HaplotypeSeq BuildHaplotype(
    const std::string& ref_seq, const std::vector<PlantedVariant>& variants,
    int haplotype) {
  DonorGenome::HaplotypeSeq out;
  out.sequence.reserve(ref_seq.size());
  out.to_reference.AddSegment(0, 0);
  int64_t ref_cursor = 0;
  for (const auto& v : variants) {
    if (!v.homozygous && v.haplotype != haplotype) continue;
    if (v.pos < ref_cursor) continue;  // overlapping variant: skip
    out.sequence.append(ref_seq, ref_cursor, v.pos - ref_cursor);
    int64_t hap_pos = static_cast<int64_t>(out.sequence.size());
    out.sequence.append(v.alt);
    ref_cursor = v.pos + static_cast<int64_t>(v.ref.size());
    // After an indel the hap->ref linear relation shifts; record it.
    if (v.ref.size() != v.alt.size()) {
      out.to_reference.AddSegment(
          hap_pos + static_cast<int64_t>(v.alt.size()), ref_cursor);
    }
  }
  out.sequence.append(ref_seq, ref_cursor,
                      ref_seq.size() - static_cast<size_t>(ref_cursor));
  return out;
}

}  // namespace

DonorGenome PlantVariants(const ReferenceGenome& reference,
                          const VariantPlanterOptions& options) {
  Rng rng(options.seed);
  DonorGenome donor;
  donor.reference = &reference;

  for (size_t ci = 0; ci < reference.chromosomes.size(); ++ci) {
    const std::string& seq = reference.chromosomes[ci].sequence;
    std::vector<PlantedVariant> variants;
    int64_t pos = 0;
    const double site_rate = options.snp_rate + options.indel_rate;
    while (site_rate > 0 && pos < static_cast<int64_t>(seq.size())) {
      // Distance to next variant ~ geometric(site_rate).
      double u = rng.NextDouble();
      int64_t gap =
          1 + static_cast<int64_t>(-std::log(1.0 - u) / site_rate);
      pos += gap;
      if (pos >= static_cast<int64_t>(seq.size()) - 1) break;
      PlantedVariant v;
      v.chrom = static_cast<int32_t>(ci);
      v.pos = pos;
      v.homozygous = rng.Bernoulli(options.hom_fraction);
      v.haplotype = static_cast<int>(rng.Uniform(2));
      bool is_snp = rng.NextDouble() < options.snp_rate / site_rate;
      if (is_snp) {
        v.ref = seq.substr(pos, 1);
        v.alt = std::string(1, MutateBase(rng, seq[pos]));
      } else {
        int len = 1 + static_cast<int>(
                          rng.Uniform(options.max_indel_length));
        if (rng.Bernoulli(0.5)) {
          // Deletion: ref = anchor + deleted bases, alt = anchor.
          if (pos + 1 + len >= static_cast<int64_t>(seq.size())) continue;
          v.ref = seq.substr(pos, 1 + len);
          v.alt = seq.substr(pos, 1);
        } else {
          // Insertion: ref = anchor, alt = anchor + inserted bases.
          v.ref = seq.substr(pos, 1);
          v.alt = v.ref + RandomInsert(rng, len);
        }
      }
      variants.push_back(std::move(v));
      pos += static_cast<int64_t>(variants.back().ref.size());
    }

    donor.haplotypes.push_back(
        {BuildHaplotype(seq, variants, 0), BuildHaplotype(seq, variants, 1)});
    for (auto& v : variants) donor.truth.push_back(std::move(v));
  }
  return donor;
}

}  // namespace gesall

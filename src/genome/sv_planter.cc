#include "genome/sv_planter.h"

#include <algorithm>

#include "formats/fasta.h"
#include "util/rng.h"

namespace gesall {

namespace {

using Type = StructuralVariantTruth::Type;

// Applies one SV to a haplotype (sequence + coordinate map), splicing the
// piecewise-linear map. `hap_start`/`hap_end` are haplotype coordinates.
//
// Mapping conventions for the edited block:
//  - deletion: the right flank's segments shift left;
//  - insertion: inserted bases map (approximately) to the insertion
//    point, the right flank shifts right;
//  - inversion: the sequence is reverse-complemented in place and the
//    (ascending) map is left untouched — breakpoints stay exact, interior
//    coordinates are approximate, which is what the SV caller consumes.
void ApplySv(DonorGenome::HaplotypeSeq* hap, Type type, int64_t hap_start,
             int64_t hap_end, const std::string& insert_seq) {
  std::string& seq = hap->sequence;
  const auto& old_segments = hap->to_reference.segments();

  if (type == Type::kInversion) {
    std::string block = seq.substr(hap_start, hap_end - hap_start);
    block = ReverseComplement(block);
    seq.replace(hap_start, hap_end - hap_start, block);
    return;
  }

  int64_t delta;  // shift applied to the right flank's hap coordinates
  if (type == Type::kDeletion) {
    delta = -(hap_end - hap_start);
    seq.erase(static_cast<size_t>(hap_start),
              static_cast<size_t>(hap_end - hap_start));
  } else {
    delta = static_cast<int64_t>(insert_seq.size());
    seq.insert(static_cast<size_t>(hap_start), insert_seq);
    hap_end = hap_start;  // insertions have an empty source range
  }

  CoordinateMap spliced;
  int64_t ref_at_end = hap->to_reference.ToReference(hap_end);
  bool boundary_added = false;
  for (const auto& s : old_segments) {
    if (s.hap_start < hap_start) {
      spliced.AddSegment(s.hap_start, s.ref_start);
    } else {
      if (!boundary_added) {
        spliced.AddSegment(hap_start + (type == Type::kInsertion ? delta : 0),
                           ref_at_end);
        boundary_added = true;
      }
      if (s.hap_start >= hap_end) {
        spliced.AddSegment(s.hap_start + delta, s.ref_start);
      }
    }
  }
  if (!boundary_added) {
    spliced.AddSegment(hap_start + (type == Type::kInsertion ? delta : 0),
                       ref_at_end);
  }
  hap->to_reference = std::move(spliced);
}

}  // namespace

std::vector<StructuralVariantTruth> PlantStructuralVariants(
    DonorGenome* donor, const SvPlanterOptions& options) {
  Rng rng(options.seed);
  std::vector<StructuralVariantTruth> truth;
  const auto& reference = *donor->reference;

  for (size_t chrom = 0; chrom < reference.chromosomes.size(); ++chrom) {
    const int64_t chrom_len = static_cast<int64_t>(
        reference.chromosomes[chrom].sequence.size());
    // Place SVs left-to-right with margins, then apply RIGHT-to-LEFT so
    // earlier haplotype coordinates stay valid during editing.
    std::vector<StructuralVariantTruth> planned;
    int64_t cursor = options.margin;
    auto plan = [&](Type type, int count) {
      for (int i = 0; i < count; ++i) {
        int64_t len = options.min_length +
                      static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(
                          options.max_length - options.min_length + 1)));
        int64_t gap = options.margin +
                      static_cast<int64_t>(rng.Uniform(static_cast<uint64_t>(
                          options.margin)));
        int64_t start = cursor + gap;
        int64_t end = type == Type::kInsertion ? start : start + len;
        if (end + options.margin >= chrom_len) return;
        StructuralVariantTruth sv;
        sv.type = type;
        sv.chrom = static_cast<int32_t>(chrom);
        sv.start = start;
        sv.end = end;
        sv.length = len;
        planned.push_back(sv);
        cursor = end;
      }
    };
    plan(Type::kDeletion, options.deletions_per_chromosome);
    plan(Type::kInsertion, options.insertions_per_chromosome);
    plan(Type::kInversion, options.inversions_per_chromosome);

    for (auto it = planned.rbegin(); it != planned.rend(); ++it) {
      std::string insert_seq;
      if (it->type == Type::kInsertion) {
        insert_seq.resize(static_cast<size_t>(it->length));
        for (auto& c : insert_seq) c = "ACGT"[rng.Uniform(4)];
      }
      for (int hap = 0; hap < 2; ++hap) {
        auto& h = donor->haplotypes[chrom][hap];
        int64_t hs = h.to_reference.FromReference(it->start);
        int64_t he = h.to_reference.FromReference(it->end);
        hs = std::clamp<int64_t>(hs, 0,
                                 static_cast<int64_t>(h.sequence.size()));
        he = std::clamp<int64_t>(he, hs,
                                 static_cast<int64_t>(h.sequence.size()));
        ApplySv(&h, it->type, hs, he, insert_seq);
      }
    }
    truth.insert(truth.end(), planned.begin(), planned.end());
  }
  std::sort(truth.begin(), truth.end(),
            [](const StructuralVariantTruth& a,
               const StructuralVariantTruth& b) {
              if (a.chrom != b.chrom) return a.chrom < b.chrom;
              return a.start < b.start;
            });
  return truth;
}

}  // namespace gesall

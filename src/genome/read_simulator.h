// Paired-end read simulation (primary analysis substitute, DESIGN.md §1).
//
// Produces the FASTQ pair files that secondary analysis consumes, plus a
// per-pair truth record used by tests and by the accuracy harnesses.
// Models the phenomena the paper's pipeline steps exist to handle:
// position-dependent base quality decay, sequencing errors, PCR
// duplicates (same fragment, fresh errors), and junk mates that fail to
// align (partial matching pairs for Mark Duplicates criterion 2).

#ifndef GESALL_GENOME_READ_SIMULATOR_H_
#define GESALL_GENOME_READ_SIMULATOR_H_

#include <cstdint>
#include <vector>

#include "formats/fastq.h"
#include "genome/donor.h"

namespace gesall {

/// \brief Read simulation parameters.
struct ReadSimulatorOptions {
  int read_length = 100;
  double coverage = 30.0;      // mean depth over the reference
  double insert_mean = 400.0;  // outer fragment length
  double insert_sd = 40.0;

  /// Probability that a pair is a PCR duplicate of an earlier fragment.
  double duplicate_rate = 0.02;
  /// Probability that mate 2 is replaced by unalignable junk sequence.
  double junk_mate_rate = 0.003;
  /// Fraction of pairs with globally degraded base quality.
  double low_quality_fraction = 0.01;

  int max_base_quality = 40;
  /// Mean phred-quality loss per sequencing cycle (end-of-read decay).
  double quality_decay_per_cycle = 0.12;

  uint64_t seed = 3;
};

/// \brief Ground truth for one simulated pair.
struct ReadPairTruth {
  int32_t chrom = 0;
  int64_t ref_start = 0;    // reference coordinate of the fragment start
  int64_t ref_end = 0;      // one past the fragment end
  int haplotype = 0;
  bool duplicate = false;   // PCR duplicate of an earlier pair
  bool junk_mate2 = false;  // mate 2 is unalignable
};

/// \brief A simulated sample: two mate FASTQ streams plus truth.
struct SimulatedSample {
  std::vector<FastqRecord> mate1;
  std::vector<FastqRecord> mate2;
  std::vector<ReadPairTruth> truth;
};

/// \brief Simulates a whole-genome paired-end sample from a donor.
SimulatedSample SimulateReads(const DonorGenome& donor,
                              const ReadSimulatorOptions& options);

}  // namespace gesall

#endif  // GESALL_GENOME_READ_SIMULATOR_H_

// Diploid donor genome: the reference plus planted germline variants
// (the truth set the GiaB-style precision/sensitivity evaluation in
// Appendix B.3 is scored against).

#ifndef GESALL_GENOME_DONOR_H_
#define GESALL_GENOME_DONOR_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "formats/fasta.h"

namespace gesall {

/// \brief One planted germline variant in reference coordinates.
struct PlantedVariant {
  int32_t chrom = 0;
  int64_t pos = 0;     // 0-based position of the first ref base
  std::string ref;
  std::string alt;
  bool homozygous = false;  // present on both haplotypes?
  int haplotype = 0;        // for het variants: which haplotype carries it

  bool IsSnp() const { return ref.size() == 1 && alt.size() == 1; }
};

/// \brief Maps positions on a mutated haplotype back to reference
/// coordinates (piecewise-linear segments around indels).
class CoordinateMap {
 public:
  struct Segment {
    int64_t hap_start;
    int64_t ref_start;
  };

  /// Appends a co-linear segment starting at the given coordinates.
  void AddSegment(int64_t hap_start, int64_t ref_start) {
    segments_.push_back({hap_start, ref_start});
  }

  /// Reference position corresponding to a haplotype position.
  int64_t ToReference(int64_t hap_pos) const;

  /// Approximate inverse: a haplotype position mapping to `ref_pos`
  /// (exact within co-linear segments).
  int64_t FromReference(int64_t ref_pos) const;

  /// Piecewise segments, ordered by hap_start (used by the SV planter to
  /// splice maps).
  const std::vector<Segment>& segments() const { return segments_; }

 private:
  std::vector<Segment> segments_;
};

/// \brief A diploid donor: two haplotype sequences per chromosome, each
/// with a map back to reference coordinates, plus the variant truth set.
struct DonorGenome {
  const ReferenceGenome* reference = nullptr;

  struct HaplotypeSeq {
    std::string sequence;
    CoordinateMap to_reference;
  };
  // haplotypes[chrom][0..1]
  std::vector<std::array<HaplotypeSeq, 2>> haplotypes;

  std::vector<PlantedVariant> truth;  // sorted by (chrom, pos)
};

/// \brief Variant-planting parameters (human-like defaults).
struct VariantPlanterOptions {
  double snp_rate = 0.001;       // ~1 SNP per kb
  double indel_rate = 0.0001;    // ~1 indel per 10 kb
  int max_indel_length = 8;
  double hom_fraction = 0.35;    // fraction of variants homozygous
  uint64_t seed = 2;
};

/// \brief Plants variants into the reference, producing the diploid donor.
DonorGenome PlantVariants(const ReferenceGenome& reference,
                          const VariantPlanterOptions& options);

}  // namespace gesall

#endif  // GESALL_GENOME_DONOR_H_

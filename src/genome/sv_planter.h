// Structural variant planting: edits a donor genome with large deletions,
// novel insertions, and inversions, recording breakpoint truth. Supports
// the GASV-style large-variant detection the paper is bringing into its
// pipeline (§2.1 "Large structure variants span thousands of bases").

#ifndef GESALL_GENOME_SV_PLANTER_H_
#define GESALL_GENOME_SV_PLANTER_H_

#include <cstdint>
#include <vector>

#include "genome/donor.h"

namespace gesall {

/// \brief A planted structural variant, in reference coordinates.
struct StructuralVariantTruth {
  enum class Type { kDeletion, kInsertion, kInversion };
  Type type = Type::kDeletion;
  int32_t chrom = 0;
  int64_t start = 0;  // reference position of the left breakpoint
  int64_t end = 0;    // right breakpoint (== start for insertions)
  int64_t length = 0; // deleted/inserted/inverted bases
};

/// \brief SV planting parameters.
struct SvPlanterOptions {
  int deletions_per_chromosome = 1;
  int insertions_per_chromosome = 1;
  int inversions_per_chromosome = 1;
  int64_t min_length = 1'000;
  int64_t max_length = 3'000;
  /// Keep SVs away from chromosome ends and from each other.
  int64_t margin = 5'000;
  uint64_t seed = 23;
};

/// \brief Applies homozygous SVs to both haplotypes of every chromosome
/// (the donor must not yet carry reads). Returns the breakpoint truth.
std::vector<StructuralVariantTruth> PlantStructuralVariants(
    DonorGenome* donor, const SvPlanterOptions& options);

}  // namespace gesall

#endif  // GESALL_GENOME_SV_PLANTER_H_

#include "genome/read_simulator.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"
#include "util/stats.h"

namespace gesall {

namespace {

struct Fragment {
  int32_t chrom;
  int haplotype;
  int64_t hap_start;
  int64_t hap_end;
};

char MutateBase(Rng& rng, char base) {
  static const char kBases[] = {'A', 'C', 'G', 'T'};
  char out = base;
  while (out == base) out = kBases[rng.Uniform(4)];
  return out;
}

// Applies quality decay and sequencing errors to a raw read sequence.
void SequenceRead(Rng& rng, const ReadSimulatorOptions& opt,
                  bool low_quality, std::string* seq, std::string* qual) {
  qual->resize(seq->size());
  for (size_t cycle = 0; cycle < seq->size(); ++cycle) {
    double q = opt.max_base_quality -
               opt.quality_decay_per_cycle * static_cast<double>(cycle) +
               rng.Gaussian(0.0, 2.0);
    if (low_quality) q -= 20.0;
    int phred = std::clamp(static_cast<int>(q + 0.5), 2, opt.max_base_quality);
    (*qual)[cycle] = static_cast<char>(phred + 33);
    if (rng.Bernoulli(ErrorProbFromPhred(phred))) {
      (*seq)[cycle] = MutateBase(rng, (*seq)[cycle]);
    }
  }
}

std::string RandomJunk(Rng& rng, int length) {
  static const char kBases[] = {'A', 'C', 'G', 'T'};
  std::string s(length, 'A');
  for (auto& c : s) c = kBases[rng.Uniform(4)];
  return s;
}

}  // namespace

SimulatedSample SimulateReads(const DonorGenome& donor,
                              const ReadSimulatorOptions& options) {
  Rng rng(options.seed);
  SimulatedSample sample;
  const auto& ref = *donor.reference;

  const int64_t genome_len = ref.TotalLength();
  const int64_t n_pairs = static_cast<int64_t>(
      options.coverage * static_cast<double>(genome_len) /
      (2.0 * options.read_length));

  // Chromosome sampling weights proportional to length.
  std::vector<int64_t> cumulative;
  int64_t total = 0;
  for (const auto& c : ref.chromosomes) {
    total += static_cast<int64_t>(c.sequence.size());
    cumulative.push_back(total);
  }

  std::vector<Fragment> fragments;  // pool for duplicate re-emission
  const int L = options.read_length;

  for (int64_t i = 0; i < n_pairs; ++i) {
    Fragment frag;
    bool is_duplicate = !fragments.empty() &&
                        rng.Bernoulli(options.duplicate_rate);
    if (is_duplicate) {
      frag = fragments[rng.Uniform(fragments.size())];
    } else {
      int64_t g = static_cast<int64_t>(
          rng.Uniform(static_cast<uint64_t>(total)));
      int32_t chrom = 0;
      while (cumulative[chrom] <= g) ++chrom;
      frag.chrom = chrom;
      frag.haplotype = static_cast<int>(rng.Uniform(2));
      const std::string& hap =
          donor.haplotypes[chrom][frag.haplotype].sequence;
      int64_t insert = std::max<int64_t>(
          L, static_cast<int64_t>(
                 rng.Gaussian(options.insert_mean, options.insert_sd) + 0.5));
      insert = std::min<int64_t>(insert, static_cast<int64_t>(hap.size()));
      frag.hap_start = static_cast<int64_t>(
          rng.Uniform(static_cast<uint64_t>(hap.size() - insert + 1)));
      frag.hap_end = frag.hap_start + insert;
      fragments.push_back(frag);
    }

    const auto& hap_info = donor.haplotypes[frag.chrom][frag.haplotype];
    const std::string& hap = hap_info.sequence;

    // Mate 1 reads the fragment's left end on the forward strand; mate 2
    // reads the right end on the reverse strand.
    std::string m1 = hap.substr(frag.hap_start,
                                std::min<int64_t>(L, frag.hap_end -
                                                         frag.hap_start));
    int64_t m2_start = std::max<int64_t>(frag.hap_start, frag.hap_end - L);
    std::string m2 =
        ReverseComplement(hap.substr(m2_start, frag.hap_end - m2_start));

    bool low_quality = rng.Bernoulli(options.low_quality_fraction);
    bool junk2 = rng.Bernoulli(options.junk_mate_rate);

    FastqRecord r1, r2;
    r1.name = "p";
    r1.name += std::to_string(i);
    r2.name = r1.name;
    r1.sequence = std::move(m1);
    SequenceRead(rng, options, low_quality, &r1.sequence, &r1.quality);
    if (junk2) {
      r2.sequence = RandomJunk(rng, L);
      SequenceRead(rng, options, /*low_quality=*/true, &r2.sequence,
                   &r2.quality);
    } else {
      r2.sequence = std::move(m2);
      SequenceRead(rng, options, low_quality, &r2.sequence, &r2.quality);
    }

    ReadPairTruth truth;
    truth.chrom = frag.chrom;
    truth.ref_start = hap_info.to_reference.ToReference(frag.hap_start);
    truth.ref_end = hap_info.to_reference.ToReference(frag.hap_end - 1) + 1;
    truth.haplotype = frag.haplotype;
    truth.duplicate = is_duplicate;
    truth.junk_mate2 = junk2;

    sample.mate1.push_back(std::move(r1));
    sample.mate2.push_back(std::move(r2));
    sample.truth.push_back(truth);
  }
  return sample;
}

}  // namespace gesall

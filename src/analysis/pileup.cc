#include "analysis/pileup.h"

namespace gesall {

RegionPileup RegionPileup::Build(const std::vector<SamRecord>& records,
                                 int32_t chrom, int64_t start, int64_t end,
                                 const PileupOptions& opt) {
  RegionPileup p;
  p.chrom_ = chrom;
  p.start_ = start;
  p.end_ = end;
  p.columns_.resize(static_cast<size_t>(end - start));

  for (const auto& r : records) {
    if (r.IsUnmapped() || r.ref_id != chrom) continue;
    if (opt.skip_duplicates && r.IsDuplicate()) continue;
    if (opt.skip_secondary && (r.IsSecondary() || r.IsSupplementary())) {
      continue;
    }
    if (r.mapq < opt.min_mapq) continue;
    if (r.AlignmentEnd() <= start || r.pos >= end) continue;

    int64_t ref_pos = r.pos;
    int64_t read_pos = 0;
    for (const auto& op : r.cigar) {
      switch (op.op) {
        case 'M':
        case '=':
        case 'X':
          for (int32_t i = 0; i < op.len; ++i) {
            int64_t rp = ref_pos + i;
            if (rp < start || rp >= end) continue;
            int qual = read_pos + i < static_cast<int64_t>(r.qual.size())
                           ? r.qual[read_pos + i] - 33
                           : 0;
            if (qual < opt.min_base_qual) continue;
            PileupEntry e;
            e.base = r.seq[read_pos + i];
            e.qual = qual;
            e.mapq = r.mapq;
            e.reverse = r.IsReverse();
            p.columns_[static_cast<size_t>(rp - start)].entries.push_back(e);
          }
          ref_pos += op.len;
          read_pos += op.len;
          break;
        case 'I': {
          int64_t anchor = ref_pos - 1;
          if (anchor >= start && anchor < end) {
            IndelObservation obs;
            obs.inserted = r.seq.substr(read_pos, op.len);
            obs.mapq = r.mapq;
            obs.reverse = r.IsReverse();
            p.columns_[static_cast<size_t>(anchor - start)].indels.push_back(
                std::move(obs));
          }
          read_pos += op.len;
          break;
        }
        case 'D':
        case 'N': {
          int64_t anchor = ref_pos - 1;
          if (op.op == 'D' && anchor >= start && anchor < end) {
            IndelObservation obs;
            obs.deleted = op.len;
            obs.mapq = r.mapq;
            obs.reverse = r.IsReverse();
            p.columns_[static_cast<size_t>(anchor - start)].indels.push_back(
                std::move(obs));
          }
          ref_pos += op.len;
          break;
        }
        case 'S':
          read_pos += op.len;
          break;
        case 'H':
        default:
          break;
      }
    }
  }
  return p;
}

}  // namespace gesall

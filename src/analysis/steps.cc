#include "analysis/steps.h"

#include <algorithm>

namespace gesall {

Result<std::string> SamToBam(const SamHeader& header,
                             const std::vector<SamRecord>& records) {
  return WriteBam(header, records);
}

Status AddReplaceReadGroups(const ReadGroup& read_group, SamHeader* header,
                            std::vector<SamRecord>* records) {
  if (read_group.id.empty()) {
    return Status::InvalidArgument("read group id must not be empty");
  }
  header->read_groups.clear();
  header->read_groups.push_back(read_group);
  for (auto& r : *records) {
    r.SetTag("RG", 'Z', read_group.id);
  }
  return Status::OK();
}

CleanSamStats CleanSam(const SamHeader& header,
                       std::vector<SamRecord>* records) {
  CleanSamStats stats;
  auto out = records->begin();
  auto keep = [&out](SamRecord& r) {
    if (&*out != &r) *out = std::move(r);
    ++out;
  };
  for (auto& r : *records) {
    if (r.IsUnmapped()) {
      // Normalize unmapped records: no CIGAR, mapq 0.
      if (!r.cigar.empty() || r.mapq != 0) {
        r.cigar.clear();
        r.mapq = 0;
        ++stats.unmapped_normalized;
      }
      keep(r);
      continue;
    }
    // CIGAR must consume exactly the read.
    if (CigarQueryLength(r.cigar) != static_cast<int64_t>(r.seq.size()) ||
        r.ref_id < 0 ||
        r.ref_id >= static_cast<int32_t>(header.refs.size())) {
      ++stats.dropped_invalid;
      continue;
    }
    // Clip alignments that overhang the end of the reference sequence: the
    // overhanging reference-consuming tail becomes a soft clip.
    int64_t ref_len = header.refs[r.ref_id].length;
    if (r.AlignmentEnd() > ref_len) {
      int64_t excess = r.AlignmentEnd() - ref_len;
      Cigar fixed;
      int64_t clip = 0;
      // Walk from the tail, moving `excess` reference bases into clips.
      Cigar rev(r.cigar.rbegin(), r.cigar.rend());
      for (auto& op : rev) {
        if (excess <= 0) {
          fixed.push_back(op);
          continue;
        }
        if (op.op == 'S' || op.op == 'H') {
          clip += op.len;
          continue;
        }
        bool ref_op = op.op == 'M' || op.op == 'D' || op.op == 'N' ||
                      op.op == '=' || op.op == 'X';
        bool query_op = op.op == 'M' || op.op == 'I' || op.op == '=' ||
                        op.op == 'X';
        if (!ref_op) {
          if (query_op) clip += op.len;
          continue;
        }
        if (op.len <= excess) {
          if (query_op) clip += op.len;
          excess -= op.len;
        } else {
          if (query_op) clip += excess;
          op.len -= static_cast<int32_t>(excess);
          excess = 0;
          fixed.push_back(op);
        }
      }
      if (clip > 0) fixed.insert(fixed.begin(),
                                 {'S', static_cast<int32_t>(clip)});
      std::reverse(fixed.begin(), fixed.end());
      r.cigar = std::move(fixed);
      ++stats.clipped_overhangs;
      if (CigarReferenceLength(r.cigar) == 0) {
        // Nothing left aligned: record becomes unmapped.
        r.SetFlag(sam_flags::kUnmapped, true);
        r.cigar.clear();
        r.mapq = 0;
      }
    }
    keep(r);
  }
  records->erase(out, records->end());
  return stats;
}

Status FixMateInformation(std::vector<SamRecord>* records) {
  for (size_t i = 0; i + 1 < records->size();) {
    SamRecord& a = (*records)[i];
    if (!a.IsPaired()) {
      ++i;
      continue;
    }
    if (i + 1 >= records->size() || (*records)[i + 1].qname != a.qname) {
      return Status::InvalidArgument(
          "input not grouped by read name: lone mate " + a.qname);
    }
    SamRecord& b = (*records)[i + 1];
    auto fix = [](SamRecord* rec, const SamRecord& mate) {
      rec->SetFlag(sam_flags::kMateUnmapped, mate.IsUnmapped());
      rec->SetFlag(sam_flags::kMateReverse, mate.IsReverse());
      if (!mate.IsUnmapped()) {
        rec->mate_ref_id = mate.ref_id;
        rec->mate_pos = mate.pos;
      } else if (!rec->IsUnmapped()) {
        // Unmapped mate adopts the mapped read's coordinates.
        rec->mate_ref_id = rec->ref_id;
        rec->mate_pos = rec->pos;
      }
    };
    fix(&a, b);
    fix(&b, a);
    if (!a.IsUnmapped() && !b.IsUnmapped() && a.ref_id == b.ref_id) {
      int64_t left = std::min(a.pos, b.pos);
      int64_t right = std::max(a.AlignmentEnd(), b.AlignmentEnd());
      int64_t tlen = right - left;
      a.tlen = a.pos <= b.pos ? tlen : -tlen;
      b.tlen = -a.tlen;
    } else {
      a.tlen = 0;
      b.tlen = 0;
    }
    i += 2;
  }
  return Status::OK();
}

bool CoordinateLess(const SamRecord& a, const SamRecord& b) {
  // Unmapped records sort to the end, like samtools.
  bool au = a.IsUnmapped(), bu = b.IsUnmapped();
  if (au != bu) return bu;
  if (a.ref_id != b.ref_id) return a.ref_id < b.ref_id;
  if (a.pos != b.pos) return a.pos < b.pos;
  if (a.qname != b.qname) return a.qname < b.qname;
  return a.flag < b.flag;
}

void SortSamByCoordinate(SamHeader* header,
                         std::vector<SamRecord>* records) {
  std::stable_sort(records->begin(), records->end(), CoordinateLess);
  header->sort_order = "coordinate";
}

void SortSamByName(SamHeader* header, std::vector<SamRecord>* records) {
  std::stable_sort(records->begin(), records->end(),
                   [](const SamRecord& a, const SamRecord& b) {
                     if (a.qname != b.qname) return a.qname < b.qname;
                     return a.flag < b.flag;
                   });
  header->sort_order = "queryname";
}

}  // namespace gesall

// PicardTools-style record-processing steps (paper Table 2, steps 2-5):
// SamToBam conversion, AddReplaceReadGroups, CleanSam, FixMateInformation,
// and SortSam. Each operates on an in-memory (header, records) dataset,
// exactly the unit Gesall's wrapper layer feeds to "external programs".

#ifndef GESALL_ANALYSIS_STEPS_H_
#define GESALL_ANALYSIS_STEPS_H_

#include <string>
#include <vector>

#include "formats/bam.h"
#include "formats/sam.h"
#include "util/status.h"

namespace gesall {

/// \brief Serializes a SAM dataset to BAM bytes (pipeline step 2).
Result<std::string> SamToBam(const SamHeader& header,
                             const std::vector<SamRecord>& records);

/// \brief Sets the read group of every record and registers it in the
/// header (pipeline step 3).
Status AddReplaceReadGroups(const ReadGroup& read_group, SamHeader* header,
                            std::vector<SamRecord>* records);

/// \brief Statistics reported by CleanSam.
struct CleanSamStats {
  int64_t clipped_overhangs = 0;   // alignments clipped at reference end
  int64_t unmapped_normalized = 0; // unmapped records with fields reset
  int64_t dropped_invalid = 0;     // records removed as irreparable
};

/// \brief Fixes CIGAR/mapping-quality inconsistencies (pipeline step 4):
/// clips alignments overhanging the reference end, normalizes unmapped
/// records (mapq 0, no CIGAR), and drops records whose CIGAR does not
/// consume the whole read.
CleanSamStats CleanSam(const SamHeader& header,
                       std::vector<SamRecord>* records);

/// \brief Makes mate information consistent within each pair (pipeline
/// step 5). Requires records grouped by read name (the logical
/// partitioning contract, paper §3.2); returns InvalidArgument otherwise.
Status FixMateInformation(std::vector<SamRecord>* records);

/// \brief Sorts records by (reference, position, name) and stamps the
/// header sort order (the SortSam half of MR round 3).
void SortSamByCoordinate(SamHeader* header, std::vector<SamRecord>* records);

/// \brief Sorts records by read name (queryname order).
void SortSamByName(SamHeader* header, std::vector<SamRecord>* records);

/// \brief Coordinate comparison used by SortSamByCoordinate (exposed for
/// the MapReduce range partitioner).
bool CoordinateLess(const SamRecord& a, const SamRecord& b);

}  // namespace gesall

#endif  // GESALL_ANALYSIS_STEPS_H_

// Small-variant calling: the Unified Genotyper (paper Table 2 step v1),
// a per-site diploid pileup genotyper, plus the shared site-calling engine
// reused by the Haplotype Caller.
//
// High-coverage sites are randomly downsampled using an RNG owned by the
// caller instance whose state advances sequentially across every site it
// processes. This mirrors GATK's downsampling and is the mechanistic
// reason even chromosome-level partitioning can produce slightly
// different results from a single serial run (paper §3.2-3: "quality
// control tests show that even chromosome-level partitioning gives
// slightly different results").

#ifndef GESALL_ANALYSIS_GENOTYPER_H_
#define GESALL_ANALYSIS_GENOTYPER_H_

#include <optional>
#include <vector>

#include "analysis/pileup.h"
#include "formats/fasta.h"
#include "formats/sam.h"
#include "formats/vcf.h"
#include "util/rng.h"

namespace gesall {

/// \brief Genotyping parameters.
struct GenotyperOptions {
  PileupOptions pileup;
  int min_depth = 4;
  /// Sites deeper than this are randomly downsampled (GATK-style).
  int max_depth = 100;
  /// Minimum phred-scaled call confidence to emit.
  double emit_qual = 30.0;
  double het_prior = 2e-3;
  double hom_prior = 1e-3;
  int min_alt_count = 2;
  int min_indel_count = 3;
  /// Per-read probability of a spurious indel observation.
  double indel_error = 0.005;
  uint64_t downsample_seed = 101;
};

/// \brief Downsamples a column to max_depth in place, consuming RNG state
/// only when the column is over-deep (exposed for tests and the HC).
void DownsampleColumn(PileupColumn* column, int max_depth, Rng* rng);

/// \brief Calls a SNP at one site, if the evidence supports one.
std::optional<VariantRecord> CallSnpSite(char ref_base,
                                         const PileupColumn& column,
                                         int32_t chrom, int64_t pos,
                                         const GenotyperOptions& options);

/// \brief Calls an indel anchored at one site, if supported.
std::optional<VariantRecord> CallIndelSite(const ReferenceGenome& reference,
                                           const PileupColumn& column,
                                           int32_t chrom, int64_t pos,
                                           const GenotyperOptions& options);

/// \brief Per-site diploid genotyper over coordinate-sorted alignments.
class UnifiedGenotyper {
 public:
  UnifiedGenotyper(const ReferenceGenome& reference,
                   GenotyperOptions options = {});

  /// Calls variants in [start, end) of one chromosome. The downsampling
  /// RNG state carries over between calls on the same instance.
  std::vector<VariantRecord> CallRegion(const std::vector<SamRecord>& records,
                                        int32_t chrom, int64_t start,
                                        int64_t end);

  /// Calls a whole chromosome (chunked internally).
  std::vector<VariantRecord> CallChromosome(
      const std::vector<SamRecord>& records, int32_t chrom);

  /// Calls every chromosome in order (the serial single-node program).
  std::vector<VariantRecord> CallAll(const std::vector<SamRecord>& records);

 private:
  const ReferenceGenome* reference_;
  GenotyperOptions options_;
  Rng rng_;
};

}  // namespace gesall

#endif  // GESALL_ANALYSIS_GENOTYPER_H_

#include "analysis/mark_duplicates.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/rng.h"

namespace gesall {

uint64_t ReadEndKey::Fingerprint() const {
  uint64_t h = MixSeeds(static_cast<uint64_t>(ref_id) + 1,
                        static_cast<uint64_t>(unclipped_5p) + 1);
  return MixSeeds(h, reverse ? 2 : 3);
}

ReadEndKey KeyOf(const SamRecord& rec) {
  ReadEndKey k;
  k.ref_id = rec.ref_id;
  k.unclipped_5p = rec.UnclippedFivePrimePos();
  k.reverse = rec.IsReverse();
  return k;
}

namespace {

struct PairInfo {
  size_t first_idx = 0;   // index of the first record of the group
  size_t second_idx = 0;  // == first_idx for singletons
  bool complete = false;
  ReadEndKey k1, k2;      // normalized: k1 <= k2 for complete pairs
  int64_t quality = 0;
  const std::string* qname = nullptr;
};

// Deterministic contest: higher quality wins; ties go to the smaller name.
bool Beats(const PairInfo& a, const PairInfo& b) {
  if (a.quality != b.quality) return a.quality > b.quality;
  return *a.qname < *b.qname;
}

}  // namespace

Result<MarkDuplicatesStats> MarkDuplicates(std::vector<SamRecord>* records) {
  MarkDuplicatesStats stats;
  std::vector<PairInfo> complete, partial;
  std::set<ReadEndKey> complete_ends;

  // Pass 1: collect pair information (input grouped by read name).
  for (size_t i = 0; i < records->size();) {
    SamRecord& a = (*records)[i];
    a.SetFlag(sam_flags::kDuplicate, false);
    size_t group_end = i + 1;
    while (group_end < records->size() &&
           (*records)[group_end].qname == a.qname) {
      (*records)[group_end].SetFlag(sam_flags::kDuplicate, false);
      ++group_end;
    }
    if (a.IsPaired() && group_end - i != 2) {
      return Status::InvalidArgument(
          "input not grouped by read name: group of " +
          std::to_string(group_end - i) + " for " + a.qname);
    }

    PairInfo info;
    info.first_idx = i;
    info.second_idx = group_end - 1;
    info.qname = &a.qname;
    const SamRecord& b = (*records)[info.second_idx];
    const bool a_mapped = !a.IsUnmapped();
    const bool b_mapped = group_end - i == 2 && !b.IsUnmapped();
    if (a_mapped && b_mapped) {
      info.complete = true;
      info.k1 = KeyOf(a);
      info.k2 = KeyOf(b);
      if (info.k2 < info.k1) std::swap(info.k1, info.k2);
      info.quality = a.BaseQualityScore() + b.BaseQualityScore();
      complete.push_back(info);
      complete_ends.insert(info.k1);
      complete_ends.insert(info.k2);
      ++stats.complete_pairs;
    } else if (a_mapped || b_mapped) {
      info.k1 = KeyOf(a_mapped ? a : b);
      info.quality =
          (a_mapped ? a : b).BaseQualityScore();
      partial.push_back(info);
      ++stats.partial_pairs;
    }
    i = group_end;
  }

  auto flag_pair = [records](const PairInfo& p) {
    (*records)[p.first_idx].SetFlag(sam_flags::kDuplicate, true);
    if (p.second_idx != p.first_idx) {
      (*records)[p.second_idx].SetFlag(sam_flags::kDuplicate, true);
    }
  };

  // Criterion 1: complete pairs sharing both 5' ends.
  std::map<std::pair<ReadEndKey, ReadEndKey>, const PairInfo*> best_complete;
  for (const auto& p : complete) {
    auto [it, inserted] = best_complete.try_emplace({p.k1, p.k2}, &p);
    if (!inserted) {
      if (Beats(p, *it->second)) {
        flag_pair(*it->second);
        it->second = &p;
      } else {
        flag_pair(p);
      }
      ++stats.duplicate_pairs;
    }
  }

  // Criterion 2: partial pairs whose mapped end coincides with any
  // complete-pair read end, or lose the contest among partials.
  std::map<ReadEndKey, const PairInfo*> best_partial;
  for (const auto& p : partial) {
    if (complete_ends.count(p.k1) > 0) {
      flag_pair(p);
      ++stats.duplicate_partials;
      continue;
    }
    auto [it, inserted] = best_partial.try_emplace(p.k1, &p);
    if (!inserted) {
      if (Beats(p, *it->second)) {
        flag_pair(*it->second);
        it->second = &p;
      } else {
        flag_pair(p);
      }
      ++stats.duplicate_partials;
    }
  }
  return stats;
}

}  // namespace gesall

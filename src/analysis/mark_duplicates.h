// Mark Duplicates (paper §3.2 "Compound Group Partitioning", Fig. 4).
//
// Flags read pairs mapped to exactly the same 5' unclipped start/end
// positions as duplicates, keeping the pair with the highest summed base
// quality. Two criteria:
//   1. complete matching pairs (both mates mapped) keyed by the unclipped
//      5' ends of both mates plus orientations;
//   2. partial matching pairs (one mate unmapped): the mapped read's 5'
//      end is compared against the 5' ends of *all* reads — it is a
//      duplicate if it coincides with any complete-pair read, or loses the
//      quality contest among partials sharing the key.
//
// Tie-breaking is deterministic by content (quality, then read name), so
// the same input always yields the same output regardless of execution
// order — the property behind the paper's observation that parallel
// Mark Duplicates matches serial output on identical input (§4.5.2).

#ifndef GESALL_ANALYSIS_MARK_DUPLICATES_H_
#define GESALL_ANALYSIS_MARK_DUPLICATES_H_

#include <cstdint>
#include <vector>

#include "formats/sam.h"
#include "util/status.h"

namespace gesall {

/// \brief One mate's duplicate key: (reference, 5' unclipped end, strand).
struct ReadEndKey {
  int32_t ref_id = -1;
  int64_t unclipped_5p = -1;
  bool reverse = false;

  auto operator<=>(const ReadEndKey&) const = default;

  /// 64-bit fingerprint used by the bloom-filter optimization.
  uint64_t Fingerprint() const;
};

/// Extracts the duplicate key of one mapped record.
ReadEndKey KeyOf(const SamRecord& rec);

/// \brief Statistics reported by MarkDuplicates.
struct MarkDuplicatesStats {
  int64_t complete_pairs = 0;
  int64_t partial_pairs = 0;
  int64_t duplicate_pairs = 0;    // complete pairs flagged
  int64_t duplicate_partials = 0; // partial pairs flagged
};

/// \brief Serial reference implementation (single-node PicardTools
/// equivalent). Requires records grouped by read name; sets the duplicate
/// FLAG in place.
Result<MarkDuplicatesStats> MarkDuplicates(std::vector<SamRecord>* records);

}  // namespace gesall

#endif  // GESALL_ANALYSIS_MARK_DUPLICATES_H_

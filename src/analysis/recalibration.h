// Base Quality Score Recalibration (paper Table 2 steps 11-12).
//
// BaseRecalibrator tabulates empirical mismatch rates per covariate group
// (read group, reported quality, machine cycle, dinucleotide context);
// PrintReads rewrites base qualities from the table. The table supports
// Merge/serialization because Gesall's group-partitioning scheme builds
// per-partition tables and combines them (paper §3.2: "partitioning by
// user-defined covariates").

#ifndef GESALL_ANALYSIS_RECALIBRATION_H_
#define GESALL_ANALYSIS_RECALIBRATION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "formats/fasta.h"
#include "formats/sam.h"
#include "util/status.h"

namespace gesall {

/// \brief Covariate key of one observed base.
struct CovariateKey {
  std::string read_group;
  int reported_quality = 0;
  int cycle_bucket = 0;   // sequencing cycle / 10
  char prev_base = 'N';   // dinucleotide context (previous read base)

  auto operator<=>(const CovariateKey&) const = default;
};

/// \brief Empirical (observations, mismatches) counts per covariate.
class RecalibrationTable {
 public:
  void Observe(const CovariateKey& key, bool mismatch);

  /// Phred-scaled empirical quality with +1/+2 smoothing.
  int EmpiricalQuality(const CovariateKey& key) const;

  /// Number of distinct covariate groups.
  size_t size() const { return counts_.size(); }

  int64_t total_observations() const;
  int64_t total_mismatches() const;

  /// Adds another table's counts into this one.
  void Merge(const RecalibrationTable& other);

  std::string Serialize() const;
  static Result<RecalibrationTable> Deserialize(const std::string& data);

 private:
  struct Counts {
    int64_t observations = 0;
    int64_t mismatches = 0;
  };
  std::map<CovariateKey, Counts> counts_;
};

/// \brief Builds the recalibration table from aligned records against the
/// reference (only M/=/X positions of primary, non-duplicate reads count).
RecalibrationTable BaseRecalibrator(const ReferenceGenome& reference,
                                    const std::vector<SamRecord>& records);

/// \brief Rewrites every base quality from the table (pipeline step 12).
/// Covariates are recomputed from the *reported* (current) qualities, so
/// apply exactly once.
void PrintReads(const RecalibrationTable& table,
                std::vector<SamRecord>* records);

}  // namespace gesall

#endif  // GESALL_ANALYSIS_RECALIBRATION_H_

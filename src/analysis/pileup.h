// Pileup engine: per-reference-position stacks of aligned bases and indel
// observations, the substrate shared by the Base Recalibrator and both
// variant callers.

#ifndef GESALL_ANALYSIS_PILEUP_H_
#define GESALL_ANALYSIS_PILEUP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "formats/sam.h"

namespace gesall {

/// \brief One aligned base observed at a reference position.
struct PileupEntry {
  char base = 'N';
  int qual = 0;       // phred base quality
  int mapq = 0;
  bool reverse = false;
};

/// \brief One indel observation anchored at a reference position (the
/// base *before* the event, VCF-style).
struct IndelObservation {
  std::string inserted;  // non-empty for insertions
  int32_t deleted = 0;   // >0 for deletions
  int mapq = 0;
  bool reverse = false;

  bool SameAllele(const IndelObservation& other) const {
    return inserted == other.inserted && deleted == other.deleted;
  }
};

/// \brief All observations at one reference position.
struct PileupColumn {
  std::vector<PileupEntry> entries;
  std::vector<IndelObservation> indels;

  int depth() const { return static_cast<int>(entries.size()); }
};

/// \brief Pileup filtering options.
struct PileupOptions {
  int min_mapq = 10;
  int min_base_qual = 6;
  bool skip_duplicates = true;
  bool skip_secondary = true;
};

/// \brief Pileup over one reference region [start, end) of one chromosome.
class RegionPileup {
 public:
  /// Builds the pileup from records (any order; records outside the region
  /// or chromosome, unmapped, filtered reads are skipped).
  static RegionPileup Build(const std::vector<SamRecord>& records,
                            int32_t chrom, int64_t start, int64_t end,
                            const PileupOptions& options = {});

  int32_t chrom() const { return chrom_; }
  int64_t start() const { return start_; }
  int64_t end() const { return end_; }

  /// Column at an absolute reference position inside the region.
  const PileupColumn& at(int64_t pos) const {
    return columns_[static_cast<size_t>(pos - start_)];
  }

 private:
  int32_t chrom_ = 0;
  int64_t start_ = 0;
  int64_t end_ = 0;
  std::vector<PileupColumn> columns_;
};

}  // namespace gesall

#endif  // GESALL_ANALYSIS_PILEUP_H_

#include "analysis/recalibration.h"

#include <algorithm>

#include "util/io.h"
#include "util/stats.h"

namespace gesall {

void RecalibrationTable::Observe(const CovariateKey& key, bool mismatch) {
  Counts& c = counts_[key];
  ++c.observations;
  if (mismatch) ++c.mismatches;
}

int RecalibrationTable::EmpiricalQuality(const CovariateKey& key) const {
  auto it = counts_.find(key);
  if (it == counts_.end()) return key.reported_quality;
  const Counts& c = it->second;
  double p = (c.mismatches + 1.0) / (c.observations + 2.0);
  return PhredFromErrorProb(p, /*cap=*/45);
}

int64_t RecalibrationTable::total_observations() const {
  int64_t n = 0;
  for (const auto& [k, c] : counts_) n += c.observations;
  return n;
}

int64_t RecalibrationTable::total_mismatches() const {
  int64_t n = 0;
  for (const auto& [k, c] : counts_) n += c.mismatches;
  return n;
}

void RecalibrationTable::Merge(const RecalibrationTable& other) {
  for (const auto& [k, c] : other.counts_) {
    Counts& mine = counts_[k];
    mine.observations += c.observations;
    mine.mismatches += c.mismatches;
  }
}

std::string RecalibrationTable::Serialize() const {
  std::string out;
  BufferWriter w(&out);
  w.PutU64(counts_.size());
  for (const auto& [k, c] : counts_) {
    w.PutString(k.read_group);
    w.PutI32(k.reported_quality);
    w.PutI32(k.cycle_bucket);
    w.PutU8(static_cast<uint8_t>(k.prev_base));
    w.PutI64(c.observations);
    w.PutI64(c.mismatches);
  }
  return out;
}

Result<RecalibrationTable> RecalibrationTable::Deserialize(
    const std::string& data) {
  RecalibrationTable table;
  BufferReader r(data);
  uint64_t n;
  GESALL_RETURN_NOT_OK(r.GetU64(&n));
  for (uint64_t i = 0; i < n; ++i) {
    CovariateKey k;
    Counts c;
    GESALL_RETURN_NOT_OK(r.GetString(&k.read_group));
    GESALL_RETURN_NOT_OK(r.GetI32(&k.reported_quality));
    GESALL_RETURN_NOT_OK(r.GetI32(&k.cycle_bucket));
    uint8_t prev;
    GESALL_RETURN_NOT_OK(r.GetU8(&prev));
    k.prev_base = static_cast<char>(prev);
    GESALL_RETURN_NOT_OK(r.GetI64(&c.observations));
    GESALL_RETURN_NOT_OK(r.GetI64(&c.mismatches));
    table.counts_[k] = c;
  }
  return table;
}

namespace {

// Visits every aligned (M/=/X) base of a record, reporting the read
// cycle, read base, and matching reference base.
template <typename Fn>
void ForEachAlignedBase(const ReferenceGenome& reference,
                        const SamRecord& rec, Fn&& fn) {
  if (rec.IsUnmapped() || rec.ref_id < 0 ||
      rec.ref_id >= static_cast<int32_t>(reference.chromosomes.size())) {
    return;
  }
  const std::string& ref_seq = reference.chromosomes[rec.ref_id].sequence;
  int64_t ref_pos = rec.pos;
  int64_t read_pos = 0;
  for (const auto& op : rec.cigar) {
    switch (op.op) {
      case 'M':
      case '=':
      case 'X':
        for (int32_t i = 0; i < op.len; ++i) {
          int64_t rp = ref_pos + i;
          int64_t qp = read_pos + i;
          if (rp < 0 || rp >= static_cast<int64_t>(ref_seq.size())) continue;
          fn(qp, rec.seq[qp], ref_seq[rp]);
        }
        ref_pos += op.len;
        read_pos += op.len;
        break;
      case 'I':
      case 'S':
        read_pos += op.len;
        break;
      case 'D':
      case 'N':
        ref_pos += op.len;
        break;
      default:
        break;
    }
  }
}

CovariateKey KeyFor(const SamRecord& rec, int64_t cycle) {
  CovariateKey k;
  k.read_group = rec.GetTag("RG").value_or("");
  k.reported_quality = cycle < static_cast<int64_t>(rec.qual.size())
                           ? rec.qual[cycle] - 33
                           : 0;
  k.cycle_bucket = static_cast<int>(cycle / 10);
  k.prev_base = cycle > 0 ? rec.seq[cycle - 1] : 'N';
  return k;
}

}  // namespace

RecalibrationTable BaseRecalibrator(const ReferenceGenome& reference,
                                    const std::vector<SamRecord>& records) {
  RecalibrationTable table;
  for (const auto& rec : records) {
    if (rec.IsDuplicate() || rec.IsSecondary() || rec.IsSupplementary()) {
      continue;
    }
    ForEachAlignedBase(reference, rec,
                       [&](int64_t cycle, char read_base, char ref_base) {
                         table.Observe(KeyFor(rec, cycle),
                                       read_base != ref_base);
                       });
  }
  return table;
}

void PrintReads(const RecalibrationTable& table,
                std::vector<SamRecord>* records) {
  for (auto& rec : *records) {
    std::string new_qual = rec.qual;
    for (int64_t cycle = 0;
         cycle < static_cast<int64_t>(rec.qual.size()); ++cycle) {
      int q = table.EmpiricalQuality(KeyFor(rec, cycle));
      new_qual[cycle] = static_cast<char>(std::clamp(q, 2, 60) + 33);
    }
    rec.qual = std::move(new_qual);
  }
}

}  // namespace gesall

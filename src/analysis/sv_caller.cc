#include "analysis/sv_caller.h"

#include <algorithm>
#include <map>

namespace gesall {

const char* StructuralVariantCall::TypeName(Type type) {
  switch (type) {
    case Type::kDeletion:
      return "DEL";
    case Type::kInsertion:
      return "INS";
    case Type::kInversion:
      return "INV";
    case Type::kTranslocation:
      return "TRA";
  }
  return "?";
}

namespace {

using Type = StructuralVariantCall::Type;

// One discordant pair signature.
struct Signature {
  int64_t left = 0;    // left breakpoint evidence (left mate's end)
  int64_t right = 0;   // right breakpoint evidence (right mate's start)
  int32_t chrom2 = -1; // translocations only
  int64_t pos2 = 0;
};

struct ClusterKey {
  Type type;
  int32_t chrom;
  int32_t chrom2;
  auto operator<=>(const ClusterKey&) const = default;
};

int64_t Median(std::vector<int64_t>* v) {
  std::sort(v->begin(), v->end());
  return (*v)[v->size() / 2];
}

}  // namespace

std::vector<StructuralVariantCall> CallStructuralVariants(
    const std::vector<SamRecord>& records, const SvCallerOptions& opt) {
  const double hi = opt.insert_mean + opt.z_threshold * opt.insert_sd;
  const double lo = opt.insert_mean - opt.z_threshold * opt.insert_sd;

  std::map<ClusterKey, std::vector<Signature>> signatures;
  for (const auto& r : records) {
    if (!r.IsPaired() || !r.IsFirstOfPair()) continue;
    if (r.IsUnmapped() || r.IsMateUnmapped()) continue;
    if (r.IsSecondary() || r.IsSupplementary() || r.IsDuplicate()) continue;
    if (r.mapq < opt.min_mapq) continue;

    if (r.ref_id != r.mate_ref_id) {
      Signature sig;
      sig.left = r.pos;
      sig.right = r.pos;
      sig.chrom2 = r.mate_ref_id;
      sig.pos2 = r.mate_pos;
      int32_t c1 = r.ref_id, c2 = r.mate_ref_id;
      signatures[{Type::kTranslocation, std::min(c1, c2), std::max(c1, c2)}]
          .push_back(sig);
      continue;
    }

    const bool r_is_left = r.pos <= r.mate_pos;
    const int64_t left_pos = std::min(r.pos, r.mate_pos);
    const int64_t right_pos = std::max(r.pos, r.mate_pos);
    const bool left_reverse = r_is_left ? r.IsReverse() : r.IsMateReverse();
    const bool right_reverse = r_is_left ? r.IsMateReverse() : r.IsReverse();

    Signature sig;
    // Left breakpoint evidence: the left mate's alignment end; the mate's
    // CIGAR is unavailable, so approximate its span by the read length.
    int64_t read_span = static_cast<int64_t>(r.seq.size());
    sig.left = r_is_left ? r.AlignmentEnd() : left_pos + read_span;
    sig.right = right_pos;

    if (left_reverse == right_reverse) {
      signatures[{Type::kInversion, r.ref_id, -1}].push_back(sig);
      continue;
    }
    if (left_reverse && !right_reverse) continue;  // divergent: not modeled

    int64_t span = r.tlen != 0 ? std::abs(r.tlen)
                               : right_pos + read_span - left_pos;
    if (span > hi) {
      signatures[{Type::kDeletion, r.ref_id, -1}].push_back(sig);
    } else if (span < lo && span > 0) {
      signatures[{Type::kInsertion, r.ref_id, -1}].push_back(sig);
    }
  }

  std::vector<StructuralVariantCall> calls;
  for (auto& [key, sigs] : signatures) {
    std::sort(sigs.begin(), sigs.end(),
              [](const Signature& a, const Signature& b) {
                return a.left < b.left;
              });
    size_t begin = 0;
    while (begin < sigs.size()) {
      size_t end = begin + 1;
      while (end < sigs.size() &&
             sigs[end].left - sigs[end - 1].left <= opt.cluster_window) {
        ++end;
      }
      if (static_cast<int>(end - begin) >= opt.min_support) {
        std::vector<int64_t> lefts, rights, pos2s;
        for (size_t i = begin; i < end; ++i) {
          lefts.push_back(sigs[i].left);
          rights.push_back(sigs[i].right);
          pos2s.push_back(sigs[i].pos2);
        }
        StructuralVariantCall call;
        call.type = key.type;
        call.chrom = key.chrom;
        call.start = Median(&lefts);
        call.end = Median(&rights);
        call.chrom2 = key.chrom2;
        if (key.type == Type::kTranslocation) call.pos2 = Median(&pos2s);
        call.support = static_cast<int>(end - begin);
        calls.push_back(call);
      }
      begin = end;
    }
  }
  std::sort(calls.begin(), calls.end(),
            [](const StructuralVariantCall& a,
               const StructuralVariantCall& b) {
              if (a.chrom != b.chrom) return a.chrom < b.chrom;
              return a.start < b.start;
            });
  return calls;
}

}  // namespace gesall

// Haplotype Caller (paper Table 2 step v2): small-variant calling driven
// by *greedy sequential segmentation* of the genome into active windows
// (paper §3.2-3). The caller walks every position, computes an activity
// score from the pileup, greedily opens/extends/closes active windows
// under minimum/maximum length constraints, and genotypes sites inside
// each window.
//
// The sequential walk plus the stateful downsampling RNG are what make
// fine-grained range partitioning of this program non-trivial — the
// motivation for Gesall's overlapping range-partitioning scheme.

#ifndef GESALL_ANALYSIS_HAPLOTYPE_CALLER_H_
#define GESALL_ANALYSIS_HAPLOTYPE_CALLER_H_

#include <cstdint>
#include <vector>

#include "analysis/genotyper.h"
#include "formats/fasta.h"
#include "formats/sam.h"
#include "formats/vcf.h"

namespace gesall {

/// \brief Haplotype Caller parameters.
struct HaplotypeCallerOptions {
  GenotyperOptions genotyper = [] {
    GenotyperOptions g;
    g.max_depth = 60;  // HC downsamples harder than UG
    return g;
  }();
  /// Fraction of non-reference evidence that makes a position active.
  double activity_threshold = 0.12;
  /// Depth below which a position can never be active.
  int min_active_depth = 3;
  /// Active windows are padded, and bounded in [min_window, max_window].
  int window_pad = 10;
  int min_window = 40;
  int max_window = 300;
  /// An inactive run of this many positions closes the current window.
  int window_gap = 20;
};

/// \brief Half-open active window [start, end).
struct ActiveWindow {
  int64_t start = 0;
  int64_t end = 0;
  bool operator==(const ActiveWindow&) const = default;
};

/// \brief Greedy sequential segmentation of an activity track into active
/// windows (exposed for tests and for the overlap-sizing analysis).
std::vector<ActiveWindow> SegmentActiveWindows(
    const std::vector<double>& activity, int64_t region_start,
    int64_t region_end, const HaplotypeCallerOptions& options);

/// \brief Active-window small-variant caller.
class HaplotypeCaller {
 public:
  HaplotypeCaller(const ReferenceGenome& reference,
                  HaplotypeCallerOptions options = {});

  /// Calls variants in [start, end) of one chromosome, emitting only
  /// variants whose position falls in [emit_start, emit_end) — the hook
  /// Gesall's overlapping range partitioning uses (context beyond the
  /// emit range still shapes windows near the boundary).
  std::vector<VariantRecord> CallRegion(const std::vector<SamRecord>& records,
                                        int32_t chrom, int64_t start,
                                        int64_t end, int64_t emit_start,
                                        int64_t emit_end);

  /// Calls a whole chromosome with a sequential walk.
  std::vector<VariantRecord> CallChromosome(
      const std::vector<SamRecord>& records, int32_t chrom);

  /// Serial single-node program: every chromosome in order, one RNG.
  std::vector<VariantRecord> CallAll(const std::vector<SamRecord>& records);

 private:
  const ReferenceGenome* reference_;
  HaplotypeCallerOptions options_;
  Rng rng_;
};

}  // namespace gesall

#endif  // GESALL_ANALYSIS_HAPLOTYPE_CALLER_H_

// GASV-style structural variant caller [Sindi et al. 2012], the large-
// variant detection the paper is integrating into its pipeline (§2.1).
//
// Paired-end signatures: a concordant pair maps to one chromosome, in
// convergent (forward-reverse) orientation, at a distance within the
// library's insert-size distribution. Discordant pairs are classified by
// how they violate that —
//   span too long            -> deletion between the mates
//   span too short           -> (novel) insertion between the mates
//   same-strand orientation  -> inversion
//   mates on different chromosomes -> translocation
// — and clustered by position; clusters with enough support become calls.

#ifndef GESALL_ANALYSIS_SV_CALLER_H_
#define GESALL_ANALYSIS_SV_CALLER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "formats/sam.h"

namespace gesall {

/// \brief One structural variant call.
struct StructuralVariantCall {
  enum class Type { kDeletion, kInsertion, kInversion, kTranslocation };
  Type type = Type::kDeletion;
  int32_t chrom = 0;
  int64_t start = 0;   // left breakpoint estimate
  int64_t end = 0;     // right breakpoint estimate (same chrom)
  int32_t chrom2 = -1; // partner chromosome for translocations
  int64_t pos2 = 0;    // partner breakpoint for translocations
  int support = 0;     // discordant pairs in the cluster

  static const char* TypeName(Type type);
};

/// \brief Caller parameters.
struct SvCallerOptions {
  /// Library insert-size distribution; pairs outside
  /// mean +/- z_threshold * sd are discordant by span.
  double insert_mean = 400.0;
  double insert_sd = 40.0;
  double z_threshold = 5.0;
  int min_mapq = 20;
  /// Minimum discordant pairs per cluster to emit a call.
  int min_support = 4;
  /// Pairs whose left breakpoints are within this distance cluster.
  int64_t cluster_window = 400;
};

/// \brief Calls structural variants from aligned records. Uses each
/// pair's first-of-pair record (mate info must be consistent, i.e. Fix
/// Mate Information has run). Records may be in any order.
std::vector<StructuralVariantCall> CallStructuralVariants(
    const std::vector<SamRecord>& records,
    const SvCallerOptions& options = {});

}  // namespace gesall

#endif  // GESALL_ANALYSIS_SV_CALLER_H_

#include "analysis/genotyper.h"

#include <algorithm>
#include <cmath>

#include "util/stats.h"

namespace gesall {

void DownsampleColumn(PileupColumn* column, int max_depth, Rng* rng) {
  if (column->depth() <= max_depth) return;
  // Partial Fisher-Yates: pick max_depth entries at random.
  auto& e = column->entries;
  for (int i = 0; i < max_depth; ++i) {
    size_t j = i + rng->Uniform(e.size() - i);
    std::swap(e[i], e[j]);
  }
  e.resize(max_depth);
}

namespace {

struct GenotypePosteriors {
  double qual = 0.0;        // -10 log10 P(hom-ref | data)
  Genotype genotype = Genotype::kHet;
};

// Normalizes three log10 genotype likelihoods with priors into the call
// confidence and the most likely non-ref genotype.
GenotypePosteriors Posteriors(double l_rr, double l_ra, double l_aa,
                              const GenotyperOptions& opt) {
  double p_rr = l_rr + std::log10(1.0 - opt.het_prior - opt.hom_prior);
  double p_ra = l_ra + std::log10(opt.het_prior);
  double p_aa = l_aa + std::log10(opt.hom_prior);
  double m = std::max({p_rr, p_ra, p_aa});
  double s = std::pow(10.0, p_rr - m) + std::pow(10.0, p_ra - m) +
             std::pow(10.0, p_aa - m);
  double post_rr = std::pow(10.0, p_rr - m) / s;
  GenotypePosteriors out;
  out.qual = std::min(1000.0, -10.0 * std::log10(std::max(post_rr, 1e-100)));
  out.genotype = p_ra >= p_aa ? Genotype::kHet : Genotype::kHomAlt;
  return out;
}

double RmsMapq(const PileupColumn& column) {
  if (column.entries.empty()) return 0.0;
  double sum = 0;
  for (const auto& e : column.entries) {
    sum += static_cast<double>(e.mapq) * e.mapq;
  }
  return std::sqrt(sum / column.entries.size());
}

}  // namespace

std::optional<VariantRecord> CallSnpSite(char ref_base,
                                         const PileupColumn& column,
                                         int32_t chrom, int64_t pos,
                                         const GenotyperOptions& opt) {
  if (column.depth() < opt.min_depth) return std::nullopt;

  // Most frequent non-reference base is the candidate allele.
  int counts[4] = {0, 0, 0, 0};
  static const char kBases[] = {'A', 'C', 'G', 'T'};
  auto base_index = [](char b) {
    switch (b) {
      case 'A':
        return 0;
      case 'C':
        return 1;
      case 'G':
        return 2;
      default:
        return 3;
    }
  };
  for (const auto& e : column.entries) {
    if (e.base == 'A' || e.base == 'C' || e.base == 'G' || e.base == 'T') {
      ++counts[base_index(e.base)];
    }
  }
  int alt_idx = -1;
  for (int i = 0; i < 4; ++i) {
    if (kBases[i] == ref_base) continue;
    if (alt_idx < 0 || counts[i] > counts[alt_idx]) alt_idx = i;
  }
  if (alt_idx < 0 || counts[alt_idx] < opt.min_alt_count) return std::nullopt;
  const char alt_base = kBases[alt_idx];

  double l_rr = 0, l_ra = 0, l_aa = 0;
  int ref_fwd = 0, ref_rev = 0, alt_fwd = 0, alt_rev = 0;
  for (const auto& e : column.entries) {
    double err = ErrorProbFromPhred(e.qual);
    double p_if_ref = e.base == ref_base ? 1.0 - err : err / 3.0;
    double p_if_alt = e.base == alt_base ? 1.0 - err : err / 3.0;
    l_rr += std::log10(p_if_ref);
    l_aa += std::log10(p_if_alt);
    l_ra += std::log10(0.5 * p_if_ref + 0.5 * p_if_alt);
    if (e.base == ref_base) {
      (e.reverse ? ref_rev : ref_fwd) += 1;
    } else if (e.base == alt_base) {
      (e.reverse ? alt_rev : alt_fwd) += 1;
    }
  }
  GenotypePosteriors post = Posteriors(l_rr, l_ra, l_aa, opt);
  if (post.qual < opt.emit_qual) return std::nullopt;

  VariantRecord v;
  v.chrom = chrom;
  v.pos = pos;
  v.ref = std::string(1, ref_base);
  v.alt = std::string(1, alt_base);
  v.qual = post.qual;
  v.genotype = post.genotype;
  v.mq = RmsMapq(column);
  v.dp = column.depth();
  v.fs = FisherStrandPhred(ref_fwd, ref_rev, alt_fwd, alt_rev);
  int denom = ref_fwd + ref_rev + alt_fwd + alt_rev;
  v.ab = denom > 0 ? (alt_fwd + alt_rev) / static_cast<double>(denom) : 0.0;
  return v;
}

std::optional<VariantRecord> CallIndelSite(const ReferenceGenome& reference,
                                           const PileupColumn& column,
                                           int32_t chrom, int64_t pos,
                                           const GenotyperOptions& opt) {
  if (column.indels.empty()) return std::nullopt;

  // Majority indel allele at this anchor.
  std::vector<std::pair<const IndelObservation*, int>> alleles;
  for (const auto& obs : column.indels) {
    bool found = false;
    for (auto& [rep, count] : alleles) {
      if (rep->SameAllele(obs)) {
        ++count;
        found = true;
        break;
      }
    }
    if (!found) alleles.emplace_back(&obs, 1);
  }
  auto best = std::max_element(
      alleles.begin(), alleles.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  const IndelObservation& allele = *best->first;
  const int k = best->second;
  if (k < opt.min_indel_count) return std::nullopt;

  const int depth = std::max(column.depth(), k);
  if (depth < opt.min_depth) return std::nullopt;
  const int non_carriers = depth - k;

  const double e = opt.indel_error;
  double l_rr = k * std::log10(e) + non_carriers * std::log10(1.0 - e);
  double l_aa = k * std::log10(1.0 - e) + non_carriers * std::log10(e);
  double l_ra = depth * std::log10(0.5);
  GenotypePosteriors post = Posteriors(l_rr, l_ra, l_aa, opt);
  if (post.qual < opt.emit_qual) return std::nullopt;

  const std::string& ref_seq = reference.chromosomes[chrom].sequence;
  VariantRecord v;
  v.chrom = chrom;
  v.pos = pos;
  if (!allele.inserted.empty()) {
    v.ref = ref_seq.substr(pos, 1);
    v.alt = v.ref + allele.inserted;
  } else {
    if (pos + 1 + allele.deleted > static_cast<int64_t>(ref_seq.size())) {
      return std::nullopt;
    }
    v.ref = ref_seq.substr(pos, 1 + allele.deleted);
    v.alt = ref_seq.substr(pos, 1);
  }
  v.qual = post.qual;
  v.genotype = post.genotype;
  v.mq = RmsMapq(column);
  v.dp = depth;
  int alt_fwd = 0, alt_rev = 0, ref_fwd = 0, ref_rev = 0;
  for (const auto& obs : column.indels) {
    if (obs.SameAllele(allele)) (obs.reverse ? alt_rev : alt_fwd) += 1;
  }
  for (const auto& entry : column.entries) {
    (entry.reverse ? ref_rev : ref_fwd) += 1;
  }
  // Non-carrier counts include the carriers' base entries; approximate the
  // ref strand split by subtracting carriers proportionally.
  v.fs = FisherStrandPhred(std::max(0, ref_fwd - alt_fwd),
                           std::max(0, ref_rev - alt_rev), alt_fwd, alt_rev);
  v.ab = depth > 0 ? k / static_cast<double>(depth) : 0.0;
  return v;
}

UnifiedGenotyper::UnifiedGenotyper(const ReferenceGenome& reference,
                                   GenotyperOptions options)
    : reference_(&reference), options_(options),
      rng_(options.downsample_seed) {}

std::vector<VariantRecord> UnifiedGenotyper::CallRegion(
    const std::vector<SamRecord>& records, int32_t chrom, int64_t start,
    int64_t end) {
  std::vector<VariantRecord> out;
  const std::string& ref_seq = reference_->chromosomes[chrom].sequence;
  end = std::min<int64_t>(end, static_cast<int64_t>(ref_seq.size()));
  if (start >= end) return out;
  RegionPileup pileup =
      RegionPileup::Build(records, chrom, start, end, options_.pileup);
  for (int64_t pos = start; pos < end; ++pos) {
    PileupColumn column = pileup.at(pos);
    if (column.depth() == 0 && column.indels.empty()) continue;
    DownsampleColumn(&column, options_.max_depth, &rng_);
    if (auto v = CallSnpSite(ref_seq[pos], column, chrom, pos, options_)) {
      out.push_back(std::move(*v));
    }
    if (auto v = CallIndelSite(*reference_, column, chrom, pos, options_)) {
      out.push_back(std::move(*v));
    }
  }
  return out;
}

std::vector<VariantRecord> UnifiedGenotyper::CallChromosome(
    const std::vector<SamRecord>& records, int32_t chrom) {
  std::vector<VariantRecord> out;
  const int64_t chrom_len =
      static_cast<int64_t>(reference_->chromosomes[chrom].sequence.size());
  constexpr int64_t kChunk = 1 << 16;
  // Records are coordinate-sorted; slice the relevant span per chunk.
  auto chrom_begin = std::lower_bound(
      records.begin(), records.end(), chrom,
      [](const SamRecord& r, int32_t c) {
        return !r.IsUnmapped() && r.ref_id < c;
      });
  auto chrom_end = std::lower_bound(
      chrom_begin, records.end(), chrom + 1,
      [](const SamRecord& r, int32_t c) {
        return !r.IsUnmapped() && r.ref_id < c;
      });
  std::vector<SamRecord> slice;  // reused buffer
  auto lo = chrom_begin;
  for (int64_t start = 0; start < chrom_len; start += kChunk) {
    int64_t end = std::min(chrom_len, start + kChunk);
    // Advance lo past records that end before this chunk.
    while (lo != chrom_end && lo->AlignmentEnd() + 1000 < start) ++lo;
    slice.clear();
    for (auto it = lo; it != chrom_end && it->pos < end; ++it) {
      if (it->AlignmentEnd() > start) slice.push_back(*it);
    }
    auto part = CallRegion(slice, chrom, start, end);
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

std::vector<VariantRecord> UnifiedGenotyper::CallAll(
    const std::vector<SamRecord>& records) {
  std::vector<VariantRecord> out;
  for (size_t c = 0; c < reference_->chromosomes.size(); ++c) {
    auto part = CallChromosome(records, static_cast<int32_t>(c));
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

}  // namespace gesall

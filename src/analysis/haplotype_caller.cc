#include "analysis/haplotype_caller.h"

#include <algorithm>

namespace gesall {

std::vector<ActiveWindow> SegmentActiveWindows(
    const std::vector<double>& activity, int64_t region_start,
    int64_t region_end, const HaplotypeCallerOptions& opt) {
  std::vector<ActiveWindow> windows;
  int64_t win_start = -1, last_active = -1;

  auto close = [&](int64_t end_active) {
    ActiveWindow w;
    w.start = std::max(region_start, win_start - opt.window_pad);
    w.end = std::min(region_end, end_active + 1 + opt.window_pad);
    // Enforce the minimum window length by symmetric extension.
    while (w.end - w.start < opt.min_window &&
           (w.start > region_start || w.end < region_end)) {
      if (w.start > region_start) --w.start;
      if (w.end - w.start < opt.min_window && w.end < region_end) ++w.end;
    }
    windows.push_back(w);
    win_start = -1;
    last_active = -1;
  };

  for (int64_t pos = region_start; pos < region_end; ++pos) {
    double a = activity[static_cast<size_t>(pos - region_start)];
    bool active = a >= opt.activity_threshold;
    if (active) {
      if (win_start < 0) win_start = pos;
      last_active = pos;
      // The maximum window constraint forces a close (greedy step 2).
      if (pos - win_start + 1 >= opt.max_window) close(pos);
    } else if (win_start >= 0 && pos - last_active > opt.window_gap) {
      close(last_active);
    }
  }
  if (win_start >= 0) close(last_active);
  return windows;
}

HaplotypeCaller::HaplotypeCaller(const ReferenceGenome& reference,
                                 HaplotypeCallerOptions options)
    : reference_(&reference), options_(options),
      rng_(options.genotyper.downsample_seed) {}

std::vector<VariantRecord> HaplotypeCaller::CallRegion(
    const std::vector<SamRecord>& records, int32_t chrom, int64_t start,
    int64_t end, int64_t emit_start, int64_t emit_end) {
  std::vector<VariantRecord> out;
  const std::string& ref_seq = reference_->chromosomes[chrom].sequence;
  start = std::max<int64_t>(0, start);
  end = std::min<int64_t>(end, static_cast<int64_t>(ref_seq.size()));
  if (start >= end) return out;

  RegionPileup pileup = RegionPileup::Build(records, chrom, start, end,
                                            options_.genotyper.pileup);

  // Operation 1 of the greedy walk: per-position activity from the
  // fraction of non-reference evidence.
  std::vector<double> activity(static_cast<size_t>(end - start), 0.0);
  for (int64_t pos = start; pos < end; ++pos) {
    const PileupColumn& col = pileup.at(pos);
    int depth = col.depth();
    if (depth < options_.min_active_depth) continue;
    int nonref = static_cast<int>(col.indels.size()) * 2;
    for (const auto& e : col.entries) nonref += e.base != ref_seq[pos];
    activity[static_cast<size_t>(pos - start)] =
        nonref / static_cast<double>(depth);
  }

  // Operation 2: greedy segmentation into active windows.
  auto windows = SegmentActiveWindows(activity, start, end, options_);

  // Operation 3: detect mutations inside each window.
  for (const auto& w : windows) {
    for (int64_t pos = w.start; pos < w.end; ++pos) {
      PileupColumn column = pileup.at(pos);
      if (column.depth() == 0 && column.indels.empty()) continue;
      DownsampleColumn(&column, options_.genotyper.max_depth, &rng_);
      if (auto v = CallSnpSite(ref_seq[pos], column, chrom, pos,
                               options_.genotyper)) {
        if (v->pos >= emit_start && v->pos < emit_end) {
          out.push_back(std::move(*v));
        }
      }
      if (auto v = CallIndelSite(*reference_, column, chrom, pos,
                                 options_.genotyper)) {
        if (v->pos >= emit_start && v->pos < emit_end) {
          out.push_back(std::move(*v));
        }
      }
    }
  }
  return out;
}

std::vector<VariantRecord> HaplotypeCaller::CallChromosome(
    const std::vector<SamRecord>& records, int32_t chrom) {
  std::vector<VariantRecord> out;
  const int64_t chrom_len =
      static_cast<int64_t>(reference_->chromosomes[chrom].sequence.size());
  constexpr int64_t kChunk = 1 << 16;
  auto chrom_begin = std::lower_bound(
      records.begin(), records.end(), chrom,
      [](const SamRecord& r, int32_t c) {
        return !r.IsUnmapped() && r.ref_id < c;
      });
  auto chrom_end = std::lower_bound(
      chrom_begin, records.end(), chrom + 1,
      [](const SamRecord& r, int32_t c) {
        return !r.IsUnmapped() && r.ref_id < c;
      });
  std::vector<SamRecord> slice;
  auto lo = chrom_begin;
  const int64_t overlap = options_.max_window + options_.window_pad;
  for (int64_t start = 0; start < chrom_len; start += kChunk) {
    int64_t end = std::min(chrom_len, start + kChunk);
    // Pad the processed region so windows straddling the chunk boundary
    // see their full context; emit only inside the chunk.
    int64_t pstart = std::max<int64_t>(0, start - overlap);
    int64_t pend = std::min(chrom_len, end + overlap);
    while (lo != chrom_end && lo->AlignmentEnd() + 1000 < pstart) ++lo;
    slice.clear();
    for (auto it = lo; it != chrom_end && it->pos < pend; ++it) {
      if (it->AlignmentEnd() > pstart) slice.push_back(*it);
    }
    auto part = CallRegion(slice, chrom, pstart, pend, start, end);
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

std::vector<VariantRecord> HaplotypeCaller::CallAll(
    const std::vector<SamRecord>& records) {
  std::vector<VariantRecord> out;
  for (size_t c = 0; c < reference_->chromosomes.size(); ++c) {
    auto part = CallChromosome(records, static_cast<int32_t>(c));
    out.insert(out.end(), part.begin(), part.end());
  }
  return out;
}

}  // namespace gesall

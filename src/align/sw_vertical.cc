// Vertical (cross-read) vectorization of the banded Smith-Waterman
// 16-bit fill: one alignment job per vector lane, dorado/minimap-style.
//
// Where sw_simd.cc vectorizes ALONG a row of one DP matrix (and leaves
// the horizontal E state to a scalar scan), this pass vectorizes ACROSS
// jobs: every lane is an independent (read, window) pair sharing one
// band geometry, so the full affine recurrence — E included — runs in
// one sequential sweep over storage columns with no cross-lane
// dependency. Saturating adds pin -inf at INT16_MIN and park positive
// overflow at INT16_MAX per lane, where the batch driver
// (smith_waterman.cc) reruns just that lane in 32-bit.
//
// Runtime-dispatched like sw_simd.cc: 16 lanes on AVX2, 8 on SSE4.1.

#include "align/sw_kernel_internal.h"

#include "util/cpu.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define GESALL_SW_HAS_SIMD 1
#include <immintrin.h>
#endif

namespace gesall {
namespace sw_internal {

#ifdef GESALL_SW_HAS_SIMD

namespace {

// Boundary-clear for rows/guard columns: H = 0, E = F = -inf across all
// lanes of storage columns [s_begin, s_end). Standalone functions (GCC
// lambdas do not inherit the enclosing target attribute).
__attribute__((target("avx2"))) void ClearAvx2(const VerticalArgs16& a,
                                               int i, int s_begin,
                                               int s_end) {
  constexpr int kL = 16;
  const int S = a.layout->stride;
  const __m256i vzero = _mm256_setzero_si256();
  const __m256i vmin = _mm256_set1_epi16(kMin16);
  for (int s = s_begin; s < s_end; ++s) {
    const size_t at = (static_cast<size_t>(i) * S + s) * kL;
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a.h + at), vzero);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a.e + at), vmin);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a.f + at), vmin);
  }
}

__attribute__((target("sse4.1"))) void ClearSse(const VerticalArgs16& a,
                                                int i, int s_begin,
                                                int s_end) {
  constexpr int kL = 8;
  const int S = a.layout->stride;
  const __m128i vzero = _mm_setzero_si128();
  const __m128i vmin = _mm_set1_epi16(kMin16);
  for (int s = s_begin; s < s_end; ++s) {
    const size_t at = (static_cast<size_t>(i) * S + s) * kL;
    _mm_storeu_si128(reinterpret_cast<__m128i*>(a.h + at), vzero);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(a.e + at), vmin);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(a.f + at), vmin);
  }
}

__attribute__((target("avx2"))) void FillVerticalAvx2(
    const VerticalArgs16& a) {
  constexpr int kL = 16;
  const SwLayout& L = *a.layout;
  const int S = L.stride;
  const __m256i vzero = _mm256_setzero_si256();
  const __m256i vmatch = _mm256_set1_epi16(a.match);
  const __m256i vmis = _mm256_set1_epi16(a.mismatch);
  const __m256i vgo = _mm256_set1_epi16(a.gap_open);
  const __m256i vge = _mm256_set1_epi16(a.gap_extend);
  const __m256i vone = _mm256_set1_epi16(1);

  ClearAvx2(a, 0, 0, S);
  __m256i vbest = vzero, vbesti = vzero, vbestj = vzero;
  for (int i = 1; i <= L.m; ++i) {
    const int jlo = L.JLo(i);
    const int jhi = L.JHi(i);
    if (jlo > jhi) {
      ClearAvx2(a, i, 0, S);
      if (i + L.lo > L.n) break;  // band has left the window for good
      continue;
    }
    const int slo = static_cast<int>(L.Col(i, jlo));
    const int shi = static_cast<int>(L.Col(i, jhi));
    ClearAvx2(a, i, 0, slo);
    ClearAvx2(a, i, shi + 1, S);
    const __m128i rc = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(a.reads + (i - 1) * kL));
    // Window char index for storage column s is t = i + lo - 2 + s.
    const int64_t tbase = i + L.lo - 2;
    __m256i p = vgo;  // E seed: out-of-band boundary H = 0 -> 0 + open
    __m256i vj = _mm256_set1_epi16(static_cast<int16_t>(jlo));
    const __m256i vi = _mm256_set1_epi16(static_cast<int16_t>(i));
    const size_t prow = (static_cast<size_t>(i - 1) * S) * kL;
    const size_t row = (static_cast<size_t>(i) * S) * kL;
    for (int s = slo; s <= shi; ++s) {
      const __m256i hdiag = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(a.h + prow + s * kL));
      const __m256i hup = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(a.h + prow + (s + 1) * kL));
      const __m256i fup = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(a.f + prow + (s + 1) * kL));
      const __m128i wb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(
          a.wins + (tbase + s) * kL));
      const __m256i eq = _mm256_cvtepi8_epi16(_mm_cmpeq_epi8(wb, rc));
      const __m256i sub = _mm256_blendv_epi8(vmis, vmatch, eq);
      const __m256i diag = _mm256_adds_epi16(hdiag, sub);
      const __m256i fv = _mm256_max_epi16(_mm256_adds_epi16(hup, vgo),
                                          _mm256_adds_epi16(fup, vge));
      const __m256i ev = p;
      __m256i v = _mm256_max_epi16(_mm256_max_epi16(vzero, diag),
                                   _mm256_max_epi16(ev, fv));
      const size_t at = row + s * kL;
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(a.h + at), v);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(a.e + at), ev);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(a.f + at), fv);
      const __m256i gt = _mm256_cmpgt_epi16(v, vbest);
      vbest = _mm256_blendv_epi8(vbest, v, gt);
      vbesti = _mm256_blendv_epi8(vbesti, vi, gt);
      vbestj = _mm256_blendv_epi8(vbestj, vj, gt);
      p = _mm256_max_epi16(_mm256_adds_epi16(v, vgo),
                           _mm256_adds_epi16(p, vge));
      vj = _mm256_add_epi16(vj, vone);
    }
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(a.best), vbest);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(a.besti), vbesti);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(a.bestj), vbestj);
}

__attribute__((target("sse4.1"))) void FillVerticalSse(
    const VerticalArgs16& a) {
  constexpr int kL = 8;
  const SwLayout& L = *a.layout;
  const int S = L.stride;
  const __m128i vzero = _mm_setzero_si128();
  const __m128i vmatch = _mm_set1_epi16(a.match);
  const __m128i vmis = _mm_set1_epi16(a.mismatch);
  const __m128i vgo = _mm_set1_epi16(a.gap_open);
  const __m128i vge = _mm_set1_epi16(a.gap_extend);
  const __m128i vone = _mm_set1_epi16(1);

  ClearSse(a, 0, 0, S);
  __m128i vbest = vzero, vbesti = vzero, vbestj = vzero;
  for (int i = 1; i <= L.m; ++i) {
    const int jlo = L.JLo(i);
    const int jhi = L.JHi(i);
    if (jlo > jhi) {
      ClearSse(a, i, 0, S);
      if (i + L.lo > L.n) break;
      continue;
    }
    const int slo = static_cast<int>(L.Col(i, jlo));
    const int shi = static_cast<int>(L.Col(i, jhi));
    ClearSse(a, i, 0, slo);
    ClearSse(a, i, shi + 1, S);
    const __m128i rc = _mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(a.reads + (i - 1) * kL));
    const int64_t tbase = i + L.lo - 2;
    __m128i p = vgo;
    __m128i vj = _mm_set1_epi16(static_cast<int16_t>(jlo));
    const __m128i vi = _mm_set1_epi16(static_cast<int16_t>(i));
    const size_t prow = (static_cast<size_t>(i - 1) * S) * kL;
    const size_t row = (static_cast<size_t>(i) * S) * kL;
    for (int s = slo; s <= shi; ++s) {
      const __m128i hdiag = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(a.h + prow + s * kL));
      const __m128i hup = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(a.h + prow + (s + 1) * kL));
      const __m128i fup = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(a.f + prow + (s + 1) * kL));
      const __m128i wb = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(
          a.wins + (tbase + s) * kL));
      const __m128i eq = _mm_cvtepi8_epi16(_mm_cmpeq_epi8(wb, rc));
      const __m128i sub = _mm_blendv_epi8(vmis, vmatch, eq);
      const __m128i diag = _mm_adds_epi16(hdiag, sub);
      const __m128i fv = _mm_max_epi16(_mm_adds_epi16(hup, vgo),
                                       _mm_adds_epi16(fup, vge));
      const __m128i ev = p;
      __m128i v = _mm_max_epi16(_mm_max_epi16(vzero, diag),
                                _mm_max_epi16(ev, fv));
      const size_t at = row + s * kL;
      _mm_storeu_si128(reinterpret_cast<__m128i*>(a.h + at), v);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(a.e + at), ev);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(a.f + at), fv);
      const __m128i gt = _mm_cmpgt_epi16(v, vbest);
      vbest = _mm_blendv_epi8(vbest, v, gt);
      vbesti = _mm_blendv_epi8(vbesti, vi, gt);
      vbestj = _mm_blendv_epi8(vbestj, vj, gt);
      p = _mm_max_epi16(_mm_adds_epi16(v, vgo), _mm_adds_epi16(p, vge));
      vj = _mm_add_epi16(vj, vone);
    }
  }
  _mm_storeu_si128(reinterpret_cast<__m128i*>(a.best), vbest);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(a.besti), vbesti);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(a.bestj), vbestj);
}

}  // namespace

int VerticalLanes() {
  if (CpuHasAvx2()) return 16;
  if (CpuHasSse41()) return 8;
  return 0;
}

void FillBandedVertical16(const VerticalArgs16& args) {
  if (CpuHasAvx2()) {
    FillVerticalAvx2(args);
  } else {
    FillVerticalSse(args);
  }
}

#else  // !GESALL_SW_HAS_SIMD

int VerticalLanes() { return 0; }
void FillBandedVertical16(const VerticalArgs16&) {}

#endif

}  // namespace sw_internal
}  // namespace gesall

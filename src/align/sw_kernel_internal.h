// Internal contract between the banded Smith-Waterman driver
// (smith_waterman.cc) and the vectorized row-fill pass (sw_simd.cc).
// Not installed; include only from src/align.
//
// Band-local storage: cell (i, j) lives at row i, column (j - i - lo) + 1
// of a (m+1) x stride matrix, so the diagonal move (i-1, j-1) is the SAME
// column of the previous row and the vertical move (i-1, j) is column + 1
// — shifts the vector pass does with unaligned loads instead of shuffles.
// Column 0 of every row is a guard holding the out-of-band boundary
// (H = 0, E = F = -inf), and the tail of each row is cleared likewise, so
// the fill passes never branch on band edges.

#ifndef GESALL_ALIGN_SW_KERNEL_INTERNAL_H_
#define GESALL_ALIGN_SW_KERNEL_INTERNAL_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "align/smith_waterman.h"

namespace gesall {
namespace sw_internal {

/// Guard bytes in front of the padded window copy; SIMD byte loads may
/// start up to one vector before the first valid column.
constexpr int kWinPad = 16;

/// -inf for the 16-bit lanes: saturating adds pin it in place.
constexpr int16_t kMin16 = INT16_MIN;
/// Saturation ceiling; a best score reaching it triggers the 32-bit rerun.
constexpr int kMax16 = INT16_MAX;
/// -inf for the 32-bit paths (matches the full-rectangle oracle).
constexpr int32_t kMin32 = -(1 << 28);

/// \brief Geometry of one banded DP: diagonal range, band-local storage.
struct SwLayout {
  int m = 0;       // read length
  int n = 0;       // window length
  int64_t lo = 0;  // clamped diagonal band (j - i), inclusive
  int64_t hi = 0;
  int width = 0;   // hi - lo + 1
  int stride = 0;  // row storage: width + guards, rounded for vector tails
  bool empty = true;

  static SwLayout Make(int m, int n, const SwBand& band) {
    SwLayout l;
    l.m = m;
    l.n = n;
    int64_t lo = 1 - static_cast<int64_t>(m);
    int64_t hi = static_cast<int64_t>(n) - 1;
    if (!band.IsFull()) {
      lo = std::max(lo, band.center - band.half_width);
      hi = std::min(hi, band.center + band.half_width);
    }
    l.lo = lo;
    l.hi = hi;
    l.empty = m == 0 || n == 0 || lo > hi;
    if (l.empty) return l;
    l.width = static_cast<int>(hi - lo + 1);
    l.stride = (l.width + 2 + 31) / 32 * 32 + 32;
    return l;
  }

  int JLo(int i) const {
    return static_cast<int>(std::max<int64_t>(1, i + lo));
  }
  int JHi(int i) const {
    return static_cast<int>(std::min<int64_t>(n, i + hi));
  }
  /// Band-local storage column of (i, j); valid only when Valid(i, j).
  size_t Col(int i, int j) const {
    return static_cast<size_t>(j - i - lo) + 1;
  }
  size_t Idx(int i, int j) const {
    return static_cast<size_t>(i) * stride + Col(i, j);
  }
  bool Valid(int i, int j) const {
    return i >= 1 && i <= m && j >= 1 && j <= n && j - i >= lo &&
           j - i <= hi;
  }
  size_t Cells() const { return static_cast<size_t>(m + 1) * stride; }
};

/// \brief One row of the vectorized fill pass. Computes, over storage
/// columns [s_begin, s_end) of the current row,
///   F[s]  = max(Hprev[s+1] + gap_open, Fprev[s+1] + gap_extend)
///   H0[s] = max(0, Hprev[s] + sub(read_char, window), F[s])
/// i.e. the E-free part of the recurrence; the driver's scalar E-scan
/// pass finishes the row. Lanes beyond the valid band compute garbage
/// the driver clears afterwards.
struct RowArgs16 {
  const int16_t* hp;  // previous row H (final values)
  const int16_t* fp;  // previous row F
  int16_t* hr;        // out: H0
  int16_t* fr;        // out: F
  const char* wpad;   // padded window buffer
  int64_t woff;       // window byte for storage column s is wpad[woff + s]
  int s_lo;           // first valid storage column (inclusive)
  int s_hi;           // last valid storage column (inclusive)
  char read_char;
  int16_t match, mismatch, gap_open, gap_extend;
};

struct RowArgs32 {
  const int32_t* hp;
  const int32_t* fp;
  int32_t* hr;
  int32_t* fr;
  const char* wpad;
  int64_t woff;
  int s_lo;
  int s_hi;
  char read_char;
  int32_t match, mismatch, gap_open, gap_extend;
};

/// \brief Vertical (cross-read) 16-bit fill: `lanes` alignment jobs that
/// share one SwLayout geometry run in parallel, one job per vector lane
/// (sw_vertical.cc). Storage is lane-interleaved: cell (i, s) of lane l
/// lives at ((i * stride) + s) * lanes + l, read char i of lane l at
/// reads[(i-1) * lanes + l], window char t at wins[t * lanes + l].
/// Computes, sequentially in s within each row (so the horizontal E
/// state needs no scan pass — lanes are independent),
///   E = max(H[s-1] + open, E[s-1] + ext)        (final H; equal to the
///                                               per-read kernel's
///                                               E-free form whenever
///                                               gap_open <= gap_extend)
///   F = max(Hup + open, Fup + ext)
///   H = max(0, Hdiag + sub, E, F)
/// in saturating 16-bit lanes, tracking each lane's first strict
/// best-score improvement in (i asc, j asc) order — bit-identical per
/// lane to the per-read 16-bit fill.
struct VerticalArgs16 {
  const SwLayout* layout;
  const char* reads;  // interleaved strand-oriented read chars
  const char* wins;   // interleaved window chars (no guard padding)
  int16_t* h;         // interleaved matrices, layout->Cells() * lanes
  int16_t* e;
  int16_t* f;
  int16_t match, mismatch, gap_open, gap_extend;
  int16_t* best;   // [lanes] out: per-lane best score (0 = unaligned)
  int16_t* besti;  // [lanes] out: per-lane argmax row
  int16_t* bestj;  // [lanes] out: per-lane argmax window column
};

/// Lanes the vertical fill packs per vector pass: 16 with AVX2, 8 with
/// SSE4.1, 0 when no SIMD is compiled in / supported by this CPU.
int VerticalLanes();

/// Runs the vertical fill at exactly VerticalLanes() lanes. Requires
/// VerticalLanes() > 0.
void FillBandedVertical16(const VerticalArgs16& args);

/// True when SSE4.1 row fills are compiled in and the CPU executes them.
bool SimdRowFillAvailable();

/// Fills one row in 16-bit saturating lanes (AVX2 when available, else
/// SSE4.1). Requires SimdRowFillAvailable().
void FillRow16(const RowArgs16& args);

/// Fills one row in 32-bit lanes (SSE4.1) for the overflow rerun.
void FillRow32(const RowArgs32& args);

}  // namespace sw_internal
}  // namespace gesall

#endif  // GESALL_ALIGN_SW_KERNEL_INTERNAL_H_

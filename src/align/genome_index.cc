#include "align/genome_index.h"

#include <algorithm>

namespace gesall {

namespace {
std::string Concatenate(const ReferenceGenome& genome) {
  std::string text;
  int64_t total = genome.TotalLength();
  text.reserve(total);
  for (const auto& c : genome.chromosomes) text += c.sequence;
  return text;
}
}  // namespace

GenomeIndex::GenomeIndex(const ReferenceGenome& genome)
    : genome_(&genome), fm_(Concatenate(genome)) {
  int64_t off = 0;
  for (const auto& c : genome.chromosomes) {
    offsets_.push_back(off);
    off += static_cast<int64_t>(c.sequence.size());
  }
  total_len_ = off;
}

bool GenomeIndex::ToChromPos(int64_t text_pos, int32_t* chrom,
                             int64_t* pos) const {
  if (text_pos < 0 || text_pos >= total_len_) return false;
  auto it = std::upper_bound(offsets_.begin(), offsets_.end(), text_pos);
  int32_t ci = static_cast<int32_t>(it - offsets_.begin()) - 1;
  *chrom = ci;
  *pos = text_pos - offsets_[ci];
  return true;
}

int64_t GenomeIndex::ToTextPos(int32_t chrom, int64_t pos) const {
  return offsets_[chrom] + pos;
}

std::string_view GenomeIndex::Window(int32_t chrom, int64_t start,
                                     int64_t len,
                                     int64_t* clamped_start) const {
  const std::string& seq = genome_->chromosomes[chrom].sequence;
  int64_t s = std::max<int64_t>(0, start);
  int64_t e = std::min<int64_t>(static_cast<int64_t>(seq.size()), start + len);
  if (clamped_start != nullptr) *clamped_start = s;
  if (e <= s) return {};
  return std::string_view(seq).substr(s, e - s);
}

}  // namespace gesall

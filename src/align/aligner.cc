#include "align/aligner.h"

#include <algorithm>

#include "util/rng.h"
#include "util/stats.h"

namespace gesall {

ReadAligner::ReadAligner(const GenomeIndex& index, AlignerOptions options)
    : index_(&index), options_(options) {}

namespace {

// Groups sorted candidate start positions that lie within `slack` of each
// other; returns (representative_start, votes) pairs.
std::vector<std::pair<int64_t, int>> ClusterStarts(
    std::vector<int64_t>* starts, int64_t slack) {
  std::vector<std::pair<int64_t, int>> clusters;
  std::sort(starts->begin(), starts->end());
  for (int64_t s : *starts) {
    if (!clusters.empty() && s - clusters.back().first <= slack) {
      ++clusters.back().second;
    } else {
      clusters.emplace_back(s, 1);
    }
  }
  return clusters;
}

}  // namespace

std::vector<Alignment> ReadAligner::AlignRead(std::string_view seq) const {
  const auto& opt = options_;
  const int len = static_cast<int>(seq.size());
  std::vector<Alignment> alignments;
  if (len < opt.seed_length) return alignments;

  std::string reverse_seq = ReverseComplement(std::string(seq));
  const int64_t total_len = index_->fm().text_length();

  for (int strand = 0; strand < 2; ++strand) {
    const bool reverse = strand == 1;
    std::string_view s = reverse ? std::string_view(reverse_seq) : seq;

    // Exact-match seeds at fixed stride (plus one flush-right seed).
    std::vector<int64_t> starts;
    std::vector<int> offsets;
    for (int o = 0; o + opt.seed_length <= len; o += opt.seed_stride) {
      offsets.push_back(o);
    }
    if (offsets.empty() || offsets.back() != len - opt.seed_length) {
      offsets.push_back(len - opt.seed_length);
    }
    for (int o : offsets) {
      SaInterval hit = index_->fm().Search(s.substr(o, opt.seed_length));
      if (hit.empty() || hit.size() > opt.max_seed_hits) continue;
      for (int64_t p : index_->fm().LocateAll(hit, opt.max_seed_hits)) {
        starts.push_back(p - o);
      }
    }
    if (starts.empty()) continue;

    auto clusters = ClusterStarts(&starts, /*slack=*/16);
    // Most-voted clusters first; ties by position for determinism.
    std::stable_sort(clusters.begin(), clusters.end(),
                     [](const auto& a, const auto& b) {
                       if (a.second != b.second) return a.second > b.second;
                       return a.first < b.first;
                     });
    if (static_cast<int>(clusters.size()) > opt.max_candidates) {
      clusters.resize(opt.max_candidates);
    }

    for (const auto& [start, votes] : clusters) {
      int64_t clamped = std::clamp<int64_t>(start, 0, total_len - 1);
      int32_t chrom;
      int64_t pos;
      if (!index_->ToChromPos(clamped, &chrom, &pos)) continue;
      int64_t window_start;
      std::string_view window =
          index_->Window(chrom, pos - opt.window_pad,
                         len + 2 * opt.window_pad, &window_start);
      if (window.empty()) continue;
      SwAlignment sw = SmithWaterman(s, window, opt.scoring);
      if (!sw.aligned || sw.score < opt.min_score) continue;
      Alignment a;
      a.ref_id = chrom;
      a.pos = window_start + sw.window_start;
      a.reverse = reverse;
      a.cigar = std::move(sw.cigar);
      a.score = sw.score;
      a.edit_distance = sw.edit_distance;
      alignments.push_back(std::move(a));
    }
  }

  // Dedupe by (ref, pos, strand), keeping the best score.
  std::sort(alignments.begin(), alignments.end(),
            [](const Alignment& a, const Alignment& b) {
              if (a.ref_id != b.ref_id) return a.ref_id < b.ref_id;
              if (a.pos != b.pos) return a.pos < b.pos;
              if (a.reverse != b.reverse) return a.reverse < b.reverse;
              return a.score > b.score;
            });
  alignments.erase(
      std::unique(alignments.begin(), alignments.end(),
                  [](const Alignment& a, const Alignment& b) {
                    return a.ref_id == b.ref_id && a.pos == b.pos &&
                           a.reverse == b.reverse;
                  }),
      alignments.end());
  // Final order: by descending score, position-stable for determinism.
  std::stable_sort(alignments.begin(), alignments.end(),
                   [](const Alignment& a, const Alignment& b) {
                     return a.score > b.score;
                   });
  return alignments;
}

PairedEndAligner::PairedEndAligner(const GenomeIndex& index,
                                   PairedAlignerOptions options)
    : index_(&index), options_(options),
      read_aligner_(index, options.aligner) {}

SamHeader PairedEndAligner::MakeHeader() const {
  SamHeader header;
  for (const auto& c : index_->genome().chromosomes) {
    header.refs.push_back({c.name, static_cast<int64_t>(c.sequence.size())});
  }
  header.programs.push_back("gesall-bwa");
  return header;
}

InsertStats PairedEndAligner::EstimateInsertStats(
    const std::vector<std::vector<Alignment>>& cand1,
    const std::vector<std::vector<Alignment>>& cand2) const {
  // Use only confidently, uniquely aligned proper-orientation pairs — the
  // same reads every batch would agree on — so the statistics drift only
  // through batch composition, as in BWA.
  RunningStats stats;
  auto confident = [](const std::vector<Alignment>& c) {
    if (c.empty()) return false;
    if (c.size() == 1) return true;
    return c[0].score - c[1].score >= 20;
  };
  for (size_t i = 0; i < cand1.size(); ++i) {
    if (!confident(cand1[i]) || !confident(cand2[i])) continue;
    const Alignment& a = cand1[i][0];
    const Alignment& b = cand2[i][0];
    if (a.ref_id != b.ref_id || a.reverse == b.reverse) continue;
    const Alignment& fwd = a.reverse ? b : a;
    const Alignment& rev = a.reverse ? a : b;
    int64_t insert = rev.pos + CigarReferenceLength(rev.cigar) - fwd.pos;
    if (insert <= 0 || insert > 100'000) continue;
    stats.Add(static_cast<double>(insert));
  }
  InsertStats out;
  out.samples = stats.count();
  if (stats.count() < 32) {
    out.mean = options_.fallback_insert_mean;
    out.sd = options_.fallback_insert_sd;
  } else {
    out.mean = stats.mean();
    out.sd = std::max(1.0, stats.stddev());
  }
  return out;
}

namespace {

// Candidate index pair plus the combined pairing score.
struct PairChoice {
  int i1 = -1;  // -1 = mate unmapped
  int i2 = -1;
  int score = 0;
  bool proper = false;
};

int64_t PairInsert(const Alignment& a, const Alignment& b) {
  if (a.ref_id != b.ref_id || a.reverse == b.reverse) return -1;
  const Alignment& fwd = a.reverse ? b : a;
  const Alignment& rev = a.reverse ? a : b;
  int64_t insert = rev.pos + CigarReferenceLength(rev.cigar) - fwd.pos;
  return insert > 0 ? insert : -1;
}

// Builds the SAM record for one mate of a resolved pair.
SamRecord MakeRecord(const FastqRecord& read, const Alignment* aln,
                     const Alignment* mate_aln, bool first_of_pair,
                     bool proper, int mapq, int own_second_score) {
  SamRecord rec;
  rec.qname = read.name;
  rec.flag = sam_flags::kPaired;
  rec.SetFlag(first_of_pair ? sam_flags::kFirstOfPair
                            : sam_flags::kSecondOfPair,
              true);
  if (aln != nullptr) {
    rec.ref_id = aln->ref_id;
    rec.pos = aln->pos;
    rec.mapq = mapq;
    rec.cigar = aln->cigar;
    if (aln->reverse) {
      rec.SetFlag(sam_flags::kReverse, true);
      rec.seq = ReverseComplement(read.sequence);
      rec.qual = std::string(read.quality.rbegin(), read.quality.rend());
    } else {
      rec.seq = read.sequence;
      rec.qual = read.quality;
    }
    rec.SetTag("AS", 'i', std::to_string(aln->score));
    rec.SetTag("XS", 'i', std::to_string(own_second_score));
    rec.SetTag("NM", 'i', std::to_string(aln->edit_distance));
    if (proper) rec.SetFlag(sam_flags::kProperPair, true);
  } else {
    rec.SetFlag(sam_flags::kUnmapped, true);
    rec.seq = read.sequence;
    rec.qual = read.quality;
    // Convention: an unmapped mate is placed at its mapped mate's locus.
    if (mate_aln != nullptr) {
      rec.ref_id = mate_aln->ref_id;
      rec.pos = mate_aln->pos;
    }
  }
  if (mate_aln != nullptr) {
    rec.mate_ref_id = mate_aln->ref_id;
    rec.mate_pos = mate_aln->pos;
    if (mate_aln->reverse) rec.SetFlag(sam_flags::kMateReverse, true);
  } else {
    rec.SetFlag(sam_flags::kMateUnmapped, true);
    if (aln != nullptr) {
      rec.mate_ref_id = aln->ref_id;
      rec.mate_pos = aln->pos;
    }
  }
  return rec;
}

}  // namespace

void PairedEndAligner::AlignBatch(const std::vector<FastqRecord>& interleaved,
                                  size_t begin, size_t end,
                                  std::vector<SamRecord>* out) const {
  const size_t n_pairs = (end - begin) / 2;
  std::vector<std::vector<Alignment>> cand1(n_pairs), cand2(n_pairs);
  for (size_t i = 0; i < n_pairs; ++i) {
    cand1[i] = read_aligner_.AlignRead(interleaved[begin + 2 * i].sequence);
    cand2[i] =
        read_aligner_.AlignRead(interleaved[begin + 2 * i + 1].sequence);
  }

  InsertStats stats = EstimateInsertStats(cand1, cand2);
  const double lo = stats.mean - options_.proper_range_sds * stats.sd;
  const double hi = stats.mean + options_.proper_range_sds * stats.sd;

  // Batch-content-derived tie-break RNG (see file comment).
  uint64_t seed = options_.seed;
  for (size_t i = 0; i < std::min<size_t>(n_pairs, 16); ++i) {
    seed = MixSeeds(seed, Fnv1a64(interleaved[begin + 2 * i].name));
  }
  seed = MixSeeds(seed, n_pairs);
  Rng rng(seed);

  const int k = options_.top_k;
  for (size_t i = 0; i < n_pairs; ++i) {
    const auto& c1 = cand1[i];
    const auto& c2 = cand2[i];
    const int k1 = std::min<int>(k, static_cast<int>(c1.size()));
    const int k2 = std::min<int>(k, static_cast<int>(c2.size()));

    // Enumerate pairings, including half-mapped options.
    std::vector<PairChoice> cobest;
    int best = INT32_MIN, second = INT32_MIN;
    auto consider = [&](PairChoice choice) {
      if (choice.score > best) {
        second = best;
        best = choice.score;
        cobest.clear();
        cobest.push_back(choice);
      } else if (choice.score == best) {
        cobest.push_back(choice);
      } else if (choice.score > second) {
        second = choice.score;
      }
    };
    for (int a = 0; a < k1; ++a) {
      for (int b = 0; b < k2; ++b) {
        PairChoice pc;
        pc.i1 = a;
        pc.i2 = b;
        pc.score = c1[a].score + c2[b].score;
        int64_t insert = PairInsert(c1[a], c2[b]);
        if (insert > 0 && insert >= lo && insert <= hi) {
          pc.score += options_.pair_bonus;
          pc.proper = true;
        }
        consider(pc);
      }
    }
    for (int a = 0; a < k1; ++a) consider({a, -1, c1[a].score, false});
    for (int b = 0; b < k2; ++b) consider({-1, b, c2[b].score, false});

    PairChoice chosen;
    if (!cobest.empty()) {
      chosen = cobest.size() == 1
                   ? cobest[0]
                   : cobest[rng.Uniform(cobest.size())];  // random tie-break
    }
    const bool ambiguous = cobest.size() > 1;
    const int pair_gap = (second == INT32_MIN) ? 60 : best - second;

    auto mapq_for = [&](const std::vector<Alignment>& own,
                        int idx) -> int {
      if (idx < 0) return 0;
      if (ambiguous) return 0;
      int own_best = own[0].score;
      int own_second = own.size() > 1 ? own[1].score
                                      : options_.aligner.min_score - 10;
      int gap = own_best - own_second;
      if (own[idx].score < own_best) {
        // Chosen by mate rescue over a better solo alignment.
        return std::clamp(6 * pair_gap, 0, 30);
      }
      int mapq = std::clamp(6 * gap, 0, 60);
      return std::min(mapq, std::clamp(6 * pair_gap + 10, 0, 60));
    };

    const Alignment* a1 = chosen.i1 >= 0 ? &c1[chosen.i1] : nullptr;
    const Alignment* a2 = chosen.i2 >= 0 ? &c2[chosen.i2] : nullptr;
    int own_second1 =
        c1.size() > 1 ? c1[1].score : 0;
    int own_second2 =
        c2.size() > 1 ? c2[1].score : 0;

    SamRecord r1 = MakeRecord(interleaved[begin + 2 * i], a1, a2,
                              /*first_of_pair=*/true, chosen.proper,
                              mapq_for(c1, chosen.i1), own_second1);
    SamRecord r2 = MakeRecord(interleaved[begin + 2 * i + 1], a2, a1,
                              /*first_of_pair=*/false, chosen.proper,
                              mapq_for(c2, chosen.i2), own_second2);

    // Signed template length when both mates map to one chromosome.
    if (a1 != nullptr && a2 != nullptr && a1->ref_id == a2->ref_id) {
      int64_t left = std::min(a1->pos, a2->pos);
      int64_t right = std::max(a1->pos + CigarReferenceLength(a1->cigar),
                               a2->pos + CigarReferenceLength(a2->cigar));
      int64_t tlen = right - left;
      r1.tlen = a1->pos <= a2->pos ? tlen : -tlen;
      r2.tlen = -r1.tlen;
    }
    out->push_back(std::move(r1));
    out->push_back(std::move(r2));
  }
}

std::vector<SamRecord> PairedEndAligner::AlignPairs(
    const std::vector<FastqRecord>& interleaved) const {
  std::vector<SamRecord> out;
  out.reserve(interleaved.size());
  const size_t batch_reads = static_cast<size_t>(options_.batch_size) * 2;
  for (size_t begin = 0; begin < interleaved.size(); begin += batch_reads) {
    size_t end = std::min(interleaved.size(), begin + batch_reads);
    AlignBatch(interleaved, begin, end, &out);
  }
  return out;
}

}  // namespace gesall

#include "align/aligner.h"

#include <algorithm>

#include "util/rng.h"
#include "util/stats.h"

namespace gesall {

ReadAligner::ReadAligner(const GenomeIndex& index, AlignerOptions options)
    : index_(&index), options_(options) {}

Alignment& AlignmentList::Append() {
  if (count_ == items_.size()) items_.emplace_back();
  Alignment& a = items_[count_++];
  a.ref_id = -1;
  a.pos = -1;
  a.reverse = false;
  a.cigar.clear();  // keeps capacity pooled
  a.score = 0;
  a.edit_distance = 0;
  return a;
}

namespace {

// Groups sorted candidate start positions that lie within `slack` of each
// other, appending (representative_start, votes) pairs to `clusters`.
void ClusterStartsInto(std::vector<int64_t>* starts, int64_t slack,
                       std::vector<std::pair<int64_t, int>>* clusters) {
  clusters->clear();
  std::sort(starts->begin(), starts->end());
  for (int64_t s : *starts) {
    if (!clusters->empty() && s - clusters->back().first <= slack) {
      ++clusters->back().second;
    } else {
      clusters->emplace_back(s, 1);
    }
  }
}

}  // namespace

std::vector<Alignment> ReadAligner::AlignRead(std::string_view seq) const {
  AlignScratch scratch;
  AlignmentList list;
  AlignReadInto(seq, &scratch, &list);
  return std::vector<Alignment>(std::make_move_iterator(list.begin()),
                                std::make_move_iterator(list.end()));
}

void ReadAligner::AlignReadInto(std::string_view seq, AlignScratch* scratch,
                                AlignmentList* out) const {
  out->clear();
  if (static_cast<int>(seq.size()) < options_.seed_length) return;
  ReverseComplementInto(seq, &scratch->reverse_seq);
  ExtensionJobList& jobs = scratch->jobs;
  jobs.clear();
  CollectExtensions(seq, scratch->reverse_seq, scratch, &jobs);
  for (ExtensionJob& job : jobs) {
    SmithWatermanKernel(job.query, job.window, options_.scoring, job.band,
                        options_.kernel, &scratch->sw, &job.result,
                        &scratch->stats);
  }
  FinishRead(jobs.begin(), jobs.size(), out);
}

void ReadAligner::CollectExtensions(std::string_view seq,
                                    std::string_view reverse_seq,
                                    AlignScratch* scratch,
                                    ExtensionJobList* jobs) const {
  const auto& opt = options_;
  const int len = static_cast<int>(seq.size());
  if (len < opt.seed_length) return;

  const int64_t total_len = index_->fm().text_length();

  for (int strand = 0; strand < 2; ++strand) {
    const bool reverse = strand == 1;
    std::string_view s = reverse ? reverse_seq : seq;

    // Exact-match seeds at fixed stride (plus one flush-right seed).
    std::vector<int64_t>& starts = scratch->starts;
    std::vector<int>& offsets = scratch->offsets;
    starts.clear();
    offsets.clear();
    for (int o = 0; o + opt.seed_length <= len; o += opt.seed_stride) {
      offsets.push_back(o);
    }
    if (offsets.empty() || offsets.back() != len - opt.seed_length) {
      offsets.push_back(len - opt.seed_length);
    }
    for (int o : offsets) {
      SaInterval hit = index_->fm().Search(s.substr(o, opt.seed_length));
      if (hit.empty() || hit.size() > opt.max_seed_hits) continue;
      std::vector<int64_t>& locs = scratch->locate_buf;
      locs.clear();
      index_->fm().LocateAllInto(hit, opt.max_seed_hits, &locs);
      for (int64_t p : locs) starts.push_back(p - o);
    }
    if (starts.empty()) continue;

    std::vector<std::pair<int64_t, int>>& clusters = scratch->clusters;
    ClusterStartsInto(&starts, /*slack=*/16, &clusters);
    // Most-voted clusters first; ties by position for determinism.
    // (Representative starts are unique, so this plain sort yields the
    // same order a stable sort would — without its temp allocation.)
    std::sort(clusters.begin(), clusters.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second > b.second;
                return a.first < b.first;
              });
    if (static_cast<int>(clusters.size()) > opt.max_candidates) {
      clusters.resize(opt.max_candidates);
    }

    for (const auto& [start, votes] : clusters) {
      int64_t clamped = std::clamp<int64_t>(start, 0, total_len - 1);
      int32_t chrom;
      int64_t pos;
      if (!index_->ToChromPos(clamped, &chrom, &pos)) continue;
      int64_t window_start;
      std::string_view window =
          index_->Window(chrom, pos - opt.window_pad,
                         len + 2 * opt.window_pad, &window_start);
      if (window.empty()) continue;
      // The seed pins the read to the diagonal `pos - window_start`
      // (normally window_pad); band_pad absorbs cluster slack and indels.
      ExtensionJob& job = jobs->Append();
      job.ref_id = chrom;
      job.window_start = window_start;
      job.reverse = reverse;
      job.query = s;
      job.window = window;
      job.band.center = pos - window_start;
      job.band.half_width = opt.band_pad;
    }
  }
}

void ReadAligner::FinishRead(ExtensionJob* jobs, size_t n_jobs,
                             AlignmentList* out) const {
  out->clear();
  for (size_t k = 0; k < n_jobs; ++k) {
    ExtensionJob& job = jobs[k];
    SwAlignment& sw = job.result;
    if (!sw.aligned || sw.score < options_.min_score) continue;
    Alignment& a = out->Append();
    a.ref_id = job.ref_id;
    a.pos = job.window_start + sw.window_start;
    a.reverse = job.reverse;
    a.cigar.swap(sw.cigar);  // hand the pooled capacity back and forth
    a.score = sw.score;
    a.edit_distance = sw.edit_distance;
  }

  // Dedupe by (ref, pos, strand), keeping the best score.
  std::sort(out->begin(), out->end(),
            [](const Alignment& a, const Alignment& b) {
              if (a.ref_id != b.ref_id) return a.ref_id < b.ref_id;
              if (a.pos != b.pos) return a.pos < b.pos;
              if (a.reverse != b.reverse) return a.reverse < b.reverse;
              return a.score > b.score;
            });
  // Swap-based compaction (unlike std::unique's move-assign, swapping
  // keeps every pooled Cigar buffer alive for reuse).
  size_t w = 0;
  for (size_t r = 0; r < out->size(); ++r) {
    if (w > 0) {
      const Alignment& prev = (*out)[w - 1];
      const Alignment& cur = (*out)[r];
      if (prev.ref_id == cur.ref_id && prev.pos == cur.pos &&
          prev.reverse == cur.reverse) {
        continue;
      }
    }
    if (w != r) std::swap((*out)[w], (*out)[r]);
    ++w;
  }
  out->Truncate(w);
  // Final order: descending score; ties by (ref, pos, strand), which are
  // unique after deduping, so this matches the previous stable sort.
  std::sort(out->begin(), out->end(),
            [](const Alignment& a, const Alignment& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.ref_id != b.ref_id) return a.ref_id < b.ref_id;
              if (a.pos != b.pos) return a.pos < b.pos;
              return a.reverse < b.reverse;
            });
}

PairedEndAligner::PairedEndAligner(const GenomeIndex& index,
                                   PairedAlignerOptions options)
    : index_(&index), options_(options),
      read_aligner_(index, options.aligner) {}

SamHeader PairedEndAligner::MakeHeader() const {
  SamHeader header;
  for (const auto& c : index_->genome().chromosomes) {
    header.refs.push_back({c.name, static_cast<int64_t>(c.sequence.size())});
  }
  header.programs.push_back("gesall-bwa");
  return header;
}

namespace {

// Shared across the std::vector<Alignment> and pooled AlignmentList
// candidate containers; `n` bounds the live pairs (a pooled container may
// be larger than the current batch).
template <typename Lists>
InsertStats EstimateInsertStatsImpl(const Lists& cand1, const Lists& cand2,
                                    size_t n,
                                    const PairedAlignerOptions& options) {
  // Use only confidently, uniquely aligned proper-orientation pairs — the
  // same reads every batch would agree on — so the statistics drift only
  // through batch composition, as in BWA.
  RunningStats stats;
  auto confident = [](const auto& c) {
    if (c.empty()) return false;
    if (c.size() == 1) return true;
    return c[0].score - c[1].score >= 20;
  };
  for (size_t i = 0; i < n; ++i) {
    if (!confident(cand1[i]) || !confident(cand2[i])) continue;
    const Alignment& a = cand1[i][0];
    const Alignment& b = cand2[i][0];
    if (a.ref_id != b.ref_id || a.reverse == b.reverse) continue;
    const Alignment& fwd = a.reverse ? b : a;
    const Alignment& rev = a.reverse ? a : b;
    int64_t insert = rev.pos + CigarReferenceLength(rev.cigar) - fwd.pos;
    if (insert <= 0 || insert > 100'000) continue;
    stats.Add(static_cast<double>(insert));
  }
  InsertStats out;
  out.samples = stats.count();
  if (stats.count() < 32) {
    out.mean = options.fallback_insert_mean;
    out.sd = options.fallback_insert_sd;
  } else {
    out.mean = stats.mean();
    out.sd = std::max(1.0, stats.stddev());
  }
  return out;
}

}  // namespace

InsertStats PairedEndAligner::EstimateInsertStats(
    const std::vector<std::vector<Alignment>>& cand1,
    const std::vector<std::vector<Alignment>>& cand2) const {
  return EstimateInsertStatsImpl(cand1, cand2, cand1.size(), options_);
}

namespace {

// Candidate index pair plus the combined pairing score.
struct PairChoice {
  int i1 = -1;  // -1 = mate unmapped
  int i2 = -1;
  int score = 0;
  bool proper = false;
};

int64_t PairInsert(const Alignment& a, const Alignment& b) {
  if (a.ref_id != b.ref_id || a.reverse == b.reverse) return -1;
  const Alignment& fwd = a.reverse ? b : a;
  const Alignment& rev = a.reverse ? a : b;
  int64_t insert = rev.pos + CigarReferenceLength(rev.cigar) - fwd.pos;
  return insert > 0 ? insert : -1;
}

// Builds the SAM record for one mate of a resolved pair.
SamRecord MakeRecord(const FastqRecord& read, const Alignment* aln,
                     const Alignment* mate_aln, bool first_of_pair,
                     bool proper, int mapq, int own_second_score) {
  SamRecord rec;
  rec.qname = read.name;
  rec.flag = sam_flags::kPaired;
  rec.SetFlag(first_of_pair ? sam_flags::kFirstOfPair
                            : sam_flags::kSecondOfPair,
              true);
  if (aln != nullptr) {
    rec.ref_id = aln->ref_id;
    rec.pos = aln->pos;
    rec.mapq = mapq;
    rec.cigar = aln->cigar;
    if (aln->reverse) {
      rec.SetFlag(sam_flags::kReverse, true);
      rec.seq = ReverseComplement(read.sequence);
      rec.qual = std::string(read.quality.rbegin(), read.quality.rend());
    } else {
      rec.seq = read.sequence;
      rec.qual = read.quality;
    }
    rec.SetTag("AS", 'i', std::to_string(aln->score));
    rec.SetTag("XS", 'i', std::to_string(own_second_score));
    rec.SetTag("NM", 'i', std::to_string(aln->edit_distance));
    if (proper) rec.SetFlag(sam_flags::kProperPair, true);
  } else {
    rec.SetFlag(sam_flags::kUnmapped, true);
    rec.seq = read.sequence;
    rec.qual = read.quality;
    // Convention: an unmapped mate is placed at its mapped mate's locus.
    if (mate_aln != nullptr) {
      rec.ref_id = mate_aln->ref_id;
      rec.pos = mate_aln->pos;
    }
  }
  if (mate_aln != nullptr) {
    rec.mate_ref_id = mate_aln->ref_id;
    rec.mate_pos = mate_aln->pos;
    if (mate_aln->reverse) rec.SetFlag(sam_flags::kMateReverse, true);
  } else {
    rec.SetFlag(sam_flags::kMateUnmapped, true);
    if (aln != nullptr) {
      rec.mate_ref_id = aln->ref_id;
      rec.mate_pos = aln->pos;
    }
  }
  return rec;
}

}  // namespace

void PairedEndAligner::AlignBatch(const std::vector<FastqRecord>& interleaved,
                                  size_t begin, size_t end,
                                  PairedAlignScratch* scratch,
                                  std::vector<SamRecord>* out) const {
  const size_t n_pairs = (end - begin) / 2;
  const size_t n_reads = end - begin;
  std::vector<AlignmentList>& cand1 = scratch->cand1;
  std::vector<AlignmentList>& cand2 = scratch->cand2;
  if (cand1.size() < n_pairs) {
    cand1.resize(n_pairs);
    cand2.resize(n_pairs);
  }

  // Phase A: seed + cluster every read of the batch, pooling the pending
  // Smith-Waterman extensions. rev_seqs must reach full size before any
  // job takes a view into an element (see PairedAlignScratch).
  std::vector<std::string>& rev_seqs = scratch->rev_seqs;
  if (rev_seqs.size() < n_reads) rev_seqs.resize(n_reads);
  ExtensionJobList& jobs = scratch->batch_jobs;
  jobs.clear();
  std::vector<std::pair<uint32_t, uint32_t>>& ranges = scratch->job_ranges;
  ranges.clear();
  for (size_t r = 0; r < n_reads; ++r) {
    const std::string& seq = interleaved[begin + r].sequence;
    const uint32_t job_begin = static_cast<uint32_t>(jobs.size());
    ReverseComplementInto(seq, &rev_seqs[r]);
    read_aligner_.CollectExtensions(seq, rev_seqs[r], &scratch->read, &jobs);
    ranges.emplace_back(job_begin, static_cast<uint32_t>(jobs.size()));
  }

  // Phase B: extend every job in one batched kernel pass — jobs sharing
  // a band geometry run one-per-SIMD-lane (bit-identical to per-read
  // kernel calls; see SmithWatermanBatch). Built only after phase A so
  // no Append can move a job out from under its slot pointer.
  std::vector<SwBatchJob>& refs = scratch->batch_refs;
  refs.clear();
  refs.reserve(jobs.size());
  for (ExtensionJob& job : jobs) {
    refs.push_back({job.query, job.window, job.band, &job.result});
  }
  SmithWatermanBatch(refs.data(), refs.size(), options_.aligner.scoring,
                     options_.aligner.kernel, &scratch->read.sw,
                     &scratch->batch, &scratch->read.stats);

  // Phase C: per-read candidate resolution, in the original read order.
  for (size_t i = 0; i < n_pairs; ++i) {
    const auto [b1, e1] = ranges[2 * i];
    read_aligner_.FinishRead(jobs.begin() + b1, e1 - b1, &cand1[i]);
    const auto [b2, e2] = ranges[2 * i + 1];
    read_aligner_.FinishRead(jobs.begin() + b2, e2 - b2, &cand2[i]);
  }

  InsertStats stats =
      EstimateInsertStatsImpl(cand1, cand2, n_pairs, options_);
  const double lo = stats.mean - options_.proper_range_sds * stats.sd;
  const double hi = stats.mean + options_.proper_range_sds * stats.sd;

  // Batch-content-derived tie-break RNG (see file comment).
  uint64_t seed = options_.seed;
  for (size_t i = 0; i < std::min<size_t>(n_pairs, 16); ++i) {
    seed = MixSeeds(seed, Fnv1a64(interleaved[begin + 2 * i].name));
  }
  seed = MixSeeds(seed, n_pairs);
  Rng rng(seed);

  const int k = options_.top_k;
  std::vector<PairChoice> cobest;
  cobest.reserve(static_cast<size_t>(k) * k + 2 * k);
  for (size_t i = 0; i < n_pairs; ++i) {
    const auto& c1 = cand1[i];
    const auto& c2 = cand2[i];
    const int k1 = std::min<int>(k, static_cast<int>(c1.size()));
    const int k2 = std::min<int>(k, static_cast<int>(c2.size()));

    // Enumerate pairings, including half-mapped options.
    cobest.clear();
    int best = INT32_MIN, second = INT32_MIN;
    auto consider = [&](PairChoice choice) {
      if (choice.score > best) {
        second = best;
        best = choice.score;
        cobest.clear();
        cobest.push_back(choice);
      } else if (choice.score == best) {
        cobest.push_back(choice);
      } else if (choice.score > second) {
        second = choice.score;
      }
    };
    for (int a = 0; a < k1; ++a) {
      for (int b = 0; b < k2; ++b) {
        PairChoice pc;
        pc.i1 = a;
        pc.i2 = b;
        pc.score = c1[a].score + c2[b].score;
        int64_t insert = PairInsert(c1[a], c2[b]);
        if (insert > 0 && insert >= lo && insert <= hi) {
          pc.score += options_.pair_bonus;
          pc.proper = true;
        }
        consider(pc);
      }
    }
    for (int a = 0; a < k1; ++a) consider({a, -1, c1[a].score, false});
    for (int b = 0; b < k2; ++b) consider({-1, b, c2[b].score, false});

    PairChoice chosen;
    if (!cobest.empty()) {
      chosen = cobest.size() == 1
                   ? cobest[0]
                   : cobest[rng.Uniform(cobest.size())];  // random tie-break
    }
    const bool ambiguous = cobest.size() > 1;
    const int pair_gap = (second == INT32_MIN) ? 60 : best - second;

    auto mapq_for = [&](const AlignmentList& own, int idx) -> int {
      if (idx < 0) return 0;
      if (ambiguous) return 0;
      int own_best = own[0].score;
      int own_second = own.size() > 1 ? own[1].score
                                      : options_.aligner.min_score - 10;
      int gap = own_best - own_second;
      if (own[idx].score < own_best) {
        // Chosen by mate rescue over a better solo alignment.
        return std::clamp(6 * pair_gap, 0, 30);
      }
      int mapq = std::clamp(6 * gap, 0, 60);
      return std::min(mapq, std::clamp(6 * pair_gap + 10, 0, 60));
    };

    const Alignment* a1 = chosen.i1 >= 0 ? &c1[chosen.i1] : nullptr;
    const Alignment* a2 = chosen.i2 >= 0 ? &c2[chosen.i2] : nullptr;
    int own_second1 =
        c1.size() > 1 ? c1[1].score : 0;
    int own_second2 =
        c2.size() > 1 ? c2[1].score : 0;

    SamRecord r1 = MakeRecord(interleaved[begin + 2 * i], a1, a2,
                              /*first_of_pair=*/true, chosen.proper,
                              mapq_for(c1, chosen.i1), own_second1);
    SamRecord r2 = MakeRecord(interleaved[begin + 2 * i + 1], a2, a1,
                              /*first_of_pair=*/false, chosen.proper,
                              mapq_for(c2, chosen.i2), own_second2);

    // Signed template length when both mates map to one chromosome.
    if (a1 != nullptr && a2 != nullptr && a1->ref_id == a2->ref_id) {
      int64_t left = std::min(a1->pos, a2->pos);
      int64_t right = std::max(a1->pos + CigarReferenceLength(a1->cigar),
                               a2->pos + CigarReferenceLength(a2->cigar));
      int64_t tlen = right - left;
      r1.tlen = a1->pos <= a2->pos ? tlen : -tlen;
      r2.tlen = -r1.tlen;
    }
    out->push_back(std::move(r1));
    out->push_back(std::move(r2));
  }
}

std::vector<SamRecord> PairedEndAligner::AlignPairs(
    const std::vector<FastqRecord>& interleaved) const {
  std::vector<SamRecord> out;
  PairedAlignScratch scratch;
  AlignPairs(interleaved, &scratch, &out);
  return out;
}

void PairedEndAligner::AlignPairs(const std::vector<FastqRecord>& interleaved,
                                  PairedAlignScratch* scratch,
                                  std::vector<SamRecord>* out) const {
  out->reserve(out->size() + interleaved.size());
  const size_t batch_reads = static_cast<size_t>(options_.batch_size) * 2;
  for (size_t begin = 0; begin < interleaved.size(); begin += batch_reads) {
    size_t end = std::min(interleaved.size(), begin + batch_reads);
    AlignBatch(interleaved, begin, end, scratch, out);
  }
}

}  // namespace gesall

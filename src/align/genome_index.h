// Alignment index over a multi-chromosome reference: the FM-index of the
// concatenated sequence plus coordinate translation. Loading this index is
// the dominant per-mapper startup cost the paper's Table 4 / Fig. 5(a)
// experiments study.

#ifndef GESALL_ALIGN_GENOME_INDEX_H_
#define GESALL_ALIGN_GENOME_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "align/fm_index.h"
#include "formats/fasta.h"

namespace gesall {

/// \brief FM-index plus chromosome offset table for a reference genome.
class GenomeIndex {
 public:
  explicit GenomeIndex(const ReferenceGenome& genome);

  const ReferenceGenome& genome() const { return *genome_; }
  const FmIndex& fm() const { return fm_; }

  /// Translates a concatenated-text position to (chromosome, position).
  /// Returns false if the position is out of range.
  bool ToChromPos(int64_t text_pos, int32_t* chrom, int64_t* pos) const;

  /// Translates (chromosome, position) to a concatenated-text position.
  int64_t ToTextPos(int32_t chrom, int64_t pos) const;

  int64_t chromosome_length(int32_t chrom) const {
    return static_cast<int64_t>(genome_->chromosomes[chrom].sequence.size());
  }

  /// Reference window [start, start+len) on a chromosome, clamped to the
  /// chromosome bounds. `*clamped_start` receives the actual start.
  std::string_view Window(int32_t chrom, int64_t start, int64_t len,
                          int64_t* clamped_start) const;

 private:
  const ReferenceGenome* genome_;
  std::vector<int64_t> offsets_;  // text offset of each chromosome start
  int64_t total_len_ = 0;
  FmIndex fm_;
};

}  // namespace gesall

#endif  // GESALL_ALIGN_GENOME_INDEX_H_

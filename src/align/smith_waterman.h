// Local alignment of a read against a reference window with affine gap
// penalties, producing a soft-clipped CIGAR by traceback (the extension
// stage of the seed-and-extend aligner).
//
// Three kernels produce bit-identical results for any fixed band:
//
//   kScalarFull   the original full-rectangle scalar DP (the oracle)
//   kBanded       scalar DP restricted to a diagonal band around the
//                 seed-implied diagonal (the seed already anchors the
//                 read inside the window, so off-band cells cannot hold
//                 the winning path)
//   kBandedSimd   the banded DP with rows filled in SSE4.1/AVX2 16-bit
//                 lanes, promoted to a 32-bit-lane rerun when a score
//                 saturates int16
//
// Kernel choice is runtime-dispatched (util/cpu); scores, CIGARs and
// tie-breaking never depend on which kernel ran.

#ifndef GESALL_ALIGN_SMITH_WATERMAN_H_
#define GESALL_ALIGN_SMITH_WATERMAN_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "formats/cigar.h"

namespace gesall {

/// \brief Alignment scoring parameters (BWA-MEM-like defaults).
struct SwScoring {
  int match = 1;
  int mismatch = -4;
  int gap_open = -6;    // charged for the first base of a gap
  int gap_extend = -1;  // charged for each further base
};

/// \brief Result of a local alignment of `read` within `window`.
struct SwAlignment {
  int score = 0;
  int64_t window_start = 0;  // window offset of the first aligned ref base
  int64_t window_end = 0;    // one past the last aligned ref base
  Cigar cigar;               // includes leading/trailing soft clips (S)
  int edit_distance = 0;     // NM: mismatches + gap bases
  bool aligned = false;
};

/// \brief Kernel selection for the extension DP.
enum class SwKernelMode {
  kScalarFull,  // full-rectangle scalar DP, ignores the band (oracle)
  kBanded,      // banded scalar DP
  kBandedSimd,  // banded SIMD DP; falls back to kBanded off-x86
  kAuto,        // kBandedSimd when the CPU supports it, else kBanded
};

/// \brief Diagonal band for the banded kernels: only cells (i, j) with
/// j - i in [center - half_width, center + half_width] are filled.
/// half_width < 0 means unbanded (the full rectangle). Out-of-band
/// neighbors read as empty alignments (H = 0), so a banded score is
/// always <= the full-rectangle score and equal whenever the winning
/// path stays inside the band.
struct SwBand {
  int64_t center = 0;
  int64_t half_width = -1;

  static SwBand Full() { return SwBand{}; }
  bool IsFull() const { return half_width < 0; }
};

/// \brief Counters describing how the kernel executed (accumulated
/// across calls; plumbed into round counters and BENCH_align.json).
struct SwKernelStats {
  int64_t calls = 0;
  int64_t simd_calls = 0;      // rows filled with vector lanes
  int64_t scalar_calls = 0;    // scalar fill (full or banded)
  int64_t overflow_reruns = 0; // int16 saturation -> 32-bit lane rerun
  int64_t cells_full = 0;      // read_len * window_len per call
  int64_t cells_filled = 0;    // cells the chosen band actually touched

  int64_t cells_skipped() const { return cells_full - cells_filled; }
  SwKernelStats& operator+=(const SwKernelStats& o) {
    calls += o.calls;
    simd_calls += o.simd_calls;
    scalar_calls += o.scalar_calls;
    overflow_reruns += o.overflow_reruns;
    cells_full += o.cells_full;
    cells_filled += o.cells_filled;
    return *this;
  }
};

/// \brief Reusable DP buffers for the extension kernel. One instance per
/// thread: the kernel grows the buffers to the high-water mark and never
/// shrinks them, so steady-state calls perform zero heap allocations.
/// Not thread-safe; never shared across concurrent callers.
struct SwScratch {
  std::vector<int16_t> h16, e16, f16;  // banded matrices, 16-bit lanes
  std::vector<int32_t> h32, e32, f32;  // banded matrices, 32-bit
  std::vector<char> window_pad;        // window copy with SIMD guard pads
  Cigar rev_ops;                       // traceback run buffer
};

/// \brief One alignment job for the batched kernel: views into the
/// caller's read/window storage (which must outlive the call) plus the
/// result slot to fill.
struct SwBatchJob {
  std::string_view read;
  std::string_view window;
  SwBand band;
  SwAlignment* out = nullptr;
};

/// \brief Reusable lane-interleaved buffers for SmithWatermanBatch.
/// Same ownership discipline as SwScratch: one per thread, grows to the
/// high-water mark, never shared across concurrent callers.
struct SwBatchScratch {
  std::vector<int16_t> h, e, f;       // lane-interleaved banded matrices
  std::vector<char> reads, windows;   // lane-interleaved input chars
  std::vector<int16_t> best, besti, bestj;  // per-lane fill results
  std::vector<uint32_t> order;        // geometry-grouped job order
};

/// \brief True when this process dispatches alignment rows to SSE4.1 (or
/// wider) vector lanes under kAuto/kBandedSimd.
bool SwSimdAvailable();

/// \brief Smith-Waterman with affine gaps; unaligned read ends become
/// soft clips. Returns aligned=false when the best score is <= 0.
/// Full-rectangle scalar kernel (kept as the differential-test oracle).
SwAlignment SmithWaterman(std::string_view read, std::string_view window,
                          const SwScoring& scoring = SwScoring());

/// \brief Banded, runtime-dispatched kernel. Writes the result through
/// `out` so its Cigar capacity is reused across calls; `scratch` must
/// outlive the call and may be reused serially. `stats` (optional) is
/// accumulated, not reset. Results are bit-identical across modes for a
/// fixed band; with SwBand::Full() they are bit-identical to
/// SmithWaterman().
void SmithWatermanKernel(std::string_view read, std::string_view window,
                         const SwScoring& scoring, const SwBand& band,
                         SwKernelMode mode, SwScratch* scratch,
                         SwAlignment* out, SwKernelStats* stats = nullptr);

/// \brief Vertical (cross-read) batched kernel: aligns `n_jobs` jobs,
/// packing jobs that share one band geometry 8/16 to a vector register
/// so the whole affine recurrence runs in SIMD lanes — one job per lane
/// — instead of vectorizing along single-read rows. Groups jobs by
/// (read length, window length, band), runs full lanes through the
/// vertical fill and everything else (group remainders, empty bands,
/// no-SIMD builds, scoring that breaks the 16-bit gate) through
/// SmithWatermanKernel. Every job's result and stats accounting is
/// bit-identical to calling SmithWatermanKernel(job) directly with the
/// same mode, including the per-lane 32-bit overflow rerun. Jobs may be
/// reordered internally; outputs land in each job's `out` regardless.
void SmithWatermanBatch(SwBatchJob* jobs, size_t n_jobs,
                        const SwScoring& scoring, SwKernelMode mode,
                        SwScratch* scratch, SwBatchScratch* batch,
                        SwKernelStats* stats = nullptr);

}  // namespace gesall

#endif  // GESALL_ALIGN_SMITH_WATERMAN_H_

// Local alignment of a read against a reference window with affine gap
// penalties, producing a soft-clipped CIGAR by traceback (the extension
// stage of the seed-and-extend aligner).

#ifndef GESALL_ALIGN_SMITH_WATERMAN_H_
#define GESALL_ALIGN_SMITH_WATERMAN_H_

#include <cstdint>
#include <string_view>

#include "formats/cigar.h"

namespace gesall {

/// \brief Alignment scoring parameters (BWA-MEM-like defaults).
struct SwScoring {
  int match = 1;
  int mismatch = -4;
  int gap_open = -6;    // charged for the first base of a gap
  int gap_extend = -1;  // charged for each further base
};

/// \brief Result of a local alignment of `read` within `window`.
struct SwAlignment {
  int score = 0;
  int64_t window_start = 0;  // window offset of the first aligned ref base
  int64_t window_end = 0;    // one past the last aligned ref base
  Cigar cigar;               // includes leading/trailing soft clips (S)
  int edit_distance = 0;     // NM: mismatches + gap bases
  bool aligned = false;
};

/// \brief Smith-Waterman with affine gaps; unaligned read ends become
/// soft clips. Returns aligned=false when the best score is <= 0.
SwAlignment SmithWaterman(std::string_view read, std::string_view window,
                          const SwScoring& scoring = SwScoring());

}  // namespace gesall

#endif  // GESALL_ALIGN_SMITH_WATERMAN_H_

#include "align/suffix_array.h"

#include <algorithm>
#include <numeric>

#include "util/logging.h"

namespace gesall {

// Prefix doubling: sort suffixes by their first 2^k characters, doubling k
// each round. Each round is two stable counting sorts (by the second then
// the first rank component).
std::vector<int32_t> BuildSuffixArray(const std::string& text) {
  const int32_t n = static_cast<int32_t>(text.size());
  std::vector<int32_t> sa(n), rank(n), tmp(n), count;
  if (n == 0) return sa;

  // Initial ranks from single characters.
  std::iota(sa.begin(), sa.end(), 0);
  {
    count.assign(256, 0);
    for (unsigned char c : text) ++count[c];
    std::partial_sum(count.begin(), count.end(), count.begin());
    for (int32_t i = n - 1; i >= 0; --i) {
      sa[--count[static_cast<unsigned char>(text[i])]] = i;
    }
    rank[sa[0]] = 0;
    for (int32_t i = 1; i < n; ++i) {
      rank[sa[i]] = rank[sa[i - 1]] + (text[sa[i]] != text[sa[i - 1]] ? 1 : 0);
    }
  }

  std::vector<int32_t> sa2(n);
  for (int32_t k = 1; k < n; k <<= 1) {
    if (rank[sa[n - 1]] == n - 1) break;  // all ranks distinct

    // Sort by second component: suffixes i with i+k >= n come first, then
    // the rest in the order of sa (stable bucket trick).
    int32_t p = 0;
    for (int32_t i = n - k; i < n; ++i) sa2[p++] = i;
    for (int32_t i = 0; i < n; ++i) {
      if (sa[i] >= k) sa2[p++] = sa[i] - k;
    }

    // Stable counting sort by first component. Ranks are dense in [0, n)
    // by construction of the re-rank step; a rank escaping that range
    // would index count[] out of bounds, so fail loudly instead.
    GESALL_CHECK(rank[sa[n - 1]] >= 0 && rank[sa[n - 1]] < n)
        << "suffix array rank out of counting-sort bounds: "
        << rank[sa[n - 1]] << " not in [0, " << n << ")";
    count.assign(n, 0);
    for (int32_t i = 0; i < n; ++i) ++count[rank[i]];
    std::partial_sum(count.begin(), count.end(), count.begin());
    for (int32_t i = n - 1; i >= 0; --i) {
      sa[--count[rank[sa2[i]]]] = sa2[i];
    }

    // Re-rank.
    tmp[sa[0]] = 0;
    for (int32_t i = 1; i < n; ++i) {
      int32_t a = sa[i - 1], b = sa[i];
      bool same = rank[a] == rank[b] &&
                  ((a + k < n ? rank[a + k] : -1) ==
                   (b + k < n ? rank[b + k] : -1));
      tmp[b] = tmp[a] + (same ? 0 : 1);
    }
    rank.swap(tmp);
  }
  return sa;
}

}  // namespace gesall

#include "align/smith_waterman.h"

#include <algorithm>
#include <vector>

#include "align/sw_kernel_internal.h"

namespace gesall {

namespace {
constexpr int kNegInf = -(1 << 28);
}  // namespace

// Classic three-matrix affine-gap Smith-Waterman over the full
// read x window rectangle (windows are small: read length + 2*pad).
// Traceback is a state machine over the H/E/F matrices. Kept verbatim as
// the differential-test oracle for the banded/SIMD kernels below.
SwAlignment SmithWaterman(std::string_view read, std::string_view window,
                          const SwScoring& sc) {
  const int m = static_cast<int>(read.size());
  const int n = static_cast<int>(window.size());
  SwAlignment result;
  if (m == 0 || n == 0) return result;

  // H: best local score ending at (i,j); E: alignment ending in a gap that
  // consumes reference (CIGAR 'D'); F: gap consuming read (CIGAR 'I').
  std::vector<int> h((m + 1) * (n + 1), 0);
  std::vector<int> e((m + 1) * (n + 1), kNegInf);
  std::vector<int> f((m + 1) * (n + 1), kNegInf);
  auto idx = [n](int i, int j) { return i * (n + 1) + j; };

  int best = 0, best_i = 0, best_j = 0;
  for (int i = 1; i <= m; ++i) {
    for (int j = 1; j <= n; ++j) {
      int sub = (read[i - 1] == window[j - 1]) ? sc.match : sc.mismatch;
      int diag = h[idx(i - 1, j - 1)] + sub;
      e[idx(i, j)] = std::max(h[idx(i, j - 1)] + sc.gap_open,
                              e[idx(i, j - 1)] + sc.gap_extend);
      f[idx(i, j)] = std::max(h[idx(i - 1, j)] + sc.gap_open,
                              f[idx(i - 1, j)] + sc.gap_extend);
      int v = std::max({0, diag, e[idx(i, j)], f[idx(i, j)]});
      h[idx(i, j)] = v;
      if (v > best) {
        best = v;
        best_i = i;
        best_j = j;
      }
    }
  }
  if (best <= 0) return result;

  // Traceback.
  Cigar rev_ops;
  auto push = [&rev_ops](char op) {
    if (!rev_ops.empty() && rev_ops.back().op == op) {
      ++rev_ops.back().len;
    } else {
      rev_ops.push_back({op, 1});
    }
  };
  enum class State { kH, kE, kF };
  State state = State::kH;
  int i = best_i, j = best_j, edits = 0;
  while (i > 0 || j > 0) {
    if (state == State::kH) {
      int v = h[idx(i, j)];
      if (v == 0) break;
      int sub = (i > 0 && j > 0 && read[i - 1] == window[j - 1])
                    ? sc.match
                    : sc.mismatch;
      if (i > 0 && j > 0 && v == h[idx(i - 1, j - 1)] + sub) {
        push('M');
        if (read[i - 1] != window[j - 1]) ++edits;
        --i;
        --j;
      } else if (v == e[idx(i, j)]) {
        state = State::kE;
      } else {
        state = State::kF;
      }
    } else if (state == State::kE) {
      push('D');
      ++edits;
      if (e[idx(i, j)] == e[idx(i, j - 1)] + sc.gap_extend) {
        --j;
      } else {
        --j;
        state = State::kH;
      }
    } else {  // State::kF
      push('I');
      ++edits;
      if (f[idx(i, j)] == f[idx(i - 1, j)] + sc.gap_extend) {
        --i;
      } else {
        --i;
        state = State::kH;
      }
    }
  }

  SwAlignment out;
  out.aligned = true;
  out.score = best;
  out.window_start = j;
  out.window_end = best_j;
  out.edit_distance = edits;
  if (i > 0) out.cigar.push_back({'S', i});  // leading soft clip
  for (auto it = rev_ops.rbegin(); it != rev_ops.rend(); ++it) {
    out.cigar.push_back(*it);
  }
  if (best_i < m) out.cigar.push_back({'S', m - best_i});
  return out;
}

// ---------------------------------------------------------------------
// Banded, runtime-dispatched kernel.
//
// All banded variants share one band-local storage layout (see
// sw_kernel_internal.h) and one traceback, so for a fixed band they are
// bit-identical by construction: the SIMD fill produces the same H/E/F
// values as the scalar fill (the E state is computed from the E-free
// row H' = max(0, diag, F), which equals the textbook recurrence
// whenever gap_open <= gap_extend — opening a gap out of a gap never
// beats extending it), and the traceback is the same state machine the
// full-rectangle oracle runs.

namespace {

using sw_internal::FillRow16;
using sw_internal::FillRow32;
using sw_internal::kMax16;
using sw_internal::kMin16;
using sw_internal::kMin32;
using sw_internal::kWinPad;
using sw_internal::RowArgs16;
using sw_internal::RowArgs32;
using sw_internal::SwLayout;

// Arithmetic policy matching how each lane width computed its matrices:
// 16-bit lanes use saturating adds (so -inf stays pinned), 32-bit paths
// use plain ints with the oracle's -inf.
template <typename T>
struct Ops;

template <>
struct Ops<int16_t> {
  static constexpr int kMin = kMin16;
  static int Add(int a, int b) {
    return std::clamp(a + b, static_cast<int>(INT16_MIN),
                      static_cast<int>(INT16_MAX));
  }
};

template <>
struct Ops<int32_t> {
  static constexpr int kMin = kMin32;
  static int Add(int a, int b) { return a + b; }
};

template <typename T>
void ClearRow(T* h, T* e, T* f, int begin, int end) {
  std::fill(h + begin, h + end, T{0});
  std::fill(e + begin, e + end, static_cast<T>(Ops<T>::kMin));
  std::fill(f + begin, f + end, static_cast<T>(Ops<T>::kMin));
}

// Scalar banded fill: the oracle's recurrence restricted to the band,
// with out-of-band neighbors reading as H=0 / E=F=-inf via the cleared
// guard cells.
void FillBandedScalar(const SwLayout& L, std::string_view read,
                      std::string_view window, const SwScoring& sc,
                      int32_t* h, int32_t* e, int32_t* f, int* best,
                      int* best_i, int* best_j) {
  const int S = L.stride;
  ClearRow(h, e, f, 0, S);
  for (int i = 1; i <= L.m; ++i) {
    int32_t* hr = h + static_cast<size_t>(i) * S;
    int32_t* er = e + static_cast<size_t>(i) * S;
    int32_t* fr = f + static_cast<size_t>(i) * S;
    const int32_t* hp = hr - S;
    const int32_t* fp = fr - S;
    const int jlo = L.JLo(i);
    const int jhi = L.JHi(i);
    if (jlo > jhi) {
      ClearRow(hr, er, fr, 0, S);
      if (i + L.lo > L.n) break;  // band has left the window for good
      continue;
    }
    const int slo = static_cast<int>(L.Col(i, jlo));
    const int shi = static_cast<int>(L.Col(i, jhi));
    ClearRow(hr, er, fr, 0, slo);
    ClearRow(hr, er, fr, shi + 1, S);
    for (int j = jlo; j <= jhi; ++j) {
      const int s = slo + (j - jlo);
      const int sub =
          (read[i - 1] == window[j - 1]) ? sc.match : sc.mismatch;
      const int diag = hp[s] + sub;
      const int ev =
          std::max(hr[s - 1] + sc.gap_open, er[s - 1] + sc.gap_extend);
      const int fv =
          std::max(hp[s + 1] + sc.gap_open, fp[s + 1] + sc.gap_extend);
      const int v = std::max({0, diag, ev, fv});
      hr[s] = v;
      er[s] = ev;
      fr[s] = fv;
      if (v > *best) {
        *best = v;
        *best_i = i;
        *best_j = j;
      }
    }
  }
}

// Vectorized banded fill: FillRow computes H' = max(0, diag+sub, F) and
// F for a whole row; the serial pass below resolves E as a decayed
// running max over H' and finalizes H — cell for cell the same values
// (and the same first-strict-improvement argmax) as the scalar fill.
template <typename T, typename RowArgsT, void (*RowFill)(const RowArgsT&)>
void FillBandedSimd(const SwLayout& L, std::string_view read,
                    std::string_view window, const SwScoring& sc,
                    const char* wpad, T* h, T* e, T* f, int* best,
                    int* best_i, int* best_j) {
  const int S = L.stride;
  ClearRow(h, e, f, 0, S);
  for (int i = 1; i <= L.m; ++i) {
    T* hr = h + static_cast<size_t>(i) * S;
    T* er = e + static_cast<size_t>(i) * S;
    T* fr = f + static_cast<size_t>(i) * S;
    const int jlo = L.JLo(i);
    const int jhi = L.JHi(i);
    if (jlo > jhi) {
      ClearRow(hr, er, fr, 0, S);
      if (i + L.lo > L.n) break;
      continue;
    }
    const int slo = static_cast<int>(L.Col(i, jlo));
    const int shi = static_cast<int>(L.Col(i, jhi));
    RowArgsT args;
    args.hp = hr - S;
    args.fp = fr - S;
    args.hr = hr;
    args.fr = fr;
    args.wpad = wpad;
    args.woff = kWinPad + i + L.lo - 2;
    args.s_lo = slo;
    args.s_hi = shi;
    args.read_char = read[i - 1];
    args.match = sc.match;
    args.mismatch = sc.mismatch;
    args.gap_open = sc.gap_open;
    args.gap_extend = sc.gap_extend;
    RowFill(args);
    // Serial pass: E[s] = P[s-1] with P[s] = max(H'[s]+open, P[s-1]+ext),
    // seeded with the out-of-band boundary H=0 -> P = open.
    int p = Ops<T>::Add(0, sc.gap_open);
    for (int s = slo; s <= shi; ++s) {
      const int h0 = hr[s];
      const int ev = p;
      const int v = std::max(h0, ev);
      hr[s] = static_cast<T>(v);
      er[s] = static_cast<T>(ev);
      if (v > *best) {
        *best = v;
        *best_i = i;
        *best_j = jlo + (s - slo);
      }
      p = std::max(Ops<T>::Add(h0, sc.gap_open),
                   Ops<T>::Add(p, sc.gap_extend));
    }
    // The vector pass wrote garbage into lanes outside [slo, shi]; make
    // them the out-of-band boundary again before the next row reads them.
    ClearRow(hr, er, fr, 0, slo);
    ClearRow(hr, er, fr, shi + 1, S);
  }
}

// Shared traceback over the band-local matrices: the oracle's state
// machine, with out-of-band reads resolving to the boundary values.
// `lanes`/`lane` address lane-interleaved matrices from the vertical
// batch fill (cell (i, j) of lane l at Idx(i, j) * lanes + l); the
// per-read matrices are the degenerate lanes = 1 case.
template <typename T>
void TracebackBanded(const SwLayout& L, const T* h, const T* e, const T* f,
                     std::string_view read, std::string_view window,
                     const SwScoring& sc, int best, int best_i, int best_j,
                     SwScratch* scratch, SwAlignment* out, int lanes = 1,
                     int lane = 0) {
  auto hat = [&](int i, int j) -> int {
    return L.Valid(i, j) ? static_cast<int>(h[L.Idx(i, j) * lanes + lane])
                         : 0;
  };
  auto eat = [&](int i, int j) -> int {
    return L.Valid(i, j) ? static_cast<int>(e[L.Idx(i, j) * lanes + lane])
                         : Ops<T>::kMin;
  };
  auto fat = [&](int i, int j) -> int {
    return L.Valid(i, j) ? static_cast<int>(f[L.Idx(i, j) * lanes + lane])
                         : Ops<T>::kMin;
  };
  Cigar& rev_ops = scratch->rev_ops;
  rev_ops.clear();
  auto push = [&rev_ops](char op) {
    if (!rev_ops.empty() && rev_ops.back().op == op) {
      ++rev_ops.back().len;
    } else {
      rev_ops.push_back({op, 1});
    }
  };
  enum class State { kH, kE, kF };
  State state = State::kH;
  int i = best_i, j = best_j, edits = 0;
  while (i > 0 || j > 0) {
    if (state == State::kH) {
      const int v = hat(i, j);
      if (v == 0) break;
      const int sub = (i > 0 && j > 0 && read[i - 1] == window[j - 1])
                          ? sc.match
                          : sc.mismatch;
      if (i > 0 && j > 0 && v == Ops<T>::Add(hat(i - 1, j - 1), sub)) {
        push('M');
        if (read[i - 1] != window[j - 1]) ++edits;
        --i;
        --j;
      } else if (v == eat(i, j)) {
        state = State::kE;
      } else {
        state = State::kF;
      }
    } else if (state == State::kE) {
      push('D');
      ++edits;
      if (eat(i, j) == Ops<T>::Add(eat(i, j - 1), sc.gap_extend)) {
        --j;
      } else {
        --j;
        state = State::kH;
      }
    } else {  // State::kF
      push('I');
      ++edits;
      if (fat(i, j) == Ops<T>::Add(fat(i - 1, j), sc.gap_extend)) {
        --i;
      } else {
        --i;
        state = State::kH;
      }
    }
  }

  out->aligned = true;
  out->score = best;
  out->window_start = j;
  out->window_end = best_j;
  out->edit_distance = edits;
  out->cigar.clear();
  if (i > 0) out->cigar.push_back({'S', i});
  for (auto it = rev_ops.rbegin(); it != rev_ops.rend(); ++it) {
    out->cigar.push_back(*it);
  }
  if (best_i < L.m) out->cigar.push_back({'S', L.m - best_i});
}

// 16-bit lanes can represent any sane scoring scheme; reject extreme
// parameters up front instead of relying on saturation mid-matrix.
bool ScoringFits16(const SwScoring& sc) {
  auto ok = [](int v) { return v >= -16000 && v <= 16000; };
  return ok(sc.match) && ok(sc.mismatch) && ok(sc.gap_open) &&
         ok(sc.gap_extend);
}

}  // namespace

bool SwSimdAvailable() { return sw_internal::SimdRowFillAvailable(); }

void SmithWatermanKernel(std::string_view read, std::string_view window,
                         const SwScoring& sc, const SwBand& band,
                         SwKernelMode mode, SwScratch* scratch,
                         SwAlignment* out, SwKernelStats* stats) {
  out->score = 0;
  out->window_start = 0;
  out->window_end = 0;
  out->cigar.clear();
  out->edit_distance = 0;
  out->aligned = false;

  const int m = static_cast<int>(read.size());
  const int n = static_cast<int>(window.size());
  SwKernelStats local;
  local.calls = 1;
  local.cells_full = static_cast<int64_t>(m) * n;
  auto flush = [&] {
    if (stats != nullptr) *stats += local;
  };
  if (m == 0 || n == 0) {
    flush();
    return;
  }

  const SwBand effective =
      (mode == SwKernelMode::kScalarFull) ? SwBand::Full() : band;
  const SwLayout L = SwLayout::Make(m, n, effective);
  if (L.empty) {
    flush();
    return;
  }
  int64_t band_cells = 0;
  for (int i = 1; i <= m; ++i) {
    band_cells += std::max(0, L.JHi(i) - L.JLo(i) + 1);
  }
  local.cells_filled = band_cells;

  const bool use_simd = (mode == SwKernelMode::kAuto ||
                         mode == SwKernelMode::kBandedSimd) &&
                        SwSimdAvailable() &&
                        sc.gap_open <= sc.gap_extend && ScoringFits16(sc);

  const size_t cells = L.Cells();
  int best = 0, best_i = 0, best_j = 0;
  if (use_simd) {
    local.simd_calls = 1;
    const size_t wneed = static_cast<size_t>(kWinPad) + n + 32;
    if (scratch->window_pad.size() < wneed) scratch->window_pad.resize(wneed);
    std::copy(window.begin(), window.end(),
              scratch->window_pad.begin() + kWinPad);
    if (scratch->h16.size() < cells) {
      scratch->h16.resize(cells);
      scratch->e16.resize(cells);
      scratch->f16.resize(cells);
    }
    FillBandedSimd<int16_t, RowArgs16, FillRow16>(
        L, read, window, sc, scratch->window_pad.data(), scratch->h16.data(),
        scratch->e16.data(), scratch->f16.data(), &best, &best_i, &best_j);
    if (best >= kMax16) {
      // int16 saturated: the scores are untrustworthy — rerun the fill
      // in 32-bit lanes (identical recurrence, no saturation).
      local.overflow_reruns = 1;
      local.cells_filled += band_cells;
      if (scratch->h32.size() < cells) {
        scratch->h32.resize(cells);
        scratch->e32.resize(cells);
        scratch->f32.resize(cells);
      }
      best = 0;
      best_i = 0;
      best_j = 0;
      FillBandedSimd<int32_t, RowArgs32, FillRow32>(
          L, read, window, sc, scratch->window_pad.data(),
          scratch->h32.data(), scratch->e32.data(), scratch->f32.data(),
          &best, &best_i, &best_j);
      if (best > 0) {
        TracebackBanded<int32_t>(L, scratch->h32.data(), scratch->e32.data(),
                                 scratch->f32.data(), read, window, sc, best,
                                 best_i, best_j, scratch, out);
      }
    } else if (best > 0) {
      TracebackBanded<int16_t>(L, scratch->h16.data(), scratch->e16.data(),
                               scratch->f16.data(), read, window, sc, best,
                               best_i, best_j, scratch, out);
    }
  } else {
    local.scalar_calls = 1;
    if (scratch->h32.size() < cells) {
      scratch->h32.resize(cells);
      scratch->e32.resize(cells);
      scratch->f32.resize(cells);
    }
    FillBandedScalar(L, read, window, sc, scratch->h32.data(),
                     scratch->e32.data(), scratch->f32.data(), &best,
                     &best_i, &best_j);
    if (best > 0) {
      TracebackBanded<int32_t>(L, scratch->h32.data(), scratch->e32.data(),
                               scratch->f32.data(), read, window, sc, best,
                               best_i, best_j, scratch, out);
    }
  }
  flush();
}

// ---------------------------------------------------------------------
// Vertical batched kernel: jobs sharing one band geometry run one-per-
// lane through sw_vertical.cc's fill. Identity with the per-read kernel
// holds lane by lane: the vertical fill computes E directly from final H
// (E = max(H[s-1]+open, E[s-1]+ext)), which under saturating adds equals
// the per-read serial pass's E-free form whenever gap_open <= gap_extend
// — exactly the gate that admits the 16-bit path in the first place —
// and best tracking uses the same strict-improvement (i asc, j asc)
// order. Saturated lanes repeat the per-read 32-bit overflow rerun.

namespace {

int64_t BandCells(const sw_internal::SwLayout& L) {
  int64_t cells = 0;
  for (int i = 1; i <= L.m; ++i) {
    cells += std::max(0, L.JHi(i) - L.JLo(i) + 1);
  }
  return cells;
}

// Runs exactly `lanes` jobs (idx[0..lanes)) that share layout L through
// one vertical fill, then finalizes each lane the way the per-read
// kernel would have: traceback on >0 scores, 32-bit rerun on saturation,
// identical stats accounting.
void RunVerticalChunk(SwBatchJob* jobs, const uint32_t* idx, int lanes,
                      const sw_internal::SwLayout& L, int64_t band_cells,
                      const SwScoring& sc, SwScratch* scratch,
                      SwBatchScratch* batch, SwKernelStats* stats) {
  const int m = L.m;
  const int n = L.n;
  const size_t need = L.Cells() * lanes;
  if (batch->h.size() < need) {
    batch->h.resize(need);
    batch->e.resize(need);
    batch->f.resize(need);
  }
  const size_t rneed = static_cast<size_t>(m) * lanes;
  const size_t wneed = static_cast<size_t>(n) * lanes;
  if (batch->reads.size() < rneed) batch->reads.resize(rneed);
  if (batch->windows.size() < wneed) batch->windows.resize(wneed);
  batch->best.resize(lanes);
  batch->besti.resize(lanes);
  batch->bestj.resize(lanes);
  for (int l = 0; l < lanes; ++l) {
    const SwBatchJob& job = jobs[idx[l]];
    for (int i = 0; i < m; ++i) batch->reads[i * lanes + l] = job.read[i];
    for (int t = 0; t < n; ++t) {
      batch->windows[t * lanes + l] = job.window[t];
    }
  }

  sw_internal::VerticalArgs16 args;
  args.layout = &L;
  args.reads = batch->reads.data();
  args.wins = batch->windows.data();
  args.h = batch->h.data();
  args.e = batch->e.data();
  args.f = batch->f.data();
  args.match = static_cast<int16_t>(sc.match);
  args.mismatch = static_cast<int16_t>(sc.mismatch);
  args.gap_open = static_cast<int16_t>(sc.gap_open);
  args.gap_extend = static_cast<int16_t>(sc.gap_extend);
  args.best = batch->best.data();
  args.besti = batch->besti.data();
  args.bestj = batch->bestj.data();
  sw_internal::FillBandedVertical16(args);

  for (int l = 0; l < lanes; ++l) {
    const SwBatchJob& job = jobs[idx[l]];
    SwAlignment* out = job.out;
    out->score = 0;
    out->window_start = 0;
    out->window_end = 0;
    out->cigar.clear();
    out->edit_distance = 0;
    out->aligned = false;

    SwKernelStats local;
    local.calls = 1;
    local.simd_calls = 1;
    local.cells_full = static_cast<int64_t>(m) * n;
    local.cells_filled = band_cells;
    int best = batch->best[l];
    int best_i = batch->besti[l];
    int best_j = batch->bestj[l];
    if (best >= kMax16) {
      // This lane saturated int16: rerun just this job in 32-bit lanes,
      // the same promotion the per-read kernel performs.
      local.overflow_reruns = 1;
      local.cells_filled += band_cells;
      const size_t wpad_need = static_cast<size_t>(kWinPad) + n + 32;
      if (scratch->window_pad.size() < wpad_need) {
        scratch->window_pad.resize(wpad_need);
      }
      std::copy(job.window.begin(), job.window.end(),
                scratch->window_pad.begin() + kWinPad);
      const size_t cells = L.Cells();
      if (scratch->h32.size() < cells) {
        scratch->h32.resize(cells);
        scratch->e32.resize(cells);
        scratch->f32.resize(cells);
      }
      best = 0;
      best_i = 0;
      best_j = 0;
      FillBandedSimd<int32_t, RowArgs32, FillRow32>(
          L, job.read, job.window, sc, scratch->window_pad.data(),
          scratch->h32.data(), scratch->e32.data(), scratch->f32.data(),
          &best, &best_i, &best_j);
      if (best > 0) {
        TracebackBanded<int32_t>(L, scratch->h32.data(), scratch->e32.data(),
                                 scratch->f32.data(), job.read, job.window,
                                 sc, best, best_i, best_j, scratch, out);
      }
    } else if (best > 0) {
      TracebackBanded<int16_t>(L, batch->h.data(), batch->e.data(),
                               batch->f.data(), job.read, job.window, sc,
                               best, best_i, best_j, scratch, out, lanes, l);
    }
    if (stats != nullptr) *stats += local;
  }
}

}  // namespace

void SmithWatermanBatch(SwBatchJob* jobs, size_t n_jobs, const SwScoring& sc,
                        SwKernelMode mode, SwScratch* scratch,
                        SwBatchScratch* batch, SwKernelStats* stats) {
  const int lanes = sw_internal::VerticalLanes();
  const bool vertical_ok =
      lanes > 0 &&
      (mode == SwKernelMode::kAuto || mode == SwKernelMode::kBandedSimd) &&
      SwSimdAvailable() && sc.gap_open <= sc.gap_extend && ScoringFits16(sc);
  if (!vertical_ok) {
    for (size_t k = 0; k < n_jobs; ++k) {
      SmithWatermanKernel(jobs[k].read, jobs[k].window, sc, jobs[k].band,
                          mode, scratch, jobs[k].out, stats);
    }
    return;
  }

  // Group jobs by band geometry so each vector chunk shares one layout.
  // The index tie-break keeps the grouping deterministic; results are
  // order-independent anyway since every job owns its output slot.
  std::vector<uint32_t>& order = batch->order;
  order.resize(n_jobs);
  for (size_t k = 0; k < n_jobs; ++k) order[k] = static_cast<uint32_t>(k);
  std::sort(order.begin(), order.end(), [jobs](uint32_t a, uint32_t b) {
    const SwBatchJob& ja = jobs[a];
    const SwBatchJob& jb = jobs[b];
    if (ja.read.size() != jb.read.size()) {
      return ja.read.size() < jb.read.size();
    }
    if (ja.window.size() != jb.window.size()) {
      return ja.window.size() < jb.window.size();
    }
    if (ja.band.center != jb.band.center) {
      return ja.band.center < jb.band.center;
    }
    if (ja.band.half_width != jb.band.half_width) {
      return ja.band.half_width < jb.band.half_width;
    }
    return a < b;
  });
  auto same_geometry = [jobs](uint32_t a, uint32_t b) {
    const SwBatchJob& ja = jobs[a];
    const SwBatchJob& jb = jobs[b];
    return ja.read.size() == jb.read.size() &&
           ja.window.size() == jb.window.size() &&
           ja.band.center == jb.band.center &&
           ja.band.half_width == jb.band.half_width;
  };

  size_t g = 0;
  while (g < n_jobs) {
    size_t ge = g + 1;
    while (ge < n_jobs && same_geometry(order[g], order[ge])) ++ge;
    const SwBatchJob& j0 = jobs[order[g]];
    const int m = static_cast<int>(j0.read.size());
    const int n = static_cast<int>(j0.window.size());
    const sw_internal::SwLayout L = sw_internal::SwLayout::Make(m, n, j0.band);
    // The int16 argmax lanes carry best_i/best_j; keep the vertical path
    // to dimensions they can represent (real reads/windows are far
    // smaller) and degenerate layouts on the scalar driver.
    const bool can_vertical = !L.empty && m < 32000 && n < 32000;
    size_t k = g;
    if (can_vertical) {
      const int64_t band_cells = BandCells(L);
      for (; k + static_cast<size_t>(lanes) <= ge;
           k += static_cast<size_t>(lanes)) {
        RunVerticalChunk(jobs, order.data() + k, lanes, L, band_cells, sc,
                         scratch, batch, stats);
      }
    }
    for (; k < ge; ++k) {
      const SwBatchJob& job = jobs[order[k]];
      SmithWatermanKernel(job.read, job.window, sc, job.band, mode, scratch,
                          job.out, stats);
    }
    g = ge;
  }
}

}  // namespace gesall

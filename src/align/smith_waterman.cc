#include "align/smith_waterman.h"

#include <algorithm>
#include <vector>

namespace gesall {

namespace {
constexpr int kNegInf = -(1 << 28);
}  // namespace

// Classic three-matrix affine-gap Smith-Waterman over the full
// read x window rectangle (windows are small: read length + 2*pad).
// Traceback is a state machine over the H/E/F matrices.
SwAlignment SmithWaterman(std::string_view read, std::string_view window,
                          const SwScoring& sc) {
  const int m = static_cast<int>(read.size());
  const int n = static_cast<int>(window.size());
  SwAlignment result;
  if (m == 0 || n == 0) return result;

  // H: best local score ending at (i,j); E: alignment ending in a gap that
  // consumes reference (CIGAR 'D'); F: gap consuming read (CIGAR 'I').
  std::vector<int> h((m + 1) * (n + 1), 0);
  std::vector<int> e((m + 1) * (n + 1), kNegInf);
  std::vector<int> f((m + 1) * (n + 1), kNegInf);
  auto idx = [n](int i, int j) { return i * (n + 1) + j; };

  int best = 0, best_i = 0, best_j = 0;
  for (int i = 1; i <= m; ++i) {
    for (int j = 1; j <= n; ++j) {
      int sub = (read[i - 1] == window[j - 1]) ? sc.match : sc.mismatch;
      int diag = h[idx(i - 1, j - 1)] + sub;
      e[idx(i, j)] = std::max(h[idx(i, j - 1)] + sc.gap_open,
                              e[idx(i, j - 1)] + sc.gap_extend);
      f[idx(i, j)] = std::max(h[idx(i - 1, j)] + sc.gap_open,
                              f[idx(i - 1, j)] + sc.gap_extend);
      int v = std::max({0, diag, e[idx(i, j)], f[idx(i, j)]});
      h[idx(i, j)] = v;
      if (v > best) {
        best = v;
        best_i = i;
        best_j = j;
      }
    }
  }
  if (best <= 0) return result;

  // Traceback.
  Cigar rev_ops;
  auto push = [&rev_ops](char op) {
    if (!rev_ops.empty() && rev_ops.back().op == op) {
      ++rev_ops.back().len;
    } else {
      rev_ops.push_back({op, 1});
    }
  };
  enum class State { kH, kE, kF };
  State state = State::kH;
  int i = best_i, j = best_j, edits = 0;
  while (i > 0 || j > 0) {
    if (state == State::kH) {
      int v = h[idx(i, j)];
      if (v == 0) break;
      int sub = (i > 0 && j > 0 && read[i - 1] == window[j - 1])
                    ? sc.match
                    : sc.mismatch;
      if (i > 0 && j > 0 && v == h[idx(i - 1, j - 1)] + sub) {
        push('M');
        if (read[i - 1] != window[j - 1]) ++edits;
        --i;
        --j;
      } else if (v == e[idx(i, j)]) {
        state = State::kE;
      } else {
        state = State::kF;
      }
    } else if (state == State::kE) {
      push('D');
      ++edits;
      if (e[idx(i, j)] == e[idx(i, j - 1)] + sc.gap_extend) {
        --j;
      } else {
        --j;
        state = State::kH;
      }
    } else {  // State::kF
      push('I');
      ++edits;
      if (f[idx(i, j)] == f[idx(i - 1, j)] + sc.gap_extend) {
        --i;
      } else {
        --i;
        state = State::kH;
      }
    }
  }

  SwAlignment out;
  out.aligned = true;
  out.score = best;
  out.window_start = j;
  out.window_end = best_j;
  out.edit_distance = edits;
  if (i > 0) out.cigar.push_back({'S', i});  // leading soft clip
  for (auto it = rev_ops.rbegin(); it != rev_ops.rend(); ++it) {
    out.cigar.push_back(*it);
  }
  if (best_i < m) out.cigar.push_back({'S', m - best_i});
  return out;
}

}  // namespace gesall

// BWA-style seed-chain-extend read aligner and paired-end resolution.
//
// Two properties are deliberately faithful to BWA because they are the
// root cause of the paper's serial-vs-parallel discordance (App. B.2):
//
//  1. *Batch statistics*: the insert-size distribution used to score pair
//     candidates is estimated from each batch of reads, so partitioning
//     the input changes batch boundaries and therefore pairing decisions
//     near the edges of the insert-size distribution (paper Fig. 11c).
//  2. *Random tie-breaking*: when multiple alignments (or pairings) score
//     equally — common in repetitive regions — one is chosen at random,
//     from an RNG seeded by batch content (paper Fig. 11a).

#ifndef GESALL_ALIGN_ALIGNER_H_
#define GESALL_ALIGN_ALIGNER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "align/align_scratch.h"
#include "align/genome_index.h"
#include "align/smith_waterman.h"
#include "formats/fastq.h"
#include "formats/sam.h"

namespace gesall {

/// \brief One candidate alignment of a read.
struct Alignment {
  int32_t ref_id = -1;
  int64_t pos = -1;      // 0-based leftmost reference position
  bool reverse = false;  // aligned to the reverse strand
  Cigar cigar;           // oriented along the forward reference strand
  int score = 0;
  int edit_distance = 0;
};

inline Alignment* AlignmentList::begin() { return items_.data(); }
inline Alignment* AlignmentList::end() { return items_.data() + count_; }
inline const Alignment* AlignmentList::begin() const { return items_.data(); }
inline const Alignment* AlignmentList::end() const {
  return items_.data() + count_;
}
inline Alignment& AlignmentList::operator[](size_t i) { return items_[i]; }
inline const Alignment& AlignmentList::operator[](size_t i) const {
  return items_[i];
}

/// \brief Single-read alignment parameters.
struct AlignerOptions {
  int seed_length = 19;
  int seed_stride = 11;
  /// Seeds with more exact hits than this are skipped (repeats).
  int max_seed_hits = 32;
  /// Candidate windows extended with Smith-Waterman per read.
  int max_candidates = 8;
  int window_pad = 24;
  SwScoring scoring;
  /// Alignments scoring below this are discarded.
  int min_score = 30;
  /// Extension kernel (see smith_waterman.h). All modes produce identical
  /// alignments for seed-anchored reads; kScalarFull forces the
  /// full-rectangle oracle.
  SwKernelMode kernel = SwKernelMode::kAuto;
  /// Half-width of the banded DP around the seed-implied diagonal. Must
  /// cover window_pad placement error + cluster slack + expected indels;
  /// the default is window_pad (24) + cluster slack (16).
  int band_pad = 40;
};

/// \brief Aligns individual reads against a GenomeIndex.
class ReadAligner {
 public:
  explicit ReadAligner(const GenomeIndex& index, AlignerOptions options = {});

  /// Returns candidate alignments sorted by descending score (deduped by
  /// position). Empty when the read is unalignable.
  /// Convenience wrapper over AlignReadInto (allocates fresh scratch).
  std::vector<Alignment> AlignRead(std::string_view seq) const;

  /// Allocation-free hot path: same results as AlignRead, written into a
  /// pooled `out` using per-thread `scratch`. Kernel counters accumulate
  /// into scratch->stats. Equivalent to CollectExtensions + per-job
  /// SmithWatermanKernel + FinishRead (it is implemented that way).
  void AlignReadInto(std::string_view seq, AlignScratch* scratch,
                     AlignmentList* out) const;

  /// Phase 1 of AlignReadInto: seeding + clustering. Appends one
  /// ExtensionJob per candidate window to `jobs` — query views point
  /// into `seq` / `reverse_seq` (the read's reverse complement, computed
  /// by the caller), window views into the genome index; all must stay
  /// alive until FinishRead. Appends nothing for unseedable reads.
  /// Exposed so batch callers can pool jobs across reads and extend them
  /// with the vertical SIMD kernel (SmithWatermanBatch).
  void CollectExtensions(std::string_view seq, std::string_view reverse_seq,
                         AlignScratch* scratch, ExtensionJobList* jobs) const;

  /// Phase 3 of AlignReadInto: filters extended jobs by min_score and
  /// resolves them into `out` (dedupe by position, sort by score). The
  /// jobs' `result` slots must already be filled by a kernel; their
  /// Cigars are swapped out (capacity flows between pools).
  void FinishRead(ExtensionJob* jobs, size_t n_jobs,
                  AlignmentList* out) const;

 private:
  const GenomeIndex* index_;
  AlignerOptions options_;
};

/// \brief Paired-end alignment parameters.
struct PairedAlignerOptions {
  AlignerOptions aligner;
  /// Pairs per batch; insert statistics and the tie-break RNG are
  /// per-batch, which is what makes results partitioning-sensitive.
  int batch_size = 2048;
  /// Candidate alignments per mate considered during pairing.
  int top_k = 4;
  /// A pair within mean +/- this many (batch-estimated) SDs of insert size
  /// earns the pair score bonus (step function, as in BWA).
  double proper_range_sds = 4.0;
  int pair_bonus = 17;
  /// Global seed mixed into per-batch content-derived seeds.
  uint64_t seed = 11;
  /// Fallback insert stats used when a batch has too few confident pairs.
  double fallback_insert_mean = 400.0;
  double fallback_insert_sd = 60.0;
};

/// \brief Batch-estimated insert-size statistics (exposed for tests).
struct InsertStats {
  double mean = 0.0;
  double sd = 0.0;
  int64_t samples = 0;
};

/// \brief Aligns read pairs and emits SAM records (two per pair).
///
/// Input is interleaved (mate1, mate2, mate1, mate2, ...), the layout
/// Gesall feeds to wrapped aligners (paper §3.2 "Group Partitioning").
class PairedEndAligner {
 public:
  PairedEndAligner(const GenomeIndex& index,
                   PairedAlignerOptions options = {});

  /// Aligns all pairs, processing them in batches of batch_size.
  /// Convenience wrapper over the scratch-reusing overload.
  std::vector<SamRecord> AlignPairs(
      const std::vector<FastqRecord>& interleaved) const;

  /// Same, appending to `out` and reusing per-thread `scratch` so the
  /// per-read alignment work allocates nothing in steady state. Kernel
  /// counters accumulate into scratch->read.stats.
  void AlignPairs(const std::vector<FastqRecord>& interleaved,
                  PairedAlignScratch* scratch,
                  std::vector<SamRecord>* out) const;

  /// Header matching the index's reference dictionary.
  SamHeader MakeHeader() const;

  /// Estimates insert statistics the way a batch does (exposed for tests).
  InsertStats EstimateInsertStats(
      const std::vector<std::vector<Alignment>>& cand1,
      const std::vector<std::vector<Alignment>>& cand2) const;

 private:
  void AlignBatch(const std::vector<FastqRecord>& interleaved, size_t begin,
                  size_t end, PairedAlignScratch* scratch,
                  std::vector<SamRecord>* out) const;

  const GenomeIndex* index_;
  PairedAlignerOptions options_;
  ReadAligner read_aligner_;
};

}  // namespace gesall

#endif  // GESALL_ALIGN_ALIGNER_H_

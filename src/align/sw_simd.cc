// Vectorized row-fill pass of the banded Smith-Waterman kernel.
//
// Only the E-free half of the affine recurrence is vectorized here —
// substitution scores, the diagonal add, and the vertical (F) gap state
// are elementwise over a row once the previous row is final, while the
// horizontal (E) state is a serial scan the driver finishes per row.
// 16-bit lanes use saturating adds so -inf stays pinned at INT16_MIN and
// positive overflow parks at INT16_MAX, where the driver detects it and
// reruns the fill in 32-bit lanes (FillRow32).
//
// Runtime-dispatched like util/crc32c: AVX2 when the CPU has it, else
// SSE4.1; no build flags, one binary per cluster.

#include "align/sw_kernel_internal.h"

#include "util/cpu.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define GESALL_SW_HAS_SIMD 1
#include <immintrin.h>
#endif

namespace gesall {
namespace sw_internal {

#ifdef GESALL_SW_HAS_SIMD

namespace {

__attribute__((target("sse4.1"))) void FillRow16Sse(const RowArgs16& a) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i rc = _mm_set1_epi8(a.read_char);
  const __m128i mv = _mm_set1_epi16(a.match);
  const __m128i mm = _mm_set1_epi16(a.mismatch);
  const __m128i go = _mm_set1_epi16(a.gap_open);
  const __m128i ge = _mm_set1_epi16(a.gap_extend);
  const int s_begin = a.s_lo & ~7;
  const int s_end = (a.s_hi + 8) & ~7;
  for (int s = s_begin; s < s_end; s += 8) {
    const __m128i hp_s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a.hp + s));
    const __m128i hp_s1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a.hp + s + 1));
    const __m128i fp_s1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a.fp + s + 1));
    const __m128i wb = _mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(a.wpad + a.woff + s));
    const __m128i eq = _mm_cvtepi8_epi16(_mm_cmpeq_epi8(wb, rc));
    const __m128i sub = _mm_blendv_epi8(mm, mv, eq);
    const __m128i f = _mm_max_epi16(_mm_adds_epi16(hp_s1, go),
                                    _mm_adds_epi16(fp_s1, ge));
    __m128i h0 = _mm_max_epi16(_mm_adds_epi16(hp_s, sub), zero);
    h0 = _mm_max_epi16(h0, f);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(a.hr + s), h0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(a.fr + s), f);
  }
}

__attribute__((target("avx2"))) void FillRow16Avx2(const RowArgs16& a) {
  const __m256i zero = _mm256_setzero_si256();
  const __m128i rc = _mm_set1_epi8(a.read_char);
  const __m256i mv = _mm256_set1_epi16(a.match);
  const __m256i mm = _mm256_set1_epi16(a.mismatch);
  const __m256i go = _mm256_set1_epi16(a.gap_open);
  const __m256i ge = _mm256_set1_epi16(a.gap_extend);
  const int s_begin = a.s_lo & ~15;
  const int s_end = (a.s_hi + 16) & ~15;
  for (int s = s_begin; s < s_end; s += 16) {
    const __m256i hp_s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.hp + s));
    const __m256i hp_s1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.hp + s + 1));
    const __m256i fp_s1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.fp + s + 1));
    const __m128i wb = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(a.wpad + a.woff + s));
    const __m256i eq = _mm256_cvtepi8_epi16(_mm_cmpeq_epi8(wb, rc));
    const __m256i sub = _mm256_blendv_epi8(mm, mv, eq);
    const __m256i f = _mm256_max_epi16(_mm256_adds_epi16(hp_s1, go),
                                       _mm256_adds_epi16(fp_s1, ge));
    __m256i h0 = _mm256_max_epi16(_mm256_adds_epi16(hp_s, sub), zero);
    h0 = _mm256_max_epi16(h0, f);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a.hr + s), h0);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(a.fr + s), f);
  }
}

__attribute__((target("sse4.1"))) void FillRow32Sse(const RowArgs32& a) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i rc = _mm_set1_epi8(a.read_char);
  const __m128i mv = _mm_set1_epi32(a.match);
  const __m128i mm = _mm_set1_epi32(a.mismatch);
  const __m128i go = _mm_set1_epi32(a.gap_open);
  const __m128i ge = _mm_set1_epi32(a.gap_extend);
  const int s_begin = a.s_lo & ~3;
  const int s_end = (a.s_hi + 4) & ~3;
  for (int s = s_begin; s < s_end; s += 4) {
    const __m128i hp_s =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a.hp + s));
    const __m128i hp_s1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a.hp + s + 1));
    const __m128i fp_s1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a.fp + s + 1));
    int32_t wword;
    __builtin_memcpy(&wword, a.wpad + a.woff + s, 4);
    const __m128i wb = _mm_cvtsi32_si128(wword);
    const __m128i eq = _mm_cvtepi8_epi32(_mm_cmpeq_epi8(wb, rc));
    const __m128i sub = _mm_blendv_epi8(mm, mv, eq);
    const __m128i f = _mm_max_epi32(_mm_add_epi32(hp_s1, go),
                                    _mm_add_epi32(fp_s1, ge));
    __m128i h0 = _mm_max_epi32(_mm_add_epi32(hp_s, sub), zero);
    h0 = _mm_max_epi32(h0, f);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(a.hr + s), h0);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(a.fr + s), f);
  }
}

}  // namespace

bool SimdRowFillAvailable() { return CpuHasSse41(); }

void FillRow16(const RowArgs16& args) {
  if (CpuHasAvx2()) {
    FillRow16Avx2(args);
  } else {
    FillRow16Sse(args);
  }
}

void FillRow32(const RowArgs32& args) { FillRow32Sse(args); }

#else  // !GESALL_SW_HAS_SIMD

bool SimdRowFillAvailable() { return false; }
void FillRow16(const RowArgs16&) {}
void FillRow32(const RowArgs32&) {}

#endif

}  // namespace sw_internal
}  // namespace gesall

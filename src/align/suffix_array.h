// Suffix array construction (prefix doubling with radix sort, O(n log n)).

#ifndef GESALL_ALIGN_SUFFIX_ARRAY_H_
#define GESALL_ALIGN_SUFFIX_ARRAY_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gesall {

/// \brief Builds the suffix array of `text`.
///
/// The caller must guarantee that the final character of `text` is a
/// sentinel strictly smaller than every other character (the genome index
/// appends '\0').
std::vector<int32_t> BuildSuffixArray(const std::string& text);

}  // namespace gesall

#endif  // GESALL_ALIGN_SUFFIX_ARRAY_H_

// FM-index (Burrows-Wheeler transform + checkpointed occurrence counts +
// sampled suffix array) over the A/C/G/T alphabet, supporting backward
// search for exact seed matching and position lookup — the core of the
// BWA-style aligner [Li & Durbin 2009].

#ifndef GESALL_ALIGN_FM_INDEX_H_
#define GESALL_ALIGN_FM_INDEX_H_

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gesall {

/// \brief SA interval [lo, hi) of suffixes prefixed by the query pattern.
struct SaInterval {
  int64_t lo = 0;
  int64_t hi = 0;
  int64_t size() const { return hi - lo; }
  bool empty() const { return hi <= lo; }
};

/// \brief FM-index over text of alphabet {$, A, C, G, T}; other letters are
/// coerced to 'A' at build time and never match exactly (the aligner's
/// Smith-Waterman stage tolerates them as mismatches).
class FmIndex {
 public:
  /// Builds the index. `text` must NOT contain '\0'; a sentinel is
  /// appended internally. `sa_sample_rate` trades memory for locate speed.
  explicit FmIndex(const std::string& text, int sa_sample_rate = 8);

  /// Length of the indexed text (without the sentinel).
  int64_t text_length() const { return n_ - 1; }

  /// Backward search for an exact occurrence of `pattern`.
  SaInterval Search(std::string_view pattern) const;

  /// Extends an interval by one character on the left: interval for
  /// (c + current pattern). Empty result if no occurrence.
  SaInterval ExtendLeft(const SaInterval& interval, char c) const;

  /// Interval covering all suffixes (the search starting point).
  SaInterval WholeInterval() const { return {0, n_}; }

  /// Text position of the suffix at SA index `sa_index`.
  int64_t Locate(int64_t sa_index) const;

  /// Text positions for every suffix in the interval (capped at `limit`).
  std::vector<int64_t> LocateAll(const SaInterval& interval,
                                 int64_t limit) const;

  /// Appends the same positions to `out` without allocating (beyond
  /// `out`'s own growth) — the aligner hot path reuses one buffer.
  void LocateAllInto(const SaInterval& interval, int64_t limit,
                     std::vector<int64_t>* out) const;

 private:
  static int CharRank(char c);

  /// Number of occurrences of character-rank `r` in bwt_[0, pos).
  int64_t Occ(int r, int64_t pos) const;

  int64_t n_ = 0;                 // text length including sentinel
  std::string bwt_;               // BWT as rank bytes (0..4)
  std::array<int64_t, 6> c_{};    // C[r]: # of chars with rank < r
  int checkpoint_stride_ = 128;
  std::vector<std::array<int64_t, 5>> checkpoints_;
  int sa_sample_rate_;
  std::vector<int64_t> sampled_sa_;     // SA values at sampled SA indexes
  std::vector<uint64_t> bitmap_words_;  // bitmap: is SA index sampled?
  std::vector<int64_t> word_rank_;      // prefix popcounts of bitmap words
};

}  // namespace gesall

#endif  // GESALL_ALIGN_FM_INDEX_H_

#include "align/fm_index.h"

#include <bit>

#include "align/suffix_array.h"
#include "util/logging.h"

namespace gesall {

int FmIndex::CharRank(char c) {
  switch (c) {
    case 'A':
      return 1;
    case 'C':
      return 2;
    case 'G':
      return 3;
    case 'T':
      return 4;
    default:
      return -1;
  }
}

FmIndex::FmIndex(const std::string& text, int sa_sample_rate)
    : sa_sample_rate_(sa_sample_rate) {
  // Coerce to rank bytes: sentinel 0, A..T -> 1..4 (N and friends -> 1).
  std::string ranks(text.size() + 1, '\0');
  for (size_t i = 0; i < text.size(); ++i) {
    int r = CharRank(text[i]);
    ranks[i] = static_cast<char>(r < 0 ? 1 : r);
  }
  n_ = static_cast<int64_t>(ranks.size());

  std::vector<int32_t> sa = BuildSuffixArray(ranks);

  // BWT and SA samples (sampled by text position: SA value % rate == 0).
  bwt_.resize(n_);
  std::vector<uint64_t> bitmap((n_ + 63) / 64, 0);
  std::vector<std::pair<int64_t, int64_t>> samples;  // (sa_index, value)
  for (int64_t i = 0; i < n_; ++i) {
    int64_t v = sa[i];
    bwt_[i] = v == 0 ? '\0' : ranks[v - 1];
    if (v % sa_sample_rate_ == 0) {
      bitmap[i / 64] |= (1ULL << (i % 64));
      samples.emplace_back(i, v);
    }
  }
  // Pack the bitmap into bytes plus a per-word rank prefix for O(1) lookup.
  bitmap_words_ = std::move(bitmap);
  word_rank_.resize(bitmap_words_.size() + 1, 0);
  for (size_t w = 0; w < bitmap_words_.size(); ++w) {
    word_rank_[w + 1] =
        word_rank_[w] + std::popcount(bitmap_words_[w]);
  }
  sampled_sa_.resize(samples.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    sampled_sa_[i] = samples[i].second;
  }

  // C table: counts of characters strictly smaller than each rank.
  std::array<int64_t, 6> counts{};
  for (char c : bwt_) ++counts[static_cast<unsigned char>(c) + 1];
  c_[0] = 0;
  for (int r = 1; r < 6; ++r) c_[r] = c_[r - 1] + counts[r];

  // Occurrence checkpoints every checkpoint_stride_ BWT positions.
  int64_t n_cp = n_ / checkpoint_stride_ + 1;
  checkpoints_.assign(n_cp, {});
  std::array<int64_t, 5> running{};
  for (int64_t i = 0; i < n_; ++i) {
    if (i % checkpoint_stride_ == 0) {
      checkpoints_[i / checkpoint_stride_] = running;
    }
    ++running[static_cast<unsigned char>(bwt_[i])];
  }
}

int64_t FmIndex::Occ(int r, int64_t pos) const {
  int64_t cp = pos / checkpoint_stride_;
  int64_t count = checkpoints_[cp][r];
  for (int64_t i = cp * checkpoint_stride_; i < pos; ++i) {
    if (static_cast<unsigned char>(bwt_[i]) == r) ++count;
  }
  return count;
}

SaInterval FmIndex::ExtendLeft(const SaInterval& interval, char c) const {
  int r = CharRank(c);
  if (r < 0 || interval.empty()) return {0, 0};
  SaInterval out;
  out.lo = c_[r] + Occ(r, interval.lo);
  out.hi = c_[r] + Occ(r, interval.hi);
  return out;
}

SaInterval FmIndex::Search(std::string_view pattern) const {
  SaInterval interval = WholeInterval();
  for (auto it = pattern.rbegin(); it != pattern.rend(); ++it) {
    interval = ExtendLeft(interval, *it);
    if (interval.empty()) break;
  }
  return interval;
}

int64_t FmIndex::Locate(int64_t sa_index) const {
  int64_t steps = 0;
  int64_t pos = sa_index;
  for (;;) {
    // Sampled?
    uint64_t word = bitmap_words_[pos / 64];
    if (word & (1ULL << (pos % 64))) {
      int64_t rank = word_rank_[pos / 64] +
                     std::popcount(word & ((1ULL << (pos % 64)) - 1));
      return sampled_sa_[rank] + steps;
    }
    int r = static_cast<unsigned char>(bwt_[pos]);
    // r == 0 (sentinel) implies SA value 0, which is always sampled, so we
    // can never be here with r == 0.
    pos = c_[r] + Occ(r, pos);
    ++steps;
  }
}

std::vector<int64_t> FmIndex::LocateAll(const SaInterval& interval,
                                        int64_t limit) const {
  std::vector<int64_t> out;
  out.reserve(std::min<int64_t>(interval.size(), limit));
  LocateAllInto(interval, limit, &out);
  return out;
}

void FmIndex::LocateAllInto(const SaInterval& interval, int64_t limit,
                            std::vector<int64_t>* out) const {
  int64_t count = std::min<int64_t>(interval.size(), limit);
  for (int64_t i = 0; i < count; ++i) {
    out->push_back(Locate(interval.lo + i));
  }
}

}  // namespace gesall

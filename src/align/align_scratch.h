// Per-thread reusable state for the alignment hot path.
//
// Every container here grows to its high-water mark and is reused, never
// shrunk, so a steady-state AlignReadInto/AlignPairs call performs zero
// heap allocations per read. One AlignScratch per thread; nothing in this
// header is safe to share across concurrent callers.

#ifndef GESALL_ALIGN_ALIGN_SCRATCH_H_
#define GESALL_ALIGN_ALIGN_SCRATCH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "align/smith_waterman.h"

namespace gesall {

struct Alignment;

/// \brief A pool-backed list of Alignments. clear() only resets the live
/// count; the pooled elements keep their Cigar capacity, so refilling the
/// list allocates nothing once capacities have warmed up.
class AlignmentList {
 public:
  /// Returns a recycled element reset to a default-constructed state
  /// (Cigar emptied but its capacity kept).
  Alignment& Append();

  void clear() { count_ = 0; }
  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  // Defined inline in aligner.h, where Alignment is a complete type.
  Alignment* begin();
  Alignment* end();
  const Alignment* begin() const;
  const Alignment* end() const;
  Alignment& operator[](size_t i);
  const Alignment& operator[](size_t i) const;

  /// Drops elements past `n` back into the pool (used after compaction;
  /// their buffers stay pooled).
  void Truncate(size_t n) {
    if (n < count_) count_ = n;
  }

 private:
  std::vector<Alignment> items_;  // pool; [0, count_) are live
  size_t count_ = 0;
};

/// \brief One pending Smith-Waterman extension of a read against a
/// candidate reference window: produced by ReadAligner::CollectExtensions,
/// extended by the (possibly batched) kernel into `result`, and resolved
/// into an Alignment by ReadAligner::FinishRead. The views point into the
/// caller's read storage and the genome index; both must outlive the job.
struct ExtensionJob {
  int32_t ref_id = -1;
  int64_t window_start = 0;  // genome position of window[0]
  bool reverse = false;      // query is the reverse-complemented read
  std::string_view query;
  std::string_view window;
  SwBand band;
  SwAlignment result;  // pooled: Cigar capacity survives recycling
};

/// \brief Pool-backed list of ExtensionJobs (same recycling discipline as
/// AlignmentList: clear() resets the live count, capacities persist).
class ExtensionJobList {
 public:
  ExtensionJob& Append() {
    if (count_ == items_.size()) items_.emplace_back();
    ExtensionJob& j = items_[count_++];
    j.ref_id = -1;
    j.window_start = 0;
    j.reverse = false;
    j.query = {};
    j.window = {};
    j.band = SwBand{};
    j.result.score = 0;
    j.result.window_start = 0;
    j.result.window_end = 0;
    j.result.cigar.clear();
    j.result.edit_distance = 0;
    j.result.aligned = false;
    return j;
  }

  void clear() { count_ = 0; }
  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }
  ExtensionJob* begin() { return items_.data(); }
  ExtensionJob* end() { return items_.data() + count_; }
  ExtensionJob& operator[](size_t i) { return items_[i]; }

 private:
  std::vector<ExtensionJob> items_;  // pool; [0, count_) are live
  size_t count_ = 0;
};

/// \brief Scratch for ReadAligner::AlignReadInto. See file comment for the
/// ownership/thread-safety contract.
struct AlignScratch {
  SwScratch sw;                // DP matrices + padded window + traceback
  SwKernelStats stats;         // accumulated across calls; caller resets
  std::string reverse_seq;     // reverse-complement buffer
  std::vector<int64_t> starts;          // candidate start positions
  std::vector<int> offsets;             // seed offsets within the read
  std::vector<int64_t> locate_buf;      // FmIndex::LocateAllInto output
  std::vector<std::pair<int64_t, int>> clusters;  // (start, votes)
  SwAlignment sw_out;          // kernel result (Cigar capacity reused)
  ExtensionJobList jobs;       // per-read extension jobs
};

/// \brief Scratch for PairedEndAligner::AlignPairs: per-pair candidate
/// lists plus the single-read scratch. Candidate lists are pooled the same
/// way AlignmentList pools Alignments. The batch members feed the
/// cross-read vertical SIMD kernel: all extension jobs of one batch are
/// flattened into `batch_jobs` and extended with one SmithWatermanBatch
/// call before any pairing happens.
struct PairedAlignScratch {
  AlignScratch read;
  std::vector<AlignmentList> cand1, cand2;  // [0, n_pairs) live per batch
  /// Reverse-complement buffer per read of the batch. Pre-sized before
  /// any ExtensionJob takes a view into an element: short strings store
  /// their bytes inline (SSO), so growing the vector mid-batch would
  /// move them out from under the views.
  std::vector<std::string> rev_seqs;
  ExtensionJobList batch_jobs;  // all jobs of the batch, read-major
  std::vector<std::pair<uint32_t, uint32_t>> job_ranges;  // per read
  std::vector<SwBatchJob> batch_refs;  // view/slot table for the kernel
  SwBatchScratch batch;                // lane-interleaved DP buffers
};

}  // namespace gesall

#endif  // GESALL_ALIGN_ALIGN_SCRATCH_H_

// Per-thread reusable state for the alignment hot path.
//
// Every container here grows to its high-water mark and is reused, never
// shrunk, so a steady-state AlignReadInto/AlignPairs call performs zero
// heap allocations per read. One AlignScratch per thread; nothing in this
// header is safe to share across concurrent callers.

#ifndef GESALL_ALIGN_ALIGN_SCRATCH_H_
#define GESALL_ALIGN_ALIGN_SCRATCH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "align/smith_waterman.h"

namespace gesall {

struct Alignment;

/// \brief A pool-backed list of Alignments. clear() only resets the live
/// count; the pooled elements keep their Cigar capacity, so refilling the
/// list allocates nothing once capacities have warmed up.
class AlignmentList {
 public:
  /// Returns a recycled element reset to a default-constructed state
  /// (Cigar emptied but its capacity kept).
  Alignment& Append();

  void clear() { count_ = 0; }
  size_t size() const { return count_; }
  bool empty() const { return count_ == 0; }

  // Defined inline in aligner.h, where Alignment is a complete type.
  Alignment* begin();
  Alignment* end();
  const Alignment* begin() const;
  const Alignment* end() const;
  Alignment& operator[](size_t i);
  const Alignment& operator[](size_t i) const;

  /// Drops elements past `n` back into the pool (used after compaction;
  /// their buffers stay pooled).
  void Truncate(size_t n) {
    if (n < count_) count_ = n;
  }

 private:
  std::vector<Alignment> items_;  // pool; [0, count_) are live
  size_t count_ = 0;
};

/// \brief Scratch for ReadAligner::AlignReadInto. See file comment for the
/// ownership/thread-safety contract.
struct AlignScratch {
  SwScratch sw;                // DP matrices + padded window + traceback
  SwKernelStats stats;         // accumulated across calls; caller resets
  std::string reverse_seq;     // reverse-complement buffer
  std::vector<int64_t> starts;          // candidate start positions
  std::vector<int> offsets;             // seed offsets within the read
  std::vector<int64_t> locate_buf;      // FmIndex::LocateAllInto output
  std::vector<std::pair<int64_t, int>> clusters;  // (start, votes)
  SwAlignment sw_out;          // kernel result (Cigar capacity reused)
};

/// \brief Scratch for PairedEndAligner::AlignPairs: per-pair candidate
/// lists plus the single-read scratch. Candidate lists are pooled the same
/// way AlignmentList pools Alignments.
struct PairedAlignScratch {
  AlignScratch read;
  std::vector<AlignmentList> cand1, cand2;  // [0, n_pairs) live per batch
};

}  // namespace gesall

#endif  // GESALL_ALIGN_ALIGN_SCRATCH_H_

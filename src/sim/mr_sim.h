// MapReduce job simulator: replays one Hadoop job's task DAG on the
// discrete-event cluster (slots, disks, NIC) with the paper's cost
// structure — per-task startup and index-load overheads (Table 4 /
// Fig. 5a), map-side sort-spill-merge (Fig. 5b), slow-start reducer
// scheduling (Table 5), and the Scalla multipass reduce-merge model
// [Li et al., TODS'12] behind the "1 disk per 100 GB shuffled" rule
// (Table 7 / Fig. 10 / Appendix B.1).

#ifndef GESALL_SIM_MR_SIM_H_
#define GESALL_SIM_MR_SIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/cluster.h"

namespace gesall {

/// \brief Cost description of one MapReduce job.
struct MrJobSpec {
  std::string name;

  // --- map side ---------------------------------------------------------
  int num_map_tasks = 1;
  /// Node-local input bytes read by each map task.
  int64_t map_input_bytes_per_task = 0;
  /// Single-thread CPU seconds per map task on the reference core.
  double map_cpu_seconds_per_task = 0;
  /// Threads the wrapped program runs with inside one task.
  int threads_per_map = 1;
  /// Scaling of the multithreaded wrapped program (Fig. 5c model).
  ThreadScalingModel thread_model = ThreadScalingModel::Readahead64MB();
  /// Fixed per-task CPU (e.g. parsing/loading the reference index).
  double map_fixed_cpu_seconds = 0;
  /// Fixed per-task bytes read from disk (e.g. the 5 GB BWA index).
  int64_t map_fixed_read_bytes = 0;
  /// Intermediate map output per task (after compression).
  int64_t map_output_bytes_per_task = 0;
  /// Final DFS write per task (map-only jobs).
  int64_t map_final_write_bytes_per_task = 0;

  // --- reduce side ------------------------------------------------------
  int num_reduce_tasks = 0;  // 0 = map-only job
  double reduce_cpu_seconds_per_task = 0;
  int64_t reduce_output_write_bytes_per_task = 0;
  /// Fraction of maps that must complete before reducers are scheduled
  /// (mapreduce.job.reduce.slowstart.completedmaps).
  double slowstart = 0.05;

  // --- scheduling & buffers ---------------------------------------------
  int map_slots_per_node = 1;
  int reduce_slots_per_node = 1;
  double task_startup_seconds = 3.0;  // container/JVM launch
  int64_t sort_buffer_bytes = 2LL << 30;           // io.sort.mb cap
  int64_t reduce_shuffle_buffer_bytes = 1LL << 30;
  /// Merge fan-in (io.sort.factor analog): more sorted runs than this
  /// force an extra multipass-merge pass over the reducer's data.
  int64_t merge_factor = 10;
};

/// \brief Per-task simulated timing.
struct SimTask {
  enum class Type { kMap, kReduce };
  Type type = Type::kMap;
  int index = 0;
  int node = 0;
  double start = 0;
  double end = 0;
  // Reduce-phase breakdown (Fig. 7 / Table 7 columns).
  double shuffle_merge_end = 0;  // when shuffle + merge finished
  // Map-phase breakdown (Fig. 5b): read -> cpu+sort -> spill/merge.
  double map_read_end = 0;
  double map_cpu_end = 0;
  double map_merge_end = 0;
};

/// \brief Result of one simulated job.
struct MrSimResult {
  double wall_seconds = 0;
  double map_phase_end = 0;  // completion of the last map task
  double avg_map_seconds = 0;
  double avg_shuffle_merge_seconds = 0;
  double avg_reduce_seconds = 0;
  /// Sum over tasks of duration x cores requested (paper metric 4).
  double serial_slot_seconds = 0;
  std::vector<SimTask> tasks;
  /// Utilization traces per (node, disk), bucketed.
  std::vector<std::vector<double>> disk_utilization;
  double utilization_bucket_seconds = 0;
  /// Total bytes moved during reduce-side merge (model diagnostics).
  int64_t reduce_merge_bytes = 0;
};

/// \brief Simulates one job on a cluster.
MrSimResult SimulateMrJob(const ClusterSpec& cluster, const MrJobSpec& spec);

}  // namespace gesall

#endif  // GESALL_SIM_MR_SIM_H_

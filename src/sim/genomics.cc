#include "sim/genomics.h"

#include <algorithm>

namespace gesall {

CpuCacheEstimate EstimateAlignmentCpuCache(const WorkloadSpec& workload,
                                           const GenomicsRates& rates,
                                           int num_partitions) {
  CpuCacheEstimate out;
  const double ref_hz = 2.66e9;
  double work_cycles =
      static_cast<double>(workload.total_reads()) * rates.bwa * ref_hz;
  double per_task_cycles = rates.bwa_index_cpu_seconds * ref_hz;
  out.cycles_trillions =
      (work_cycles + per_task_cycles * num_partitions) / 1e12;
  out.cache_misses_billions =
      (static_cast<double>(workload.total_reads()) *
           rates.cache_misses_per_read +
       rates.cache_misses_per_index_load * num_partitions) /
      1e9;
  return out;
}

MrJobSpec AlignmentJob(const WorkloadSpec& workload,
                       const GenomicsRates& rates, const ClusterSpec& cluster,
                       int partitions, int maps_per_node, int threads_per_map,
                       ThreadScalingModel thread_model) {
  MrJobSpec job;
  job.name = "round1_alignment";
  job.num_map_tasks = partitions;
  const int64_t reads_per_task = workload.total_reads() / partitions;
  job.map_input_bytes_per_task = workload.compressed_fastq_bytes / partitions;
  job.map_cpu_seconds_per_task =
      reads_per_task *
      (rates.bwa + (rates.samtobam + rates.transform_per_record) *
                       rates.repeated_call_penalty);
  job.threads_per_map = threads_per_map;
  job.thread_model = thread_model;
  job.map_fixed_cpu_seconds = rates.bwa_index_cpu_seconds;
  job.map_fixed_read_bytes = rates.bwa_index_bytes;
  job.map_final_write_bytes_per_task = workload.bam_bytes() / partitions;
  job.map_slots_per_node = maps_per_node;
  (void)cluster;
  return job;
}

MrJobSpec CleaningJob(const WorkloadSpec& workload,
                      const GenomicsRates& rates, const ClusterSpec& cluster,
                      int partitions, int slots_per_node) {
  MrJobSpec job;
  job.name = "round2_cleaning";
  job.num_map_tasks = partitions;
  const int64_t reads_per_task = workload.total_reads() / partitions;
  job.map_input_bytes_per_task = workload.bam_bytes() / partitions;
  job.map_cpu_seconds_per_task =
      reads_per_task *
      ((rates.add_replace_groups + rates.clean_sam) *
           rates.repeated_call_penalty +
       2 * rates.transform_per_record + rates.extract_key);
  job.map_output_bytes_per_task = static_cast<int64_t>(
      reads_per_task * workload.shuffle_bytes_per_record);
  job.num_reduce_tasks = cluster.num_data_nodes * slots_per_node;
  const int64_t reads_per_reducer =
      workload.total_reads() / std::max(job.num_reduce_tasks, 1);
  job.reduce_cpu_seconds_per_task =
      reads_per_reducer *
      (rates.fix_mate_info * rates.repeated_call_penalty +
       2 * rates.transform_per_record);
  job.reduce_output_write_bytes_per_task =
      workload.bam_bytes() / std::max(job.num_reduce_tasks, 1);
  job.map_slots_per_node = slots_per_node;
  job.reduce_slots_per_node = slots_per_node;
  return job;
}

MrJobSpec MarkDuplicatesJob(const WorkloadSpec& workload,
                            const GenomicsRates& rates,
                            const ClusterSpec& cluster, bool optimized,
                            int partitions, int slots_per_node) {
  MrJobSpec job;
  job.name = optimized ? "round3_markdup_opt" : "round3_markdup_reg";
  job.num_map_tasks = partitions;
  const double shuffle_ratio = optimized ? 1.03 : 1.92;
  const double bytes_per_record = optimized
                                      ? workload.shuffle_bytes_per_record
                                      : workload.shuffle_bytes_per_record_reg;
  const int64_t reads_per_task = workload.total_reads() / partitions;
  job.map_input_bytes_per_task = workload.bam_bytes() / partitions;
  job.map_cpu_seconds_per_task =
      reads_per_task *
      (rates.extract_key + rates.transform_per_record) * shuffle_ratio;
  job.map_output_bytes_per_task = static_cast<int64_t>(
      reads_per_task * shuffle_ratio * bytes_per_record);
  job.num_reduce_tasks = cluster.num_data_nodes * slots_per_node;
  const int64_t reads_per_reducer =
      static_cast<int64_t>(workload.total_reads() * shuffle_ratio) /
      std::max(job.num_reduce_tasks, 1);
  job.reduce_cpu_seconds_per_task =
      reads_per_reducer *
      ((rates.sort_sam + rates.mark_duplicates) *
           rates.repeated_call_penalty +
       2 * rates.transform_per_record);
  job.reduce_output_write_bytes_per_task =
      workload.bam_bytes() / std::max(job.num_reduce_tasks, 1);
  job.map_slots_per_node = slots_per_node;
  job.reduce_slots_per_node = slots_per_node;
  return job;
}

MrJobSpec SortJob(const WorkloadSpec& workload, const GenomicsRates& rates,
                  const ClusterSpec& cluster, int partitions,
                  int slots_per_node) {
  MrJobSpec job;
  job.name = "round4_sort";
  job.num_map_tasks = partitions;
  const int64_t reads_per_task = workload.total_reads() / partitions;
  job.map_input_bytes_per_task = workload.bam_bytes() / partitions;
  job.map_cpu_seconds_per_task =
      reads_per_task * (rates.extract_key + rates.transform_per_record);
  job.map_output_bytes_per_task = static_cast<int64_t>(
      reads_per_task * workload.shuffle_bytes_per_record);
  // 23 chromosome range partitions in the paper.
  job.num_reduce_tasks = 23;
  const int64_t reads_per_reducer = workload.total_reads() / 23;
  job.reduce_cpu_seconds_per_task =
      reads_per_reducer *
      (rates.sort_sam + rates.samtools_index + rates.transform_per_record);
  job.reduce_output_write_bytes_per_task = workload.bam_bytes() / 23;
  job.map_slots_per_node = slots_per_node;
  job.reduce_slots_per_node = slots_per_node;
  (void)cluster;
  return job;
}

MrJobSpec HaplotypeCallerJob(const WorkloadSpec& workload,
                             const GenomicsRates& rates,
                             const ClusterSpec& cluster, int num_partitions,
                             int slots_per_node) {
  MrJobSpec job;
  job.name = "round5_haplotype_caller";
  job.num_map_tasks = num_partitions;
  // Chromosome partitions are skewed; model the wall time by the largest
  // chromosome (chr1 ~ 8% of the genome when 23 partitions are used).
  const double skew = num_partitions == 23 ? 1.85 : 1.15;
  const int64_t reads_per_task =
      static_cast<int64_t>(skew * workload.total_reads() / num_partitions);
  job.map_input_bytes_per_task =
      static_cast<int64_t>(skew * workload.bam_bytes() / num_partitions);
  job.map_cpu_seconds_per_task =
      reads_per_task * (rates.haplotype_caller * rates.repeated_call_penalty +
                        rates.transform_per_record);
  job.map_slots_per_node = slots_per_node;
  (void)cluster;
  return job;
}

double SingleNodeStepSeconds(double per_read_cpu, int64_t reads,
                             const ClusterSpec& server, int threads,
                             int64_t io_bytes,
                             ThreadScalingModel thread_model) {
  double cpu = per_read_cpu * static_cast<double>(reads) /
               server.CoreSpeedFactor();
  if (threads > 1) cpu /= thread_model.Speedup(threads);
  double io = static_cast<double>(io_bytes) /
              (server.node.disk_mbps * 1e6 * server.node.num_disks);
  // CPU and sequential I/O overlap poorly on the single-disk servers the
  // paper profiles; take the max plus a fraction of the smaller term.
  return std::max(cpu, io) + 0.2 * std::min(cpu, io);
}

std::vector<SingleServerStep> SingleServerPipeline(
    const WorkloadSpec& workload, const GenomicsRates& rates,
    const ClusterSpec& server) {
  const int64_t reads = workload.total_reads();
  const int64_t bam = workload.bam_bytes();
  const int threads = server.node.cores;
  auto hours = [](double seconds) { return seconds / 3600.0; };
  std::vector<SingleServerStep> steps;
  steps.push_back(
      {"1. Bwa (mem)",
       hours(SingleNodeStepSeconds(rates.bwa, reads, server, threads,
                                   workload.uncompressed_fastq_bytes))});
  steps.push_back({"2. Samtools Index",
                   hours(SingleNodeStepSeconds(rates.samtools_index, reads,
                                               server, 1, 2 * bam))});
  steps.push_back({"3. Add Replace Groups",
                   hours(SingleNodeStepSeconds(rates.add_replace_groups,
                                               reads, server, 1, 2 * bam))});
  steps.push_back({"4. Clean Sam",
                   hours(SingleNodeStepSeconds(rates.clean_sam, reads, server,
                                               1, 2 * bam))});
  steps.push_back({"5. Fix Mate Info",
                   hours(SingleNodeStepSeconds(rates.fix_mate_info, reads,
                                               server, 1, 2 * bam))});
  steps.push_back({"6. Mark Duplicates",
                   hours(SingleNodeStepSeconds(
                       rates.sort_sam + rates.mark_duplicates, reads, server,
                       1, 3 * bam))});
  steps.push_back({"11. Base Recalibrator",
                   hours(SingleNodeStepSeconds(rates.base_recalibrator,
                                               reads, server, threads,
                                               bam))});
  steps.push_back({"12. Print Reads",
                   hours(SingleNodeStepSeconds(rates.print_reads, reads,
                                               server, 1, 2 * bam))});
  steps.push_back({"v1. Unified Genotyper",
                   hours(SingleNodeStepSeconds(rates.unified_genotyper,
                                               reads, server, threads,
                                               bam))});
  steps.push_back({"v2. Haplotype Caller",
                   hours(SingleNodeStepSeconds(rates.haplotype_caller, reads,
                                               server, 1, bam))});
  return steps;
}

SpeedupMetrics ComputeSpeedup(double baseline_seconds, int baseline_cores,
                              double parallel_seconds, int parallel_cores) {
  SpeedupMetrics m;
  if (parallel_seconds <= 0 || parallel_cores <= 0) return m;
  m.speedup = baseline_seconds / parallel_seconds;
  m.efficiency =
      m.speedup * static_cast<double>(baseline_cores) / parallel_cores;
  return m;
}

}  // namespace gesall

// Cluster hardware specifications (paper Table 3) and the multithreaded
// program scaling model (paper Fig. 5c).

#ifndef GESALL_SIM_CLUSTER_H_
#define GESALL_SIM_CLUSTER_H_

#include <cstdint>
#include <string>

namespace gesall {

/// \brief One data node's hardware.
struct NodeSpec {
  int cores = 24;
  double core_ghz = 2.66;
  int64_t memory_bytes = 64LL << 30;
  int num_disks = 1;
  double disk_mbps = 140.0;     // sequential MB/s
  double network_gbps = 1.0;
};

/// \brief A cluster: data nodes only (name nodes are not modeled).
struct ClusterSpec {
  std::string name;
  int num_data_nodes = 1;
  NodeSpec node;

  /// Research cluster A: 15 data nodes, 24 cores @ 2.66 GHz, 64 GB,
  /// 1 x 3 TB disk @ 140 MB/s, 1 Gbps.
  static ClusterSpec A();

  /// Production cluster B at NYGC: 4 data nodes, 16 cores @ 2.4 GHz,
  /// 256 GB, 6 x 1 TB disks @ 100 MB/s, 10 Gbps.
  static ClusterSpec B(int disks_in_use = 6);

  /// The single 12-core server of Table 2.
  static ClusterSpec SingleServer();

  /// Relative per-core speed against the 2.66 GHz reference core that the
  /// cost-model rates are calibrated to.
  double CoreSpeedFactor() const { return node.core_ghz / 2.66; }
};

/// \brief Multithreaded program scaling (the Bwa thread model of
/// Fig. 5c): an Amdahl-style serialized read-and-parse section whose
/// serial fraction depends on the readahead buffer, plus a linear
/// synchronization cost ("threads wait for all other threads to finish
/// before issuing a common read and parse request").
struct ThreadScalingModel {
  /// Serial fraction of per-batch work spent in the synchronized
  /// read+parse call.
  double serial_fraction = 0.025;
  /// Extra per-thread barrier overhead (fraction of work per thread).
  double barrier_cost = 0.0006;

  /// Speedup over one thread when running with `threads` threads.
  double Speedup(int threads) const {
    if (threads <= 1) return 1.0;
    double t = threads;
    double time = serial_fraction + (1.0 - serial_fraction) / t +
                  barrier_cost * (t - 1);
    return 1.0 / time;
  }

  /// The paper's two configurations.
  static ThreadScalingModel Readahead128KB() { return {0.062, 0.0012}; }
  static ThreadScalingModel Readahead64MB() { return {0.025, 0.0006}; }
};

}  // namespace gesall

#endif  // GESALL_SIM_CLUSTER_H_

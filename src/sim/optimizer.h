// Pipeline optimizer (the paper's future research question 4, App. C):
// "a pipeline optimizer that can best configure the execution plan of a
// deep pipeline to meet both user requirements on running time and a
// genome center's requirements on throughput or efficiency."
//
// The optimizer enumerates execution plans (per-round partition counts,
// process-thread layout, MarkDup variant, slow-start) over the calibrated
// cluster simulator and picks the cheapest plan — measured in slot-
// seconds, i.e. cluster occupancy, the genome center's shared-farm
// currency — whose predicted wall time meets the user's deadline. If no
// plan meets the deadline it falls back to the fastest plan.

#ifndef GESALL_SIM_OPTIMIZER_H_
#define GESALL_SIM_OPTIMIZER_H_

#include <limits>
#include <string>
#include <vector>

#include "sim/genomics.h"

namespace gesall {

/// \brief One candidate execution plan and its predicted cost.
struct PipelinePlan {
  // Knobs.
  int align_threads_per_map = 1;
  int align_maps_per_node = 1;
  int align_waves = 1;  // alignment partitions = concurrent maps x waves
  int shuffle_partitions = 510;
  int shuffle_slots_per_node = 4;
  bool markdup_optimized = true;
  double slowstart = 0.05;

  // Predictions (filled by the optimizer).
  double wall_seconds = 0;
  double slot_seconds = 0;  // total cluster occupancy
  std::vector<std::pair<std::string, double>> round_walls;

  std::string Describe() const;
};

/// \brief User + genome-center objective (paper §2.2 "Performance
/// Goals"): a turnaround deadline and minimal occupancy of the shared
/// compute farm.
struct OptimizerObjective {
  double deadline_seconds = std::numeric_limits<double>::infinity();
};

/// \brief Enumerative plan optimizer over the cluster simulator.
class PipelineOptimizer {
 public:
  PipelineOptimizer(const ClusterSpec& cluster, const WorkloadSpec& workload,
                    const GenomicsRates& rates);

  /// Predicts one plan's wall and slot-seconds (5 simulated rounds).
  PipelinePlan Evaluate(PipelinePlan plan) const;

  /// The candidate search space for this cluster.
  std::vector<PipelinePlan> EnumeratePlans() const;

  /// Cheapest feasible plan; fastest plan when the deadline is
  /// unachievable.
  PipelinePlan Optimize(const OptimizerObjective& objective) const;

 private:
  ClusterSpec cluster_;
  WorkloadSpec workload_;
  GenomicsRates rates_;
};

}  // namespace gesall

#endif  // GESALL_SIM_OPTIMIZER_H_

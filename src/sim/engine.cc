#include "sim/engine.h"

#include "util/logging.h"

namespace gesall {

void SimEngine::At(double time, Callback cb) {
  GESALL_CHECK(time >= now_) << "event scheduled in the past";
  queue_.push({time, next_seq_++, std::move(cb)});
}

void SimEngine::Run() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.cb();
  }
}

}  // namespace gesall

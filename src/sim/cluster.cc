#include "sim/cluster.h"

namespace gesall {

ClusterSpec ClusterSpec::A() {
  ClusterSpec c;
  c.name = "Cluster A (research)";
  c.num_data_nodes = 15;
  c.node.cores = 24;
  c.node.core_ghz = 2.66;
  c.node.memory_bytes = 64LL << 30;
  c.node.num_disks = 1;
  c.node.disk_mbps = 140.0;
  c.node.network_gbps = 1.0;
  return c;
}

ClusterSpec ClusterSpec::B(int disks_in_use) {
  ClusterSpec c;
  c.name = "Cluster B (NYGC production)";
  c.num_data_nodes = 4;
  c.node.cores = 16;  // hyper-threading off, as in §4.5.1
  c.node.core_ghz = 2.4;
  c.node.memory_bytes = 256LL << 30;
  c.node.num_disks = disks_in_use;
  c.node.disk_mbps = 100.0;
  c.node.network_gbps = 10.0;
  return c;
}

ClusterSpec ClusterSpec::SingleServer() {
  ClusterSpec c;
  c.name = "Single server (Table 2)";
  c.num_data_nodes = 1;
  c.node.cores = 12;
  c.node.core_ghz = 2.40;
  c.node.memory_bytes = 64LL << 30;
  c.node.num_disks = 1;
  c.node.disk_mbps = 120.0;  // 7200 RPM HDD
  c.node.network_gbps = 1.0;
  return c;
}

}  // namespace gesall

#include "sim/optimizer.h"

#include <algorithm>

namespace gesall {

std::string PipelinePlan::Describe() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "align %dx%dx%d (%d waves), shuffle parts %d, slots %d, "
                "MarkDup_%s, slowstart %.2f",
                align_maps_per_node, align_threads_per_map,
                align_maps_per_node * align_threads_per_map, align_waves,
                shuffle_partitions, shuffle_slots_per_node,
                markdup_optimized ? "opt" : "reg", slowstart);
  return buf;
}

PipelineOptimizer::PipelineOptimizer(const ClusterSpec& cluster,
                                     const WorkloadSpec& workload,
                                     const GenomicsRates& rates)
    : cluster_(cluster), workload_(workload), rates_(rates) {}

PipelinePlan PipelineOptimizer::Evaluate(PipelinePlan plan) const {
  plan.wall_seconds = 0;
  plan.slot_seconds = 0;
  plan.round_walls.clear();

  auto account = [&](const MrSimResult& r, const char* name) {
    plan.wall_seconds += r.wall_seconds;
    plan.slot_seconds += r.serial_slot_seconds;
    plan.round_walls.emplace_back(name, r.wall_seconds);
  };

  const int align_partitions = cluster_.num_data_nodes *
                               plan.align_maps_per_node * plan.align_waves;
  account(SimulateMrJob(cluster_,
                        AlignmentJob(workload_, rates_, cluster_,
                                     align_partitions,
                                     plan.align_maps_per_node,
                                     plan.align_threads_per_map)),
          "round1_alignment");

  auto cleaning = CleaningJob(workload_, rates_, cluster_,
                              plan.shuffle_partitions,
                              plan.shuffle_slots_per_node);
  cleaning.slowstart = plan.slowstart;
  account(SimulateMrJob(cluster_, cleaning), "round2_cleaning");

  auto markdup = MarkDuplicatesJob(workload_, rates_, cluster_,
                                   plan.markdup_optimized,
                                   plan.shuffle_partitions,
                                   plan.shuffle_slots_per_node);
  markdup.slowstart = plan.slowstart;
  account(SimulateMrJob(cluster_, markdup), "round3_markdup");

  auto sort = SortJob(workload_, rates_, cluster_, plan.shuffle_partitions,
                      plan.shuffle_slots_per_node);
  sort.slowstart = plan.slowstart;
  account(SimulateMrJob(cluster_, sort), "round4_sort");

  account(SimulateMrJob(cluster_,
                        HaplotypeCallerJob(workload_, rates_, cluster_, 23,
                                           plan.shuffle_slots_per_node)),
          "round5_haplotype_caller");
  return plan;
}

std::vector<PipelinePlan> PipelineOptimizer::EnumeratePlans() const {
  std::vector<PipelinePlan> plans;
  const int cores = cluster_.node.cores;
  // Memory bounds concurrent tasks: ~13 GB per task as in the paper.
  const int max_slots = std::max<int>(
      1, static_cast<int>(cluster_.node.memory_bytes / (13LL << 30)));

  for (int threads : {1, 2, 4, 8}) {
    if (threads > cores) continue;
    int maps = std::min(cores / threads, max_slots);
    if (maps < 1) continue;
    for (int waves : {1, 2, 4}) {
      for (int slots : {std::min(max_slots, cores / 4),
                        std::min(max_slots, cores)}) {
        if (slots < 1) continue;
        for (int parts : {cluster_.num_data_nodes * slots, 510, 2040}) {
          for (bool opt : {true, false}) {
            for (double slowstart : {0.05, 0.80}) {
              PipelinePlan p;
              p.align_threads_per_map = threads;
              p.align_maps_per_node = maps;
              p.align_waves = waves;
              p.shuffle_partitions = parts;
              p.shuffle_slots_per_node = slots;
              p.markdup_optimized = opt;
              p.slowstart = slowstart;
              plans.push_back(p);
            }
          }
        }
      }
    }
  }
  // Dedup identical knob combinations (slots may collide).
  std::sort(plans.begin(), plans.end(),
            [](const PipelinePlan& a, const PipelinePlan& b) {
              return a.Describe() < b.Describe();
            });
  plans.erase(std::unique(plans.begin(), plans.end(),
                          [](const PipelinePlan& a, const PipelinePlan& b) {
                            return a.Describe() == b.Describe();
                          }),
              plans.end());
  return plans;
}

PipelinePlan PipelineOptimizer::Optimize(
    const OptimizerObjective& objective) const {
  PipelinePlan best_feasible, fastest;
  bool have_feasible = false, have_any = false;
  for (const PipelinePlan& candidate : EnumeratePlans()) {
    PipelinePlan evaluated = Evaluate(candidate);
    if (!have_any || evaluated.wall_seconds < fastest.wall_seconds) {
      fastest = evaluated;
      have_any = true;
    }
    if (evaluated.wall_seconds <= objective.deadline_seconds) {
      if (!have_feasible ||
          evaluated.slot_seconds < best_feasible.slot_seconds) {
        best_feasible = evaluated;
        have_feasible = true;
      }
    }
  }
  return have_feasible ? best_feasible : fastest;
}

}  // namespace gesall

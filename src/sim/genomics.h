// Genomic workload description and cost model for the performance
// experiments (paper §4): the NA12878 64x sample, per-program CPU rates
// calibrated to the paper's single-node anchors (Clean Sam 7h33m,
// Mark Duplicates 14h26m, alignment 3h45m on Cluster B, shuffle sizes
// 375/785 GB), and builders that turn pipeline rounds into MrJobSpecs.

#ifndef GESALL_SIM_GENOMICS_H_
#define GESALL_SIM_GENOMICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/cluster.h"
#include "sim/mr_sim.h"

namespace gesall {

/// \brief The whole-genome sample of the evaluation (§4.1).
struct WorkloadSpec {
  int64_t read_pairs = 1'240'000'000;  // 1.24 billion pairs
  int read_length = 100;
  int64_t total_reads() const { return 2 * read_pairs; }

  int64_t uncompressed_fastq_bytes = 564LL * 1000 * 1000 * 1000;  // 2x282GB
  int64_t compressed_fastq_bytes = 220LL * 1000 * 1000 * 1000;
  /// On-disk BAM bytes per record (BGZF compressed).
  double bam_bytes_per_record = 100.0;
  /// Intermediate shuffle bytes per record (Snappy-compressed map output;
  /// MarkDup_opt: 375 GB for 1.03x of 2.48 G records ~ 147 B/record).
  double shuffle_bytes_per_record = 147.0;
  /// MarkDup_reg records carry larger compound keys and pair bundles:
  /// 785 GB for 1.92x of 2.48 G records ~ 165 B/record.
  double shuffle_bytes_per_record_reg = 165.0;

  int64_t bam_bytes() const {
    return static_cast<int64_t>(total_reads() * bam_bytes_per_record);
  }

  static WorkloadSpec NA12878() { return WorkloadSpec(); }
};

/// \brief Per-read single-thread CPU seconds on the 2.66 GHz reference
/// core, per wrapped program, plus fixed per-invocation overheads.
struct GenomicsRates {
  double bwa = 3.15e-4;            // anchored to 3h45m on Cluster B 4x16x1
  double samtobam = 4.0e-6;
  double samtools_index = 2.5e-6;
  double add_replace_groups = 4.5e-6;
  double clean_sam = 9.9e-6;       // anchored to 7h33m single-node
  double fix_mate_info = 7.0e-6;
  double sort_sam = 6.0e-6;
  double mark_duplicates = 1.45e-5;  // with sort: 14h26m single-node
  double base_recalibrator = 2.5e-5;
  double print_reads = 3.5e-5;
  double unified_genotyper = 2.5e-5;
  double haplotype_caller = 1.05e-4;

  /// Hadoop <-> external program data transformation per record
  /// (the 12-49% overhead of Fig. 6a).
  double transform_per_record = 3.0e-6;
  /// Map-side key extraction per record.
  double extract_key = 1.5e-6;
  /// Multiplicative penalty for repeatedly invoking an external program
  /// on partitions vs once on the whole input (Fig. 6b: cache warmup,
  /// startup, lost batching) — applied to per-record program rates in
  /// Hadoop execution.
  double repeated_call_penalty = 1.30;

  /// BWA reference index: bytes read and CPU to build in-memory
  /// structures, paid by EVERY mapper (Table 4 / Fig. 5a).
  int64_t bwa_index_bytes = 5LL * 1000 * 1000 * 1000;
  double bwa_index_cpu_seconds = 35.0;
  /// Cache misses incurred per index load (billions) and per read
  /// processed (for the Fig. 5a estimate).
  double cache_misses_per_index_load = 2.5e9;
  double cache_misses_per_read = 6.0;
};

/// \brief Estimated CPU cycles / cache misses of the alignment job as a
/// function of the number of logical partitions (Fig. 5a).
struct CpuCacheEstimate {
  double cycles_trillions = 0;
  double cache_misses_billions = 0;
};

CpuCacheEstimate EstimateAlignmentCpuCache(const WorkloadSpec& workload,
                                           const GenomicsRates& rates,
                                           int num_partitions);

// --- MapReduce job builders (one per pipeline round) ---------------------

/// Round 1: map-only Bwa + SamToBam over `partitions` logical partitions,
/// `maps_per_node` x `threads_per_map` per node.
MrJobSpec AlignmentJob(const WorkloadSpec& workload,
                       const GenomicsRates& rates, const ClusterSpec& cluster,
                       int partitions, int maps_per_node, int threads_per_map,
                       ThreadScalingModel thread_model =
                           ThreadScalingModel::Readahead64MB());

/// Round 2: AddReplaceReadGroups + CleanSam | shuffle | FixMateInfo.
MrJobSpec CleaningJob(const WorkloadSpec& workload,
                      const GenomicsRates& rates, const ClusterSpec& cluster,
                      int partitions, int slots_per_node);

/// Round 3: Mark Duplicates. `optimized` selects MarkDup_opt (1.03x
/// records shuffled) vs MarkDup_reg (1.92x).
MrJobSpec MarkDuplicatesJob(const WorkloadSpec& workload,
                            const GenomicsRates& rates,
                            const ClusterSpec& cluster, bool optimized,
                            int partitions, int slots_per_node);

/// Round 4: coordinate sort + index via range partitioning.
MrJobSpec SortJob(const WorkloadSpec& workload, const GenomicsRates& rates,
                  const ClusterSpec& cluster, int partitions,
                  int slots_per_node);

/// Round 5: Haplotype Caller over `num_partitions` range partitions
/// (23 chromosomes in the paper).
MrJobSpec HaplotypeCallerJob(const WorkloadSpec& workload,
                             const GenomicsRates& rates,
                             const ClusterSpec& cluster, int num_partitions,
                             int slots_per_node);

// --- Single-node baselines ----------------------------------------------

/// Wall seconds of one pipeline step run serially on `server` with
/// `threads` threads (threads > 1 uses the Fig. 5c scaling model).
double SingleNodeStepSeconds(double per_read_cpu, int64_t reads,
                             const ClusterSpec& server, int threads,
                             int64_t io_bytes,
                             ThreadScalingModel thread_model =
                                 ThreadScalingModel::Readahead64MB());

/// \brief Table 2: every step of the single-server pipeline, in hours.
struct SingleServerStep {
  std::string name;
  double hours;
};
std::vector<SingleServerStep> SingleServerPipeline(
    const WorkloadSpec& workload, const GenomicsRates& rates,
    const ClusterSpec& server);

/// \brief Speedup and the paper's resource-efficiency metric.
/// Efficiency normalizes by the cores each side uses:
///   efficiency = speedup * baseline_cores / parallel_cores
/// (with a single-threaded baseline this is the usual speedup/cores).
struct SpeedupMetrics {
  double speedup = 0;
  double efficiency = 0;
};
SpeedupMetrics ComputeSpeedup(double baseline_seconds, int baseline_cores,
                              double parallel_seconds, int parallel_cores);

}  // namespace gesall

#endif  // GESALL_SIM_GENOMICS_H_

#include "sim/resources.h"

#include <algorithm>

namespace gesall {

void FifoServer::Request(int64_t bytes, SimEngine::Callback on_done) {
  if (bytes <= 0) {
    // Zero-byte requests complete immediately (still asynchronously, to
    // keep callback ordering uniform).
    engine_->After(0, std::move(on_done));
    return;
  }
  queue_.push_back({bytes, std::move(on_done)});
  if (!busy_) StartNext();
}

void FifoServer::StartNext() {
  if (queue_.empty()) {
    busy_ = false;
    return;
  }
  busy_ = true;
  Pending job = std::move(queue_.front());
  queue_.pop_front();
  double duration = static_cast<double>(job.bytes) / rate_;
  double start = engine_->now();
  busy_seconds_ += duration;
  bytes_served_ += job.bytes;
  // Coalesce adjacent intervals to keep traces compact.
  if (!busy_intervals_.empty() &&
      busy_intervals_.back().second >= start - 1e-9) {
    busy_intervals_.back().second = start + duration;
  } else {
    busy_intervals_.emplace_back(start, start + duration);
  }
  engine_->After(duration, [this, cb = std::move(job.on_done)]() mutable {
    cb();
    StartNext();
  });
}

std::vector<double> FifoServer::UtilizationTrace(double bucket_seconds,
                                                 double until) const {
  size_t n = static_cast<size_t>(until / bucket_seconds) + 1;
  std::vector<double> trace(n, 0.0);
  for (const auto& [start, end] : busy_intervals_) {
    double e = std::min(end, until);
    if (e <= start) continue;
    // Iterate bucket indices directly (never loops on FP boundaries).
    size_t b0 = static_cast<size_t>(start / bucket_seconds);
    size_t b1 = std::min(n - 1, static_cast<size_t>(e / bucket_seconds));
    for (size_t b = b0; b <= b1; ++b) {
      double lo = std::max(start, b * bucket_seconds);
      double hi = std::min(e, (b + 1) * bucket_seconds);
      if (hi > lo) trace[b] += (hi - lo) / bucket_seconds;
    }
  }
  for (auto& u : trace) u = std::min(u, 1.0);
  return trace;
}

}  // namespace gesall

#include "sim/mr_sim.h"

#include <algorithm>
#include <deque>
#include <memory>

#include "sim/engine.h"
#include "sim/resources.h"
#include "util/logging.h"

namespace gesall {

namespace {

// Whole-job simulation state shared by the task state machines.
class JobSim {
 public:
  JobSim(const ClusterSpec& cluster, const MrJobSpec& spec)
      : cluster_(cluster), spec_(spec) {
    const int nodes = cluster.num_data_nodes;
    disks_.resize(nodes);
    for (int n = 0; n < nodes; ++n) {
      for (int d = 0; d < cluster.node.num_disks; ++d) {
        disks_[n].push_back(std::make_unique<FifoServer>(
            &engine_, cluster.node.disk_mbps * 1e6,
            "node" + std::to_string(n) + "-disk" + std::to_string(d)));
      }
      nics_.push_back(std::make_unique<FifoServer>(
          &engine_, cluster.node.network_gbps * 1e9 / 8,
          "node" + std::to_string(n) + "-nic"));
    }
    free_map_slots_.assign(nodes, spec.map_slots_per_node);
    free_reduce_slots_.assign(nodes, spec.reduce_slots_per_node);
    for (int i = 0; i < spec.num_map_tasks; ++i) pending_maps_.push_back(i);
    for (int i = 0; i < spec.num_reduce_tasks; ++i) {
      pending_reduces_.push_back(i);
    }
    tasks_.resize(spec.num_map_tasks + spec.num_reduce_tasks);
    total_map_output_ = static_cast<int64_t>(spec.num_map_tasks) *
                        spec.map_output_bytes_per_task;
  }

  MrSimResult Run() {
    engine_.After(0, [this] { TrySchedule(); });
    engine_.Run();
    return Finalize();
  }

 private:
  SimTask& MapTask(int i) { return tasks_[i]; }
  SimTask& ReduceTask(int i) { return tasks_[spec_.num_map_tasks + i]; }

  FifoServer* DiskFor(int node, int seq) {
    return disks_[node][seq % disks_[node].size()].get();
  }

  double CoreSpeed() const { return cluster_.CoreSpeedFactor(); }

  void TrySchedule() {
    bool reducers_ready =
        completed_maps_ >=
        static_cast<int>(spec_.slowstart * spec_.num_map_tasks + 1e-9);
    // Reducers may also start when there simply are no maps.
    if (spec_.num_map_tasks == 0) reducers_ready = true;
    for (int n = 0; n < cluster_.num_data_nodes; ++n) {
      while (free_map_slots_[n] > 0 && !pending_maps_.empty()) {
        int task = pending_maps_.front();
        pending_maps_.pop_front();
        --free_map_slots_[n];
        StartMap(task, n);
      }
      if (reducers_ready) {
        while (free_reduce_slots_[n] > 0 && !pending_reduces_.empty()) {
          int task = pending_reduces_.front();
          pending_reduces_.pop_front();
          --free_reduce_slots_[n];
          StartReduce(task, n);
        }
      }
    }
  }

  void StartMap(int id, int node) {
    SimTask& t = MapTask(id);
    t.type = SimTask::Type::kMap;
    t.index = id;
    t.node = node;
    t.start = engine_.now();
    FifoServer* disk = DiskFor(node, id);

    // Startup -> fixed read (index) + input read -> CPU -> spill/merge ->
    // final write -> done.
    engine_.After(spec_.task_startup_seconds, [this, id, node, disk] {
      int64_t read_bytes =
          spec_.map_fixed_read_bytes + spec_.map_input_bytes_per_task;
      disk->Request(read_bytes, [this, id, node, disk] {
        MapTask(id).map_read_end = engine_.now();
        double speedup = spec_.threads_per_map > 1
                             ? spec_.thread_model.Speedup(spec_.threads_per_map)
                             : 1.0;
        double cpu = (spec_.map_fixed_cpu_seconds +
                      spec_.map_cpu_seconds_per_task / speedup) /
                     CoreSpeed();
        engine_.After(cpu, [this, id, node, disk] {
          MapTask(id).map_cpu_end = engine_.now();
          // Sort/spill: intermediate output written once; if it exceeds
          // the sort buffer, a map-side merge re-reads and re-writes it
          // (the Fig. 5(b) overhead).
          int64_t inter = spec_.map_output_bytes_per_task;
          int64_t spills =
              inter > 0 ? (inter + spec_.sort_buffer_bytes - 1) /
                              spec_.sort_buffer_bytes
                        : 0;
          int64_t spill_io = inter;
          if (spills > 1) spill_io += 2 * inter;  // merge read + write
          disk->Request(spill_io, [this, id, node, disk] {
            MapTask(id).map_merge_end = engine_.now();
            disk->Request(spec_.map_final_write_bytes_per_task,
                          [this, id, node] { FinishMap(id, node); });
          });
        });
      });
    });
  }

  void FinishMap(int id, int node) {
    SimTask& t = MapTask(id);
    t.end = engine_.now();
    map_phase_end_ = std::max(map_phase_end_, t.end);
    ++free_map_slots_[node];
    ++completed_maps_;
    if (completed_maps_ == spec_.num_map_tasks) {
      auto waiters = std::move(waiting_for_maps_);
      waiting_for_maps_.clear();
      for (auto& cb : waiters) engine_.After(0, std::move(cb));
    }
    TrySchedule();
  }

  // Reduce-side merge I/O, multipass model [Li et al., TODS'12]: the
  // reducer's shuffled bytes arrive as ~B_r/shuffle_buffer sorted runs.
  // The final merge pass streams into the reduce function for free (one
  // read of B_r); every time the run count exceeds the merge fan-in an
  // extra intermediate pass re-reads and re-writes all B_r bytes. Run
  // counts — hence passes, hence bytes moved — grow with the data each
  // disk handles and shrink with the number of reducer shuffle buffers
  // per disk, reproducing the paper's "1 disk per 100 GB shuffled" rule.
  int64_t ReduceMergeBytes(int64_t bytes_per_reducer) const {
    int64_t runs =
        (bytes_per_reducer + spec_.reduce_shuffle_buffer_bytes - 1) /
        std::max<int64_t>(spec_.reduce_shuffle_buffer_bytes, 1);
    int extra_passes = 0;
    while (runs > spec_.merge_factor) {
      runs = (runs + spec_.merge_factor - 1) / spec_.merge_factor;
      ++extra_passes;
    }
    return bytes_per_reducer * (1 + 2 * extra_passes);
  }

  void StartReduce(int id, int node) {
    SimTask& t = ReduceTask(id);
    t.type = SimTask::Type::kReduce;
    t.index = id;
    t.node = node;
    t.start = engine_.now();
    const int64_t fetch_bytes =
        spec_.num_reduce_tasks > 0
            ? total_map_output_ / spec_.num_reduce_tasks
            : 0;

    engine_.After(spec_.task_startup_seconds, [this, id, node, fetch_bytes] {
      // Shuffle: fetch what already exists, then the rest as maps finish.
      double done_fraction =
          spec_.num_map_tasks > 0
              ? static_cast<double>(completed_maps_) / spec_.num_map_tasks
              : 1.0;
      int64_t first_chunk =
          static_cast<int64_t>(done_fraction * fetch_bytes);
      nics_[node]->Request(first_chunk, [this, id, node, fetch_bytes,
                                         first_chunk] {
        auto fetch_rest = [this, id, node, fetch_bytes, first_chunk] {
          nics_[node]->Request(fetch_bytes - first_chunk, [this, id, node,
                                                           fetch_bytes] {
            FifoServer* disk = DiskFor(node, spec_.num_map_tasks + id);
            // Shuffled data spills to disk, then the multipass merge.
            // When a node's whole shuffle share fits comfortably in
            // memory, the merge reads hit the page cache and cost no
            // disk I/O (the Cluster-B 256 GB effect, §4.5.1).
            disk->Request(fetch_bytes, [this, id, node, disk, fetch_bytes] {
              int reducers_per_node = std::max(
                  1, std::min(spec_.reduce_slots_per_node,
                              (spec_.num_reduce_tasks +
                               cluster_.num_data_nodes - 1) /
                                  cluster_.num_data_nodes));
              bool cached = fetch_bytes * reducers_per_node <=
                            cluster_.node.memory_bytes / 2;
              int64_t merge =
                  cached ? 0 : ReduceMergeBytes(fetch_bytes);
              reduce_merge_bytes_ += merge;
              disk->Request(merge, [this, id, node, disk] {
                SimTask& t = ReduceTask(id);
                t.shuffle_merge_end = engine_.now();
                double cpu = spec_.reduce_cpu_seconds_per_task / CoreSpeed();
                engine_.After(cpu, [this, id, node, disk] {
                  disk->Request(spec_.reduce_output_write_bytes_per_task,
                                [this, id, node] { FinishReduce(id, node); });
                });
              });
            });
          });
        };
        if (completed_maps_ == spec_.num_map_tasks) {
          fetch_rest();
        } else {
          waiting_for_maps_.push_back(fetch_rest);
        }
      });
    });
  }

  void FinishReduce(int id, int node) {
    SimTask& t = ReduceTask(id);
    t.end = engine_.now();
    ++free_reduce_slots_[node];
    TrySchedule();
  }

  MrSimResult Finalize() {
    MrSimResult result;
    result.tasks = tasks_;
    result.map_phase_end = map_phase_end_;
    result.reduce_merge_bytes = reduce_merge_bytes_;
    double wall = 0;
    double map_sum = 0, sm_sum = 0, reduce_sum = 0;
    for (const auto& t : tasks_) {
      wall = std::max(wall, t.end);
      double cores = t.type == SimTask::Type::kMap
                         ? static_cast<double>(spec_.threads_per_map)
                         : 1.0;
      result.serial_slot_seconds += (t.end - t.start) * cores;
      if (t.type == SimTask::Type::kMap) {
        map_sum += t.end - t.start;
      } else {
        sm_sum += t.shuffle_merge_end - t.start;
        reduce_sum += t.end - t.shuffle_merge_end;
      }
    }
    result.wall_seconds = wall;
    if (spec_.num_map_tasks > 0) {
      result.avg_map_seconds = map_sum / spec_.num_map_tasks;
    }
    if (spec_.num_reduce_tasks > 0) {
      result.avg_shuffle_merge_seconds = sm_sum / spec_.num_reduce_tasks;
      result.avg_reduce_seconds = reduce_sum / spec_.num_reduce_tasks;
    }
    // Disk utilization traces (Fig. 10).
    result.utilization_bucket_seconds = std::max(wall / 200.0, 1.0);
    for (const auto& node_disks : disks_) {
      for (const auto& disk : node_disks) {
        result.disk_utilization.push_back(disk->UtilizationTrace(
            result.utilization_bucket_seconds, wall));
      }
    }
    return result;
  }

  ClusterSpec cluster_;
  MrJobSpec spec_;
  SimEngine engine_;
  std::vector<std::vector<std::unique_ptr<FifoServer>>> disks_;
  std::vector<std::unique_ptr<FifoServer>> nics_;
  std::vector<int> free_map_slots_, free_reduce_slots_;
  std::deque<int> pending_maps_, pending_reduces_;
  std::vector<SimEngine::Callback> waiting_for_maps_;
  std::vector<SimTask> tasks_;
  int completed_maps_ = 0;
  double map_phase_end_ = 0;
  int64_t total_map_output_ = 0;
  int64_t reduce_merge_bytes_ = 0;
};

}  // namespace

MrSimResult SimulateMrJob(const ClusterSpec& cluster, const MrJobSpec& spec) {
  JobSim sim(cluster, spec);
  return sim.Run();
}

}  // namespace gesall

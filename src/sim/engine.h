// Discrete-event simulation core: a time-ordered event queue with
// deterministic FIFO tie-breaking.

#ifndef GESALL_SIM_ENGINE_H_
#define GESALL_SIM_ENGINE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace gesall {

/// \brief Minimal discrete-event engine. Events scheduled for the same
/// instant fire in scheduling order.
class SimEngine {
 public:
  using Callback = std::function<void()>;

  double now() const { return now_; }

  /// Schedules a callback at an absolute simulated time (>= now).
  void At(double time, Callback cb);

  /// Schedules a callback `delay` seconds from now.
  void After(double delay, Callback cb) { At(now_ + delay, std::move(cb)); }

  /// Runs until the event queue drains.
  void Run();

 private:
  struct Event {
    double time;
    uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  double now_ = 0;
  uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace gesall

#endif  // GESALL_SIM_ENGINE_H_

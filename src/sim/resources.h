// Simulated hardware resources: FIFO bandwidth servers (disks, NICs).
//
// Cores are not modeled as a contended resource: every experiment in the
// paper configures task slots x threads <= cores per node, so compute is
// a pure delay; concurrency control happens at the slot scheduler.

#ifndef GESALL_SIM_RESOURCES_H_
#define GESALL_SIM_RESOURCES_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/engine.h"

namespace gesall {

/// \brief A sequential-bandwidth device (disk / NIC): requests are served
/// FIFO at a fixed byte rate. Records busy intervals for utilization
/// traces (paper Fig. 10).
class FifoServer {
 public:
  FifoServer(SimEngine* engine, double bytes_per_second, std::string name)
      : engine_(engine), rate_(bytes_per_second), name_(std::move(name)) {}

  /// Enqueues a transfer; `on_done` fires when it completes.
  void Request(int64_t bytes, SimEngine::Callback on_done);

  double busy_seconds() const { return busy_seconds_; }
  int64_t bytes_served() const { return bytes_served_; }
  const std::string& name() const { return name_; }

  /// Busy intervals [start, end) in simulated time.
  const std::vector<std::pair<double, double>>& busy_intervals() const {
    return busy_intervals_;
  }

  /// Utilization (0..1) per time bucket of the given width, up to `until`.
  std::vector<double> UtilizationTrace(double bucket_seconds,
                                       double until) const;

 private:
  struct Pending {
    int64_t bytes;
    SimEngine::Callback on_done;
  };

  void StartNext();

  SimEngine* engine_;
  double rate_;
  std::string name_;
  bool busy_ = false;
  std::deque<Pending> queue_;
  double busy_seconds_ = 0;
  int64_t bytes_served_ = 0;
  std::vector<std::pair<double, double>> busy_intervals_;
};

}  // namespace gesall

#endif  // GESALL_SIM_RESOURCES_H_

// In-process MapReduce runtime (functional analog of Hadoop MR, paper §3).
//
// Map tasks consume input splits and emit key-value pairs into
// per-reducer buffers with sort-and-spill semantics (the
// mapreduce.task.io.sort.mb behavior the paper tunes in §4.2); reduce
// tasks merge the sorted map outputs and invoke the reducer per key
// group. Execution is multi-threaded but the output is deterministic:
// ties between equal keys resolve by (map task index, emission order).
//
// Fault tolerance mirrors Hadoop's task-attempt model: a failed task
// attempt (split load error, mapper/reducer error, or injected fault) is
// retried up to JobConfig::max_task_attempts times with capped
// exponential backoff; straggler attempts can be speculatively
// re-executed with first-success-wins resolution; and a poison split can
// be skipped after exhausted retries (mapreduce.map.skip analog) instead
// of failing the job. Wire a seeded FaultInjector into
// JobConfig::fault_injector to exercise these paths reproducibly.

#ifndef GESALL_MR_MAPREDUCE_H_
#define GESALL_MR_MAPREDUCE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace gesall {

class FaultInjector;

/// \brief One intermediate record.
struct KeyValue {
  std::string key;
  std::string value;
};

/// \brief Named job counters (Hadoop-counter analog).
class JobCounters {
 public:
  void Add(const std::string& name, int64_t delta) { values_[name] += delta; }
  int64_t Get(const std::string& name) const {
    auto it = values_.find(name);
    return it == values_.end() ? 0 : it->second;
  }
  void Merge(const JobCounters& other) {
    for (const auto& [k, v] : other.values_) values_[k] += v;
  }
  const std::map<std::string, int64_t>& values() const { return values_; }

 private:
  std::map<std::string, int64_t> values_;
};

/// \brief Context passed to map functions.
class MapContext {
 public:
  virtual ~MapContext() = default;
  virtual void Emit(std::string key, std::string value) = 0;
  virtual void IncrementCounter(const std::string& name,
                                int64_t delta = 1) = 0;
};

/// \brief Context passed to reduce functions.
class ReduceContext {
 public:
  virtual ~ReduceContext() = default;
  /// Emits one output value (order preserved per reducer).
  virtual void Emit(std::string value) = 0;
  virtual void IncrementCounter(const std::string& name,
                                int64_t delta = 1) = 0;
};

/// \brief User map function over one input split.
class Mapper {
 public:
  virtual ~Mapper() = default;
  virtual Status Map(const std::string& input, MapContext* ctx) = 0;
};

/// \brief User reduce function over one key group (values arrive in
/// deterministic shuffle order).
class Reducer {
 public:
  virtual ~Reducer() = default;
  virtual Status Reduce(const std::string& key,
                        const std::vector<std::string>& values,
                        ReduceContext* ctx) = 0;
};

/// \brief Routes keys to reducers.
class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual int Partition(const std::string& key,
                        int num_partitions) const = 0;
};

/// \brief Default: stable hash of the key bytes.
class HashPartitioner : public Partitioner {
 public:
  int Partition(const std::string& key, int num_partitions) const override;
};

/// \brief Range partitioner over sorted split points: keys below
/// boundaries[i] (bytewise) go to partition i; the rest to the last.
class RangePartitioner : public Partitioner {
 public:
  explicit RangePartitioner(std::vector<std::string> boundaries)
      : boundaries_(std::move(boundaries)) {}
  int Partition(const std::string& key, int num_partitions) const override;

 private:
  std::vector<std::string> boundaries_;
};

/// \brief Lazily-loaded input split with optional locality hint.
struct InputSplit {
  std::function<Result<std::string>()> load;
  int preferred_node = -1;
};

/// \brief Wraps in-memory bytes as a split.
InputSplit InlineSplit(std::string data);

/// \brief Job-level configuration (Hadoop-parameter analogs).
struct JobConfig {
  int num_reducers = 4;
  /// Concurrent tasks (threads) — the cluster's task slots.
  int max_parallel_tasks = 4;
  /// Map-side sort buffer; exceeding it spills a sorted run to "disk".
  int64_t sort_buffer_bytes = 64LL << 20;
  /// Fraction of maps that must finish before reducers start (recorded in
  /// counters for the simulator; functional execution is unaffected).
  double slowstart_completed_maps = 0.05;

  // --- Fault tolerance (Hadoop task-attempt analogs) ---

  /// Attempts per task before the job fails (mapreduce.map/reduce.maxattempts).
  int max_task_attempts = 2;
  /// Backoff before retry k is retry_base_ms * 2^(k-1), capped below.
  /// 0 disables sleeping between attempts.
  int retry_base_ms = 0;
  int retry_max_backoff_ms = 1000;
  /// Re-execute a straggler attempt once and keep whichever finishes
  /// first (Hadoop speculative execution).
  bool speculative_execution = false;
  /// A successful attempt slower than this is considered a straggler.
  int speculative_slow_task_ms = 100;
  /// After exhausted map retries, isolate the poison split (counted and
  /// listed in JobResult::skipped_splits) instead of failing the job
  /// (mapreduce.map.skip analog).
  bool skip_bad_records = false;
  /// Optional chaos source (not owned). nullptr disables injection.
  FaultInjector* fault_injector = nullptr;
};

/// \brief Wall-clock record of one task, for progress plots (paper Fig 7).
struct TaskRecord {
  enum class Type { kMap, kReduce };
  Type type = Type::kMap;
  int index = 0;
  double start_seconds = 0;
  double end_seconds = 0;
  int64_t input_bytes = 0;
  int64_t output_bytes = 0;
  /// Attempt number that produced this record (0 = first attempt).
  int attempt = 0;
  /// True when a speculative re-execution won over the original attempt.
  bool speculative = false;
};

/// \brief Result of a job: per-reducer emitted values + counters.
struct JobResult {
  std::vector<std::vector<std::string>> reducer_outputs;
  JobCounters counters;
  std::vector<TaskRecord> tasks;
  /// Map task indices isolated by skip_bad_records (empty otherwise).
  std::vector<int> skipped_splits;
};

using MapperFactory = std::function<std::unique_ptr<Mapper>()>;
using ReducerFactory = std::function<std::unique_ptr<Reducer>()>;

/// \brief Executes MapReduce jobs on a thread pool.
class MapReduceJob {
 public:
  explicit MapReduceJob(JobConfig config = {});

  /// Full map-shuffle-reduce round.
  Result<JobResult> Run(const std::vector<InputSplit>& splits,
                        const MapperFactory& mapper_factory,
                        const ReducerFactory& reducer_factory,
                        const Partitioner* partitioner = nullptr);

  /// Map-only round (paper Round 1): reducer_outputs[i] holds the values
  /// emitted by map task i, in emission order.
  Result<JobResult> RunMapOnly(const std::vector<InputSplit>& splits,
                               const MapperFactory& mapper_factory);

 private:
  JobConfig config_;
};

}  // namespace gesall

#endif  // GESALL_MR_MAPREDUCE_H_
